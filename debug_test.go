package hetcc

import (
	"os"
	"testing"

	"hetcc/internal/platform"
)

// TestDebugCachedLock is a scaffolding diagnostic (kept for regression
// archaeology): it dumps the tail of the event trace when the cached-lock
// deadlock demo misbehaves.
func TestDebugCachedLock(t *testing.T) {
	if os.Getenv("HETCC_DEBUG") == "" {
		t.Skip("set HETCC_DEBUG=1 to run")
	}
	lk := platform.LockChoice{Kind: platform.LockCachedTAS, Alternate: false, SpinDelay: 4}
	p, err := Build(Config{
		Scenario: WCS,
		Solution: Proposed,
		Lock:     &lk,
		Params:   Params{Lines: 2, ExecTime: 1, Iterations: 4},
		TraceCap: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run(100_000)
	t.Logf("err=%v reason=%q cycles=%d", res.Err, res.StopReason, res.Cycles)
	for i, c := range p.CPUs {
		st := c.Stats()
		t.Logf("cpu%d %s: halted=%v instr=%d stall=%d delay=%d busyRetry=%d lockAcq=%d fiq=%d isr=%d",
			i, c.Name(), st.Halted, st.Instructions, st.StallCycles, st.DelayCycles, st.BusyRetries, st.LockAcquires, st.FIQsRaised, st.ISRRuns)
	}
	bs := p.Bus.Stats()
	t.Logf("bus: tenures=%d completed=%d aborted=%d idle=%d busy=%d", bs.Tenures, bs.Completed, bs.Aborted, bs.IdleCycles, bs.BusyCycles)
	evs, dropped := p.Log.Events()
	for _, e := range evs {
		t.Log(e)
	}
	if dropped > 0 {
		t.Logf("(%d older events dropped by the ring bound)", dropped)
	}
}
