package hetcc

import (
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/platform"
)

// tinyOpts keeps facade-level experiment tests fast.
func tinyOpts() FigureOptions {
	return FigureOptions{
		ExecTimes:  []int{1},
		LineCounts: []int{1, 4},
		Iterations: 3,
		Verify:     true,
	}
}

func TestFigureRunnersProduceOrderedSeries(t *testing.T) {
	for _, fig := range []struct {
		name string
		run  func(FigureOptions) ([]RatioPoint, error)
	}{
		{"Figure5", Figure5},
		{"Figure6", Figure6},
		{"Figure7", Figure7},
	} {
		pts, err := fig.run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", fig.name, err)
		}
		if len(pts) != 2 {
			t.Fatalf("%s: %d points, want 2", fig.name, len(pts))
		}
		for _, p := range pts {
			if p.CyclesDisabled == 0 || p.CyclesSoftware == 0 || p.CyclesProposed == 0 {
				t.Fatalf("%s: zero cycles in %+v", fig.name, p)
			}
			if p.RatioProposed >= 1 || p.RatioSoftware >= 1 {
				t.Fatalf("%s: caching not faster than disabled: %+v", fig.name, p)
			}
		}
	}
}

func TestFigure6SpeedupGrowsWithLines(t *testing.T) {
	opts := tinyOpts()
	opts.LineCounts = []int{1, 16}
	pts, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].SpeedupVsSoftwarePct <= pts[0].SpeedupVsSoftwarePct {
		t.Fatalf("BCS speedup not growing with lines: %+.2f then %+.2f",
			pts[0].SpeedupVsSoftwarePct, pts[1].SpeedupVsSoftwarePct)
	}
}

func TestFigure8TrendsWithPenalty(t *testing.T) {
	pts, err := Figure8([]int{13, 96}, FigureOptions{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 scenarios x 2 line counts x 2 penalties.
	if len(pts) != 12 {
		t.Fatalf("%d points, want 12", len(pts))
	}
	// BCS at 32 lines must improve substantially from 13 to 96 cycles.
	var bcs13, bcs96 float64
	for _, p := range pts {
		if p.Scenario == BCS && p.Lines == 32 {
			switch p.MissPenalty {
			case 13:
				bcs13 = p.RatioVsSoftware
			case 96:
				bcs96 = p.RatioVsSoftware
			}
		}
	}
	if !(bcs96 < bcs13 && bcs96 < 0.5) {
		t.Fatalf("BCS/32 ratio did not improve with penalty: %.3f -> %.3f", bcs13, bcs96)
	}
}

func TestTable1MatchesClassifier(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	want := []core.PlatformClass{core.PF1, core.PF2, core.PF3}
	for i, row := range rows {
		if row.Class != want[i] {
			t.Fatalf("row %d class %v, want %v", i, row.Class, want[i])
		}
		if row.Description == "" || row.Example == "" {
			t.Fatalf("row %d incomplete: %+v", i, row)
		}
	}
}

func TestSequenceResultShape(t *testing.T) {
	broken, fixed, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []SequenceResult{broken, fixed} {
		if len(seq.Steps) != 4 {
			t.Fatalf("%d steps", len(seq.Steps))
		}
		if len(seq.Protocols) != 2 {
			t.Fatalf("protocols %v", seq.Protocols)
		}
		for _, st := range seq.Steps {
			if len(st.States) != 2 || st.Label == "" {
				t.Fatalf("step %+v", st)
			}
		}
	}
	if broken.Wrappers || !fixed.Wrappers {
		t.Fatal("wrapper flags swapped")
	}
}

func TestRunDefaultsToPaperPlatform(t *testing.T) {
	p, err := Build(Config{Scenario: BCS, Solution: Proposed, Params: Params{Lines: 1, Iterations: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CPUs) != 2 || p.CPUs[0].Name() != "PowerPC755" || p.CPUs[1].Name() != "ARM920T" {
		t.Fatalf("default platform: %v/%v", p.CPUs[0].Name(), p.CPUs[1].Name())
	}
	if p.Integration.Class != core.PF2 {
		t.Fatalf("class %v", p.Integration.Class)
	}
}

func TestRunPropagatesWorkloadErrors(t *testing.T) {
	if _, err := Run(Config{Scenario: WCS, Solution: Proposed, Params: Params{Lines: -1}}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestMustRunPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustRun(Config{Scenario: WCS, Solution: Proposed, Params: Params{Lines: -1}})
}

func TestFacadeRaceCheckPlumbed(t *testing.T) {
	res, err := Run(Config{
		Scenario:  WCS,
		Solution:  Proposed,
		Verify:    true,
		RaceCheck: true,
		Params:    Params{Lines: 2, Iterations: 2},
	})
	if err != nil || res.Err != nil {
		t.Fatal(err, res.Err)
	}
	if len(res.Races) != 0 {
		t.Fatalf("generated workloads are lock-disciplined; races: %v", res.Races)
	}
}

func TestProtocolName(t *testing.T) {
	if ProtocolName(coherence.MESI) != "MESI" {
		t.Fatal("protocol name")
	}
}

func TestFigureOptionsPlatformOverride(t *testing.T) {
	opts := tinyOpts()
	opts.Processors = platform.PPCI486()
	opts.LineCounts = []int{4}
	pf3, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Processors = nil
	pf2, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: PF3 outperforms PF2 under the proposed scheme.
	if pf3[0].CyclesProposed >= pf2[0].CyclesProposed {
		t.Fatalf("PF3 (%d) not faster than PF2 (%d)", pf3[0].CyclesProposed, pf2[0].CyclesProposed)
	}
}
