# Developer entry points.  `make verify` is the gate to run before sending
# a change: formatting, vet, and the full test suite under the race
# detector (the simulation kernel is single-threaded by design, so -race is
# cheap and catches accidental goroutine use).

GO ?= go

.PHONY: all build test race verify allocs bench bench-diff bench-explain bench-trend gobench bench-metrics bench-audit fmt vet lint observe cover explore

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass: load-bearing now that internal/runner fans simulations
# across goroutines (cmd/experiments -jobs, protocheck -audit -jobs, the
# audited fuzz sweep, and the jobs=1-vs-8 determinism tests all run
# concurrent platforms).
race:
	$(GO) test -race ./...

verify: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Alloc-regression suite: AllocsPerRun pins of the zero-garbage hot path
# (bus tick, ARTRY storm, snoop broadcast, event emit, metrics records,
# event-scheduler wake structure, sharing collector).  Any nonzero allocs/op
# in steady state fails.
allocs:
	$(GO) test -run TestAllocs -v ./internal/bus ./internal/event ./internal/metrics ./internal/span ./internal/sharing ./internal/sim

# Simulated-cycle benchmark suite (cmd/bench): 27 deterministic runs whose
# cycle counts are machine-independent.  `make bench` refreshes BENCH_dev.json;
# `make bench-diff` gates it against the committed baseline (exit 1 on any
# >10% cycle regression), as CI does.
bench:
	$(GO) run ./cmd/bench -o BENCH_dev.json

bench-diff: bench
	$(GO) run ./cmd/bench diff BENCH_seed.json BENCH_dev.json

# Causal triage of a bench regression: per-cause delta tables for every run
# beyond threshold, plus the machine-readable bench-delta.json artifact CI
# uploads on failure.
bench-explain: bench
	$(GO) run ./cmd/bench diff -explain -json bench-delta.json BENCH_seed.json BENCH_dev.json

# Performance trajectory across every committed BENCH_*.json (seed first):
# total cycles, per-solution totals, bus utilisation, go-bench ns/op+allocs.
bench-trend:
	$(GO) run ./cmd/bench trend

# Wall-clock Go microbenchmarks (ns/op, allocations).
gobench:
	$(GO) test -run xxx -bench . -benchmem ./...

# The metrics guard: the Disabled ns/op must stay within ~2% of a build
# without instrumentation (every disabled-path record is one nil check).
bench-metrics:
	$(GO) test -run xxx -bench 'BenchmarkMetrics(Disabled|Enabled)' -benchmem -count 5 .
	$(GO) test -run xxx -bench BenchmarkLogAddf -benchmem ./internal/trace

bench-audit:
	$(GO) test -run xxx -bench 'Benchmark(EventsDisabled|AuditEnabled)' -benchmem -count 5 .

# Statement-coverage gate for the proof-bearing packages: the reduction rules
# (internal/core) and the TAG-CAM snoop logic (internal/snooplogic) are what
# the explorer's guarantees rest on, so their coverage has an enforced floor.
# Writes cover.out (full-repo profile) for the CI artifact.
COVER_FLOOR_CORE    ?= 90
COVER_FLOOR_SNOOP   ?= 90

cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) test -cover ./internal/core ./internal/snooplogic | tee cover-floor.txt
	@awk -v floor_core=$(COVER_FLOOR_CORE) -v floor_snoop=$(COVER_FLOOR_SNOOP) ' \
		/hetcc\/internal\/core/      { pct=$$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
			if (pct+0 < floor_core)  { printf "cover: internal/core %.1f%% below floor %d%%\n", pct, floor_core; bad=1 } } \
		/hetcc\/internal\/snooplogic/ { pct=$$0; sub(/.*coverage: /, "", pct); sub(/%.*/, "", pct); \
			if (pct+0 < floor_snoop) { printf "cover: internal/snooplogic %.1f%% below floor %d%%\n", pct, floor_snoop; bad=1 } } \
		END { exit bad }' cover-floor.txt
	@rm -f cover-floor.txt
	@echo "coverage floors hold (core >= $(COVER_FLOOR_CORE)%, snooplogic >= $(COVER_FLOOR_SNOOP)%)"

# Exhaustive reachability proof of the reduction table: every 2-master
# protocol multiset, wrapped (must be violation-free) and un-wired (must
# exhibit the defects the wrappers remove).  Exit non-zero on any breach,
# frontier overflow, or blown budget.
explore:
	$(GO) run ./cmd/protocheck -explore

# Static analysis beyond go vet.  Runs staticcheck when it is on PATH and
# is a no-op otherwise, so the target works in minimal containers; CI
# installs the pinned version and always runs it.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# One-stop observability bundle: report + events + audit + chrome trace +
# stall profile + span JSONL + sharing-pattern JSONL + critical-path
# explanation in ./observe/.
observe:
	$(GO) run ./cmd/hetccsim -scenario wcs -solution proposed -observe observe -explain
