package hetcc_test

import (
	"fmt"
	"testing"

	"hetcc"
	"hetcc/internal/delta"
	"hetcc/internal/memory"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

// deltaMatrixRuns executes the 27-run determinism matrix once with reports
// and returns each run as comparison evidence.
func deltaMatrixRuns(t *testing.T, scheduler string) []delta.Run {
	t.Helper()
	specs := determinismBatch(t, scheduler)
	results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: 4, Reports: true})
	runs := make([]delta.Run, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %q failed: %v", r.Label, r.Err)
		}
		if r.Report == nil {
			t.Fatalf("run %q has no report", r.Label)
		}
		if r.Report.CriticalPath == nil || r.Report.CriticalPath.CrossCheckError != "" {
			t.Fatalf("run %q critical path missing or failed its ledger cross-check: %+v", r.Label, r.Report.CriticalPath)
		}
		if r.Report.Cohorts == nil || !r.Report.Cohorts.Conserved() {
			t.Fatalf("run %q cohort partition missing or not conserved", r.Label)
		}
		runs[i] = delta.FromReport(r.Label, *r.Report)
	}
	return runs
}

// TestDeltaConservationAcrossMatrix is the tentpole property test: for every
// pair of the 27 matrix runs (729 ordered pairs, including self-pairs and
// cross-platform / cross-scenario / cross-solution pairs), the per-cause and
// per-cohort attributed deltas sum exactly to the total cycle delta, and the
// ledger-only comparison of the same pair cross-checks against the two runs'
// stall ledgers.  The property is checked under both schedulers.
func TestDeltaConservationAcrossMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("27-run matrix in -short mode")
	}
	for _, scheduler := range schedulerModes {
		scheduler := scheduler
		t.Run(scheduler, func(t *testing.T) {
			testDeltaConservationAcrossMatrix(t, scheduler)
		})
	}
}

func testDeltaConservationAcrossMatrix(t *testing.T, scheduler string) {
	runs := deltaMatrixRuns(t, scheduler)
	for i, a := range runs {
		for j, b := range runs {
			e := delta.Compare(a, b)
			if e.Source != delta.SourceCriticalPath {
				t.Fatalf("%s vs %s: source %q, want critical-path", a.Name, b.Name, e.Source)
			}
			if e.CrossCheckError != "" {
				t.Fatalf("%s vs %s: cross-check failed: %s", a.Name, b.Name, e.CrossCheckError)
			}
			if !e.Conserved() {
				t.Fatalf("%s vs %s: explanation not conserved", a.Name, b.Name)
			}
			if !e.HasCohorts {
				t.Fatalf("%s vs %s: cohort layer missing", a.Name, b.Name)
			}
			if i == j {
				if e.Delta != 0 || e.Dominant() != nil {
					t.Fatalf("%s vs itself: delta %d dominant %+v", a.Name, e.Delta, e.Dominant())
				}
			}

			// Cross-check the cause layer against the two runs' stall
			// ledgers: the ledger-only comparison of the same pair must be
			// conserved and reproduce each (core, cause) count exactly.
			le := delta.Compare(
				delta.FromLedger(a.Name, a.Cycles, a.Stalls),
				delta.FromLedger(b.Name, b.Cycles, b.Stalls),
			)
			if le.Source != delta.SourceStallLedger || !le.Conserved() || le.CrossCheckError != "" {
				t.Fatalf("%s vs %s: ledger comparison broken: %+v", a.Name, b.Name, le)
			}
			want := map[string][2]uint64{}
			for _, cs := range a.Stalls {
				for cause, n := range cs.Causes {
					k := fmt.Sprintf("core %d/%s", cs.Core, cause)
					v := want[k]
					v[0] += n
					want[k] = v
				}
			}
			for _, cs := range b.Stalls {
				for cause, n := range cs.Causes {
					k := fmt.Sprintf("core %d/%s", cs.Core, cause)
					v := want[k]
					v[1] += n
					want[k] = v
				}
			}
			for _, c := range le.Causes {
				if c.Cause == "execute/overlap" {
					continue
				}
				k := c.Component + "/" + c.Cause
				if v := want[k]; v[0] != c.Old || v[1] != c.New {
					t.Fatalf("%s vs %s: %s delta (%d, %d) disagrees with the stall ledgers (%d, %d)",
						a.Name, b.Name, k, c.Old, c.New, v[0], v[1])
				}
			}
		}
	}
}

// TestDeltaExplainsPerturbedTiming pins the end-to-end triage story the PR
// exists for: slow main memory down (the Figure 8 sweep lever) and the
// explanation of baseline-vs-perturbed must name refill stalls — waiting on
// memory — as the dominant cause of the regression.
func TestDeltaExplainsPerturbedTiming(t *testing.T) {
	run := func(penalty int) delta.Run {
		cfg := hetcc.Config{
			Scenario:   workload.BCS,
			Solution:   platform.Proposed,
			Processors: platform.PPCARm(),
			Params:     hetcc.Params{Lines: 8, ExecTime: 1, Iterations: 4},
			Verify:     true,
			Profile:    true,
			Spans:      true,
			MaxCycles:  5_000_000,
		}
		name := "baseline"
		if penalty > 0 {
			cfg.Timing = memory.ScaledTiming(penalty)
			name = fmt.Sprintf("penalty=%d", penalty)
		}
		p, err := hetcc.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := p.Run(cfg.MaxCycles)
		if res.Err != nil {
			t.Fatalf("%s: %v", name, res.Err)
		}
		return delta.FromReport(name, p.Report(res, "bcs"))
	}
	base := run(0)
	slow := run(96)
	e := delta.Compare(base, slow)
	if e.Delta <= 0 {
		t.Fatalf("slower memory did not slow the run: %+d cycles", e.Delta)
	}
	if !e.Conserved() || e.CrossCheckError != "" {
		t.Fatalf("explanation broken: %+v", e)
	}
	d := e.Dominant()
	if d == nil || d.Cause != "refill" {
		t.Fatalf("dominant cause %+v, want refill (memory wait) after a memory-timing perturbation\ncauses: %+v", d, e.Causes)
	}
}
