// Package hetcc is a cycle-level reproduction of "Supporting Cache
// Coherence in Heterogeneous Multiprocessor Systems" (Suh, Blough, Lee —
// DATE 2004): a hardware/software methodology that keeps data caches
// coherent on a shared-bus SoC integrating processors with different — or
// missing — invalidation-based coherence protocols.
//
// The package is a facade over the internal subsystems:
//
//   - internal/coherence — MEI/MSI/MESI/MOESI state machines;
//   - internal/core      — the paper's protocol-reduction rules, wrapper
//     policies, and an exhaustive single-line model checker;
//   - internal/bus, internal/cache, internal/cpu, internal/memory — the
//     simulated SoC substrate (AMBA ASB-like snooping bus, set-associative
//     caches with snooping controllers, program-driven cores);
//   - internal/wrapper, internal/snooplogic — the paper's hardware:
//     per-processor bus wrappers and the TAG-CAM snoop logic with
//     interrupt-driven drains;
//   - internal/lock, internal/workload, internal/platform — lock
//     mechanisms, the WCS/TCS/BCS microbenchmarks, and platform assembly.
//
// Use Run for a single simulation, and the Figure*/Table* runners in
// experiments.go to regenerate the paper's evaluation.
package hetcc

import (
	"fmt"
	"io"

	"hetcc/internal/coherence"
	"hetcc/internal/memory"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

// Re-exported scenario and solution selectors, so callers need only this
// package for ordinary use.
const (
	WCS = workload.WCS
	TCS = workload.TCS
	BCS = workload.BCS

	CacheDisabled = platform.CacheDisabled
	Software      = platform.Software
	Proposed      = platform.Proposed
)

// Scenario aliases workload.Scenario.
type Scenario = workload.Scenario

// Solution aliases platform.Solution.
type Solution = platform.Solution

// Params aliases workload.Params.
type Params = workload.Params

// Config describes one microbenchmark simulation.
type Config struct {
	// Scenario is WCS, TCS or BCS.
	Scenario Scenario
	// Solution is the coherence strategy under test.
	Solution Solution
	// Processors defaults to the paper's performance platform
	// (PowerPC755 + ARM920T, the PF2 case study).
	Processors []platform.ProcessorSpec
	// Params are the microbenchmark knobs; zero fields take defaults.
	Params Params
	// Timing overrides the Table 4 memory timing (Figure 8's sweep).
	Timing memory.Timing
	// Lock overrides the lock mechanism; the zero value selects the
	// uncached test-and-set lock with scenario-appropriate alternation.
	Lock *platform.LockChoice
	// Verify enables the golden-model staleness checker.
	Verify bool
	// RaceCheck (with Verify) also flags shared accesses performed while
	// holding no lock.
	RaceCheck bool
	// DisableWrappers removes the paper's wrappers while keeping hardware
	// snooping — the broken configuration of Tables 2 and 3.
	DisableWrappers bool
	// TraceCap, when positive, retains that many trace events.
	TraceCap int
	// VCD, when non-nil, receives an IEEE-1364 waveform dump of the run.
	VCD io.Writer
	// PipelinedBus enables the AHB-style address/data overlap ablation.
	PipelinedBus bool
	// Metrics enables the unified metrics layer (latency histograms, time
	// series, bus tenure spans); the run's snapshot lands in
	// Result.Metrics.
	Metrics bool
	// MetricsWindow overrides the time-series sampling window in engine
	// cycles (default platform.DefaultMetricsWindow).
	MetricsWindow uint64
	// Audit enables the typed coherence event stream and the online
	// invariant auditor; the run's summary lands in Result.Audit.
	Audit bool
	// EventLog, when non-nil, receives the coherence event stream as JSONL
	// (one object per line); callers hand in a buffered writer and flush it
	// after the run.
	EventLog io.Writer
	// Profile enables the per-core stall-cause cycle ledger; the run's
	// summary lands in Result.Profile and the per-core stall timeline in
	// Result.StallSpans.
	Profile bool
	// Spans enables the causal transaction-span collector; the run's
	// critical-path attribution lands in Result.CriticalPath (pair with
	// Profile for stall links and the ledger cross-check).
	Spans bool
	// Sharing enables the sharing-pattern collector (per-line
	// classification, communication matrix, address heatmap); the run's
	// summary lands in Result.Sharing.
	Sharing bool
	// Scheduler selects the engine scheduling strategy:
	// platform.SchedulerEvent (the default) or platform.SchedulerTick.
	// Both produce byte-identical reports and digests (DESIGN.md §8).
	Scheduler string
	// MaxCycles bounds the run (default 50M engine cycles).
	MaxCycles uint64
}

// Result is the outcome of one simulation.
type Result struct {
	platform.Result
	// EngineCyclesPerBusCycle converts between the 100 MHz engine clock
	// and the 50 MHz bus clock.
	EngineCyclesPerBusCycle uint64
}

// DefaultProcessors returns the paper's performance-evaluation platform.
func DefaultProcessors() []platform.ProcessorSpec { return platform.PPCARm() }

// Build assembles the platform and programs for cfg without running it
// (examples use this for custom instrumentation).
func Build(cfg Config) (*platform.Platform, error) {
	procs := cfg.Processors
	if len(procs) == 0 {
		procs = DefaultProcessors()
	}
	lockChoice := platform.LockChoice{
		Kind:      platform.LockUncachedTAS,
		Alternate: cfg.Scenario.Alternate(),
		SpinDelay: 4,
	}
	if cfg.Lock != nil {
		lockChoice = *cfg.Lock
	}
	p, err := platform.Build(platform.Config{
		Processors:      procs,
		Solution:        cfg.Solution,
		Timing:          cfg.Timing,
		Lock:            lockChoice,
		Verify:          cfg.Verify,
		RaceCheck:       cfg.RaceCheck,
		DisableWrappers: cfg.DisableWrappers,
		TraceCap:        cfg.TraceCap,
		VCD:             cfg.VCD,
		PipelinedBus:    cfg.PipelinedBus,
		Metrics:         cfg.Metrics,
		MetricsWindow:   cfg.MetricsWindow,
		Audit:           cfg.Audit,
		EventLog:        cfg.EventLog,
		Profile:         cfg.Profile,
		Spans:           cfg.Spans,
		Sharing:         cfg.Sharing,
		Scheduler:       cfg.Scheduler,
	})
	if err != nil {
		return nil, err
	}
	progs, err := workload.Programs(cfg.Scenario, cfg.Params, cfg.Solution, len(procs))
	if err != nil {
		return nil, err
	}
	if err := p.LoadPrograms(progs); err != nil {
		return nil, err
	}
	return p, nil
}

// Run builds and simulates cfg to completion.
func Run(cfg Config) (Result, error) {
	p, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 50_000_000
	}
	res := p.Run(maxCycles)
	return Result{Result: res, EngineCyclesPerBusCycle: 2}, nil
}

// MustRun is Run for tests and examples where configuration errors are
// programming bugs.
func MustRun(cfg Config) Result {
	r, err := Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("hetcc: %v", err))
	}
	return r
}

// ProtocolName re-exports coherence protocol naming for report code.
func ProtocolName(k coherence.Kind) string { return k.String() }
