package hetcc_test

import (
	"fmt"
	"testing"

	"hetcc"
	"hetcc/internal/coherence"
	"hetcc/internal/explore"
	"hetcc/internal/platform"
)

// TestExplorerContainsAuditedStates cross-validates the abstract state-space
// explorer against the live simulator: every per-core coherence state the
// invariant auditor observes across the paper's 27-combination matrix (three
// platforms × three scenarios × three solutions), under both engine
// schedulers, must be in the explorer's reachable set for the matching
// hardware mode.  If the abstraction ever under-approximates the real
// machine, this test names the state the model cannot reach.
func TestExplorerContainsAuditedStates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full simulation matrix twice")
	}

	presets := []struct {
		label string
		procs []platform.ProcessorSpec
	}{
		{"PF1 (ARM+ARM)", platform.ARMPair()},
		{"PF2 (PPC+ARM)", platform.PPCARm()},
		{"PF3 (PPC+i486)", platform.PPCI486()},
	}

	// Hardware-mode map: the proposed solution installs wrappers and snoop
	// logic (ModeWrapped); the cache-disabled and software baselines run
	// with no coherence hardware at all (ModeNoSnoop) — see the snoops
	// wiring in internal/platform/build.go.
	modeFor := func(sol hetcc.Solution) explore.Mode {
		if sol == hetcc.Proposed {
			return explore.ModeWrapped
		}
		return explore.ModeNoSnoop
	}

	// Pre-compute the explorer's reachable sets once per preset × mode.
	reach := make(map[string]map[explore.Mode]*explore.Result)
	for _, p := range presets {
		kinds := make([]coherence.Kind, len(p.procs))
		for i, spec := range p.procs {
			kinds[i] = spec.Protocol
		}
		reach[p.label] = make(map[explore.Mode]*explore.Result)
		for _, mode := range []explore.Mode{explore.ModeWrapped, explore.ModeNoSnoop} {
			res, err := explore.Explore(explore.Config{Protocols: kinds, Mode: mode})
			if err != nil {
				t.Fatalf("%s %v: %v", p.label, mode, err)
			}
			if !res.Complete {
				t.Fatalf("%s %v: exploration overflowed (%d dropped)", p.label, mode, res.Dropped)
			}
			reach[p.label][mode] = res
		}
	}

	byName := make(map[string]coherence.State)
	for _, s := range []coherence.State{
		coherence.Invalid, coherence.Shared, coherence.Exclusive,
		coherence.Modified, coherence.Owned,
	} {
		byName[s.String()] = s
	}

	scenarios := []hetcc.Scenario{hetcc.WCS, hetcc.TCS, hetcc.BCS}
	solutions := []hetcc.Solution{hetcc.CacheDisabled, hetcc.Software, hetcc.Proposed}

	for _, sched := range []string{platform.SchedulerEvent, platform.SchedulerTick} {
		t.Run(sched, func(t *testing.T) {
			type meta struct {
				preset string
				sol    hetcc.Solution
			}
			var (
				specs []hetcc.BatchSpec
				metas []meta
			)
			for _, p := range presets {
				for _, scen := range scenarios {
					for _, sol := range solutions {
						specs = append(specs, hetcc.BatchSpec{
							Label: fmt.Sprintf("%s/%v/%v", p.label, scen, sol),
							Config: hetcc.Config{
								Scenario:   scen,
								Solution:   sol,
								Processors: p.procs,
								Params:     hetcc.Params{Lines: 8, ExecTime: 1, Iterations: 4, WordsPerLine: 8},
								Audit:      true,
								Scheduler:  sched,
								MaxCycles:  5_000_000,
							},
						})
						metas = append(metas, meta{p.label, sol})
					}
				}
			}

			results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: 4})
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("%s: %v", specs[i].Label, r.Err)
				}
				if r.Result.Err != nil {
					t.Fatalf("%s: run failed: %v", specs[i].Label, r.Result.Err)
				}
				a := r.Result.Audit
				if a == nil {
					t.Fatalf("%s: no audit summary", specs[i].Label)
				}
				res := reach[metas[i].preset][modeFor(metas[i].sol)]
				for core, states := range a.Reachable {
					for _, name := range states {
						s, ok := byName[name]
						if !ok {
							t.Fatalf("%s: core %d reported unknown state %q", specs[i].Label, core, name)
						}
						if !res.Contains(core, s) {
							t.Errorf("%s: core %d observed state %v on the live simulator, but the %v explorer cannot reach it — the abstract model under-approximates the machine",
								specs[i].Label, core, s, modeFor(metas[i].sol))
						}
					}
				}
			}
		})
	}
}
