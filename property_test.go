package hetcc

// Randomised end-to-end property tests: arbitrary lock-structured programs
// over every platform preset and strategy must run to completion with no
// stale read (golden model), no deadlock, and deterministic timing.

import (
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/isa"
	"hetcc/internal/platform"
	"hetcc/internal/sim"
	"hetcc/internal/workload"
)

// randomProgram builds a random but well-formed task: private work mixed
// with lock-protected critical sections over a small pool of shared lines.
// Under the Software strategy every touched line is drained before the
// lock is released, as the paper's programming model requires.
func randomProgram(rng *sim.RNG, task int, sol Solution) isa.Program {
	b := isa.NewBuilder()
	privBase := platform.PrivateBase + uint32(task)*platform.PrivateStride
	sections := 2 + rng.Intn(4)
	val := uint32(task+1) << 24
	for sec := 0; sec < sections; sec++ {
		// Private preamble.
		for i, n := 0, rng.Intn(4); i < n; i++ {
			addr := privBase + uint32(rng.Intn(64))*4
			if rng.Intn(2) == 0 {
				b.Read(addr)
			} else {
				val++
				b.Write(addr, val)
			}
		}
		if rng.Intn(4) == 0 {
			b.Delay(rng.Intn(30) + 1)
		}
		// Critical section over a pool of 8 shared lines.
		b.Lock(0)
		touched := map[uint32]bool{}
		for i, n := 0, 1+rng.Intn(10); i < n; i++ {
			line := uint32(rng.Intn(8))
			word := uint32(rng.Intn(8))
			addr := platform.SharedBase + line*32 + word*4
			touched[platform.SharedBase+line*32] = true
			if rng.Intn(2) == 0 {
				b.Read(addr)
			} else {
				val++
				b.Write(addr, val)
			}
		}
		// A gratuitous mid-section drain is always legal.
		if rng.Intn(5) == 0 {
			for base := range touched {
				b.Clean(base)
				break
			}
		}
		if sol == Software {
			for base := range touched {
				b.Clean(base)
			}
		}
		b.Unlock(0)
	}
	return b.Halt()
}

func presets() map[string][]platform.ProcessorSpec {
	return map[string][]platform.ProcessorSpec{
		"PF2 ppc+arm":   platform.PPCARm(),
		"PF3 ppc+i486":  platform.PPCI486(),
		"PF1 arm+arm":   platform.ARMPair(),
		"PF3 mesi+mesi": {platform.Generic("A", coherence.MESI, 1), platform.Generic("B", coherence.MESI, 2)},
		"PF3 moesi*2":   {platform.Generic("A", coherence.MOESI, 1), platform.Generic("B", coherence.MOESI, 1)},
		"PF3 msi+moesi": {platform.Generic("A", coherence.MSI, 2), platform.Generic("B", coherence.MOESI, 1)},
		"PF3 triple":    {platform.Generic("A", coherence.MEI, 1), platform.Generic("B", coherence.MESI, 2), platform.Generic("C", coherence.MOESI, 2)},
	}
}

// TestRandomProgramsCoherentEverywhere is the repository's widest net: 7
// platform presets × 3 strategies × several seeds of random programs.
func TestRandomProgramsCoherentEverywhere(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for name, specs := range presets() {
		for _, sol := range platform.Solutions() {
			for _, seed := range seeds {
				lk := platform.LockChoice{Kind: platform.LockUncachedTAS, SpinDelay: 3}
				p, err := platform.Build(platform.Config{
					Processors: specs,
					Solution:   sol,
					Lock:       lk,
					Verify:     true,
				})
				if err != nil {
					t.Fatalf("%s/%v: %v", name, sol, err)
				}
				progs := make([]isa.Program, len(specs))
				rng := sim.NewRNG(seed * 0x9e3779b97f4a7c15)
				for i := range progs {
					progs[i] = randomProgram(rng, i, sol)
				}
				if err := p.LoadPrograms(progs); err != nil {
					t.Fatalf("%s/%v: %v", name, sol, err)
				}
				res := p.Run(20_000_000)
				if res.Err != nil {
					t.Fatalf("%s/%v seed %d: %v (reason %s)", name, sol, seed, res.Err, res.StopReason)
				}
				if !res.Coherent() {
					t.Fatalf("%s/%v seed %d: stale read: %v", name, sol, seed, res.Violations[0])
				}
			}
		}
	}
}

// TestRandomProgramsStateDiscipline: on heterogeneous proposed-solution
// platforms, sampled cache states must stay within the reduced protocol.
func TestRandomProgramsStateDiscipline(t *testing.T) {
	cases := []struct {
		name    string
		specs   []platform.ProcessorSpec
		illegal map[int][]coherence.State // per-core states that must not appear
	}{
		{
			name:  "MEI+MESI",
			specs: []platform.ProcessorSpec{platform.Generic("A", coherence.MEI, 1), platform.Generic("B", coherence.MESI, 1)},
			illegal: map[int][]coherence.State{
				1: {coherence.Shared, coherence.Owned},
			},
		},
		{
			name:  "MSI+MOESI",
			specs: []platform.ProcessorSpec{platform.Generic("A", coherence.MSI, 1), platform.Generic("B", coherence.MOESI, 1)},
			illegal: map[int][]coherence.State{
				1: {coherence.Exclusive, coherence.Owned},
			},
		},
		{
			name:  "MESI+MOESI",
			specs: []platform.ProcessorSpec{platform.Generic("A", coherence.MESI, 1), platform.Generic("B", coherence.MOESI, 1)},
			illegal: map[int][]coherence.State{
				1: {coherence.Owned},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lk := platform.LockChoice{Kind: platform.LockUncachedTAS, SpinDelay: 3}
			p, err := platform.Build(platform.Config{
				Processors: c.specs,
				Solution:   Proposed,
				Lock:       lk,
				Verify:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			progs := make([]isa.Program, len(c.specs))
			rng := sim.NewRNG(0xfeed)
			for i := range progs {
				progs[i] = randomProgram(rng, i, Proposed)
			}
			if err := p.LoadPrograms(progs); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10_000_000 && !p.Engine.Stopped(); i++ {
				p.Engine.Step()
				if i%3 != 0 {
					continue
				}
				for core, states := range c.illegal {
					arr := p.Controllers[core].Cache()
					for _, base := range arr.ResidentLines() {
						st := arr.StateOf(base)
						for _, bad := range states {
							if st == bad && platform.InShared(base) {
								t.Fatalf("core %d entered %v on line 0x%x at cycle %d", core, st, base, i)
							}
						}
					}
				}
			}
			if !p.Engine.Stopped() {
				t.Fatal("programs did not retire")
			}
		})
	}
}

// TestCrossSolutionFinalStateAgreement: the same workload run under all
// three strategies must leave the same logical final contents for every
// shared word (strategies change timing, never semantics).
func TestCrossSolutionFinalStateAgreement(t *testing.T) {
	params := workload.Params{Lines: 6, ExecTime: 2, Iterations: 4, WordsPerLine: 4, Seed: 11}
	var goldens []map[uint32]uint32
	for _, sol := range platform.Solutions() {
		p, err := Build(Config{
			Scenario: WCS,
			Solution: sol,
			Verify:   true,
			Params:   params,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := p.Run(20_000_000)
		if res.Err != nil {
			t.Fatalf("%v: %v", sol, res.Err)
		}
		goldens = append(goldens, p.GoldenExpected())
	}
	for addr, want := range goldens[0] {
		for i := 1; i < len(goldens); i++ {
			if goldens[i][addr] != want {
				t.Fatalf("strategies disagree at 0x%x: %#x vs %#x", addr, want, goldens[i][addr])
			}
		}
	}
}
