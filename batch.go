package hetcc

import (
	"fmt"
	"time"

	"hetcc/internal/platform"
	"hetcc/internal/runner"
)

// BatchSpec names one simulation of a batch.
type BatchSpec struct {
	// Label identifies the run in errors and digests (e.g.
	// "pf2/WCS/proposed/lines=8").
	Label string
	// Config is the simulation to run.
	Config Config
}

// BatchOptions tunes RunBatch; the zero value runs sequentially (one worker)
// with no timeout and no reports.
type BatchOptions struct {
	// Jobs is the worker count; <= 0 selects GOMAXPROCS.
	Jobs int
	// Timeout, when positive, abandons any single run exceeding this wall
	// clock (the run's own MaxCycles budget remains the primary bound).
	Timeout time.Duration
	// BaseSeed, when nonzero, gives every spec with a zero Params.Seed a
	// per-index seed via runner.DeriveSeed, so batch members draw distinct
	// but reproducible workload streams.
	BaseSeed uint64
	// Reports additionally builds each run's versioned report and its
	// SHA-256 digest (BatchResult.Report/Digest) for byte-identical
	// aggregation checks.
	Reports bool
}

// BatchResult is one run's outcome, reported at its spec's index.
type BatchResult struct {
	// Label echoes the spec label.
	Label string
	// Result is the simulation outcome (zero when Err is non-nil).
	Result Result
	// Report is the run's machine-readable versioned report (nil unless
	// BatchOptions.Reports; see platform.ReportSchemaVersion).
	Report *platform.Report
	// Digest is the hex SHA-256 of Report's canonical JSON (empty unless
	// BatchOptions.Reports).
	Digest string
	// Err is a build/run-dispatch error, a captured panic, or a timeout;
	// simulation-level failures stay in Result.Err as for Run.
	Err error
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
}

// RunBatch executes every spec on a bounded worker pool and returns results
// in spec order.  Each run builds its own platform, so runs share no mutable
// state; results (and digests, when enabled) are aggregated by spec index,
// making the returned slice — and anything rendered from it — byte-identical
// whatever the worker count.
func RunBatch(specs []BatchSpec, opts BatchOptions) []BatchResult {
	tasks := make([]runner.Task[BatchResult], len(specs))
	for i, spec := range specs {
		i, spec := i, spec
		if opts.BaseSeed != 0 && spec.Config.Params.Seed == 0 {
			spec.Config.Params.Seed = runner.DeriveSeed(opts.BaseSeed, i)
		}
		tasks[i] = runner.Task[BatchResult]{
			Label: spec.Label,
			Run: func() (BatchResult, error) {
				br := BatchResult{Label: spec.Label}
				p, err := Build(spec.Config)
				if err != nil {
					return br, err
				}
				maxCycles := spec.Config.MaxCycles
				if maxCycles == 0 {
					maxCycles = 50_000_000
				}
				res := p.Run(maxCycles)
				br.Result = Result{Result: res, EngineCyclesPerBusCycle: 2}
				if opts.Reports {
					rep := p.Report(res, spec.Config.Scenario.String())
					br.Report = &rep
					br.Digest, err = runner.ReportDigest(rep)
					if err != nil {
						return br, err
					}
				}
				return br, nil
			},
		}
	}
	outcomes := runner.Execute(tasks, runner.Options{Jobs: opts.Jobs, Timeout: opts.Timeout})
	results := make([]BatchResult, len(outcomes))
	for i, o := range outcomes {
		results[i] = o.Value
		results[i].Label = specs[i].Label
		results[i].Elapsed = o.Elapsed
		if o.Err != nil {
			results[i].Err = fmt.Errorf("hetcc: batch run %q: %w", specs[i].Label, o.Err)
		}
	}
	return results
}

// BatchDigest folds the per-run digests of a Reports-enabled batch into one
// order-sensitive digest certifying both every run and the aggregation
// order.  It returns an error if any run failed or reports were disabled.
func BatchDigest(results []BatchResult) (string, error) {
	digests := make([]string, len(results))
	for i, r := range results {
		if r.Err != nil {
			return "", fmt.Errorf("hetcc: batch digest: run %q failed: %w", r.Label, r.Err)
		}
		if r.Digest == "" {
			return "", fmt.Errorf("hetcc: batch digest: run %q has no report digest (enable BatchOptions.Reports)", r.Label)
		}
		digests[i] = r.Digest
	}
	return runner.CombineDigests(digests), nil
}

// BatchFirstError returns the lowest-index failure of a batch — either a
// dispatch error (BatchResult.Err) or a simulation failure (Result.Err) — or
// nil.  Index order makes the reported error identical to what a sequential
// sweep would have hit first.
func BatchFirstError(results []BatchResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
		if r.Result.Err != nil {
			return fmt.Errorf("hetcc: batch run %q: %w", r.Label, r.Result.Err)
		}
	}
	return nil
}
