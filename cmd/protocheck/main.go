// Command protocheck is the protocol-integration checker: for every pair
// (or a chosen combination) of coherence protocols it prints the paper's
// reduction — effective protocol, per-processor wrapper policy — and
// model-checks the result, proving which states the wrappers eliminate and
// demonstrating the staleness defect the un-integrated system would have.
//
// Usage:
//
//	protocheck                     # full pairwise matrix
//	protocheck -protocols MEI,MESI # one combination (2..4 protocols)
//	protocheck -replay             # also replay Tables 2/3 on the full simulator
//	protocheck -audit              # machine-verify the reduction table on live runs
//	protocheck -audit -jobs 8      # ... fanned across 8 simulation workers
//	protocheck -explore            # exhaustive BFS over every 2-master product FSM
//	protocheck -explore -protocols MESI,NONE   # one combination, all hardware modes
//	protocheck -explore -graph states.jsonl    # ...dumping the full state graph
//
// -explore enumerates every reachable state of the abstract protocol product
// machine (internal/explore) rather than simulating workloads: with wrappers
// it proves the reduction table over the whole reachable set, and without
// them it exhibits the staleness defects the wrappers exist to remove.
// NONE marks a master with no coherence hardware (TAG-CAM snoop logic).
//
// Any verification failure — a model-check violation of the requested
// combination, a live-run audit violation, an exploration invariant breach,
// a frontier overflow, or a blown -explore-budget — makes the command exit
// non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hetcc"
	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/explore"
	"hetcc/internal/platform"
	"hetcc/internal/stats"
)

var jobs = flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers for the -audit sweep")

func main() {
	var (
		protoFlag  = flag.String("protocols", "", "comma-separated protocol list (MEI, MSI, MESI, MOESI, Dragon; plus NONE with -explore); empty = full pairwise matrix")
		replay     = flag.Bool("replay", false, "replay the paper's Table 2/3 sequences on the cycle-level simulator")
		auditRun   = flag.Bool("audit", false, "run the protocol-pair matrix and the paper's platforms on the cycle-level simulator with the invariant auditor, checking observed states against the reduction table")
		dotFlag    = flag.String("dot", "", "print the named protocol's state machine as a Graphviz digraph and exit")
		exploreRun = flag.Bool("explore", false, "exhaustively enumerate the reachable states of the abstract protocol product machine, proving the reduction table (or, with -protocols, one combination in every hardware mode)")
		graphFlag  = flag.String("graph", "", "with -explore: write the explored state graph as JSONL to this file")
		budget     = flag.Duration("explore-budget", 60*time.Second, "with -explore: wall-clock budget for the full matrix sweep")
		maxStates  = flag.Int("max-states", explore.DefaultMaxStates, "with -explore: frontier bound per exploration (overflow fails the sweep)")
	)
	flag.Parse()

	if *dotFlag != "" {
		kinds, err := parseProtocols(*dotFlag + "," + *dotFlag) // reuse the 2..4 parser
		fatalIf(err)
		fmt.Print(coherence.New(kinds[0]).Dot())
		return
	}

	if *exploreRun {
		if *protoFlag != "" {
			kinds, err := parseProtocols(*protoFlag)
			fatalIf(err)
			if len(kinds) > explore.MaxMasters {
				fatalIf(fmt.Errorf("-explore supports at most %d masters, got %d", explore.MaxMasters, len(kinds)))
			}
			fatalIf(exploreOne(kinds, *graphFlag, *maxStates))
		} else {
			fatalIf(exploreMatrix(*graphFlag, *budget, *maxStates))
		}
		return
	}

	if *protoFlag != "" {
		kinds, err := parseProtocols(*protoFlag)
		fatalIf(err)
		fatalIf(check(kinds, true))
	} else {
		all := []coherence.Kind{coherence.MEI, coherence.MSI, coherence.MESI, coherence.MOESI}
		t := stats.NewTable("Protocol reduction matrix (paper Section 2)",
			"P0", "P1", "effective", "P0 policy", "P1 policy", "verified", "states explored")
		for i, a := range all {
			for j, b := range all {
				if j < i {
					continue
				}
				kinds := []coherence.Kind{a, b}
				integ, err := core.Reduce(kinds)
				fatalIf(err)
				res, err := core.Verify(kinds, integ.Policies, integ.Effective)
				fatalIf(err)
				verdict := "SOUND"
				if len(res.Violations) > 0 {
					verdict = "VIOLATIONS"
				}
				t.AddRow(a, b, integ.Effective, integ.Policies[0], integ.Policies[1], verdict, res.Explored)
			}
		}
		t.Render(os.Stdout)
		fmt.Println()

		// The defect matrix: what happens WITHOUT the wrappers.
		d := stats.NewTable("Un-integrated (no wrappers): model-checked defects",
			"P0", "P1", "defect")
		for i, a := range all {
			for j, b := range all {
				if j < i {
					continue
				}
				kinds := []coherence.Kind{a, b}
				pols := make([]core.WrapperPolicy, 2)
				for k := range pols {
					if a == b {
						// Homogeneous systems have compatible signals:
						// nothing is broken without wrappers.
						pols[k] = core.WrapperPolicy{AllowCacheToCache: a == coherence.MOESI}
					} else {
						// Heterogeneous shared-signal conventions are not
						// wired together.
						pols[k] = core.WrapperPolicy{Shared: core.SharedForceDeassert}
					}
				}
				res, err := core.Verify(kinds, pols, worstEffective(kinds))
				fatalIf(err)
				defect := "none"
				for _, v := range res.Violations {
					if strings.HasPrefix(v.Kind, "stale") {
						defect = v.String()
						break
					}
				}
				d.AddRow(a, b, defect)
			}
		}
		d.Render(os.Stdout)
		fmt.Println()
	}

	if *auditRun {
		fatalIf(auditMatrix())
	}

	if *replay {
		fmt.Println("Replaying the paper's Table 2 and Table 3 sequences on the cycle-level simulator:")
		for _, n := range []int{2, 3} {
			var broken, fixed hetcc.SequenceResult
			var err error
			if n == 2 {
				broken, fixed, err = hetcc.Table2()
			} else {
				broken, fixed, err = hetcc.Table3()
			}
			fatalIf(err)
			fmt.Printf("\nTable %d (%v + %v):\n", n, broken.Protocols[0], broken.Protocols[1])
			for i := range broken.Steps {
				fmt.Printf("  %s: no-wrapper states [%v %v]   wrapped states [%v %v]\n",
					broken.Steps[i].Label,
					broken.Steps[i].States[0], broken.Steps[i].States[1],
					fixed.Steps[i].States[0], fixed.Steps[i].States[1])
			}
			fmt.Printf("  stale read without wrappers: %v; with wrappers: %v\n", broken.StaleRead, fixed.StaleRead)
		}
	}
}

// auditMatrix machine-verifies the paper's reduction table on live runs: for
// every protocol pair (and the three case-study platforms) it simulates a
// small WCS workload under the proposed solution with the invariant auditor
// on, then checks that the states each cache actually reached fall inside
// core.AllowedStates for the reduction — the dynamic counterpart of the
// static model check above.
func auditMatrix() error {
	type combo struct {
		label string
		procs []platform.ProcessorSpec
	}
	var combos []combo
	all := []coherence.Kind{coherence.MEI, coherence.MSI, coherence.MESI, coherence.MOESI}
	for i, a := range all {
		for j, b := range all {
			if j < i {
				continue
			}
			combos = append(combos, combo{
				label: fmt.Sprintf("%v+%v", a, b),
				procs: []platform.ProcessorSpec{
					platform.Generic("P0-"+a.String(), a, 1),
					platform.Generic("P1-"+b.String(), b, 1),
				},
			})
		}
	}
	combos = append(combos,
		combo{label: "PF1 (ARM+ARM)", procs: platform.ARMPair()},
		combo{label: "PF2 (PPC+ARM)", procs: platform.PPCARm()},
		combo{label: "PF3 (PPC+i486)", procs: platform.PPCI486()},
	)

	// The matrix fans out across the deterministic batch executor; rows are
	// aggregated in combo order, so the table is byte-identical whatever the
	// worker count.
	specs := make([]hetcc.BatchSpec, len(combos))
	for i, c := range combos {
		specs[i] = hetcc.BatchSpec{
			Label: c.label,
			Config: hetcc.Config{
				Scenario:   hetcc.WCS,
				Solution:   hetcc.Proposed,
				Processors: c.procs,
				Params:     hetcc.Params{Lines: 8, ExecTime: 1, Iterations: 4, WordsPerLine: 8},
				Verify:     true,
				Audit:      true,
				MaxCycles:  5_000_000,
			},
		}
	}
	results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: *jobs})

	t := stats.NewTable("Reduction table, machine-verified on live runs (WCS, proposed solution)",
		"platform", "effective", "P0 observed", "P1 observed", "violations", "verdict")
	failures := 0
	for i, c := range combos {
		if err := results[i].Err; err != nil {
			return err
		}
		res := results[i].Result
		if res.Err != nil {
			return fmt.Errorf("%s: run failed: %w", c.label, res.Err)
		}
		a := res.Audit
		protocols := make([]coherence.Kind, len(c.procs))
		for i, spec := range c.procs {
			protocols[i] = spec.Protocol
		}
		integ, err := core.Reduce(protocols)
		if err != nil {
			return err
		}
		verdict := "PASS"
		if a.ViolationCount > 0 || !res.Coherent() {
			verdict = "FAIL"
		}
		observed := make([]string, len(a.Reachable))
		for i, states := range a.Reachable {
			observed[i] = "{" + strings.Join(states, ",") + "}"
			if !withinAllowed(states, auditAllowed(c.procs[i], integ)) {
				verdict = "FAIL"
			}
		}
		if verdict == "FAIL" {
			failures++
		}
		t.AddRow(c.label, integ.Effective, observed[0], observed[1], a.ViolationCount, verdict)
	}
	t.Render(os.Stdout)
	if failures > 0 {
		return fmt.Errorf("%d platform(s) violated the reduction table", failures)
	}
	fmt.Println("\nall observed state sets fall within the paper's reduction table; zero invariant violations")
	return nil
}

// auditAllowed mirrors the platform's allowed-state computation for one spec
// under the proposed solution: the reduction table, plus S for write-through
// shared lines.
func auditAllowed(spec platform.ProcessorSpec, integ core.Integration) []coherence.State {
	states := core.AllowedStates(spec.Protocol, integ.Effective)
	if spec.WriteThroughShared {
		states = append(append([]coherence.State(nil), states...), coherence.Shared)
	}
	return states
}

func withinAllowed(observed []string, allowed []coherence.State) bool {
	for _, name := range observed {
		ok := name == coherence.Invalid.String()
		for _, s := range allowed {
			if name == s.String() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// worstEffective labels the un-integrated system by its largest common
// sub-protocol so AllowedStates does not flag legitimate native states: the
// defect we want to surface is staleness, not state usage.
func worstEffective(kinds []coherence.Kind) coherence.Kind {
	eff := kinds[0]
	for _, k := range kinds[1:] {
		if k != eff {
			// Heterogeneous: AllowedStates(native, native) keeps the
			// native sets; use each processor's own protocol by returning
			// the first — Verify only uses effective for AllowedStates,
			// which falls back to native when equal.
			return eff
		}
	}
	return eff
}

func parseProtocols(s string) ([]coherence.Kind, error) {
	var out []coherence.Kind
	for _, part := range strings.Split(s, ",") {
		switch strings.ToUpper(strings.TrimSpace(part)) {
		case "MEI":
			out = append(out, coherence.MEI)
		case "MSI":
			out = append(out, coherence.MSI)
		case "MESI":
			out = append(out, coherence.MESI)
		case "MOESI":
			out = append(out, coherence.MOESI)
		case "DRAGON":
			out = append(out, coherence.Dragon)
		case "NONE":
			// A master without coherence hardware — meaningful to -explore
			// (and to core.Reduce, which plans snoop logic for it).
			out = append(out, coherence.None)
		default:
			return nil, fmt.Errorf("unknown protocol %q", part)
		}
	}
	if len(out) < 2 || len(out) > 4 {
		return nil, fmt.Errorf("need 2..4 protocols, got %d", len(out))
	}
	return out, nil
}

func check(kinds []coherence.Kind, verbose bool) error {
	integ, err := core.Reduce(kinds)
	if err != nil {
		return err
	}
	fmt.Printf("protocols: %v\n", kinds)
	fmt.Printf("platform class: %v\n", integ.Class)
	fmt.Printf("effective protocol: %v\n", integ.Effective)
	for i, p := range integ.Policies {
		fmt.Printf("  P%d (%v): wrapper %v\n", i, kinds[i], p)
	}
	res, err := core.Verify(kinds, integ.Policies, integ.Effective)
	if err != nil {
		return err
	}
	fmt.Printf("model check: %d abstract states explored\n", res.Explored)
	for i, states := range res.Reachable {
		var names []string
		for _, s := range states {
			names = append(names, s.String())
		}
		var eliminated []string
		for _, s := range coherence.New(kinds[i]).States() {
			if res.Eliminated(i, s) {
				eliminated = append(eliminated, s.String())
			}
		}
		fmt.Printf("  P%d reachable: {%s}", i, strings.Join(names, ","))
		if len(eliminated) > 0 {
			fmt.Printf("   eliminated by wrappers: {%s}", strings.Join(eliminated, ","))
		}
		fmt.Println()
	}
	if len(res.Violations) == 0 {
		fmt.Println("result: SOUND (no stale reads, no out-of-protocol states)")
		return nil
	}
	fmt.Printf("result: %d VIOLATIONS\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  %v\n", v)
	}
	// A violated combination is a failed check: exit non-zero instead of
	// only printing the verdict.
	return fmt.Errorf("%d model-check violation(s) for %v", len(res.Violations), kinds)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "protocheck:", err)
		os.Exit(1)
	}
}
