// Command protocheck is the protocol-integration checker: for every pair
// (or a chosen combination) of coherence protocols it prints the paper's
// reduction — effective protocol, per-processor wrapper policy — and
// model-checks the result, proving which states the wrappers eliminate and
// demonstrating the staleness defect the un-integrated system would have.
//
// Usage:
//
//	protocheck                     # full pairwise matrix
//	protocheck -protocols MEI,MESI # one combination (2..4 protocols)
//	protocheck -replay             # also replay Tables 2/3 on the full simulator
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetcc"
	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/stats"
)

func main() {
	var (
		protoFlag = flag.String("protocols", "", "comma-separated protocol list (MEI, MSI, MESI, MOESI, Dragon); empty = full pairwise matrix")
		replay    = flag.Bool("replay", false, "replay the paper's Table 2/3 sequences on the cycle-level simulator")
		dotFlag   = flag.String("dot", "", "print the named protocol's state machine as a Graphviz digraph and exit")
	)
	flag.Parse()

	if *dotFlag != "" {
		kinds, err := parseProtocols(*dotFlag + "," + *dotFlag) // reuse the 2..4 parser
		fatalIf(err)
		fmt.Print(coherence.New(kinds[0]).Dot())
		return
	}

	if *protoFlag != "" {
		kinds, err := parseProtocols(*protoFlag)
		fatalIf(err)
		fatalIf(check(kinds, true))
	} else {
		all := []coherence.Kind{coherence.MEI, coherence.MSI, coherence.MESI, coherence.MOESI}
		t := stats.NewTable("Protocol reduction matrix (paper Section 2)",
			"P0", "P1", "effective", "P0 policy", "P1 policy", "verified", "states explored")
		for i, a := range all {
			for j, b := range all {
				if j < i {
					continue
				}
				kinds := []coherence.Kind{a, b}
				integ, err := core.Reduce(kinds)
				fatalIf(err)
				res, err := core.Verify(kinds, integ.Policies, integ.Effective)
				fatalIf(err)
				verdict := "SOUND"
				if len(res.Violations) > 0 {
					verdict = "VIOLATIONS"
				}
				t.AddRow(a, b, integ.Effective, integ.Policies[0], integ.Policies[1], verdict, res.Explored)
			}
		}
		t.Render(os.Stdout)
		fmt.Println()

		// The defect matrix: what happens WITHOUT the wrappers.
		d := stats.NewTable("Un-integrated (no wrappers): model-checked defects",
			"P0", "P1", "defect")
		for i, a := range all {
			for j, b := range all {
				if j < i {
					continue
				}
				kinds := []coherence.Kind{a, b}
				pols := make([]core.WrapperPolicy, 2)
				for k := range pols {
					if a == b {
						// Homogeneous systems have compatible signals:
						// nothing is broken without wrappers.
						pols[k] = core.WrapperPolicy{AllowCacheToCache: a == coherence.MOESI}
					} else {
						// Heterogeneous shared-signal conventions are not
						// wired together.
						pols[k] = core.WrapperPolicy{Shared: core.SharedForceDeassert}
					}
				}
				res, err := core.Verify(kinds, pols, worstEffective(kinds))
				fatalIf(err)
				defect := "none"
				for _, v := range res.Violations {
					if strings.HasPrefix(v.Kind, "stale") {
						defect = v.String()
						break
					}
				}
				d.AddRow(a, b, defect)
			}
		}
		d.Render(os.Stdout)
		fmt.Println()
	}

	if *replay {
		fmt.Println("Replaying the paper's Table 2 and Table 3 sequences on the cycle-level simulator:")
		for _, n := range []int{2, 3} {
			var broken, fixed hetcc.SequenceResult
			var err error
			if n == 2 {
				broken, fixed, err = hetcc.Table2()
			} else {
				broken, fixed, err = hetcc.Table3()
			}
			fatalIf(err)
			fmt.Printf("\nTable %d (%v + %v):\n", n, broken.Protocols[0], broken.Protocols[1])
			for i := range broken.Steps {
				fmt.Printf("  %s: no-wrapper states [%v %v]   wrapped states [%v %v]\n",
					broken.Steps[i].Label,
					broken.Steps[i].States[0], broken.Steps[i].States[1],
					fixed.Steps[i].States[0], fixed.Steps[i].States[1])
			}
			fmt.Printf("  stale read without wrappers: %v; with wrappers: %v\n", broken.StaleRead, fixed.StaleRead)
		}
	}
}

// worstEffective labels the un-integrated system by its largest common
// sub-protocol so AllowedStates does not flag legitimate native states: the
// defect we want to surface is staleness, not state usage.
func worstEffective(kinds []coherence.Kind) coherence.Kind {
	eff := kinds[0]
	for _, k := range kinds[1:] {
		if k != eff {
			// Heterogeneous: AllowedStates(native, native) keeps the
			// native sets; use each processor's own protocol by returning
			// the first — Verify only uses effective for AllowedStates,
			// which falls back to native when equal.
			return eff
		}
	}
	return eff
}

func parseProtocols(s string) ([]coherence.Kind, error) {
	var out []coherence.Kind
	for _, part := range strings.Split(s, ",") {
		switch strings.ToUpper(strings.TrimSpace(part)) {
		case "MEI":
			out = append(out, coherence.MEI)
		case "MSI":
			out = append(out, coherence.MSI)
		case "MESI":
			out = append(out, coherence.MESI)
		case "MOESI":
			out = append(out, coherence.MOESI)
		case "DRAGON":
			out = append(out, coherence.Dragon)
		default:
			return nil, fmt.Errorf("unknown protocol %q", part)
		}
	}
	if len(out) < 2 || len(out) > 4 {
		return nil, fmt.Errorf("need 2..4 protocols, got %d", len(out))
	}
	return out, nil
}

func check(kinds []coherence.Kind, verbose bool) error {
	integ, err := core.Reduce(kinds)
	if err != nil {
		return err
	}
	fmt.Printf("protocols: %v\n", kinds)
	fmt.Printf("platform class: %v\n", integ.Class)
	fmt.Printf("effective protocol: %v\n", integ.Effective)
	for i, p := range integ.Policies {
		fmt.Printf("  P%d (%v): wrapper %v\n", i, kinds[i], p)
	}
	res, err := core.Verify(kinds, integ.Policies, integ.Effective)
	if err != nil {
		return err
	}
	fmt.Printf("model check: %d abstract states explored\n", res.Explored)
	for i, states := range res.Reachable {
		var names []string
		for _, s := range states {
			names = append(names, s.String())
		}
		var eliminated []string
		for _, s := range coherence.New(kinds[i]).States() {
			if res.Eliminated(i, s) {
				eliminated = append(eliminated, s.String())
			}
		}
		fmt.Printf("  P%d reachable: {%s}", i, strings.Join(names, ","))
		if len(eliminated) > 0 {
			fmt.Printf("   eliminated by wrappers: {%s}", strings.Join(eliminated, ","))
		}
		fmt.Println()
	}
	if len(res.Violations) == 0 {
		fmt.Println("result: SOUND (no stale reads, no out-of-protocol states)")
	} else {
		fmt.Printf("result: %d VIOLATIONS\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("  %v\n", v)
		}
	}
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "protocheck:", err)
		os.Exit(1)
	}
}
