package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hetcc/internal/coherence"
	"hetcc/internal/explore"
	"hetcc/internal/stats"
)

// exploreKinds is the full protocol alphabet of the -explore matrix,
// including the coherence-less marker.
var exploreKinds = []coherence.Kind{
	coherence.MEI, coherence.MSI, coherence.MESI,
	coherence.MOESI, coherence.Dragon, coherence.None,
}

// graphSink wraps the optional JSONL state-graph file: before each
// exploration it writes a header record naming the combination, so one file
// holds the whole matrix.
type graphSink struct {
	w *bufio.Writer
}

func newGraphSink(path string) (*graphSink, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	closeFn := func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return &graphSink{w: w}, closeFn, nil
}

func (g *graphSink) begin(kinds []coherence.Kind, mode explore.Mode) io.Writer {
	if g == nil {
		return nil
	}
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	hdr, _ := json.Marshal(map[string]any{"combo": strings.Join(names, "+"), "mode": mode.String()})
	g.w.Write(append(hdr, '\n'))
	return g.w
}

// exploreMatrix runs the exhaustive sweep over every 2-master protocol
// multiset, wrapped and unwired, printing the state/transition census and
// gating on: zero wrapped violations, complete sweeps, at least one unwired
// defect (the positive control), and the wall-clock budget.
func exploreMatrix(graphPath string, budget time.Duration, maxStates int) error {
	start := time.Now()
	graph, closeGraph, err := newGraphSink(graphPath)
	if err != nil {
		return err
	}

	t := stats.NewTable("Exhaustive reachability over the protocol product FSMs (2 masters, one line, symbolic data)",
		"P0", "P1", "mode", "effective", "states", "transitions", "violations", "verdict")
	var (
		wrappedBad     int
		unwiredDefects int
		totalStates    int
		totalTrans     int
		firstWrapped   *explore.Violation
		firstDefect    *explore.Violation
		defectLabel    string
	)
	for i, a := range exploreKinds {
		for _, b := range exploreKinds[i:] {
			kinds := []coherence.Kind{a, b}
			label := fmt.Sprintf("%v+%v", a, b)

			res, err := explore.Explore(explore.Config{
				Protocols: kinds, Mode: explore.ModeWrapped,
				MaxStates: maxStates, Graph: graph.begin(kinds, explore.ModeWrapped),
			})
			switch {
			case err != nil && strings.Contains(err.Error(), "Dragon"):
				// The reduction rejects update×invalidate mixes by design;
				// the unwired row below shows the defect that justifies it.
				t.AddRow(a, b, "wrapped", "-", "-", "-", "-", "REJECTED (update-based mix, by design)")
			case err != nil:
				return fmt.Errorf("%s wrapped: %w", label, err)
			default:
				totalStates += res.States
				totalTrans += res.Transitions
				verdict := "PROVED"
				if !res.Complete {
					verdict = fmt.Sprintf("OVERFLOW (%d dropped)", res.Dropped)
					wrappedBad++
				}
				if n := len(res.Violations); n > 0 {
					verdict = fmt.Sprintf("VIOLATIONS(%d)", n)
					wrappedBad++
					if firstWrapped == nil {
						v := res.Violations[0]
						firstWrapped = &v
					}
				}
				t.AddRow(a, b, "wrapped", res.Effective, res.States, res.Transitions, len(res.Violations), verdict)
			}

			res, err = explore.Explore(explore.Config{
				Protocols: kinds, Mode: explore.ModeUnwired,
				MaxStates: maxStates, Graph: graph.begin(kinds, explore.ModeUnwired),
			})
			if err != nil {
				return fmt.Errorf("%s unwired: %w", label, err)
			}
			totalStates += res.States
			totalTrans += res.Transitions
			verdict := "coherent"
			if n := len(res.Violations); n > 0 {
				verdict = fmt.Sprintf("DEFECT(%s)", res.Violations[0].Check)
				unwiredDefects += n
				if firstDefect == nil {
					v := res.Violations[0]
					firstDefect = &v
					defectLabel = label
				}
			}
			t.AddRow(a, b, "unwired", "-", res.States, res.Transitions, len(res.Violations), verdict)
		}
	}
	t.Render(os.Stdout)
	elapsed := time.Since(start)
	fmt.Printf("\ncensus: %d states, %d transitions explored in %v\n", totalStates, totalTrans, elapsed.Round(time.Millisecond))

	if firstWrapped != nil {
		fmt.Printf("\nwrapped violation — counterexample replay:\n")
		printTrace(*firstWrapped)
	}
	if firstDefect != nil {
		fmt.Printf("\npositive control — first defect without wrappers (%s): %v\n", defectLabel, *firstDefect)
		printTrace(*firstDefect)
	}
	if err := closeGraph(); err != nil {
		return err
	}

	var fails []string
	if wrappedBad > 0 {
		fails = append(fails, fmt.Sprintf("%d wrapped exploration(s) violated invariants or overflowed", wrappedBad))
	}
	if unwiredDefects == 0 {
		fails = append(fails, "positive control failed: no defects found without wrappers")
	}
	if elapsed > budget {
		fails = append(fails, fmt.Sprintf("sweep took %v, budget %v", elapsed.Round(time.Millisecond), budget))
	}
	if len(fails) > 0 {
		return fmt.Errorf("explore: %s", strings.Join(fails, "; "))
	}
	fmt.Println("all wrapped product FSMs PROVED coherent over every reachable state; un-wrapped defects confirmed the controls")
	return nil
}

// exploreOne explores a single combination (2..3 masters) in all three
// hardware modes, with per-master reachable/eliminated sets and full
// counterexample replays.
func exploreOne(kinds []coherence.Kind, graphPath string, maxStates int) error {
	graph, closeGraph, err := newGraphSink(graphPath)
	if err != nil {
		return err
	}
	fmt.Printf("protocols: %v\n", kinds)
	violated := false
	for _, mode := range []explore.Mode{explore.ModeWrapped, explore.ModeUnwired, explore.ModeNoSnoop} {
		res, err := explore.Explore(explore.Config{
			Protocols: kinds, Mode: mode,
			MaxStates: maxStates, Graph: graph.begin(kinds, mode),
		})
		if err != nil {
			if mode == explore.ModeWrapped {
				// Rejected reductions are a result, not a failure: the
				// unwired mode below demonstrates why.
				fmt.Printf("\n[%v] reduction rejected: %v\n", mode, err)
				continue
			}
			return err
		}
		fmt.Printf("\n[%v] %d states, %d transitions, peak frontier %d", mode, res.States, res.Transitions, res.FrontierPeak)
		if mode == explore.ModeWrapped {
			fmt.Printf(", effective %v", res.Effective)
		}
		if !res.Complete {
			fmt.Printf(" — INCOMPLETE, %d states dropped", res.Dropped)
			violated = true
		}
		fmt.Println()
		for i, states := range res.Reachable {
			var names, gone []string
			for _, s := range states {
				names = append(names, s.String())
			}
			for _, s := range coherence.New(protoOrMEI(kinds[i])).States() {
				if res.Eliminated(i, s) {
					gone = append(gone, s.String())
				}
			}
			fmt.Printf("  P%d (%v) reachable: {%s}", i, kinds[i], strings.Join(names, ","))
			if len(gone) > 0 {
				fmt.Printf("   eliminated: {%s}", strings.Join(gone, ","))
			}
			fmt.Println()
		}
		switch {
		case len(res.Violations) == 0 && mode == explore.ModeWrapped:
			fmt.Println("  PROVED: no invariant violation in any reachable state")
		case len(res.Violations) == 0:
			fmt.Println("  no invariant violation in any reachable state")
		default:
			if mode == explore.ModeWrapped {
				violated = true
			}
			fmt.Printf("  %d violation(s); first counterexample:\n", len(res.Violations))
			printTrace(res.Violations[0])
		}
	}
	if err := closeGraph(); err != nil {
		return err
	}
	if violated {
		return fmt.Errorf("wrapped exploration of %v violated invariants", kinds)
	}
	return nil
}

// protoOrMEI maps the coherence-less marker to the MEI machine its private
// cache behaves as, for the eliminated-state display.
func protoOrMEI(k coherence.Kind) coherence.Kind {
	if k == coherence.None {
		return coherence.MEI
	}
	return k
}

func printTrace(v explore.Violation) {
	fmt.Printf("  %v\n", v)
	for _, l := range v.Trace {
		fmt.Printf("    %s\n", l)
	}
}
