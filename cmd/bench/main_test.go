package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetcc"
	"hetcc/internal/platform"
	"hetcc/internal/profile"
)

func sampleFile(cycles uint64) File {
	f := File{
		Schema:        Schema,
		SchemaVersion: SchemaVersion,
		Rev:           "test",
		Params:        hetcc.Params{Lines: 8, ExecTime: 1, Iterations: 8, WordsPerLine: 8},
		Runs: []Run{{
			Name: "pf2/wcs/proposed", Platform: "pf2", Scenario: "WCS", Solution: "proposed",
			Cycles: cycles, BusCycles: cycles / 2, BusUtilization: 0.8,
			Stalls: []profile.CoreSummary{{Core: 0, StallCycles: 10, Causes: map[string]uint64{"refill": 10}}},
		}},
	}
	return f
}

func writeSample(t *testing.T, name string, f File) string {
	t.Helper()
	d, err := digest(f)
	if err != nil {
		t.Fatal(err)
	}
	f.Digest = d
	path := filepath.Join(t.TempDir(), name)
	if err := writeFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDigestIgnoresWallClockFields pins what the digest certifies: params and
// runs, not the revision label or the machine-dependent go-bench numbers.
func TestDigestIgnoresWallClockFields(t *testing.T) {
	a := sampleFile(1000)
	b := sampleFile(1000)
	b.Rev = "other"
	b.GoBench = []GoBench{{Name: "BenchmarkX", NsOp: 123.4}}
	da, err := digest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := digest(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatal("digest depends on rev/go_bench")
	}
	c := sampleFile(1001)
	if dc, _ := digest(c); dc == da {
		t.Fatal("digest misses a cycle change")
	}
}

// TestReadFileRejectsTampering checks the round trip and the digest gate.
func TestReadFileRejectsTampering(t *testing.T) {
	path := writeSample(t, "ok.json", sampleFile(1000))
	f, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Runs[0].Cycles != 1000 || f.Runs[0].Stalls[0].Causes["refill"] != 10 {
		t.Fatalf("round trip lost data: %+v", f.Runs[0])
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := filepath.Join(t.TempDir(), "tampered.json")
	if err := os.WriteFile(tampered, []byte(string(raw[:len(raw)-100])+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readFile(tampered); err == nil {
		t.Fatal("truncated file accepted")
	}

	bad := sampleFile(1000)
	bad.Schema = "something.else"
	badPath := writeSample(t, "bad.json", bad)
	if _, err := readFile(badPath); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestDiffExitCodes drives the diff subcommand end to end on disk files:
// clean, within-threshold, regression, and missing-run cases.
func TestDiffExitCodes(t *testing.T) {
	base := writeSample(t, "base.json", sampleFile(1000))
	same := writeSample(t, "same.json", sampleFile(1000))
	within := writeSample(t, "within.json", sampleFile(1050))
	regressed := writeSample(t, "regressed.json", sampleFile(1200))
	improved := writeSample(t, "improved.json", sampleFile(800))
	empty := writeSample(t, "empty.json", File{Schema: Schema, SchemaVersion: SchemaVersion})

	cases := []struct {
		name     string
		old, cur string
		want     int
	}{
		{"unchanged", base, same, 0},
		{"within threshold", base, within, 0},
		{"regression", base, regressed, 1},
		{"improvement", base, improved, 0},
		{"missing run", base, empty, 1},
		{"new run no baseline", empty, base, 0},
	}
	for _, c := range cases {
		if got := runDiff([]string{c.old, c.cur}); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}
	// A tighter threshold flips the within-threshold case.
	if got := runDiff([]string{"-threshold", "0.01", base, within}); got != 1 {
		t.Error("threshold flag ignored")
	}
	if got := runDiff([]string{base}); got != 2 {
		t.Error("missing operand not a usage error")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns what
// it printed alongside its exit code.
func captureStdout(t *testing.T, fn func() int) (string, int) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	code := fn()
	os.Stdout = saved
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), code
}

// TestDiffUnreadableFileExitCode: I/O and validation failures are usage-level
// errors (exit 2), distinct from regressions (exit 1).
func TestDiffUnreadableFileExitCode(t *testing.T) {
	ok := writeSample(t, "ok.json", sampleFile(1000))
	missing := filepath.Join(t.TempDir(), "nope.json")
	if got := runDiff([]string{missing, ok}); got != 2 {
		t.Errorf("unreadable old file: exit %d, want 2", got)
	}
	if got := runDiff([]string{ok, missing}); got != 2 {
		t.Errorf("unreadable new file: exit %d, want 2", got)
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runDiff([]string{ok, garbage}); got != 2 {
		t.Errorf("malformed new file: exit %d, want 2", got)
	}
}

// TestDiffSummaryCountsImprovements: improvements beyond the threshold are
// counted in the summary line, not only reported per run.
func TestDiffSummaryCountsImprovements(t *testing.T) {
	base := sampleFile(1000)
	base.Runs = append(base.Runs, Run{Name: "pf2/wcs/software", Cycles: 2000})
	cur := sampleFile(1000)
	cur.Runs = append(cur.Runs, Run{Name: "pf2/wcs/software", Cycles: 1200}) // -40%
	oldPath := writeSample(t, "old.json", base)
	curPath := writeSample(t, "cur.json", cur)
	out, code := captureStdout(t, func() int { return runDiff([]string{oldPath, curPath}) })
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "no regressions (0 regression(s), 1 improvement(s) beyond 10%)") {
		t.Fatalf("summary does not count improvements beyond threshold:\n%s", out)
	}
	if !strings.Contains(out, "improvement beyond threshold") {
		t.Fatalf("per-run improvement line missing:\n%s", out)
	}
}

// explainFixtures builds a baseline and a regressed file whose regression is
// dominated by arbitration-wait stalls — the "slower arbitration" scenario of
// the acceptance criteria.
func explainFixtures(t *testing.T) (string, string) {
	t.Helper()
	base := sampleFile(1000)
	base.Runs[0].Stalls = []profile.CoreSummary{
		{Core: 0, StallCycles: 300, Causes: map[string]uint64{"arb-wait": 100, "refill": 200}},
	}
	base.Manifest = &platform.Manifest{SchemaVersion: 5, GoVersion: "go1.0-old"}
	cur := sampleFile(1600)
	cur.Runs[0].Stalls = []profile.CoreSummary{
		{Core: 0, StallCycles: 850, Causes: map[string]uint64{"arb-wait": 600, "refill": 250}},
	}
	cur.Manifest = &platform.Manifest{SchemaVersion: 5, GoVersion: "go9.9-other"}
	return writeSample(t, "explain-old.json", base), writeSample(t, "explain-new.json", cur)
}

// TestDiffExplainNamesDominantCause: `bench diff -explain` on a run whose
// arbitration stalls exploded must print a conserved cause table with
// arb-wait on top, plus the cross-toolchain warning from the manifests.
func TestDiffExplainNamesDominantCause(t *testing.T) {
	oldPath, curPath := explainFixtures(t)
	out, code := captureStdout(t, func() int {
		return runDiff([]string{"-explain", oldPath, curPath})
	})
	if code != 1 {
		t.Fatalf("regression not detected: exit %d\n%s", code, out)
	}
	causeIdx := strings.Index(out, "by cause (stall-ledger)")
	if causeIdx < 0 {
		t.Fatalf("explanation table missing:\n%s", out)
	}
	table := out[causeIdx:]
	arb := strings.Index(table, "arb-wait")
	refill := strings.Index(table, "refill")
	if arb < 0 || (refill >= 0 && arb > refill) {
		t.Fatalf("arb-wait is not the top cause of the explanation:\n%s", out)
	}
	if !strings.Contains(out, "warning: comparing across toolchains") {
		t.Fatalf("cross-toolchain warning missing:\n%s", out)
	}
}

// TestDiffJSONArtifact: -json writes a conserved machine-readable delta
// artifact with the regression/improvement counts CI uploads on failure.
func TestDiffJSONArtifact(t *testing.T) {
	oldPath, curPath := explainFixtures(t)
	artPath := filepath.Join(t.TempDir(), "delta.json")
	out, code := captureStdout(t, func() int {
		return runDiff([]string{"-json", artPath, oldPath, curPath})
	})
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	raw, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	var art DeltaArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact does not unmarshal: %v", err)
	}
	if art.Schema != DeltaSchema || art.SchemaVersion != DeltaSchemaVersion {
		t.Fatalf("artifact schema %q v%d", art.Schema, art.SchemaVersion)
	}
	if art.Regressions != 1 || len(art.Explanations) != 1 {
		t.Fatalf("artifact counts wrong: %+v", art)
	}
	e := art.Explanations[0]
	if !e.Conserved() {
		t.Fatalf("artifact explanation not conserved: %+v", e)
	}
	if d := e.Dominant(); d == nil || d.Cause != "arb-wait" || d.Delta != 500 {
		t.Fatalf("artifact dominant cause %+v, want arb-wait +500", d)
	}
	if len(art.ManifestDiff) == 0 {
		t.Fatal("artifact lost the manifest diff")
	}
}

// TestTrendMixedSchemaFiles: trend must tolerate older files that predate
// allocs_op (rendering "[-]") and warn when files span toolchains.
func TestTrendMixedSchemaFiles(t *testing.T) {
	dir := t.TempDir()
	oldFile := sampleFile(1000)
	oldFile.Rev = "seed"
	oldFile.GoBench = []GoBench{{Name: "BenchmarkWCS", NsOp: 120.5}} // no allocs_op
	oldFile.Manifest = &platform.Manifest{SchemaVersion: 5, GoVersion: "go1.0-old"}
	newFile := sampleFile(900)
	newFile.Rev = "head"
	allocs := uint64(3)
	newFile.GoBench = []GoBench{{Name: "BenchmarkWCS", NsOp: 110.0, AllocsOp: &allocs}}
	newFile.Manifest = &platform.Manifest{SchemaVersion: 5, GoVersion: "go9.9-other"}
	for name, f := range map[string]File{"BENCH_seed.json": oldFile, "BENCH_head.json": newFile} {
		d, err := digest(f)
		if err != nil {
			t.Fatal(err)
		}
		f.Digest = d
		if err := writeFile(filepath.Join(dir, name), f); err != nil {
			t.Fatal(err)
		}
	}
	out, code := captureStdout(t, func() int { return runTrend([]string{"-dir", dir}) })
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "120.5 [-]") {
		t.Fatalf("missing allocs_op not rendered as [-]:\n%s", out)
	}
	if !strings.Contains(out, "110.0 [3]") {
		t.Fatalf("recorded allocs_op not rendered:\n%s", out)
	}
	if !strings.Contains(out, "different toolchains") {
		t.Fatalf("cross-toolchain trend warning missing:\n%s", out)
	}
}

// TestBenchLineParsing pins the `go test -bench` output row format.
func TestBenchLineParsing(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkMetricsDisabled-8   117   10212345.0 ns/op   0 B/op   0 allocs/op")
	if m == nil || m[1] != "BenchmarkMetricsDisabled-8" || m[2] != "10212345.0" {
		t.Fatalf("parse failed: %v", m)
	}
	if benchLine.FindStringSubmatch("ok  hetcc  1.2s") != nil {
		t.Fatal("summary line misparsed as a result")
	}
}
