package main

import (
	"os"
	"path/filepath"
	"testing"

	"hetcc"
	"hetcc/internal/profile"
)

func sampleFile(cycles uint64) File {
	f := File{
		Schema:        Schema,
		SchemaVersion: SchemaVersion,
		Rev:           "test",
		Params:        hetcc.Params{Lines: 8, ExecTime: 1, Iterations: 8, WordsPerLine: 8},
		Runs: []Run{{
			Name: "pf2/wcs/proposed", Platform: "pf2", Scenario: "WCS", Solution: "proposed",
			Cycles: cycles, BusCycles: cycles / 2, BusUtilization: 0.8,
			Stalls: []profile.CoreSummary{{Core: 0, StallCycles: 10, Causes: map[string]uint64{"refill": 10}}},
		}},
	}
	return f
}

func writeSample(t *testing.T, name string, f File) string {
	t.Helper()
	d, err := digest(f)
	if err != nil {
		t.Fatal(err)
	}
	f.Digest = d
	path := filepath.Join(t.TempDir(), name)
	if err := writeFile(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDigestIgnoresWallClockFields pins what the digest certifies: params and
// runs, not the revision label or the machine-dependent go-bench numbers.
func TestDigestIgnoresWallClockFields(t *testing.T) {
	a := sampleFile(1000)
	b := sampleFile(1000)
	b.Rev = "other"
	b.GoBench = []GoBench{{Name: "BenchmarkX", NsOp: 123.4}}
	da, err := digest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := digest(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatal("digest depends on rev/go_bench")
	}
	c := sampleFile(1001)
	if dc, _ := digest(c); dc == da {
		t.Fatal("digest misses a cycle change")
	}
}

// TestReadFileRejectsTampering checks the round trip and the digest gate.
func TestReadFileRejectsTampering(t *testing.T) {
	path := writeSample(t, "ok.json", sampleFile(1000))
	f, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Runs[0].Cycles != 1000 || f.Runs[0].Stalls[0].Causes["refill"] != 10 {
		t.Fatalf("round trip lost data: %+v", f.Runs[0])
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := filepath.Join(t.TempDir(), "tampered.json")
	if err := os.WriteFile(tampered, []byte(string(raw[:len(raw)-100])+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readFile(tampered); err == nil {
		t.Fatal("truncated file accepted")
	}

	bad := sampleFile(1000)
	bad.Schema = "something.else"
	badPath := writeSample(t, "bad.json", bad)
	if _, err := readFile(badPath); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestDiffExitCodes drives the diff subcommand end to end on disk files:
// clean, within-threshold, regression, and missing-run cases.
func TestDiffExitCodes(t *testing.T) {
	base := writeSample(t, "base.json", sampleFile(1000))
	same := writeSample(t, "same.json", sampleFile(1000))
	within := writeSample(t, "within.json", sampleFile(1050))
	regressed := writeSample(t, "regressed.json", sampleFile(1200))
	improved := writeSample(t, "improved.json", sampleFile(800))
	empty := writeSample(t, "empty.json", File{Schema: Schema, SchemaVersion: SchemaVersion})

	cases := []struct {
		name     string
		old, cur string
		want     int
	}{
		{"unchanged", base, same, 0},
		{"within threshold", base, within, 0},
		{"regression", base, regressed, 1},
		{"improvement", base, improved, 0},
		{"missing run", base, empty, 1},
		{"new run no baseline", empty, base, 0},
	}
	for _, c := range cases {
		if got := runDiff([]string{c.old, c.cur}); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}
	// A tighter threshold flips the within-threshold case.
	if got := runDiff([]string{"-threshold", "0.01", base, within}); got != 1 {
		t.Error("threshold flag ignored")
	}
	if got := runDiff([]string{base}); got != 2 {
		t.Error("missing operand not a usage error")
	}
}

// TestBenchLineParsing pins the `go test -bench` output row format.
func TestBenchLineParsing(t *testing.T) {
	m := benchLine.FindStringSubmatch("BenchmarkMetricsDisabled-8   117   10212345.0 ns/op   0 B/op   0 allocs/op")
	if m == nil || m[1] != "BenchmarkMetricsDisabled-8" || m[2] != "10212345.0" {
		t.Fatalf("parse failed: %v", m)
	}
	if benchLine.FindStringSubmatch("ok  hetcc  1.2s") != nil {
		t.Fatal("summary line misparsed as a result")
	}
}
