// Command bench is the performance-regression harness: it runs the paper's
// three microbenchmark scenarios under all three coherence solutions on the
// three case-study platforms (27 deterministic simulations on the parallel
// batch runner) and writes a versioned, digest-stamped JSON file of cycle
// counts, per-cause stall breakdowns and bus utilisation.  Because the
// simulator is cycle-accurate and deterministic, the cycle counts are exact
// machine-independent performance numbers — any drift is a real behavioural
// change, not noise.
//
//	bench -o BENCH_$(git rev-parse --short HEAD).json
//	bench diff BENCH_seed.json BENCH_new.json            # exit 1 on regression
//	bench -gobench 'BenchmarkMetrics' -o BENCH_dev.json  # add wall-clock ns/op
//	bench trend                                          # trajectory across BENCH_*.json
//
// `bench diff` compares two such files run by run: cycle-count increases
// beyond -threshold (default 10%) fail the diff, decreases are reported as
// improvements, and a run missing from the new file always fails.  Wall-clock
// go-bench numbers are carried for context only — they are excluded from the
// digest and never gate the diff.
//
// `bench trend` reads every committed BENCH_*.json (seed first, then sorted
// by filename) and prints the trajectory of total cycles, per-solution cycle
// totals, bus utilisation and recorded go-bench ns/op / allocs/op across
// revisions — the history of the repo's performance work at a glance.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"hetcc"
	"hetcc/internal/delta"
	"hetcc/internal/platform"
	"hetcc/internal/profile"
)

// Schema identifies the bench-file format; SchemaVersion is bumped on any
// incompatible change.
const (
	Schema        = "hetcc.bench"
	SchemaVersion = 1
)

// File is the on-disk bench result set.
type File struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`
	// Rev labels the revision the numbers were taken at (git short hash).
	Rev string `json:"rev"`
	// Params are the microbenchmark knobs shared by every run.
	Params hetcc.Params `json:"params"`
	// Runs holds one entry per platform × scenario × solution, in a fixed
	// order.
	Runs []Run `json:"runs"`
	// GoBench carries optional wall-clock ns/op numbers from `go test
	// -bench`.  Machine-dependent: excluded from Digest and from diffing.
	GoBench []GoBench `json:"go_bench,omitempty"`
	// Manifest records the producing toolchain, module revision and flags.
	// Machine-dependent like GoBench, so it is excluded from Digest; diff
	// and trend use it to warn when numbers span toolchains.  Nil in files
	// written before the field existed.
	Manifest *platform.Manifest `json:"manifest,omitempty"`
	// Digest is the hex SHA-256 of the canonical JSON of (Params, Runs),
	// certifying the deterministic portion of the file.
	Digest string `json:"digest"`
}

// Run is one simulation's headline numbers.
type Run struct {
	// Name is "platform/scenario/solution", the diff join key.
	Name     string `json:"name"`
	Platform string `json:"platform"`
	Scenario string `json:"scenario"`
	Solution string `json:"solution"`
	// Cycles is the execution time in engine cycles — the paper's metric
	// and the regression gate.
	Cycles    uint64 `json:"cycles"`
	BusCycles uint64 `json:"bus_cycles"`
	// BusUtilization is busy/(busy+idle) on the bus clock.
	BusUtilization float64 `json:"bus_utilization"`
	// Stalls is the per-core stall-cause breakdown from the cycle ledger.
	Stalls []profile.CoreSummary `json:"stalls"`
}

// GoBench is one parsed `go test -bench` line.
type GoBench struct {
	Name string  `json:"name"`
	NsOp float64 `json:"ns_op"`
	// AllocsOp is the -benchmem allocations per op; nil in files written
	// before the field existed.
	AllocsOp *uint64 `json:"allocs_op,omitempty"`
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "diff":
			os.Exit(runDiff(os.Args[2:]))
		case "trend":
			os.Exit(runTrend(os.Args[2:]))
		}
	}
	os.Exit(runBench(os.Args[1:]))
}

// preset names one case-study platform.
type preset struct {
	name  string
	specs func() []platform.ProcessorSpec
}

var presets = []preset{
	{"pf1", platform.ARMPair}, // homogeneous coherence-less pair
	{"pf2", platform.PPCARm},  // PowerPC755 + ARM920T (performance platform)
	{"pf3", platform.PPCI486}, // PowerPC755 + Intel486 (wrapper conversion)
}

func runBench(argv []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		out     = fs.String("o", "", "output file (default BENCH_<rev>.json)")
		rev     = fs.String("rev", "", "revision label (default git rev-parse --short HEAD, else \"dev\")")
		jobs    = fs.Int("jobs", 0, "parallel simulations (0 = GOMAXPROCS)")
		gobench = fs.String("gobench", "", "also run `go test -bench <pattern>` and record ns/op")
		lines   = fs.Int("lines", 8, "cache lines accessed per iteration")
		iters   = fs.Int("iterations", 8, "critical-section entries per task")
		sched   = fs.String("scheduler", "", "engine scheduling strategy: event or tick (default: the library default; cycle counts are identical either way)")
	)
	fs.Parse(argv)

	if *rev == "" {
		*rev = gitRev()
	}
	params := hetcc.Params{Lines: *lines, ExecTime: 1, Iterations: *iters, WordsPerLine: 8}

	var specs []hetcc.BatchSpec
	for _, p := range presets {
		for _, sc := range []hetcc.Scenario{hetcc.WCS, hetcc.TCS, hetcc.BCS} {
			for _, sol := range []hetcc.Solution{hetcc.CacheDisabled, hetcc.Software, hetcc.Proposed} {
				name := fmt.Sprintf("%s/%s/%s", p.name, strings.ToLower(sc.String()), sol)
				specs = append(specs, hetcc.BatchSpec{
					Label: name,
					Config: hetcc.Config{
						Scenario:   sc,
						Solution:   sol,
						Processors: p.specs(),
						Params:     params,
						Verify:     true,
						Profile:    true,
						Scheduler:  *sched,
					},
				})
			}
		}
	}

	results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: *jobs})
	f := File{Schema: Schema, SchemaVersion: SchemaVersion, Rev: *rev, Params: params,
		Manifest: platform.NewManifest(argv, 0)}
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "bench: run %s failed: %v\n", r.Label, r.Err)
			return 2
		}
		res := r.Result
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "bench: run %s ended abnormally: %v (%s)\n", r.Label, res.Err, res.StopReason)
			return 2
		}
		if !res.Coherent() {
			fmt.Fprintf(os.Stderr, "bench: run %s is incoherent; refusing to record its timing\n", r.Label)
			return 2
		}
		util := 0.0
		if total := res.Bus.BusyCycles + res.Bus.IdleCycles; total > 0 {
			util = float64(res.Bus.BusyCycles) / float64(total)
		}
		spec := specs[i]
		run := Run{
			Name:           r.Label,
			Platform:       strings.SplitN(r.Label, "/", 2)[0],
			Scenario:       spec.Config.Scenario.String(),
			Solution:       spec.Config.Solution.String(),
			Cycles:         res.Cycles,
			BusCycles:      res.Cycles / res.EngineCyclesPerBusCycle,
			BusUtilization: util,
		}
		if res.Profile != nil {
			run.Stalls = res.Profile.Cores
		}
		f.Runs = append(f.Runs, run)
		fmt.Printf("%-28s %9d cycles  util %4.1f%%\n", r.Label, res.Cycles, util*100)
	}

	if *gobench != "" {
		gb, err := runGoBench(*gobench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: go test -bench: %v\n", err)
			return 2
		}
		f.GoBench = gb
	}

	var err error
	f.Digest, err = digest(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", f.Rev)
	}
	if err := writeFile(path, f); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	fmt.Printf("wrote %s (%d runs, rev %s, digest %s)\n", path, len(f.Runs), f.Rev, f.Digest[:12])
	return 0
}

// DeltaArtifact is the machine-readable output of `bench diff -json`: the
// per-run causal explanations of every threshold-tripping regression, for CI
// to upload next to the BENCH file itself.
type DeltaArtifact struct {
	Schema        string   `json:"schema"`
	SchemaVersion int      `json:"schema_version"`
	Old           string   `json:"old"`
	New           string   `json:"new"`
	Threshold     float64  `json:"threshold"`
	Regressions   int      `json:"regressions"`
	Improvements  int      `json:"improvements_beyond_threshold"`
	ManifestDiff  []string `json:"manifest_diff,omitempty"`
	// Explanations holds one conserved cause decomposition per regressed run.
	Explanations []*delta.Explanation `json:"explanations,omitempty"`
}

// DeltaSchema identifies the diff -json artifact format.
const (
	DeltaSchema        = "hetcc.bench-delta"
	DeltaSchemaVersion = 1
)

func runDiff(argv []string) int {
	fs := flag.NewFlagSet("bench diff", flag.ExitOnError)
	var (
		threshold = fs.Float64("threshold", 0.10, "max tolerated fractional cycle increase per run")
		explain   = fs.Bool("explain", false, "print a per-cause delta table for every run beyond threshold")
		jsonOut   = fs.String("json", "", "write a machine-readable delta artifact to this path")
		topK      = fs.Int("top", 5, "rows per explanation table (0 = all)")
	)
	fs.Parse(argv)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench diff [-threshold 0.10] [-explain] [-json delta.json] [-top 5] old.json new.json")
		return 2
	}
	old, err := readFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench diff: %v\n", err)
		return 2
	}
	cur, err := readFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench diff: %v\n", err)
		return 2
	}
	if !old.Manifest.SameToolchain(cur.Manifest) {
		fmt.Println("warning: comparing across toolchains — wall-clock numbers are not comparable (cycle counts still are):")
		for _, d := range old.Manifest.Diff(cur.Manifest) {
			fmt.Printf("warning:   %s\n", d)
		}
	}

	// explainRun renders the causal decomposition of one regressed run from
	// the two files' stall ledgers.
	explainRun := func(o, n Run) *delta.Explanation {
		e := delta.Compare(
			delta.FromLedger(o.Name, o.Cycles, o.Stalls),
			delta.FromLedger(n.Name, n.Cycles, n.Stalls),
		)
		e.ManifestDiff = old.Manifest.Diff(cur.Manifest)
		return e
	}

	curByName := map[string]Run{}
	for _, r := range cur.Runs {
		curByName[r.Name] = r
	}
	failures, improvements := 0, 0
	var explanations []*delta.Explanation
	for _, o := range old.Runs {
		n, ok := curByName[o.Name]
		if !ok {
			fmt.Printf("FAIL %-28s missing from %s\n", o.Name, fs.Arg(1))
			failures++
			continue
		}
		rel := float64(n.Cycles)/float64(o.Cycles) - 1
		switch {
		case n.Cycles == o.Cycles:
			fmt.Printf("ok   %-28s %9d cycles (unchanged)\n", o.Name, n.Cycles)
		case rel > *threshold:
			fmt.Printf("FAIL %-28s %9d -> %9d cycles (%+.1f%% > %.0f%% threshold)\n",
				o.Name, o.Cycles, n.Cycles, rel*100, *threshold*100)
			failures++
			e := explainRun(o, n)
			explanations = append(explanations, e)
			if *explain {
				e.WriteText(os.Stdout, *topK)
			}
		case rel > 0:
			fmt.Printf("ok   %-28s %9d -> %9d cycles (%+.1f%%, within threshold)\n",
				o.Name, o.Cycles, n.Cycles, rel*100)
		case rel < -*threshold:
			fmt.Printf("ok   %-28s %9d -> %9d cycles (%+.1f%%, improvement beyond threshold)\n",
				o.Name, o.Cycles, n.Cycles, rel*100)
			improvements++
		default:
			fmt.Printf("ok   %-28s %9d -> %9d cycles (%+.1f%%, improvement)\n",
				o.Name, o.Cycles, n.Cycles, rel*100)
		}
	}
	for _, n := range cur.Runs {
		found := false
		for _, o := range old.Runs {
			if o.Name == n.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("new  %-28s %9d cycles (no baseline)\n", n.Name, n.Cycles)
		}
	}
	if *jsonOut != "" {
		art := DeltaArtifact{
			Schema:        DeltaSchema,
			SchemaVersion: DeltaSchemaVersion,
			Old:           fs.Arg(0),
			New:           fs.Arg(1),
			Threshold:     *threshold,
			Regressions:   failures,
			Improvements:  improvements,
			ManifestDiff:  old.Manifest.Diff(cur.Manifest),
			Explanations:  explanations,
		}
		if err := writeJSON(*jsonOut, art); err != nil {
			fmt.Fprintf(os.Stderr, "bench diff: %v\n", err)
			return 2
		}
		fmt.Printf("wrote delta artifact %s (%d explanation(s))\n", *jsonOut, len(art.Explanations))
	}
	summary := fmt.Sprintf("%d regression(s), %d improvement(s) beyond %.0f%%", failures, improvements, *threshold*100)
	if failures > 0 {
		fmt.Printf("bench diff: %s\n", summary)
		return 1
	}
	fmt.Printf("bench diff: no regressions (%s)\n", summary)
	return 0
}

// runTrend prints the performance trajectory across every committed bench
// file: total cycles (with deltas), per-solution cycle totals, mean bus
// utilisation, and any recorded go-bench wall-clock/allocation numbers.
func runTrend(argv []string) int {
	fs := flag.NewFlagSet("bench trend", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json files")
	fs.Parse(argv)

	paths, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench trend: %v\n", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "bench trend: no BENCH_*.json files in %s\n", *dir)
		return 2
	}
	// The seed file is the fixed origin of the trajectory; everything else
	// follows in filename order.
	sort.Slice(paths, func(i, j int) bool {
		si := filepath.Base(paths[i]) == "BENCH_seed.json"
		sj := filepath.Base(paths[j]) == "BENCH_seed.json"
		if si != sj {
			return si
		}
		return paths[i] < paths[j]
	})

	type point struct {
		path string
		file File
	}
	var points []point
	for _, p := range paths {
		f, err := readFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench trend: %v\n", err)
			return 2
		}
		points = append(points, point{p, f})
	}

	// Wall-clock columns spanning toolchains are not comparable; say so
	// once up front (cycle counts are machine-independent either way).
	// Manifest-less files (pre-v5) carry no toolchain claim: they neither
	// trigger a warning themselves nor mask a genuine mismatch between the
	// recorded manifests on either side of them, so each recorded manifest
	// is compared against the last recorded one, not its literal neighbour.
	var lastRecorded *point
	for i := range points {
		if points[i].file.Manifest == nil {
			continue
		}
		if lastRecorded != nil && !lastRecorded.file.Manifest.SameToolchain(points[i].file.Manifest) {
			fmt.Printf("warning: %s and %s were recorded on different toolchains — ns/op columns are not comparable\n",
				lastRecorded.file.Rev, points[i].file.Rev)
		}
		lastRecorded = &points[i]
	}

	solutions := []string{"cache-disabled", "software", "proposed"}
	fmt.Printf("%-10s %5s %14s %9s %7s", "rev", "runs", "total cycles", "Δ prev", "util")
	for _, s := range solutions {
		fmt.Printf(" %12s", s)
	}
	fmt.Println()
	var prevTotal uint64
	for i, pt := range points {
		var total uint64
		var util float64
		bySol := map[string]uint64{}
		for _, r := range pt.file.Runs {
			total += r.Cycles
			util += r.BusUtilization
			bySol[r.Solution] += r.Cycles
		}
		if n := len(pt.file.Runs); n > 0 {
			util /= float64(n)
		}
		delta := "-"
		if i > 0 && prevTotal > 0 {
			delta = fmt.Sprintf("%+.1f%%", (float64(total)/float64(prevTotal)-1)*100)
		}
		fmt.Printf("%-10s %5d %14d %9s %6.1f%%", pt.file.Rev, len(pt.file.Runs), total, delta, util*100)
		for _, s := range solutions {
			fmt.Printf(" %12d", bySol[s])
		}
		fmt.Println()
		prevTotal = total
	}

	// Go-bench trajectory: one row per benchmark seen anywhere, one column
	// per revision that recorded it.
	seen := map[string]bool{}
	var names []string
	for _, pt := range points {
		for _, gb := range pt.file.GoBench {
			if !seen[gb.Name] {
				seen[gb.Name] = true
				names = append(names, gb.Name)
			}
		}
	}
	if len(names) == 0 {
		return 0
	}
	sort.Strings(names)
	fmt.Printf("\n%-36s", "go-bench (ns/op [allocs/op])")
	for _, pt := range points {
		fmt.Printf(" %16s", pt.file.Rev)
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("%-36s", strings.TrimPrefix(name, "Benchmark"))
		for _, pt := range points {
			cell := "-"
			for _, gb := range pt.file.GoBench {
				if gb.Name == name {
					// Older files predate allocs_op; render a placeholder
					// rather than implying zero allocations.
					cell = fmt.Sprintf("%.1f", gb.NsOp)
					if gb.AllocsOp != nil {
						cell += fmt.Sprintf(" [%d]", *gb.AllocsOp)
					} else {
						cell += " [-]"
					}
					break
				}
			}
			fmt.Printf(" %16s", cell)
		}
		fmt.Println()
	}
	return 0
}

// digest hashes the canonical JSON of the deterministic fields (params and
// runs — not rev, not go_bench wall clocks).
func digest(f File) (string, error) {
	raw, err := json.Marshal(struct {
		Params hetcc.Params `json:"params"`
		Runs   []Run        `json:"runs"`
	}{f.Params, f.Runs})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// writeJSON writes any value as indented JSON (the diff -json artifact).
func writeJSON(path string, v any) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func writeFile(path string, f File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func readFile(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != Schema {
		return f, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, Schema)
	}
	if f.SchemaVersion != SchemaVersion {
		return f, fmt.Errorf("%s: schema version %d, want %d", path, f.SchemaVersion, SchemaVersion)
	}
	want, err := digest(f)
	if err != nil {
		return f, err
	}
	if f.Digest != want {
		return f, fmt.Errorf("%s: digest mismatch (file %s, computed %s) — edited by hand?", path, f.Digest, want)
	}
	return f, nil
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// benchLine matches `go test -bench -benchmem` result rows, e.g.
// "BenchmarkMetricsDisabled-8   1234   987.6 ns/op   0 B/op   0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9]+ B/op\s+([0-9]+) allocs/op)?`)

func runGoBench(pattern string) ([]GoBench, error) {
	cmd := exec.Command("go", "test", "-run", "xxx", "-bench", pattern, "-benchmem", "./...")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, err
	}
	var results []GoBench
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		gb := GoBench{Name: m[1], NsOp: ns}
		if m[3] != "" {
			if allocs, err := strconv.ParseUint(m[3], 10, 64); err == nil {
				gb.AllocsOp = &allocs
			}
		}
		results = append(results, gb)
	}
	return results, nil
}
