package main

import (
	"path/filepath"
	"strings"
	"testing"

	"hetcc/internal/platform"
)

// writeTrendDir lays out the named files (in trend's filename order after the
// seed) in one temp dir and returns it.
func writeTrendDir(t *testing.T, files map[string]File) string {
	t.Helper()
	dir := t.TempDir()
	for name, f := range files {
		d, err := digest(f)
		if err != nil {
			t.Fatal(err)
		}
		f.Digest = d
		if err := writeFile(filepath.Join(dir, name), f); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestTrendManifestlessFilesAreQuiet: pre-v5 BENCH files carry no manifest at
// all; rendering them next to manifested files recorded on one toolchain must
// produce clean output with no toolchain-mismatch warning.
func TestTrendManifestlessFilesAreQuiet(t *testing.T) {
	seed := sampleFile(1000)
	seed.Rev = "seed" // manifest-less, as the committed pre-v5 seed is
	a := sampleFile(990)
	a.Rev = "pr7"
	a.Manifest = &platform.Manifest{SchemaVersion: 5, GoVersion: "go1.24.0", ModuleVersion: "(devel)"}
	b := sampleFile(980)
	b.Rev = "pr8"
	b.Manifest = &platform.Manifest{SchemaVersion: 6, GoVersion: "go1.24.0", ModuleVersion: "(devel)"}

	dir := writeTrendDir(t, map[string]File{
		"BENCH_seed.json": seed, "BENCH_pr7.json": a, "BENCH_pr8.json": b,
	})
	out, code := captureStdout(t, func() int { return runTrend([]string{"-dir", dir}) })
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if strings.Contains(out, "warning") {
		t.Fatalf("spurious warning for a manifest-less file:\n%s", out)
	}
	for _, rev := range []string{"seed", "pr7", "pr8"} {
		if !strings.Contains(out, rev) {
			t.Fatalf("rev %s not rendered:\n%s", rev, out)
		}
	}
}

// TestTrendManifestlessGapDoesNotMaskMismatch: a manifest-less file sitting
// between two files recorded on different toolchains must not swallow the
// genuine warning — recorded manifests are compared across the gap.
func TestTrendManifestlessGapDoesNotMaskMismatch(t *testing.T) {
	first := sampleFile(1000)
	first.Rev = "seed"
	first.Manifest = &platform.Manifest{SchemaVersion: 5, GoVersion: "go1.0-old", ModuleVersion: "(devel)"}
	gap := sampleFile(995)
	gap.Rev = "pr7" // pre-v5: no manifest
	last := sampleFile(990)
	last.Rev = "pr8"
	last.Manifest = &platform.Manifest{SchemaVersion: 6, GoVersion: "go9.9-other", ModuleVersion: "(devel)"}

	dir := writeTrendDir(t, map[string]File{
		"BENCH_seed.json": first, "BENCH_pr7.json": gap, "BENCH_pr8.json": last,
	})
	out, code := captureStdout(t, func() int { return runTrend([]string{"-dir", dir}) })
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "different toolchains") {
		t.Fatalf("genuine toolchain mismatch masked by the manifest-less gap:\n%s", out)
	}
	if !strings.Contains(out, "seed") || !strings.Contains(out, "pr8") {
		t.Fatalf("warning does not name the mismatching revs:\n%s", out)
	}
}
