// Command hetccsim runs one microbenchmark simulation on a heterogeneous
// platform and prints a detailed statistics report.
//
// Examples:
//
//	hetccsim -scenario wcs -solution proposed -lines 32 -exectime 4
//	hetccsim -scenario bcs -solution software -lines 16 -penalty 96
//	hetccsim -platform ppc-i486 -scenario tcs -solution proposed -trace 50
//	hetccsim -scenario wcs -penalty 96 -compare baseline-report.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hetcc"
	"hetcc/internal/bus"
	"hetcc/internal/chrometrace"
	"hetcc/internal/delta"
	"hetcc/internal/isa"
	"hetcc/internal/memory"
	"hetcc/internal/platform"
	"hetcc/internal/profile"
	"hetcc/internal/sharing"
	"hetcc/internal/span"
	"hetcc/internal/stats"
)

func main() {
	var (
		scenarioFlag = flag.String("scenario", "wcs", "microbenchmark scenario: wcs, tcs, bcs")
		solutionFlag = flag.String("solution", "proposed", "coherence strategy: disabled, software, proposed")
		platFlag     = flag.String("platform", "ppc-arm", "platform preset: ppc-arm (PF2), ppc-i486 (PF3), arm-arm (PF1)")
		configPath   = flag.String("config", "", "JSON platform definition (overrides -platform); see platform.SpecsFromJSON")
		progFlags    progList
		lockFlag     = flag.String("lock", "uncached-tas", "lock mechanism: uncached-tas, hw-register, bakery, peterson, cached-tas")
		alternate    = flag.String("alternate", "auto", "strict lock alternation: auto (per scenario), on, off")
		lines        = flag.Int("lines", 8, "cache lines accessed per iteration")
		execTime     = flag.Int("exectime", 1, "inner iterations per critical section (paper exec_time)")
		iterations   = flag.Int("iterations", 8, "critical-section entries per task")
		words        = flag.Int("words", 8, "words touched per line per iteration")
		penalty      = flag.Int("penalty", 13, "burst miss penalty in bus cycles (paper default 13)")
		seed         = flag.Uint64("seed", 0, "workload seed (0 = default)")
		verify       = flag.Bool("verify", true, "run the golden-model staleness checker")
		auditFlag    = flag.Bool("audit", false, "run the online coherence invariant auditor (SWMR, single dirty owner, data value, reduction-table states)")
		eventsPath   = flag.String("events", "", "write the typed coherence event stream as JSONL to this file")
		traceN       = flag.Int("trace", 0, "retain and print the last N trace events")
		vcdPath      = flag.String("vcd", "", "write an IEEE-1364 waveform dump (GTKWave) to this file")
		reportPath   = flag.String("report", "", "write a machine-readable JSON run report to this file")
		chromePath   = flag.String("chrometrace", "", "write a Chrome trace-event dump (load in Perfetto / chrome://tracing) to this file")
		profilePath  = flag.String("profile", "", "write a folded-stack stall-cause profile (flamegraph.pl / speedscope input) to this file")
		spansPath    = flag.String("spans", "", "write the causal transaction spans (lifecycle + retry/drain edges + stall links) as JSONL to this file")
		sharingPath  = flag.String("sharing", "", "write the sharing-pattern summary (per-line classes, communication matrix, address heatmap) as JSONL to this file and print the hot-line and matrix tables")
		explainFlag  = flag.Bool("explain", false, "print the critical-path analysis: top-K blocking transactions and the per-cause cycle attribution of the last-retiring core")
		comparePath  = flag.String("compare", "", "baseline run report (JSON, any schema version) to explain this run's cycle delta against")
		observeDir   = flag.String("observe", "", "write every observability artifact (report, events, audit, stall profile, chrome trace, spans, sharing) into this directory; equivalent to setting -report/-events/-audit/-profile/-chrometrace/-spans/-sharing together (explicit flags win)")
		metricsWin   = flag.Uint64("metricswindow", 0, "time-series sampling window in engine cycles (0 = default)")
		schedFlag    = flag.String("scheduler", platform.SchedulerEvent, "engine scheduling strategy: event (skips idle cycles) or tick (reference semantics; -vcd forces tick)")
		maxCycles    = flag.Uint64("maxcycles", 50_000_000, "cycle budget")
	)
	flag.Var(&progFlags, "prog", "assembly program for one core, as core=path (repeatable; see isa.Assemble for the syntax; cores without one halt immediately)")
	flag.Parse()

	scenario, err := parseScenario(*scenarioFlag)
	fatalIf(err)
	solution, err := parseSolution(*solutionFlag)
	fatalIf(err)
	procs, err := parsePlatform(*platFlag)
	fatalIf(err)
	if *configPath != "" {
		f, ferr := os.Open(*configPath)
		fatalIf(ferr)
		procs, err = platform.SpecsFromJSON(f)
		f.Close()
		fatalIf(err)
	}
	lockKind, err := parseLock(*lockFlag)
	fatalIf(err)

	alt := scenario.Alternate()
	switch *alternate {
	case "auto":
	case "on":
		alt = true
	case "off":
		alt = false
	default:
		fatalIf(fmt.Errorf("unknown -alternate %q (want auto, on, off)", *alternate))
	}
	if lockKind == platform.LockCachedTAS && *alternate == "auto" {
		// The deadlock demonstration needs direct contention on the cached
		// lock word; turn alternation would mask it.
		alt = false
	}
	lk := platform.LockChoice{Kind: lockKind, Alternate: alt, SpinDelay: 4}
	cfg := hetcc.Config{
		Scenario:   scenario,
		Solution:   solution,
		Processors: procs,
		Lock:       &lk,
		Verify:     *verify,
		TraceCap:   *traceN,
		Scheduler:  *schedFlag,
		MaxCycles:  *maxCycles,
		Params: hetcc.Params{
			Lines:        *lines,
			ExecTime:     *execTime,
			Iterations:   *iterations,
			WordsPerLine: *words,
			Seed:         *seed,
		},
	}
	if *penalty != 13 {
		cfg.Timing = memory.ScaledTiming(*penalty)
	}
	if *observeDir != "" {
		// One flag, every artifact: fill in each path not set explicitly
		// and enable the auditor.
		fatalIf(os.MkdirAll(*observeDir, 0o755))
		setDefault := func(p *string, name string) {
			if *p == "" {
				*p = *observeDir + string(os.PathSeparator) + name
			}
		}
		setDefault(reportPath, "report.json")
		setDefault(eventsPath, "events.jsonl")
		setDefault(chromePath, "trace.json")
		setDefault(profilePath, "profile.folded")
		setDefault(spansPath, "spans.jsonl")
		setDefault(sharingPath, "sharing.jsonl")
		*auditFlag = true
	}
	if *sharingPath != "" {
		cfg.Sharing = true
	}
	if *reportPath != "" || *chromePath != "" {
		cfg.Metrics = true
		cfg.MetricsWindow = *metricsWin
	}
	if *reportPath != "" || *chromePath != "" || *profilePath != "" || *spansPath != "" || *explainFlag || *comparePath != "" {
		cfg.Profile = true
	}
	if *reportPath != "" || *chromePath != "" || *spansPath != "" || *explainFlag || *comparePath != "" {
		cfg.Spans = true
	}
	if *chromePath != "" && cfg.TraceCap == 0 {
		// The Chrome trace wants the event log as instant markers; retain a
		// generous window without turning on the textual trace dump.
		cfg.TraceCap = 100_000
	}
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		fatalIf(err)
		defer f.Close()
		cfg.VCD = f
	}
	cfg.Audit = *auditFlag
	var eventsBuf *bufio.Writer
	var eventsFile *os.File
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		fatalIf(err)
		eventsFile = f
		eventsBuf = bufio.NewWriter(f)
		cfg.EventLog = eventsBuf
	}

	p, err := hetcc.Build(cfg)
	fatalIf(err)
	// Reports carry full provenance: this binary's toolchain, the CLI flags
	// and the workload seed (the -compare explainer diffs these first).
	p.Manifest = platform.NewManifest(os.Args[1:], *seed)
	if len(progFlags) > 0 {
		progs := make([]isa.Program, len(p.CPUs))
		for i := range progs {
			progs[i] = isa.Program{{Kind: isa.Halt}}
		}
		for _, pf := range progFlags {
			if pf.core < 0 || pf.core >= len(progs) {
				fatalIf(fmt.Errorf("-prog core %d out of range (platform has %d cores)", pf.core, len(progs)))
			}
			src, rerr := os.ReadFile(pf.path)
			fatalIf(rerr)
			prog, aerr := isa.Assemble(string(src))
			fatalIf(aerr)
			progs[pf.core] = prog
		}
		fatalIf(p.LoadPrograms(progs))
	}
	res := p.Run(*maxCycles)
	if dropped := p.Log.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "hetccsim: warning: %d trace events dropped by the ring bound; "+
			"trace-derived output covers only the retained tail (raise -trace to keep more)\n", dropped)
	}

	platName := *platFlag
	if *configPath != "" {
		platName = *configPath
	}
	fmt.Printf("hetcc simulation: %v on %s, %v solution, %v lock\n",
		scenario, platName, solution, lockKind)
	fmt.Printf("platform class %v, effective protocol %v\n",
		p.Integration.Class, p.Integration.Effective)
	if p.Integration.LockCaveat != "" {
		fmt.Printf("note: %s\n", p.Integration.LockCaveat)
	}
	fmt.Println()

	if res.Err != nil {
		fmt.Printf("RUN ENDED ABNORMALLY: %v (reason: %s)\n\n", res.Err, res.StopReason)
	}
	util := 0.0
	if total := res.Bus.BusyCycles + res.Bus.IdleCycles; total > 0 {
		util = float64(res.Bus.BusyCycles) / float64(total) * 100
	}
	fmt.Printf("execution time: %d engine cycles (%d bus cycles @ 50 MHz), bus utilisation %.1f%%\n\n", res.Cycles, res.Cycles/2, util)

	busT := stats.NewTable("Bus", "tenures", "completed", "aborted(ARTRY)", "fills", "writebacks", "upgrades", "word r/w", "rmw", "c2c", "busy", "idle")
	busT.AddRow(res.Bus.Tenures, res.Bus.Completed, res.Bus.Aborted, res.Bus.LineFills,
		res.Bus.WriteBacks, res.Bus.LineUpgrades,
		fmt.Sprintf("%d/%d", res.Bus.WordReads, res.Bus.WordWrites), res.Bus.RMWs,
		res.Bus.Supplied, res.Bus.BusyCycles, res.Bus.IdleCycles)
	busT.Render(os.Stdout)
	fmt.Println()

	cpuT := stats.NewTable("Cores", "core", "instr", "stall", "delay", "lockAcq", "fiq", "isr", "isrCycles", "halt@")
	for i, c := range res.CPU {
		cpuT.AddRow(p.CPUs[i].Name(), c.Instructions, c.StallCycles, c.DelayCycles, c.LockAcquires, c.FIQsRaised, c.ISRRuns, c.ISRCycles, c.HaltCycle)
	}
	cpuT.Render(os.Stdout)
	fmt.Println()

	cacheT := stats.NewTable("Caches", "core", "rdHit", "rdMiss", "wrHit", "wrMiss", "upgr", "evict", "evictWB", "snoopHit", "snoopInv", "snoopFlush", "clean", "inval")
	for i, c := range res.Cache {
		cacheT.AddRow(p.CPUs[i].Name(), c.ReadHits, c.ReadMisses, c.WriteHits, c.WriteMisses, c.Upgrades,
			c.Evictions, c.EvictionWBs, c.SnoopHits, c.SnoopInvalidations, c.SnoopFlushes, c.CleanOps, c.InvalOps)
	}
	cacheT.Render(os.Stdout)
	fmt.Println()

	if res.Profile != nil {
		cols := []string{"core", "stall"}
		for _, c := range profile.Causes() {
			cols = append(cols, c.String())
		}
		profT := stats.NewTable("Stall causes", cols...)
		for _, cs := range res.Profile.Cores {
			row := []any{p.CPUs[cs.Core].Name(), cs.StallCycles}
			for _, c := range profile.Causes() {
				row = append(row, cs.Causes[c.String()])
			}
			profT.AddRow(row...)
		}
		profT.Render(os.Stdout)
		fmt.Println()
	}

	anySnoop := false
	snoopT := stats.NewTable("Snoop logic (TAG CAM)", "core", "inserts", "removes", "hits", "spurious", "retriesPending")
	for i, s := range res.Snoop {
		if p.SnoopLogics[i] == nil {
			continue
		}
		anySnoop = true
		snoopT.AddRow(p.CPUs[i].Name(), s.Inserts, s.Removes, s.Hits, s.SpuriousHits, s.RetriesWhilePending)
	}
	if anySnoop {
		snoopT.Render(os.Stdout)
		fmt.Println()
	}

	if *verify {
		if res.Coherent() {
			fmt.Println("golden-model check: PASS (no stale reads)")
		} else {
			fmt.Printf("golden-model check: FAIL — %d stale reads, first: %v\n", len(res.Violations), res.Violations[0])
		}
	}
	if a := res.Audit; a != nil {
		if a.ViolationCount == 0 {
			fmt.Printf("invariant audit: PASS (%d events, %d state transitions over %d lines)\n",
				sumCounts(a.Events), a.TransitionCount, len(a.Lines))
		} else {
			fmt.Printf("invariant audit: FAIL — %d violations, first: %v\n", a.ViolationCount, a.Violations[0])
		}
		for core, states := range a.Reachable {
			fmt.Printf("  core %d (%s) reachable states: %s\n", core, p.CPUs[core].Name(), strings.Join(states, " "))
		}
	}
	if eventsBuf != nil {
		fatalIf(p.CloseEventLog())
		fatalIf(eventsFile.Close())
		written, _ := p.EventLogStats()
		fmt.Printf("event stream: %d JSONL records written to %s\n", written, *eventsPath)
	}

	if *traceN > 0 && p.Log != nil {
		fmt.Printf("\nlast %d trace events (%d dropped):\n", p.Log.Len(), p.Log.Dropped())
		p.Log.WriteTo(os.Stdout)
	}
	if *vcdPath != "" {
		fmt.Printf("\nwaveform dump written to %s\n", *vcdPath)
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		fatalIf(err)
		fatalIf(platform.WriteReport(f, p.Report(res, scenario.String())))
		fatalIf(f.Close())
		fmt.Printf("run report written to %s\n", *reportPath)
	}
	if *profilePath != "" {
		if res.Profile == nil {
			fatalIf(fmt.Errorf("-profile: run produced no stall profile"))
		}
		f, err := os.Create(*profilePath)
		fatalIf(err)
		fatalIf(profile.WriteFolded(f, *res.Profile, coreName(p)))
		fatalIf(f.Close())
		fmt.Printf("folded stall profile written to %s (flamegraph.pl %s > stalls.svg)\n", *profilePath, *profilePath)
	}
	if *spansPath != "" {
		f, err := os.Create(*spansPath)
		fatalIf(err)
		w := bufio.NewWriter(f)
		fatalIf(p.Spans().WriteJSONL(w, busKindName))
		fatalIf(w.Flush())
		fatalIf(f.Close())
		fmt.Printf("transaction spans written to %s (%d transactions, %d dropped)\n",
			*spansPath, len(p.Spans().Txns()), p.Spans().Dropped())
	}
	if *sharingPath != "" {
		s := res.Sharing
		if s == nil {
			fatalIf(fmt.Errorf("-sharing: run produced no sharing summary"))
		}
		f, err := os.Create(*sharingPath)
		fatalIf(err)
		w := bufio.NewWriter(f)
		fatalIf(s.WriteJSONL(w))
		fatalIf(w.Flush())
		fatalIf(f.Close())
		fmt.Printf("sharing summary written to %s (%d lines, %d matrix cells, %d heat windows)\n",
			*sharingPath, len(s.Lines), len(s.Matrix), len(s.Heatmap.Windows))
		printSharing(s, p.MasterName)
	}
	if *chromePath != "" {
		events := chrometrace.FromTenures(res.Tenures, p.MasterName)
		events = append(events, chrometrace.FromLog(p.Log)...)
		events = append(events, chrometrace.FromStallSpans(res.StallSpans, coreName(p))...)
		if res.Audit != nil {
			events = append(events, chrometrace.FromViolations(res.Audit.Violations)...)
		}
		events = append(events, chrometrace.FromSpanEdges(p.Spans().Edges())...)
		if res.Sharing != nil {
			events = append(events, chrometrace.FromHeatmap(res.Sharing.Heatmap)...)
		}
		f, err := os.Create(*chromePath)
		fatalIf(err)
		fatalIf(chrometrace.Write(f, events))
		fatalIf(f.Close())
		fmt.Printf("chrome trace written to %s (open in Perfetto or chrome://tracing)\n", *chromePath)
	}
	if *explainFlag {
		printExplain(res.CriticalPath)
	}
	if *comparePath != "" {
		f, err := os.Open(*comparePath)
		fatalIf(err)
		baseline, err := platform.ReadReport(f)
		f.Close()
		fatalIf(err)
		oldName := baseline.Scenario
		if oldName == "" {
			oldName = *comparePath
		}
		e := delta.Compare(
			delta.FromReport(oldName+" (baseline)", baseline),
			delta.FromReport("this run", p.Report(res, scenario.String())),
		)
		fmt.Printf("\ndifferential analysis vs %s (schema v%d):\n", *comparePath, baseline.SchemaVersion)
		e.WriteText(os.Stdout, 10)
		if !e.Conserved() {
			fmt.Println("warning: attributed deltas do not sum to the total cycle delta")
		}
	}

	if res.Err != nil {
		os.Exit(1)
	}
}

// progList collects repeated -prog core=path flags.
type progList []progSpec

type progSpec struct {
	core int
	path string
}

func (l *progList) String() string {
	var parts []string
	for _, p := range *l {
		parts = append(parts, fmt.Sprintf("%d=%s", p.core, p.path))
	}
	return strings.Join(parts, ",")
}

func (l *progList) Set(v string) error {
	idx := strings.IndexByte(v, '=')
	if idx <= 0 {
		return fmt.Errorf("want core=path, got %q", v)
	}
	core, err := strconv.Atoi(v[:idx])
	if err != nil {
		return fmt.Errorf("bad core index in %q", v)
	}
	*l = append(*l, progSpec{core: core, path: v[idx+1:]})
	return nil
}

func parseScenario(s string) (hetcc.Scenario, error) {
	switch strings.ToLower(s) {
	case "wcs", "worst":
		return hetcc.WCS, nil
	case "tcs", "typical":
		return hetcc.TCS, nil
	case "bcs", "best":
		return hetcc.BCS, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q (want wcs, tcs, bcs)", s)
	}
}

func parseSolution(s string) (hetcc.Solution, error) {
	switch strings.ToLower(s) {
	case "disabled", "cache-disabled", "nocache":
		return hetcc.CacheDisabled, nil
	case "software", "sw":
		return hetcc.Software, nil
	case "proposed", "hw", "wrapper":
		return hetcc.Proposed, nil
	default:
		return 0, fmt.Errorf("unknown solution %q (want disabled, software, proposed)", s)
	}
}

func parsePlatform(s string) ([]platform.ProcessorSpec, error) {
	switch strings.ToLower(s) {
	case "ppc-arm", "pf2":
		return platform.PPCARm(), nil
	case "ppc-i486", "pf3":
		return platform.PPCI486(), nil
	case "arm-arm", "pf1":
		return platform.ARMPair(), nil
	default:
		return nil, fmt.Errorf("unknown platform %q (want ppc-arm, ppc-i486, arm-arm)", s)
	}
}

func parseLock(s string) (platform.LockKind, error) {
	switch strings.ToLower(s) {
	case "uncached-tas", "tas":
		return platform.LockUncachedTAS, nil
	case "hw-register", "register":
		return platform.LockHardwareRegister, nil
	case "bakery":
		return platform.LockBakery, nil
	case "cached-tas":
		return platform.LockCachedTAS, nil
	case "peterson":
		return platform.LockPeterson, nil
	default:
		return 0, fmt.Errorf("unknown lock %q", s)
	}
}

// busKindName names raw bus transaction kinds in the spans export.
func busKindName(k uint8) string { return bus.Kind(k).String() }

// printExplain renders the critical-path analysis: where every cycle of the
// last-retiring core went, and the transactions it spent the longest blocked
// on.
func printExplain(cp *span.CriticalPath) {
	if cp == nil {
		fmt.Println("\ncritical path: no span data collected")
		return
	}
	fmt.Printf("\ncritical path: core %d (%s), %d engine cycles\n", cp.Core, cp.CoreName, cp.TotalCycles)
	if cp.CrossCheckError != "" {
		fmt.Printf("WARNING: profile-ledger cross-check failed: %s\n", cp.CrossCheckError)
	} else {
		fmt.Printf("cross-check: attribution sums to the run total and every cause is within the profile ledger's bound\n")
	}
	attrT := stats.NewTable("Cycle attribution", "component", "cause", "cycles", "share")
	for _, a := range cp.Attribution {
		attrT.AddRow(a.Component, a.Cause, a.Cycles,
			fmt.Sprintf("%.1f%%", float64(a.Cycles)/float64(cp.TotalCycles)*100))
	}
	attrT.Render(os.Stdout)
	if len(cp.TopTransactions) > 0 {
		fmt.Println()
		txnT := stats.NewTable("Top blocking transactions", "txn", "component", "op", "addr", "submit", "complete", "retries", "blocked")
		for _, t := range cp.TopTransactions {
			txnT.AddRow(t.Txn, t.Component, t.Op, t.Addr, t.Submit, t.Complete, t.Retries, t.Cycles)
		}
		txnT.Render(os.Stdout)
	}
}

// printSharing renders the sharing-pattern summary: the class census, the
// top-N hot lines and the master communication matrix.
func printSharing(s *sharing.Summary, masterName func(int) string) {
	var classes []string
	for _, c := range []sharing.Class{
		sharing.ClassPrivate, sharing.ClassReadOnly, sharing.ClassProducerConsumer,
		sharing.ClassMigratory, sharing.ClassReadWrite,
	} {
		if n := s.ClassCounts[c.String()]; n > 0 {
			classes = append(classes, fmt.Sprintf("%s %d", c.String(), n))
		}
	}
	fmt.Printf("sharing classes: %s", strings.Join(classes, ", "))
	if s.FalseSharingLines > 0 {
		fmt.Printf(" (%d false-sharing candidates)", s.FalseSharingLines)
	}
	fmt.Println()
	fmt.Println()

	hot := s.HotLines(10)
	if len(hot) > 0 {
		hotT := stats.NewTable("Hot lines", "line", "class", "rd", "wr", "falseShare", "misses", "upgr", "wb", "word", "inval", "c2c", "ovr")
		for _, i := range hot {
			l := s.Lines[i]
			t := l.Traffic
			hotT.AddRow(l.Base, l.Class, l.Readers, l.Writers, l.FalseSharing,
				t.Misses, t.Upgrades, t.WriteBacks, t.WordOps, t.Invalidations, t.Supplies, t.SharedOverrides)
		}
		hotT.Render(os.Stdout)
		fmt.Println()
	}
	if len(s.Matrix) > 0 {
		mT := stats.NewTable("Communication matrix", "from", "to", "supplies", "drains", "invalidations", "converted")
		for _, c := range s.Matrix {
			mT.AddRow(masterName(c.From), masterName(c.To),
				c.Cell.Supplies, c.Cell.Drains, c.Cell.Invalidations, c.Cell.Converted)
		}
		mT.Render(os.Stdout)
		fmt.Println()
	}
}

// coreName labels profile lanes and folded-stack rows with the CPU names.
func coreName(p *platform.Platform) func(int) string {
	return func(i int) string {
		if i >= 0 && i < len(p.CPUs) {
			return p.CPUs[i].Name()
		}
		return fmt.Sprintf("core%d", i)
	}
}

func sumCounts(m map[string]uint64) uint64 {
	var total uint64
	for _, n := range m {
		total += n
	}
	return total
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetccsim:", err)
		os.Exit(2)
	}
}
