package main

import (
	"testing"

	"hetcc"
	"hetcc/internal/platform"
)

func TestParseScenario(t *testing.T) {
	cases := map[string]hetcc.Scenario{
		"wcs": hetcc.WCS, "WCS": hetcc.WCS, "worst": hetcc.WCS,
		"tcs": hetcc.TCS, "typical": hetcc.TCS,
		"bcs": hetcc.BCS, "best": hetcc.BCS,
	}
	for in, want := range cases {
		got, err := parseScenario(in)
		if err != nil || got != want {
			t.Errorf("parseScenario(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScenario("nope"); err == nil {
		t.Error("bad scenario accepted")
	}
}

func TestParseSolution(t *testing.T) {
	cases := map[string]hetcc.Solution{
		"disabled": hetcc.CacheDisabled, "nocache": hetcc.CacheDisabled,
		"software": hetcc.Software, "sw": hetcc.Software,
		"proposed": hetcc.Proposed, "wrapper": hetcc.Proposed,
	}
	for in, want := range cases {
		got, err := parseSolution(in)
		if err != nil || got != want {
			t.Errorf("parseSolution(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSolution("nope"); err == nil {
		t.Error("bad solution accepted")
	}
}

func TestParsePlatform(t *testing.T) {
	for _, in := range []string{"ppc-arm", "pf2", "ppc-i486", "pf3", "arm-arm", "pf1"} {
		specs, err := parsePlatform(in)
		if err != nil || len(specs) != 2 {
			t.Errorf("parsePlatform(%q): %v, %d specs", in, err, len(specs))
		}
	}
	if _, err := parsePlatform("nope"); err == nil {
		t.Error("bad platform accepted")
	}
}

func TestParseLock(t *testing.T) {
	cases := map[string]platform.LockKind{
		"uncached-tas": platform.LockUncachedTAS,
		"tas":          platform.LockUncachedTAS,
		"hw-register":  platform.LockHardwareRegister,
		"bakery":       platform.LockBakery,
		"cached-tas":   platform.LockCachedTAS,
		"peterson":     platform.LockPeterson,
	}
	for in, want := range cases {
		got, err := parseLock(in)
		if err != nil || got != want {
			t.Errorf("parseLock(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseLock("nope"); err == nil {
		t.Error("bad lock accepted")
	}
}
