// Command sensitivity sweeps the free parameters of the timing model —
// the constants the paper does not publish and EXPERIMENTS.md documents as
// calibrated — and reports how the headline comparison (proposed vs
// software, WCS and BCS at 32 lines) responds.  It shows which of the
// paper's conclusions are robust to calibration and which are sensitive.
//
// Every sweep's runs fan out across -jobs workers (default: all CPUs) on
// the deterministic batch executor; rows are aggregated in sweep order, so
// output is byte-identical whatever the worker count.
//
// Usage:
//
//	sensitivity              # all sweeps
//	sensitivity -sweep isr   # one sweep: isr, drain, access, clock, cache, words, pipeline
//	sensitivity -jobs 8      # eight simulation workers
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hetcc"
	"hetcc/internal/platform"
	"hetcc/internal/sharing"
	"hetcc/internal/stats"
)

var (
	sweepFlag = flag.String("sweep", "", "sweep to run: isr, wrapper, drain, access, clock, cache, words, pipeline (empty = all)")
	jobsFlag  = flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers")
)

func main() {
	flag.Parse()
	known := map[string]bool{"": true, "isr": true, "wrapper": true, "drain": true, "access": true, "clock": true, "cache": true, "words": true, "pipeline": true}
	if !known[*sweepFlag] {
		fatalIf(fmt.Errorf("unknown sweep %q (want isr, wrapper, drain, access, clock, cache, words, pipeline)", *sweepFlag))
	}
	run := func(name string, f func()) {
		if *sweepFlag == "" || *sweepFlag == name {
			f()
		}
	}
	run("isr", sweepISR)
	run("wrapper", sweepWrapper)
	run("drain", sweepDrain)
	run("access", sweepAccess)
	run("clock", sweepClock)
	run("cache", sweepCache)
	run("words", sweepWords)
	run("pipeline", sweepPipeline)
}

// row is one x-position of a sweep: a platform (and bus) variant to measure.
type row struct {
	label     string
	specs     []platform.ProcessorSpec
	pipelined bool
}

// speedups measures every row's WCS and BCS speedup of the proposed solution
// over software (32 lines, exec_time 1), batching the whole sweep — rows ×
// {WCS, BCS} × {software, proposed} — across the worker pool.
func speedups(rows []row) [][2]float64 {
	scenarios := []hetcc.Scenario{hetcc.WCS, hetcc.BCS}
	solutions := []hetcc.Solution{hetcc.Software, hetcc.Proposed}
	var specs []hetcc.BatchSpec
	for _, r := range rows {
		for _, s := range scenarios {
			for _, sol := range solutions {
				specs = append(specs, hetcc.BatchSpec{
					Label: fmt.Sprintf("%s/%v/%v", r.label, s, sol),
					Config: hetcc.Config{
						Scenario:     s,
						Solution:     sol,
						Processors:   r.specs,
						PipelinedBus: r.pipelined,
						Params:       hetcc.Params{Lines: 32, ExecTime: 1},
					},
				})
			}
		}
	}
	results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: *jobsFlag})
	fatalIf(hetcc.BatchFirstError(results))
	out := make([][2]float64, len(rows))
	i := 0
	for ri := range rows {
		for si := range scenarios {
			software := results[i].Result.Cycles
			proposed := results[i+1].Result.Cycles
			i += 2
			out[ri][si] = stats.SpeedupPct(proposed, software)
		}
	}
	return out
}

func render(title string, xName string, rows []row, vals [][2]float64) {
	t := stats.NewTable(title, xName, "WCS speedup %", "BCS speedup %")
	for i, r := range rows {
		t.AddRow(r.label, fmt.Sprintf("%+.2f", vals[i][0]), fmt.Sprintf("%+.2f", vals[i][1]))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

// sweepISR varies the ARM920T interrupt response time — the paper's
// "interrupt response time" of Figure 4 and the reason PF3 beats PF2.
func sweepISR() {
	var rows []row
	for _, v := range []int{0, 2, 4, 8, 16, 32, 64} {
		specs := platform.PPCARm()
		specs[1].InterruptResponse = v
		rows = append(rows, row{label: fmt.Sprintf("%d", v), specs: specs})
	}
	render("Sensitivity: ARM920T interrupt response time (CPU cycles; default 4)", "response", rows, speedups(rows))
}

// sweepWrapper varies the wrapper's per-transaction protocol-conversion
// cost (charged only under the proposed strategy, so it eats directly into
// the proposed solution's advantage).
func sweepWrapper() {
	var rows []row
	for _, v := range []int{0, 1, 2, 4, 8} {
		specs := platform.PPCARm()
		for i := range specs {
			specs[i].WrapperLatency = v
		}
		rows = append(rows, row{label: fmt.Sprintf("%d", v), specs: specs})
	}
	render("Sensitivity: wrapper conversion latency per transaction (bus cycles; default 0)", "latency", rows, speedups(rows))
}

// sweepDrain varies the software solution's per-line drain-loop overhead.
func sweepDrain() {
	var rows []row
	for _, v := range []int{4, 8, 12, 16, 24} {
		specs := platform.PPCARm()
		for i := range specs {
			specs[i].CacheOpOverhead = v
		}
		rows = append(rows, row{label: fmt.Sprintf("%d", v), specs: specs})
	}
	render("Sensitivity: software drain-loop overhead per line (CPU cycles; default 12)", "overhead", rows, speedups(rows))
}

// sweepAccess varies the per-load/store instruction overhead.
func sweepAccess() {
	var rows []row
	for _, v := range []int{0, 1, 3, 6, 10} {
		specs := platform.PPCARm()
		for i := range specs {
			specs[i].AccessOverhead = v
		}
		rows = append(rows, row{label: fmt.Sprintf("%d", v), specs: specs})
	}
	render("Sensitivity: per-access instruction overhead (CPU cycles; default 3)", "overhead", rows, speedups(rows))
}

// sweepClock varies the ARM clock divisor (the paper runs it at half the
// PowerPC's frequency).
func sweepClock() {
	var rows []row
	for _, v := range []uint64{1, 2, 4} {
		specs := platform.PPCARm()
		specs[1].ClockDiv = v
		rows = append(rows, row{label: fmt.Sprintf("1/%d", v), specs: specs})
	}
	render("Sensitivity: ARM920T clock ratio (of the 100 MHz engine; default 1/2)", "ratio", rows, speedups(rows))
}

// sweepCache varies the ARM data-cache size.
func sweepCache() {
	var rows []row
	for _, v := range []int{4, 8, 16, 32} {
		specs := platform.PPCARm()
		specs[1].Cache.SizeBytes = v * 1024
		rows = append(rows, row{label: fmt.Sprintf("%dKB", v), specs: specs})
	}
	render("Sensitivity: ARM920T data-cache size (default 16KB)", "size", rows, speedups(rows))
}

// sweepWords varies how many words of each 8-word line an iteration
// touches, and attaches the sharing collector (proposed runs only; it never
// changes cycle counts) to explain the response: invalidations and
// cache-to-cache drains are per-line costs, so the proposed solution's
// advantage shifts as the touched fraction of each line shrinks while the
// line-granular coherence traffic stays.
func sweepWords() {
	words := []int{1, 2, 4, 8}
	scenarios := []hetcc.Scenario{hetcc.WCS, hetcc.BCS}
	solutions := []hetcc.Solution{hetcc.Software, hetcc.Proposed}
	var specs []hetcc.BatchSpec
	for _, wpl := range words {
		for _, s := range scenarios {
			for _, sol := range solutions {
				specs = append(specs, hetcc.BatchSpec{
					Label: fmt.Sprintf("words=%d/%v/%v", wpl, s, sol),
					Config: hetcc.Config{
						Scenario: s,
						Solution: sol,
						Params:   hetcc.Params{Lines: 32, ExecTime: 1, WordsPerLine: wpl},
						Sharing:  sol == hetcc.Proposed,
					},
				})
			}
		}
	}
	results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: *jobsFlag})
	fatalIf(hetcc.BatchFirstError(results))
	t := stats.NewTable("Sensitivity: words touched per 8-word line (default 8), with the WCS sharing profile",
		"words", "WCS speedup %", "BCS speedup %", "WCS classes", "WCS invalidations", "WCS c2c drains")
	i := 0
	for _, wpl := range words {
		var sp [2]float64
		var wcs *sharing.Summary
		for si := range scenarios {
			software := results[i].Result
			proposed := results[i+1].Result
			i += 2
			sp[si] = stats.SpeedupPct(proposed.Cycles, software.Cycles)
			if si == 0 {
				wcs = proposed.Sharing
			}
		}
		if wcs == nil {
			fatalIf(fmt.Errorf("words=%d: WCS proposed run produced no sharing summary", wpl))
		}
		if bad := wcs.Conserved(); bad != "" {
			fatalIf(fmt.Errorf("words=%d: sharing conservation violated: %s", wpl, bad))
		}
		t.AddRow(wpl, fmt.Sprintf("%+.2f", sp[0]), fmt.Sprintf("%+.2f", sp[1]),
			censusString(wcs), wcs.Totals.Invalidations, wcs.Totals.Drains)
	}
	t.Render(os.Stdout)
	fmt.Println()
}

// censusString compacts a class census into "32 migratory, 1 private" form.
func censusString(s *sharing.Summary) string {
	var parts []string
	for _, cl := range []string{"private", "read-only", "producer-consumer", "migratory", "read-write"} {
		if n := s.ClassCounts[cl]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, cl))
		}
	}
	if s.FalseSharingLines > 0 {
		parts = append(parts, fmt.Sprintf("%d false-sharing", s.FalseSharingLines))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

// sweepPipeline contrasts the plain ASB with the AHB-style pipelined bus.
func sweepPipeline() {
	rows := []row{
		{label: "ASB (plain)", specs: platform.PPCARm()},
		{label: "AHB-style (pipelined)", specs: platform.PPCARm(), pipelined: true},
	}
	render("Sensitivity: bus pipelining", "bus", rows, speedups(rows))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}
