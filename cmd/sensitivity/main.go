// Command sensitivity sweeps the free parameters of the timing model —
// the constants the paper does not publish and EXPERIMENTS.md documents as
// calibrated — and reports how the headline comparison (proposed vs
// software, WCS and BCS at 32 lines) responds.  It shows which of the
// paper's conclusions are robust to calibration and which are sensitive.
//
// Usage:
//
//	sensitivity              # all sweeps
//	sensitivity -sweep isr   # one sweep: isr, drain, access, clock, cache, pipeline
package main

import (
	"flag"
	"fmt"
	"os"

	"hetcc"
	"hetcc/internal/platform"
	"hetcc/internal/stats"
)

var sweepFlag = flag.String("sweep", "", "sweep to run: isr, wrapper, drain, access, clock, cache, pipeline (empty = all)")

func main() {
	flag.Parse()
	known := map[string]bool{"": true, "isr": true, "wrapper": true, "drain": true, "access": true, "clock": true, "cache": true, "pipeline": true}
	if !known[*sweepFlag] {
		fatalIf(fmt.Errorf("unknown sweep %q (want isr, wrapper, drain, access, clock, cache, pipeline)", *sweepFlag))
	}
	run := func(name string, f func()) {
		if *sweepFlag == "" || *sweepFlag == name {
			f()
		}
	}
	run("isr", sweepISR)
	run("wrapper", sweepWrapper)
	run("drain", sweepDrain)
	run("access", sweepAccess)
	run("clock", sweepClock)
	run("cache", sweepCache)
	run("pipeline", sweepPipeline)
}

// point runs one (scenario, specs) pair and returns the proposed-solution
// speedup over software in percent.
func point(s hetcc.Scenario, specs []platform.ProcessorSpec, pipelined bool) float64 {
	var cycles [2]uint64
	for i, sol := range []hetcc.Solution{hetcc.Software, hetcc.Proposed} {
		res, err := hetcc.Run(hetcc.Config{
			Scenario:     s,
			Solution:     sol,
			Processors:   specs,
			PipelinedBus: pipelined,
			Params:       hetcc.Params{Lines: 32, ExecTime: 1},
		})
		fatalIf(err)
		if res.Err != nil {
			fatalIf(res.Err)
		}
		cycles[i] = res.Cycles
	}
	return stats.SpeedupPct(cycles[1], cycles[0])
}

func wcsBcs(specs []platform.ProcessorSpec, pipelined bool) (float64, float64) {
	return point(hetcc.WCS, specs, pipelined), point(hetcc.BCS, specs, pipelined)
}

func render(title string, xName string, xs []string, rows [][2]float64) {
	t := stats.NewTable(title, xName, "WCS speedup %", "BCS speedup %")
	for i, x := range xs {
		t.AddRow(x, fmt.Sprintf("%+.2f", rows[i][0]), fmt.Sprintf("%+.2f", rows[i][1]))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

// sweepISR varies the ARM920T interrupt response time — the paper's
// "interrupt response time" of Figure 4 and the reason PF3 beats PF2.
func sweepISR() {
	values := []int{0, 2, 4, 8, 16, 32, 64}
	var xs []string
	var rows [][2]float64
	for _, v := range values {
		specs := platform.PPCARm()
		specs[1].InterruptResponse = v
		w, b := wcsBcs(specs, false)
		xs = append(xs, fmt.Sprintf("%d", v))
		rows = append(rows, [2]float64{w, b})
	}
	render("Sensitivity: ARM920T interrupt response time (CPU cycles; default 4)", "response", xs, rows)
}

// sweepWrapper varies the wrapper's per-transaction protocol-conversion
// cost (charged only under the proposed strategy, so it eats directly into
// the proposed solution's advantage).
func sweepWrapper() {
	values := []int{0, 1, 2, 4, 8}
	var xs []string
	var rows [][2]float64
	for _, v := range values {
		specs := platform.PPCARm()
		for i := range specs {
			specs[i].WrapperLatency = v
		}
		w, b := wcsBcs(specs, false)
		xs = append(xs, fmt.Sprintf("%d", v))
		rows = append(rows, [2]float64{w, b})
	}
	render("Sensitivity: wrapper conversion latency per transaction (bus cycles; default 0)", "latency", xs, rows)
}

// sweepDrain varies the software solution's per-line drain-loop overhead.
func sweepDrain() {
	values := []int{4, 8, 12, 16, 24}
	var xs []string
	var rows [][2]float64
	for _, v := range values {
		specs := platform.PPCARm()
		for i := range specs {
			specs[i].CacheOpOverhead = v
		}
		w, b := wcsBcs(specs, false)
		xs = append(xs, fmt.Sprintf("%d", v))
		rows = append(rows, [2]float64{w, b})
	}
	render("Sensitivity: software drain-loop overhead per line (CPU cycles; default 12)", "overhead", xs, rows)
}

// sweepAccess varies the per-load/store instruction overhead.
func sweepAccess() {
	values := []int{0, 1, 3, 6, 10}
	var xs []string
	var rows [][2]float64
	for _, v := range values {
		specs := platform.PPCARm()
		for i := range specs {
			specs[i].AccessOverhead = v
		}
		w, b := wcsBcs(specs, false)
		xs = append(xs, fmt.Sprintf("%d", v))
		rows = append(rows, [2]float64{w, b})
	}
	render("Sensitivity: per-access instruction overhead (CPU cycles; default 3)", "overhead", xs, rows)
}

// sweepClock varies the ARM clock divisor (the paper runs it at half the
// PowerPC's frequency).
func sweepClock() {
	values := []uint64{1, 2, 4}
	var xs []string
	var rows [][2]float64
	for _, v := range values {
		specs := platform.PPCARm()
		specs[1].ClockDiv = v
		w, b := wcsBcs(specs, false)
		xs = append(xs, fmt.Sprintf("1/%d", v))
		rows = append(rows, [2]float64{w, b})
	}
	render("Sensitivity: ARM920T clock ratio (of the 100 MHz engine; default 1/2)", "ratio", xs, rows)
}

// sweepCache varies the ARM data-cache size.
func sweepCache() {
	values := []int{4, 8, 16, 32}
	var xs []string
	var rows [][2]float64
	for _, v := range values {
		specs := platform.PPCARm()
		specs[1].Cache.SizeBytes = v * 1024
		w, b := wcsBcs(specs, false)
		xs = append(xs, fmt.Sprintf("%dKB", v))
		rows = append(rows, [2]float64{w, b})
	}
	render("Sensitivity: ARM920T data-cache size (default 16KB)", "size", xs, rows)
}

// sweepPipeline contrasts the plain ASB with the AHB-style pipelined bus.
func sweepPipeline() {
	var xs []string
	var rows [][2]float64
	for _, piped := range []bool{false, true} {
		w, b := wcsBcs(platform.PPCARm(), piped)
		name := "ASB (plain)"
		if piped {
			name = "AHB-style (pipelined)"
		}
		xs = append(xs, name)
		rows = append(rows, [2]float64{w, b})
	}
	render("Sensitivity: bus pipelining", "bus", xs, rows)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}
