// Command experiments regenerates every table and figure of the paper's
// evaluation section (DATE 2004) from the simulator, printing the same
// rows/series the paper reports.
//
// Usage:
//
//	experiments                 # everything
//	experiments -fig 6          # one figure (5, 6, 7 or 8)
//	experiments -table 2        # one table (1, 2, 3 or 4)
//	experiments -sharing        # sharing-pattern characterisation of the scenarios
//	experiments -format csv     # machine-readable output
//	experiments -iterations 16  # longer runs
//	experiments -jobs 8         # fan the run matrix across 8 workers
//
// The figure sweeps fan out across -jobs workers (default: all CPUs) on the
// deterministic batch executor (internal/runner); results are aggregated in
// sweep order, so stdout is byte-identical whatever the worker count.  The
// elapsed wall clock is reported on stderr.  Any coherence violation — a
// golden-model stale read, or an invariant-auditor violation under -audit —
// makes the command exit non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hetcc"
	"hetcc/internal/platform"
	"hetcc/internal/stats"
)

var (
	figFlag     = flag.Int("fig", 0, "regenerate only this figure (5-8); 0 = all")
	tableFlag   = flag.Int("table", 0, "regenerate only this table (1-4); 0 = all")
	format      = flag.String("format", "text", "output format: text, csv or md")
	iterations  = flag.Int("iterations", 0, "critical-section entries per task (0 = default)")
	seed        = flag.Uint64("seed", 0, "workload seed")
	verify      = flag.Bool("verify", true, "run the golden-model checker in every simulation")
	auditFlag   = flag.Bool("audit", false, "run the online invariant auditor in every simulation; violations exit non-zero")
	jobs        = flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers for the figure sweeps")
	platFlag    = flag.String("platform", "pf2", "evaluation platform: pf2 (PowerPC755+ARM920T, the paper's) or pf3 (PowerPC755+Intel486)")
	reportFlag  = flag.String("report", "", "write a machine-readable JSON report of the regenerated figure points to this file")
	schedFlag   = flag.String("scheduler", "", "engine scheduling strategy: event or tick (default: the library default; figures are identical either way)")
	sharingFlag = flag.Bool("sharing", false, "characterise the sharing patterns of the three case-study scenarios under the proposed solution: per-line class census, false-sharing candidates and the master communication matrix")
)

// figureReport is the -report document: every figure point regenerated this
// run, keyed by figure name, under a versioned schema.
type figureReport struct {
	Schema        string                   `json:"schema"`
	SchemaVersion int                      `json:"schema_version"`
	Platform      string                   `json:"platform"`
	Figures       map[string][]figurePoint `json:"figures"`
}

type figurePoint struct {
	Scenario        string  `json:"scenario"`
	ExecTime        int     `json:"exec_time,omitempty"`
	Lines           int     `json:"lines"`
	MissPenalty     int     `json:"miss_penalty,omitempty"`
	CyclesDisabled  uint64  `json:"cycles_disabled,omitempty"`
	CyclesSoftware  uint64  `json:"cycles_software"`
	CyclesProposed  uint64  `json:"cycles_proposed"`
	RatioSoftware   float64 `json:"ratio_software,omitempty"`
	RatioProposed   float64 `json:"ratio_proposed,omitempty"`
	RatioVsSoftware float64 `json:"ratio_vs_software,omitempty"`
	SpeedupPct      float64 `json:"speedup_pct"`
}

var report = figureReport{
	Schema:        "hetcc.experiments-report",
	SchemaVersion: 1,
	Figures:       make(map[string][]figurePoint),
}

func main() {
	flag.Parse()
	start := time.Now()
	out := os.Stdout
	opts := hetcc.FigureOptions{Iterations: *iterations, Seed: *seed, Verify: *verify, Audit: *auditFlag, Jobs: *jobs, Scheduler: *schedFlag}
	switch *platFlag {
	case "pf2", "":
		// the paper's measurement platform (default)
	case "pf3":
		// the paper predicts PF3 outperforms PF2 ("due to the absence of
		// an interrupt service routine")
		opts.Processors = platform.PPCI486()
	default:
		fatalIf(fmt.Errorf("unknown platform %q (want pf2 or pf3)", *platFlag))
	}

	if *figFlag != 0 && (*figFlag < 5 || *figFlag > 8) {
		fatalIf(fmt.Errorf("-fig must be 5..8, got %d", *figFlag))
	}
	if *tableFlag != 0 && (*tableFlag < 1 || *tableFlag > 4) {
		fatalIf(fmt.Errorf("-table must be 1..4, got %d", *tableFlag))
	}
	runAll := *figFlag == 0 && *tableFlag == 0 && !*sharingFlag
	var err error
	if runAll || *tableFlag == 1 {
		err = table1(out)
		fatalIf(err)
	}
	if runAll || *tableFlag == 2 {
		fatalIf(table23(out, 2))
	}
	if runAll || *tableFlag == 3 {
		fatalIf(table23(out, 3))
	}
	if runAll || *tableFlag == 4 {
		fatalIf(table4(out))
	}
	if runAll || *figFlag == 5 {
		fatalIf(figure(out, 5, opts))
	}
	if runAll || *figFlag == 6 {
		fatalIf(figure(out, 6, opts))
	}
	if runAll || *figFlag == 7 {
		fatalIf(figure(out, 7, opts))
	}
	if runAll || *figFlag == 8 {
		fatalIf(figure8(out, opts))
	}
	if *sharingFlag {
		fatalIf(sharingPatterns(out, opts))
	}
	if *reportFlag != "" {
		report.Platform = *platFlag
		f, err := os.Create(*reportFlag)
		fatalIf(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(report))
		fatalIf(f.Close())
		fmt.Printf("figure report written to %s\n", *reportFlag)
	}
	// Stderr, not stdout: stdout must stay byte-identical across -jobs
	// values (the determinism contract callers diff against).
	fmt.Fprintf(os.Stderr, "experiments: done in %v (%d workers)\n", time.Since(start).Round(time.Millisecond), *jobs)
}

func render(w io.Writer, t *stats.Table) {
	switch *format {
	case "csv":
		t.RenderCSV(w)
	case "md", "markdown":
		t.RenderMarkdown(w)
	default:
		t.Render(w)
	}
	fmt.Fprintln(w)
}

func table1(w io.Writer) error {
	t := stats.NewTable("Table 1: heterogeneous platform classes", "class", "description", "example")
	for _, row := range hetcc.Table1() {
		t.AddRow(row.Class, row.Description, row.Example)
	}
	render(w, t)
	return nil
}

func table23(w io.Writer, n int) error {
	var broken, fixed hetcc.SequenceResult
	var err error
	var title string
	if n == 2 {
		broken, fixed, err = hetcc.Table2()
		title = "Table 2: MEI + MESI integration (P0=MESI, P1=MEI)"
	} else {
		broken, fixed, err = hetcc.Table3()
		title = "Table 3: MSI + MESI integration (P0=MSI, P1=MESI)"
	}
	if err != nil {
		return err
	}
	t := stats.NewTable(title, "seq", "operation", "P0 (no wrapper)", "P1 (no wrapper)", "P0 (wrapped)", "P1 (wrapped)")
	for i := range broken.Steps {
		t.AddRow(
			string(rune('a'+i)),
			broken.Steps[i].Op,
			broken.Steps[i].States[0], broken.Steps[i].States[1],
			fixed.Steps[i].States[0], fixed.Steps[i].States[1],
		)
	}
	render(w, t)
	fmt.Fprintf(w, "  without wrappers: stale read observed = %v (the paper's defect)\n", broken.StaleRead)
	fmt.Fprintf(w, "  with wrappers:    stale read observed = %v\n\n", fixed.StaleRead)
	return nil
}

func table4(w io.Writer) error {
	info := hetcc.Table4()
	t := stats.NewTable("Table 4: simulation environment", "parameter", "value")
	t.AddRow("PowerPC755 clock", fmt.Sprintf("%d MHz", info.PowerPCClockMHz))
	t.AddRow("ARM920T clock", fmt.Sprintf("%d MHz", info.ARMClockMHz))
	t.AddRow("ASB clock", fmt.Sprintf("%d MHz", info.BusClockMHz))
	t.AddRow("memory access, single word", fmt.Sprintf("%d cycles", info.SingleWordCycles))
	t.AddRow("memory access, 8-word burst", fmt.Sprintf("%d cycles", info.BurstCycles))
	t.AddRow("cache line", fmt.Sprintf("%d bytes", info.LineBytes))
	render(w, t)
	return nil
}

func figure(w io.Writer, n int, opts hetcc.FigureOptions) error {
	var pts []hetcc.RatioPoint
	var err error
	var title string
	switch n {
	case 5:
		pts, err = hetcc.Figure5(opts)
		title = "Figure 5: worst-case scenario (ratio of execution time vs cache-disabled)"
	case 6:
		pts, err = hetcc.Figure6(opts)
		title = "Figure 6: best-case scenario (ratio of execution time vs cache-disabled)"
	case 7:
		pts, err = hetcc.Figure7(opts)
		title = "Figure 7: typical-case scenario (ratio of execution time vs cache-disabled)"
	}
	if err != nil {
		return err
	}
	t := stats.NewTable(title, "exec_time", "lines", "software", "proposed", "speedup vs software %")
	key := fmt.Sprintf("figure%d", n)
	for _, p := range pts {
		t.AddRow(p.ExecTime, p.Lines, p.RatioSoftware, p.RatioProposed, fmt.Sprintf("%+.2f", p.SpeedupVsSoftwarePct))
		report.Figures[key] = append(report.Figures[key], figurePoint{
			Scenario:       p.Scenario.String(),
			ExecTime:       p.ExecTime,
			Lines:          p.Lines,
			CyclesDisabled: p.CyclesDisabled,
			CyclesSoftware: p.CyclesSoftware,
			CyclesProposed: p.CyclesProposed,
			RatioSoftware:  p.RatioSoftware,
			RatioProposed:  p.RatioProposed,
			SpeedupPct:     p.SpeedupVsSoftwarePct,
		})
	}
	render(w, t)
	return nil
}

func figure8(w io.Writer, opts hetcc.FigureOptions) error {
	pts, err := hetcc.Figure8(nil, opts)
	if err != nil {
		return err
	}
	t := stats.NewTable("Figure 8: execution time of proposed relative to software vs miss penalty", "scenario", "lines", "penalty", "ratio", "speedup %")
	for _, p := range pts {
		t.AddRow(p.Scenario, p.Lines, p.MissPenalty, p.RatioVsSoftware, fmt.Sprintf("%+.2f", p.SpeedupPct))
		report.Figures["figure8"] = append(report.Figures["figure8"], figurePoint{
			Scenario:        p.Scenario.String(),
			Lines:           p.Lines,
			MissPenalty:     p.MissPenalty,
			CyclesSoftware:  p.CyclesSoftware,
			CyclesProposed:  p.CyclesProposed,
			RatioVsSoftware: p.RatioVsSoftware,
			SpeedupPct:      p.SpeedupPct,
		})
	}
	render(w, t)
	return nil
}

// classOrder fixes the census column order (matches sharing.Class).
var classOrder = []string{"private", "read-only", "producer-consumer", "migratory", "read-write"}

// sharingPatterns runs the three case-study scenarios under the proposed
// solution with the sharing collector and prints the per-line class census
// and the master communication matrix — the workload-characterisation
// companion to the figures (EXPERIMENTS.md discusses how to read it).
func sharingPatterns(w io.Writer, opts hetcc.FigureOptions) error {
	procs := opts.Processors
	if len(procs) == 0 {
		procs = hetcc.DefaultProcessors()
	}
	scenarios := []hetcc.Scenario{hetcc.WCS, hetcc.BCS, hetcc.TCS}
	var specs []hetcc.BatchSpec
	for _, s := range scenarios {
		specs = append(specs, hetcc.BatchSpec{
			Label: fmt.Sprintf("sharing/%v", s),
			Config: hetcc.Config{
				Scenario:   s,
				Solution:   hetcc.Proposed,
				Processors: procs,
				Params:     hetcc.Params{Iterations: *iterations, Seed: *seed},
				Verify:     opts.Verify,
				Audit:      opts.Audit,
				Sharing:    true,
				Scheduler:  opts.Scheduler,
			},
		})
	}
	results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: opts.Jobs})
	if err := hetcc.BatchFirstError(results); err != nil {
		return err
	}
	census := stats.NewTable("Sharing patterns: per-line class census (proposed solution)",
		"scenario", "lines", "private", "read-only", "prod-cons", "migratory", "read-write", "false-sharing")
	for i, s := range scenarios {
		sum := results[i].Result.Sharing
		if sum == nil {
			return fmt.Errorf("sharing: %v run produced no summary", s)
		}
		if bad := sum.Conserved(); bad != "" {
			return fmt.Errorf("sharing: %v conservation violated: %s", s, bad)
		}
		row := []any{s.String(), len(sum.Lines)}
		for _, cl := range classOrder {
			row = append(row, sum.ClassCounts[cl])
		}
		row = append(row, sum.FalseSharingLines)
		census.AddRow(row...)
	}
	render(w, census)
	for i, s := range scenarios {
		sum := results[i].Result.Sharing
		t := stats.NewTable(fmt.Sprintf("Communication matrix: %v (from supplier/invalidator to consumer/victim)", s),
			"from", "to", "supplies", "drains", "invalidations", "converted")
		for _, m := range sum.Matrix {
			t.AddRow(masterLabel(procs, m.From), masterLabel(procs, m.To),
				m.Cell.Supplies, m.Cell.Drains, m.Cell.Invalidations, m.Cell.Converted)
		}
		render(w, t)
	}
	return nil
}

// masterLabel names bus master id for the matrix tables.
func masterLabel(procs []platform.ProcessorSpec, id int) string {
	if id >= 0 && id < len(procs) {
		return procs[id].Model
	}
	return fmt.Sprintf("master %d", id)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
