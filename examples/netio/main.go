// netio explores the paper's stated future work: "we plan to apply our
// approach to emerging technologies that tightly integrate between a main
// processor and specialized I/O processors such as network processors"
// (Section 5, citing the I/O Threads report).
//
// The platform is a three-core heterogeneous SoC:
//
//   - a PowerPC755 (MEI) running the application that consumes packets;
//   - an Intel486 (MESI) running the protocol stack that validates and
//     re-frames packets;
//   - an ARM920T (no coherence hardware) acting as the network I/O
//     processor, writing received packets into shared memory.
//
// Packets flow I/O → stack → application through two shared queues, each
// protected by its own uncached lock so the stages pipeline, all kept
// coherent by the paper's wrappers plus the ARM-side snoop logic.  The run
// is checked against the golden model end to end.
package main

import (
	"fmt"
	"log"

	"hetcc"
	"hetcc/internal/isa"
	"hetcc/internal/platform"
	"hetcc/internal/stats"
	"hetcc/internal/workload"
)

const (
	packets      = 10
	packetLines  = 8 // 256 B packets
	lineBytes    = 32
	wordsPerLine = 8
)

// Queue 0 (raw packets) lives in blocks 0-1 and is protected by lock 0;
// queue 1 (validated packets) lives in blocks 2-3 under lock 1.  Separate
// locks let the application drain cooked packets while the I/O processor
// fills raw buffers.
func rawAddr(pkt, line int) uint32 {
	return workload.BlockBase(pkt%2) + uint32(line*lineBytes)
}

func cookedAddr(pkt, line int) uint32 {
	return workload.BlockBase(2+pkt%2) + uint32(line*lineBytes)
}

// ioProcessor (ARM920T) receives packets: writes each raw packet, then
// waits a line-rate gap.
func ioProcessor() isa.Program {
	b := isa.NewBuilder()
	for p := 0; p < packets; p++ {
		b.Lock(0) // raw-queue lock
		for l := 0; l < packetLines; l++ {
			base := rawAddr(p, l)
			for w := 0; w < wordsPerLine; w++ {
				b.Write(base+uint32(4*w), uint32(0x10000000|p<<16|l<<8|w+1))
			}
		}
		b.Unlock(0)
		b.Delay(60) // inter-arrival gap at line rate
	}
	return b.Halt()
}

// stack (Intel486) validates each raw packet and emits a cooked one.
func stack() isa.Program {
	b := isa.NewBuilder()
	for p := 0; p < packets; p++ {
		b.Lock(0) // consume from the raw queue
		for l := 0; l < packetLines; l++ {
			raw := rawAddr(p, l)
			for w := 0; w < wordsPerLine; w++ {
				b.Read(raw + uint32(4*w))
			}
		}
		b.Unlock(0)
		b.Lock(1) // publish to the cooked queue
		for l := 0; l < packetLines; l++ {
			cooked := cookedAddr(p, l)
			for w := 0; w < wordsPerLine; w++ {
				b.Write(cooked+uint32(4*w), uint32(0x20000000|p<<16|l<<8|w+1))
			}
		}
		b.Unlock(1)
		b.Delay(20) // checksum / header rewrite
	}
	return b.Halt()
}

// app (PowerPC755) consumes the cooked packets.
func app() isa.Program {
	b := isa.NewBuilder()
	for p := 0; p < packets; p++ {
		b.Lock(1) // cooked-queue lock
		for l := 0; l < packetLines; l++ {
			base := cookedAddr(p, l)
			for w := 0; w < wordsPerLine; w++ {
				b.Read(base + uint32(4*w))
			}
		}
		b.Unlock(1)
		b.Delay(30) // application processing
	}
	return b.Halt()
}

func main() {
	specs := []platform.ProcessorSpec{
		platform.PowerPC755(),
		platform.Intel486(),
		platform.ARM920T(),
	}
	lk := platform.LockChoice{Kind: platform.LockUncachedTAS, SpinDelay: 4, Count: 2}
	p, err := hetcc.Build(hetcc.Config{
		Scenario:   hetcc.WCS, // placeholder; programs replaced below
		Solution:   hetcc.Proposed,
		Processors: specs,
		Lock:       &lk,
		Verify:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.LoadPrograms([]isa.Program{app(), stack(), ioProcessor()}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("netio — main CPU + protocol stack + network I/O processor (3-core SoC)")
	fmt.Printf("platform class %v, effective protocol %v\n", p.Integration.Class, p.Integration.Effective)
	fmt.Printf("%s\n\n", p.Integration.LockCaveat)

	res := p.Run(50_000_000)
	if res.Err != nil {
		log.Fatalf("run: %v", res.Err)
	}

	t := stats.NewTable("Per-core activity", "core", "role", "instr", "fills", "snoopFlushes", "fiq", "isr")
	roles := []string{"application", "protocol stack", "network I/O"}
	for i := range p.CPUs {
		t.AddRow(p.CPUs[i].Name(), roles[i], res.CPU[i].Instructions,
			res.Cache[i].ReadMisses+res.Cache[i].WriteMisses,
			res.Cache[i].SnoopFlushes, res.CPU[i].FIQsRaised, res.CPU[i].ISRRuns)
	}
	fmt.Print(t.String())
	fmt.Printf("\npipeline of %d packets finished in %d cycles; ARM snoop logic hit %d times\n",
		packets, res.Cycles, res.Snoop[2].Hits)
	if res.Coherent() {
		fmt.Println("golden-model check: PASS — packets flowed coherently through all three cores")
	} else {
		log.Fatalf("stale read: %v", res.Violations[0])
	}
}
