// armdeadlock demonstrates the paper's hardware-deadlock problem (Figure
// 4) on the PF2 platform (PowerPC755 + ARM920T) and its remedies.
//
// With a *cacheable* lock variable, the ARM920T — whose snooping happens in
// an interrupt service routine — can end up stalled on a lock check that
// the PowerPC keeps retrying past, while the PowerPC's own access waits on
// the ARM's ISR: nobody progresses.  The simulator's bus detects the
// retry livelock and reports bus.ErrHardwareDeadlock.
//
// The paper's two remedies both work: keep lock variables uncached (a
// software lock such as Lamport's bakery also qualifies), or use a 1-bit
// hardware lock register on the bus.
package main

import (
	"fmt"
	"log"

	"hetcc"
	"hetcc/internal/platform"
)

func run(kind platform.LockKind) hetcc.Result {
	lk := platform.LockChoice{Kind: kind, Alternate: false, SpinDelay: 4}
	res, err := hetcc.Run(hetcc.Config{
		Scenario: hetcc.WCS,
		Solution: hetcc.Proposed,
		Lock:     &lk,
		Verify:   true,
		Params:   hetcc.Params{Lines: 4, ExecTime: 1, Iterations: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("armdeadlock — the hardware-deadlock problem on PF2 (paper Figure 4)")
	fmt.Println()

	fmt.Println("1. lock variable CACHED in the shared region:")
	res := run(platform.LockCachedTAS)
	if res.Deadlocked() {
		fmt.Printf("   HARDWARE DEADLOCK detected after %d cycles (%d bus retries) — as the paper predicts\n\n",
			res.Cycles, res.Bus.Aborted)
	} else {
		log.Fatalf("   expected a deadlock, got err=%v after %d cycles", res.Err, res.Cycles)
	}

	remedies := []struct {
		kind platform.LockKind
		desc string
	}{
		{platform.LockUncachedTAS, "uncached test-and-set lock (lock variables not cached)"},
		{platform.LockBakery, "Lamport bakery lock over uncached plain loads/stores"},
		{platform.LockPeterson, "Peterson two-task lock over uncached plain loads/stores"},
		{platform.LockHardwareRegister, "1-bit hardware lock register on the bus (SoC Lock Cache)"},
	}
	for i, r := range remedies {
		fmt.Printf("%d. remedy: %s\n", i+2, r.desc)
		res := run(r.kind)
		if res.Err != nil {
			log.Fatalf("   failed: %v", res.Err)
		}
		status := "coherent"
		if !res.Coherent() {
			status = fmt.Sprintf("STALE READS: %v", res.Violations[0])
		}
		fmt.Printf("   completed in %d cycles, %s\n\n", res.Cycles, status)
	}

	fmt.Println("Note: with the hardware lock register the system can have only one")
	fmt.Println("lock (the register holds a single bit), as the paper points out.")
}
