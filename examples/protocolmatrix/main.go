// protocolmatrix integrates every pair of invalidation-based protocols on
// the cycle-level simulator, runs a contended workload on each pair, and
// shows (a) the effective reduced protocol, (b) that the golden-model
// checker finds no stale reads, and (c) which states the wrappers actually
// eliminated at run time — the live counterpart of the paper's Section 2
// reduction table and of cmd/protocheck's static model check.
package main

import (
	"fmt"
	"log"
	"strings"

	"hetcc"
	"hetcc/internal/coherence"
	"hetcc/internal/platform"
	"hetcc/internal/stats"
)

func main() {
	kinds := []coherence.Kind{coherence.MEI, coherence.MSI, coherence.MESI, coherence.MOESI}
	t := stats.NewTable("Protocol integration matrix (live simulation)",
		"P0", "P1", "effective", "cycles", "stale reads", "states seen P0", "states seen P1", "conversions")

	for i, a := range kinds {
		for j, b := range kinds {
			if j < i {
				continue
			}
			specs := []platform.ProcessorSpec{
				platform.Generic("P0-"+a.String(), a, 1),
				platform.Generic("P1-"+b.String(), b, 1),
			}
			lk := platform.LockChoice{Kind: platform.LockUncachedTAS, Alternate: true, SpinDelay: 4}
			p, err := hetcc.Build(hetcc.Config{
				Scenario:   hetcc.WCS,
				Solution:   hetcc.Proposed,
				Processors: specs,
				Lock:       &lk,
				Verify:     true,
				Params:     hetcc.Params{Lines: 6, ExecTime: 2, Iterations: 5},
			})
			if err != nil {
				log.Fatal(err)
			}

			// Sample the coherence states each cache passes through.
			seen := []map[coherence.State]bool{{}, {}}
			for c := 0; c < 4_000_000 && !p.Engine.Stopped(); c++ {
				p.Engine.Step()
				if c%5 != 0 {
					continue
				}
				for core := 0; core < 2; core++ {
					arr := p.Controllers[core].Cache()
					for _, base := range arr.ResidentLines() {
						if platform.InShared(base) {
							seen[core][arr.StateOf(base)] = true
						}
					}
				}
			}
			res := p.Run(50_000_000) // finish if not already stopped
			if res.Err != nil {
				log.Fatalf("%v+%v: %v", a, b, res.Err)
			}

			conv := res.WrapperConv[0] + res.WrapperConv[1]
			t.AddRow(a, b, p.Integration.Effective, res.Cycles, len(res.Violations),
				stateSet(seen[0]), stateSet(seen[1]), conv)

			// Cross-check the reduction claims live.
			assertEliminated(a, b, p.Integration.Effective, seen)
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nEvery combination ran coherently; the states each cache visited stay")
	fmt.Println("inside the reduced protocol of the paper's Section 2.")
}

func stateSet(m map[coherence.State]bool) string {
	var out []string
	for _, s := range []coherence.State{coherence.Invalid, coherence.Shared, coherence.Exclusive, coherence.Modified, coherence.Owned} {
		if m[s] {
			out = append(out, s.String())
		}
	}
	if len(out) == 0 {
		return "-"
	}
	return strings.Join(out, ",")
}

func assertEliminated(a, b, effective coherence.Kind, seen []map[coherence.State]bool) {
	check := func(core int, st coherence.State) {
		if seen[core][st] {
			log.Fatalf("%v+%v: P%d entered %v despite reduction to %v", a, b, core, st, effective)
		}
	}
	switch effective {
	case coherence.MEI:
		for core, k := range []coherence.Kind{a, b} {
			if k != coherence.MSI { // MSI's self-allocated S behaves as E (paper 2.1)
				check(core, coherence.Shared)
			}
			check(core, coherence.Owned)
		}
	case coherence.MSI:
		for core := range seen {
			check(core, coherence.Exclusive)
			check(core, coherence.Owned)
		}
	case coherence.MESI:
		for core := range seen {
			check(core, coherence.Owned)
		}
	}
}
