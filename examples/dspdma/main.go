// dspdma shows the coherent DMA engine moving media buffers between a
// general-purpose core and a DSP-style core — the data-movement pattern of
// the paper's motivating SoC (a media processor/DSP next to a
// general-purpose CPU) and its future-work direction of tightly-integrated
// I/O processors.
//
// The PowerPC755 "decodes" a buffer (writes it — the data sits dirty in
// its cache), programs the DMA engine to copy it to the DSP's work area,
// and the ARM920T (standing in for the DSP) processes it and writes
// results the PowerPC then reads back.  No explicit cache maintenance
// appears anywhere: the DMA's bus transactions are snooped like any
// processor's, so the wrappers and snoop logic keep every copy coherent —
// dirty source lines are drained for the DMA read, and cached destination
// copies are invalidated by its write.
package main

import (
	"fmt"
	"log"

	"hetcc/internal/isa"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

const (
	bufLines  = 16 // 512-byte media buffer
	lineBytes = 32
	words     = bufLines * lineBytes / 4
)

var (
	decoded = workload.BlockBase(0) // written by the CPU (cached, dirty)
	workBuf = workload.BlockBase(1) // DMA copies here for the DSP
	results = workload.BlockBase(2) // DSP output
	flagVar = platform.LockBase + 0xf0
)

// DMA register addresses.
var (
	regSrc    = platform.DMABase + 0x0
	regDst    = platform.DMABase + 0x4
	regLen    = platform.DMABase + 0x8
	regCtrl   = platform.DMABase + 0xc
	regStatus = platform.DMABase + 0x10
)

func cpuProgram() isa.Program {
	b := isa.NewBuilder()
	// "Decode" the buffer: the data stays dirty in the PowerPC cache.
	for w := uint32(0); w < words; w++ {
		b.Write(decoded+4*w, 0xD000_0000|w)
	}
	// Ship it to the DSP work area by DMA and signal the DSP.
	b.Write(regSrc, decoded)
	b.Write(regDst, workBuf)
	b.Write(regLen, bufLines*lineBytes)
	b.Write(regCtrl, 1)
	b.WaitEq(regStatus, 2) // done
	b.Write(flagVar, 1)    // uncached mailbox: buffer ready
	// Wait for the DSP's results and consume them.
	b.WaitEq(flagVar, 2)
	for w := uint32(0); w < words; w++ {
		b.Read(results + 4*w)
	}
	return b.Halt()
}

func dspProgram() isa.Program {
	b := isa.NewBuilder()
	b.WaitEq(flagVar, 1) // wait for the buffer
	for w := uint32(0); w < words; w++ {
		b.Read(workBuf + 4*w)
		b.Write(results+4*w, 0xE000_0000|w) // "filtered" output
	}
	b.Write(flagVar, 2)
	return b.Halt()
}

func main() {
	p, err := platform.Build(platform.Config{
		Processors: platform.PPCARm(),
		Solution:   platform.Proposed,
		Lock:       platform.LockChoice{Kind: platform.LockUncachedTAS},
		DMA:        true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.LoadPrograms([]isa.Program{cpuProgram(), dspProgram()}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("dspdma — CPU decodes, coherent DMA ships, DSP filters")
	res := p.Run(50_000_000)
	if res.Err != nil {
		log.Fatalf("run: %v", res.Err)
	}

	// Verify end to end: the DSP's work buffer must hold the CPU's decoded
	// data (which never reached memory before the DMA read drained it).
	ok := true
	for w := uint32(0); w < words; w++ {
		if got := p.Memory.Peek(workBuf + 4*w); got != 0xD000_0000|w {
			fmt.Printf("work buffer word %d corrupt: %#x\n", w, got)
			ok = false
			break
		}
	}
	fmt.Printf("pipeline finished in %d cycles\n", res.Cycles)
	fmt.Printf("DMA: %d lines copied, %d transfer(s)\n", p.DMA.LinesCopied, p.DMA.Transfers)
	fmt.Printf("PowerPC snoop drains for the DMA read: %d\n", res.Cache[0].SnoopFlushes)
	fmt.Printf("ARM snoop-logic hits (work-area hand-off): %d\n", res.Snoop[1].Hits)
	if ok {
		fmt.Println("end-to-end check: PASS — no explicit cache maintenance anywhere")
	} else {
		log.Fatal("end-to-end check: FAIL")
	}
}
