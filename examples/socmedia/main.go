// socmedia reproduces the paper's motivating SoC workload (Section 1): a
// media processor decodes frames into a shared buffer while a second
// processor runs the network stack that consumes them.  "One can employ a
// media processor or a DSP for the MPEG/audio applications while a
// different one for the TCP/IP stack processing."
//
// The producer task (on the PowerPC755) writes 1 KB frames into a shared
// ring of buffers; the consumer task (on the ARM920T) checksums each frame.
// Both synchronise with the uncached lock, alternating — exactly the
// hand-off a real decoder/transmit pipeline performs.
//
// The example runs the pipeline under all three coherence strategies and
// reports how the paper's wrapper/snoop-logic hardware compares with
// disabling the caches or draining in software.
package main

import (
	"fmt"
	"log"

	"hetcc"
	"hetcc/internal/isa"
	"hetcc/internal/platform"
	"hetcc/internal/stats"
	"hetcc/internal/workload"
)

const (
	frames       = 12
	frameLines   = 32 // 32 lines x 32 B = 1 KB per frame
	ringBuffers  = 4
	lineBytes    = 32
	wordsPerLine = 8
)

func frameLineAddr(frame, line int) uint32 {
	buf := frame % ringBuffers
	return workload.BlockBase(buf) + uint32(line*lineBytes)
}

// producer decodes frames: under the lock it writes every word of the
// frame's buffer, then (in the software strategy) drains it.
func producer(sol hetcc.Solution) isa.Program {
	b := isa.NewBuilder()
	for f := 0; f < frames; f++ {
		b.Delay(40) // decode computation before publishing
		b.Lock(0)
		for l := 0; l < frameLines; l++ {
			base := frameLineAddr(f, l)
			for w := 0; w < wordsPerLine; w++ {
				b.Write(base+uint32(4*w), uint32(f<<16|l<<8|w+1))
			}
		}
		if sol == hetcc.Software {
			for l := 0; l < frameLines; l++ {
				b.Clean(frameLineAddr(f, l))
			}
		}
		b.Unlock(0)
	}
	return b.Halt()
}

// consumer checksums each frame under the lock (reads every word), then
// hands the buffer back.
func consumer(sol hetcc.Solution) isa.Program {
	b := isa.NewBuilder()
	for f := 0; f < frames; f++ {
		b.Lock(0)
		for l := 0; l < frameLines; l++ {
			base := frameLineAddr(f, l)
			for w := 0; w < wordsPerLine; w++ {
				b.Read(base + uint32(4*w))
			}
		}
		if sol == hetcc.Software {
			// The consumer's copies are clean, but it must still
			// invalidate them or the next frame in this ring slot would
			// hit stale data.
			for l := 0; l < frameLines; l++ {
				b.Inval(frameLineAddr(f, l))
			}
		}
		b.Unlock(0)
		b.Delay(40) // protocol/checksum work outside the critical section
	}
	return b.Halt()
}

func run(sol hetcc.Solution) (uint64, error) {
	lk := platform.LockChoice{Kind: platform.LockUncachedTAS, Alternate: true, SpinDelay: 4}
	p, err := hetcc.Build(hetcc.Config{
		Scenario: hetcc.WCS, // placeholder; programs are replaced below
		Solution: sol,
		Lock:     &lk,
		Verify:   true,
	})
	if err != nil {
		return 0, err
	}
	if err := p.LoadPrograms([]isa.Program{producer(sol), consumer(sol)}); err != nil {
		return 0, err
	}
	res := p.Run(50_000_000)
	if res.Err != nil {
		return 0, fmt.Errorf("%v: %w", sol, res.Err)
	}
	if !res.Coherent() {
		return 0, fmt.Errorf("%v: stale read: %v", sol, res.Violations[0])
	}
	return res.Cycles, nil
}

func main() {
	fmt.Println("socmedia — media producer (PowerPC755) + network consumer (ARM920T)")
	fmt.Printf("%d frames of %d KB through a %d-buffer shared ring\n\n", frames, frameLines*lineBytes/1024, ringBuffers)

	cycles := map[hetcc.Solution]uint64{}
	for _, sol := range []hetcc.Solution{hetcc.CacheDisabled, hetcc.Software, hetcc.Proposed} {
		c, err := run(sol)
		if err != nil {
			log.Fatal(err)
		}
		cycles[sol] = c
	}

	t := stats.NewTable("Pipeline completion time", "strategy", "cycles", "ratio vs disabled", "speedup vs software %")
	for _, sol := range []hetcc.Solution{hetcc.CacheDisabled, hetcc.Software, hetcc.Proposed} {
		t.AddRow(sol, cycles[sol],
			stats.Ratio(cycles[sol], cycles[hetcc.CacheDisabled]),
			fmt.Sprintf("%+.2f", stats.SpeedupPct(cycles[sol], cycles[hetcc.Software])))
	}
	fmt.Print(t.String())
	fmt.Println("\nThe proposed wrappers give the programmer a transparent view of the")
	fmt.Println("shared frames: no drain/invalidate code, and the fastest pipeline.")
}
