// Quickstart: build the paper's PF3 case study — a PowerPC755 (MEI) and a
// Write-back Enhanced Intel486 (MESI) on one shared ASB — run the
// worst-case microbenchmark under the paper's wrapper-based coherence, and
// print what the hardware did.
package main

import (
	"fmt"
	"log"

	"hetcc"
	"hetcc/internal/platform"
)

func main() {
	cfg := hetcc.Config{
		Scenario:   hetcc.WCS,
		Solution:   hetcc.Proposed,
		Processors: platform.PPCI486(),
		Verify:     true,
		Params: hetcc.Params{
			Lines:      8, // shared cache lines touched per critical section
			ExecTime:   2, // paper's exec_time
			Iterations: 6, // critical-section entries per task
		},
	}

	p, err := hetcc.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hetcc quickstart — PF3: PowerPC755 (MEI) + Intel486 (MESI)")
	fmt.Printf("protocol reduction: %v + %v -> effective %v\n",
		p.Config.Processors[0].Protocol, p.Config.Processors[1].Protocol,
		p.Integration.Effective)
	for i, w := range p.Wrappers {
		if w != nil {
			fmt.Printf("  wrapper on %s: %v\n", p.CPUs[i].Name(), w.Policy())
		}
	}

	res := p.Run(10_000_000)
	if res.Err != nil {
		log.Fatalf("run failed: %v", res.Err)
	}

	fmt.Printf("\ncompleted in %d cycles (100 MHz engine clock)\n", res.Cycles)
	fmt.Printf("bus: %d fills, %d write-backs, %d ARTRY retries\n",
		res.Bus.LineFills, res.Bus.WriteBacks, res.Bus.Aborted)
	for i := range p.CPUs {
		fmt.Printf("%s: %d read hits, %d read misses, %d snoop flushes (HITM drains)\n",
			p.CPUs[i].Name(), res.Cache[i].ReadHits, res.Cache[i].ReadMisses, res.Cache[i].SnoopFlushes)
	}
	fmt.Printf("Intel486 wrapper converted %d snooped reads into writes (removing the S state)\n",
		res.WrapperConv[1])

	if res.Coherent() {
		fmt.Println("\ngolden-model check: PASS — every read saw the globally last write")
	} else {
		log.Fatalf("coherence violated: %v", res.Violations[0])
	}
}
