package hetcc_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"hetcc"
)

// TestSharingDigestEquivalence is the observer-effect gate for the sharing
// collector: across the full 27-run matrix, under both schedulers, enabling
// the collector must change no cycle count and no v1–v5 report byte — the
// only difference between a sharing-off and a sharing-on run is the added
// "sharing" section.  Every produced summary must also uphold the
// conservation invariants (each touched line in exactly one class, per-line
// and per-cell counters summing to the event-stream totals).
func TestSharingDigestEquivalence(t *testing.T) {
	for _, scheduler := range schedulerModes {
		scheduler := scheduler
		t.Run(scheduler, func(t *testing.T) {
			baseline := determinismBatch(t, scheduler)
			enabled := determinismBatch(t, scheduler)
			for i := range enabled {
				enabled[i].Config.Sharing = true
			}
			off := hetcc.RunBatch(baseline, hetcc.BatchOptions{Jobs: 4, Reports: true})
			on := hetcc.RunBatch(enabled, hetcc.BatchOptions{Jobs: 4, Reports: true})
			if err := hetcc.BatchFirstError(off); err != nil {
				t.Fatalf("sharing-off batch failed: %v", err)
			}
			if err := hetcc.BatchFirstError(on); err != nil {
				t.Fatalf("sharing-on batch failed: %v", err)
			}
			for i := range off {
				a, b := off[i], on[i]
				if a.Label != b.Label {
					t.Fatalf("run %d: labels %q / %q diverged", i, a.Label, b.Label)
				}
				if a.Result.Cycles != b.Result.Cycles {
					t.Errorf("%s: enabling the collector changed the cycle count: %d -> %d",
						a.Label, a.Result.Cycles, b.Result.Cycles)
				}
				if a.Report.Sharing != nil {
					t.Errorf("%s: sharing-off run carries a sharing section", a.Label)
				}
				s := b.Report.Sharing
				if s == nil {
					t.Errorf("%s: sharing-on run produced no summary", b.Label)
					continue
				}
				if bad := s.Conserved(); bad != "" {
					t.Errorf("%s: conservation violated: %s", b.Label, bad)
				}
				// Strip the v6 section: what remains must be byte-identical
				// to the sharing-off report (v1–v5 fields unchanged).
				stripped := *b.Report
				stripped.Sharing = nil
				rawOff, err := json.Marshal(a.Report)
				if err != nil {
					t.Fatalf("%s: marshal sharing-off report: %v", a.Label, err)
				}
				rawOn, err := json.Marshal(&stripped)
				if err != nil {
					t.Fatalf("%s: marshal stripped sharing-on report: %v", b.Label, err)
				}
				if !bytes.Equal(rawOff, rawOn) {
					t.Errorf("%s: v1–v5 report bytes differ with the collector enabled:\n%s\n---\n%s",
						a.Label, rawOff, rawOn)
				}
			}
			dOff, err := hetcc.BatchDigest(off)
			if err != nil {
				t.Fatalf("sharing-off batch digest: %v", err)
			}
			if _, err := hetcc.BatchDigest(on); err != nil {
				t.Fatalf("sharing-on batch digest: %v", err)
			}
			_ = dOff // the per-run byte comparison above is the real gate
		})
	}
}

// TestSharingContentOnContendedRun spot-checks summary content on a real
// contended run: the WCS data lines under the proposed solution are written
// by both masters in lock-protected turns, so they must classify migratory
// and the communication matrix must show traffic in both directions.
func TestSharingContentOnContendedRun(t *testing.T) {
	res := hetcc.MustRun(hetcc.Config{
		Scenario: hetcc.WCS,
		Solution: hetcc.Proposed,
		Params:   hetcc.Params{Lines: 8, ExecTime: 1, Iterations: 8},
		Verify:   true,
		Sharing:  true,
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	s := res.Sharing
	if s == nil {
		t.Fatal("no sharing summary on a sharing-enabled run")
	}
	if bad := s.Conserved(); bad != "" {
		t.Fatalf("conservation violated: %s", bad)
	}
	if s.ClassCounts["migratory"] == 0 {
		t.Fatalf("no migratory lines on a lock-stepped WCS run: %v", s.ClassCounts)
	}
	var dirs [2]bool
	for _, m := range s.Matrix {
		if m.From == 0 && m.To == 1 {
			dirs[0] = true
		}
		if m.From == 1 && m.To == 0 {
			dirs[1] = true
		}
	}
	if !dirs[0] || !dirs[1] {
		t.Fatalf("communication matrix missing a direction: %+v", s.Matrix)
	}
	if len(s.Heatmap.Windows) == 0 {
		t.Fatal("no heat windows on a multi-thousand-cycle run")
	}
}
