package hetcc_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetcc"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden batch-digest file")

// schedulerModes are the two engine scheduling strategies; every property in
// this package must hold under both, with byte-identical results.
var schedulerModes = []string{platform.SchedulerEvent, platform.SchedulerTick}

// determinismBatch is a representative run matrix: every case-study platform
// × scenario × solution, with verification, auditing, profiling and span
// collection on so the reports carry the full pre-v6 payload (stats,
// violations, audit summary, stall-cause profile, critical path).  The
// sharing collector stays off here — TestSharingDigestEquivalence proves
// enabling it changes nothing but the added section.  The scheduler argument
// selects the engine strategy for every run in the batch.
func determinismBatch(t *testing.T, scheduler string) []hetcc.BatchSpec {
	t.Helper()
	presets := []struct {
		name  string
		procs []platform.ProcessorSpec
	}{
		{"pf1", platform.ARMPair()},
		{"pf2", platform.PPCARm()},
		{"pf3", platform.PPCI486()},
	}
	var specs []hetcc.BatchSpec
	for _, pf := range presets {
		for _, scenario := range workload.Scenarios() {
			for _, sol := range platform.Solutions() {
				specs = append(specs, hetcc.BatchSpec{
					Label: fmt.Sprintf("%s/%v/%v", pf.name, scenario, sol),
					Config: hetcc.Config{
						Scenario:   scenario,
						Solution:   sol,
						Processors: pf.procs,
						Params:     hetcc.Params{Lines: 4, ExecTime: 1, Iterations: 2},
						Verify:     true,
						Audit:      true,
						Profile:    true,
						Spans:      true,
						Scheduler:  scheduler,
						MaxCycles:  5_000_000,
					},
				})
			}
		}
	}
	return specs
}

// TestBatchDeterminismAcrossJobs is the determinism regression test of the
// parallel runner: the same spec batch run with jobs=1 and jobs=8 must
// produce byte-identical JSON run reports and identical audit digests, run
// by run and in aggregate.
func TestBatchDeterminismAcrossJobs(t *testing.T) {
	specs := determinismBatch(t, platform.SchedulerEvent)
	seq := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: 1, Reports: true})
	par := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: 8, Reports: true})
	if err := hetcc.BatchFirstError(seq); err != nil {
		t.Fatalf("jobs=1 batch failed: %v", err)
	}
	if err := hetcc.BatchFirstError(par); err != nil {
		t.Fatalf("jobs=8 batch failed: %v", err)
	}
	if len(seq) != len(specs) || len(par) != len(specs) {
		t.Fatalf("result counts: jobs=1 %d, jobs=8 %d, want %d", len(seq), len(par), len(specs))
	}
	for i := range specs {
		a, b := seq[i], par[i]
		if a.Label != specs[i].Label || b.Label != specs[i].Label {
			t.Fatalf("run %d: labels %q / %q, want %q (ordered aggregation broken)", i, a.Label, b.Label, specs[i].Label)
		}
		rawA, err := json.Marshal(a.Report)
		if err != nil {
			t.Fatalf("%s: marshal jobs=1 report: %v", a.Label, err)
		}
		rawB, err := json.Marshal(b.Report)
		if err != nil {
			t.Fatalf("%s: marshal jobs=8 report: %v", b.Label, err)
		}
		if !bytes.Equal(rawA, rawB) {
			t.Errorf("%s: jobs=1 and jobs=8 reports differ:\n%s\n---\n%s", a.Label, rawA, rawB)
		}
		if a.Digest == "" || a.Digest != b.Digest {
			t.Errorf("%s: digest mismatch: jobs=1 %q, jobs=8 %q", a.Label, a.Digest, b.Digest)
		}
		if a.Result.Cycles != b.Result.Cycles {
			t.Errorf("%s: cycle counts differ: %d vs %d", a.Label, a.Result.Cycles, b.Result.Cycles)
		}
	}
	dSeq, err := hetcc.BatchDigest(seq)
	if err != nil {
		t.Fatalf("jobs=1 batch digest: %v", err)
	}
	dPar, err := hetcc.BatchDigest(par)
	if err != nil {
		t.Fatalf("jobs=8 batch digest: %v", err)
	}
	if dSeq != dPar {
		t.Fatalf("aggregate batch digests differ: %s vs %s", dSeq, dPar)
	}
}

// TestSchedulerEquivalence is the dual-scheduler gate: the 27-run matrix
// executed under the event scheduler and under the tick scheduler must
// produce byte-identical JSON run reports, identical digests and identical
// cycle counts, run by run and in aggregate (DESIGN.md §8).  The event
// scheduler skips idle engine cycles; any wake it misses shows up here as a
// digest divergence.
func TestSchedulerEquivalence(t *testing.T) {
	event := hetcc.RunBatch(determinismBatch(t, platform.SchedulerEvent), hetcc.BatchOptions{Jobs: 4, Reports: true})
	tick := hetcc.RunBatch(determinismBatch(t, platform.SchedulerTick), hetcc.BatchOptions{Jobs: 4, Reports: true})
	if err := hetcc.BatchFirstError(event); err != nil {
		t.Fatalf("event batch failed: %v", err)
	}
	if err := hetcc.BatchFirstError(tick); err != nil {
		t.Fatalf("tick batch failed: %v", err)
	}
	for i := range event {
		a, b := event[i], tick[i]
		if a.Label != b.Label {
			t.Fatalf("run %d: labels %q / %q diverged", i, a.Label, b.Label)
		}
		rawA, err := json.Marshal(a.Report)
		if err != nil {
			t.Fatalf("%s: marshal event report: %v", a.Label, err)
		}
		rawB, err := json.Marshal(b.Report)
		if err != nil {
			t.Fatalf("%s: marshal tick report: %v", b.Label, err)
		}
		if !bytes.Equal(rawA, rawB) {
			t.Errorf("%s: event and tick reports differ:\n%s\n---\n%s", a.Label, rawA, rawB)
		}
		if a.Digest == "" || a.Digest != b.Digest {
			t.Errorf("%s: digest mismatch: event %q, tick %q", a.Label, a.Digest, b.Digest)
		}
		if a.Result.Cycles != b.Result.Cycles {
			t.Errorf("%s: cycle counts differ: event %d, tick %d", a.Label, a.Result.Cycles, b.Result.Cycles)
		}
	}
	dEvent, err := hetcc.BatchDigest(event)
	if err != nil {
		t.Fatalf("event batch digest: %v", err)
	}
	dTick, err := hetcc.BatchDigest(tick)
	if err != nil {
		t.Fatalf("tick batch digest: %v", err)
	}
	if dEvent != dTick {
		t.Fatalf("aggregate batch digests differ: event %s, tick %s", dEvent, dTick)
	}
}

// TestBatchDerivedSeedsDeterministic: BaseSeed-derived per-run seeds are a
// pure function of the batch position, so derived-seed batches reproduce
// across worker counts too — and distinct positions draw distinct streams.
func TestBatchDerivedSeedsDeterministic(t *testing.T) {
	var specs []hetcc.BatchSpec
	for i := 0; i < 6; i++ {
		specs = append(specs, hetcc.BatchSpec{
			Label: fmt.Sprintf("tcs-%d", i),
			Config: hetcc.Config{
				Scenario:  hetcc.TCS,
				Solution:  hetcc.Proposed,
				Params:    hetcc.Params{Lines: 2, ExecTime: 1, Iterations: 2},
				Verify:    true,
				MaxCycles: 5_000_000,
			},
		})
	}
	opts := func(jobs int) hetcc.BatchOptions {
		return hetcc.BatchOptions{Jobs: jobs, Reports: true, BaseSeed: 0xfeedface}
	}
	seq := hetcc.RunBatch(specs, opts(1))
	par := hetcc.RunBatch(specs, opts(8))
	if err := hetcc.BatchFirstError(seq); err != nil {
		t.Fatalf("jobs=1: %v", err)
	}
	distinct := make(map[string]bool)
	for i := range specs {
		if seq[i].Digest != par[i].Digest {
			t.Errorf("%s: derived-seed digests differ across job counts", specs[i].Label)
		}
		distinct[seq[i].Digest] = true
	}
	// TCS block selection is seed-driven: at least some of the six derived
	// seeds must pick different block sequences.
	if len(distinct) < 2 {
		t.Fatalf("all %d derived-seed runs digested identically; seed derivation is not taking effect", len(specs))
	}
}

// TestBatchErrorHandling: build errors land in BatchResult.Err at the right
// index, siblings are unaffected, and BatchDigest refuses failed batches.
func TestBatchErrorHandling(t *testing.T) {
	specs := []hetcc.BatchSpec{
		{Label: "ok", Config: hetcc.Config{Scenario: hetcc.WCS, Solution: hetcc.Proposed,
			Params: hetcc.Params{Lines: 1, ExecTime: 1, Iterations: 1}, MaxCycles: 5_000_000}},
		{Label: "bad", Config: hetcc.Config{Scenario: hetcc.WCS, Solution: hetcc.Proposed,
			Params: hetcc.Params{Lines: -3}, MaxCycles: 5_000_000}},
	}
	results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: 2, Reports: true})
	if results[0].Err != nil || results[0].Result.Err != nil {
		t.Fatalf("ok run failed: %v / %v", results[0].Err, results[0].Result.Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), `"bad"`) {
		t.Fatalf("bad run error = %v, want labelled build failure", results[1].Err)
	}
	if err := hetcc.BatchFirstError(results); err == nil {
		t.Fatal("BatchFirstError missed the failure")
	}
	if _, err := hetcc.BatchDigest(results); err == nil {
		t.Fatal("BatchDigest accepted a failed batch")
	}
}

// TestBatchGoldenDigests pins the jobs=1 report digests of the full
// 27-combination matrix (platform × scenario × solution, schema-v6 reports
// with audit, profile, critical-path and cohort sections) against a committed golden
// file — under both schedulers, which must reproduce the same digests.  This is
// the differential gate for behavior-preserving optimizations: a hot-loop
// change that alters even one simulated cycle, stat counter or profile span
// shifts a digest and fails here.  Regenerate with `go test -run
// TestBatchGoldenDigests -update .` only when an intentional model change
// shipped (the golden is written from the tick reference scheduler).
func TestBatchGoldenDigests(t *testing.T) {
	type golden struct {
		ReportSchemaVersion int               `json:"report_schema_version"`
		BatchDigest         string            `json:"batch_digest"`
		Runs                map[string]string `json:"runs"`
	}
	digestsFor := func(t *testing.T, scheduler string) golden {
		specs := determinismBatch(t, scheduler)
		results := hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: 1, Reports: true})
		if err := hetcc.BatchFirstError(results); err != nil {
			t.Fatalf("batch failed: %v", err)
		}
		batch, err := hetcc.BatchDigest(results)
		if err != nil {
			t.Fatalf("batch digest: %v", err)
		}
		cur := golden{
			ReportSchemaVersion: platform.ReportSchemaVersion,
			BatchDigest:         batch,
			Runs:                make(map[string]string, len(results)),
		}
		for _, r := range results {
			cur.Runs[r.Label] = r.Digest
		}
		return cur
	}
	path := filepath.Join("testdata", "batch_digests_v6.json")
	if *updateGoldens {
		cur := digestsFor(t, platform.SchedulerTick)
		raw, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want golden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if want.ReportSchemaVersion != platform.ReportSchemaVersion {
		t.Fatalf("golden file pins schema v%d, code is v%d (regenerate with -update after a deliberate schema bump)",
			want.ReportSchemaVersion, platform.ReportSchemaVersion)
	}
	for _, scheduler := range schedulerModes {
		scheduler := scheduler
		t.Run(scheduler, func(t *testing.T) {
			cur := digestsFor(t, scheduler)
			for label, got := range cur.Runs {
				if want := want.Runs[label]; got != want {
					t.Errorf("%s: report digest %s, golden %s (simulation behavior changed)", label, got, want)
				}
			}
			if cur.BatchDigest != want.BatchDigest {
				t.Errorf("batch digest %s, golden %s", cur.BatchDigest, want.BatchDigest)
			}
		})
	}
}
