package hetcc

import "testing"

// TestHeadlineReproductionBands pins the paper's headline results to
// tolerance bands so a regression in the timing model or the coherence
// machinery fails loudly.  Paper values: WCS ≥ +2.51 % vs software; BCS
// 38.22 % at 32 lines/exec 1; TCS ≈ 30 %; Figure 8 BCS/32 ≈ 76 % at a
// 96-cycle penalty.  (EXPERIMENTS.md records the exact measured values.)
func TestHeadlineReproductionBands(t *testing.T) {
	opts := FigureOptions{ExecTimes: []int{1}, LineCounts: []int{32}, Verify: true}

	within := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %+.2f%%, want within [%.1f, %.1f]", name, got, lo, hi)
		}
	}

	wcs, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	within("WCS speedup vs software @32 lines", wcs[0].SpeedupVsSoftwarePct, 2.0, 12.0)

	bcs, err := Figure6(opts)
	if err != nil {
		t.Fatal(err)
	}
	within("BCS speedup vs software @32 lines (paper 38.22%)", bcs[0].SpeedupVsSoftwarePct, 30.0, 45.0)

	tcs, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	within("TCS speedup vs software @32 lines (paper ~30%)", tcs[0].SpeedupVsSoftwarePct, 20.0, 36.0)

	// The ordering the paper's Figures 5-7 embody.
	if !(bcs[0].SpeedupVsSoftwarePct > tcs[0].SpeedupVsSoftwarePct &&
		tcs[0].SpeedupVsSoftwarePct > wcs[0].SpeedupVsSoftwarePct) {
		t.Errorf("scenario ordering violated: BCS %.1f, TCS %.1f, WCS %.1f",
			bcs[0].SpeedupVsSoftwarePct, tcs[0].SpeedupVsSoftwarePct, wcs[0].SpeedupVsSoftwarePct)
	}

	// Figure 8: BCS/32 at the 96-cycle penalty (paper ≈ 76 %).
	pts, err := Figure8([]int{13, 96}, FigureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Scenario == BCS && p.Lines == 32 && p.MissPenalty == 96 {
			within("Fig8 BCS/32 @96cy (paper ~76%)", p.SpeedupPct, 60.0, 82.0)
		}
		if p.Scenario == BCS && p.Lines == 32 && p.MissPenalty == 13 {
			within("Fig8 BCS/32 @13cy (paper 38.22%)", p.SpeedupPct, 30.0, 45.0)
		}
	}

	// WCS: the paper's minimum claim, "at least 2.51% for all WCS
	// simulations", at the default penalty across exec_times.
	all, err := Figure5(FigureOptions{ExecTimes: []int{1, 2, 4}, LineCounts: []int{1, 32}, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range all {
		if p.SpeedupVsSoftwarePct < 1.5 {
			t.Errorf("WCS exec=%d lines=%d: proposed only %+.2f%% over software", p.ExecTime, p.Lines, p.SpeedupVsSoftwarePct)
		}
	}
}
