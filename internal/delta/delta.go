// Package delta is the causal run-comparison engine: it takes two runs of
// the simulator and decomposes the total cycle delta into an exact tree —
// per stall cause (arb-wait / retry-backoff / drain / refill / inval-remiss /
// lock-spin), per critical-path (component, cause) pair, and per transaction
// cohort ("34 extra ARTRY retries on line 0x1f80 from master 1") — with a
// conservation invariant: the attributed deltas sum to the total cycle delta
// by construction, so the explanation can never silently drop cycles.
//
// Two attribution sources are supported, picked automatically:
//
//   - "critical-path": both runs carry a span.CriticalPath attribution
//     (report schema v4+, -observe bundles).  Each run's attribution
//     partitions its own cycle count exactly, so the per-(component, cause)
//     differences sum to the total delta with no residual.
//   - "stall-ledger": both runs carry only the per-core stall-cause ledger
//     (bench files, schema v3 reports).  Per-core stalls overlap in wall
//     clock, so the cause differences are topped up with an explicit
//     "execute/overlap" residual entry that restores conservation; a large
//     residual honestly says "the ledger alone cannot localise this".
//
// When both runs also carry the schema-v5 cohort partition, the same
// subtraction yields an exact per-(master, op, line) decomposition with its
// own execute/unlinked terms.
package delta

import (
	"fmt"
	"io"
	"sort"

	"hetcc/internal/platform"
	"hetcc/internal/profile"
	"hetcc/internal/span"
)

// Attribution sources, recorded in Explanation.Source.
const (
	SourceCriticalPath = "critical-path"
	SourceStallLedger  = "stall-ledger"
	SourceTotalsOnly   = "totals-only"
)

// residualCause labels the conservation top-up entry in stall-ledger mode:
// the part of the cycle delta the overlapping per-core ledgers cannot
// localise (execute time, stall overlap, clock-domain skew).
const residualCause = "execute/overlap"

// executeCause mirrors span's label for non-stalled anchor time.
const executeCause = "execute"

// Run is one side of a comparison: a named cycle total plus whatever
// attribution evidence the producer recorded.  Zero evidence is valid — the
// comparison then degrades to totals-only.
type Run struct {
	Name   string
	Cycles uint64
	// Attribution is the critical-path partition of Cycles (nil when the run
	// had spans disabled).  Trusted only if it sums to Cycles exactly.
	Attribution []span.Attribution
	// Stalls is the per-core stall-cause ledger (nil when profiling was off).
	Stalls []profile.CoreSummary
	// CoreNames labels Stalls entries by core index; missing entries fall
	// back to "core N".
	CoreNames []string
	// Cohorts is the per-(master, op, line) partition (nil before schema v5).
	Cohorts *span.CohortSummary
	// Manifest is the run's provenance block, if recorded.
	Manifest *platform.Manifest
}

// FromReport extracts the comparison evidence from a run report of any
// schema version; name labels the run in rendered output (the report's
// scenario is used when name is empty).
func FromReport(name string, rep platform.Report) Run {
	if name == "" {
		name = rep.Scenario
	}
	r := Run{
		Name:     name,
		Cycles:   rep.Cycles,
		Cohorts:  rep.Cohorts,
		Manifest: rep.Manifest,
	}
	if rep.CriticalPath != nil {
		r.Attribution = rep.CriticalPath.Attribution
	}
	if rep.Profile != nil {
		r.Stalls = rep.Profile.Cores
	}
	for _, c := range rep.Cores {
		r.CoreNames = append(r.CoreNames, c.Name)
	}
	return r
}

// FromLedger builds a Run from a cycle total and a stall-cause ledger — the
// evidence a bench file carries per run.
func FromLedger(name string, cycles uint64, stalls []profile.CoreSummary) Run {
	return Run{Name: name, Cycles: cycles, Stalls: stalls}
}

// CauseDelta is one leaf of the cause layer: how many cycles a
// (component, cause) pair gained or lost between the two runs.
type CauseDelta struct {
	Component string `json:"component"`
	Cause     string `json:"cause"`
	Old       uint64 `json:"old_cycles"`
	New       uint64 `json:"new_cycles"`
	Delta     int64  `json:"delta_cycles"`
}

// CohortDelta is one leaf of the cohort layer: how one (master, op, line)
// cohort's critical cycles and retry counts moved between the two runs.
type CohortDelta struct {
	Component string `json:"component"`
	Op        string `json:"op"`
	Line      string `json:"line"`
	Old       uint64 `json:"old_cycles"`
	New       uint64 `json:"new_cycles"`
	Delta     int64  `json:"delta_cycles"`
	// CountDelta / RetryDelta / DrainRetryDelta are the changes in submitted
	// transactions, ARTRY epochs and drain-qualified ARTRY epochs.
	CountDelta      int `json:"count_delta,omitempty"`
	RetryDelta      int `json:"retry_delta,omitempty"`
	DrainRetryDelta int `json:"drain_retry_delta,omitempty"`
}

// Explanation is the full decomposition of new − old.
type Explanation struct {
	OldName string `json:"old_name,omitempty"`
	NewName string `json:"new_name,omitempty"`

	OldCycles uint64 `json:"old_cycles"`
	NewCycles uint64 `json:"new_cycles"`
	// Delta is NewCycles − OldCycles; every layer below sums to it exactly.
	Delta int64 `json:"delta_cycles"`

	// Source names the cause-layer evidence: SourceCriticalPath,
	// SourceStallLedger or SourceTotalsOnly.
	Source string `json:"source"`

	// ManifestDiff lists provenance differences ("go version: X -> Y") so the
	// reader knows *what* changed before reading *why*; empty when the
	// manifests agree or neither run recorded one.
	ManifestDiff []string `json:"manifest_diff,omitempty"`

	// Causes is the cause layer, sorted by |delta| descending.  Its deltas
	// sum to Delta exactly (in stall-ledger mode via the residual entry).
	Causes []CauseDelta `json:"causes,omitempty"`

	// Cohorts is the cohort layer (present only when both runs carried a
	// conserved cohort partition), sorted by |delta| descending.
	// ExecuteDelta + UnlinkedDelta + Σ Cohorts.Delta == Delta exactly.
	Cohorts       []CohortDelta `json:"cohorts,omitempty"`
	ExecuteDelta  int64         `json:"execute_delta,omitempty"`
	UnlinkedDelta int64         `json:"unlinked_delta,omitempty"`
	// HasCohorts distinguishes "no cohort evidence" from "cohort layer with
	// zero entries".
	HasCohorts bool `json:"has_cohorts,omitempty"`

	// CrossCheckError records any conservation or ledger self-consistency
	// failure detected while building the explanation (empty = all exact).
	CrossCheckError string `json:"cross_check_error,omitempty"`
}

// causeKey aligns cause entries across runs.
type causeKey struct{ component, cause string }

// attributionSums reports whether attr partitions cycles exactly — the
// precondition for residual-free critical-path subtraction.
func attributionSums(attr []span.Attribution, cycles uint64) bool {
	if attr == nil {
		return false
	}
	var sum uint64
	for _, a := range attr {
		sum += a.Cycles
	}
	return sum == cycles
}

// ledgerCauses flattens a per-core stall ledger into (component, cause)
// cycle counts, validating each core's conservation invariant.
func ledgerCauses(r Run, out map[causeKey][2]uint64, side int, errs *[]string) {
	for i, cs := range r.Stalls {
		comp := fmt.Sprintf("core %d", cs.Core)
		if cs.Core < len(r.CoreNames) && r.CoreNames[cs.Core] != "" {
			comp = r.CoreNames[cs.Core]
		}
		var sum uint64
		for cause, n := range cs.Causes {
			sum += n
			k := causeKey{comp, cause}
			v := out[k]
			v[side] += n
			out[k] = v
		}
		if sum != cs.StallCycles {
			*errs = append(*errs, fmt.Sprintf("%s: core %d ledger causes sum to %d, stall_cycles %d", r.Name, i, sum, cs.StallCycles))
		}
	}
}

// Compare decomposes newRun − oldRun into an Explanation.  It never fails:
// with no usable evidence the result is a totals-only delta, and internal
// inconsistencies are surfaced in CrossCheckError rather than swallowed.
func Compare(oldRun, newRun Run) *Explanation {
	e := &Explanation{
		OldName:   oldRun.Name,
		NewName:   newRun.Name,
		OldCycles: oldRun.Cycles,
		NewCycles: newRun.Cycles,
		Delta:     int64(newRun.Cycles) - int64(oldRun.Cycles),
		Source:    SourceTotalsOnly,
	}
	e.ManifestDiff = oldRun.Manifest.Diff(newRun.Manifest)
	var errs []string

	// Cause layer: prefer the exact critical-path partitions, fall back to
	// the stall ledgers plus a residual, else totals only.
	byKey := make(map[causeKey][2]uint64)
	switch {
	case attributionSums(oldRun.Attribution, oldRun.Cycles) && attributionSums(newRun.Attribution, newRun.Cycles):
		e.Source = SourceCriticalPath
		for _, a := range oldRun.Attribution {
			k := causeKey{a.Component, a.Cause}
			v := byKey[k]
			v[0] += a.Cycles
			byKey[k] = v
		}
		for _, a := range newRun.Attribution {
			k := causeKey{a.Component, a.Cause}
			v := byKey[k]
			v[1] += a.Cycles
			byKey[k] = v
		}
	case oldRun.Stalls != nil && newRun.Stalls != nil:
		e.Source = SourceStallLedger
		ledgerCauses(oldRun, byKey, 0, &errs)
		ledgerCauses(newRun, byKey, 1, &errs)
	default:
		if oldRun.Attribution != nil || newRun.Attribution != nil {
			errs = append(errs, "critical-path attribution present but not conserved on both runs")
		}
	}
	var attributed int64
	for k, v := range byKey {
		d := int64(v[1]) - int64(v[0])
		attributed += d
		if d == 0 && v[0] == 0 {
			continue // cause absent on both sides
		}
		e.Causes = append(e.Causes, CauseDelta{Component: k.component, Cause: k.cause, Old: v[0], New: v[1], Delta: d})
	}
	if e.Source == SourceStallLedger {
		// Restore conservation explicitly: whatever the overlapping ledgers
		// cannot localise is the execute/overlap residual.
		e.Causes = append(e.Causes, CauseDelta{Component: "(all cores)", Cause: residualCause, Delta: e.Delta - attributed})
	} else if e.Source == SourceCriticalPath && attributed != e.Delta {
		errs = append(errs, fmt.Sprintf("critical-path cause deltas sum to %d, total delta %d", attributed, e.Delta))
	}
	sortCauses(e.Causes)

	// Cohort layer: exact subtraction of the two anchor-timeline partitions.
	oc, nc := oldRun.Cohorts, newRun.Cohorts
	if oc != nil && nc != nil {
		switch {
		case !oc.Conserved():
			errs = append(errs, fmt.Sprintf("%s: cohort partition not conserved", oldRun.Name))
		case !nc.Conserved():
			errs = append(errs, fmt.Sprintf("%s: cohort partition not conserved", newRun.Name))
		default:
			e.HasCohorts = true
			e.ExecuteDelta = int64(nc.ExecuteCycles) - int64(oc.ExecuteCycles)
			e.UnlinkedDelta = int64(nc.UnlinkedCycles) - int64(oc.UnlinkedCycles)
			type ck struct{ component, op, line string }
			merged := make(map[ck][2]span.Cohort)
			for _, c := range oc.Cohorts {
				k := ck{c.Component, c.Op, c.Line}
				v := merged[k]
				v[0] = c
				merged[k] = v
			}
			for _, c := range nc.Cohorts {
				k := ck{c.Component, c.Op, c.Line}
				v := merged[k]
				v[1] = c
				merged[k] = v
			}
			for k, v := range merged {
				d := CohortDelta{
					Component:       k.component,
					Op:              k.op,
					Line:            k.line,
					Old:             v[0].CriticalCycles,
					New:             v[1].CriticalCycles,
					Delta:           int64(v[1].CriticalCycles) - int64(v[0].CriticalCycles),
					CountDelta:      v[1].Count - v[0].Count,
					RetryDelta:      v[1].Retries - v[0].Retries,
					DrainRetryDelta: v[1].DrainRetries - v[0].DrainRetries,
				}
				e.Cohorts = append(e.Cohorts, d)
			}
			sortCohorts(e.Cohorts)
			var sum int64 = e.ExecuteDelta + e.UnlinkedDelta
			for _, d := range e.Cohorts {
				sum += d.Delta
			}
			if sum != e.Delta {
				errs = append(errs, fmt.Sprintf("cohort deltas sum to %d, total delta %d", sum, e.Delta))
			}
		}
	}

	if len(errs) > 0 {
		e.CrossCheckError = errs[0]
		for _, s := range errs[1:] {
			e.CrossCheckError += "; " + s
		}
	}
	return e
}

func sortCauses(cs []CauseDelta) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if x, y := abs64(a.Delta), abs64(b.Delta); x != y {
			return x > y
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Cause < b.Cause
	})
}

func sortCohorts(cs []CohortDelta) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if x, y := abs64(a.Delta), abs64(b.Delta); x != y {
			return x > y
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Line < b.Line
	})
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Conserved reports the headline invariant: the cause layer sums to Delta
// (unless totals-only), and so does the cohort layer when present.
func (e *Explanation) Conserved() bool {
	if e == nil {
		return false
	}
	if e.Source != SourceTotalsOnly {
		var sum int64
		for _, c := range e.Causes {
			sum += c.Delta
		}
		if sum != e.Delta {
			return false
		}
	}
	if e.HasCohorts {
		sum := e.ExecuteDelta + e.UnlinkedDelta
		for _, c := range e.Cohorts {
			sum += c.Delta
		}
		if sum != e.Delta {
			return false
		}
	}
	return true
}

// Dominant returns the stall cause entry with the largest cycle growth,
// skipping the execute and residual buckets (they describe non-stall time).
// Nil when no stall cause grew.
func (e *Explanation) Dominant() *CauseDelta {
	var best *CauseDelta
	for i := range e.Causes {
		c := &e.Causes[i]
		if c.Cause == executeCause || c.Cause == residualCause {
			continue
		}
		if c.Delta > 0 && (best == nil || c.Delta > best.Delta) {
			best = c
		}
	}
	return best
}

// WriteText renders the explanation as a human-readable report: the headline
// delta, the manifest diff, and the top-K entries of each layer.  topK <= 0
// means "all".
func (e *Explanation) WriteText(w io.Writer, topK int) {
	oldName, newName := e.OldName, e.NewName
	if oldName == "" {
		oldName = "old"
	}
	if newName == "" {
		newName = "new"
	}
	var pct string
	if e.OldCycles > 0 {
		pct = fmt.Sprintf(", %+.2f%%", 100*float64(e.Delta)/float64(e.OldCycles))
	}
	fmt.Fprintf(w, "%s -> %s: %d -> %d cycles (%+d%s)\n", oldName, newName, e.OldCycles, e.NewCycles, e.Delta, pct)
	for _, d := range e.ManifestDiff {
		fmt.Fprintf(w, "  manifest %s\n", d)
	}
	if e.CrossCheckError != "" {
		fmt.Fprintf(w, "  CROSS-CHECK FAILED: %s\n", e.CrossCheckError)
	}
	if len(e.Causes) > 0 {
		fmt.Fprintf(w, "  by cause (%s):\n", e.Source)
		fmt.Fprintf(w, "    %-28s %-14s %12s %12s %12s\n", "component", "cause", "old", "new", "delta")
		for i, c := range e.Causes {
			if topK > 0 && i >= topK {
				fmt.Fprintf(w, "    ... %d more\n", len(e.Causes)-i)
				break
			}
			fmt.Fprintf(w, "    %-28s %-14s %12d %12d %+12d\n", c.Component, c.Cause, c.Old, c.New, c.Delta)
		}
	}
	if e.HasCohorts {
		fmt.Fprintf(w, "  by cohort (execute %+d, unlinked %+d):\n", e.ExecuteDelta, e.UnlinkedDelta)
		fmt.Fprintf(w, "    %-20s %-10s %-12s %12s %8s %8s\n", "component", "op", "line", "delta", "Δretry", "Δdrain")
		for i, c := range e.Cohorts {
			if topK > 0 && i >= topK {
				fmt.Fprintf(w, "    ... %d more\n", len(e.Cohorts)-i)
				break
			}
			fmt.Fprintf(w, "    %-20s %-10s %-12s %+12d %+8d %+8d\n", c.Component, c.Op, c.Line, c.Delta, c.RetryDelta, c.DrainRetryDelta)
		}
	}
}
