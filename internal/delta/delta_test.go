package delta

import (
	"strings"
	"testing"

	"hetcc/internal/platform"
	"hetcc/internal/profile"
	"hetcc/internal/span"
)

// TestCompareTotalsOnly: with no attribution evidence the comparison degrades
// to a bare, still-conserved total delta.
func TestCompareTotalsOnly(t *testing.T) {
	e := Compare(Run{Name: "a", Cycles: 100}, Run{Name: "b", Cycles: 130})
	if e.Source != SourceTotalsOnly || e.Delta != 30 {
		t.Fatalf("source %q delta %d, want totals-only/+30", e.Source, e.Delta)
	}
	if !e.Conserved() {
		t.Fatal("totals-only explanation not conserved")
	}
	if len(e.Causes) != 0 || e.HasCohorts || e.CrossCheckError != "" {
		t.Fatalf("unexpected layers: %+v", e)
	}
	if e.Dominant() != nil {
		t.Fatal("dominant cause from no evidence")
	}
}

// TestCompareCriticalPath: two exact attributions subtract into an exact
// per-(component, cause) delta with no residual entry.
func TestCompareCriticalPath(t *testing.T) {
	oldRun := Run{
		Name: "old", Cycles: 100,
		Attribution: []span.Attribution{
			{Component: "ppc", Cause: "execute", Cycles: 60},
			{Component: "arm", Cause: "refill", Cycles: 30},
			{Component: "bus", Cause: "arb-wait", Cycles: 10},
		},
	}
	newRun := Run{
		Name: "new", Cycles: 150,
		Attribution: []span.Attribution{
			{Component: "ppc", Cause: "execute", Cycles: 60},
			{Component: "arm", Cause: "refill", Cycles: 80},
			{Component: "bus", Cause: "retry-backoff", Cycles: 10},
		},
	}
	e := Compare(oldRun, newRun)
	if e.Source != SourceCriticalPath {
		t.Fatalf("source %q", e.Source)
	}
	if !e.Conserved() || e.CrossCheckError != "" {
		t.Fatalf("not conserved: %+v", e)
	}
	// Sorted by |delta|: refill +50 first.
	if e.Causes[0].Cause != "refill" || e.Causes[0].Delta != 50 {
		t.Fatalf("top cause %+v", e.Causes[0])
	}
	d := e.Dominant()
	if d == nil || d.Cause != "refill" {
		t.Fatalf("dominant %+v, want refill", d)
	}
	// arb-wait vanished (-10), retry-backoff appeared (+10); both reported.
	byCause := map[string]int64{}
	for _, c := range e.Causes {
		byCause[c.Cause] += c.Delta
	}
	if byCause["arb-wait"] != -10 || byCause["retry-backoff"] != 10 || byCause["execute"] != 0 {
		t.Fatalf("cause deltas wrong: %v", byCause)
	}
}

// TestCompareCriticalPathRejectsNonConserved: an attribution that does not
// partition its run's cycles must not be trusted — the comparison falls back
// and flags the inconsistency.
func TestCompareCriticalPathRejectsNonConserved(t *testing.T) {
	bad := Run{Name: "bad", Cycles: 100,
		Attribution: []span.Attribution{{Component: "x", Cause: "refill", Cycles: 7}}}
	e := Compare(bad, bad)
	if e.Source == SourceCriticalPath {
		t.Fatal("non-conserved attribution accepted as critical-path source")
	}
	if e.CrossCheckError == "" {
		t.Fatal("inconsistency not surfaced")
	}
}

// TestCompareStallLedger: ledger mode conserves via an explicit
// execute/overlap residual, and per-cause entries match the ledgers.
func TestCompareStallLedger(t *testing.T) {
	oldRun := FromLedger("old", 1000, []profile.CoreSummary{
		{Core: 0, StallCycles: 300, Causes: map[string]uint64{"refill": 200, "arb-wait": 100}},
		{Core: 1, StallCycles: 50, Causes: map[string]uint64{"lock-spin": 50}},
	})
	newRun := FromLedger("new", 1400, []profile.CoreSummary{
		{Core: 0, StallCycles: 600, Causes: map[string]uint64{"refill": 500, "arb-wait": 100}},
		{Core: 1, StallCycles: 70, Causes: map[string]uint64{"lock-spin": 70}},
	})
	e := Compare(oldRun, newRun)
	if e.Source != SourceStallLedger {
		t.Fatalf("source %q", e.Source)
	}
	if !e.Conserved() || e.CrossCheckError != "" {
		t.Fatalf("ledger explanation not conserved: %+v", e)
	}
	// refill +300, lock-spin +20, arb-wait 0 → residual +80 restores the
	// +400 total.
	if d := e.Dominant(); d == nil || d.Cause != "refill" || d.Delta != 300 || d.Component != "core 0" {
		t.Fatalf("dominant %+v", d)
	}
	var residual *CauseDelta
	for i := range e.Causes {
		if e.Causes[i].Cause == residualCause {
			residual = &e.Causes[i]
		}
	}
	if residual == nil || residual.Delta != 80 {
		t.Fatalf("residual %+v, want +80", residual)
	}
}

// TestCompareLedgerSelfCheck: a ledger whose causes do not sum to its own
// stall_cycles is flagged, not silently used.
func TestCompareLedgerSelfCheck(t *testing.T) {
	bad := FromLedger("bad", 100, []profile.CoreSummary{
		{Core: 0, StallCycles: 99, Causes: map[string]uint64{"refill": 10}},
	})
	e := Compare(bad, bad)
	if e.CrossCheckError == "" || !strings.Contains(e.CrossCheckError, "ledger causes sum") {
		t.Fatalf("ledger self-check missing: %q", e.CrossCheckError)
	}
}

// cohortSummary builds a conserved summary for the cohort-layer tests.
func cohortSummary(execute, unlinked uint64, cohorts ...span.Cohort) *span.CohortSummary {
	s := &span.CohortSummary{ExecuteCycles: execute, UnlinkedCycles: unlinked, Cohorts: cohorts}
	s.TotalCycles = execute + unlinked
	for _, c := range cohorts {
		s.TotalCycles += c.CriticalCycles
	}
	return s
}

// TestCompareCohorts: cohort partitions subtract exactly, aligned by
// (component, op, line), with retry-count deltas on the leaves.
func TestCompareCohorts(t *testing.T) {
	oldRun := Run{Name: "old", Cohorts: cohortSummary(40, 10,
		span.Cohort{Component: "ppc", Op: "RdLine", Line: "0x1f80", CriticalCycles: 50, Count: 2, Retries: 1},
	)}
	oldRun.Cycles = oldRun.Cohorts.TotalCycles
	newRun := Run{Name: "new", Cohorts: cohortSummary(40, 14,
		span.Cohort{Component: "ppc", Op: "RdLine", Line: "0x1f80", CriticalCycles: 120, Count: 2, Retries: 35},
		span.Cohort{Component: "arm", Op: "WrLine", Line: "0x1f80", CriticalCycles: 6, Count: 1},
	)}
	newRun.Cycles = newRun.Cohorts.TotalCycles
	e := Compare(oldRun, newRun)
	if !e.HasCohorts || !e.Conserved() || e.CrossCheckError != "" {
		t.Fatalf("cohort layer broken: %+v", e)
	}
	if e.UnlinkedDelta != 4 || e.ExecuteDelta != 0 {
		t.Fatalf("execute/unlinked deltas %d/%d", e.ExecuteDelta, e.UnlinkedDelta)
	}
	top := e.Cohorts[0]
	if top.Line != "0x1f80" || top.Op != "RdLine" || top.Delta != 70 || top.RetryDelta != 34 {
		t.Fatalf("top cohort %+v, want +70 cycles / +34 retries on RdLine 0x1f80", top)
	}
	// The cohort that only exists in the new run still shows up.
	if e.Cohorts[1].Component != "arm" || e.Cohorts[1].Delta != 6 {
		t.Fatalf("new-only cohort %+v", e.Cohorts[1])
	}
}

// TestCompareCohortsNonConserved: a broken partition is dropped and flagged
// rather than producing a non-conserved explanation.
func TestCompareCohortsNonConserved(t *testing.T) {
	good := Run{Name: "good", Cycles: 50, Cohorts: cohortSummary(50, 0)}
	bad := Run{Name: "bad", Cycles: 50, Cohorts: &span.CohortSummary{TotalCycles: 50, ExecuteCycles: 7}}
	e := Compare(good, bad)
	if e.HasCohorts {
		t.Fatal("non-conserved cohort partition accepted")
	}
	if !strings.Contains(e.CrossCheckError, "bad: cohort partition not conserved") {
		t.Fatalf("cross-check error %q", e.CrossCheckError)
	}
	if !e.Conserved() {
		t.Fatal("explanation must stay conserved after dropping the cohort layer")
	}
}

// TestCompareManifestDiff: provenance differences ride on the explanation.
func TestCompareManifestDiff(t *testing.T) {
	oldRun := Run{Name: "a", Cycles: 10, Manifest: &platform.Manifest{SchemaVersion: 5, GoVersion: "go1.21"}}
	newRun := Run{Name: "b", Cycles: 10, Manifest: &platform.Manifest{SchemaVersion: 5, GoVersion: "go1.23"}}
	e := Compare(oldRun, newRun)
	if len(e.ManifestDiff) != 1 || !strings.Contains(e.ManifestDiff[0], "go1.21 -> go1.23") {
		t.Fatalf("manifest diff %v", e.ManifestDiff)
	}
	if e.Delta != 0 || !e.Conserved() {
		t.Fatalf("zero-delta comparison broken: %+v", e)
	}
}

// TestFromReport: evidence is lifted out of a report with core names labeling
// the ledger entries.
func TestFromReport(t *testing.T) {
	rep := platform.Report{
		Scenario: "wcs",
		Cycles:   123,
		Cores:    []platform.CoreReport{{Name: "PPC603e"}, {Name: "ARM920T"}},
		Profile: &profile.Summary{Cores: []profile.CoreSummary{
			{Core: 0, StallCycles: 5, Causes: map[string]uint64{"refill": 5}},
			{Core: 1, StallCycles: 3, Causes: map[string]uint64{"drain": 3}},
		}},
	}
	r := FromReport("", rep)
	if r.Name != "wcs" || r.Cycles != 123 || len(r.Stalls) != 2 {
		t.Fatalf("run %+v", r)
	}
	e := Compare(r, r)
	if e.Source != SourceStallLedger || !e.Conserved() {
		t.Fatalf("self-comparison %+v", e)
	}
	for _, c := range e.Causes {
		if c.Cause == "refill" && c.Component != "PPC603e" {
			t.Fatalf("ledger entry not labeled with the core name: %+v", c)
		}
	}
}

// TestWriteText: the rendering carries the headline, manifest diff, both
// layer tables and the top-K truncation marker.
func TestWriteText(t *testing.T) {
	oldRun := Run{Name: "seed", Cycles: 100,
		Attribution: []span.Attribution{
			{Component: "ppc", Cause: "execute", Cycles: 40},
			{Component: "ppc", Cause: "refill", Cycles: 30},
			{Component: "bus", Cause: "arb-wait", Cycles: 20},
			{Component: "ppc", Cause: "drain", Cycles: 10},
		},
		Manifest: &platform.Manifest{SchemaVersion: 5, Seed: 1},
		Cohorts:  cohortSummary(40, 60),
	}
	newRun := oldRun
	newRun.Name = "head"
	newRun.Cycles = 130
	newRun.Attribution = []span.Attribution{
		{Component: "ppc", Cause: "execute", Cycles: 40},
		{Component: "ppc", Cause: "refill", Cycles: 55},
		{Component: "bus", Cause: "arb-wait", Cycles: 22},
		{Component: "ppc", Cause: "drain", Cycles: 13},
	}
	newRun.Manifest = &platform.Manifest{SchemaVersion: 5, Seed: 2}
	newRun.Cohorts = cohortSummary(40, 90)
	e := Compare(oldRun, newRun)
	var b strings.Builder
	e.WriteText(&b, 2)
	out := b.String()
	for _, want := range []string{
		"seed -> head: 100 -> 130 cycles (+30, +30.00%)",
		"manifest seed: 1 -> 2",
		"by cause (critical-path)",
		"refill",
		"... 2 more",
		"by cohort (execute +0, unlinked +30)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered text missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "arb-wait") {
		t.Errorf("top-2 rendering leaked a truncated cause:\n%s", out)
	}
}
