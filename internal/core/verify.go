package core

import (
	"fmt"
	"sort"
	"strings"

	"hetcc/internal/coherence"
)

// SnoopOp applies the wrapper's read-to-write conversion to the bus
// operation op as observed by this processor's snoop port.
func (p WrapperPolicy) SnoopOp(op coherence.BusOp) coherence.BusOp {
	if p.ConvertReadToWrite && op == coherence.BusRd {
		return coherence.BusRdX
	}
	return op
}

// ApplyShared applies the wrapper's shared-signal override to the value
// sampled by this processor's master port.
func (p WrapperPolicy) ApplyShared(shared bool) bool {
	switch p.Shared {
	case SharedForceAssert:
		return true
	case SharedForceDeassert:
		return false
	default:
		return shared
	}
}

// Violation is a coherence defect found by Verify: either a processor
// entered a state outside the reduced protocol, or a read observed stale
// data (the paper's Tables 2 and 3 failure mode).
type Violation struct {
	// Kind is "stale-read", "stale-fill" or "illegal-state".
	Kind string
	// Processor is the index of the offending processor.
	Processor int
	// State is the processor's line state at the violation.
	State coherence.State
	// Trace is the event sequence from the initial state.
	Trace []string
}

// String renders the violation with its witness trace.
func (v Violation) String() string {
	return fmt.Sprintf("%s at P%d (state %v) after [%s]", v.Kind, v.Processor, v.State, strings.Join(v.Trace, "; "))
}

// VerifyResult is the output of the exhaustive single-line model check.
type VerifyResult struct {
	// Reachable[i] is the set of states processor i's copy of the line was
	// observed in, sorted.
	Reachable [][]coherence.State
	// Violations lists every distinct defect found (empty means the
	// configuration is coherent and respects the reduction).
	Violations []Violation
	// Explored is the number of distinct abstract states visited.
	Explored int
}

// Eliminated reports whether state s was proven unreachable for processor i.
func (r VerifyResult) Eliminated(i int, s coherence.State) bool {
	for _, st := range r.Reachable[i] {
		if st == s {
			return false
		}
	}
	return true
}

// snoopAllFunc is the snoop-broadcast closure used by the explorer.
type snoopAllFunc func(s *vstate, requester int, op coherence.BusOp) (shared bool, fillFresh bool, updated []int)

// dragonWriteHit applies a Dragon write hit on processor i: silent for
// exclusive states, a bus update (with ownership resolution from the
// shared signal) for shared ones.  It returns the processors whose copies
// were updated in place.
func dragonWriteHit(p *coherence.Protocol, pol WrapperPolicy, s *vstate, i int, snoopAll snoopAllFunc) []int {
	next, op, needsBus, err := p.OnWriteHit(s.states[i])
	if err != nil {
		panic(err)
	}
	if !needsBus {
		s.states[i] = next
		return nil
	}
	if op != coherence.BusUpd {
		panic(fmt.Sprintf("core: update-based write hit issued %v", op))
	}
	shared, _, updated := snoopAll(s, i, coherence.BusUpd)
	s.states[i] = p.AfterUpdate(pol.ApplyShared(shared))
	return updated
}

// vstate is the abstract joint state of one cache line across n processors:
// the per-processor coherence state plus freshness bits tracking whether
// each copy (and memory) holds the globally newest value.
type vstate struct {
	states   [maxProcs]coherence.State
	fresh    [maxProcs]bool
	memFresh bool
	n        int
}

const maxProcs = 4

func (v vstate) key() string {
	b := make([]byte, 0, 2*v.n+1)
	for i := 0; i < v.n; i++ {
		b = append(b, byte(v.states[i]), boolByte(v.fresh[i]))
	}
	return string(append(b, boolByte(v.memFresh)))
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Verify exhaustively explores every interleaving of read/write/evict
// events on a single cache line across the given coherent processors with
// the given wrapper policies, checking that
//
//  1. no processor enters a state outside AllowedStates(native, effective),
//  2. every read (hit or fill) returns the globally newest value.
//
// Running it with passthrough policies on a heterogeneous mix reproduces
// the staleness defects of the paper's Tables 2 and 3; running it with the
// policies from Reduce proves the wrapper scheme sound for that mix.
func Verify(protocols []coherence.Kind, policies []WrapperPolicy, effective coherence.Kind) (VerifyResult, error) {
	n := len(protocols)
	if n == 0 || n > maxProcs {
		return VerifyResult{}, fmt.Errorf("core: verify supports 1..%d processors, got %d", maxProcs, n)
	}
	if len(policies) != n {
		return VerifyResult{}, fmt.Errorf("core: %d policies for %d processors", len(policies), n)
	}
	protos := make([]*coherence.Protocol, n)
	allowed := make([]map[coherence.State]bool, n)
	for i, k := range protocols {
		if k == coherence.None {
			return VerifyResult{}, fmt.Errorf("core: verify models coherent processors only (P%d is None)", i)
		}
		protos[i] = coherence.New(k)
		allowed[i] = make(map[coherence.State]bool)
		for _, s := range AllowedStates(k, effective) {
			allowed[i][s] = true
		}
	}

	reachable := make([]map[coherence.State]bool, n)
	for i := range reachable {
		reachable[i] = map[coherence.State]bool{coherence.Invalid: true}
	}
	var violations []Violation
	seenViol := map[string]bool{}
	report := func(kind string, proc int, st coherence.State, trace []string) {
		k := fmt.Sprintf("%s/%d/%v", kind, proc, st)
		if seenViol[k] {
			return
		}
		seenViol[k] = true
		tr := make([]string, len(trace))
		copy(tr, trace)
		violations = append(violations, Violation{Kind: kind, Processor: proc, State: st, Trace: tr})
	}

	init := vstate{n: n, memFresh: true}
	type node struct {
		st    vstate
		trace []string
	}
	queue := []node{{st: init}}
	visited := map[string]bool{init.key(): true}

	// snoopAll presents op from requester to every other processor,
	// returning the combined shared signal, the freshness of the data the
	// requester will receive (memory or a supplier), and which processors
	// applied a Dragon word update in place.
	snoopAll := func(s *vstate, requester int, op coherence.BusOp) (shared bool, fillFresh bool, updated []int) {
		fillFresh = s.memFresh
		for j := 0; j < s.n; j++ {
			if j == requester || s.states[j] == coherence.Invalid {
				continue
			}
			seen := policies[j].SnoopOp(op)
			out, err := protos[j].OnSnoop(s.states[j], seen)
			if err != nil {
				panic(err)
			}
			if out.Supply && !policies[j].AllowCacheToCache {
				// Suppressed cache-to-cache: drain to memory instead.
				out.Supply = false
				out.Flush = true
				if out.Next == coherence.Owned {
					out.Next = coherence.Shared
				}
			}
			if out.Flush {
				s.memFresh = s.fresh[j]
				fillFresh = s.memFresh
			}
			if out.Supply {
				fillFresh = s.fresh[j]
			}
			if out.Update {
				updated = append(updated, j)
			}
			shared = shared || out.AssertShared
			s.states[j] = out.Next
		}
		return shared, fillFresh, updated
	}

	expand := func(cur vstate, trace []string) []node {
		var out []node
		add := func(ev string, next vstate) {
			for i := 0; i < next.n; i++ {
				reachable[i][next.states[i]] = true
				if !allowed[i][next.states[i]] {
					report("illegal-state", i, next.states[i], append(trace, ev))
				}
			}
			k := next.key()
			if !visited[k] {
				visited[k] = true
				out = append(out, node{st: next, trace: append(append([]string{}, trace...), ev)})
			}
		}

		for i := 0; i < cur.n; i++ {
			// --- Read by Pi ---
			{
				s := cur
				ev := fmt.Sprintf("P%d.rd", i)
				if s.states[i] != coherence.Invalid {
					if !s.fresh[i] {
						report("stale-read", i, s.states[i], append(trace, ev))
					}
				} else {
					shared, fillFresh, _ := snoopAll(&s, i, coherence.BusRd)
					st := protos[i].FillStateAfterRead(policies[i].ApplyShared(shared))
					s.states[i] = st
					s.fresh[i] = fillFresh
					if !fillFresh {
						report("stale-fill", i, st, append(trace, ev))
					}
				}
				add(ev, s)
			}
			// --- Write by Pi ---
			{
				s := cur
				ev := fmt.Sprintf("P%d.wr", i)
				var updated []int
				if s.states[i] == coherence.Invalid {
					if protos[i].UpdateBased() {
						// Dragon write miss: fill with a read, then write
						// like a hit.
						shared, fillFresh, _ := snoopAll(&s, i, coherence.BusRd)
						st := protos[i].FillStateAfterRead(policies[i].ApplyShared(shared))
						if !fillFresh {
							report("stale-fill", i, st, append(trace, ev))
						}
						s.states[i] = st
						s.fresh[i] = fillFresh
						updated = append(updated, dragonWriteHit(protos[i], policies[i], &s, i, snoopAll)...)
					} else {
						_, _, _ = snoopAll(&s, i, coherence.BusRdX)
						s.states[i] = protos[i].FillStateAfterWrite()
					}
				} else {
					if !s.fresh[i] {
						// Writing one word into a line whose other words
						// are stale corrupts the line.
						report("stale-write", i, s.states[i], append(trace, ev))
					}
					if protos[i].UpdateBased() {
						updated = append(updated, dragonWriteHit(protos[i], policies[i], &s, i, snoopAll)...)
					} else {
						next, _, needsBus, err := protos[i].OnWriteHit(s.states[i])
						if err != nil {
							panic(err)
						}
						if needsBus {
							_, _, _ = snoopAll(&s, i, coherence.BusUpgr)
						}
						s.states[i] = next
					}
				}
				// The write creates the globally newest value; processors
				// that applied a bus update received it too.
				for j := 0; j < s.n; j++ {
					s.fresh[j] = j == i
				}
				for _, j := range updated {
					s.fresh[j] = true
				}
				s.memFresh = false
				add(ev, s)
			}
			// --- Eviction by Pi ---
			if cur.states[i] != coherence.Invalid {
				s := cur
				ev := fmt.Sprintf("P%d.ev", i)
				if s.states[i].Dirty() {
					s.memFresh = s.fresh[i]
				}
				s.states[i] = coherence.Invalid
				add(ev, s)
			}
		}
		return out
	}

	explored := 0
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		explored++
		queue = append(queue, expand(nd.st, nd.trace)...)
	}

	res := VerifyResult{Explored: explored, Violations: violations}
	res.Reachable = make([][]coherence.State, n)
	for i := range reachable {
		var sts []coherence.State
		for s := range reachable[i] {
			sts = append(sts, s)
		}
		sort.Slice(sts, func(a, b int) bool { return sts[a] < sts[b] })
		res.Reachable[i] = sts
	}
	return res, nil
}
