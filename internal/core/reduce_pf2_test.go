package core

import (
	"testing"

	"hetcc/internal/coherence"
)

// TestReducePF2ImplicitMEI: a coherence-less processor's private cache
// behaves as MEI (exclusive allocation, silent E→M write hits), so a PF2
// platform mixing it with a shared-state protocol must reduce as an MEI mix
// — read-to-write conversion plus force-deassert on the coherent side.
// Without that, the coherent processor keeps an S copy across the
// coherence-less master's silent write and reads stale data; the state-space
// explorer (internal/explore) exhibits the trace.
func TestReducePF2ImplicitMEI(t *testing.T) {
	for _, k := range []coherence.Kind{coherence.MSI, coherence.MESI, coherence.MOESI} {
		integ, err := Reduce([]coherence.Kind{k, coherence.None})
		if err != nil {
			t.Fatalf("%v+none: %v", k, err)
		}
		if integ.Class != PF2 {
			t.Errorf("%v+none: class %v", k, integ.Class)
		}
		if integ.Effective != coherence.MEI {
			t.Errorf("%v+none: effective %v, want MEI (implicit in the coherence-less cache)", k, integ.Effective)
		}
		pol := integ.Policies[0]
		if !pol.ConvertReadToWrite || pol.Shared != SharedForceDeassert {
			t.Errorf("%v+none: coherent policy %v, want read-to-write conversion with force-deassert", k, pol)
		}
		if pol.AllowCacheToCache {
			t.Errorf("%v+none: cache-to-cache must be suppressed", k)
		}
	}

	// MEI+none keeps the plain homogeneous reduction: MEI needs neither
	// conversion nor the shared signal, so the policies stay passthrough
	// (pinning this keeps the PF2 case-study digests stable).
	integ, err := Reduce([]coherence.Kind{coherence.MEI, coherence.None})
	if err != nil {
		t.Fatal(err)
	}
	if integ.Effective != coherence.MEI || integ.Policies[0] != (WrapperPolicy{}) {
		t.Errorf("MEI+none: effective %v policy %v, want plain MEI passthrough", integ.Effective, integ.Policies[0])
	}

	// Three masters, two coherent shared-state protocols plus a
	// coherence-less one: still an MEI mix.
	integ, err = Reduce([]coherence.Kind{coherence.MESI, coherence.MOESI, coherence.None})
	if err != nil {
		t.Fatal(err)
	}
	if integ.Effective != coherence.MEI {
		t.Errorf("MESI+MOESI+none: effective %v, want MEI", integ.Effective)
	}
}
