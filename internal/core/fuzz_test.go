package core

import (
	"testing"

	"hetcc/internal/coherence"
)

// FuzzReduceAndVerify: any protocol vector either fails Reduce with a
// clear error (Dragon mixes) or produces policies the model checker proves
// sound.  The checker itself must never panic on reduced configurations.
func FuzzReduceAndVerify(f *testing.F) {
	f.Add(uint8(1), uint8(3))
	f.Add(uint8(2), uint8(4))
	f.Add(uint8(5), uint8(5))
	f.Add(uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, a, b uint8) {
		kinds := []coherence.Kind{
			coherence.Kind(a % 6), // None..Dragon
			coherence.Kind(b % 6),
		}
		integ, err := Reduce(kinds)
		if err != nil {
			return // rejected combination (e.g. Dragon mix): fine
		}
		// Model-check the coherent subset.
		var protos []coherence.Kind
		var pols []WrapperPolicy
		for i, k := range kinds {
			if k != coherence.None {
				protos = append(protos, k)
				pols = append(pols, integ.Policies[i])
			}
		}
		if len(protos) == 0 {
			return
		}
		res, err := Verify(protos, pols, integ.Effective)
		if err != nil {
			t.Fatalf("Verify(%v): %v", protos, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("Reduce(%v) produced unsound policies: %v", kinds, res.Violations[0])
		}
	})
}
