// Package core implements the paper's central contribution: the rules for
// integrating heterogeneous invalidation-based coherence protocols on one
// shared bus (Section 2 of the paper), expressed as per-processor wrapper
// policies, plus the platform classification of the paper's Table 1 and an
// exhaustive reachability verifier that proves the reduction eliminates the
// intended states.
//
// Protocol reduction summary (paper Sections 2.1–2.3):
//
//   - any MEI present  → effective MEI: snooping wrappers convert observed
//     reads to writes and the shared signal is force-deasserted, removing
//     the S (and O) states everywhere;
//   - else any MSI     → effective MSI: the shared signal is force-asserted
//     on MESI/MOESI read misses (removing E); MOESI snoopers additionally
//     convert reads to writes so the M→O transition never fires;
//   - else MESI+MOESI  → effective MESI: MOESI snoopers convert reads to
//     writes, prohibiting cache-to-cache sharing (E→S and M→O are gone;
//     I→S via the shared signal remains);
//   - homogeneous      → unchanged, wrappers pass through.
//
// In every heterogeneous mix cache-to-cache supply is suppressed: the paper
// assumes only MOESI processors implement it, so a mixed system must fall
// back to the drain-and-retry path.
package core

import (
	"fmt"

	"hetcc/internal/coherence"
)

// SharedOverride selects how a wrapper maps the bus shared signal that its
// processor samples on its own read misses.
type SharedOverride uint8

const (
	// SharedPassthrough presents the bus value unmodified.
	SharedPassthrough SharedOverride = iota
	// SharedForceAssert always asserts shared (removes the E state).
	SharedForceAssert
	// SharedForceDeassert always deasserts shared (removes the I→S
	// allocation; together with read-to-write conversion this removes S).
	SharedForceDeassert
)

// String names the override.
func (s SharedOverride) String() string {
	switch s {
	case SharedPassthrough:
		return "passthrough"
	case SharedForceAssert:
		return "force-assert"
	case SharedForceDeassert:
		return "force-deassert"
	default:
		return fmt.Sprintf("SharedOverride(%d)", uint8(s))
	}
}

// WrapperPolicy is the per-processor configuration of the paper's bus
// wrapper.
type WrapperPolicy struct {
	// ConvertReadToWrite makes the processor's snoop port observe BusRdX
	// where the bus carried BusRd (the paper's "read to write conversion";
	// on the Intel486 this is realised by asserting the INV pin on read
	// snoop cycles).
	ConvertReadToWrite bool
	// Shared is the shared-signal override applied on the processor's own
	// fills.
	Shared SharedOverride
	// AllowCacheToCache permits the processor to supply snooped lines
	// directly to the requester.  Only true in homogeneous MOESI systems.
	AllowCacheToCache bool
}

// String summarises the policy.
func (p WrapperPolicy) String() string {
	return fmt.Sprintf("{rd→wr:%v shared:%v c2c:%v}", p.ConvertReadToWrite, p.Shared, p.AllowCacheToCache)
}

// PlatformClass is the paper's Table 1 classification.
type PlatformClass uint8

const (
	// PF1: no processor has cache coherence hardware.
	PF1 PlatformClass = iota + 1
	// PF2: some, but not all, processors have coherence hardware.
	PF2
	// PF3: every processor has coherence hardware.
	PF3
)

// String names the class.
func (c PlatformClass) String() string {
	switch c {
	case PF1:
		return "PF1"
	case PF2:
		return "PF2"
	case PF3:
		return "PF3"
	default:
		return fmt.Sprintf("PlatformClass(%d)", uint8(c))
	}
}

// Classify maps the per-processor "has coherence hardware" vector to the
// paper's platform class.
func Classify(protocols []coherence.Kind) (PlatformClass, error) {
	if len(protocols) == 0 {
		return 0, fmt.Errorf("core: no processors")
	}
	withHW := 0
	for _, k := range protocols {
		if k != coherence.None {
			withHW++
		}
	}
	switch {
	case withHW == 0:
		return PF1, nil
	case withHW == len(protocols):
		return PF3, nil
	default:
		return PF2, nil
	}
}

// Integration is the output of protocol reduction: everything the platform
// builder needs to wire the paper's coherence scheme.
type Integration struct {
	// Class is the Table 1 platform class.
	Class PlatformClass
	// Effective is the reduced protocol the system behaves as.
	Effective coherence.Kind
	// Policies holds one wrapper policy per processor (zero-valued for
	// coherence-less processors, which get snoop logic instead).
	Policies []WrapperPolicy
	// NeedsSnoopLogic flags processors without coherence hardware: they
	// require the external TAG-CAM snoop logic and the interrupt-driven
	// drain routine (paper Section 3, Figure 3).
	NeedsSnoopLogic []bool
	// LockCaveat is non-empty on PF1/PF2 platforms: lock variables must
	// not be cached (or a hardware lock register must be used), or the
	// hardware-deadlock problem of the paper's Figure 4 can occur.
	LockCaveat string
}

func has(protocols []coherence.Kind, k coherence.Kind) bool {
	for _, p := range protocols {
		if p == k {
			return true
		}
	}
	return false
}

// hasSharedState reports whether protocol k uses the S state.
func hasSharedState(k coherence.Kind) bool {
	return k == MSIKind || k == MESIKind || k == MOESIKind
}

// Local aliases keep the rule table readable.
const (
	NoneKind  = coherence.None
	MEIKind   = coherence.MEI
	MSIKind   = coherence.MSI
	MESIKind  = coherence.MESI
	MOESIKind = coherence.MOESI
)

// Reduce computes the integration plan for the given per-processor protocol
// list (coherence.None marks a processor with no coherence hardware).
func Reduce(protocols []coherence.Kind) (Integration, error) {
	class, err := Classify(protocols)
	if err != nil {
		return Integration{}, err
	}
	out := Integration{
		Class:           class,
		Policies:        make([]WrapperPolicy, len(protocols)),
		NeedsSnoopLogic: make([]bool, len(protocols)),
	}
	for i, k := range protocols {
		if k == NoneKind {
			out.NeedsSnoopLogic[i] = true
		}
	}
	if class != PF3 {
		out.LockCaveat = "lock variables must not be cached (use an uncached software lock or the hardware lock register), or the hardware-deadlock problem can occur"
	}

	// Collect the distinct coherent protocols.
	var kinds []coherence.Kind
	for _, k := range protocols {
		if k != NoneKind && !has(kinds, k) {
			kinds = append(kinds, k)
		}
	}

	// The paper's method covers invalidation-based protocols only; the
	// update-based Dragon protocol is supported solely in homogeneous
	// systems (Section 2: "we focus our discussion on those processors
	// that support invalidation-based protocols").
	if has(kinds, coherence.Dragon) && (len(kinds) > 1 || class != PF3) {
		return Integration{}, fmt.Errorf("core: the update-based Dragon protocol cannot be integrated with %v: the wrapper method covers invalidation-based protocols only", kinds)
	}

	// A PF2 platform implicitly contains MEI: a coherence-less processor's
	// private cache allocates exclusively and upgrades to Modified without
	// bus traffic (it has no shared-signal input), which is exactly an MEI
	// cache as far as the other processors can observe.  Any shared-state
	// protocol alongside it must therefore be reduced as an MEI mix
	// (Section 2.1 applied to the implicit MEI) — otherwise a coherent
	// processor can keep an S copy across the coherence-less master's
	// silent E→M write hit and read stale data.  The state-space explorer
	// (internal/explore) finds that defect in a five-action trace.
	if class == PF2 && len(kinds) > 0 && !has(kinds, MEIKind) {
		kinds = append(kinds, MEIKind)
	}

	switch {
	case len(kinds) == 0:
		// PF1: caches behave as private MEI-like caches; coherence comes
		// entirely from snoop logic + ISR drains.
		out.Effective = MEIKind
		return out, nil

	case len(kinds) == 1:
		// Homogeneous coherent processors (possibly plus coherence-less
		// ones).  The native protocol survives; in a pure homogeneous
		// MOESI system cache-to-cache sharing stays enabled.
		out.Effective = kinds[0]
		pureHomogeneous := class == PF3
		for i, k := range protocols {
			if k == NoneKind {
				continue
			}
			out.Policies[i] = WrapperPolicy{
				Shared:            SharedPassthrough,
				AllowCacheToCache: (k == MOESIKind || k == coherence.Dragon) && pureHomogeneous,
			}
		}
		return out, nil

	case has(kinds, MEIKind):
		// Section 2.1: MEI with MSI/MESI/MOESI → MEI.  Remove the shared
		// state: snoopers with an S state observe writes instead of reads,
		// and the shared signal is never asserted to the requester.
		out.Effective = MEIKind
		for i, k := range protocols {
			if k == NoneKind {
				continue
			}
			out.Policies[i] = WrapperPolicy{
				ConvertReadToWrite: hasSharedState(k),
				Shared:             SharedForceDeassert,
			}
		}
		return out, nil

	case has(kinds, MSIKind):
		// Section 2.2: MSI with MESI/MOESI → MSI.  Force-assert the shared
		// signal on MESI/MOESI read misses so E is never allocated; MOESI
		// snoopers additionally convert reads to writes so M→O (and with
		// it cache-to-cache sharing) never occurs.
		out.Effective = MSIKind
		for i, k := range protocols {
			switch k {
			case MESIKind:
				out.Policies[i] = WrapperPolicy{Shared: SharedForceAssert}
			case MOESIKind:
				out.Policies[i] = WrapperPolicy{Shared: SharedForceAssert, ConvertReadToWrite: true}
			case MSIKind:
				out.Policies[i] = WrapperPolicy{Shared: SharedPassthrough}
			}
		}
		return out, nil

	default:
		// Section 2.3: MESI with MOESI → MESI (with E→S and M→O removed on
		// the MOESI side).  Read-to-write conversion at the MOESI snooper
		// prohibits cache-to-cache sharing; the I→S path via the shared
		// signal remains available.
		if !(has(kinds, MESIKind) && has(kinds, MOESIKind) && len(kinds) == 2) {
			return Integration{}, fmt.Errorf("core: unhandled protocol combination %v", kinds)
		}
		out.Effective = MESIKind
		for i, k := range protocols {
			switch k {
			case MOESIKind:
				out.Policies[i] = WrapperPolicy{ConvertReadToWrite: true}
			case MESIKind:
				out.Policies[i] = WrapperPolicy{}
			}
		}
		return out, nil
	}
}

// AllowedStates returns the per-processor coherence states permitted after
// reduction — the set the verifier checks reachability against.  A
// processor never enters a state outside both its native protocol and the
// effective protocol, except that the paper's MSI-in-MEI-mix case keeps the
// *name* S for lines that behave as E ("despite the name, the S state is
// equivalent to the E state"): for an MSI processor in an MEI mix the
// allowed set is therefore {I, S, M}.
func AllowedStates(native, effective coherence.Kind) []coherence.State {
	if native == coherence.None {
		return []coherence.State{coherence.Invalid, coherence.Exclusive, coherence.Modified}
	}
	nat := coherence.New(native).States()
	if native == effective {
		return nat
	}
	eff := coherence.New(effective).States()
	if native == MSIKind && effective == MEIKind {
		// MSI cannot allocate E; its I→S self-transition survives but the
		// line is exclusive in practice.
		return []coherence.State{coherence.Invalid, coherence.Shared, coherence.Modified}
	}
	var out []coherence.State
	for _, s := range nat {
		for _, t := range eff {
			if s == t {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
