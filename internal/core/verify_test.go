package core

import (
	"testing"

	"hetcc/internal/coherence"
)

func passthrough(n int) []WrapperPolicy {
	return make([]WrapperPolicy, n)
}

// unwired models the un-integrated heterogeneous bus: no master ever
// samples an asserted shared signal (the conventions are incompatible) and
// interventions are off.
func unwired(n int) []WrapperPolicy {
	out := make([]WrapperPolicy, n)
	for i := range out {
		out[i] = WrapperPolicy{Shared: SharedForceDeassert}
	}
	return out
}

// TestVerifyHomogeneousProtocolsAreCoherent: every protocol is coherent
// with itself under passthrough wrappers.
func TestVerifyHomogeneousProtocolsAreCoherent(t *testing.T) {
	for _, k := range []coherence.Kind{coherence.MEI, coherence.MSI, coherence.MESI} {
		res, err := Verify([]coherence.Kind{k, k}, passthrough(2), k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("homogeneous %v: %v", k, res.Violations[0])
		}
	}
	// Homogeneous MOESI needs cache-to-cache allowed.
	pols := []WrapperPolicy{{AllowCacheToCache: true}, {AllowCacheToCache: true}}
	res, err := Verify([]coherence.Kind{coherence.MOESI, coherence.MOESI}, pols, coherence.MOESI)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("homogeneous MOESI: %v", res.Violations[0])
	}
	if !containsState(res.Reachable[0], coherence.Owned) {
		t.Error("homogeneous MOESI never reached O")
	}
}

// TestVerifyTable2Defect: MEI+MESI without integration produces the exact
// staleness of the paper's Table 2.
func TestVerifyTable2Defect(t *testing.T) {
	res, err := Verify([]coherence.Kind{coherence.MESI, coherence.MEI}, unwired(2), coherence.MESI)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no violation found in un-integrated MEI+MESI")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == "stale-read" && v.Processor == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no stale-read at the MESI processor; got %v", res.Violations)
	}
}

// TestVerifyTable3Defect: MSI+MESI without integration is also stale.
func TestVerifyTable3Defect(t *testing.T) {
	res, err := Verify([]coherence.Kind{coherence.MSI, coherence.MESI}, unwired(2), coherence.MSI)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no violation found in un-integrated MSI+MESI")
	}
}

// TestVerifyAllMixesSoundWithReduction is the paper's Section 2 soundness
// claim, model-checked: for every heterogeneous pair, the wrapper policies
// from Reduce eliminate both staleness and out-of-protocol states.
func TestVerifyAllMixesSoundWithReduction(t *testing.T) {
	kinds := []coherence.Kind{coherence.MEI, coherence.MSI, coherence.MESI, coherence.MOESI}
	for _, a := range kinds {
		for _, b := range kinds {
			protos := []coherence.Kind{a, b}
			integ, err := Reduce(protos)
			if err != nil {
				t.Fatalf("Reduce(%v,%v): %v", a, b, err)
			}
			res, err := Verify(protos, integ.Policies, integ.Effective)
			if err != nil {
				t.Fatalf("Verify(%v,%v): %v", a, b, err)
			}
			for _, v := range res.Violations {
				t.Errorf("%v+%v: %v", a, b, v)
			}
			if res.Explored == 0 {
				t.Errorf("%v+%v explored nothing", a, b)
			}
		}
	}
}

// TestVerifyStateElimination checks the specific claims of Sections
// 2.1–2.3: which states become unreachable under each integration.
func TestVerifyStateElimination(t *testing.T) {
	check := func(protos []coherence.Kind, proc int, state coherence.State) {
		t.Helper()
		integ, err := Reduce(protos)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Verify(protos, integ.Policies, integ.Effective)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Eliminated(proc, state) {
			t.Errorf("%v: P%d still reaches %v (reachable %v)", protos, proc, state, res.Reachable[proc])
		}
	}
	// 2.1: MEI mixes eliminate S at the MESI/MOESI processor.
	check([]coherence.Kind{coherence.MEI, coherence.MESI}, 1, coherence.Shared)
	check([]coherence.Kind{coherence.MEI, coherence.MOESI}, 1, coherence.Shared)
	check([]coherence.Kind{coherence.MEI, coherence.MOESI}, 1, coherence.Owned)
	// 2.2: MSI mixes eliminate E (and O).
	check([]coherence.Kind{coherence.MSI, coherence.MESI}, 1, coherence.Exclusive)
	check([]coherence.Kind{coherence.MSI, coherence.MOESI}, 1, coherence.Exclusive)
	check([]coherence.Kind{coherence.MSI, coherence.MOESI}, 1, coherence.Owned)
	// 2.3: MESI+MOESI eliminates O (cache-to-cache prohibited).
	check([]coherence.Kind{coherence.MESI, coherence.MOESI}, 1, coherence.Owned)
}

// TestVerifyMESIPlusMOESIKeepsSharing: the 2.3 integration still allows the
// I→S path — it reduces to MESI, not MEI.
func TestVerifyMESIPlusMOESIKeepsSharing(t *testing.T) {
	protos := []coherence.Kind{coherence.MESI, coherence.MOESI}
	integ, err := Reduce(protos)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(protos, integ.Policies, integ.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if !containsState(res.Reachable[0], coherence.Shared) {
		t.Errorf("MESI processor never reached S; integration over-reduced to MEI (reachable %v)", res.Reachable[0])
	}
}

// TestVerifyThreeWayMix: a triple-protocol system reduces soundly too.
func TestVerifyThreeWayMix(t *testing.T) {
	protos := []coherence.Kind{coherence.MEI, coherence.MESI, coherence.MOESI}
	integ, err := Reduce(protos)
	if err != nil {
		t.Fatal(err)
	}
	if integ.Effective != coherence.MEI {
		t.Fatalf("effective %v, want MEI", integ.Effective)
	}
	res, err := Verify(protos, integ.Policies, integ.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("three-way mix: %v", res.Violations[0])
	}
}

func TestVerifyInputValidation(t *testing.T) {
	if _, err := Verify(nil, nil, coherence.MEI); err == nil {
		t.Error("empty processor list accepted")
	}
	if _, err := Verify([]coherence.Kind{coherence.MEI}, nil, coherence.MEI); err == nil {
		t.Error("mismatched policy count accepted")
	}
	if _, err := Verify([]coherence.Kind{coherence.None}, passthrough(1), coherence.MEI); err == nil {
		t.Error("None processor accepted")
	}
	if _, err := Verify(make([]coherence.Kind, maxProcs+1), make([]WrapperPolicy, maxProcs+1), coherence.MEI); err == nil {
		t.Error("too many processors accepted")
	}
}

// TestVerifyViolationHasWitnessTrace: violations must carry a replayable
// event trace.
func TestVerifyViolationHasWitnessTrace(t *testing.T) {
	res, err := Verify([]coherence.Kind{coherence.MESI, coherence.MEI}, unwired(2), coherence.MESI)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if len(v.Trace) == 0 {
			t.Errorf("violation %v has empty trace", v.Kind)
		}
		if v.String() == "" {
			t.Error("violation renders empty")
		}
	}
}

func containsState(states []coherence.State, s coherence.State) bool {
	for _, st := range states {
		if st == s {
			return true
		}
	}
	return false
}

// TestVerifyHomogeneousDragon: the update-based protocol is coherent in a
// homogeneous system, reaches its Sm state, and keeps sharers valid.
func TestVerifyHomogeneousDragon(t *testing.T) {
	protos := []coherence.Kind{coherence.Dragon, coherence.Dragon}
	integ, err := Reduce(protos)
	if err != nil {
		t.Fatal(err)
	}
	if integ.Effective != coherence.Dragon {
		t.Fatalf("effective %v", integ.Effective)
	}
	for i, p := range integ.Policies {
		if !p.AllowCacheToCache {
			t.Fatalf("P%d denied c2c", i)
		}
	}
	res, err := Verify(protos, integ.Policies, integ.Effective)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("dragon violations: %v", res.Violations[0])
	}
	if !containsState(res.Reachable[0], coherence.Owned) {
		t.Fatal("Sm never reached")
	}
	// Crucially, both processors can hold the line simultaneously with one
	// of them dirty — the update-based signature.
	if !containsState(res.Reachable[0], coherence.Shared) {
		t.Fatal("Sc never reached")
	}
}

// TestReduceRejectsDragonMixes: the paper's wrapper method covers
// invalidation-based protocols only.
func TestReduceRejectsDragonMixes(t *testing.T) {
	bad := [][]coherence.Kind{
		{coherence.Dragon, coherence.MESI},
		{coherence.MEI, coherence.Dragon},
		{coherence.Dragon, coherence.MOESI},
		{coherence.Dragon, coherence.None}, // PF2 with Dragon: also out of scope
	}
	for _, protos := range bad {
		if _, err := Reduce(protos); err == nil {
			t.Errorf("Reduce(%v) accepted an update-based mix", protos)
		}
	}
}
