package core

import (
	"fmt"
	"testing"

	"hetcc/internal/coherence"
)

// allKinds is every protocol vector element Classify can see, including the
// update-based Dragon (which counts as coherence hardware even though Reduce
// refuses to mix it) and the no-hardware marker None.
var allKinds = []coherence.Kind{
	coherence.None, coherence.MEI, coherence.MSI,
	coherence.MESI, coherence.MOESI, coherence.Dragon,
}

// wantClass is the Table 1 rule stated independently of the implementation:
// PF1 when no processor has coherence hardware, PF3 when all do, PF2
// otherwise.
func wantClass(protocols []coherence.Kind) PlatformClass {
	withHW := 0
	for _, k := range protocols {
		if k != coherence.None {
			withHW++
		}
	}
	switch withHW {
	case 0:
		return PF1
	case len(protocols):
		return PF3
	default:
		return PF2
	}
}

// TestClassifyNamedVectors pins the classification of the paper's platforms
// and the corner vectors by name, so a failure reads as the exact platform
// that misclassified.
func TestClassifyNamedVectors(t *testing.T) {
	cases := []struct {
		name   string
		protos []coherence.Kind
		want   PlatformClass
	}{
		{"PF1 paper: ARM920T+ARM920T", []coherence.Kind{coherence.None, coherence.None}, PF1},
		{"PF2 paper: PowerPC755+ARM920T", []coherence.Kind{coherence.MEI, coherence.None}, PF2},
		{"PF3 paper: PowerPC755+Intel486", []coherence.Kind{coherence.MEI, coherence.MESI}, PF3},
		{"single coherence-less core", []coherence.Kind{coherence.None}, PF1},
		{"single coherent core", []coherence.Kind{coherence.MESI}, PF3},
		{"single Dragon core", []coherence.Kind{coherence.Dragon}, PF3},
		{"homogeneous Dragon pair", []coherence.Kind{coherence.Dragon, coherence.Dragon}, PF3},
		{"Dragon + no-coherence", []coherence.Kind{coherence.Dragon, coherence.None}, PF2},
		{"Dragon + MOESI", []coherence.Kind{coherence.Dragon, coherence.MOESI}, PF3},
		{"quad all-None", []coherence.Kind{coherence.None, coherence.None, coherence.None, coherence.None}, PF1},
		{"quad one coherent", []coherence.Kind{coherence.None, coherence.MSI, coherence.None, coherence.None}, PF2},
		{"quad all distinct coherent", []coherence.Kind{coherence.MEI, coherence.MSI, coherence.MESI, coherence.MOESI}, PF3},
		{"quad mixed with Dragon and None", []coherence.Kind{coherence.Dragon, coherence.None, coherence.MESI, coherence.None}, PF2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Classify(c.protos)
			if err != nil {
				t.Fatalf("Classify(%v): %v", c.protos, err)
			}
			if got != c.want {
				t.Fatalf("Classify(%v) = %v, want %v", c.protos, got, c.want)
			}
		})
	}
}

// TestClassifyFullMatrix sweeps every protocol vector of length 1..3 over
// all six kinds (216 triples alone) and checks Classify against the Table 1
// rule — the full matrix, not just the paper's example platforms.
func TestClassifyFullMatrix(t *testing.T) {
	checked := 0
	for _, a := range allKinds {
		check(t, []coherence.Kind{a})
		checked++
		for _, b := range allKinds {
			check(t, []coherence.Kind{a, b})
			checked++
			for _, c := range allKinds {
				check(t, []coherence.Kind{a, b, c})
				checked++
			}
		}
	}
	if want := 6 + 6*6 + 6*6*6; checked != want {
		t.Fatalf("swept %d vectors, want %d", checked, want)
	}
}

func check(t *testing.T, protos []coherence.Kind) {
	t.Helper()
	got, err := Classify(protos)
	if err != nil {
		t.Fatalf("Classify(%v): %v", protos, err)
	}
	if want := wantClass(protos); got != want {
		t.Errorf("Classify(%v) = %v, want %v", protos, got, want)
	}
}

// TestClassifyAgreesWithReduce: for every vector Reduce accepts, the class it
// reports must match Classify's (Reduce embeds the classification in its
// Integration output).
func TestClassifyAgreesWithReduce(t *testing.T) {
	for _, a := range allKinds {
		for _, b := range allKinds {
			protos := []coherence.Kind{a, b}
			integ, err := Reduce(protos)
			if err != nil {
				// Dragon mixes are rejected by Reduce; Classify still has an
				// answer for them, checked by the full-matrix sweep above.
				continue
			}
			class, err := Classify(protos)
			if err != nil {
				t.Fatalf("Classify(%v): %v", protos, err)
			}
			if integ.Class != class {
				t.Errorf("Reduce(%v).Class = %v, Classify = %v", protos, integ.Class, class)
			}
		}
	}
}

// TestClassifyEmpty: an empty vector is an error, not a class.
func TestClassifyEmpty(t *testing.T) {
	for _, protos := range [][]coherence.Kind{nil, {}} {
		if _, err := Classify(protos); err == nil {
			t.Errorf("Classify(%v) did not error", protos)
		}
	}
}

var sinkClass PlatformClass

func BenchmarkClassifyQuad(b *testing.B) {
	protos := []coherence.Kind{coherence.MEI, coherence.None, coherence.MESI, coherence.MOESI}
	for i := 0; i < b.N; i++ {
		c, err := Classify(protos)
		if err != nil {
			b.Fatal(err)
		}
		sinkClass = c
	}
	_ = fmt.Sprint(sinkClass)
}
