package core

import (
	"testing"

	"hetcc/internal/coherence"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		protos []coherence.Kind
		want   PlatformClass
	}{
		{[]coherence.Kind{coherence.None, coherence.None}, PF1},
		{[]coherence.Kind{coherence.MEI, coherence.None}, PF2},
		{[]coherence.Kind{coherence.None, coherence.MESI}, PF2},
		{[]coherence.Kind{coherence.MEI, coherence.MESI}, PF3},
		{[]coherence.Kind{coherence.MOESI}, PF3},
		{[]coherence.Kind{coherence.MEI, coherence.MSI, coherence.None}, PF2},
	}
	for _, c := range cases {
		got, err := Classify(c.protos)
		if err != nil {
			t.Fatalf("%v: %v", c.protos, err)
		}
		if got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.protos, got, c.want)
		}
	}
	if _, err := Classify(nil); err == nil {
		t.Error("Classify(nil) did not error")
	}
}

func TestClassStrings(t *testing.T) {
	if PF1.String() != "PF1" || PF2.String() != "PF2" || PF3.String() != "PF3" {
		t.Error("platform class strings wrong")
	}
}

// TestReduceEffectiveProtocol checks the paper's Section 2 reduction table
// for every pair of protocols.
func TestReduceEffectiveProtocol(t *testing.T) {
	pairs := []struct {
		a, b coherence.Kind
		want coherence.Kind
	}{
		{coherence.MEI, coherence.MEI, coherence.MEI},
		{coherence.MEI, coherence.MSI, coherence.MEI},
		{coherence.MEI, coherence.MESI, coherence.MEI},
		{coherence.MEI, coherence.MOESI, coherence.MEI},
		{coherence.MSI, coherence.MSI, coherence.MSI},
		{coherence.MSI, coherence.MESI, coherence.MSI},
		{coherence.MSI, coherence.MOESI, coherence.MSI},
		{coherence.MESI, coherence.MESI, coherence.MESI},
		{coherence.MESI, coherence.MOESI, coherence.MESI},
		{coherence.MOESI, coherence.MOESI, coherence.MOESI},
	}
	for _, p := range pairs {
		for _, order := range [][]coherence.Kind{{p.a, p.b}, {p.b, p.a}} {
			integ, err := Reduce(order)
			if err != nil {
				t.Fatalf("Reduce(%v): %v", order, err)
			}
			if integ.Effective != p.want {
				t.Errorf("Reduce(%v) effective %v, want %v", order, integ.Effective, p.want)
			}
			if integ.Class != PF3 {
				t.Errorf("Reduce(%v) class %v, want PF3", order, integ.Class)
			}
			if integ.LockCaveat != "" {
				t.Errorf("Reduce(%v) has lock caveat on PF3", order)
			}
		}
	}
}

func TestReduceMEIMixPolicies(t *testing.T) {
	integ, err := Reduce([]coherence.Kind{coherence.MEI, coherence.MESI})
	if err != nil {
		t.Fatal(err)
	}
	// The MESI snooper must convert reads to writes; the MEI side needs no
	// conversion (it has no S state), exactly as the paper notes for the
	// PowerPC755 side.
	if integ.Policies[0].ConvertReadToWrite {
		t.Error("MEI processor got read-to-write conversion (unnecessary)")
	}
	if !integ.Policies[1].ConvertReadToWrite {
		t.Error("MESI processor missing read-to-write conversion")
	}
	for i, p := range integ.Policies {
		if p.Shared != SharedForceDeassert {
			t.Errorf("P%d shared override %v, want force-deassert", i, p.Shared)
		}
		if p.AllowCacheToCache {
			t.Errorf("P%d allows cache-to-cache in a heterogeneous mix", i)
		}
	}
}

func TestReduceMSIMixPolicies(t *testing.T) {
	integ, err := Reduce([]coherence.Kind{coherence.MSI, coherence.MESI, coherence.MOESI})
	if err != nil {
		t.Fatal(err)
	}
	if integ.Effective != coherence.MSI {
		t.Fatalf("effective %v, want MSI", integ.Effective)
	}
	if integ.Policies[0].Shared != SharedPassthrough {
		t.Error("MSI processor should pass the shared signal through")
	}
	if integ.Policies[1].Shared != SharedForceAssert || integ.Policies[1].ConvertReadToWrite {
		t.Errorf("MESI policy %v, want force-assert without conversion", integ.Policies[1])
	}
	if integ.Policies[2].Shared != SharedForceAssert || !integ.Policies[2].ConvertReadToWrite {
		t.Errorf("MOESI policy %v, want force-assert with conversion", integ.Policies[2])
	}
}

func TestReduceMESIMOESIPolicies(t *testing.T) {
	integ, err := Reduce([]coherence.Kind{coherence.MESI, coherence.MOESI})
	if err != nil {
		t.Fatal(err)
	}
	if integ.Effective != coherence.MESI {
		t.Fatalf("effective %v, want MESI", integ.Effective)
	}
	if integ.Policies[0].ConvertReadToWrite {
		t.Error("MESI side should not convert")
	}
	if !integ.Policies[1].ConvertReadToWrite {
		t.Error("MOESI side must convert (prohibits cache-to-cache sharing)")
	}
}

func TestReduceHomogeneousMOESIKeepsC2C(t *testing.T) {
	integ, err := Reduce([]coherence.Kind{coherence.MOESI, coherence.MOESI})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range integ.Policies {
		if !p.AllowCacheToCache {
			t.Errorf("P%d lost cache-to-cache in homogeneous MOESI", i)
		}
		if p.ConvertReadToWrite || p.Shared != SharedPassthrough {
			t.Errorf("P%d policy %v not passthrough", i, p)
		}
	}
}

func TestReduceWithCoherencelessProcessors(t *testing.T) {
	integ, err := Reduce([]coherence.Kind{coherence.MEI, coherence.None})
	if err != nil {
		t.Fatal(err)
	}
	if integ.Class != PF2 {
		t.Errorf("class %v, want PF2", integ.Class)
	}
	if !integ.NeedsSnoopLogic[1] || integ.NeedsSnoopLogic[0] {
		t.Errorf("snoop logic flags %v, want [false true]", integ.NeedsSnoopLogic)
	}
	if integ.LockCaveat == "" {
		t.Error("PF2 integration missing lock caveat")
	}
	if integ.Effective != coherence.MEI {
		t.Errorf("effective %v, want MEI", integ.Effective)
	}
}

func TestReducePF1(t *testing.T) {
	integ, err := Reduce([]coherence.Kind{coherence.None, coherence.None})
	if err != nil {
		t.Fatal(err)
	}
	if integ.Class != PF1 || integ.LockCaveat == "" {
		t.Errorf("PF1 integration: %+v", integ)
	}
	for i, need := range integ.NeedsSnoopLogic {
		if !need {
			t.Errorf("P%d missing snoop logic on PF1", i)
		}
	}
}

func TestPolicyHelpers(t *testing.T) {
	p := WrapperPolicy{ConvertReadToWrite: true, Shared: SharedForceDeassert}
	if p.SnoopOp(coherence.BusRd) != coherence.BusRdX {
		t.Error("conversion missed BusRd")
	}
	if p.SnoopOp(coherence.BusRdX) != coherence.BusRdX || p.SnoopOp(coherence.BusUpgr) != coherence.BusUpgr {
		t.Error("conversion touched non-read ops")
	}
	if p.ApplyShared(true) {
		t.Error("force-deassert did not clear shared")
	}
	p.Shared = SharedForceAssert
	if !p.ApplyShared(false) {
		t.Error("force-assert did not set shared")
	}
	p.Shared = SharedPassthrough
	if p.ApplyShared(true) != true || p.ApplyShared(false) != false {
		t.Error("passthrough altered shared")
	}
}

func TestAllowedStates(t *testing.T) {
	// MSI in an MEI mix keeps its (exclusive-behaving) S state.
	got := AllowedStates(coherence.MSI, coherence.MEI)
	want := map[coherence.State]bool{coherence.Invalid: true, coherence.Shared: true, coherence.Modified: true}
	if len(got) != len(want) {
		t.Fatalf("AllowedStates(MSI, MEI) = %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("AllowedStates(MSI, MEI) includes %v", s)
		}
	}
	// MESI in an MEI mix loses S.
	for _, s := range AllowedStates(coherence.MESI, coherence.MEI) {
		if s == coherence.Shared {
			t.Error("MESI in MEI mix still allows S")
		}
	}
	// MOESI in an MSI mix loses E and O.
	for _, s := range AllowedStates(coherence.MOESI, coherence.MSI) {
		if s == coherence.Exclusive || s == coherence.Owned {
			t.Errorf("MOESI in MSI mix still allows %v", s)
		}
	}
}
