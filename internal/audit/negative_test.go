package audit

import (
	"sort"
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/event"
)

// TestInjectedViolationClasses drives the auditor the way the platform does —
// subscribed to a live event sink — with one scripted stream per violation
// class, and asserts that exactly the expected classes are flagged: the
// injected breach is caught, and no other check misfires on the same stream.
// This is the negative counterpart of the explorer's proof: each invariant
// has a demonstrated failure mode it alone detects.
func TestInjectedViolationClasses(t *testing.T) {
	const line = uint32(0x2000_0000)
	shared := func(addr uint32) bool { return addr >= 0x2000_0000 }
	// meiAllowed mirrors the MEI reduction's post-wrapper legal set.
	meiAllowed := [][]coherence.State{
		{coherence.Exclusive, coherence.Modified},
		{coherence.Exclusive, coherence.Modified},
	}

	type env struct {
		sink *event.Sink
		a    *Auditor
	}
	cases := []struct {
		name   string
		allow  [][]coherence.State
		script func(e env)
		want   []string // exact sorted multiset of violation checks
	}{
		{
			name: "clean-msi-sharing",
			script: func(e env) {
				e.sink.StateChange(0, line, coherence.Invalid, coherence.Shared)
				e.sink.StateChange(1, line, coherence.Invalid, coherence.Shared)
				e.sink.StateChange(0, line, coherence.Shared, coherence.Invalid)
				e.sink.StateChange(1, line, coherence.Shared, coherence.Modified)
				e.a.OnStore(1, line, 7, 4)
				e.a.OnLoad(1, line, 7, 5)
			},
			want: nil,
		},
		{
			name: "swmr-two-writers",
			script: func(e env) {
				e.sink.StateChange(0, line, coherence.Invalid, coherence.Modified)
				e.sink.StateChange(1, line, coherence.Invalid, coherence.Exclusive)
			},
			want: []string{CheckSWMR},
		},
		{
			name: "swmr-writer-with-reader",
			script: func(e env) {
				e.sink.StateChange(0, line, coherence.Invalid, coherence.Shared)
				e.sink.StateChange(1, line, coherence.Invalid, coherence.Exclusive)
			},
			want: []string{CheckSWMR},
		},
		{
			// Two Owned copies: neither is an E/M "writer", so SWMR stays
			// quiet and the single-dirty-owner check fires alone.
			name: "double-dirty-owner",
			script: func(e env) {
				e.sink.StateChange(0, line, coherence.Invalid, coherence.Owned)
				e.sink.StateChange(1, line, coherence.Invalid, coherence.Owned)
			},
			want: []string{CheckDirtyOwner},
		},
		{
			// M+M breaches both invariants at once: two writable copies and
			// two dirty copies.  Both classes must report.
			name: "double-modified-hits-both",
			script: func(e env) {
				e.sink.StateChange(0, line, coherence.Invalid, coherence.Modified)
				e.sink.StateChange(1, line, coherence.Invalid, coherence.Modified)
			},
			want: []string{CheckDirtyOwner, CheckSWMR},
		},
		{
			name: "stale-data-value",
			script: func(e env) {
				e.sink.StateChange(0, line, coherence.Invalid, coherence.Modified)
				e.a.OnStore(0, line, 7, 1)
				e.a.OnLoad(1, line, 3, 2) // reads a value nobody wrote
			},
			want: []string{CheckStaleRead},
		},
		{
			// A single S copy is coherent by every sharing invariant, but
			// off the MEI reduction table: only illegal-state may fire.
			name:  "off-table-state",
			allow: meiAllowed,
			script: func(e env) {
				e.sink.StateChange(0, line, coherence.Invalid, coherence.Shared)
			},
			want: []string{CheckIllegalState},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cycle := uint64(0)
			sink := event.NewSink(func() uint64 { cycle++; return cycle })
			a := New(Config{Cores: 2, Allowed: tc.allow, Shared: shared})
			sink.Subscribe(a.Handle)
			tc.script(env{sink: sink, a: a})

			var got []string
			for _, v := range a.Violations() {
				got = append(got, v.Check)
			}
			sort.Strings(got)
			want := append([]string(nil), tc.want...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("flagged %v, want exactly %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("flagged %v, want exactly %v", got, want)
				}
			}
			if uint64(len(got)) != a.ViolationCount() {
				t.Fatalf("retained %d but counted %d", len(got), a.ViolationCount())
			}
		})
	}
}
