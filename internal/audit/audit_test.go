package audit

import (
	"encoding/json"
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/event"
)

const line0, line1 = uint32(0x2000_0000), uint32(0x2000_0020)

// change feeds one StateChange record straight into the auditor, as the
// event sink would.
func change(a *Auditor, cycle uint64, core int, addr uint32, next coherence.State) {
	a.Handle(&event.Record{Cycle: cycle, Kind: event.StateChange, Core: core, Addr: addr, New: next})
}

func TestCleanSharingIsSilent(t *testing.T) {
	a := New(Config{Cores: 2})
	// MSI-style sharing then ownership hand-off, always coherent.
	change(a, 1, 0, line0, coherence.Shared)
	change(a, 2, 1, line0, coherence.Shared)
	change(a, 3, 0, line0, coherence.Invalid)
	change(a, 4, 1, line0, coherence.Modified)
	change(a, 5, 1, line0, coherence.Invalid)
	change(a, 6, 0, line0, coherence.Exclusive)
	if a.ViolationCount() != 0 {
		t.Fatalf("violations on a coherent sequence: %v", a.Violations())
	}
	if got := a.Summary().TransitionCount; got != 6 {
		t.Fatalf("transition count %d, want 6", got)
	}
}

func TestSWMRTwoWriters(t *testing.T) {
	a := New(Config{Cores: 2})
	change(a, 1, 0, line0, coherence.Modified)
	change(a, 2, 1, line0, coherence.Exclusive)
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Check != CheckSWMR || vs[0].Cycle != 2 || vs[0].Addr != line0 {
		t.Fatalf("violations %v, want one swmr at cycle 2", vs)
	}
}

func TestSWMRWriterPlusReader(t *testing.T) {
	a := New(Config{Cores: 2})
	change(a, 1, 0, line0, coherence.Shared)
	change(a, 2, 1, line0, coherence.Exclusive)
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Check != CheckSWMR {
		t.Fatalf("violations %v, want one swmr (E coexisting with S)", vs)
	}
}

func TestDirtyOwnerMOESI(t *testing.T) {
	a := New(Config{Cores: 2})
	// O+S is the legal MOESI sharing pattern; O+M breaks single dirty owner.
	change(a, 1, 0, line0, coherence.Owned)
	change(a, 2, 1, line0, coherence.Shared)
	if a.ViolationCount() != 0 {
		t.Fatalf("O+S flagged: %v", a.Violations())
	}
	change(a, 3, 1, line0, coherence.Modified)
	var kinds []string
	for _, v := range a.Violations() {
		kinds = append(kinds, v.Check)
	}
	found := false
	for _, k := range kinds {
		if k == CheckDirtyOwner {
			found = true
		}
	}
	if !found {
		t.Fatalf("O+M produced %v, want a dirty-owner violation", kinds)
	}
}

func TestIllegalStateAgainstReduction(t *testing.T) {
	// Core 0 is restricted to the MEI reduction; core 1 is unrestricted.
	a := New(Config{Cores: 2, Allowed: [][]coherence.State{
		{coherence.Exclusive, coherence.Modified},
		nil,
	}})
	change(a, 1, 1, line0, coherence.Shared) // unrestricted core: fine
	change(a, 2, 0, line1, coherence.Exclusive)
	if a.ViolationCount() != 0 {
		t.Fatalf("legal states flagged: %v", a.Violations())
	}
	change(a, 3, 0, line1, coherence.Shared)
	vs := a.Violations()
	if len(vs) == 0 || vs[0].Check != CheckIllegalState || vs[0].Core != 0 {
		t.Fatalf("violations %v, want illegal-state on core 0", vs)
	}
}

func TestStaleReadCheck(t *testing.T) {
	shared := func(addr uint32) bool { return addr >= 0x2000_0000 }
	a := New(Config{Cores: 2, Shared: shared})
	a.OnStore(0, line0, 7, 10)
	a.OnLoad(1, line0, 7, 11)
	a.OnLoad(1, line0+4, 0, 12) // never written: zeroed memory
	if a.ViolationCount() != 0 {
		t.Fatalf("coherent reads flagged: %v", a.Violations())
	}
	a.OnLoad(1, line0, 3, 13)
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Check != CheckStaleRead || vs[0].Cycle != 13 {
		t.Fatalf("violations %v, want one stale-read at cycle 13", vs)
	}
	// Private addresses are outside the check.
	a.OnStore(0, 0x1000, 9, 14)
	a.OnLoad(1, 0x1000, 1, 15)
	if a.ViolationCount() != 1 {
		t.Fatalf("private access audited: %v", a.Violations())
	}
}

func TestViolationCapKeepsCounting(t *testing.T) {
	a := New(Config{Cores: 2, MaxViolations: 3})
	for i := 0; i < 10; i++ {
		change(a, uint64(i), 0, line0, coherence.Modified)
		change(a, uint64(i), 1, line0, coherence.Modified)
	}
	if len(a.Violations()) != 3 {
		t.Fatalf("retained %d, want cap of 3", len(a.Violations()))
	}
	if a.ViolationCount() <= 3 {
		t.Fatalf("total %d should keep counting past the cap", a.ViolationCount())
	}
}

func TestLineCapCountsUntracked(t *testing.T) {
	a := New(Config{Cores: 1, MaxLines: 1})
	change(a, 1, 0, line0, coherence.Exclusive)
	change(a, 2, 0, line1, coherence.Exclusive)
	s := a.Summary()
	if len(s.Lines) != 1 || s.UntrackedChanges != 1 {
		t.Fatalf("lines=%d untracked=%d, want 1/1", len(s.Lines), s.UntrackedChanges)
	}
}

func TestOutOfRangeMasterIgnored(t *testing.T) {
	a := New(Config{Cores: 2})
	change(a, 1, 5, line0, coherence.Modified) // e.g. the DMA engine's master id
	change(a, 2, -1, line0, coherence.Modified)
	if a.ViolationCount() != 0 || a.Summary().TransitionCount != 0 {
		t.Fatal("out-of-range masters must be excluded from per-core tracking")
	}
}

func TestSummaryShapeAndDeterminism(t *testing.T) {
	a := New(Config{Cores: 2})
	change(a, 1, 0, line1, coherence.Modified)
	change(a, 2, 0, line1, coherence.Invalid)
	change(a, 3, 0, line0, coherence.Exclusive)
	change(a, 4, 1, line0+0x40, coherence.Shared)
	s := a.Summary()
	if got := s.Reachable[0]; len(got) != 3 || got[0] != "I" || got[1] != "E" || got[2] != "M" {
		t.Fatalf("core 0 reachable %v, want protocol order [I E M]", got)
	}
	if len(s.Lines) != 3 || s.Lines[0].Addr != "0x20000000" || s.Lines[1].Transitions != 2 {
		t.Fatalf("lines %v, want 3 entries sorted by address", s.Lines)
	}
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(a.Summary())
	if string(b1) != string(b2) {
		t.Fatal("summary marshalling is not deterministic")
	}
}
