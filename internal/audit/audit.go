// Package audit implements the online coherence invariant auditor.  It
// subscribes to the typed event stream of package event and checks, as the
// simulation runs:
//
//   - SWMR (single-writer/multiple-reader): a line with a writable copy
//     (Exclusive or Modified) has no other valid copy anywhere.
//   - Single dirty owner: at most one Modified/Owned copy of a line exists.
//   - Data-value invariant: a program read of a shared word returns the
//     value of the last program write (fed by CPU load/store hooks).
//   - Wrapper-reduction invariants: every state a core's cache reaches is in
//     the post-reduction allowed set computed by core.AllowedStates — no
//     Shared copies under force-deassert, no Exclusive under force-assert,
//     no S/O states anywhere when the effective protocol is MEI (with the
//     MSI-in-MEI exception, where MSI's S behaves as E).
//
// The auditor also accumulates per-line state timelines (transition counts)
// and the per-core observed reachable state set — the machine-checked form
// of the paper's reduction table.
package audit

import (
	"fmt"
	"sort"

	"hetcc/internal/coherence"
	"hetcc/internal/event"
)

// Check names used in Violation.Check.
const (
	CheckSWMR         = "swmr"
	CheckDirtyOwner   = "dirty-owner"
	CheckStaleRead    = "stale-read"
	CheckIllegalState = "illegal-state"
)

// Config configures an Auditor.
type Config struct {
	// Cores is the number of CPU cores (bus masters with caches).  Events
	// attributed to masters outside [0,Cores) — e.g. the DMA engine — are
	// counted but excluded from per-core tracking.
	Cores int
	// Allowed[i] is core i's post-reduction legal state set (Invalid is
	// always legal and need not be listed).  A nil entry disables the
	// reduction-invariant check for that core.
	Allowed [][]coherence.State
	// Shared filters the addresses subject to the data-value check (nil
	// checks every address).
	Shared func(addr uint32) bool
	// MaxViolations bounds the retained violation records (default 64); the
	// total count keeps incrementing past the cap.
	MaxViolations int
	// MaxLines bounds the per-line timeline map (default 4096).  State
	// changes on lines beyond the cap skip the cross-core checks and are
	// counted in Summary.UntrackedChanges.
	MaxLines int
}

// Violation is one observed invariant breach.
type Violation struct {
	Cycle  uint64 `json:"cycle"`
	Check  string `json:"check"`
	Core   int    `json:"core"`
	Addr   uint32 `json:"addr"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: core %d addr 0x%08x: %s", v.Cycle, v.Check, v.Core, v.Addr, v.Detail)
}

// LineSummary is one line's timeline digest.
type LineSummary struct {
	Addr        string `json:"addr"`
	Transitions uint64 `json:"transitions"`
}

// Summary is the auditor's end-of-run digest.  It marshals
// deterministically: maps have sorted keys under encoding/json, and slices
// are emitted in fixed (core index / address) order.
type Summary struct {
	// Events holds per-kind event counts (filled in by the platform from
	// the sink that fed this auditor).
	Events map[string]uint64 `json:"events_by_kind,omitempty"`
	// ViolationCount is the total number of breaches observed; Violations
	// retains the first MaxViolations of them.
	ViolationCount uint64      `json:"violation_count"`
	Violations     []Violation `json:"violations,omitempty"`
	// Reachable[i] is core i's observed reachable state set, sorted in
	// protocol order (I, S, E, M, O) — the measured counterpart of the
	// paper's reduction table.
	Reachable [][]string `json:"reachable_states"`
	// TransitionCount totals state transitions across all tracked lines;
	// Lines breaks them down per line, sorted by address.
	TransitionCount  uint64        `json:"transition_count"`
	Lines            []LineSummary `json:"lines,omitempty"`
	UntrackedChanges uint64        `json:"untracked_state_changes,omitempty"`
}

// lineState is a line's live per-core state vector and transition count.
type lineState struct {
	states      []coherence.State
	transitions uint64
}

// Auditor consumes the event stream and CPU access hooks and checks the
// invariants described in the package comment.  It is not safe for
// concurrent use (the simulation kernel is single-threaded).
type Auditor struct {
	cfg        Config
	allowed    []map[coherence.State]bool
	observed   []map[coherence.State]bool
	lines      map[uint32]*lineState
	expected   map[uint32]uint32
	violations []Violation
	total      uint64
	trans      uint64
	untracked  uint64
}

// New creates an auditor for cfg.
func New(cfg Config) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	if cfg.MaxLines <= 0 {
		cfg.MaxLines = 4096
	}
	a := &Auditor{
		cfg:      cfg,
		allowed:  make([]map[coherence.State]bool, cfg.Cores),
		observed: make([]map[coherence.State]bool, cfg.Cores),
		lines:    make(map[uint32]*lineState),
		expected: make(map[uint32]uint32),
	}
	for i := 0; i < cfg.Cores; i++ {
		a.observed[i] = map[coherence.State]bool{coherence.Invalid: true}
		if i < len(cfg.Allowed) && cfg.Allowed[i] != nil {
			set := map[coherence.State]bool{coherence.Invalid: true}
			for _, s := range cfg.Allowed[i] {
				set[s] = true
			}
			a.allowed[i] = set
		}
	}
	return a
}

// Handle implements event.Handler.  Only StateChange records drive the
// state-based checks; the other kinds are context carried by the stream.
func (a *Auditor) Handle(r *event.Record) {
	if r.Kind == event.StateChange {
		a.noteState(r)
	}
}

func (a *Auditor) noteState(r *event.Record) {
	core, addr, next := r.Core, r.Addr, r.New
	if core < 0 || core >= a.cfg.Cores {
		return
	}
	a.observed[core][next] = true
	if al := a.allowed[core]; al != nil && !al[next] {
		a.violate(r.Cycle, CheckIllegalState, core, addr,
			fmt.Sprintf("state %s outside the reduced protocol's allowed set", next))
	}
	ls := a.lines[addr]
	if ls == nil {
		if len(a.lines) >= a.cfg.MaxLines {
			a.untracked++
			return
		}
		ls = &lineState{states: make([]coherence.State, a.cfg.Cores)}
		a.lines[addr] = ls
	}
	ls.states[core] = next
	ls.transitions++
	a.trans++
	a.checkLine(r.Cycle, addr, ls)
}

// checkLine enforces SWMR and single-dirty-owner on the line's current
// per-core state vector.
func (a *Auditor) checkLine(cycle uint64, addr uint32, ls *lineState) {
	writer, dirty, valid := -1, -1, 0
	writers, dirties := 0, 0
	for c, st := range ls.states {
		if st == coherence.Invalid {
			continue
		}
		valid++
		if st == coherence.Exclusive || st == coherence.Modified {
			writers++
			writer = c
		}
		if st.Dirty() {
			dirties++
			dirty = c
		}
	}
	if writers > 1 {
		a.violate(cycle, CheckSWMR, writer, addr,
			fmt.Sprintf("%d writable (E/M) copies of one line", writers))
	} else if writers == 1 && valid > 1 {
		a.violate(cycle, CheckSWMR, writer, addr,
			fmt.Sprintf("writable copy (%s on core %d) coexists with %d other valid copies",
				ls.states[writer], writer, valid-1))
	}
	if dirties > 1 {
		a.violate(cycle, CheckDirtyOwner, dirty, addr,
			fmt.Sprintf("%d dirty (M/O) copies of one line", dirties))
	}
}

// OnStore feeds the data-value check; it has the cpu.Hooks signature so it
// can be chained with the golden-model checker.
func (a *Auditor) OnStore(core int, addr, val uint32, now uint64) {
	if a.inShared(addr) {
		a.expected[addr] = val
	}
}

// OnLoad checks a program read against the last program write (zero for a
// never-written word, matching zeroed memory).
func (a *Auditor) OnLoad(core int, addr, val uint32, now uint64) {
	if !a.inShared(addr) {
		return
	}
	if want := a.expected[addr]; want != val {
		a.violate(now, CheckStaleRead, core, addr, fmt.Sprintf("read %d, want %d", val, want))
	}
}

func (a *Auditor) inShared(addr uint32) bool {
	return a.cfg.Shared == nil || a.cfg.Shared(addr)
}

func (a *Auditor) violate(cycle uint64, check string, core int, addr uint32, detail string) {
	a.total++
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, Violation{Cycle: cycle, Check: check, Core: core, Addr: addr, Detail: detail})
	}
}

// Violations returns the retained violation records (first MaxViolations).
func (a *Auditor) Violations() []Violation { return a.violations }

// ViolationCount returns the total number of breaches observed.
func (a *Auditor) ViolationCount() uint64 { return a.total }

// ReachableStates returns core's observed state set sorted in protocol
// order (I < S < E < M < O).
func (a *Auditor) ReachableStates(core int) []coherence.State {
	if core < 0 || core >= a.cfg.Cores {
		return nil
	}
	out := make([]coherence.State, 0, len(a.observed[core]))
	for s := range a.observed[core] {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Summary builds the end-of-run digest (Events is left for the caller to
// fill from the sink).
func (a *Auditor) Summary() Summary {
	s := Summary{
		ViolationCount:   a.total,
		Violations:       a.violations,
		TransitionCount:  a.trans,
		UntrackedChanges: a.untracked,
	}
	for c := 0; c < a.cfg.Cores; c++ {
		states := a.ReachableStates(c)
		names := make([]string, len(states))
		for i, st := range states {
			names[i] = st.String()
		}
		s.Reachable = append(s.Reachable, names)
	}
	addrs := make([]uint32, 0, len(a.lines))
	for addr := range a.lines {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		s.Lines = append(s.Lines, LineSummary{
			Addr:        fmt.Sprintf("0x%08x", addr),
			Transitions: a.lines[addr].transitions,
		})
	}
	return s
}
