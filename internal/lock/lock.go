// Package lock implements the paper's lock mechanisms for critical-section
// protection on the heterogeneous platform:
//
//   - an uncached test-and-set lock variable in shared memory (the paper's
//     default: "Lock variables are not cached in all simulations");
//   - the 1-bit hardware lock register on the bus (the SoC Lock Cache of
//     paper ref. [17]), the second remedy for the hardware-deadlock problem;
//   - Lamport's Bakery algorithm over uncached plain loads/stores, the
//     pure-software remedy (paper ref. [18]);
//   - a *cacheable* test-and-set lock, used only to demonstrate the
//     hardware-deadlock problem of the paper's Figure 4.
//
// A lock acquisition is a small state machine (Stepper) that the CPU model
// drives one memory operation at a time, so spin traffic occupies the bus
// exactly as real polling would.
//
// The paper's microbenchmarks acquire the lock in strict alternation ("each
// task acquiring the lock alternatively"); Manager implements that with an
// uncached turn word consulted before the lock proper.
package lock

import "fmt"

// MemOpKind classifies a lock-protocol memory operation.
type MemOpKind uint8

const (
	// ReadUncached is a single uncached word load.
	ReadUncached MemOpKind = iota
	// WriteUncached is a single uncached word store.
	WriteUncached
	// RMWUncached is an atomic uncached test-and-set (returns the old
	// value, stores Val).
	RMWUncached
	// ReadCached is a load through the data cache (deadlock demo only).
	ReadCached
	// WriteCached is a store through the data cache (deadlock demo only).
	WriteCached
	// Spin is a pure delay of N CPU cycles (poll-loop back-off).
	Spin
)

// MemOp is one step of a lock protocol.
type MemOp struct {
	Kind MemOpKind
	Addr uint32
	Val  uint32
	N    int
}

// Stepper drives one acquisition or release.  The CPU calls Step, performs
// the returned operation, and calls Step again with the value an operation
// of read kind produced (0 for writes/spins).  done=true means the sequence
// has finished and op must not be executed.
type Stepper interface {
	Step(lastVal uint32) (op MemOp, done bool)
}

// Kind selects a lock mechanism.
type Kind uint8

const (
	// UncachedTAS is a test-and-set word in uncached shared memory.
	UncachedTAS Kind = iota
	// HardwareRegister is the 1-bit lock register bus device.
	HardwareRegister
	// Bakery is Lamport's bakery algorithm over uncached loads/stores.
	Bakery
	// CachedTAS is a test-and-set word in *cacheable* shared memory.  It
	// exists to reproduce the hardware-deadlock problem; real systems must
	// not use it on PF1/PF2 platforms.
	CachedTAS
	// Peterson is Peterson's two-task algorithm over uncached plain
	// loads/stores — like Bakery, a pure-software lock needing no atomic
	// primitive, but cheaper when exactly two processors contend (the
	// paper's dual-processor platforms).
	Peterson
)

// String names the lock kind.
func (k Kind) String() string {
	switch k {
	case UncachedTAS:
		return "uncached-tas"
	case HardwareRegister:
		return "hw-register"
	case Bakery:
		return "bakery"
	case CachedTAS:
		return "cached-tas"
	case Peterson:
		return "peterson"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Layout fixes where one lock's protocol variables live.  The platform
// supplies addresses in the appropriate regions (uncached lock area,
// hardware device aperture, cacheable shared area for CachedTAS).
type Layout struct {
	// LockWord is the test-and-set word (UncachedTAS, CachedTAS) or the
	// device register address (HardwareRegister).
	LockWord uint32
	// TurnWord is the uncached alternation word.
	TurnWord uint32
	// Choosing and Number are the per-task bakery arrays (uncached).
	Choosing []uint32
	Number   []uint32
}

// Config parameterises a Manager.
type Config struct {
	Kind  Kind
	Tasks int
	// Layouts holds one Layout per lock id.  Layout (singular) is a
	// convenience for the common single-lock case; exactly one of the two
	// may be set.
	Layouts []Layout
	Layout  Layout
	// Alternate enforces the paper's strict round-robin acquisition order
	// via the turn word.  It must be false when only one task contends
	// (the best-case scenario), or the turn never comes back around.
	Alternate bool
	// SpinDelay is the CPU-cycle back-off between polls (loop overhead).
	SpinDelay int
}

// Manager creates steppers for a particular lock configuration.
type Manager struct {
	cfg Config
}

// NewManager validates cfg and returns a manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Tasks <= 0 {
		return nil, fmt.Errorf("lock: need at least one task, got %d", cfg.Tasks)
	}
	if len(cfg.Layouts) == 0 {
		cfg.Layouts = []Layout{cfg.Layout}
	}
	// The hardware lock register is a single bit: the system can have only
	// one lock, as the paper notes.
	if cfg.Kind == HardwareRegister && len(cfg.Layouts) > 1 {
		return nil, fmt.Errorf("lock: the hardware lock register supports exactly one lock, got %d", len(cfg.Layouts))
	}
	if cfg.Kind == Bakery {
		for i, lay := range cfg.Layouts {
			if len(lay.Choosing) < cfg.Tasks || len(lay.Number) < cfg.Tasks {
				return nil, fmt.Errorf("lock %d: bakery arrays smaller than task count %d", i, cfg.Tasks)
			}
		}
	}
	if cfg.Kind == Peterson {
		if cfg.Tasks != 2 {
			return nil, fmt.Errorf("lock: Peterson's algorithm is for exactly two tasks, got %d", cfg.Tasks)
		}
		for i, lay := range cfg.Layouts {
			if len(lay.Choosing) < 2 {
				return nil, fmt.Errorf("lock %d: Peterson needs the two flag words (Layout.Choosing)", i)
			}
		}
	}
	if cfg.SpinDelay < 0 {
		return nil, fmt.Errorf("lock: negative spin delay")
	}
	return &Manager{cfg: cfg}, nil
}

// Locks returns the number of lock ids the manager serves.
func (m *Manager) Locks() int { return len(m.cfg.Layouts) }

// Kind returns the configured mechanism.
func (m *Manager) Kind() Kind { return m.cfg.Kind }

// Alternating reports whether strict alternation is enforced.
func (m *Manager) Alternating() bool { return m.cfg.Alternate }

func (m *Manager) layout(id int) *Layout {
	if id < 0 || id >= len(m.cfg.Layouts) {
		panic(fmt.Sprintf("lock: lock id %d out of range (have %d locks)", id, len(m.cfg.Layouts)))
	}
	return &m.cfg.Layouts[id]
}

// Acquire returns a stepper that obtains lock id for task.
func (m *Manager) Acquire(task, id int) Stepper {
	if task < 0 || task >= m.cfg.Tasks {
		panic(fmt.Sprintf("lock: task %d out of range", task))
	}
	lay := m.layout(id)
	switch m.cfg.Kind {
	case UncachedTAS:
		return &tasAcquire{cfg: &m.cfg, lay: lay, task: task, kindRead: ReadUncached, kindRMW: RMWUncached}
	case HardwareRegister:
		// The device aperture is uncached by construction; the RMW is a
		// single-cycle device access.
		return &tasAcquire{cfg: &m.cfg, lay: lay, task: task, kindRead: ReadUncached, kindRMW: RMWUncached}
	case CachedTAS:
		return &cachedTASAcquire{cfg: &m.cfg, lay: lay, task: task}
	case Bakery:
		return &bakeryAcquire{cfg: &m.cfg, lay: lay, task: task}
	case Peterson:
		return &petersonAcquire{cfg: &m.cfg, lay: lay, task: task}
	default:
		panic(fmt.Sprintf("lock: unknown kind %v", m.cfg.Kind))
	}
}

// Release returns a stepper that releases lock id held by task.
func (m *Manager) Release(task, id int) Stepper {
	lay := m.layout(id)
	switch m.cfg.Kind {
	case UncachedTAS, HardwareRegister:
		return &seqStepper{ops: m.releaseOps(lay, task, WriteUncached)}
	case CachedTAS:
		return &seqStepper{ops: m.releaseOps(lay, task, WriteCached)}
	case Bakery:
		ops := []MemOp{{Kind: WriteUncached, Addr: lay.Number[task], Val: 0}}
		if m.cfg.Alternate {
			ops = append(ops, MemOp{Kind: WriteUncached, Addr: lay.TurnWord, Val: uint32((task + 1) % m.cfg.Tasks)})
		}
		return &seqStepper{ops: ops}
	case Peterson:
		// Dropping the flag releases; Peterson's own victim word doubles
		// as turn hand-off, so Alternate needs no extra write.
		return &seqStepper{ops: []MemOp{{Kind: WriteUncached, Addr: lay.Choosing[task], Val: 0}}}
	default:
		panic(fmt.Sprintf("lock: unknown kind %v", m.cfg.Kind))
	}
}

func (m *Manager) releaseOps(lay *Layout, task int, wkind MemOpKind) []MemOp {
	ops := []MemOp{{Kind: wkind, Addr: lay.LockWord, Val: 0}}
	if m.cfg.Alternate {
		ops = append(ops, MemOp{Kind: WriteUncached, Addr: lay.TurnWord, Val: uint32((task + 1) % m.cfg.Tasks)})
	}
	return ops
}

// seqStepper emits a fixed op sequence.
type seqStepper struct {
	ops []MemOp
	i   int
}

func (s *seqStepper) Step(uint32) (MemOp, bool) {
	if s.i >= len(s.ops) {
		return MemOp{}, true
	}
	op := s.ops[s.i]
	s.i++
	return op, false
}

// tasAcquire: optionally wait for the turn word, then test-and-set in a
// poll loop.
type tasAcquire struct {
	cfg      *Config
	lay      *Layout
	task     int
	kindRead MemOpKind
	kindRMW  MemOpKind
	phase    int // 0 read turn, 1 eval turn, 2 rmw, 3 eval rmw, 4 spin, done
}

func (s *tasAcquire) Step(last uint32) (MemOp, bool) {
	for {
		switch s.phase {
		case 0:
			if !s.cfg.Alternate {
				s.phase = 2
				continue
			}
			s.phase = 1
			return MemOp{Kind: s.kindRead, Addr: s.lay.TurnWord}, false
		case 1:
			if last == uint32(s.task) {
				s.phase = 2
				continue
			}
			s.phase = 0
			if s.cfg.SpinDelay > 0 {
				return MemOp{Kind: Spin, N: s.cfg.SpinDelay}, false
			}
			continue
		case 2:
			s.phase = 3
			return MemOp{Kind: s.kindRMW, Addr: s.lay.LockWord, Val: 1}, false
		case 3:
			if last == 0 {
				return MemOp{}, true // lock was free: acquired
			}
			s.phase = 4
			continue
		case 4:
			// Poll until the lock reads free, then test-and-set again.
			s.phase = 5
			return MemOp{Kind: s.kindRead, Addr: s.lay.LockWord}, false
		case 5:
			if last == 0 {
				s.phase = 2
				continue
			}
			s.phase = 4
			if s.cfg.SpinDelay > 0 {
				return MemOp{Kind: Spin, N: s.cfg.SpinDelay}, false
			}
			continue
		default:
			return MemOp{}, true
		}
	}
}

// cachedTASAcquire is the non-atomic cached read/test/write sequence used
// only by the deadlock demonstration.
type cachedTASAcquire struct {
	cfg   *Config
	lay   *Layout
	task  int
	phase int
}

func (s *cachedTASAcquire) Step(last uint32) (MemOp, bool) {
	for {
		switch s.phase {
		case 0:
			if !s.cfg.Alternate {
				s.phase = 2
				continue
			}
			s.phase = 1
			return MemOp{Kind: ReadUncached, Addr: s.lay.TurnWord}, false
		case 1:
			if last == uint32(s.task) {
				s.phase = 2
				continue
			}
			s.phase = 0
			continue
		case 2:
			s.phase = 3
			return MemOp{Kind: ReadCached, Addr: s.lay.LockWord}, false
		case 3:
			if last == 0 {
				s.phase = 4
				continue
			}
			s.phase = 2
			if s.cfg.SpinDelay > 0 {
				s.phase = 6
				return MemOp{Kind: Spin, N: s.cfg.SpinDelay}, false
			}
			continue
		case 4:
			s.phase = 5
			return MemOp{Kind: WriteCached, Addr: s.lay.LockWord, Val: 1}, false
		case 5:
			return MemOp{}, true
		case 6:
			s.phase = 2
			continue
		default:
			return MemOp{}, true
		}
	}
}

// bakeryAcquire implements Lamport's bakery algorithm for task i:
//
//	choosing[i] = 1
//	number[i] = 1 + max(number[0..n-1])
//	choosing[i] = 0
//	for j != i:
//	    while choosing[j] != 0 {}
//	    while number[j] != 0 && (number[j], j) < (number[i], i) {}
type bakeryAcquire struct {
	cfg   *Config
	lay   *Layout
	task  int
	phase int
	j     int
	max   uint32
	mine  uint32
}

func (s *bakeryAcquire) Step(last uint32) (MemOp, bool) {
	L := s.lay
	for {
		switch s.phase {
		case 0: // optional alternation gate
			if !s.cfg.Alternate {
				s.phase = 2
				continue
			}
			s.phase = 1
			return MemOp{Kind: ReadUncached, Addr: L.TurnWord}, false
		case 1:
			if last == uint32(s.task) {
				s.phase = 2
				continue
			}
			s.phase = 0
			if s.cfg.SpinDelay > 0 {
				return MemOp{Kind: Spin, N: s.cfg.SpinDelay}, false
			}
			continue
		case 2: // choosing[i] = 1
			s.phase = 3
			return MemOp{Kind: WriteUncached, Addr: L.Choosing[s.task], Val: 1}, false
		case 3: // scan numbers for max
			s.j = 0
			s.max = 0
			s.phase = 4
			continue
		case 4:
			if s.j >= s.cfg.Tasks {
				s.mine = s.max + 1
				s.phase = 6
				continue
			}
			s.phase = 5
			return MemOp{Kind: ReadUncached, Addr: L.Number[s.j]}, false
		case 5:
			if last > s.max {
				s.max = last
			}
			s.j++
			s.phase = 4
			continue
		case 6: // number[i] = max+1
			s.phase = 7
			return MemOp{Kind: WriteUncached, Addr: L.Number[s.task], Val: s.mine}, false
		case 7: // choosing[i] = 0
			s.phase = 8
			return MemOp{Kind: WriteUncached, Addr: L.Choosing[s.task], Val: 0}, false
		case 8: // start pairwise waits
			s.j = 0
			s.phase = 9
			continue
		case 9:
			if s.j >= s.cfg.Tasks {
				return MemOp{}, true // acquired
			}
			if s.j == s.task {
				s.j++
				continue
			}
			s.phase = 10
			return MemOp{Kind: ReadUncached, Addr: L.Choosing[s.j]}, false
		case 10: // while choosing[j] != 0
			if last != 0 {
				s.phase = 9
				if s.cfg.SpinDelay > 0 {
					s.phase = 13
					return MemOp{Kind: Spin, N: s.cfg.SpinDelay}, false
				}
				continue
			}
			s.phase = 11
			return MemOp{Kind: ReadUncached, Addr: L.Number[s.j]}, false
		case 11: // while number[j] != 0 && (number[j], j) < (number[i], i)
			if last != 0 && (last < s.mine || (last == s.mine && s.j < s.task)) {
				s.phase = 12
				if s.cfg.SpinDelay > 0 {
					return MemOp{Kind: Spin, N: s.cfg.SpinDelay}, false
				}
				continue
			}
			s.j++
			s.phase = 9
			continue
		case 12:
			s.phase = 11
			return MemOp{Kind: ReadUncached, Addr: L.Number[s.j]}, false
		case 13:
			s.phase = 9
			continue
		default:
			return MemOp{}, true
		}
	}
}

// petersonAcquire implements Peterson's algorithm for task i of two:
//
//	flag[i] = 1
//	victim = i
//	while flag[1-i] != 0 && victim == i {}
//
// The flag words live in Layout.Choosing; the victim word in
// Layout.Number[0] (both uncached).
type petersonAcquire struct {
	cfg   *Config
	lay   *Layout
	task  int
	phase int
}

func (s *petersonAcquire) Step(last uint32) (MemOp, bool) {
	other := 1 - s.task
	for {
		switch s.phase {
		case 0: // flag[i] = 1
			s.phase = 1
			return MemOp{Kind: WriteUncached, Addr: s.lay.Choosing[s.task], Val: 1}, false
		case 1: // victim = i
			s.phase = 2
			return MemOp{Kind: WriteUncached, Addr: s.lay.Number[0], Val: uint32(s.task)}, false
		case 2: // read flag[other]
			s.phase = 3
			return MemOp{Kind: ReadUncached, Addr: s.lay.Choosing[other]}, false
		case 3:
			if last == 0 {
				return MemOp{}, true // other not contending: acquired
			}
			s.phase = 4
			return MemOp{Kind: ReadUncached, Addr: s.lay.Number[0]}, false
		case 4:
			if last != uint32(s.task) {
				return MemOp{}, true // other is the victim: acquired
			}
			s.phase = 2
			if s.cfg.SpinDelay > 0 {
				s.phase = 5
				return MemOp{Kind: Spin, N: s.cfg.SpinDelay}, false
			}
			continue
		case 5:
			s.phase = 2
			continue
		default:
			return MemOp{}, true
		}
	}
}
