package lock

import (
	"testing"

	"hetcc/internal/bus"
)

func TestRegisterTestAndSet(t *testing.T) {
	r := NewRegister(0x3000_0000)
	if !r.Contains(0x3000_0000) || r.Contains(0x3000_0004) {
		t.Fatal("address decode wrong")
	}
	lat, res := r.Access(&bus.Transaction{Kind: bus.RMWWord, Addr: r.Base(), Val: 1})
	if lat != 1 || res.Val != 0 {
		t.Fatalf("first TAS: lat=%d old=%d", lat, res.Val)
	}
	_, res = r.Access(&bus.Transaction{Kind: bus.RMWWord, Addr: r.Base(), Val: 1})
	if res.Val != 1 {
		t.Fatalf("second TAS old=%d, want 1 (rejected)", res.Val)
	}
	if r.Sets != 1 || r.Rejects != 1 {
		t.Fatalf("counters sets=%d rejects=%d", r.Sets, r.Rejects)
	}
}

func TestRegisterReleaseViaWrite(t *testing.T) {
	r := NewRegister(0x3000_0000)
	r.Access(&bus.Transaction{Kind: bus.RMWWord, Addr: r.Base(), Val: 1})
	r.Access(&bus.Transaction{Kind: bus.WriteWord, Addr: r.Base(), Val: 0})
	if r.Value() != 0 || r.Clears != 1 {
		t.Fatalf("release failed: bit=%d clears=%d", r.Value(), r.Clears)
	}
	// Lock is free again.
	_, res := r.Access(&bus.Transaction{Kind: bus.RMWWord, Addr: r.Base(), Val: 1})
	if res.Val != 0 {
		t.Fatal("re-acquire after release failed")
	}
}

func TestRegisterRead(t *testing.T) {
	r := NewRegister(0x3000_0000)
	_, res := r.Access(&bus.Transaction{Kind: bus.ReadWord, Addr: r.Base()})
	if res.Val != 0 {
		t.Fatalf("fresh register reads %d", res.Val)
	}
	r.Access(&bus.Transaction{Kind: bus.WriteWord, Addr: r.Base(), Val: 1})
	_, res = r.Access(&bus.Transaction{Kind: bus.ReadWord, Addr: r.Base()})
	if res.Val != 1 {
		t.Fatalf("held register reads %d", res.Val)
	}
}

func TestRegisterRejectsLineTransactions(t *testing.T) {
	r := NewRegister(0x3000_0000)
	defer func() {
		if recover() == nil {
			t.Fatal("line transaction accepted")
		}
	}()
	r.Access(&bus.Transaction{Kind: bus.ReadLine, Addr: r.Base(), Words: 8})
}
