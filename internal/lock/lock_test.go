package lock

import (
	"testing"
	"testing/quick"

	"hetcc/internal/sim"
)

func layout2() Layout {
	return Layout{
		LockWord: 0x2000_0000,
		TurnWord: 0x2000_0004,
		Choosing: []uint32{0x2000_0040, 0x2000_0044},
		Number:   []uint32{0x2000_0080, 0x2000_0084},
	}
}

func mgr(t *testing.T, kind Kind, tasks int, alternate bool) *Manager {
	t.Helper()
	lay := layout2()
	if tasks > 2 {
		lay.Choosing = nil
		lay.Number = nil
		for i := 0; i < tasks; i++ {
			lay.Choosing = append(lay.Choosing, 0x2000_0040+uint32(4*i))
			lay.Number = append(lay.Number, 0x2000_0100+uint32(4*i))
		}
	}
	m, err := NewManager(Config{Kind: kind, Tasks: tasks, Layout: lay, Alternate: alternate})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// interp is a sequential stepper interpreter over a word memory: it runs
// one stepper to completion, applying each op atomically.
type interp struct {
	mem map[uint32]uint32
}

func newInterp() *interp { return &interp{mem: make(map[uint32]uint32)} }

func (in *interp) exec(op MemOp) uint32 {
	switch op.Kind {
	case ReadUncached, ReadCached:
		return in.mem[op.Addr]
	case WriteUncached, WriteCached:
		in.mem[op.Addr] = op.Val
		return 0
	case RMWUncached:
		old := in.mem[op.Addr]
		in.mem[op.Addr] = op.Val
		return old
	case Spin:
		return 0
	default:
		panic("unknown op")
	}
}

// runToCompletion drives a stepper until done, with a step bound.
func (in *interp) runToCompletion(t *testing.T, s Stepper, bound int) int {
	t.Helper()
	last := uint32(0)
	for i := 0; i < bound; i++ {
		op, done := s.Step(last)
		if done {
			return i
		}
		last = in.exec(op)
	}
	t.Fatal("stepper did not finish within bound")
	return 0
}

func TestUncachedTASAcquireRelease(t *testing.T) {
	m := mgr(t, UncachedTAS, 2, false)
	in := newInterp()
	in.runToCompletion(t, m.Acquire(0, 0), 100)
	if in.mem[layout2().LockWord] != 1 {
		t.Fatal("lock word not set")
	}
	in.runToCompletion(t, m.Release(0, 0), 100)
	if in.mem[layout2().LockWord] != 0 {
		t.Fatal("lock word not cleared")
	}
}

func TestUncachedTASSpinsWhileHeld(t *testing.T) {
	m := mgr(t, UncachedTAS, 2, false)
	in := newInterp()
	in.mem[layout2().LockWord] = 1 // held by someone
	s := m.Acquire(0, 0)
	last := uint32(0)
	for i := 0; i < 50; i++ {
		op, done := s.Step(last)
		if done {
			t.Fatal("acquired a held lock")
		}
		last = in.exec(op)
	}
	// Release the lock: the stepper must now succeed.
	in.mem[layout2().LockWord] = 0
	in.runToCompletion(t, s, 100)
	if in.mem[layout2().LockWord] != 1 {
		t.Fatal("lock not taken after release")
	}
}

func TestAlternationGatesAcquisition(t *testing.T) {
	m := mgr(t, UncachedTAS, 2, true)
	in := newInterp()
	// Turn is 0: task 1 must wait, task 0 proceeds.
	s1 := m.Acquire(1, 0)
	last := uint32(0)
	for i := 0; i < 50; i++ {
		op, done := s1.Step(last)
		if done {
			t.Fatal("task 1 acquired out of turn")
		}
		last = in.exec(op)
	}
	in.runToCompletion(t, m.Acquire(0, 0), 100)
	in.runToCompletion(t, m.Release(0, 0), 100)
	if in.mem[layout2().TurnWord] != 1 {
		t.Fatal("release did not pass the turn")
	}
	in.runToCompletion(t, s1, 200)
}

func TestCachedTASUsesCachedOps(t *testing.T) {
	m := mgr(t, CachedTAS, 2, false)
	s := m.Acquire(0, 0)
	op, done := s.Step(0)
	if done || op.Kind != ReadCached {
		t.Fatalf("first op %v done=%v, want cached read", op.Kind, done)
	}
	in := newInterp()
	in.runToCompletion(t, s, 100)
	rel := m.Release(0, 0)
	op, _ = rel.Step(0)
	if op.Kind != WriteCached {
		t.Fatalf("release op %v, want cached write", op.Kind)
	}
}

func TestBakeryBasicAcquireRelease(t *testing.T) {
	m := mgr(t, Bakery, 2, false)
	in := newInterp()
	in.runToCompletion(t, m.Acquire(0, 0), 1000)
	lay := layout2()
	if in.mem[lay.Number[0]] == 0 {
		t.Fatal("number not taken")
	}
	if in.mem[lay.Choosing[0]] != 0 {
		t.Fatal("choosing still set after acquisition")
	}
	in.runToCompletion(t, m.Release(0, 0), 100)
	if in.mem[lay.Number[0]] != 0 {
		t.Fatal("number not cleared on release")
	}
}

func TestBakeryBlocksOnSmallerNumber(t *testing.T) {
	m := mgr(t, Bakery, 2, false)
	in := newInterp()
	lay := layout2()
	in.mem[lay.Number[1]] = 1 // task 1 holds ticket 1
	s := m.Acquire(0, 0)      // task 0 will draw ticket 2 and must wait
	last := uint32(0)
	for i := 0; i < 200; i++ {
		op, done := s.Step(last)
		if done {
			t.Fatal("task 0 entered while task 1 held a smaller ticket")
		}
		last = in.exec(op)
	}
	in.mem[lay.Number[1]] = 0 // task 1 leaves
	in.runToCompletion(t, s, 1000)
}

func TestBakeryTieBreaksByTaskID(t *testing.T) {
	m := mgr(t, Bakery, 2, false)
	in := newInterp()
	lay := layout2()
	// Both hold ticket 1: the lower task id wins the tie.
	in.mem[lay.Number[0]] = 1
	s := m.Acquire(1, 0)
	// Force task 1's ticket to also be 1 by having it see number[0]=0 at
	// scan time... instead simply verify task 1 with equal ticket defers:
	// pre-set its scan result by keeping number[0]=1; task 1 draws 2 and
	// waits, which is the same ordering property.
	last := uint32(0)
	blocked := true
	for i := 0; i < 300; i++ {
		op, done := s.Step(last)
		if done {
			blocked = false
			break
		}
		last = in.exec(op)
	}
	if !blocked {
		t.Fatal("task 1 did not defer to task 0")
	}
}

// TestBakeryMutualExclusionInterleaved: run two bakery steppers with a
// pseudo-random interleave and check both never hold the lock at once.
func TestBakeryMutualExclusionInterleaved(t *testing.T) {
	f := func(seed uint64) bool {
		m := mgr(t, Bakery, 2, false)
		in := newInterp()
		rng := sim.NewRNG(seed)
		type taskState struct {
			s         Stepper
			last      uint32
			csLeft    int // >0: inside the critical section
			releasing bool
			entries   int
		}
		tasks := []*taskState{{s: m.Acquire(0, 0)}, {s: m.Acquire(1, 0)}}
		for step := 0; step < 10000; step++ {
			i := rng.Intn(2)
			ts := tasks[i]
			if ts.csLeft > 0 {
				// Spend a scheduled turn inside the critical section;
				// start releasing when it ends.
				ts.csLeft--
				if ts.csLeft == 0 {
					ts.s = m.Release(i, 0)
					ts.releasing = true
					ts.last = 0
				}
				continue
			}
			if ts.s == nil {
				continue
			}
			op, done := ts.s.Step(ts.last)
			if done {
				if ts.releasing {
					ts.releasing = false
					ts.entries++
					if ts.entries < 3 {
						ts.s = m.Acquire(i, 0)
					} else {
						ts.s = nil
					}
				} else {
					// Acquired: mutual exclusion requires the other task
					// to be outside its critical section.
					if tasks[1-i].csLeft > 0 {
						return false
					}
					ts.csLeft = 5
				}
				ts.last = 0
				continue
			}
			ts.last = in.exec(op)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBakeryThreeTasks(t *testing.T) {
	m := mgr(t, Bakery, 3, false)
	in := newInterp()
	// Sequential acquire/release for each task must always complete.
	for task := 0; task < 3; task++ {
		in.runToCompletion(t, m.Acquire(task, 0), 2000)
		in.runToCompletion(t, m.Release(task, 0), 100)
	}
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{Kind: UncachedTAS, Tasks: 0}); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := NewManager(Config{Kind: Bakery, Tasks: 3, Layout: layout2()}); err == nil {
		t.Error("undersized bakery arrays accepted")
	}
	if _, err := NewManager(Config{Kind: UncachedTAS, Tasks: 1, SpinDelay: -1}); err == nil {
		t.Error("negative spin delay accepted")
	}
}

func TestAcquireOutOfRangePanics(t *testing.T) {
	m := mgr(t, UncachedTAS, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range task")
		}
	}()
	m.Acquire(5, 0)
}

func TestSpinDelayEmitted(t *testing.T) {
	lay := layout2()
	m, err := NewManager(Config{Kind: UncachedTAS, Tasks: 2, Layout: lay, SpinDelay: 7})
	if err != nil {
		t.Fatal(err)
	}
	in := newInterp()
	in.mem[lay.LockWord] = 1
	s := m.Acquire(0, 0)
	sawSpin := false
	last := uint32(0)
	for i := 0; i < 20; i++ {
		op, done := s.Step(last)
		if done {
			break
		}
		if op.Kind == Spin {
			if op.N != 7 {
				t.Fatalf("spin %d cycles, want 7", op.N)
			}
			sawSpin = true
		}
		last = in.exec(op)
	}
	if !sawSpin {
		t.Fatal("no spin back-off emitted while lock held")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{UncachedTAS: "uncached-tas", HardwareRegister: "hw-register", Bakery: "bakery", CachedTAS: "cached-tas"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d renders %q, want %q", k, k.String(), w)
		}
	}
}

func TestMultipleLocksAreIndependent(t *testing.T) {
	lay0, lay1 := layout2(), layout2()
	lay1.LockWord += 0x100
	lay1.TurnWord += 0x100
	m, err := NewManager(Config{Kind: UncachedTAS, Tasks: 2, Layouts: []Layout{lay0, lay1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Locks() != 2 {
		t.Fatalf("locks %d", m.Locks())
	}
	in := newInterp()
	in.runToCompletion(t, m.Acquire(0, 0), 100)
	// Lock 1 is still free even though lock 0 is held.
	in.runToCompletion(t, m.Acquire(1, 1), 100)
	if in.mem[lay0.LockWord] != 1 || in.mem[lay1.LockWord] != 1 {
		t.Fatal("lock words wrong")
	}
	in.runToCompletion(t, m.Release(0, 0), 100)
	if in.mem[lay0.LockWord] != 0 || in.mem[lay1.LockWord] != 1 {
		t.Fatal("release leaked across locks")
	}
}

func TestHardwareRegisterSingleLockOnly(t *testing.T) {
	lay := layout2()
	if _, err := NewManager(Config{Kind: HardwareRegister, Tasks: 2, Layouts: []Layout{lay, lay}}); err == nil {
		t.Fatal("two hardware-register locks accepted (the register is 1 bit)")
	}
}

func TestLockIDOutOfRangePanics(t *testing.T) {
	m := mgr(t, UncachedTAS, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Acquire(0, 3)
}

func petersonMgr(t *testing.T, spin int) *Manager {
	t.Helper()
	lay := Layout{
		Choosing: []uint32{0x2000_0040, 0x2000_0044},
		Number:   []uint32{0x2000_0048},
	}
	m, err := NewManager(Config{Kind: Peterson, Tasks: 2, Layout: lay, SpinDelay: spin})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPetersonUncontendedAcquire(t *testing.T) {
	m := petersonMgr(t, 0)
	in := newInterp()
	in.runToCompletion(t, m.Acquire(0, 0), 100)
	if in.mem[0x2000_0040] != 1 {
		t.Fatal("flag not raised")
	}
	in.runToCompletion(t, m.Release(0, 0), 100)
	if in.mem[0x2000_0040] != 0 {
		t.Fatal("flag not dropped")
	}
}

func TestPetersonBlocksWhileOtherHolds(t *testing.T) {
	m := petersonMgr(t, 0)
	in := newInterp()
	in.runToCompletion(t, m.Acquire(0, 0), 100)
	s1 := m.Acquire(1, 0)
	last := uint32(0)
	for i := 0; i < 100; i++ {
		op, done := s1.Step(last)
		if done {
			t.Fatal("task 1 entered while task 0 held the lock")
		}
		last = in.exec(op)
	}
	in.runToCompletion(t, m.Release(0, 0), 100)
	in.runToCompletion(t, s1, 200)
}

func TestPetersonRequiresTwoTasks(t *testing.T) {
	lay := Layout{Choosing: []uint32{0x40, 0x44}, Number: []uint32{0x48}}
	if _, err := NewManager(Config{Kind: Peterson, Tasks: 3, Layout: lay}); err == nil {
		t.Fatal("three-task Peterson accepted")
	}
	if _, err := NewManager(Config{Kind: Peterson, Tasks: 2, Layout: Layout{}}); err == nil {
		t.Fatal("missing flag words accepted")
	}
}

// TestPetersonMutualExclusionInterleaved mirrors the bakery property test.
func TestPetersonMutualExclusionInterleaved(t *testing.T) {
	f := func(seed uint64) bool {
		m := petersonMgr(t, 0)
		in := newInterp()
		rng := sim.NewRNG(seed)
		type taskState struct {
			s         Stepper
			last      uint32
			csLeft    int
			releasing bool
			entries   int
		}
		tasks := []*taskState{{s: m.Acquire(0, 0)}, {s: m.Acquire(1, 0)}}
		for step := 0; step < 10000; step++ {
			i := rng.Intn(2)
			ts := tasks[i]
			if ts.csLeft > 0 {
				ts.csLeft--
				if ts.csLeft == 0 {
					ts.s = m.Release(i, 0)
					ts.releasing = true
					ts.last = 0
				}
				continue
			}
			if ts.s == nil {
				continue
			}
			op, done := ts.s.Step(ts.last)
			if done {
				if ts.releasing {
					ts.releasing = false
					ts.entries++
					if ts.entries < 4 {
						ts.s = m.Acquire(i, 0)
					} else {
						ts.s = nil
					}
				} else {
					if tasks[1-i].csLeft > 0 {
						return false
					}
					ts.csLeft = 5
				}
				ts.last = 0
				continue
			}
			ts.last = in.exec(op)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
