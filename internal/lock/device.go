package lock

import (
	"fmt"

	"hetcc/internal/bus"
)

// Register is the paper's second hardware-deadlock remedy: a 1-bit hardware
// lock register sitting directly on the shared bus (the SoC Lock Cache of
// paper ref. [17]).  Because the lock state lives in the device — never in
// any cache — a lock access can never snoop-hit a processor's cache, so the
// deadlock condition cannot arise.  The paper notes the hardware holds a
// single 1-bit register, hence "the system can have only one lock"; the
// simulator follows suit.
type Register struct {
	base uint32
	bit  uint32

	// Sets counts successful test-and-set acquisitions, Clears releases,
	// Rejects failed test-and-sets.
	Sets    uint64
	Clears  uint64
	Rejects uint64
}

var _ bus.Device = (*Register)(nil)

// NewRegister places the lock register at byte address base.
func NewRegister(base uint32) *Register {
	return &Register{base: base}
}

// Base returns the register's bus address.
func (r *Register) Base() uint32 { return r.base }

// Value returns the current lock bit (tests).
func (r *Register) Value() uint32 { return r.bit }

// Contains implements bus.Device.
func (r *Register) Contains(addr uint32) bool { return addr == r.base }

// Access implements bus.Device: single-cycle test-and-set semantics.
func (r *Register) Access(t *bus.Transaction) (int, bus.Result) {
	switch t.Kind {
	case bus.ReadWord:
		return 1, bus.Result{Val: r.bit}
	case bus.WriteWord:
		if t.Val == 0 {
			r.Clears++
			r.bit = 0
		} else {
			r.bit = 1
		}
		return 1, bus.Result{}
	case bus.RMWWord:
		old := r.bit
		if old == 0 && t.Val != 0 {
			r.Sets++
			r.bit = 1
		} else if old != 0 && t.Val != 0 {
			r.Rejects++
		} else {
			r.bit = t.Val & 1
		}
		return 1, bus.Result{Val: old}
	default:
		panic(fmt.Sprintf("lock: register does not support %v transactions", t.Kind))
	}
}
