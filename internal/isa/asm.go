package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual program format and returns the expanded
// micro-op program.  The syntax, one statement per line:
//
//	ld  ADDR            ; load word
//	st  ADDR, VAL       ; store word
//	delay N             ; stall N CPU cycles
//	lock N              ; acquire critical-section lock N
//	unlock N            ; release lock N
//	clean ADDR          ; write back + invalidate the line holding ADDR
//	inval ADDR          ; invalidate the line holding ADDR
//	waiteq ADDR, VAL    ; poll ADDR until it reads VAL
//	nop
//	halt                ; optional; appended automatically if missing
//
//	.repeat N           ; expand the enclosed block N times
//	  ...
//	.end
//
// Numbers are Go literals (0x..., decimal).  Inside a .repeat block the
// symbol @ in any operand expands to the current iteration index (0-based),
// so `st 0x10000000+@*4, @` strides across words.  Simple +, * arithmetic
// (left to right, no precedence, no parentheses) is supported in operands.
// Comments run from ';' or '#' to end of line.  Blank lines are ignored.
func Assemble(src string) (Program, error) {
	lines := strings.Split(src, "\n")
	prog, rest, err := assembleBlock(lines, 0, -1)
	if err != nil {
		return nil, err
	}
	if rest != len(lines) {
		return nil, fmt.Errorf("isa: line %d: unexpected .end", rest+1)
	}
	if len(prog) == 0 || prog[len(prog)-1].Kind != Halt {
		prog = append(prog, Op{Kind: Halt})
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// assembleBlock assembles lines[start:] until a matching ".end" (or EOF for
// the top level), expanding nested .repeat blocks with iteration index it.
// It returns the ops and the index of the line after the block.
func assembleBlock(lines []string, start, it int) (Program, int, error) {
	var out Program
	i := start
	for i < len(lines) {
		raw := lines[i]
		stmt := stripComment(raw)
		if stmt == "" {
			i++
			continue
		}
		fields := strings.Fields(stmt)
		mnemonic := strings.ToLower(fields[0])
		switch mnemonic {
		case ".end":
			return out, i, nil
		case ".repeat":
			if len(fields) != 2 {
				return nil, 0, fmt.Errorf("isa: line %d: .repeat needs a count", i+1)
			}
			n, err := evalOperand(fields[1], it)
			if err != nil {
				return nil, 0, fmt.Errorf("isa: line %d: %v", i+1, err)
			}
			if n < 0 || n > 1<<20 {
				return nil, 0, fmt.Errorf("isa: line %d: .repeat count %d out of range", i+1, n)
			}
			var end int
			for k := int64(0); k < n; k++ {
				body, e, err := assembleBlock(lines, i+1, int(k))
				if err != nil {
					return nil, 0, err
				}
				if e >= len(lines) {
					return nil, 0, fmt.Errorf("isa: line %d: .repeat without .end", i+1)
				}
				end = e
				out = append(out, body...)
			}
			if n == 0 {
				// Still need to locate the matching .end to skip the body.
				body, e, err := assembleBlock(lines, i+1, 0)
				if err != nil {
					return nil, 0, err
				}
				_ = body
				if e >= len(lines) {
					return nil, 0, fmt.Errorf("isa: line %d: .repeat without .end", i+1)
				}
				end = e
			}
			i = end + 1
		default:
			op, err := parseStatement(stmt, it)
			if err != nil {
				return nil, 0, fmt.Errorf("isa: line %d: %v", i+1, err)
			}
			out = append(out, op)
			i++
		}
	}
	return out, i, nil
}

func stripComment(line string) string {
	if idx := strings.IndexAny(line, ";#"); idx >= 0 {
		line = line[:idx]
	}
	return strings.TrimSpace(line)
}

func parseStatement(stmt string, it int) (Op, error) {
	fields := strings.Fields(stmt)
	mnemonic := strings.ToLower(fields[0])
	rest := strings.TrimSpace(strings.TrimPrefix(stmt, fields[0]))
	var args []string
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operand(s), got %d", mnemonic, n, len(args))
		}
		return nil
	}
	arg := func(n int) (int64, error) { return evalOperand(args[n], it) }

	switch mnemonic {
	case "nop":
		if err := need(0); err != nil {
			return Op{}, err
		}
		return Op{Kind: Nop}, nil
	case "halt":
		if err := need(0); err != nil {
			return Op{}, err
		}
		return Op{Kind: Halt}, nil
	case "ld":
		if err := need(1); err != nil {
			return Op{}, err
		}
		a, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Read, Addr: uint32(a)}, nil
	case "st":
		if err := need(2); err != nil {
			return Op{}, err
		}
		a, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		v, err := arg(1)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Write, Addr: uint32(a), Val: uint32(v)}, nil
	case "waiteq":
		if err := need(2); err != nil {
			return Op{}, err
		}
		a, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		v, err := arg(1)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: WaitEq, Addr: uint32(a), Val: uint32(v)}, nil
	case "delay":
		if err := need(1); err != nil {
			return Op{}, err
		}
		n, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Delay, N: int(n)}, nil
	case "lock":
		if err := need(1); err != nil {
			return Op{}, err
		}
		n, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: LockAcquire, N: int(n)}, nil
	case "unlock":
		if err := need(1); err != nil {
			return Op{}, err
		}
		n, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: LockRelease, N: int(n)}, nil
	case "clean":
		if err := need(1); err != nil {
			return Op{}, err
		}
		a, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: CleanLine, Addr: uint32(a)}, nil
	case "inval":
		if err := need(1); err != nil {
			return Op{}, err
		}
		a, err := arg(0)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: InvalLine, Addr: uint32(a)}, nil
	default:
		return Op{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
}

// evalOperand evaluates a left-to-right +/* expression of numbers and the
// iteration symbol @.
func evalOperand(expr string, it int) (int64, error) {
	expr = strings.ReplaceAll(expr, " ", "")
	if expr == "" {
		return 0, fmt.Errorf("empty operand")
	}
	// Tokenize into numbers and operators.
	var total, cur int64
	var pendingAdd int64
	haveCur := false
	lastWasOp := false
	op := byte(0)
	apply := func(v int64) {
		lastWasOp = false
		if !haveCur {
			cur = v
			haveCur = true
			return
		}
		switch op {
		case '+':
			pendingAdd += cur
			cur = v
		case '*':
			cur *= v
		}
	}
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == '@':
			if it < 0 {
				return 0, fmt.Errorf("@ used outside .repeat")
			}
			apply(int64(it))
			i++
		case c == '+' || c == '*':
			if !haveCur || lastWasOp {
				return 0, fmt.Errorf("operator %q with no left operand", c)
			}
			op = c
			lastWasOp = true
			i++
		default:
			j := i
			for j < len(expr) && expr[j] != '+' && expr[j] != '*' && expr[j] != '@' {
				j++
			}
			v, err := strconv.ParseInt(expr[i:j], 0, 64)
			if err != nil {
				return 0, fmt.Errorf("bad number %q", expr[i:j])
			}
			apply(v)
			i = j
		}
	}
	if lastWasOp {
		return 0, fmt.Errorf("expression %q ends with an operator", expr)
	}
	total = pendingAdd + cur
	return total, nil
}

// Format renders a program back to assembly text (one op per line).
func Format(p Program) string {
	var sb strings.Builder
	for _, op := range p {
		sb.WriteString(op.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
