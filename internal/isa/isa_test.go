package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderProducesValidProgram(t *testing.T) {
	p := NewBuilder().
		Read(0x100).
		Write(0x104, 7).
		Delay(3).
		Lock(0).
		Clean(0x100).
		Inval(0x120).
		Unlock(0).
		Halt()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 {
		t.Fatalf("len %d, want 8", len(p))
	}
	if p[len(p)-1].Kind != Halt {
		t.Fatal("missing halt")
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	var p Program
	if err := p.Validate(); err == nil {
		t.Fatal("empty program validated")
	}
}

func TestValidateRejectsMissingHalt(t *testing.T) {
	p := Program{{Kind: Read, Addr: 4}}
	if err := p.Validate(); err == nil {
		t.Fatal("halt-less program validated")
	}
}

func TestValidateRejectsMidHalt(t *testing.T) {
	p := Program{{Kind: Halt}, {Kind: Read}, {Kind: Halt}}
	if err := p.Validate(); err == nil {
		t.Fatal("mid-program halt validated")
	}
}

func TestValidateRejectsNegativeCount(t *testing.T) {
	p := Program{{Kind: Delay, N: -1}, {Kind: Halt}}
	if err := p.Validate(); err == nil {
		t.Fatal("negative delay validated")
	}
}

func TestReadWriteCounts(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 5; i++ {
		b.Read(uint32(i * 4))
	}
	for i := 0; i < 3; i++ {
		b.Write(uint32(i*4), uint32(i))
	}
	p := b.Halt()
	if p.Reads() != 5 || p.Writes() != 3 {
		t.Fatalf("reads=%d writes=%d, want 5/3", p.Reads(), p.Writes())
	}
}

func TestOpStrings(t *testing.T) {
	cases := map[string]Op{
		"ld 0x00000100":    {Kind: Read, Addr: 0x100},
		"st 0x00000104, 9": {Kind: Write, Addr: 0x104, Val: 9},
		"delay 4":          {Kind: Delay, N: 4},
		"lock 0":           {Kind: LockAcquire},
		"unlock 1":         {Kind: LockRelease, N: 1},
		"clean 0x00000100": {Kind: CleanLine, Addr: 0x100},
		"inval 0x00000100": {Kind: InvalLine, Addr: 0x100},
		"halt":             {Kind: Halt},
		"nop":              {Kind: Nop},
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("op %v renders %q, want %q", op.Kind, got, want)
		}
	}
}

func TestKindStringUnknown(t *testing.T) {
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind string %q", got)
	}
}

// TestBuilderAlwaysValid: any builder call sequence ending in Halt yields a
// program that validates.
func TestBuilderAlwaysValid(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBuilder()
		for _, o := range ops {
			switch o % 7 {
			case 0:
				b.Read(uint32(o) * 4)
			case 1:
				b.Write(uint32(o)*4, uint32(o))
			case 2:
				b.Delay(int(o % 10))
			case 3:
				b.Lock(0)
			case 4:
				b.Unlock(0)
			case 5:
				b.Clean(uint32(o) * 32)
			case 6:
				b.Inval(uint32(o) * 32)
			}
		}
		return b.Halt().Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitEqBuilderAndString(t *testing.T) {
	p := isaWait()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p[0].Kind != WaitEq || p[0].Addr != 0x100 || p[0].Val != 7 {
		t.Fatalf("op %+v", p[0])
	}
	if got := p[0].String(); got != "waiteq 0x00000100, 7" {
		t.Fatalf("string %q", got)
	}
}

func isaWait() Program {
	return NewBuilder().WaitEq(0x100, 7).Halt()
}
