// Package isa defines the micro-operation instruction set executed by the
// simulated processor cores.
//
// The paper's microbenchmarks are small assembly tasks ("one task runs on
// each processor ... accesses a number of cache lines and modifies them for
// exec_time iterations").  We represent each task as a flat slice of micro-
// ops; the workload generator unrolls loops so the core interpreter stays a
// simple linear fetch-execute machine with no branch state.
package isa

import "fmt"

// Kind enumerates the micro-operation kinds.
type Kind int

const (
	// Nop consumes one CPU cycle.
	Nop Kind = iota
	// Read loads the word at Addr.
	Read
	// Write stores Val to the word at Addr.
	Write
	// Delay stalls the core for N CPU cycles (models computation).
	Delay
	// LockAcquire blocks until the task owns critical-section lock N.
	LockAcquire
	// LockRelease releases critical-section lock N.
	LockRelease
	// CleanLine writes back (if dirty) and invalidates the cache line
	// containing Addr.  This is the software solution's explicit "drain".
	CleanLine
	// InvalLine invalidates the cache line containing Addr without writing
	// it back.
	InvalLine
	// Halt retires the program; the core goes idle.
	Halt
	// WaitEq polls the word at Addr until it equals Val (device-completion
	// polling, e.g. the DMA STATUS register).
	WaitEq
)

// String returns the mnemonic for k.
func (k Kind) String() string {
	switch k {
	case Nop:
		return "nop"
	case Read:
		return "ld"
	case Write:
		return "st"
	case Delay:
		return "delay"
	case LockAcquire:
		return "lock"
	case LockRelease:
		return "unlock"
	case CleanLine:
		return "clean"
	case InvalLine:
		return "inval"
	case Halt:
		return "halt"
	case WaitEq:
		return "waiteq"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one micro-operation.  The meaning of Addr, Val and N depends on
// Kind; unused fields are zero.
type Op struct {
	Kind Kind
	Addr uint32
	Val  uint32
	N    int
}

// String formats the op in a readable assembly-like syntax.
func (o Op) String() string {
	switch o.Kind {
	case Read, CleanLine, InvalLine:
		return fmt.Sprintf("%s 0x%08x", o.Kind, o.Addr)
	case Write, WaitEq:
		return fmt.Sprintf("%s 0x%08x, %d", o.Kind, o.Addr, o.Val)
	case Delay:
		return fmt.Sprintf("%s %d", o.Kind, o.N)
	case LockAcquire, LockRelease:
		return fmt.Sprintf("%s %d", o.Kind, o.N)
	default:
		return o.Kind.String()
	}
}

// Program is a flat sequence of micro-ops ending (by convention) in Halt.
type Program []Op

// Validate checks structural well-formedness: non-empty, terminated by Halt,
// no Halt in the middle, and non-negative counts.
func (p Program) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("isa: empty program")
	}
	if p[len(p)-1].Kind != Halt {
		return fmt.Errorf("isa: program does not end in halt")
	}
	for i, op := range p {
		if op.Kind == Halt && i != len(p)-1 {
			return fmt.Errorf("isa: halt at %d before end of program", i)
		}
		if op.N < 0 {
			return fmt.Errorf("isa: op %d (%s) has negative count", i, op)
		}
	}
	return nil
}

// Reads counts the Read ops in p.
func (p Program) Reads() int { return p.count(Read) }

// Writes counts the Write ops in p.
func (p Program) Writes() int { return p.count(Write) }

func (p Program) count(k Kind) int {
	n := 0
	for _, op := range p {
		if op.Kind == k {
			n++
		}
	}
	return n
}

// Builder assembles programs fluently.  All methods return the builder so
// calls can be chained.
type Builder struct {
	ops Program
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Read appends a load of addr.
func (b *Builder) Read(addr uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: Read, Addr: addr})
	return b
}

// Write appends a store of val to addr.
func (b *Builder) Write(addr, val uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: Write, Addr: addr, Val: val})
	return b
}

// Delay appends an n-cycle stall.
func (b *Builder) Delay(n int) *Builder {
	b.ops = append(b.ops, Op{Kind: Delay, N: n})
	return b
}

// Lock appends an acquire of lock id.
func (b *Builder) Lock(id int) *Builder {
	b.ops = append(b.ops, Op{Kind: LockAcquire, N: id})
	return b
}

// Unlock appends a release of lock id.
func (b *Builder) Unlock(id int) *Builder {
	b.ops = append(b.ops, Op{Kind: LockRelease, N: id})
	return b
}

// Clean appends a drain (write back + invalidate) of the line holding addr.
func (b *Builder) Clean(addr uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: CleanLine, Addr: addr})
	return b
}

// Inval appends an invalidate of the line holding addr.
func (b *Builder) Inval(addr uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: InvalLine, Addr: addr})
	return b
}

// WaitEq appends a poll of addr until it reads val.
func (b *Builder) WaitEq(addr, val uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: WaitEq, Addr: addr, Val: val})
	return b
}

// Halt terminates the program and returns it.
func (b *Builder) Halt() Program {
	b.ops = append(b.ops, Op{Kind: Halt})
	return b.ops
}
