package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	prog, err := Assemble(`
		; a tiny task
		lock 0
		ld 0x10000000
		st 0x10000004, 7   # store
		clean 0x10000000
		inval 0x10000020
		waiteq 0x20000000, 1
		delay 5
		nop
		unlock 0
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{LockAcquire, Read, Write, CleanLine, InvalLine, WaitEq, Delay, Nop, LockRelease, Halt}
	if len(prog) != len(want) {
		t.Fatalf("%d ops, want %d", len(prog), len(want))
	}
	for i, k := range want {
		if prog[i].Kind != k {
			t.Fatalf("op %d = %v, want %v", i, prog[i].Kind, k)
		}
	}
	if prog[2].Addr != 0x10000004 || prog[2].Val != 7 {
		t.Fatalf("store %+v", prog[2])
	}
	if prog[6].N != 5 {
		t.Fatalf("delay %+v", prog[6])
	}
}

func TestAssembleAppendsHalt(t *testing.T) {
	prog, err := Assemble("nop")
	if err != nil {
		t.Fatal(err)
	}
	if prog[len(prog)-1].Kind != Halt {
		t.Fatal("missing implicit halt")
	}
}

func TestAssembleRepeatExpansion(t *testing.T) {
	prog, err := Assemble(`
		.repeat 3
		  st 0x1000+@*4, @
		.end
	`)
	if err != nil {
		t.Fatal(err)
	}
	// 3 stores + halt.
	if len(prog) != 4 {
		t.Fatalf("%d ops", len(prog))
	}
	for i := 0; i < 3; i++ {
		op := prog[i]
		if op.Kind != Write || op.Addr != uint32(0x1000+4*i) || op.Val != uint32(i) {
			t.Fatalf("iteration %d: %+v", i, op)
		}
	}
}

func TestAssembleNestedRepeat(t *testing.T) {
	prog, err := Assemble(`
		.repeat 2
		  ld 0x100
		  .repeat 2
		    nop
		  .end
		.end
	`)
	if err != nil {
		t.Fatal(err)
	}
	// (ld + 2 nops) x 2 + halt = 7.
	if len(prog) != 7 {
		t.Fatalf("%d ops: %v", len(prog), prog)
	}
}

func TestAssembleRepeatZero(t *testing.T) {
	prog, err := Assemble(`
		.repeat 0
		  st 0x100, 1
		.end
		nop
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Writes() != 0 || len(prog) != 2 {
		t.Fatalf("zero repeat emitted ops: %v", prog)
	}
}

func TestAssembleOperandArithmetic(t *testing.T) {
	prog, err := Assemble(`
		.repeat 2
		  st 0x1000+@*32+4, 2*3+@
		.end
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Addr != 0x1004 || prog[0].Val != 6 {
		t.Fatalf("it 0: %+v", prog[0])
	}
	if prog[1].Addr != 0x1024 || prog[1].Val != 7 {
		t.Fatalf("it 1: %+v", prog[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus 1",
		"ld",
		"st 0x100",
		"delay x",
		".repeat 2\nnop",             // missing .end
		".end",                       // stray .end
		"st @, 1",                    // @ outside repeat
		".repeat\nnop\n.end",         // missing count
		"ld 1+",                      // dangling operator
		".repeat 9999999\nnop\n.end", // absurd count
	}
	for i, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("case %d assembled: %q", i, src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig := NewBuilder().
		Lock(0).
		Read(0x10000000).
		Write(0x10000004, 9).
		WaitEq(0x20000000, 1).
		Delay(3).
		Clean(0x10000000).
		Inval(0x10000020).
		Unlock(0).
		Halt()
	text := Format(orig)
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
	if len(back) != len(orig) {
		t.Fatalf("length %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("op %d: %+v vs %+v", i, back[i], orig[i])
		}
	}
}

func TestAssembleWorkloadShapedProgram(t *testing.T) {
	// A WCS-like critical-section loop written by hand.
	src := `
	.repeat 4
	  lock 0
	  .repeat 8
	    ld 0x10000000+@*4
	    st 0x10000000+@*4, @+1
	  .end
	  unlock 0
	.end
	`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Reads() != 32 || prog.Writes() != 32 {
		t.Fatalf("reads %d writes %d", prog.Reads(), prog.Writes())
	}
	if got := strings.Count(Format(prog), "lock 0"); got != 8 { // 4 lock + 4 unlock contain "lock 0"
		t.Fatalf("lock statements %d", got)
	}
}
