package snooplogic

import (
	"sort"
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/event"
	"hetcc/internal/memory"
	"hetcc/internal/metrics"
)

// TestPostConstructionWiring exercises the platform's wiring order: the FIQ
// target, metrics registry and event sink are all attached after New (the CPU
// does not exist yet when the snoop logic is built), and a foreign hit must
// reach all three.
func TestPostConstructionWiring(t *testing.T) {
	mem := memory.New()
	b := bus.New(bus.Config{Timing: memory.DefaultTiming()}, mem, nil)
	owner := b.AddMaster("arm")
	other := b.AddMaster("ppc")
	sl := New("arm-snoop", b, owner, 32, nil, nil)

	cpu := &fakeCPU{}
	sl.SetFIQRaiser(cpu)
	reg := metrics.NewRegistry()
	sl.SetMetrics(reg)
	sink := event.NewSink(nil)
	sl.SetEvents(sink)

	bn := &bench{bus: b, sl: sl, cpu: cpu, owner: owner, other: other}
	bn.fill(t, 0x1000)
	// The foreign read keeps retrying until the ISR drains the line, so tick
	// a bounded window instead of draining.
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x1000, Words: 8}, nil)
	for i := 0; i < 50; i++ {
		bn.bus.Tick(bn.now)
		bn.now++
	}
	bn.sl.Complete(0x1000, true)
	bn.drain(t)

	if len(cpu.fiqs) != 1 || cpu.fiqs[0] != 0x1000 {
		t.Fatalf("fiqs %v, want one at 0x1000 via the installed raiser", cpu.fiqs)
	}
	if got := sl.Stats().Hits; got != 1 {
		t.Fatalf("stats hits %d, want 1", got)
	}
	if got := reg.Snapshot().Counters["snoop.cam.hits"]; got != 1 {
		t.Fatalf("metrics counter snoop.cam.hits=%d, want 1", got)
	}
	if counts := sink.Counts(); counts[event.SnoopHit.String()] == 0 {
		t.Fatalf("event counts %v missing a snoop-hit record", counts)
	}
}

// TestCAMLinesSorted pins the deterministic CAM listing (the TAG-CAM mirror
// property in the explorer relies on it).
func TestCAMLinesSorted(t *testing.T) {
	bn := newBench(t)
	for _, addr := range []uint32{0x2040, 0x1000, 0x3000, 0x1020} {
		bn.fill(t, addr)
	}
	lines := bn.sl.CAMLines()
	if len(lines) != 4 || !sort.SliceIsSorted(lines, func(i, j int) bool { return lines[i] < lines[j] }) {
		t.Fatalf("CAMLines %v, want 4 sorted tags", lines)
	}
}

// TestEventNamesAreDistinct pins the transition-table event labels: every
// event renders a unique, non-placeholder name (they appear in test failures
// and the table docs).
func TestEventNamesAreDistinct(t *testing.T) {
	events := []Event{EvOwnFill, EvOwnWriteBack, EvForeignMatch, EvISRComplete, EvNoteInvalidate}
	seen := make(map[string]bool)
	for _, ev := range events {
		name := ev.String()
		if name == "" || seen[name] {
			t.Fatalf("event %d renders %q (empty or duplicate)", ev, name)
		}
		seen[name] = true
	}
	if got := Event(99).String(); got == "" || seen[got] {
		t.Fatalf("out-of-range event renders %q", got)
	}
}
