package snooplogic

import (
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/memory"
)

type fakeCPU struct {
	fiqs []uint32
}

func (f *fakeCPU) RaiseFIQ(base uint32) { f.fiqs = append(f.fiqs, base) }

type bench struct {
	bus   *bus.Bus
	sl    *SnoopLogic
	cpu   *fakeCPU
	owner int
	other int
	now   uint64
}

func newBench(t *testing.T) *bench {
	t.Helper()
	mem := memory.New()
	b := bus.New(bus.Config{Timing: memory.DefaultTiming()}, mem, nil)
	owner := b.AddMaster("arm")
	other := b.AddMaster("ppc")
	cpu := &fakeCPU{}
	sl := New("arm-snoop", b, owner, 32, cpu, nil)
	return &bench{bus: b, sl: sl, cpu: cpu, owner: owner, other: other}
}

func (bn *bench) drain(t *testing.T) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if bn.bus.Idle() {
			return
		}
		bn.bus.Tick(bn.now)
		bn.now++
	}
	t.Fatal("bus never idled")
}

// fill makes the shadowed processor cache a line (observed fill).
func (bn *bench) fill(t *testing.T, addr uint32) {
	t.Helper()
	bn.bus.Submit(&bus.Transaction{Master: bn.owner, Kind: bus.ReadLine, Addr: addr, Words: 8}, nil)
	bn.drain(t)
}

func TestCAMTracksFills(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	bn.fill(t, 0x1020)
	if !bn.sl.Holds(0x1008) || !bn.sl.Holds(0x1020) {
		t.Fatalf("CAM %v missing fills", bn.sl.CAMLines())
	}
	if s := bn.sl.Stats(); s.Inserts != 2 {
		t.Fatalf("inserts %d", s.Inserts)
	}
}

func TestCAMDropsOnWriteBack(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	bn.bus.Submit(&bus.Transaction{Master: bn.owner, Kind: bus.WriteLine, Addr: 0x1000, Data: make([]uint32, 8)}, nil)
	bn.drain(t)
	if bn.sl.Holds(0x1000) {
		t.Fatal("CAM kept a written-back line")
	}
}

func TestCAMIgnoresOtherMasters(t *testing.T) {
	bn := newBench(t)
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x2000, Words: 8}, nil)
	bn.drain(t)
	if bn.sl.Holds(0x2000) {
		t.Fatal("CAM tracked a foreign master's fill")
	}
}

func TestSnoopHitRaisesFIQAndRetries(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	done := false
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x1000, Words: 8}, func(bus.Result) { done = true })
	for i := 0; i < 50; i++ {
		bn.bus.Tick(bn.now)
		bn.now++
	}
	if done {
		t.Fatal("transaction completed while ISR pending")
	}
	if len(bn.cpu.fiqs) != 1 || bn.cpu.fiqs[0] != 0x1000 {
		t.Fatalf("fiqs %v, want one at 0x1000", bn.cpu.fiqs)
	}
	if s := bn.sl.Stats(); s.Hits != 1 || s.RetriesWhilePending == 0 {
		t.Fatalf("stats %+v", s)
	}
	// ISR completes: the retried read goes through.
	bn.sl.Complete(0x1000, true)
	bn.drain(t)
	if !done {
		t.Fatal("transaction never completed after ISR")
	}
	if bn.sl.Holds(0x1000) {
		t.Fatal("CAM entry survived the ISR")
	}
	if len(bn.sl.PendingLines()) != 0 {
		t.Fatal("pending line survived Complete")
	}
}

func TestOnlyOneFIQPerLine(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x1000, Words: 8}, nil)
	for i := 0; i < 200; i++ {
		bn.bus.Tick(bn.now)
		bn.now++
	}
	if len(bn.cpu.fiqs) != 1 {
		t.Fatalf("%d FIQs raised for one pending line", len(bn.cpu.fiqs))
	}
}

func TestSpuriousHitCounted(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x1000, Words: 8}, nil)
	for i := 0; i < 20; i++ {
		bn.bus.Tick(bn.now)
		bn.now++
	}
	// The ISR found nothing (line was silently dropped by the cache).
	bn.sl.Complete(0x1000, false)
	bn.drain(t)
	if s := bn.sl.Stats(); s.SpuriousHits != 1 {
		t.Fatalf("spurious hits %d, want 1", s.SpuriousHits)
	}
}

func TestNoteInvalidateTightensCAM(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	bn.sl.NoteInvalidate(0x1008)
	if bn.sl.Holds(0x1000) {
		t.Fatal("NoteInvalidate did not clear the entry")
	}
	// The next foreign access must NOT hit.
	done := false
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x1000, Words: 8}, func(bus.Result) { done = true })
	bn.drain(t)
	if !done || len(bn.cpu.fiqs) != 0 {
		t.Fatal("spurious snoop hit after NoteInvalidate")
	}
}

func TestMissDoesNotRetry(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	done := false
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x8000, Words: 8}, func(bus.Result) { done = true })
	bn.drain(t)
	if !done {
		t.Fatal("miss retried")
	}
	if len(bn.cpu.fiqs) != 0 {
		t.Fatal("miss raised FIQ")
	}
}

func TestUncachedWordOpsSnoopedToo(t *testing.T) {
	// A word access landing in a shadowed line must also be caught — the
	// paper's deadlock scenario depends on lock-word accesses snooping.
	bn := newBench(t)
	bn.fill(t, 0x1000)
	done := false
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.WriteWord, Addr: 0x1004, Val: 9}, func(bus.Result) { done = true })
	for i := 0; i < 50; i++ {
		bn.bus.Tick(bn.now)
		bn.now++
	}
	if done {
		t.Fatal("word write into shadowed line not retried")
	}
	bn.sl.Complete(0x1000, true)
	bn.drain(t)
	if !done {
		t.Fatal("word write never completed")
	}
}

// TestCAMIsSupersetOfResidency is exercised end-to-end in the platform
// tests; here we check the local invariant that Complete is idempotent.
func TestCompleteIdempotent(t *testing.T) {
	bn := newBench(t)
	bn.fill(t, 0x1000)
	bn.sl.Complete(0x1000, true)
	bn.sl.Complete(0x1000, true) // second call must not panic or underflow
	if bn.sl.Holds(0x1000) {
		t.Fatal("entry survived")
	}
}

func TestCAMOverflowFlushesOldest(t *testing.T) {
	bn := newBench(t)
	bn.sl.SetCapacity(2)
	bn.fill(t, 0x1000)
	bn.fill(t, 0x1020)
	// Third fill overflows: the oldest entry (0x1000) is flushed via FIQ.
	bn.fill(t, 0x1040)
	if len(bn.cpu.fiqs) != 1 || bn.cpu.fiqs[0] != 0x1000 {
		t.Fatalf("overflow fiqs %v, want [0x1000]", bn.cpu.fiqs)
	}
	if s := bn.sl.Stats(); s.OverflowFlushes != 1 {
		t.Fatalf("overflow flushes %d", s.OverflowFlushes)
	}
	// The ISR completes: the entry clears and the CAM is back at capacity.
	bn.sl.Complete(0x1000, true)
	if bn.sl.Holds(0x1000) {
		t.Fatal("victim survived overflow")
	}
	if !bn.sl.Holds(0x1020) || !bn.sl.Holds(0x1040) {
		t.Fatal("live entries lost")
	}
}

func TestCAMOverflowSkipsPendingEntries(t *testing.T) {
	bn := newBench(t)
	bn.sl.SetCapacity(2)
	bn.fill(t, 0x1000)
	bn.fill(t, 0x1020)
	// 0x1000 is already pending an ISR (a foreign snoop hit it).
	bn.bus.Submit(&bus.Transaction{Master: bn.other, Kind: bus.ReadLine, Addr: 0x1000, Words: 8}, nil)
	for i := 0; i < 20; i++ {
		bn.bus.Tick(bn.now)
		bn.now++
	}
	// Overflow must pick 0x1020, not the pending 0x1000.  (The foreign
	// master keeps retrying, so wait on the fill completion rather than
	// bus idleness.)
	done := false
	bn.bus.Submit(&bus.Transaction{Master: bn.owner, Kind: bus.ReadLine, Addr: 0x1040, Words: 8}, func(bus.Result) { done = true })
	for i := 0; i < 10000 && !done; i++ {
		bn.bus.Tick(bn.now)
		bn.now++
	}
	if !done {
		t.Fatal("owner fill never completed")
	}
	if got := bn.cpu.fiqs[len(bn.cpu.fiqs)-1]; got != 0x1020 {
		t.Fatalf("overflow victim 0x%x, want 0x1020 (pending skipped)", got)
	}
}
