// Package snooplogic implements the external snoop logic of the paper's
// Figure 3: the hardware block that gives snooping capability to a
// processor with no native cache coherence support (the ARM920T).
//
// The block keeps a duplicate tag store — the TAG CAM — of the processor's
// data cache by watching the bus transactions the processor itself
// initiates: a line fill inserts a tag, and a write-back (eviction, drain,
// or software clean) removes it.  Clean lines the processor drops silently
// leave *stale* entries behind; those are safe (the CAM is a superset of
// the cache contents) and merely cost a spurious interrupt when hit.
//
// When another master's transaction matches the CAM, the snoop logic ARTRYs
// the transaction and raises the fast interrupt (nFIQ).  The interrupt
// service routine on the processor drains the hit line if modified or
// invalidates it if clean, then signals completion; only then does the
// retried transaction succeed.
package snooplogic

import (
	"sort"

	"hetcc/internal/bus"
	"hetcc/internal/event"
	"hetcc/internal/metrics"
	"hetcc/internal/trace"
)

// Stats collects snoop-logic activity counters.
type Stats struct {
	// Inserts and Removes count TAG CAM updates.
	Inserts uint64
	Removes uint64
	// Hits counts snoop hits (ARTRY + nFIQ raised).
	Hits uint64
	// SpuriousHits counts hits on stale CAM entries — the line had been
	// silently dropped by the cache, so the ISR found nothing to drain.
	SpuriousHits uint64
	// RetriesWhilePending counts ARTRYs issued on re-snoops of a line
	// whose ISR is still outstanding.
	RetriesWhilePending uint64
	// OverflowFlushes counts CAM-capacity overflows resolved by flushing
	// the oldest entry through the ISR.
	OverflowFlushes uint64
}

// FIQRaiser receives the fast-interrupt requests the snoop logic generates.
// The CPU model implements it.
type FIQRaiser interface {
	RaiseFIQ(lineBase uint32)
}

// SnoopLogic is the TAG CAM block for one coherence-less processor.
type SnoopLogic struct {
	name      string
	owner     int // the processor's bus master id (its own traffic is not snooped)
	bus       *bus.Bus
	lineBytes uint32
	capacity  int // maximum CAM entries (0 = unbounded)
	cam       map[uint32]bool
	camOrder  []uint32 // insertion order for overflow eviction
	pending   map[uint32]bool
	// retried records which master's transaction each pending ISR is
	// blocking, so the arbiter can hand it the bus as soon as the ISR
	// completes.
	retried map[uint32]int
	fiq     FIQRaiser
	log     *trace.Log
	stats   Stats

	// hitCycle records the bus cycle of each outstanding snoop hit so the
	// drain-duration histogram can be observed at ISR completion.
	hitCycle map[uint32]uint64
	mHits    *metrics.Counter
	mDrain   *metrics.Histogram

	// nil-safe coherence event sink (see SetEvents)
	events *event.Sink
}

// New creates the snoop logic for the processor whose cache controller owns
// bus master id owner, and wires it to b: it snoops every other master's
// coherent transactions and observes the owner's completions to maintain
// the CAM.
func New(name string, b *bus.Bus, owner int, lineBytes int, fiq FIQRaiser, log *trace.Log) *SnoopLogic {
	sl := &SnoopLogic{
		name:      name,
		owner:     owner,
		bus:       b,
		lineBytes: uint32(lineBytes),
		cam:       make(map[uint32]bool),
		pending:   make(map[uint32]bool),
		retried:   make(map[uint32]int),
		hitCycle:  make(map[uint32]uint64),
		fiq:       fiq,
		log:       log,
	}
	b.AddSnooper(owner, sl)
	b.AddObserver(sl.observe)
	return sl
}

// SetFIQRaiser installs the interrupt target (the platform wires the CPU
// after construction).
func (sl *SnoopLogic) SetFIQRaiser(f FIQRaiser) { sl.fiq = f }

// SetCapacity bounds the TAG CAM to n entries (hardware CAMs are sized to
// the shadowed cache).  Zero means unbounded.
func (sl *SnoopLogic) SetCapacity(n int) { sl.capacity = n }

// Stats returns a copy of the counters.
func (sl *SnoopLogic) Stats() Stats { return sl.stats }

// SetMetrics attaches the snoop logic to a metrics registry.  A nil
// registry leaves the instruments nil (no-op).
func (sl *SnoopLogic) SetMetrics(r *metrics.Registry) {
	sl.mHits = r.Counter("snoop.cam.hits")
	sl.mDrain = r.Histogram("snoop.drain.buscycles")
}

// SetEvents attaches the snoop logic to a coherence event sink.  A nil sink
// makes every emission a single nil check.
func (sl *SnoopLogic) SetEvents(s *event.Sink) { sl.events = s }

func (sl *SnoopLogic) align(addr uint32) uint32 {
	return addr &^ (sl.lineBytes - 1)
}

// SnoopBus implements bus.Snooper: ARTRY any transaction touching a line
// the shadowed cache (may) hold, raising nFIQ on the first hit.
func (sl *SnoopLogic) SnoopBus(t *bus.Transaction) bus.SnoopReply {
	base := sl.align(t.Addr)
	if sl.pending[base] {
		sl.stats.RetriesWhilePending++
		sl.retried[base] = t.Master
		return bus.SnoopReply{Retry: true, Drain: true}
	}
	if !sl.cam[base] {
		return bus.SnoopReply{}
	}
	sl.stats.Hits++
	sl.mHits.Inc()
	// The ISR drains a modified line or invalidates a clean one: either way
	// the shadowed copy leaves the cache (inval) behind a drain-and-retry
	// (flush); the TAG CAM has no wrapper, so converted is never set.
	sl.events.SnoopHit(sl.owner, base, t.Kind.CoherenceOp(), t.Master, true, false, true, false)
	sl.pending[base] = true
	sl.hitCycle[base] = sl.bus.Cycle()
	sl.retried[base] = t.Master
	if sl.log.Enabled() {
		sl.log.Addf(0, sl.name, "snoop hit 0x%08x -> nFIQ", base)
	}
	if sl.fiq != nil {
		sl.fiq.RaiseFIQ(base)
	}
	return bus.SnoopReply{Retry: true, Drain: true}
}

// observe watches the owner's completed transactions to shadow the cache
// contents.
func (sl *SnoopLogic) observe(t *bus.Transaction, _ bus.Result) {
	if t.Master != sl.owner {
		return
	}
	base := sl.align(t.Addr)
	switch t.Kind {
	case bus.ReadLine, bus.ReadLineOwn:
		if !sl.cam[base] {
			if sl.capacity > 0 && len(sl.cam) >= sl.capacity {
				sl.overflow()
			}
			sl.cam[base] = true
			sl.camOrder = append(sl.camOrder, base)
			sl.stats.Inserts++
		}
	case bus.WriteLine:
		// In this simulator a write-back always means the line left the
		// cache (eviction, snoop drain via ISR, or software clean).
		if sl.cam[base] {
			delete(sl.cam, base)
			sl.stats.Removes++
		}
	}
}

// overflow resolves a full TAG CAM: the oldest entry — necessarily stale or
// cold — is flushed through the interrupt service routine, which drains or
// invalidates the line if the cache still holds it and clears the entry.
// This keeps the CAM a strict superset of the cache contents even though
// clean evictions are invisible on the bus.
func (sl *SnoopLogic) overflow() {
	for len(sl.camOrder) > 0 {
		victim := sl.camOrder[0]
		sl.camOrder = sl.camOrder[1:]
		if !sl.cam[victim] || sl.pending[victim] {
			continue
		}
		sl.stats.OverflowFlushes++
		sl.pending[victim] = true
		sl.hitCycle[victim] = sl.bus.Cycle()
		if sl.fiq != nil {
			sl.fiq.RaiseFIQ(victim)
		}
		return
	}
}

// NoteInvalidate is the snoop logic's control port: software (the ISR, or a
// program's invalidate instruction) reports that it dropped a clean line,
// so the CAM entry can be cleared without a bus write-back.
func (sl *SnoopLogic) NoteInvalidate(addr uint32) {
	base := sl.align(addr)
	if sl.cam[base] {
		delete(sl.cam, base)
		sl.stats.Removes++
	}
}

// Complete is called by the ISR when it has drained or invalidated the hit
// line: the ARTRY condition clears and the retried master can proceed.  If
// the line was already gone from the cache the hit was spurious.
func (sl *SnoopLogic) Complete(lineBase uint32, wasResident bool) {
	base := sl.align(lineBase)
	delete(sl.pending, base)
	if start, ok := sl.hitCycle[base]; ok {
		sl.mDrain.Observe(sl.bus.Cycle() - start)
		delete(sl.hitCycle, base)
	}
	sl.events.Drain(sl.owner, base, 0)
	if m, ok := sl.retried[base]; ok {
		// Hand the bus straight back to the master the ISR was blocking so
		// its retry wins before this core can re-cache the line.
		sl.bus.PreferNext(m)
		delete(sl.retried, base)
	}
	if sl.cam[base] {
		delete(sl.cam, base)
		sl.stats.Removes++
	}
	if !wasResident {
		sl.stats.SpuriousHits++
	}
	if sl.log.Enabled() {
		sl.log.Addf(0, sl.name, "ISR complete 0x%08x (resident=%v)", base, wasResident)
	}
}

// PendingLines returns the lines with an outstanding ISR, sorted (tests).
func (sl *SnoopLogic) PendingLines() []uint32 {
	return sortedKeys(sl.pending)
}

// CAMLines returns the shadowed tags, sorted (tests and the TAG-CAM mirror
// property).
func (sl *SnoopLogic) CAMLines() []uint32 {
	return sortedKeys(sl.cam)
}

// Holds reports whether the CAM contains the line holding addr.
func (sl *SnoopLogic) Holds(addr uint32) bool { return sl.cam[sl.align(addr)] }

func sortedKeys(m map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
