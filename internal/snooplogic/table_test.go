package snooplogic

import (
	"testing"

	"hetcc/internal/bus"
)

// TestTableMirrorsImplementation drives a real SnoopLogic through every rule
// of Table(): arrange the guard state, fire the event at the block's
// interface, and assert the observable outputs and next guard state match
// the table row.  This is what lets internal/explore trust the table.
func TestTableMirrorsImplementation(t *testing.T) {
	const base uint32 = 0x1000
	fill := bus.Transaction{Kind: bus.ReadLine, Addr: base, Words: 8}
	writeBack := bus.Transaction{Kind: bus.WriteLine, Addr: base, Data: make([]uint32, 8)}

	for _, r := range Table() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			bn := newBench(t)
			own := func(tx bus.Transaction) *bus.Transaction {
				tx.Master = bn.owner
				return &tx
			}
			foreign := func(tx bus.Transaction) *bus.Transaction {
				tx.Master = bn.other
				return &tx
			}

			// Arrange the guard state.
			if r.CAM || r.Pending {
				bn.sl.observe(own(fill), bus.Result{})
			}
			if r.Pending {
				if rep := bn.sl.SnoopBus(foreign(fill)); !rep.Retry {
					t.Fatal("setup: CAM hit did not retry")
				}
				if !r.CAM {
					// (cam=false, pending=true): the ISR's drain write-back
					// already cleared the entry.
					bn.sl.observe(own(writeBack), bus.Result{})
				}
			}
			gotCAM, gotPend := bn.sl.Holds(base), len(bn.sl.PendingLines()) > 0
			if gotCAM != r.CAM || gotPend != r.Pending {
				t.Fatalf("setup reached guard (cam=%v pending=%v), want (%v %v)", gotCAM, gotPend, r.CAM, r.Pending)
			}
			fiqsBefore := len(bn.cpu.fiqs)

			// Fire the event.
			retried := false
			switch r.Event {
			case EvOwnFill:
				bn.sl.observe(own(fill), bus.Result{})
			case EvOwnWriteBack:
				bn.sl.observe(own(writeBack), bus.Result{})
			case EvForeignMatch:
				retried = bn.sl.SnoopBus(foreign(fill)).Retry
			case EvISRComplete:
				bn.sl.Complete(base, true)
			case EvNoteInvalidate:
				bn.sl.NoteInvalidate(base)
			}

			// Assert the row.
			if retried != r.Retry {
				t.Errorf("retry = %v, table says %v", retried, r.Retry)
			}
			if raised := len(bn.cpu.fiqs) > fiqsBefore; raised != r.RaiseFIQ {
				t.Errorf("FIQ raised = %v, table says %v", raised, r.RaiseFIQ)
			}
			if got := bn.sl.Holds(base); got != r.NextCAM {
				t.Errorf("next cam = %v, table says %v", got, r.NextCAM)
			}
			if got := len(bn.sl.PendingLines()) > 0; got != r.NextPending {
				t.Errorf("next pending = %v, table says %v", got, r.NextPending)
			}
		})
	}
}

// TestTableIsDeterministicAndComplete checks the table is a function of the
// guard — no two rules share (cam, pending, event) — and that every guard
// combination is covered except the documented own-fill-while-pending hole.
func TestTableIsDeterministicAndComplete(t *testing.T) {
	type guard struct {
		cam, pending bool
		ev           Event
	}
	seen := map[guard]string{}
	for _, r := range Table() {
		g := guard{r.CAM, r.Pending, r.Event}
		if prev, dup := seen[g]; dup {
			t.Errorf("rules %q and %q share guard %+v", prev, r.Name, g)
		}
		seen[g] = r.Name
	}
	events := []Event{EvOwnFill, EvOwnWriteBack, EvForeignMatch, EvISRComplete, EvNoteInvalidate}
	for _, cam := range []bool{false, true} {
		for _, pending := range []bool{false, true} {
			for _, ev := range events {
				_, ok := Lookup(cam, pending, ev)
				switch {
				// The shadowed CPU is inside the ISR: it cannot fill the line,
				// drop it with software, and Complete without pending is
				// meaningless.  Write-backs of half-drained guard states are
				// covered where reachable.
				case ev == EvOwnFill && pending,
					ev == EvNoteInvalidate && pending,
					ev == EvISRComplete && !pending,
					ev == EvOwnWriteBack && !cam && pending:
					if ok {
						t.Errorf("unreachable guard (cam=%v pending=%v %v) has a rule", cam, pending, ev)
					}
				default:
					if !ok {
						t.Errorf("reachable guard (cam=%v pending=%v %v) has no rule", cam, pending, ev)
					}
				}
			}
		}
	}
}
