package snooplogic

// This file exports the snoop logic's transition relation in table form, so
// the state-space explorer of internal/explore (and the documentation) can
// consume the exact guarded-action rules the executable code implements,
// rather than re-deriving them.  table_test.go drives a real SnoopLogic
// through every rule and asserts the observable behaviour matches, keeping
// the table and the implementation from drifting apart.
//
// The guard state is one shadowed line's (cam, pending) pair:
//
//	cam     — the TAG CAM holds an entry for the line (possibly stale:
//	          clean cache drops are invisible on the bus)
//	pending — an ISR drain/invalidate for the line is outstanding
//
// The CAM capacity bound is deliberately not part of the table: overflow
// picks a victim line and then follows the ordinary ISR rules for it
// (RaiseFIQ → EvOwnWriteBack/EvISRComplete); it changes which line an event
// happens to, never what an event does.

// Event is a stimulus at the snoop logic's interface for one line.
type Event uint8

const (
	// EvOwnFill: the shadowed processor's line fill (ReadLine/ReadLineOwn)
	// completed on the bus.
	EvOwnFill Event = iota
	// EvOwnWriteBack: the shadowed processor's write-back (WriteLine)
	// completed — eviction, ISR drain, or software clean.
	EvOwnWriteBack
	// EvForeignMatch: another master's transaction matched the line.
	EvForeignMatch
	// EvISRComplete: the ISR signalled Complete for the line.
	EvISRComplete
	// EvNoteInvalidate: software reported dropping a clean copy of the line
	// (NoteInvalidate), tightening the CAM without a bus write-back.
	EvNoteInvalidate
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EvOwnFill:
		return "own-fill"
	case EvOwnWriteBack:
		return "own-writeback"
	case EvForeignMatch:
		return "foreign-match"
	case EvISRComplete:
		return "isr-complete"
	case EvNoteInvalidate:
		return "note-invalidate"
	default:
		return "Event(?)"
	}
}

// Rule is one guarded action of the snoop logic: when the line's guard state
// matches (CAM, Pending) and Event occurs, the listed outputs fire and the
// guard state moves to (NextCAM, NextPending).
type Rule struct {
	Name string

	// Guard.
	CAM     bool
	Pending bool
	Event   Event

	// Outputs.
	Retry    bool // the foreign transaction is ARTRYed (with drain qualifier)
	RaiseFIQ bool // nFIQ is raised (at most once per outstanding ISR)

	// Next guard state.
	NextCAM     bool
	NextPending bool
}

// Table returns the snoop logic's complete transition relation over the
// reachable guard states.  The pairs (cam=false, pending=false) through
// (cam=false, pending=true) are all reachable: the last one arises when the
// ISR's own drain write-back clears the CAM entry before Complete is called.
// The only omitted guard/event combination is an own fill while that same
// line's ISR is pending — the shadowed CPU is inside the ISR draining the
// line and cannot simultaneously be filling it.
func Table() []Rule {
	f, t := false, true
	return []Rule{
		// Own fills shadow the cache: insert on first fill, idempotent after.
		{Name: "fill-insert", CAM: f, Pending: f, Event: EvOwnFill, NextCAM: t, NextPending: f},
		{Name: "fill-idempotent", CAM: t, Pending: f, Event: EvOwnFill, NextCAM: t, NextPending: f},

		// Write-backs un-shadow: the line left the cache.  During an ISR the
		// drain write-back clears the CAM but the ARTRY condition holds until
		// Complete.  A write-back of an untracked line is a no-op.
		{Name: "writeback-remove", CAM: t, Pending: f, Event: EvOwnWriteBack, NextCAM: f, NextPending: f},
		{Name: "isr-drain-writeback", CAM: t, Pending: t, Event: EvOwnWriteBack, NextCAM: f, NextPending: t},
		{Name: "writeback-untracked", CAM: f, Pending: f, Event: EvOwnWriteBack, NextCAM: f, NextPending: f},

		// Foreign transactions: a CAM match ARTRYs and raises nFIQ once; while
		// the ISR is pending every re-snoop keeps ARTRYing without a new FIQ
		// (even after the drain write-back already cleared the CAM entry).  A
		// miss passes the transaction through untouched.
		{Name: "foreign-miss", CAM: f, Pending: f, Event: EvForeignMatch, NextCAM: f, NextPending: f},
		{Name: "foreign-hit", CAM: t, Pending: f, Event: EvForeignMatch, Retry: t, RaiseFIQ: t, NextCAM: t, NextPending: t},
		{Name: "foreign-retry-pending", CAM: t, Pending: t, Event: EvForeignMatch, Retry: t, NextCAM: t, NextPending: t},
		{Name: "foreign-retry-drained", CAM: f, Pending: t, Event: EvForeignMatch, Retry: t, NextCAM: f, NextPending: t},

		// ISR completion clears the ARTRY condition and any leftover CAM entry
		// (the invalidate path never produced a write-back), whether or not
		// the drain write-back already removed it.
		{Name: "isr-complete", CAM: t, Pending: t, Event: EvISRComplete, NextCAM: f, NextPending: f},
		{Name: "isr-complete-after-drain", CAM: f, Pending: t, Event: EvISRComplete, NextCAM: f, NextPending: f},

		// Software invalidate tightens the CAM without bus traffic.
		{Name: "software-invalidate", CAM: t, Pending: f, Event: EvNoteInvalidate, NextCAM: f, NextPending: f},
		{Name: "software-invalidate-miss", CAM: f, Pending: f, Event: EvNoteInvalidate, NextCAM: f, NextPending: f},
	}
}

// Lookup returns the rule matching the guard (cam, pending, event), or false
// if the combination is unreachable (see Table).
func Lookup(cam, pending bool, ev Event) (Rule, bool) {
	for _, r := range Table() {
		if r.CAM == cam && r.Pending == pending && r.Event == ev {
			return r, true
		}
	}
	return Rule{}, false
}
