package bus

import (
	"errors"
	"testing"

	"hetcc/internal/memory"
)

func newTestBus(t *testing.T) (*Bus, *memory.Memory) {
	t.Helper()
	mem := memory.New()
	b := New(Config{Timing: memory.DefaultTiming()}, mem, nil)
	return b, mem
}

// run ticks the bus until idle or the budget runs out.
func run(t *testing.T, b *Bus, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		b.Tick(uint64(i))
		if b.Idle() {
			return
		}
	}
	if !b.Idle() {
		t.Fatalf("bus not idle after %d cycles", budget)
	}
}

type fakeSnooper struct {
	reply SnoopReply
	seen  []*Transaction
}

func (f *fakeSnooper) SnoopBus(t *Transaction) SnoopReply {
	f.seen = append(f.seen, t)
	return f.reply
}

func TestWordWriteReadRoundTrip(t *testing.T) {
	b, mem := newTestBus(t)
	m := b.AddMaster("m")
	var got uint32
	b.Submit(&Transaction{Master: m, Kind: WriteWord, Addr: 0x100, Val: 99}, nil)
	b.Submit(&Transaction{Master: m, Kind: ReadWord, Addr: 0x100}, func(r Result) { got = r.Val })
	run(t, b, 100)
	if got != 99 {
		t.Fatalf("read back %d, want 99", got)
	}
	if mem.Peek(0x100) != 99 {
		t.Fatal("memory not written")
	}
}

func TestLineFillLatencyMatchesTiming(t *testing.T) {
	b, _ := newTestBus(t)
	m := b.AddMaster("m")
	doneAt := -1
	b.Submit(&Transaction{Master: m, Kind: ReadLine, Addr: 0x200, Words: 8}, func(Result) {})
	for i := 0; i < 100; i++ {
		b.Tick(uint64(i))
		if b.Idle() {
			doneAt = i
			break
		}
	}
	// grant(1) + address(1) + 13 data cycles = 15 cycles of occupancy.
	if doneAt != 14 {
		t.Fatalf("8-word fill finished after tick %d, want 14 (2+13 cycles)", doneAt)
	}
}

func TestRMWIsAtomicAndReturnsOldValue(t *testing.T) {
	b, mem := newTestBus(t)
	m := b.AddMaster("m")
	mem.Poke(0x300, 0)
	var old1, old2 uint32 = 99, 99
	b.Submit(&Transaction{Master: m, Kind: RMWWord, Addr: 0x300, Val: 1}, func(r Result) { old1 = r.Val })
	b.Submit(&Transaction{Master: m, Kind: RMWWord, Addr: 0x300, Val: 1}, func(r Result) { old2 = r.Val })
	run(t, b, 100)
	if old1 != 0 || old2 != 1 {
		t.Fatalf("TAS olds = %d,%d, want 0,1", old1, old2)
	}
}

func TestRoundRobinArbitration(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	var order []int
	for i := 0; i < 3; i++ {
		b.Submit(&Transaction{Master: m0, Kind: WriteWord, Addr: 0x10, Val: 1}, func(Result) { order = append(order, 0) })
		b.Submit(&Transaction{Master: m1, Kind: WriteWord, Addr: 0x20, Val: 2}, func(Result) { order = append(order, 1) })
	}
	run(t, b, 500)
	if len(order) != 6 {
		t.Fatalf("%d completions, want 6", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("arbitration not alternating: %v", order)
		}
	}
}

func TestSnoopersSeeOtherMastersOnly(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	s0 := &fakeSnooper{}
	b.AddSnooper(m0, s0)
	b.Submit(&Transaction{Master: m0, Kind: ReadWord, Addr: 0x10}, nil)
	b.Submit(&Transaction{Master: m1, Kind: ReadWord, Addr: 0x20}, nil)
	run(t, b, 100)
	if len(s0.seen) != 1 || s0.seen[0].Addr != 0x20 {
		t.Fatalf("snooper of m0 saw %v, want only m1's 0x20", s0.seen)
	}
}

func TestWriteBacksAreNotSnooped(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	s0 := &fakeSnooper{}
	b.AddSnooper(m0, s0)
	b.Submit(&Transaction{Master: m1, Kind: WriteLine, Addr: 0x40, Data: make([]uint32, 8)}, nil)
	run(t, b, 100)
	if len(s0.seen) != 0 {
		t.Fatalf("write-back snooped: %v", s0.seen)
	}
}

func TestSharedSignalCombines(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	m2 := b.AddMaster("m2")
	b.AddSnooper(m1, &fakeSnooper{})
	b.AddSnooper(m2, &fakeSnooper{reply: SnoopReply{Shared: true}})
	var shared bool
	b.Submit(&Transaction{Master: m0, Kind: ReadLine, Addr: 0x80, Words: 8}, func(r Result) { shared = r.Shared })
	run(t, b, 100)
	if !shared {
		t.Fatal("shared signal lost")
	}
}

func TestRetryRequeuesAndEventuallyCompletes(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	sn := &fakeSnooper{reply: SnoopReply{Retry: true}}
	b.AddSnooper(m1, sn)
	completed := false
	b.Submit(&Transaction{Master: m0, Kind: ReadLine, Addr: 0x80, Words: 8}, func(Result) { completed = true })
	// Let it get ARTRYed a few times, then clear the retry condition.
	for i := 0; i < 40; i++ {
		b.Tick(uint64(i))
	}
	if completed {
		t.Fatal("completed while retry asserted")
	}
	sn.reply = SnoopReply{}
	for i := 40; i < 200; i++ {
		b.Tick(uint64(i))
	}
	if !completed {
		t.Fatal("never completed after retry cleared")
	}
	if b.Stats().Aborted == 0 {
		t.Fatal("no aborts recorded")
	}
}

func TestCacheToCacheSupply(t *testing.T) {
	b, mem := newTestBus(t)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	line := []uint32{10, 20, 30, 40, 50, 60, 70, 80}
	b.AddSnooper(m1, &fakeSnooper{reply: SnoopReply{Shared: true, Supply: true, Data: line}})
	mem.WriteLine(0x100, make([]uint32, 8)) // memory holds zeros (stale)
	var res Result
	// Result.Data is only valid during the callback (pooled buffer): copy.
	b.Submit(&Transaction{Master: m0, Kind: ReadLine, Addr: 0x100, Words: 8}, func(r Result) {
		res = r
		res.Data = append([]uint32(nil), r.Data...)
	})
	run(t, b, 100)
	if !res.Supplied {
		t.Fatal("supply not flagged")
	}
	for i, v := range line {
		if res.Data[i] != v {
			t.Fatalf("word %d = %d, want %d (owner data, not memory)", i, res.Data[i], v)
		}
	}
	if b.Stats().Supplied != 1 {
		t.Fatal("supply not counted")
	}
}

func TestPreferNextOverridesRoundRobin(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	m2 := b.AddMaster("m2")
	_ = m1
	var order []int
	submit := func(m int) {
		b.Submit(&Transaction{Master: m, Kind: WriteWord, Addr: 0x10, Val: 1}, func(Result) { order = append(order, m) })
	}
	submit(m0)
	submit(m1)
	submit(m2)
	b.PreferNext(m2)
	run(t, b, 300)
	if order[0] != m2 {
		t.Fatalf("grant order %v, want m2 first (BOFF)", order)
	}
}

type fakeDevice struct {
	base     uint32
	val      uint32
	accesses int
}

func (d *fakeDevice) Contains(addr uint32) bool { return addr == d.base }
func (d *fakeDevice) Access(t *Transaction) (int, Result) {
	d.accesses++
	switch t.Kind {
	case ReadWord:
		return 1, Result{Val: d.val}
	case WriteWord:
		d.val = t.Val
		return 1, Result{}
	default:
		return 1, Result{}
	}
}

func TestDeviceDecodedBeforeMemory(t *testing.T) {
	b, mem := newTestBus(t)
	m := b.AddMaster("m")
	dev := &fakeDevice{base: 0x3000_0000}
	b.AddDevice(dev)
	mem.Poke(0x3000_0000, 77) // memory alias must NOT be read
	var got uint32
	b.Submit(&Transaction{Master: m, Kind: WriteWord, Addr: 0x3000_0000, Val: 5}, nil)
	b.Submit(&Transaction{Master: m, Kind: ReadWord, Addr: 0x3000_0000}, func(r Result) { got = r.Val })
	run(t, b, 100)
	if got != 5 || dev.accesses != 2 {
		t.Fatalf("device read %d (accesses %d), want 5 (2)", got, dev.accesses)
	}
	if mem.Peek(0x3000_0000) != 77 {
		t.Fatal("device write leaked into memory")
	}
}

func TestObserverSeesCompletions(t *testing.T) {
	b, _ := newTestBus(t)
	m := b.AddMaster("m")
	var kinds []Kind
	b.AddObserver(func(tr *Transaction, _ Result) { kinds = append(kinds, tr.Kind) })
	b.Submit(&Transaction{Master: m, Kind: ReadLine, Addr: 0x40, Words: 8}, nil)
	b.Submit(&Transaction{Master: m, Kind: WriteLine, Addr: 0x40, Data: make([]uint32, 8)}, nil)
	run(t, b, 200)
	if len(kinds) != 2 || kinds[0] != ReadLine || kinds[1] != WriteLine {
		t.Fatalf("observer saw %v", kinds)
	}
}

func TestDeadlockDetectorConsecutiveAborts(t *testing.T) {
	mem := memory.New()
	b := New(Config{Timing: memory.DefaultTiming(), DeadlockThreshold: 16, RetryBackoff: 1}, mem, nil)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	b.AddSnooper(m1, &fakeSnooper{reply: SnoopReply{Retry: true}})
	fired := false
	b.OnDeadlock(func() { fired = true })
	b.Submit(&Transaction{Master: m0, Kind: ReadLine, Addr: 0x40, Words: 8}, nil)
	for i := 0; i < 1000 && !fired; i++ {
		b.Tick(uint64(i))
	}
	if !fired || !b.Deadlocked() {
		t.Fatal("deadlock detector did not fire on endless retries")
	}
}

func TestRetryBackoffDelaysReissue(t *testing.T) {
	mem := memory.New()
	b := New(Config{Timing: memory.DefaultTiming(), RetryBackoff: 8, DeadlockThreshold: 1 << 20}, mem, nil)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	b.AddSnooper(m1, &fakeSnooper{reply: SnoopReply{Retry: true}})
	b.Submit(&Transaction{Master: m0, Kind: ReadLine, Addr: 0x40, Words: 8}, nil)
	for i := 0; i < 100; i++ {
		b.Tick(uint64(i))
	}
	aborts := b.Stats().Aborted
	// With an 8-cycle back-off plus 2 busy cycles per attempt, 100 cycles
	// admit at most ~12 attempts; without back-off there would be ~50.
	if aborts > 15 {
		t.Fatalf("%d aborts in 100 cycles; back-off not applied", aborts)
	}
	if aborts < 5 {
		t.Fatalf("only %d aborts; retry not happening", aborts)
	}
}

func TestSubmitFlushOrdersAfterRetriedHead(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	// Simulate a retried transaction at the head.
	retried := &Transaction{Master: m0, Kind: ReadLine, Addr: 0x40, Words: 8}
	retried.retries = 3
	b.Submit(retried, nil)
	ordinary := &Transaction{Master: m0, Kind: ReadLine, Addr: 0x80, Words: 8}
	b.Submit(ordinary, nil)
	flush := &Transaction{Master: m0, Kind: WriteLine, Addr: 0xc0, Data: make([]uint32, 8)}
	b.SubmitFlush(flush, nil)
	q := &b.masters[m0].queue
	if q.at(0).txn != retried || q.at(1).txn != flush || q.at(2).txn != ordinary {
		t.Fatalf("queue order %v,%v,%v; want retried, flush, ordinary", q.at(0).txn.Addr, q.at(1).txn.Addr, q.at(2).txn.Addr)
	}
}

func TestSubmitFlushJumpsCleanQueue(t *testing.T) {
	b, _ := newTestBus(t)
	m0 := b.AddMaster("m0")
	ordinary := &Transaction{Master: m0, Kind: ReadLine, Addr: 0x80, Words: 8}
	b.Submit(ordinary, nil)
	flush := &Transaction{Master: m0, Kind: WriteLine, Addr: 0xc0, Data: make([]uint32, 8)}
	b.SubmitFlush(flush, nil)
	q := &b.masters[m0].queue
	if q.at(0).txn != flush {
		t.Fatal("flush did not jump ahead of ordinary work")
	}
}

func TestUpgradeIsAddressOnly(t *testing.T) {
	b, _ := newTestBus(t)
	m := b.AddMaster("m")
	doneAt := -1
	b.Submit(&Transaction{Master: m, Kind: Upgrade, Addr: 0x40, Words: 8}, func(Result) {})
	for i := 0; i < 50; i++ {
		b.Tick(uint64(i))
		if b.Idle() {
			doneAt = i
			break
		}
	}
	if doneAt != 2 {
		t.Fatalf("upgrade finished after tick %d, want 2 (no data phase)", doneAt)
	}
}

func TestStatsCounters(t *testing.T) {
	b, _ := newTestBus(t)
	m := b.AddMaster("m")
	b.Submit(&Transaction{Master: m, Kind: ReadLine, Addr: 0x40, Words: 8}, nil)
	b.Submit(&Transaction{Master: m, Kind: WriteLine, Addr: 0x40, Data: make([]uint32, 8)}, nil)
	b.Submit(&Transaction{Master: m, Kind: Upgrade, Addr: 0x40, Words: 8}, nil)
	b.Submit(&Transaction{Master: m, Kind: ReadWord, Addr: 0x10}, nil)
	b.Submit(&Transaction{Master: m, Kind: WriteWord, Addr: 0x10, Val: 1}, nil)
	b.Submit(&Transaction{Master: m, Kind: RMWWord, Addr: 0x10, Val: 1}, nil)
	run(t, b, 500)
	s := b.Stats()
	if s.LineFills != 1 || s.WriteBacks != 1 || s.LineUpgrades != 1 || s.WordReads != 1 || s.WordWrites != 1 || s.RMWs != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Completed != 6 {
		t.Fatalf("completed %d, want 6", s.Completed)
	}
}

func TestErrHardwareDeadlockIdentity(t *testing.T) {
	if !errors.Is(ErrHardwareDeadlock, ErrHardwareDeadlock) {
		t.Fatal("errors.Is broken")
	}
}

func TestKindHelpers(t *testing.T) {
	if WriteLine.Snooped() {
		t.Error("WriteLine snooped")
	}
	for _, k := range []Kind{ReadLine, ReadLineOwn, Upgrade, ReadWord, WriteWord, RMWWord} {
		if !k.Snooped() {
			t.Errorf("%v not snooped", k)
		}
	}
}

func TestPipelinedOverlapSavesCycles(t *testing.T) {
	run := func(pipelined bool) (uint64, Stats) {
		mem := memory.New()
		b := New(Config{Timing: memory.DefaultTiming(), Pipelined: pipelined}, mem, nil)
		m0 := b.AddMaster("m0")
		m1 := b.AddMaster("m1")
		done := 0
		for i := 0; i < 10; i++ {
			// Different lines: eligible for overlap.
			b.Submit(&Transaction{Master: m0, Kind: ReadLine, Addr: uint32(0x1000 + i*64), Words: 8}, func(Result) { done++ })
			b.Submit(&Transaction{Master: m1, Kind: ReadLine, Addr: uint32(0x8000 + i*64), Words: 8}, func(Result) { done++ })
		}
		var cycles uint64
		for cycles = 0; done < 20 && cycles < 10000; cycles++ {
			b.Tick(cycles)
		}
		return cycles, b.Stats()
	}
	plain, _ := run(false)
	piped, st := run(true)
	if piped >= plain {
		t.Fatalf("pipelined (%d cycles) not faster than plain (%d)", piped, plain)
	}
	if st.Overlapped == 0 {
		t.Fatal("no overlapped tenures recorded")
	}
}

func TestPipelinedSameLineNotOverlapped(t *testing.T) {
	mem := memory.New()
	b := New(Config{Timing: memory.DefaultTiming(), Pipelined: true}, mem, nil)
	m0 := b.AddMaster("m0")
	m1 := b.AddMaster("m1")
	var order []int
	b.Submit(&Transaction{Master: m0, Kind: WriteLine, Addr: 0x40, Data: []uint32{1, 2, 3, 4, 5, 6, 7, 8}}, func(Result) { order = append(order, 0) })
	// Let the write enter its data phase before the read arrives.
	now := uint64(0)
	for ; now < 3; now++ {
		b.Tick(now)
	}
	var got []uint32
	b.Submit(&Transaction{Master: m1, Kind: ReadLine, Addr: 0x40, Words: 8}, func(r Result) {
		order = append(order, 1)
		got = append([]uint32(nil), r.Data...)
	})
	for ; now < 200 && !b.Idle(); now++ {
		b.Tick(now)
	}
	if len(order) != 2 || order[0] != 0 {
		t.Fatalf("order %v", order)
	}
	// The read's address phase must NOT have overlapped the write (same
	// granule): it sees the written data.
	if got[0] != 1 || got[7] != 8 {
		t.Fatalf("read overlapped the same-line write: %v", got)
	}
	if b.Stats().Overlapped != 0 {
		t.Fatal("same-line tenure overlapped")
	}
}

func TestPipelinedKeepsPerMasterOrder(t *testing.T) {
	mem := memory.New()
	b := New(Config{Timing: memory.DefaultTiming(), Pipelined: true}, mem, nil)
	m0 := b.AddMaster("m0")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		b.Submit(&Transaction{Master: m0, Kind: ReadLine, Addr: uint32(0x1000 + i*64), Words: 8}, func(Result) { order = append(order, i) })
	}
	run(t, b, 1000)
	for i, v := range order {
		if v != i {
			t.Fatalf("per-master order broken: %v", order)
		}
	}
}

func TestMasterLatencyCharged(t *testing.T) {
	timeIt := func(lat int) int {
		mem := memory.New()
		b := New(Config{Timing: memory.DefaultTiming()}, mem, nil)
		m := b.AddMaster("m")
		b.SetMasterLatency(m, lat)
		done := -1
		b.Submit(&Transaction{Master: m, Kind: ReadLine, Addr: 0x40, Words: 8}, func(Result) {})
		for i := 0; i < 100; i++ {
			b.Tick(uint64(i))
			if b.Idle() {
				done = i
				break
			}
		}
		return done
	}
	base := timeIt(0)
	slow := timeIt(3)
	if slow != base+3 {
		t.Fatalf("latency not charged: %d vs %d+3", slow, base)
	}
}
