package bus

import (
	"testing"

	"hetcc/internal/memory"
)

// The alloc-regression suite pins the zero-garbage contract of the bus fast
// path: once the pending rings and the fill pool are warm, ticking the bus —
// including full snoop broadcasts and ARTRY storms — must not allocate.
// These run under `make allocs` and the CI allocs job; a regression here
// means a hot-loop change re-introduced per-transaction garbage.

// nopSnooper replies without recording anything (fakeSnooper appends every
// transaction it sees, which would itself allocate inside AllocsPerRun).
type nopSnooper struct{ reply SnoopReply }

func (s nopSnooper) SnoopBus(*Transaction) SnoopReply { return s.reply }

// TestAllocsBusTickSteadyState: a full line-fill round trip (submit, grant,
// address, data burst, completion) with a reused Transaction and a prebound
// callback is allocation-free once the fill pool is warm.
func TestAllocsBusTickSteadyState(t *testing.T) {
	mem := memory.New()
	bs := New(Config{Timing: memory.DefaultTiming()}, mem, nil)
	m := bs.AddMaster("m")
	var cycle uint64
	txn := Transaction{Master: m, Kind: ReadLine, Addr: 0x400, Words: 8}
	done := func(Result) {}
	roundTrip := func() {
		bs.Submit(&txn, done)
		for !bs.Idle() {
			bs.Tick(cycle)
			cycle++
		}
	}
	roundTrip() // warm-up: grows the pending ring, the fill pool, memory pages
	if n := testing.AllocsPerRun(100, roundTrip); n != 0 {
		t.Fatalf("steady-state bus round trip allocates %.1f/op, want 0", n)
	}
}

// TestAllocsARtryStorm: a snooper ARTRYing every tenure against a deep
// (8-transaction) queue must not allocate per retry.  The old slice-based
// queue re-prepended the aborted head with append([]pending{p}, queue...),
// copying the whole queue on every retry; the ring's pushFront is O(1) and
// garbage-free, which this pin proves.
func TestAllocsARtryStorm(t *testing.T) {
	mem := memory.New()
	bs := New(Config{
		Timing:            memory.DefaultTiming(),
		RetryBackoff:      1,
		DeadlockThreshold: 1 << 30, // the storm is the point; never trip livelock detection
	}, mem, nil)
	m0 := bs.AddMaster("m0")
	m1 := bs.AddMaster("m1")
	bs.AddSnooper(m1, nopSnooper{reply: SnoopReply{Retry: true}})
	txns := make([]Transaction, 8)
	for i := range txns {
		txns[i] = Transaction{Master: m0, Kind: ReadLine, Addr: uint32(0x1000 + 64*i), Words: 8}
		bs.Submit(&txns[i], nil)
	}
	var cycle uint64
	storm := func() {
		for i := 0; i < 64; i++ {
			bs.Tick(cycle)
			cycle++
		}
	}
	storm() // warm-up: ring capacity, fanout rebuild
	before := bs.Stats().Aborted
	if n := testing.AllocsPerRun(100, storm); n != 0 {
		t.Fatalf("ARTRY storm allocates %.1f per 64 ticks, want 0 (head re-queue must not copy the queue)", n)
	}
	if after := bs.Stats().Aborted; after <= before {
		t.Fatalf("storm produced no ARTRY aborts (%d -> %d); test is not exercising the retry path", before, after)
	}
}

// TestAllocsSnoopBroadcast: fanning a snooped transaction out to several
// snoopers on other masters allocates nothing — the per-master snooper sets
// are precomputed flat slices, not rebuilt per address phase.
func TestAllocsSnoopBroadcast(t *testing.T) {
	mem := memory.New()
	bs := New(Config{Timing: memory.DefaultTiming()}, mem, nil)
	m0 := bs.AddMaster("m0")
	for i := 0; i < 3; i++ {
		bs.AddSnooper(bs.AddMaster("snooped"), nopSnooper{})
	}
	var cycle uint64
	txn := Transaction{Master: m0, Kind: ReadLineOwn, Addr: 0x2000, Words: 8}
	roundTrip := func() {
		bs.Submit(&txn, nil)
		for !bs.Idle() {
			bs.Tick(cycle)
			cycle++
		}
	}
	roundTrip()
	if n := testing.AllocsPerRun(100, roundTrip); n != 0 {
		t.Fatalf("snoop broadcast round trip allocates %.1f/op, want 0", n)
	}
}
