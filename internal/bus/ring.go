package bus

// pendingRing is a growable ring buffer of pending requests — the per-master
// request queue.  The shape matters for the hot loop: an ARTRY puts the
// aborted transaction back at the *head* of its master's queue, and with a
// plain slice that re-prepend copied the whole queue every retry (O(n) per
// ARTRY, fresh garbage each time).  The ring makes pushFront/popFront O(1)
// with no steady-state allocation: the backing array grows to the high-water
// mark of queued work and is reused forever after.
type pendingRing struct {
	buf  []pending
	head int
	n    int
}

func (q *pendingRing) len() int { return q.n }

// at returns the i-th queued entry (0 = head).  i must be < q.n.
func (q *pendingRing) at(i int) *pending { return &q.buf[(q.head+i)%len(q.buf)] }

func (q *pendingRing) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]pending, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = *q.at(i)
	}
	q.buf, q.head = nb, 0
}

func (q *pendingRing) pushBack(p pending) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *pendingRing) pushFront(p pending) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = p
	q.n++
}

func (q *pendingRing) popFront() pending {
	p := *q.at(0)
	*q.at(0) = pending{} // drop references so completed work is collectable
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// insertAt places p at index i (0 <= i <= n), shifting later entries back by
// one slot.  SubmitFlush uses it to slot a snoop push behind the retried head
// of a queue; i is bounded by the retry run length, so the shift is short.
func (q *pendingRing) insertAt(i int, p pending) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.n++
	for j := q.n - 1; j > i; j-- {
		*q.at(j) = *q.at(j - 1)
	}
	*q.at(i) = p
}

// linePool recycles the line-fill buffers the bus hands out as Result.Data
// (cache-to-cache supplies and memory line reads).  Ownership contract: a
// pooled buffer is valid only until the completion callback (and observers)
// return — the bus reclaims it immediately after, so any consumer that
// retains fill data must copy it out (cache.Install and the DMA engine
// already do).  All platforms in a run share one line size, so in steady
// state get never allocates; the pool depth tracks the number of tenures
// simultaneously in flight (two in pipelined mode).
type linePool struct {
	free [][]uint32
}

func (lp *linePool) get(words int) []uint32 {
	for n := len(lp.free); n > 0; n = len(lp.free) {
		buf := lp.free[n-1]
		lp.free[n-1] = nil
		lp.free = lp.free[:n-1]
		if cap(buf) >= words {
			return buf[:words]
		}
		// Undersized leftover from a differently-configured line: drop it.
	}
	return make([]uint32, words)
}

func (lp *linePool) put(buf []uint32) {
	if buf != nil {
		lp.free = append(lp.free, buf)
	}
}
