// Package bus models the shared system bus of the paper's SoC platform — an
// AMBA ASB-like single-master-at-a-time pipelined bus with snooping.
//
// The model reproduces the handshake structure the paper's wrappers rely on:
//
//   - arbitration (BREQ/BGNT): one bus cycle;
//   - an address phase in which every other master's snooper (through its
//     wrapper) observes the transaction: one bus cycle;
//   - ARTRY-style retry: a snooper holding the line dirty (or an external
//     snoop logic waiting on an interrupt service routine) aborts the
//     transaction; the master re-queues it and the snooper drains first
//     (the paper's ARTRY/HITM/BOFF sequence);
//   - a data phase whose length comes from the memory controller timing, a
//     mapped device, or a cache-to-cache supply.
//
// Masters own FIFO request queues.  A retried transaction returns to the
// *head* of its master's queue, and a snoop-triggered flush is queued
// *behind* it — this mirrors the PowerPC 60x behaviour the paper identifies
// as the root of the hardware-deadlock problem ("it is supposed to retry the
// transaction ... instead of draining out the lock variables").  The bus
// detects the resulting livelock by counting consecutive aborted tenures.
package bus

import (
	"errors"
	"fmt"

	"hetcc/internal/coherence"
	"hetcc/internal/event"
	"hetcc/internal/memory"
	"hetcc/internal/metrics"
	"hetcc/internal/sim"
	"hetcc/internal/trace"
)

// Kind enumerates bus transaction kinds.
type Kind uint8

const (
	// ReadLine is a cache-line fill (maps to coherence.BusRd).
	ReadLine Kind = iota
	// ReadLineOwn is a read-for-ownership line fill (coherence.BusRdX).
	ReadLineOwn
	// Upgrade is an address-only ownership upgrade (coherence.BusUpgr).
	Upgrade
	// WriteLine is a cache-line write-back.  Write-backs are not snooped:
	// only the single owner of a dirty line can issue one.
	WriteLine
	// ReadWord is an uncached single-word read (snooped as BusRd).
	ReadWord
	// WriteWord is an uncached single-word write (snooped as BusRdX).
	WriteWord
	// RMWWord is an atomic uncached read-modify-write (test-and-set) used
	// by the lock subsystem (snooped as BusRdX).
	RMWWord
	// UpdateWord is a Dragon bus update: a single-word broadcast that
	// sharers patch in place (snooped as BusUpd).  Memory is NOT written —
	// the owning (Sm/M) cache writes the line back on eviction.
	UpdateWord
	// WriteLineInv is a full-line write by a non-caching master (the DMA
	// engine): memory is written and every cached copy is invalidated
	// (snooped as BusRdX; a dirty owner drains first, then the write
	// supersedes it on retry).
	WriteLineInv
)

// String returns a short mnemonic.
func (k Kind) String() string {
	switch k {
	case ReadLine:
		return "RdLine"
	case ReadLineOwn:
		return "RdLineX"
	case Upgrade:
		return "Upgr"
	case WriteLine:
		return "WrLine"
	case ReadWord:
		return "RdWord"
	case WriteWord:
		return "WrWord"
	case RMWWord:
		return "RMW"
	case UpdateWord:
		return "UpdWord"
	case WriteLineInv:
		return "WrLineInv"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Snooped reports whether other masters' snoopers observe this kind.
func (k Kind) Snooped() bool { return k != WriteLine }

// CoherenceOp maps the transaction kind to the snoop event presented to
// coherence state machines.  Wrappers may further convert BusRd to BusRdX.
func (k Kind) CoherenceOp() coherence.BusOp {
	switch k {
	case ReadLine, ReadWord:
		return coherence.BusRd
	case Upgrade:
		return coherence.BusUpgr
	case UpdateWord:
		return coherence.BusUpd
	default:
		return coherence.BusRdX
	}
}

// Transaction is one bus request.  Line kinds use Addr (line-aligned) and
// Words; word kinds use Addr and Val.
type Transaction struct {
	Master int
	Kind   Kind
	Addr   uint32
	Words  int
	// Data carries the write-back payload for WriteLine and receives the
	// fill payload for ReadLine/ReadLineOwn.
	Data []uint32
	// Val is the store value for WriteWord and RMWWord.
	Val uint32
	// Tag is an opaque caller cookie (used by controllers to match
	// completions).
	Tag any

	retries int
	// submitCycle is the bus cycle at which the transaction entered its
	// master's queue (grant-wait metric).
	submitCycle uint64
	// id is the bus-assigned monotonically increasing transaction id,
	// stamped at Submit/SubmitFlush.  Masters reuse Transaction structs, so
	// each resubmission of the same struct is a new logical transaction with
	// a fresh id.
	id uint64
}

// Retries reports how many times the transaction has been ARTRYed.
func (t *Transaction) Retries() int { return t.retries }

// ID returns the transaction's bus-assigned id (monotonically increasing
// from 1 in submission order; 0 before the first submit).
func (t *Transaction) ID() uint64 { return t.id }

// Result is delivered to the master on transaction completion.
type Result struct {
	// Shared is the bus shared-signal value sampled during the address
	// phase, after any wrapper override on the snooper side.  The master's
	// own wrapper may override it again before the cache sees it.
	Shared bool
	// Supplied indicates a cache-to-cache transfer served the data.
	Supplied bool
	// Data is the fill payload for line reads.  It aliases a pooled buffer
	// that the bus reclaims as soon as the completion callback (and any
	// observers) return — consumers that keep fill data must copy it out
	// during the callback.
	Data []uint32
	// Val is the read value for ReadWord and the *old* value for RMWWord.
	Val uint32
}

// SnoopReply is a snooper's response during the address phase.
type SnoopReply struct {
	// Shared: the snooper retains a valid copy (bus SHD signal).
	Shared bool
	// Retry: the transaction must be aborted and retried (ARTRY).  The
	// snooper is expected to drain the line (or finish its ISR) before the
	// retry can succeed.
	Retry bool
	// Supply: the snooper provides the line cache-to-cache.
	Supply bool
	// Data is the supplied line when Supply is set.  The bus copies it into
	// a buffer of its own before SnoopBus's caller returns, so the reply may
	// alias the snooper's live line storage — no defensive copy needed.
	Data []uint32
	// Drain qualifies Retry: the snooper asserted it because a dirty-line
	// drain (flush in flight or pending ISR) must finish before the
	// transaction can succeed.  The stall profiler uses it to separate
	// drain-induced retries from plain arbitration ping-pong.
	Drain bool
}

// Snooper observes other masters' transactions during the address phase.
type Snooper interface {
	SnoopBus(t *Transaction) SnoopReply
}

// Device is a memory-mapped bus slave (e.g. the hardware lock register).
type Device interface {
	// Contains reports whether the device decodes addr.
	Contains(addr uint32) bool
	// Access services the transaction, returning the data-phase latency in
	// bus cycles.
	Access(t *Transaction) (latency int, res Result)
}

// Observer is notified after every completed transaction (used by the
// external snoop logic to shadow the ARM's cache contents, and by tests).
type Observer func(t *Transaction, res Result)

// ErrHardwareDeadlock is reported when the bus livelocks: an unbroken run of
// aborted tenures with no forward progress, the condition the paper names
// the "hardware deadlock problem" (Figure 4).
var ErrHardwareDeadlock = errors.New("bus: hardware deadlock (unbroken retry livelock)")

type completion func(Result)

type pending struct {
	txn  *Transaction
	done completion
}

type masterState struct {
	name  string
	queue pendingRing
	// holdUntil stalls the master's next grant until this bus cycle — the
	// back-off a real master applies after an ARTRY before re-requesting.
	holdUntil uint64
	// latency is added to every completed tenure's data phase — the
	// paper's wrapper protocol-conversion cost on this master's interface.
	latency int
}

// Config holds bus construction parameters.
type Config struct {
	// Timing is the memory controller timing (paper Table 4 / Figure 8).
	Timing memory.Timing
	// C2CFirst/C2CPerWord set cache-to-cache supply latency.  The paper's
	// platforms do not exercise this (only MOESI does), but the simulator
	// supports homogeneous MOESI systems.
	C2CFirst   int
	C2CPerWord int
	// DeadlockThreshold is the number of consecutive aborted tenures after
	// which the bus declares a hardware deadlock.  Zero selects a default.
	DeadlockThreshold int
	// RetryBackoff is how many bus cycles an ARTRYed master waits before
	// re-requesting.  Zero selects a default of 4.
	RetryBackoff int
	// Pipelined overlaps the next tenure's arbitration/address phase with
	// the current data phase (AHB-style), saving two bus cycles per
	// non-conflicting transaction.  The paper's ASB is not pipelined this
	// way; the option exists for the ablation study.
	Pipelined bool
}

// Stats aggregates bus activity counters.
type Stats struct {
	Tenures      uint64 // granted tenures (including aborted)
	Completed    uint64 // transactions completed
	Aborted      uint64 // tenures aborted by ARTRY
	BusyCycles   uint64 // bus cycles with a tenure in progress
	IdleCycles   uint64 // bus cycles with no tenure
	SharedSeen   uint64 // completions with the shared signal asserted
	Supplied     uint64 // cache-to-cache transfers
	WordReads    uint64
	WordWrites   uint64
	RMWs         uint64
	LineFills    uint64
	LineUpgrades uint64
	WriteBacks   uint64
	WordUpdates  uint64
	Overlapped   uint64 // tenures whose address phase overlapped a data phase
}

// Bus is the shared system bus.  Create with New, then register masters,
// snoopers and devices before simulation starts.
type Bus struct {
	cfg     Config
	mem     *memory.Memory
	masters []*masterState
	// snoopers[i] holds the snoopers owned by master i (skipped for its
	// own transactions).
	snoopers [][]Snooper
	// fanout[i] is the flattened snoop set consulted for master i's
	// transactions — every snooper *not* owned by i, in registration order.
	// Precomputed (FinalizeTopology, or lazily on first use after a
	// registration) so each broadcast walks one flat slice instead of
	// filtering the per-owner lists.
	fanout      [][]Snooper
	fanoutStale bool
	devices     []Device
	obs         []Observer
	log         *trace.Log

	// tenure state
	busy      bool
	remaining int
	cur       pending
	curRes    Result
	// curBuf is the pooled fill buffer backing curRes.Data (nil when the
	// data came from a device or the tenure carries none); reclaimed at the
	// end of complete, after the completion callback has run.
	curBuf    []uint32
	curMaster int
	curKind   Kind
	curAddr   uint32
	curAbort  bool

	// fills recycles Result.Data buffers across tenures (see linePool).
	fills linePool

	lastGranted   int
	preferredNext int // master to grant next after an ARTRY (BOFF), -1 none

	consecutiveAborts int
	deadlock          bool
	onDeadlock        func()

	cycle uint64 // bus cycles elapsed
	next  *prepared

	// txnSeq is the monotonically increasing transaction id counter; the
	// first submitted transaction gets id 1.
	txnSeq uint64

	// tenure-span observability (engine-cycle timestamps)
	curStart   uint64
	curRetries int
	onTenure   func(Tenure)

	// nil-safe metric instruments (see SetMetrics)
	mGrantWait *metrics.Histogram
	mTenure    *metrics.Histogram
	mRetries   *metrics.Histogram

	// nil-safe coherence event sink (see SetEvents)
	events *event.Sink

	// event-scheduler binding (see BindScheduler): sched wakes the bus when
	// work is submitted, clock reads the engine cycle for lazy edge sync, div
	// is the bus clock divisor.  All nil/zero under the tick scheduler.
	sched *sim.Handle
	clock func() uint64
	div   uint64

	stats Stats
}

// Tenure is one observed bus tenure: the span from grant to completion (or
// ARTRY abort) in engine cycles.  Package chrometrace renders tenures as
// timeline spans.
type Tenure struct {
	Master  int
	Kind    Kind
	Addr    uint32
	Start   uint64 // engine cycle of the grant
	End     uint64 // engine cycle of completion or abort
	Aborted bool
	Retries int
}

// New creates a bus backed by mem with the given configuration.
func New(cfg Config, mem *memory.Memory, log *trace.Log) *Bus {
	if cfg.DeadlockThreshold <= 0 {
		cfg.DeadlockThreshold = 512
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 4
	}
	if cfg.C2CFirst <= 0 {
		cfg.C2CFirst = 2
	}
	if cfg.C2CPerWord <= 0 {
		cfg.C2CPerWord = 1
	}
	return &Bus{
		cfg:           cfg,
		mem:           mem,
		log:           log,
		preferredNext: -1,
	}
}

// AddMaster registers a bus master and returns its id.
func (b *Bus) AddMaster(name string) int {
	b.masters = append(b.masters, &masterState{name: name})
	b.snoopers = append(b.snoopers, nil)
	b.fanoutStale = true
	return len(b.masters) - 1
}

// MasterName returns the registered name of master id.
func (b *Bus) MasterName(id int) string { return b.masters[id].name }

// SetMasterLatency charges extra bus cycles on every completed tenure of
// master id, modelling the handshake-conversion cost of the wrapper between
// the processor's native bus and the shared ASB.
func (b *Bus) SetMasterLatency(id, busCycles int) {
	if busCycles < 0 {
		busCycles = 0
	}
	b.masters[id].latency = busCycles
}

// AddSnooper attaches a snooper owned by master owner.  The snooper is not
// consulted for transactions initiated by its own master.
func (b *Bus) AddSnooper(owner int, s Snooper) {
	b.snoopers[owner] = append(b.snoopers[owner], s)
	b.fanoutStale = true
}

// FinalizeTopology precomputes the per-master snoop fan-out sets.  Platform
// construction calls it once after all masters and snoopers are registered;
// late registrations are still legal (the sets rebuild lazily on the next
// broadcast), so this is a hot-loop optimisation, not an API obligation.
func (b *Bus) FinalizeTopology() { b.rebuildFanout() }

func (b *Bus) rebuildFanout() {
	if cap(b.fanout) < len(b.masters) {
		b.fanout = make([][]Snooper, len(b.masters))
	}
	b.fanout = b.fanout[:len(b.masters)]
	for i := range b.fanout {
		b.fanout[i] = b.fanout[i][:0]
		for owner, list := range b.snoopers {
			if owner == i {
				continue
			}
			b.fanout[i] = append(b.fanout[i], list...)
		}
	}
	b.fanoutStale = false
}

// AddDevice registers a memory-mapped slave.  Devices are decoded before
// main memory.
func (b *Bus) AddDevice(d Device) { b.devices = append(b.devices, d) }

// AddObserver registers a completion observer.
func (b *Bus) AddObserver(o Observer) { b.obs = append(b.obs, o) }

// OnDeadlock installs a hook invoked once when livelock is detected.
func (b *Bus) OnDeadlock(f func()) { b.onDeadlock = f }

// Deadlocked reports whether the livelock detector has fired.
func (b *Bus) Deadlocked() bool { return b.deadlock }

// Stats returns a copy of the accumulated counters.
func (b *Bus) Stats() Stats {
	b.syncExternal()
	return b.stats
}

// Timing returns the memory timing in force.
func (b *Bus) Timing() memory.Timing { return b.cfg.Timing }

// Cycle reports the number of bus cycles elapsed (the bus-local clock; the
// cache controllers use it to timestamp miss latencies).
func (b *Bus) Cycle() uint64 {
	b.syncExternal()
	return b.cycle
}

// BindScheduler attaches the bus to the engine's event scheduler: h is the
// bus's registration handle (Submit wakes the bus through it) and clock
// reads the current engine cycle.  Call it only when the event scheduler is
// in force; an unbound bus behaves exactly as before.
func (b *Bus) BindScheduler(h *sim.Handle, clock func() uint64) {
	b.sched = h
	b.clock = clock
	b.div = h.Div()
}

// syncExternal brings the bus-cycle counter current for a reader outside
// the bus's own tick: every bus edge strictly before the current engine
// cycle is applied.  Readers positioned after the bus in the engine's
// registration order additionally see the current cycle's edge through the
// scheduler's positional CatchUp, so both read disciplines match tick mode.
func (b *Bus) syncExternal() {
	if b.clock == nil {
		return
	}
	if now := b.clock(); now > 0 {
		b.sync(now - 1)
	}
}

// sync bulk-applies every bus clock edge at engine cycles <= x.  Skipped
// edges are, by scheduling invariant, pure bookkeeping: while busy (and not
// pipelined) each one decrements the data-phase counter without reaching
// zero — the engine always ticks the bus for real at its completion edge —
// and while idle each one would only have found no grantable master.
func (b *Bus) sync(x uint64) {
	if x < b.cycle*b.div {
		return // no unapplied edge at or before x; skips the division
	}
	target := x/b.div + 1 // bus edges lie at 0, div, 2*div, ...
	if target <= b.cycle {
		return
	}
	k := target - b.cycle
	b.cycle = target
	if b.busy {
		if b.cfg.Pipelined || uint64(b.remaining) <= k {
			panic("bus: event-mode sync crossed a tenure boundary")
		}
		b.stats.BusyCycles += k
		b.remaining -= int(k)
		return
	}
	b.stats.IdleCycles += k
}

// CatchUp implements sim.CatchUpper: apply every bus edge <= through.
func (b *Bus) CatchUp(through uint64) {
	if b.clock != nil {
		b.sync(through)
	}
}

// NextWake implements sim.Waker.  A busy non-pipelined bus needs its next
// real tick only at the data phase's completion edge; a pipelined bus
// overlaps arbitration with data and is never skipped (ablation mode).  An
// idle bus with queued work sleeps until the earliest retry back-off
// expires; an idle bus with empty queues is dormant until a Submit wakes
// it.
func (b *Bus) NextWake(now uint64) (uint64, bool) {
	if b.busy {
		if b.cfg.Pipelined {
			return now + b.div, true
		}
		return now + uint64(b.remaining)*b.div, true
	}
	var earliest uint64
	any := false
	for _, m := range b.masters {
		if m.queue.len() == 0 {
			continue
		}
		if !any || m.holdUntil < earliest {
			earliest = m.holdUntil
			any = true
		}
	}
	if !any {
		return 0, false
	}
	if earliest <= b.cycle+1 {
		return now + b.div, true // a master is grantable at the next edge
	}
	// The tick whose post-increment bus cycle reaches `earliest` happens at
	// engine cycle (earliest-1)*div.
	at := (earliest - 1) * b.div
	if at <= now {
		at = now + b.div
	}
	return at, true
}

// wakeSched asks the scheduler for a tick at the earliest feasible bus edge
// (no-op in tick mode).
func (b *Bus) wakeSched() {
	if b.sched != nil {
		b.sched.Wake(b.sched.Now())
	}
}

// SetMetrics attaches the bus to a metrics registry.  A nil registry (or
// never calling SetMetrics) leaves the instruments nil, and recording into
// them is a no-op.
func (b *Bus) SetMetrics(r *metrics.Registry) {
	b.mGrantWait = r.Histogram("bus.grant.wait.buscycles")
	b.mTenure = r.Histogram("bus.tenure.enginecycles")
	b.mRetries = r.Histogram("bus.retries.per.txn")
}

// SetEvents attaches the bus to a coherence event sink.  A nil sink (or
// never calling SetEvents) makes every emission a single nil check.
func (b *Bus) SetEvents(s *event.Sink) { b.events = s }

// OnTenure installs an observer invoked at the end of every tenure,
// including ARTRY-aborted ones (trace-span export).
func (b *Bus) OnTenure(f func(Tenure)) { b.onTenure = f }

// Submit queues a transaction for master t.Master.  done may be nil.
func (b *Bus) Submit(t *Transaction, done func(Result)) {
	if t.Master < 0 || t.Master >= len(b.masters) {
		panic(fmt.Sprintf("bus: submit from unknown master %d", t.Master))
	}
	b.syncExternal() // the skipped edges preceded this submission
	t.submitCycle = b.cycle
	b.txnSeq++
	t.id = b.txnSeq
	b.events.BusRequest(t.Master, uint8(t.Kind), t.Addr, t.id)
	b.masters[t.Master].queue.pushBack(pending{txn: t, done: done})
	b.wakeSched()
}

// SubmitFlush queues a snoop-triggered write-back for master id.  It is
// placed after any retried transaction already at the head of the queue but
// ahead of ordinary pending work, reflecting that a snoop push is serviced
// at the master's earliest opportunity *after* its own pending retry (the
// PowerPC 60x ordering the paper describes).
func (b *Bus) SubmitFlush(t *Transaction, done func(Result)) {
	m := b.masters[t.Master]
	b.syncExternal() // the skipped edges preceded this submission
	t.submitCycle = b.cycle
	b.txnSeq++
	t.id = b.txnSeq
	b.events.BusRequest(t.Master, uint8(t.Kind), t.Addr, t.id)
	idx := 0
	for idx < m.queue.len() && m.queue.at(idx).txn.retries > 0 {
		idx++
	}
	m.queue.insertAt(idx, pending{txn: t, done: done})
	b.wakeSched()
}

// QueueLen reports the number of requests pending for master id.
func (b *Bus) QueueLen(id int) int { return b.masters[id].queue.len() }

// Idle reports whether the bus has no tenure in progress and no queued work.
func (b *Bus) Idle() bool {
	if b.busy {
		return false
	}
	for _, m := range b.masters {
		if m.queue.len() > 0 {
			return false
		}
	}
	return true
}

// Tick advances the bus by one bus cycle.
func (b *Bus) Tick(now uint64) {
	if b.clock != nil && now > 0 {
		b.sync(now - 1) // bulk-apply any skipped edges before this one
	}
	b.cycle++
	if b.busy {
		b.stats.BusyCycles++
		// Pipelined mode: overlap the next tenure's arbitration and
		// address phase with the current data phase, as AHB-class buses
		// do.  Same-granule transactions are excluded so per-line
		// coherence actions stay serialised.
		if b.cfg.Pipelined && b.next == nil && b.remaining > 0 {
			if id := b.pickMasterExcludingLine(b.curAddr, b.curMaster); id >= 0 {
				pt := b.prepare(now, id)
				if pt.ok {
					b.next = &pt
					b.stats.Overlapped++
				}
				// An aborted overlapped tenure consumed only spare
				// address-phase bandwidth.
			}
		}
		b.remaining--
		if b.remaining <= 0 {
			b.complete(now)
			if b.next != nil {
				pt := b.next
				b.next = nil
				b.busy = true
				b.remaining = pt.latency
				if b.remaining <= 0 {
					b.remaining = 1
				}
				b.cur = pt.p
				b.curRes = pt.res
				b.curBuf = pt.buf
				b.curMaster = pt.p.txn.Master
				b.curKind = pt.p.txn.Kind
				b.curAddr = pt.p.txn.Addr
				b.curAbort = false
				b.curStart = now
				b.curRetries = pt.p.txn.retries
			}
		}
		return
	}
	id := b.pickMaster()
	if id < 0 {
		b.stats.IdleCycles++
		return
	}
	b.grant(now, id)
}

// pickMasterExcludingLine is pickMaster restricted to masters whose head
// transaction touches a different 32-byte granule than addr (and is not
// the master currently on the bus, whose requests must stay ordered).
func (b *Bus) pickMasterExcludingLine(addr uint32, curMaster int) int {
	const granule = 32
	ready := func(id int) bool {
		m := b.masters[id]
		if id == curMaster || m.queue.len() == 0 || b.cycle < m.holdUntil {
			return false
		}
		return m.queue.at(0).txn.Addr/granule != addr/granule
	}
	if b.preferredNext >= 0 && ready(b.preferredNext) {
		id := b.preferredNext
		b.preferredNext = -1
		return id
	}
	n := len(b.masters)
	for i := 1; i <= n; i++ {
		id := (b.lastGranted + i) % n
		if ready(id) {
			return id
		}
	}
	return -1
}

func (b *Bus) pickMaster() int {
	ready := func(id int) bool {
		m := b.masters[id]
		return m.queue.len() > 0 && b.cycle >= m.holdUntil
	}
	if b.preferredNext >= 0 && ready(b.preferredNext) {
		id := b.preferredNext
		b.preferredNext = -1
		return id
	}
	n := len(b.masters)
	for i := 1; i <= n; i++ {
		id := (b.lastGranted + i) % n
		if ready(id) {
			return id
		}
	}
	return -1
}

// prepared is a tenure whose address phase (arbitration, snooping, slave
// access) has completed; only the data-phase cycles remain.
type prepared struct {
	p       pending
	res     Result
	latency int
	ok      bool // false: the tenure was ARTRYed
	// buf is the pooled buffer backing res.Data, if any; it travels with the
	// tenure so complete can return it to the pool.
	buf []uint32
}

func (b *Bus) grant(now uint64, id int) {
	pt := b.prepare(now, id)
	b.busy = true
	b.curStart = now
	if !pt.ok {
		b.remaining = 1   // address phase; the grant consumed the arbitration cycle
		b.cur = pending{} // nothing to complete
		return
	}
	b.remaining = 1 + pt.latency // address phase + data; grant was the arbitration cycle
	b.cur = pt.p
	b.curRes = pt.res
	b.curBuf = pt.buf
}

func (b *Bus) prepare(now uint64, id int) prepared {
	m := b.masters[id]
	p := m.queue.popFront()
	b.lastGranted = id
	b.stats.Tenures++
	t := p.txn
	b.curMaster, b.curKind, b.curAddr, b.curAbort = id, t.Kind, t.Addr, false
	b.curRetries = t.retries

	// Address phase: present the transaction to the precomputed snoop
	// fan-out of its master and combine the replies.
	var shared, retry, supply, drain bool
	var supplied []uint32
	if t.Kind.Snooped() {
		if b.fanoutStale {
			b.rebuildFanout()
		}
		for _, s := range b.fanout[t.Master] {
			r := s.SnoopBus(t)
			shared = shared || r.Shared
			retry = retry || r.Retry
			drain = drain || r.Drain
			if r.Supply {
				supply = true
				supplied = r.Data
			}
		}
	}

	if retry {
		// ARTRY: abort after arbitration + address phase (2 bus cycles)
		// and put the transaction back at the head of its master's queue.
		t.retries++
		b.curRetries = t.retries
		b.stats.Aborted++
		b.consecutiveAborts++
		if b.log.Enabled() {
			b.log.Addf(now, "bus", "ARTRY %s %s 0x%08x (retry %d)", m.name, t.Kind, t.Addr, t.retries)
		}
		b.curAbort = true
		b.events.Retry(t.Master, uint8(t.Kind), t.Addr, t.retries, drain, t.id)
		m.queue.pushFront(p)
		m.holdUntil = b.cycle + uint64(b.cfg.RetryBackoff)
		// Two livelock signatures: nothing at all completing (the paper's
		// Figure 4 deadlock, both masters stalled), or one master's
		// transaction being retried without bound while others progress
		// (starvation — e.g. a cached lock line ping-ponging through the
		// ISR).  Either way the system has lost forward progress.
		if (b.consecutiveAborts >= b.cfg.DeadlockThreshold || t.retries >= b.cfg.DeadlockThreshold) && !b.deadlock {
			b.deadlock = true
			if b.log.Enabled() {
				b.log.Addf(now, "bus", "hardware deadlock detected (consecutive aborts %d, transaction retries %d)", b.consecutiveAborts, t.retries)
			}
			if b.onDeadlock != nil {
				b.onDeadlock()
			}
		}
		return prepared{}
	}
	b.consecutiveAborts = 0
	b.mGrantWait.Observe(b.cycle - t.submitCycle)
	b.events.BusGrant(t.Master, uint8(t.Kind), t.Addr, shared, t.id)

	// Data phase.
	res := Result{Shared: shared}
	latency := 0
	var dev Device
	for _, d := range b.devices {
		if d.Contains(t.Addr) {
			dev = d
			break
		}
	}
	var buf []uint32
	switch {
	case supply && (t.Kind == ReadLine || t.Kind == ReadLineOwn):
		res.Supplied = true
		buf = b.fills.get(t.Words)
		copy(buf, supplied)
		res.Data = buf
		latency = b.cfg.C2CFirst + (t.Words-1)*b.cfg.C2CPerWord
		b.stats.Supplied++
		b.stats.LineFills++
	case dev != nil:
		latency, res = dev.Access(t)
		res.Shared = shared
		b.countKind(t.Kind)
	default:
		latency = b.memAccess(t, &res)
		if t.Kind == ReadLine || t.Kind == ReadLineOwn {
			buf = res.Data
		}
	}
	if shared {
		b.stats.SharedSeen++
	}

	latency += m.latency // wrapper protocol-conversion cost
	if b.log.Enabled() {
		b.log.Addf(now, "bus", "grant %s %s 0x%08x shared=%v lat=%d", m.name, t.Kind, t.Addr, shared, latency)
	}
	return prepared{p: p, res: res, latency: latency, ok: true, buf: buf}
}

func (b *Bus) countKind(k Kind) {
	switch k {
	case ReadLine, ReadLineOwn:
		b.stats.LineFills++
	case Upgrade:
		b.stats.LineUpgrades++
	case WriteLine, WriteLineInv:
		b.stats.WriteBacks++
	case ReadWord:
		b.stats.WordReads++
	case WriteWord:
		b.stats.WordWrites++
	case RMWWord:
		b.stats.RMWs++
	case UpdateWord:
		b.stats.WordUpdates++
	}
}

func (b *Bus) memAccess(t *Transaction, res *Result) int {
	b.countKind(t.Kind)
	switch t.Kind {
	case ReadLine, ReadLineOwn:
		res.Data = b.fills.get(t.Words)
		b.mem.ReadLine(t.Addr, res.Data)
		return b.cfg.Timing.BurstLatency(t.Words)
	case WriteLine, WriteLineInv:
		b.mem.WriteLine(t.Addr, t.Data)
		return b.cfg.Timing.BurstLatency(len(t.Data))
	case Upgrade:
		return 1
	case ReadWord:
		res.Val = b.mem.ReadWord(t.Addr)
		return b.cfg.Timing.SingleWord
	case WriteWord:
		b.mem.WriteWord(t.Addr, t.Val)
		return b.cfg.Timing.SingleWord
	case RMWWord:
		res.Val = b.mem.ReadWord(t.Addr)
		b.mem.WriteWord(t.Addr, t.Val)
		return b.cfg.Timing.SingleWord + 2
	case UpdateWord:
		// Word broadcast cache-to-cache: sharers patched during the snoop
		// phase; memory untouched.
		return 2
	default:
		panic(fmt.Sprintf("bus: unknown transaction kind %v", t.Kind))
	}
}

func (b *Bus) complete(now uint64) {
	b.busy = false
	p, res, buf := b.cur, b.curRes, b.curBuf
	b.cur, b.curRes, b.curBuf = pending{}, Result{}, nil
	if b.onTenure != nil {
		b.onTenure(Tenure{
			Master:  b.curMaster,
			Kind:    b.curKind,
			Addr:    b.curAddr,
			Start:   b.curStart,
			End:     now,
			Aborted: p.txn == nil,
			Retries: b.curRetries,
		})
	}
	if p.txn == nil {
		return // aborted tenure
	}
	b.mTenure.Observe(now - b.curStart)
	b.mRetries.Observe(uint64(p.txn.retries))
	b.stats.Completed++
	if b.log.Enabled() {
		b.log.Addf(now, "bus", "done  %s %s 0x%08x", b.masters[p.txn.Master].name, p.txn.Kind, p.txn.Addr)
	}
	// Emitted before the completion callbacks so a subscriber sees the
	// master's queue state settle before any synchronous resubmission (e.g.
	// an upgrade falling back to a fill).
	b.events.BusComplete(p.txn.Master, uint8(p.txn.Kind), p.txn.Addr, p.txn.id)
	for _, o := range b.obs {
		o(p.txn, res)
	}
	if p.done != nil {
		p.done(res)
	}
	// The completion callback and observers have returned; reclaim the fill
	// buffer (Result.Data's validity window ends here).
	b.fills.put(buf)
}

// Probe is a waveform-oriented snapshot of the bus state (package vcd).
type Probe struct {
	// Busy reports a tenure in progress.
	Busy bool
	// Master/Kind/Addr describe the current (or last) tenure.
	Master int
	Kind   Kind
	Addr   uint32
	// Aborting marks the current tenure as ARTRYed.
	Aborting bool
}

// Probe returns the current bus activity snapshot.
func (b *Bus) Probe() Probe {
	return Probe{Busy: b.busy, Master: b.curMaster, Kind: b.curKind, Addr: b.curAddr, Aborting: b.curAbort && b.busy}
}

// PreferNext asks the arbiter to grant master id at the next opportunity
// (the paper's BOFF: the arbiter boots the current master so the snoop
// hitter can drain).  Called by snoopers that asserted Retry.
func (b *Bus) PreferNext(id int) { b.preferredNext = id }
