package bus

import (
	"testing"

	"hetcc/internal/memory"
)

// Micro-benchmarks for the zero-garbage fast path.  Run with
//
//	go test -bench BenchmarkHotLoop -benchmem ./internal/bus
//
// and read allocs/op as the headline number: every benchmark here should
// report 0 allocs/op except the deliberately unpooled fill baseline.

var benchSink []uint32

func benchRoundTrip(b *testing.B, bs *Bus, txn *Transaction) {
	b.Helper()
	b.ReportAllocs()
	var cycle uint64
	// Warm the ring, fan-out and fill pool outside the timed region.
	bs.Submit(txn, nil)
	for !bs.Idle() {
		bs.Tick(cycle)
		cycle++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Submit(txn, nil)
		for !bs.Idle() {
			bs.Tick(cycle)
			cycle++
		}
	}
}

// BenchmarkHotLoopBusTick: one master, line fill from memory, no snoopers.
func BenchmarkHotLoopBusTick(b *testing.B) {
	bs := New(Config{Timing: memory.DefaultTiming()}, memory.New(), nil)
	m := bs.AddMaster("m")
	benchRoundTrip(b, bs, &Transaction{Master: m, Kind: ReadLine, Addr: 0x400, Words: 8})
}

// BenchmarkHotLoopSnoopFanout: same fill, broadcast to three snoopers via
// the precomputed per-master fan-out.
func BenchmarkHotLoopSnoopFanout(b *testing.B) {
	bs := New(Config{Timing: memory.DefaultTiming()}, memory.New(), nil)
	m := bs.AddMaster("m")
	for i := 0; i < 3; i++ {
		bs.AddSnooper(bs.AddMaster("snooped"), nopSnooper{})
	}
	benchRoundTrip(b, bs, &Transaction{Master: m, Kind: ReadLineOwn, Addr: 0x2000, Words: 8})
}

// BenchmarkHotLoopFillPooled: fill-buffer recycling through the bus linePool.
func BenchmarkHotLoopFillPooled(b *testing.B) {
	b.ReportAllocs()
	var p linePool
	p.put(make([]uint32, 8))
	for i := 0; i < b.N; i++ {
		buf := p.get(8)
		buf[0] = uint32(i)
		benchSink = buf
		p.put(buf)
	}
}

// BenchmarkHotLoopFillUnpooled: the pre-pool baseline — one fresh slice per
// line fill, i.e. one heap allocation per transaction.
func BenchmarkHotLoopFillUnpooled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := make([]uint32, 8)
		buf[0] = uint32(i)
		benchSink = buf
	}
}
