// Package workload generates the paper's microbenchmark programs (Section
// 4): one task per processor, each entering a lock-protected critical
// section, touching and modifying a number of shared cache lines for
// exec_time iterations, and exiting.
//
// Scenarios:
//
//   - WCS (worst case): both tasks keep accessing the *same* blocks of
//     memory, so every critical section conflicts with the previous one;
//   - BCS (best case): only one task (the ARM920T in the paper) uses the
//     critical section, so under the proposed solution nothing ever needs
//     to be drained;
//   - TCS (typical case): each task randomly picks a shared block among 10
//     before entering the critical section.
//
// Under the Software strategy the generator appends the explicit per-line
// drain (clean) instructions the programmer must add before releasing the
// lock; the other strategies need none.
package workload

import (
	"fmt"

	"hetcc/internal/isa"
	"hetcc/internal/platform"
	"hetcc/internal/sim"
)

// Scenario selects the microbenchmark shape.
type Scenario uint8

const (
	// WCS is the worst-case scenario.
	WCS Scenario = iota
	// TCS is the typical-case scenario.
	TCS
	// BCS is the best-case scenario.
	BCS
)

// String names the scenario as in the paper.
func (s Scenario) String() string {
	switch s {
	case WCS:
		return "WCS"
	case TCS:
		return "TCS"
	case BCS:
		return "BCS"
	default:
		return fmt.Sprintf("Scenario(%d)", uint8(s))
	}
}

// Scenarios lists all three in the paper's order.
func Scenarios() []Scenario { return []Scenario{WCS, BCS, TCS} }

// Alternate reports whether the paper's strict lock alternation applies:
// it does whenever more than one task contends (WCS, TCS), and must not
// when only one task enters the critical section (BCS).
func (s Scenario) Alternate() bool { return s != BCS }

// Params parameterises the microbenchmark.
type Params struct {
	// Lines is the number of cache lines accessed per iteration (the
	// x-axis of Figures 5–7).
	Lines int
	// ExecTime is the paper's exec_time: inner iterations over the lines
	// within one critical section.
	ExecTime int
	// Iterations is the number of critical-section entries per
	// participating task.
	Iterations int
	// WordsPerLine is how many words of each line an iteration touches
	// (read + modify); defaults to the full 8-word line.
	WordsPerLine int
	// Blocks is the TCS shared-block pool size (paper: 10).
	Blocks int
	// CSTask is the task that enters the critical section in BCS
	// (default 1: the ARM920T on the PowerPC755+ARM920T platform).
	CSTask int
	// Seed drives the TCS random block selection.
	Seed uint64
	// BlockAffinityPct (0..100) is the probability that a TCS task keeps
	// its previous block instead of re-picking uniformly.  The paper
	// underspecifies the TCS selection dynamics; its Figure 7 sits much
	// closer to the best case than the worst, implying strong temporal
	// locality, which this knob models (default 75).
	BlockAffinityPct int
	// LineBytes is the platform line size (default 32).
	LineBytes int
	// PreDelay is think-time in CPU cycles before each lock acquisition
	// (the TCS "picks up shared blocks ... before getting into the
	// critical section" computation).
	PreDelay int
}

// Defaults fills zero fields with the paper-derived defaults.
func (p Params) Defaults() Params {
	if p.Lines == 0 {
		p.Lines = 8
	}
	if p.ExecTime == 0 {
		p.ExecTime = 1
	}
	if p.Iterations == 0 {
		p.Iterations = 8
	}
	if p.WordsPerLine == 0 {
		p.WordsPerLine = 8
	}
	if p.Blocks == 0 {
		p.Blocks = 10
	}
	if p.CSTask == 0 {
		p.CSTask = 1
	}
	if p.LineBytes == 0 {
		p.LineBytes = 32
	}
	if p.Seed == 0 {
		p.Seed = 0x9e3779b9
	}
	if p.BlockAffinityPct == 0 {
		p.BlockAffinityPct = 75
	}
	if p.PreDelay == 0 {
		p.PreDelay = 8
	}
	return p
}

// Validate rejects inconsistent parameters.
func (p Params) Validate() error {
	if p.Lines <= 0 || p.Lines > maxLinesPerBlock {
		return fmt.Errorf("workload: lines must be 1..%d, got %d", maxLinesPerBlock, p.Lines)
	}
	if p.ExecTime <= 0 {
		return fmt.Errorf("workload: exec_time must be positive, got %d", p.ExecTime)
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("workload: iterations must be positive, got %d", p.Iterations)
	}
	if p.WordsPerLine <= 0 || p.WordsPerLine > p.LineBytes/4 {
		return fmt.Errorf("workload: words per line must be 1..%d, got %d", p.LineBytes/4, p.WordsPerLine)
	}
	if p.Blocks <= 0 || p.Blocks > maxBlocks {
		return fmt.Errorf("workload: blocks must be 1..%d, got %d", maxBlocks, p.Blocks)
	}
	if p.BlockAffinityPct < 0 || p.BlockAffinityPct > 100 {
		return fmt.Errorf("workload: block affinity must be 0..100%%, got %d", p.BlockAffinityPct)
	}
	return nil
}

const (
	// blockStride separates shared blocks so they never share cache lines.
	blockStride      = 0x1000
	maxLinesPerBlock = blockStride / 32
	maxBlocks        = 64
)

// BlockBase returns the base address of shared block b.
func BlockBase(b int) uint32 {
	return platform.SharedBase + uint32(b)*blockStride
}

// LineAddr returns the address of line l within block b.
func (p Params) LineAddr(block, line int) uint32 {
	return BlockBase(block) + uint32(line*p.LineBytes)
}

// Value encodes a unique, nonzero store value identifying task, round,
// line and word — the golden-model checker relies on uniqueness.
func Value(task, round, line, word int) uint32 {
	return uint32(task+1)<<28 | uint32(round&0xfff)<<16 | uint32(line&0xff)<<8 | uint32(word&0x7f+1)
}

// Programs generates one program per task.  In BCS only CSTask runs the
// critical-section loop; the other tasks halt immediately (the paper:
// "the PowerPC755 does not access it").
func Programs(s Scenario, p Params, sol platform.Solution, tasks int) ([]isa.Program, error) {
	p = p.Defaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tasks <= 0 {
		return nil, fmt.Errorf("workload: need at least one task")
	}
	if s == BCS && (p.CSTask < 0 || p.CSTask >= tasks) {
		return nil, fmt.Errorf("workload: BCS CS task %d out of range for %d tasks", p.CSTask, tasks)
	}
	progs := make([]isa.Program, tasks)
	for t := 0; t < tasks; t++ {
		if s == BCS && t != p.CSTask {
			progs[t] = isa.NewBuilder().Halt()
			continue
		}
		progs[t] = buildTask(s, p, sol, t)
	}
	return progs, nil
}

func buildTask(s Scenario, p Params, sol platform.Solution, task int) isa.Program {
	rng := sim.NewRNG(p.Seed + uint64(task)*0x9e3779b97f4a7c15)
	b := isa.NewBuilder()
	block := 0
	for round := 0; round < p.Iterations; round++ {
		if s == TCS && (round == 0 || rng.Intn(100) >= p.BlockAffinityPct) {
			block = rng.Intn(p.Blocks)
		}
		if p.PreDelay > 0 {
			b.Delay(p.PreDelay)
		}
		b.Lock(0)
		for e := 0; e < p.ExecTime; e++ {
			for l := 0; l < p.Lines; l++ {
				base := p.LineAddr(block, l)
				for w := 0; w < p.WordsPerLine; w++ {
					addr := base + uint32(4*w)
					b.Read(addr)
					b.Write(addr, Value(task, round, l, w))
				}
			}
		}
		if sol == platform.Software {
			// The programmer must drain/invalidate every used line before
			// leaving the critical section (paper Section 4).
			for l := 0; l < p.Lines; l++ {
				b.Clean(p.LineAddr(block, l))
			}
		}
		b.Unlock(0)
	}
	return b.Halt()
}

// Footprint returns every shared word a run with these parameters can
// touch (tests use it to cross-check final memory against the golden
// model).
func (p Params) Footprint(s Scenario) []uint32 {
	p = p.Defaults()
	blocks := 1
	if s == TCS {
		blocks = p.Blocks
	}
	var out []uint32
	for blk := 0; blk < blocks; blk++ {
		for l := 0; l < p.Lines; l++ {
			base := p.LineAddr(blk, l)
			for w := 0; w < p.WordsPerLine; w++ {
				out = append(out, base+uint32(4*w))
			}
		}
	}
	return out
}
