package workload

import (
	"fmt"

	"hetcc/internal/isa"
	"hetcc/internal/platform"
)

// Pattern selects one of the canonical sharing patterns used by the
// ablation studies (beyond the paper's WCS/TCS/BCS microbenches).
type Pattern uint8

const (
	// PingPong: two tasks alternately read and write one shared word —
	// the fine-grain pattern where update-based protocols shine.
	PingPong Pattern = iota
	// ProducerConsumer: task 0 fills a buffer, task 1 reads it, through a
	// lock-protected hand-off each round.
	ProducerConsumer
	// Migratory: each task in turn reads-modifies-writes the whole
	// working set (classic migratory data, invalidation's best case).
	Migratory
	// FalseSharing: tasks write *disjoint* words that share cache lines —
	// all coherence traffic is protocol overhead.
	FalseSharing
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PingPong:
		return "ping-pong"
	case ProducerConsumer:
		return "producer-consumer"
	case Migratory:
		return "migratory"
	case FalseSharing:
		return "false-sharing"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Patterns lists all canned patterns.
func Patterns() []Pattern {
	return []Pattern{PingPong, ProducerConsumer, Migratory, FalseSharing}
}

// PatternParams sizes a pattern run.
type PatternParams struct {
	// Rounds is the number of hand-offs / rounds per task (default 8).
	Rounds int
	// Lines sizes the buffer for ProducerConsumer/Migratory/FalseSharing
	// (default 8).
	Lines int
	// LineBytes defaults to 32.
	LineBytes int
}

func (p PatternParams) defaults() PatternParams {
	if p.Rounds == 0 {
		p.Rounds = 8
	}
	if p.Lines == 0 {
		p.Lines = 8
	}
	if p.LineBytes == 0 {
		p.LineBytes = 32
	}
	return p
}

// PatternPrograms generates one program per task (two tasks) for the
// pattern.  All shared accesses are lock-disciplined so the golden checker
// applies; the lock manager must be configured with Alternate so rounds
// interleave deterministically.
func PatternPrograms(pat Pattern, p PatternParams) ([]isa.Program, error) {
	p = p.defaults()
	if p.Rounds <= 0 || p.Lines <= 0 {
		return nil, fmt.Errorf("workload: bad pattern params %+v", p)
	}
	base := platform.SharedBase
	switch pat {
	case PingPong:
		word := base
		mk := func(task int) isa.Program {
			b := isa.NewBuilder()
			for r := 0; r < p.Rounds; r++ {
				b.Lock(0)
				b.Read(word)
				b.Write(word, uint32(task+1)<<16|uint32(r+1))
				b.Unlock(0)
			}
			return b.Halt()
		}
		return []isa.Program{mk(0), mk(1)}, nil

	case ProducerConsumer:
		producer := isa.NewBuilder()
		consumer := isa.NewBuilder()
		for r := 0; r < p.Rounds; r++ {
			producer.Lock(0)
			for l := 0; l < p.Lines; l++ {
				for w := 0; w < p.LineBytes/4; w++ {
					producer.Write(base+uint32(l*p.LineBytes+4*w), uint32(r+1)<<12|uint32(l)<<4|uint32(w))
				}
			}
			producer.Unlock(0)
			consumer.Lock(0)
			for l := 0; l < p.Lines; l++ {
				for w := 0; w < p.LineBytes/4; w++ {
					consumer.Read(base + uint32(l*p.LineBytes+4*w))
				}
			}
			consumer.Unlock(0)
		}
		return []isa.Program{producer.Halt(), consumer.Halt()}, nil

	case Migratory:
		mk := func(task int) isa.Program {
			b := isa.NewBuilder()
			for r := 0; r < p.Rounds; r++ {
				b.Lock(0)
				for l := 0; l < p.Lines; l++ {
					addr := base + uint32(l*p.LineBytes)
					b.Read(addr)
					b.Write(addr, uint32(task+1)<<20|uint32(r)<<8|uint32(l))
				}
				b.Unlock(0)
			}
			return b.Halt()
		}
		return []isa.Program{mk(0), mk(1)}, nil

	case FalseSharing:
		// Task t owns word t of every line; writes race on lines, never
		// on words.  Each task uses its own lock purely to satisfy the
		// race checker; the traffic under study is the line ping-pong.
		mk := func(task int) isa.Program {
			b := isa.NewBuilder()
			for r := 0; r < p.Rounds; r++ {
				b.Lock(0)
				for l := 0; l < p.Lines; l++ {
					addr := base + uint32(l*p.LineBytes+4*task)
					b.Read(addr)
					b.Write(addr, uint32(task+1)<<20|uint32(r)<<8|uint32(l))
				}
				b.Unlock(0)
			}
			return b.Halt()
		}
		return []isa.Program{mk(0), mk(1)}, nil

	default:
		return nil, fmt.Errorf("workload: unknown pattern %v", pat)
	}
}
