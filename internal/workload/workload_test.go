package workload

import (
	"testing"
	"testing/quick"

	"hetcc/internal/isa"
	"hetcc/internal/platform"
)

func TestDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.Lines == 0 || p.ExecTime == 0 || p.Iterations == 0 || p.WordsPerLine != 8 || p.Blocks != 10 || p.LineBytes != 32 {
		t.Fatalf("defaults %+v", p)
	}
}

func TestValidateBounds(t *testing.T) {
	bad := []Params{
		{Lines: -1},
		{Lines: maxLinesPerBlock + 1},
		{Lines: 1, ExecTime: -1},
		{Lines: 1, ExecTime: 1, Iterations: -1},
		{Lines: 1, ExecTime: 1, Iterations: 1, WordsPerLine: 9, LineBytes: 32},
		{Lines: 1, ExecTime: 1, Iterations: 1, WordsPerLine: 1, Blocks: maxBlocks + 1, LineBytes: 32},
		{Lines: 1, ExecTime: 1, Iterations: 1, WordsPerLine: 1, Blocks: 1, LineBytes: 32, BlockAffinityPct: 101},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) validated", i, p)
		}
	}
}

func TestScenarioStringsAndAlternation(t *testing.T) {
	if WCS.String() != "WCS" || TCS.String() != "TCS" || BCS.String() != "BCS" {
		t.Fatal("scenario names")
	}
	if !WCS.Alternate() || !TCS.Alternate() || BCS.Alternate() {
		t.Fatal("alternation flags wrong")
	}
	if len(Scenarios()) != 3 {
		t.Fatal("scenario list")
	}
}

func TestProgramsStructureWCS(t *testing.T) {
	p := Params{Lines: 4, ExecTime: 2, Iterations: 3, WordsPerLine: 2}
	progs, err := Programs(WCS, p, platform.Proposed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("%d programs", len(progs))
	}
	for task, prog := range progs {
		if err := prog.Validate(); err != nil {
			t.Fatalf("task %d: %v", task, err)
		}
		wantAccess := 3 * 2 * 4 * 2 // iter * exec * lines * words
		if prog.Reads() != wantAccess || prog.Writes() != wantAccess {
			t.Fatalf("task %d: %d reads %d writes, want %d", task, prog.Reads(), prog.Writes(), wantAccess)
		}
		locks, unlocks, cleans := countKind(prog, isa.LockAcquire), countKind(prog, isa.LockRelease), countKind(prog, isa.CleanLine)
		if locks != 3 || unlocks != 3 {
			t.Fatalf("task %d: %d locks %d unlocks", task, locks, unlocks)
		}
		if cleans != 0 {
			t.Fatalf("task %d: proposed solution has %d cleans", task, cleans)
		}
	}
}

func TestSoftwareSolutionAddsDrains(t *testing.T) {
	p := Params{Lines: 5, ExecTime: 1, Iterations: 2, WordsPerLine: 1}
	progs, err := Programs(WCS, p, platform.Software, 2)
	if err != nil {
		t.Fatal(err)
	}
	for task, prog := range progs {
		if got := countKind(prog, isa.CleanLine); got != 2*5 {
			t.Fatalf("task %d: %d cleans, want 10 (lines per CS exit)", task, got)
		}
	}
}

func TestBCSOnlyCSTaskWorks(t *testing.T) {
	p := Params{Lines: 2, ExecTime: 1, Iterations: 2, CSTask: 1}
	progs, err := Programs(BCS, p, platform.Proposed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs[0]) != 1 || progs[0][0].Kind != isa.Halt {
		t.Fatalf("non-CS task program %v, want immediate halt", progs[0])
	}
	if progs[1].Reads() == 0 {
		t.Fatal("CS task does nothing")
	}
}

func TestBCSCSTaskRange(t *testing.T) {
	if _, err := Programs(BCS, Params{Lines: 1, CSTask: 5}, platform.Proposed, 2); err == nil {
		t.Fatal("out-of-range CS task accepted")
	}
}

func TestWCSTasksShareBlockZero(t *testing.T) {
	p := Params{Lines: 2, ExecTime: 1, Iterations: 2, WordsPerLine: 1}
	progs, _ := Programs(WCS, p, platform.Proposed, 2)
	for task, prog := range progs {
		for _, op := range prog {
			if op.Kind == isa.Read || op.Kind == isa.Write {
				if op.Addr < BlockBase(0) || op.Addr >= BlockBase(1) {
					t.Fatalf("task %d accesses 0x%x outside block 0", task, op.Addr)
				}
			}
		}
	}
}

func TestTCSPicksMultipleBlocksDeterministically(t *testing.T) {
	p := Params{Lines: 1, ExecTime: 1, Iterations: 50, WordsPerLine: 1, Seed: 7, BlockAffinityPct: 1}
	a, _ := Programs(TCS, p, platform.Proposed, 2)
	b, _ := Programs(TCS, p, platform.Proposed, 2)
	if len(a[0]) != len(b[0]) {
		t.Fatal("nondeterministic program length")
	}
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Fatalf("nondeterministic op %d", i)
		}
	}
	blocks := map[uint32]bool{}
	for _, op := range a[0] {
		if op.Kind == isa.Read {
			blocks[(op.Addr-platform.SharedBase)/0x1000] = true
		}
	}
	if len(blocks) < 3 {
		t.Fatalf("TCS with low affinity visited only %d blocks", len(blocks))
	}
}

func TestTCSAffinityKeepsBlocks(t *testing.T) {
	p := Params{Lines: 1, ExecTime: 1, Iterations: 50, WordsPerLine: 1, Seed: 7, BlockAffinityPct: 100}
	progs, _ := Programs(TCS, p, platform.Proposed, 1)
	blocks := map[uint32]bool{}
	for _, op := range progs[0] {
		if op.Kind == isa.Read {
			blocks[(op.Addr-platform.SharedBase)/0x1000] = true
		}
	}
	if len(blocks) != 1 {
		t.Fatalf("full affinity visited %d blocks, want 1", len(blocks))
	}
}

func TestValuesUniquePerSite(t *testing.T) {
	seen := map[uint32]bool{}
	for task := 0; task < 2; task++ {
		for round := 0; round < 4; round++ {
			for line := 0; line < 4; line++ {
				for word := 0; word < 8; word++ {
					v := Value(task, round, line, word)
					if v == 0 {
						t.Fatal("zero value emitted")
					}
					if seen[v] {
						t.Fatalf("duplicate value %#x", v)
					}
					seen[v] = true
				}
			}
		}
	}
}

func TestFootprintCoversProgramAddresses(t *testing.T) {
	p := Params{Lines: 3, ExecTime: 1, Iterations: 4, WordsPerLine: 2, Seed: 3}.Defaults()
	for _, s := range Scenarios() {
		fp := map[uint32]bool{}
		for _, a := range p.Footprint(s) {
			fp[a] = true
		}
		progs, err := Programs(s, p, platform.Software, 2)
		if err != nil {
			t.Fatal(err)
		}
		for task, prog := range progs {
			for _, op := range prog {
				if op.Kind == isa.Read || op.Kind == isa.Write {
					if !fp[op.Addr] {
						t.Fatalf("%v task %d: 0x%x outside footprint", s, task, op.Addr)
					}
				}
			}
		}
	}
}

// TestProgramsAlwaysValidate: any parameter combination either errors or
// produces validating programs for all scenarios and solutions.
func TestProgramsAlwaysValidate(t *testing.T) {
	f := func(lines, exec, iters, words uint8, seed uint64) bool {
		p := Params{
			Lines:        int(lines%32) + 1,
			ExecTime:     int(exec%4) + 1,
			Iterations:   int(iters%6) + 1,
			WordsPerLine: int(words%8) + 1,
			Seed:         seed,
		}
		for _, s := range Scenarios() {
			for _, sol := range platform.Solutions() {
				progs, err := Programs(s, p, sol, 2)
				if err != nil {
					return false
				}
				for _, prog := range progs {
					if prog.Validate() != nil {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func countKind(p isa.Program, k isa.Kind) int {
	n := 0
	for _, op := range p {
		if op.Kind == k {
			n++
		}
	}
	return n
}
