package workload_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"hetcc"
	"hetcc/internal/coherence"
	"hetcc/internal/platform"
	"hetcc/internal/workload"
)

// FuzzAuditedRuns runs fuzzed (small) workloads on all three case-study
// platforms under every solution and scenario with the invariant auditor on:
// whatever the parameters, a run that completes must be coherent and produce
// zero invariant violations.  The 27-combination sweep fans out across the
// deterministic batch executor (results checked in combination order), so it
// also exercises concurrent simulations under `go test -race`.  (This package
// is workload_test so it can drive the full simulator through the hetcc
// facade without an import cycle.)
func FuzzAuditedRuns(f *testing.F) {
	f.Add(4, 1, 2, 4, uint64(1))
	f.Add(8, 2, 4, 8, uint64(42))
	f.Add(1, 1, 1, 1, uint64(7))
	f.Fuzz(func(t *testing.T, lines, execTime, iters, words int, seed uint64) {
		// Keep fuzzed runs small enough that the 27-combination sweep stays
		// fast; out-of-range inputs are covered by FuzzPrograms.
		if lines < 1 || lines > 8 || execTime < 1 || execTime > 2 ||
			iters < 1 || iters > 4 || words < 1 || words > 8 {
			t.Skip("out of the audited-run envelope")
		}
		params := hetcc.Params{
			Lines:        lines,
			ExecTime:     execTime,
			Iterations:   iters,
			WordsPerLine: words,
			Seed:         seed,
		}
		presets := []struct {
			name   string
			procs  []platform.ProcessorSpec
			reject bool // core.Reduce must refuse the protocol mix
		}{
			{"pf1", platform.ARMPair(), false},
			{"pf2", platform.PPCARm(), false},
			{"pf3", platform.PPCI486(), false},
			// An update×invalidate mix: the reduction rejects it under
			// every solution (Reduce runs at platform build, before the
			// coherence strategy is wired).
			{"dragon-moesi", []platform.ProcessorSpec{
				platform.Generic("P0-Dragon", coherence.Dragon, 1),
				platform.Generic("P1-MOESI", coherence.MOESI, 1),
			}, true},
			// A coherence-less master beside MESI: the PF2 implicit-MEI
			// reduction must keep it coherent under every solution.
			{"none-mesi", []platform.ProcessorSpec{
				platform.Generic("P0-none", coherence.None, 1),
				platform.Generic("P1-MESI", coherence.MESI, 1),
			}, false},
		}
		var (
			specs   []hetcc.BatchSpec
			rejects []bool
		)
		for _, pf := range presets {
			for _, scenario := range workload.Scenarios() {
				for _, sol := range platform.Solutions() {
					specs = append(specs, hetcc.BatchSpec{
						Label: fmt.Sprintf("%s/%v/%v", pf.name, scenario, sol),
						Config: hetcc.Config{
							Scenario:   scenario,
							Solution:   sol,
							Processors: pf.procs,
							Params:     params,
							Verify:     true,
							Audit:      true,
							MaxCycles:  5_000_000,
						},
					})
					rejects = append(rejects, pf.reject)
				}
			}
		}
		for i, r := range hetcc.RunBatch(specs, hetcc.BatchOptions{Jobs: runtime.GOMAXPROCS(0)}) {
			if rejects[i] {
				err := r.Err
				if err == nil && r.Result.Err != nil {
					err = r.Result.Err
				}
				if err == nil {
					t.Fatalf("%s: update-based mix was accepted, want a reduction rejection", r.Label)
				}
				if !strings.Contains(err.Error(), "Dragon") {
					t.Fatalf("%s: rejection %v does not name the Dragon protocol", r.Label, err)
				}
				continue
			}
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Label, r.Err)
			}
			res := r.Result
			if res.Err != nil {
				t.Fatalf("%s: run failed: %v", r.Label, res.Err)
			}
			if !res.Coherent() {
				t.Fatalf("%s: stale reads: %v", r.Label, res.Violations)
			}
			a := res.Audit
			if a == nil {
				t.Fatalf("%s: audit summary missing", r.Label)
			}
			if a.ViolationCount != 0 {
				t.Fatalf("%s: %d invariant violations, first: %v",
					r.Label, a.ViolationCount, a.Violations[0])
			}
		}
	})
}
