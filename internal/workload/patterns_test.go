package workload

import (
	"testing"

	"hetcc/internal/isa"
	"hetcc/internal/platform"
)

func TestPatternProgramsValidate(t *testing.T) {
	for _, pat := range Patterns() {
		progs, err := PatternPrograms(pat, PatternParams{})
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if len(progs) != 2 {
			t.Fatalf("%v: %d programs", pat, len(progs))
		}
		for task, prog := range progs {
			if err := prog.Validate(); err != nil {
				t.Fatalf("%v task %d: %v", pat, task, err)
			}
		}
		if pat.String() == "" {
			t.Fatal("empty pattern name")
		}
	}
}

func TestPatternShapes(t *testing.T) {
	pp, _ := PatternPrograms(PingPong, PatternParams{Rounds: 4})
	if pp[0].Reads() != 4 || pp[0].Writes() != 4 {
		t.Fatalf("ping-pong shape: %d/%d", pp[0].Reads(), pp[0].Writes())
	}
	pc, _ := PatternPrograms(ProducerConsumer, PatternParams{Rounds: 2, Lines: 4})
	if pc[0].Writes() != 2*4*8 || pc[0].Reads() != 0 {
		t.Fatalf("producer shape: %d/%d", pc[0].Reads(), pc[0].Writes())
	}
	if pc[1].Reads() != 2*4*8 || pc[1].Writes() != 0 {
		t.Fatalf("consumer shape: %d/%d", pc[1].Reads(), pc[1].Writes())
	}
	// False sharing: the two tasks touch disjoint words of the same lines.
	fs, _ := PatternPrograms(FalseSharing, PatternParams{Rounds: 1, Lines: 2})
	words := map[uint32]int{}
	for task, prog := range fs {
		for _, op := range prog {
			if op.Kind == isa.Write {
				if prev, clash := words[op.Addr]; clash && prev != task {
					t.Fatalf("false-sharing tasks write the same word 0x%x", op.Addr)
				}
				words[op.Addr] = task
			}
		}
	}
	if len(words) != 4 { // 2 lines x 2 tasks
		t.Fatalf("%d distinct words", len(words))
	}
}

func TestPatternParamsValidation(t *testing.T) {
	if _, err := PatternPrograms(PingPong, PatternParams{Rounds: -1}); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := PatternPrograms(Pattern(99), PatternParams{}); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

// TestPatternsRunCoherently drives every pattern end to end on the PF2
// platform with the golden checker.
func TestPatternsRunCoherently(t *testing.T) {
	for _, pat := range Patterns() {
		p, err := platform.Build(platform.Config{
			Processors: platform.PPCARm(),
			Solution:   platform.Proposed,
			Lock:       platform.LockChoice{Kind: platform.LockUncachedTAS, Alternate: true, SpinDelay: 4},
			Verify:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		progs, err := PatternPrograms(pat, PatternParams{Rounds: 4, Lines: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.LoadPrograms(progs); err != nil {
			t.Fatal(err)
		}
		res := p.Run(20_000_000)
		if res.Err != nil {
			t.Fatalf("%v: %v", pat, res.Err)
		}
		if !res.Coherent() {
			t.Fatalf("%v: stale read: %v", pat, res.Violations[0])
		}
	}
}
