package workload

import (
	"testing"

	"hetcc/internal/platform"
)

// FuzzPrograms: arbitrary parameter combinations must either be rejected
// by validation or yield structurally valid programs for every scenario
// and strategy — never panic, never emit an unterminated program.
func FuzzPrograms(f *testing.F) {
	f.Add(8, 1, 8, 8, uint64(1), 75)
	f.Add(32, 4, 16, 1, uint64(42), 0)
	f.Add(1, 1, 1, 8, uint64(0), 100)
	f.Add(-3, 2, 5, 9, uint64(7), 101)
	f.Fuzz(func(t *testing.T, lines, execTime, iters, words int, seed uint64, affinity int) {
		p := Params{
			Lines:            lines,
			ExecTime:         execTime,
			Iterations:       iters,
			WordsPerLine:     words,
			Seed:             seed,
			BlockAffinityPct: affinity,
		}
		for _, s := range Scenarios() {
			for _, sol := range platform.Solutions() {
				progs, err := Programs(s, p, sol, 2)
				if err != nil {
					continue // rejected by validation: fine
				}
				for task, prog := range progs {
					if verr := prog.Validate(); verr != nil {
						t.Fatalf("%v/%v task %d: invalid program from accepted params %+v: %v", s, sol, task, p, verr)
					}
					for _, op := range prog {
						if op.Addr != 0 && !platform.InShared(op.Addr) {
							t.Fatalf("%v/%v task %d: op %v outside the shared region", s, sol, task, op)
						}
					}
				}
			}
		}
	})
}
