package sharing

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// LineSummary is the final per-line record: classification, participant
// counts, false-sharing verdict and traffic tally.
type LineSummary struct {
	// Base is the line base address, hex ("0x20000040").
	Base string `json:"base"`
	// Class is the lifetime classification (Class.String).
	Class string `json:"class"`
	// Readers/Writers count distinct masters that read/wrote the line.
	Readers int `json:"readers"`
	Writers int `json:"writers"`
	// FalseSharing marks word-evidence false-sharing candidates.
	FalseSharing bool `json:"false_sharing,omitempty"`
	// Traffic is the line's event tally.
	Traffic LineTraffic `json:"traffic"`
}

// MatrixCell is one non-zero directed entry of the communication matrix.
type MatrixCell struct {
	From int  `json:"from"`
	To   int  `json:"to"`
	Cell Cell `json:"traffic"`
}

// RegionCount is one (region, access-count) pair of a heat window.
type RegionCount struct {
	Base  string `json:"base"`
	Count uint64 `json:"count"`
}

// HeatWindow is one time bucket of the address heatmap.
type HeatWindow struct {
	// Start is the window's first engine cycle.
	Start uint64 `json:"start"`
	// Regions lists the accessed regions, sorted by base.
	Regions []RegionCount `json:"regions,omitempty"`
	// Overflow counts accesses to regions beyond the per-window slot bound.
	Overflow uint64 `json:"overflow,omitempty"`
	// Total is the window's access count (sum of region counts + overflow).
	Total uint64 `json:"total"`
}

// Heatmap is the bounded windowed address heatmap.
type Heatmap struct {
	// Window is the bucket width in engine cycles; RegionBytes the address
	// granularity.
	Window      uint64 `json:"window"`
	RegionBytes int    `json:"region_bytes"`
	// Windows holds the retained buckets, oldest first.
	Windows []HeatWindow `json:"windows,omitempty"`
	// DroppedWindows/DroppedAccesses count buckets evicted past the
	// retention bound (their accesses still figure in conservation).
	DroppedWindows  uint64 `json:"dropped_windows,omitempty"`
	DroppedAccesses uint64 `json:"dropped_accesses,omitempty"`
}

// Summary is the collector's deterministic final report: it depends only on
// the event stream, never on map iteration order or wall-clock time.
type Summary struct {
	// Masters is the platform's bus-master count (cores + DMA).
	Masters int `json:"masters"`
	// ClassCounts tallies lines per classification name.
	ClassCounts map[string]int `json:"class_counts,omitempty"`
	// FalseSharingLines counts the false-sharing candidates.
	FalseSharingLines int `json:"false_sharing_lines,omitempty"`
	// Lines lists every tracked line, sorted by base address.
	Lines []LineSummary `json:"lines,omitempty"`
	// OverflowTraffic aggregates lines beyond the tracking bound (nil when
	// none overflowed).
	OverflowTraffic *LineTraffic `json:"overflow_traffic,omitempty"`
	// Matrix lists the non-zero communication cells, row-major by
	// (from, to).
	Matrix []MatrixCell `json:"matrix,omitempty"`
	// Heatmap is the windowed address heatmap.
	Heatmap Heatmap `json:"heatmap"`
	// Totals are the raw event-stream tallies the per-line and per-cell
	// counters sum back to.
	Totals Totals `json:"totals"`
}

// Summary builds the deterministic report.  Call Finish first so the open
// heat window is sealed; nil collectors return nil.
func (c *Collector) Summary() *Summary {
	if c == nil {
		return nil
	}
	s := &Summary{
		Masters: c.masters,
		Heatmap: Heatmap{
			Window:          c.window,
			RegionBytes:     c.regionBytes,
			DroppedWindows:  c.droppedWindows,
			DroppedAccesses: c.droppedAccesses,
		},
		Totals: c.totals,
	}
	if len(c.states) > 0 {
		s.ClassCounts = make(map[string]int)
		s.Lines = make([]LineSummary, 0, len(c.states))
		for i := range c.states {
			st := &c.states[i]
			ls := LineSummary{
				Base:         fmt.Sprintf("0x%08x", st.base),
				Class:        st.class().String(),
				Readers:      bits.OnesCount64(st.readers),
				Writers:      bits.OnesCount64(st.writers),
				FalseSharing: st.falseSharing(),
				Traffic:      st.traffic,
			}
			s.ClassCounts[ls.Class]++
			if ls.FalseSharing {
				s.FalseSharingLines++
			}
			s.Lines = append(s.Lines, ls)
		}
		sort.Slice(s.Lines, func(i, j int) bool { return s.Lines[i].Base < s.Lines[j].Base })
	}
	if c.overflowTraffic != (LineTraffic{}) {
		ov := c.overflowTraffic
		s.OverflowTraffic = &ov
	}
	for from := 0; from < c.masters; from++ {
		for to := 0; to < c.masters; to++ {
			cell := c.matrix[from*c.masters+to]
			if !cell.zero() {
				s.Matrix = append(s.Matrix, MatrixCell{From: from, To: to, Cell: cell})
			}
		}
	}
	for i := 0; i < c.ringLen; i++ {
		w := &c.ring[(c.ringStart+i)%c.maxWindows]
		hw := HeatWindow{Start: w.start, Overflow: w.overflow, Total: w.total}
		for j := 0; j < w.used; j++ {
			hw.Regions = append(hw.Regions, RegionCount{
				Base:  fmt.Sprintf("0x%08x", w.regions[j]),
				Count: w.counts[j],
			})
		}
		sort.Slice(hw.Regions, func(a, b int) bool { return hw.Regions[a].Base < hw.Regions[b].Base })
		s.Heatmap.Windows = append(s.Heatmap.Windows, hw)
	}
	return s
}

// Conserved checks the summary's conservation invariants — the per-line,
// per-cell and per-window counters each sum exactly to the event-stream
// totals — and returns a description of the first violation (empty when
// conserved).  Property tests call this; it is how the classification layer
// proves it lost no events.
func (s *Summary) Conserved() string {
	var lines LineTraffic
	for i := range s.Lines {
		lines.add(&s.Lines[i].Traffic)
	}
	if s.OverflowTraffic != nil {
		lines.add(s.OverflowTraffic)
	}
	if got := lines.grants(); got != s.Totals.Grants {
		return fmt.Sprintf("line grants %d != total grants %d", got, s.Totals.Grants)
	}
	if lines.Invalidations != s.Totals.Invalidations {
		return fmt.Sprintf("line invalidations %d != total %d", lines.Invalidations, s.Totals.Invalidations)
	}
	if lines.Drains != s.Totals.Drains {
		return fmt.Sprintf("line drains %d != total %d", lines.Drains, s.Totals.Drains)
	}
	if lines.Supplies != s.Totals.Supplies {
		return fmt.Sprintf("line supplies %d != total %d", lines.Supplies, s.Totals.Supplies)
	}
	if lines.Converted != s.Totals.Converted {
		return fmt.Sprintf("line converted %d != total %d", lines.Converted, s.Totals.Converted)
	}
	if got := lines.SharedOverrides + s.Totals.UnattributedOverrides; got != s.Totals.SharedOverrides {
		return fmt.Sprintf("line shared-overrides %d != total %d", got, s.Totals.SharedOverrides)
	}
	var cells Cell
	for i := range s.Matrix {
		c := &s.Matrix[i].Cell
		cells.Supplies += c.Supplies
		cells.Drains += c.Drains
		cells.Invalidations += c.Invalidations
		cells.Converted += c.Converted
	}
	if cells.Supplies != s.Totals.Supplies || cells.Drains != s.Totals.Drains ||
		cells.Invalidations != s.Totals.Invalidations || cells.Converted != s.Totals.Converted {
		return fmt.Sprintf("matrix sums %+v != totals %+v", cells, s.Totals)
	}
	var heat uint64
	for i := range s.Heatmap.Windows {
		w := &s.Heatmap.Windows[i]
		var inWindow uint64
		for _, rc := range w.Regions {
			inWindow += rc.Count
		}
		if inWindow+w.Overflow != w.Total {
			return fmt.Sprintf("window @%d regions %d + overflow %d != total %d", w.Start, inWindow, w.Overflow, w.Total)
		}
		heat += w.Total
	}
	if heat+s.Heatmap.DroppedAccesses != s.Totals.Grants {
		return fmt.Sprintf("heatmap accesses %d + dropped %d != total grants %d", heat, s.Heatmap.DroppedAccesses, s.Totals.Grants)
	}
	// Every line carries exactly one class, and the tallies agree.
	classed := 0
	for _, n := range s.ClassCounts {
		classed += n
	}
	if classed != len(s.Lines) {
		return fmt.Sprintf("class counts cover %d lines, have %d", classed, len(s.Lines))
	}
	return ""
}

// HotLines returns the indices of the n busiest lines (by granted-transfer
// count, ties broken by base address) into s.Lines.
func (s *Summary) HotLines(n int) []int {
	if s == nil {
		return nil
	}
	idx := make([]int, len(s.Lines))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ga, gb := s.Lines[idx[a]].Traffic.grants(), s.Lines[idx[b]].Traffic.grants()
		if ga != gb {
			return ga > gb
		}
		return s.Lines[idx[a]].Base < s.Lines[idx[b]].Base
	})
	if n > 0 && n < len(idx) {
		idx = idx[:n]
	}
	return idx
}

// WriteJSONL exports the summary as one JSON object per line: a "line" row
// per tracked line, a "cell" row per non-zero matrix entry, a "heat" row per
// retained window, and one final "totals" row.
func (s *Summary) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	wf := func(format string, args ...any) error {
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return fmt.Errorf("sharing: jsonl write: %w", err)
		}
		return nil
	}
	for i := range s.Lines {
		l := &s.Lines[i]
		t := &l.Traffic
		if err := wf(`{"row":"line","base":%q,"class":%q,"readers":%d,"writers":%d,"false_sharing":%v,`+
			`"misses":%d,"upgrades":%d,"write_backs":%d,"word_ops":%d,"invalidations":%d,"drains":%d,"supplies":%d,"converted":%d,"shared_overrides":%d}`+"\n",
			l.Base, l.Class, l.Readers, l.Writers, l.FalseSharing,
			t.Misses, t.Upgrades, t.WriteBacks, t.WordOps, t.Invalidations, t.Drains, t.Supplies, t.Converted, t.SharedOverrides); err != nil {
			return err
		}
	}
	for i := range s.Matrix {
		m := &s.Matrix[i]
		if err := wf(`{"row":"cell","from":%d,"to":%d,"supplies":%d,"drains":%d,"invalidations":%d,"converted":%d}`+"\n",
			m.From, m.To, m.Cell.Supplies, m.Cell.Drains, m.Cell.Invalidations, m.Cell.Converted); err != nil {
			return err
		}
	}
	for i := range s.Heatmap.Windows {
		hw := &s.Heatmap.Windows[i]
		if err := wf(`{"row":"heat","start":%d,"total":%d,"overflow":%d,"regions":[`, hw.Start, hw.Total, hw.Overflow); err != nil {
			return err
		}
		for j, rc := range hw.Regions {
			sep := ""
			if j > 0 {
				sep = ","
			}
			if err := wf(`%s{"base":%q,"count":%d}`, sep, rc.Base, rc.Count); err != nil {
				return err
			}
		}
		if err := wf("]}\n"); err != nil {
			return err
		}
	}
	return wf(`{"row":"totals","grants":%d,"snoop_hits":%d,"mem_accesses":%d,"invalidations":%d,"drains":%d,"supplies":%d,"converted":%d,"shared_overrides":%d,"false_sharing_lines":%d,"lines":%d,"dropped_windows":%d}`+"\n",
		s.Totals.Grants, s.Totals.SnoopHits, s.Totals.MemAccesses, s.Totals.Invalidations, s.Totals.Drains,
		s.Totals.Supplies, s.Totals.Converted, s.Totals.SharedOverrides, s.FalseSharingLines, len(s.Lines), s.Heatmap.DroppedWindows)
}
