package sharing

import (
	"strings"
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/coherence"
	"hetcc/internal/event"
)

// Event constructors for hand-built streams.  Cycle stamping is the caller's
// business (the collector only uses it for heat-window bucketing).

func grant(cycle uint64, core int, addr uint32, k bus.Kind) event.Record {
	return event.Record{Cycle: cycle, Kind: event.BusGrant, Core: core, Addr: addr, BusKind: uint8(k)}
}

func mem(cycle uint64, core int, addr uint32, write bool) event.Record {
	return event.Record{Cycle: cycle, Kind: event.MemAccess, Core: core, Addr: addr, Write: write}
}

// snoop builds a SnoopHit: core is the snooper, peer the requester.
func snoop(cycle uint64, core int, addr uint32, peer int, inval, supply, flush, converted bool) event.Record {
	return event.Record{Cycle: cycle, Kind: event.SnoopHit, Core: core, Addr: addr, Peer: peer,
		Inval: inval, Supply: supply, Flush: flush, Converted: converted}
}

func change(cycle uint64, core int, addr uint32, old, new coherence.State) event.Record {
	return event.Record{Cycle: cycle, Kind: event.StateChange, Core: core, Addr: addr, Old: old, New: new}
}

func feed(c *Collector, recs []event.Record) {
	for i := range recs {
		c.HandleEvent(&recs[i])
	}
}

// TestClassification drives the per-line state machine with hand-built event
// sequences, one per lifetime class, including the false-sharing and
// wrapper-converted producer-consumer vectors.
func TestClassification(t *testing.T) {
	const base = 0x2000_0040
	cases := []struct {
		name       string
		recs       []event.Record
		class      Class
		falseShare bool
	}{
		{
			// One master does everything.
			name: "private",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLine),
				mem(1, 0, base, false),
				change(2, 0, base, coherence.Exclusive, coherence.Modified),
				grant(3, 0, base, bus.WriteLine), // write-back: traffic only
			},
			class: ClassPrivate,
		},
		{
			// Two masters fill the line, nobody ever dirties it.
			name: "read-only",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLine),
				mem(1, 0, base, false),
				grant(2, 1, base, bus.ReadLine),
				mem(2, 1, base+4, false),
			},
			class: ClassReadOnly,
		},
		{
			// Master 0 writes, master 1 only reads.
			name: "producer-consumer",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLineOwn),
				mem(1, 0, base, true),
				grant(2, 1, base, bus.ReadLine),
				mem(2, 1, base, false),
			},
			class: ClassProducerConsumer,
		},
		{
			// Same pattern through a wrapper: the consumer's fill is snooped
			// with the converted flag (the paper's read-to-write conversion),
			// which must not disturb the classification.
			name: "producer-consumer converted",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLineOwn),
				mem(1, 0, base, true),
				grant(2, 1, base, bus.ReadLine),
				mem(2, 1, base, false),
				snoop(2, 0, base, 1, true, false, true, true),
			},
			class: ClassProducerConsumer,
		},
		{
			// Read-modify-migrate: each new writer read the line first.
			name: "migratory",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLine),
				mem(1, 0, base, false),
				change(2, 0, base, coherence.Exclusive, coherence.Modified),
				grant(3, 1, base, bus.ReadLine),
				mem(3, 1, base, false),
				change(4, 1, base, coherence.Exclusive, coherence.Modified),
				grant(5, 0, base, bus.ReadLine),
				mem(5, 0, base, false),
				change(6, 0, base, coherence.Exclusive, coherence.Modified),
			},
			class: ClassMigratory,
		},
		{
			// Two writers with no read before the hand-off: general
			// read-write sharing, not migratory.
			name: "read-write",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLineOwn),
				mem(1, 0, base, true),
				grant(2, 1, base, bus.ReadLineOwn),
				mem(2, 1, base, true),
				grant(3, 0, base, bus.ReadLine),
				mem(3, 0, base, false),
			},
			class: ClassReadWrite,
		},
		{
			// Disjoint word sets: coherence traffic with no word actually
			// communicated.
			name: "false sharing",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLineOwn),
				mem(1, 0, base, true), // word 0
				grant(2, 1, base, bus.ReadLineOwn),
				mem(2, 1, base+4, true), // word 1
			},
			class:      ClassReadWrite,
			falseShare: true,
		},
		{
			// Overlapping word sets: true sharing, not flagged.
			name: "true sharing not flagged",
			recs: []event.Record{
				grant(1, 0, base, bus.ReadLineOwn),
				mem(1, 0, base, true),
				grant(2, 1, base, bus.ReadLineOwn),
				mem(2, 1, base, true),
			},
			class: ClassReadWrite,
		},
		{
			// Word-grain uncached traffic classifies too (lock words).
			name: "uncached rmw",
			recs: []event.Record{
				grant(1, 0, base, bus.RMWWord),
				grant(2, 1, base, bus.RMWWord),
			},
			class: ClassReadWrite,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCollector(Config{Masters: 2, LineBytes: 32})
			feed(c, tc.recs)
			c.Finish()
			s := c.Summary()
			if bad := s.Conserved(); bad != "" {
				t.Fatalf("conservation violated: %s", bad)
			}
			var got *LineSummary
			for i := range s.Lines {
				if s.Lines[i].Base == "0x20000040" {
					got = &s.Lines[i]
				}
			}
			if got == nil {
				t.Fatalf("line not tracked; summary has %d lines", len(s.Lines))
			}
			if got.Class != tc.class.String() {
				t.Errorf("class = %s, want %s (readers %d, writers %d)",
					got.Class, tc.class, got.Readers, got.Writers)
			}
			if got.FalseSharing != tc.falseShare {
				t.Errorf("false_sharing = %v, want %v", got.FalseSharing, tc.falseShare)
			}
			classed := 0
			for _, cnt := range s.ClassCounts {
				classed += cnt
			}
			if classed != len(s.Lines) {
				t.Errorf("class counts cover %d of %d lines", classed, len(s.Lines))
			}
		})
	}
}

// TestMatrixOrientation pins the communication-matrix edge directions:
// supplies and drains flow snooper→requester, invalidations and conversions
// requester→snooper.
func TestMatrixOrientation(t *testing.T) {
	const base = 0x2000_0080
	c := NewCollector(Config{Masters: 3, LineBytes: 32})
	recs := []event.Record{
		grant(1, 1, base, bus.ReadLine),
		snoop(1, 0, base, 1, false, true, false, false), // 0 supplies to 1
		snoop(2, 2, base, 1, false, false, true, false), // 2 drains for 1
		snoop(3, 0, base, 1, true, false, false, true),  // 1 invalidates 0, converted
	}
	feed(c, recs)
	c.Finish()
	s := c.Summary()
	if bad := s.Conserved(); bad != "" {
		t.Fatalf("conservation violated: %s", bad)
	}
	find := func(from, to int) Cell {
		for _, m := range s.Matrix {
			if m.From == from && m.To == to {
				return m.Cell
			}
		}
		return Cell{}
	}
	if got := find(0, 1); got.Supplies != 1 {
		t.Errorf("supply edge 0→1 = %+v, want 1 supply", got)
	}
	if got := find(2, 1); got.Drains != 1 {
		t.Errorf("drain edge 2→1 = %+v, want 1 drain", got)
	}
	if got := find(1, 0); got.Invalidations != 1 || got.Converted != 1 {
		t.Errorf("invalidation edge 1→0 = %+v, want 1 invalidation + 1 converted", got)
	}
}

// TestSharedOverrideAttribution: overrides latch onto the master's last
// completed line; an override before any completion counts as unattributed
// (and still conserves).
func TestSharedOverrideAttribution(t *testing.T) {
	const base = 0x2000_00c0
	c := NewCollector(Config{Masters: 2, LineBytes: 32})
	recs := []event.Record{
		{Cycle: 1, Kind: event.SharedOverride, Core: 0}, // before any complete
		grant(2, 0, base, bus.ReadLine),
		{Cycle: 3, Kind: event.BusComplete, Core: 0, Addr: base + 8},
		{Cycle: 3, Kind: event.SharedOverride, Core: 0},
	}
	feed(c, recs)
	c.Finish()
	s := c.Summary()
	if bad := s.Conserved(); bad != "" {
		t.Fatalf("conservation violated: %s", bad)
	}
	if s.Totals.SharedOverrides != 2 || s.Totals.UnattributedOverrides != 1 {
		t.Fatalf("totals = %+v, want 2 overrides with 1 unattributed", s.Totals)
	}
	if len(s.Lines) != 1 || s.Lines[0].Traffic.SharedOverrides != 1 {
		t.Fatalf("line attribution wrong: %+v", s.Lines)
	}
}

// TestHeatmapRetention: windows seal on bucket crossings, retention keeps the
// newest MaxWindows, and evicted accesses stay conserved.
func TestHeatmapRetention(t *testing.T) {
	c := NewCollector(Config{Masters: 1, LineBytes: 32, Window: 100, MaxWindows: 2})
	var recs []event.Record
	for w := uint64(0); w < 4; w++ {
		for i := uint32(0); i < 3; i++ {
			recs = append(recs, grant(w*100+uint64(i), 0, 0x1000+i*0x2000, bus.ReadWord))
		}
	}
	feed(c, recs)
	c.Finish()
	s := c.Summary()
	if bad := s.Conserved(); bad != "" {
		t.Fatalf("conservation violated: %s", bad)
	}
	h := s.Heatmap
	if h.Window != 100 || len(h.Windows) != 2 {
		t.Fatalf("retained %d windows of width %d, want 2 of 100", len(h.Windows), h.Window)
	}
	if h.Windows[0].Start != 200 || h.Windows[1].Start != 300 {
		t.Fatalf("retained windows start at %d, %d; want 200, 300", h.Windows[0].Start, h.Windows[1].Start)
	}
	if h.DroppedWindows != 2 || h.DroppedAccesses != 6 {
		t.Fatalf("dropped %d windows / %d accesses, want 2 / 6", h.DroppedWindows, h.DroppedAccesses)
	}
	for _, w := range h.Windows {
		if w.Total != 3 || len(w.Regions) != 3 {
			t.Fatalf("window @%d: total %d over %d regions, want 3 over 3", w.Start, w.Total, len(w.Regions))
		}
	}
}

// TestLineBound: lines beyond MaxLines aggregate into the overflow bucket
// and grant counts still conserve.
func TestLineBound(t *testing.T) {
	c := NewCollector(Config{Masters: 1, LineBytes: 32, MaxLines: 2})
	var recs []event.Record
	for i := uint32(0); i < 5; i++ {
		recs = append(recs, grant(uint64(i), 0, 0x1000+i*32, bus.ReadLine))
	}
	feed(c, recs)
	c.Finish()
	s := c.Summary()
	if bad := s.Conserved(); bad != "" {
		t.Fatalf("conservation violated: %s", bad)
	}
	if len(s.Lines) != 2 {
		t.Fatalf("tracked %d lines, want 2", len(s.Lines))
	}
	if s.OverflowTraffic == nil || s.OverflowTraffic.Misses != 3 {
		t.Fatalf("overflow bucket = %+v, want 3 misses", s.OverflowTraffic)
	}
	if s.Totals.Grants != 5 {
		t.Fatalf("grants = %d, want 5", s.Totals.Grants)
	}
}

// TestNilSafety: the nil collector and the nil summary are inert.
func TestNilSafety(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector reports enabled")
	}
	r := grant(1, 0, 0x40, bus.ReadLine)
	c.HandleEvent(&r)
	c.Finish()
	if c.Summary() != nil {
		t.Error("nil collector produced a summary")
	}
	var s *Summary
	if err := s.WriteJSONL(nil); err != nil {
		t.Errorf("nil summary WriteJSONL: %v", err)
	}
	if s.HotLines(5) != nil {
		t.Error("nil summary has hot lines")
	}
}

// TestHotLinesAndJSONL: hot-line ordering is by grant count with address
// tie-break, and the JSONL export carries a row per line/cell/window plus
// the final totals row.
func TestHotLinesAndJSONL(t *testing.T) {
	c := NewCollector(Config{Masters: 2, LineBytes: 32})
	recs := []event.Record{
		grant(1, 0, 0x1000, bus.ReadLine),
		grant(2, 0, 0x1020, bus.ReadLine),
		grant(3, 1, 0x1020, bus.ReadLine),
		snoop(3, 0, 0x1020, 1, false, true, false, false),
	}
	feed(c, recs)
	c.Finish()
	s := c.Summary()
	hot := s.HotLines(10)
	if len(hot) != 2 || s.Lines[hot[0]].Base != "0x00001020" {
		t.Fatalf("hot lines = %v (%+v)", hot, s.Lines)
	}
	var sb strings.Builder
	if err := s.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	rows := strings.Count(out, "\n")
	if want := len(s.Lines) + len(s.Matrix) + len(s.Heatmap.Windows) + 1; rows != want {
		t.Fatalf("JSONL has %d rows, want %d:\n%s", rows, want, out)
	}
	if !strings.Contains(out, `"row":"totals"`) {
		t.Fatalf("JSONL missing totals row:\n%s", out)
	}
}
