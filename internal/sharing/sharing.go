// Package sharing characterises *why* the coherence protocol behaved as it
// did: which lines are private, read-only shared, read-write shared,
// migratory or producer-consumer; which master pairs actually communicate
// (data supplies, drain-and-retries, invalidations, wrapper-converted
// traffic); and where on the address map the bus traffic concentrates over
// time.  This is the workload-characterisation layer the adaptive-protocol
// and interconnect roadmap items depend on — per-line sharing-pattern
// detection is the prerequisite for hybrid update/invalidate policies, and
// the communication matrix is the evidence a split-transaction or directory
// backend would be judged against.
//
// The collector is driven entirely by the coherence event stream (package
// event): classification reads the line-grain BusGrant records, the matrix
// reads the oriented SnoopHit records, false-sharing detection reads the
// word-grain MemAccess records, and shared-override attribution latches each
// master's last BusComplete (the bus emits BusComplete before the completion
// callback that triggers the wrapper's SharedOverride, so the latch is
// exact).  It has zero simulation-kernel imports and the same layering rules
// as package span: a nil *Collector is valid everywhere and records nothing,
// and the hot paths carry no sharing-specific code at all.
//
// Retention is bounded like the metrics sampler: per-line state stops
// growing at MaxLines (further lines aggregate into an overflow traffic
// bucket, so counters still sum to the event-stream totals), and the
// windowed heatmap keeps the most recent MaxWindows windows, counting what
// it evicts.  The steady-state emit path allocates nothing (pinned by
// TestAllocsSharingCollector).
package sharing

import (
	"math/bits"

	"hetcc/internal/bus"
	"hetcc/internal/event"
)

// Class is the lifetime sharing classification of one cache line.
type Class uint8

const (
	// ClassPrivate: a single master accounts for every access.
	ClassPrivate Class = iota
	// ClassReadOnly: at least two masters touched the line, none wrote.
	ClassReadOnly
	// ClassProducerConsumer: exactly one master writes, at least one other
	// master reads.
	ClassProducerConsumer
	// ClassMigratory: ownership migrates — at least two masters write, and
	// every writer hand-off was preceded by the new writer reading the line
	// (the classic read-modify-migrate pattern).
	ClassMigratory
	// ClassReadWrite: general read-write sharing (everything else).
	ClassReadWrite
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassPrivate:
		return "private"
	case ClassReadOnly:
		return "read-only"
	case ClassProducerConsumer:
		return "producer-consumer"
	case ClassMigratory:
		return "migratory"
	case ClassReadWrite:
		return "read-write"
	default:
		return "unknown"
	}
}

// Bounds of the collector's retained state.
const (
	// DefaultMaxLines bounds the per-line state (mirrors span.DefaultMaxTxns
	// in spirit: sharing-enabled runs cannot grow memory without bound).
	// Lines beyond the bound aggregate into the overflow traffic bucket.
	DefaultMaxLines = 1 << 14
	// DefaultMaxWindows bounds heatmap retention; evicted windows count into
	// DroppedWindows/DroppedAccesses so totals stay conserved.
	DefaultMaxWindows = 256
	// DefaultRegionBytes is the heatmap's address granularity (32 lines of
	// 32 bytes).
	DefaultRegionBytes = 1024
	// heatSlots is the number of distinct regions one heat window can
	// resolve; accesses beyond that count into the window's Overflow.
	heatSlots = 32
	// maskMasters is the number of masters whose word-offset access sets are
	// tracked for false-sharing detection (platforms here have 2–3 cores
	// plus DMA).  Masters beyond it still classify, they just contribute no
	// word evidence.
	maskMasters = 8
)

// Config sizes a Collector.
type Config struct {
	// Masters is the number of bus masters (cores plus the DMA engine).
	Masters int
	// LineBytes is the platform's cache line size.
	LineBytes int
	// Window is the heatmap bucket width in engine cycles (0 selects the
	// platform's metrics default, wired by the builder).
	Window uint64
	// MaxLines / MaxWindows / RegionBytes override the retention bounds
	// (0 selects the defaults above).
	MaxLines    int
	MaxWindows  int
	RegionBytes int
}

// lineState is the per-line lifetime state machine.  It is a flat value
// struct (fixed-size arrays, no pointers) so line creation costs only the
// map insert and the backing-slice growth, and steady-state updates allocate
// nothing.
type lineState struct {
	base uint32
	// readers/writers are master bitmasks (masters >= 64 are not tracked;
	// no supported platform comes close).
	readers, writers uint64
	// readSince marks masters that read the line since the last write, for
	// the migratory hand-off rule.
	readSince  uint64
	lastWriter int16
	// writerChanges counts writer hand-offs; readHandoffs the subset where
	// the new writer had read the line since the previous write.
	writerChanges, readHandoffs uint64
	// masks are per-master word-offset access sets (false-sharing
	// evidence), fed by MemAccess and word-grain bus operations.
	masks   [maskMasters]uint64
	traffic LineTraffic
}

// LineTraffic is the per-line traffic tally.  Misses, Upgrades, WriteBacks
// and WordOps partition the line's BusGrant events, so their sum across all
// lines (plus the overflow bucket) equals the grant total exactly — the
// conservation invariant Summary.Conserved checks.
type LineTraffic struct {
	// Misses counts line fills (RdLine/RdLineX grants).
	Misses uint64 `json:"misses,omitempty"`
	// Upgrades counts address-only ownership upgrades.
	Upgrades uint64 `json:"upgrades,omitempty"`
	// WriteBacks counts full-line writes (WrLine write-backs and the DMA's
	// WrLineInv).
	WriteBacks uint64 `json:"write_backs,omitempty"`
	// WordOps counts word-grain operations (uncached reads/writes, RMWs,
	// Dragon updates).
	WordOps uint64 `json:"word_ops,omitempty"`
	// Invalidations counts snoop hits that invalidated a cached copy of
	// this line; Drains the hits resolved by drain-and-retry; Supplies the
	// hits answered by a cache-to-cache transfer; Converted the hits whose
	// observed op a wrapper rewrote.
	Invalidations uint64 `json:"invalidations,omitempty"`
	Drains        uint64 `json:"drains,omitempty"`
	Supplies      uint64 `json:"supplies,omitempty"`
	Converted     uint64 `json:"converted,omitempty"`
	// SharedOverrides counts wrapper shared-signal overrides attributed to
	// this line via the last-BusComplete latch.
	SharedOverrides uint64 `json:"shared_overrides,omitempty"`
}

func (t *LineTraffic) grants() uint64 {
	return t.Misses + t.Upgrades + t.WriteBacks + t.WordOps
}

func (t *LineTraffic) add(o *LineTraffic) {
	t.Misses += o.Misses
	t.Upgrades += o.Upgrades
	t.WriteBacks += o.WriteBacks
	t.WordOps += o.WordOps
	t.Invalidations += o.Invalidations
	t.Drains += o.Drains
	t.Supplies += o.Supplies
	t.Converted += o.Converted
	t.SharedOverrides += o.SharedOverrides
}

// Cell is one directed communication-matrix entry: traffic that master From
// caused to flow toward (or at) master To.
type Cell struct {
	// Supplies counts cache-to-cache transfers From supplied to To's
	// requests; Drains the drain-and-retries From imposed on To (including
	// the TAG CAM's ISR drains).
	Supplies uint64 `json:"supplies,omitempty"`
	Drains   uint64 `json:"drains,omitempty"`
	// Invalidations counts To's cached copies that From's transactions
	// invalidated; Converted the subset of From's transactions that To's
	// wrapper rewrote (the paper's read-to-write conversion), counted
	// separately so wrapper-induced invalidation traffic is attributable.
	Invalidations uint64 `json:"invalidations,omitempty"`
	Converted     uint64 `json:"converted,omitempty"`
}

func (c *Cell) zero() bool {
	return c.Supplies == 0 && c.Drains == 0 && c.Invalidations == 0 && c.Converted == 0
}

// heatWindow is one sealed (or the open) heatmap bucket.
type heatWindow struct {
	start    uint64
	used     int
	regions  [heatSlots]uint32
	counts   [heatSlots]uint64
	overflow uint64
	total    uint64
}

// Totals are the event-stream tallies the per-line and per-cell counters
// must sum back to.
type Totals struct {
	Grants          uint64 `json:"grants"`
	SnoopHits       uint64 `json:"snoop_hits,omitempty"`
	MemAccesses     uint64 `json:"mem_accesses,omitempty"`
	Invalidations   uint64 `json:"invalidations,omitempty"`
	Drains          uint64 `json:"drains,omitempty"`
	Supplies        uint64 `json:"supplies,omitempty"`
	Converted       uint64 `json:"converted,omitempty"`
	SharedOverrides uint64 `json:"shared_overrides,omitempty"`
	// UnattributedOverrides counts SharedOverride events seen before the
	// master's first BusComplete (none in practice; kept so the override
	// sum is conserved by construction).
	UnattributedOverrides uint64 `json:"unattributed_overrides,omitempty"`
}

// Collector accumulates sharing-pattern state from the coherence event
// stream.  It is not safe for concurrent use (the simulation kernel is
// single-threaded).
type Collector struct {
	lineMask    uint32
	wordsOf     uint32 // words per line
	masters     int
	maxLines    int
	window      uint64
	maxWindows  int
	regionMask  uint32
	regionBytes int

	lines  map[uint32]int
	states []lineState
	// overflowTraffic aggregates lines beyond maxLines so grant counts stay
	// conserved; overflowGrants counts the grants routed there.
	overflowTraffic LineTraffic

	matrix []Cell // masters×masters, row-major [from*masters+to]

	// lastComplete latches each master's most recent completed line base,
	// for SharedOverride attribution (the override fires inside the
	// completion callback, after BusComplete, same cycle).
	lastComplete   []uint32
	lastCompleteOK []bool

	// heat ring: the most recent maxWindows sealed windows plus the open
	// one.  All windows are pre-allocated; sealing copies a value struct.
	ring            []heatWindow
	ringStart       int
	ringLen         int
	cur             heatWindow
	curIdx          uint64
	curOpen         bool
	droppedWindows  uint64
	droppedAccesses uint64

	totals   Totals
	finished bool
}

// NewCollector creates a collector for a platform with cfg.Masters bus
// masters and cfg.LineBytes cache lines.  Zero bounds select the defaults.
func NewCollector(cfg Config) *Collector {
	if cfg.LineBytes <= 0 {
		cfg.LineBytes = 32
	}
	if cfg.Masters <= 0 {
		cfg.Masters = 1
	}
	if cfg.Window == 0 {
		cfg.Window = 10_000
	}
	if cfg.MaxLines <= 0 {
		cfg.MaxLines = DefaultMaxLines
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = DefaultMaxWindows
	}
	if cfg.RegionBytes <= 0 {
		cfg.RegionBytes = DefaultRegionBytes
	}
	return &Collector{
		lineMask:       ^uint32(cfg.LineBytes - 1),
		wordsOf:        uint32(cfg.LineBytes / 4),
		masters:        cfg.Masters,
		maxLines:       cfg.MaxLines,
		window:         cfg.Window,
		maxWindows:     cfg.MaxWindows,
		regionMask:     ^uint32(cfg.RegionBytes - 1),
		regionBytes:    cfg.RegionBytes,
		lines:          make(map[uint32]int),
		matrix:         make([]Cell, cfg.Masters*cfg.Masters),
		lastComplete:   make([]uint32, cfg.Masters),
		lastCompleteOK: make([]bool, cfg.Masters),
		ring:           make([]heatWindow, cfg.MaxWindows),
	}
}

// Enabled reports whether the collector records anything (false for nil).
func (c *Collector) Enabled() bool { return c != nil }

// line resolves (creating if within bounds) the state for a line base.
// Returns nil when the line bound is exhausted; callers then account into
// the overflow bucket.
func (c *Collector) line(base uint32) *lineState {
	if i, ok := c.lines[base]; ok {
		return &c.states[i]
	}
	if len(c.states) >= c.maxLines {
		return nil
	}
	c.lines[base] = len(c.states)
	c.states = append(c.states, lineState{base: base, lastWriter: -1})
	return &c.states[len(c.states)-1]
}

func (c *Collector) cell(from, to int) *Cell {
	if from < 0 || from >= c.masters || to < 0 || to >= c.masters {
		return nil
	}
	return &c.matrix[from*c.masters+to]
}

func (st *lineState) noteRead(m int) {
	if m < 0 || m >= 64 {
		return
	}
	bit := uint64(1) << uint(m)
	st.readers |= bit
	st.readSince |= bit
}

func (st *lineState) noteWrite(m int) {
	if m < 0 || m >= 64 {
		return
	}
	bit := uint64(1) << uint(m)
	st.writers |= bit
	if st.lastWriter >= 0 && int(st.lastWriter) != m {
		st.writerChanges++
		if st.readSince&bit != 0 {
			st.readHandoffs++
		}
	}
	st.lastWriter = int16(m)
	st.readSince = 0
}

func (st *lineState) noteWords(m int, words uint64) {
	if m < 0 || m >= maskMasters {
		return
	}
	st.masks[m] |= words
}

// class computes the line's final classification.  Every touched line lands
// in exactly one class (the arms are ordered by precedence and the last one
// is unconditional).
func (st *lineState) class() Class {
	touched := st.readers | st.writers
	switch {
	case bits.OnesCount64(touched) <= 1:
		return ClassPrivate
	case st.writers == 0:
		return ClassReadOnly
	case bits.OnesCount64(st.writers) == 1 && st.readers&^st.writers != 0:
		return ClassProducerConsumer
	case bits.OnesCount64(st.writers) >= 2 && st.writerChanges > 0 && st.writerChanges == st.readHandoffs:
		return ClassMigratory
	default:
		return ClassReadWrite
	}
}

// falseSharing reports whether the line's word evidence makes it a
// false-sharing candidate: at least two masters left word-offset evidence,
// their access sets are pairwise disjoint, and somebody wrote — coherence
// traffic without any word actually communicated.
func (st *lineState) falseSharing() bool {
	if st.writers == 0 || bits.OnesCount64(st.readers|st.writers) < 2 {
		return false
	}
	var seen uint64
	masters := 0
	for m := 0; m < maskMasters; m++ {
		mask := st.masks[m]
		if mask == 0 {
			continue
		}
		masters++
		if seen&mask != 0 {
			return false // true word sharing
		}
		seen |= mask
	}
	return masters >= 2
}

// isWriteKind reports whether a granted bus operation writes the line from
// the classifier's point of view.  WriteLine (a write-back of already-owned
// data) is neither a read nor a write access — it is the tail of earlier
// writes — and counts only as traffic.
func isWriteKind(k bus.Kind) bool {
	switch k {
	case bus.ReadLineOwn, bus.Upgrade, bus.WriteWord, bus.RMWWord, bus.UpdateWord, bus.WriteLineInv:
		return true
	default:
		return false
	}
}

// HandleEvent consumes the coherence event stream.  Subscribe it to the
// platform's event sink.  The steady-state path (already-seen lines, open
// heat window) performs no allocation.
func (c *Collector) HandleEvent(r *event.Record) {
	if c == nil {
		return
	}
	switch r.Kind {
	case event.BusGrant:
		c.totals.Grants++
		c.heatNote(r.Cycle, r.Addr)
		base := r.Addr & c.lineMask
		st := c.line(base)
		tr := &c.overflowTraffic
		if st != nil {
			tr = &st.traffic
		}
		k := bus.Kind(r.BusKind)
		switch k {
		case bus.ReadLine, bus.ReadLineOwn:
			tr.Misses++
		case bus.Upgrade:
			tr.Upgrades++
		case bus.WriteLine, bus.WriteLineInv:
			tr.WriteBacks++
		default:
			tr.WordOps++
		}
		if st == nil {
			return
		}
		if k == bus.WriteLine {
			return // write-back: traffic only, not an access
		}
		if isWriteKind(k) {
			st.noteWrite(r.Core)
		} else {
			st.noteRead(r.Core)
		}
		switch k {
		case bus.ReadWord, bus.WriteWord, bus.RMWWord, bus.UpdateWord:
			st.noteWords(r.Core, uint64(1)<<c.wordIndex(r.Addr))
		case bus.WriteLineInv:
			// A full-line write touches every word.
			st.noteWords(r.Core, (uint64(1)<<c.wordsOf)-1)
		}
	case event.MemAccess:
		c.totals.MemAccesses++
		if st := c.line(r.Addr & c.lineMask); st != nil {
			// The word-granular record carries the true access direction —
			// a write-allocate miss fills with a plain read-line grant, so
			// without it silent write hits behind the fill would classify the
			// line read-only.
			if r.Write {
				st.noteWrite(r.Core)
			} else {
				st.noteRead(r.Core)
			}
			st.noteWords(r.Core, uint64(1)<<c.wordIndex(r.Addr))
		}
	case event.SnoopHit:
		c.totals.SnoopHits++
		st := c.line(r.Addr & c.lineMask)
		tr := &c.overflowTraffic
		if st != nil {
			tr = &st.traffic
		}
		if r.Inval {
			tr.Invalidations++
			c.totals.Invalidations++
			if cell := c.cell(r.Peer, r.Core); cell != nil {
				cell.Invalidations++
			}
		}
		if r.Supply {
			tr.Supplies++
			c.totals.Supplies++
			if cell := c.cell(r.Core, r.Peer); cell != nil {
				cell.Supplies++
			}
		}
		if r.Flush {
			tr.Drains++
			c.totals.Drains++
			if cell := c.cell(r.Core, r.Peer); cell != nil {
				cell.Drains++
			}
		}
		if r.Converted {
			tr.Converted++
			c.totals.Converted++
			if cell := c.cell(r.Peer, r.Core); cell != nil {
				cell.Converted++
			}
		}
	case event.StateChange:
		// A transition into a dirty state is exact write evidence: store
		// hits on a write-back cache produce no bus transaction, so without
		// this a line filled by a read and then silently written would
		// classify read-only (its eventual write-back is traffic, not an
		// access).  Snooping only moves lines *out of* dirty states (or
		// between them, e.g. M→O on a supply), so the guard on the old state
		// never attributes a write to a snooper.
		if r.New.Dirty() && !r.Old.Dirty() {
			if st := c.line(r.Addr & c.lineMask); st != nil {
				st.noteWrite(r.Core)
			}
		}
	case event.BusComplete:
		if r.Core >= 0 && r.Core < c.masters {
			c.lastComplete[r.Core] = r.Addr & c.lineMask
			c.lastCompleteOK[r.Core] = true
		}
	case event.SharedOverride:
		c.totals.SharedOverrides++
		if r.Core >= 0 && r.Core < c.masters && c.lastCompleteOK[r.Core] {
			tr := &c.overflowTraffic
			if st := c.line(c.lastComplete[r.Core]); st != nil {
				tr = &st.traffic
			}
			tr.SharedOverrides++
		} else {
			c.totals.UnattributedOverrides++
		}
	}
}

func (c *Collector) wordIndex(addr uint32) uint32 {
	return (addr &^ c.lineMask) >> 2
}

// heatNote counts one granted access into the open window, sealing and
// rotating windows as the cycle crosses bucket boundaries.
func (c *Collector) heatNote(cycle uint64, addr uint32) {
	idx := cycle / c.window
	if !c.curOpen {
		c.cur = heatWindow{start: idx * c.window}
		c.curIdx = idx
		c.curOpen = true
	} else if idx != c.curIdx {
		c.sealWindow()
		c.cur = heatWindow{start: idx * c.window}
		c.curIdx = idx
	}
	c.cur.total++
	region := addr & c.regionMask
	for i := 0; i < c.cur.used; i++ {
		if c.cur.regions[i] == region {
			c.cur.counts[i]++
			return
		}
	}
	if c.cur.used < heatSlots {
		c.cur.regions[c.cur.used] = region
		c.cur.counts[c.cur.used] = 1
		c.cur.used++
		return
	}
	c.cur.overflow++
}

// sealWindow pushes the open window onto the ring, evicting (and counting)
// the oldest when retention is full.
func (c *Collector) sealWindow() {
	if c.cur.total == 0 {
		return
	}
	if c.ringLen == c.maxWindows {
		c.droppedWindows++
		c.droppedAccesses += c.ring[c.ringStart].total
		c.ringStart = (c.ringStart + 1) % c.maxWindows
		c.ringLen--
	}
	c.ring[(c.ringStart+c.ringLen)%c.maxWindows] = c.cur
	c.ringLen++
}

// Finish seals the open heat window.  The platform calls it once after the
// run; further events would open a new window.  Idempotent.
func (c *Collector) Finish() {
	if c == nil || c.finished {
		return
	}
	c.finished = true
	if c.curOpen {
		c.sealWindow()
		c.curOpen = false
	}
}
