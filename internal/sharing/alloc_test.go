package sharing

import (
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/coherence"
	"hetcc/internal/event"
)

// The collector rides the coherence event stream of every sharing-enabled
// run, so its steady state must add no garbage to the simulation loop: all
// per-line state is a flat value struct in a growable slice, the heat ring is
// pre-allocated, and sealing a window copies a value (`make allocs`).

// TestAllocsSharingCollector pins the steady-state emit path — already-seen
// line, open heat window — at zero allocations per event.
func TestAllocsSharingCollector(t *testing.T) {
	c := NewCollector(Config{Masters: 2, LineBytes: 32, Window: 1 << 30})
	const base = 0x2000_0040
	warm := []event.Record{
		grant(1, 0, base, bus.ReadLine),
		mem(1, 0, base, false),
		snoop(1, 1, base, 0, true, false, true, false),
		change(2, 0, base, coherence.Exclusive, coherence.Modified),
		{Cycle: 3, Kind: event.BusComplete, Core: 0, Addr: base},
	}
	feed(c, warm)

	steady := []event.Record{
		grant(4, 1, base, bus.ReadLineOwn),
		mem(4, 1, base+4, true),
		snoop(4, 0, base, 1, true, false, true, false),
		change(5, 1, base, coherence.Invalid, coherence.Modified),
		{Cycle: 5, Kind: event.BusComplete, Core: 1, Addr: base},
		{Cycle: 5, Kind: event.SharedOverride, Core: 1},
		grant(6, 0, base, bus.RMWWord),
	}
	n := testing.AllocsPerRun(1000, func() {
		for i := range steady {
			c.HandleEvent(&steady[i])
		}
	})
	if n != 0 {
		t.Fatalf("steady-state emit path allocates %.1f/op, want 0", n)
	}
}

// TestAllocsNilSharingCollector: the nil collector is a single nil check.
func TestAllocsNilSharingCollector(t *testing.T) {
	var c *Collector
	r := grant(1, 0, 0x40, bus.ReadLine)
	n := testing.AllocsPerRun(1000, func() {
		c.HandleEvent(&r)
		c.Finish()
	})
	if n != 0 {
		t.Fatalf("nil collector allocates %.1f/op, want 0", n)
	}
}
