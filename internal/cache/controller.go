package cache

import (
	"fmt"

	"hetcc/internal/bus"
	"hetcc/internal/coherence"
	"hetcc/internal/event"
	"hetcc/internal/metrics"
	"hetcc/internal/profile"
	"hetcc/internal/trace"
)

// Policy is the wrapper hook: it intercepts what the snooping cache
// controller observes on the bus and what the master samples from the
// shared signal.  Package wrapper provides implementations derived from the
// paper's protocol-integration rules; Passthrough is the no-wrapper default.
type Policy interface {
	// ConvertSnoop maps the bus operation presented to this controller's
	// snoop port.  The paper's read-to-write conversion maps BusRd to
	// BusRdX here.
	ConvertSnoop(op coherence.BusOp) coherence.BusOp
	// OverrideShared maps the shared-signal value this controller's master
	// port samples on its own fills (force-assert / force-deassert).
	OverrideShared(shared bool) bool
	// AllowSupply reports whether this controller may answer snoops with a
	// cache-to-cache transfer.  Heterogeneous integrations suppress it and
	// fall back to drain-and-retry (the requester may not support
	// receiving an intervention).
	AllowSupply() bool
}

// Passthrough is the identity Policy (no wrapper installed).
type Passthrough struct{}

// ConvertSnoop implements Policy.
func (Passthrough) ConvertSnoop(op coherence.BusOp) coherence.BusOp { return op }

// OverrideShared implements Policy.
func (Passthrough) OverrideShared(shared bool) bool { return shared }

// AllowSupply implements Policy.
func (Passthrough) AllowSupply() bool { return true }

// Status is the synchronous outcome of a controller request.
type Status int

const (
	// Done: the request completed within the call (cache hit).
	Done Status = iota
	// Pending: the request needs the bus; the completion callback fires
	// when it retires.  The CPU must stall.
	Pending
	// Busy: the controller cannot accept the request now (a request is
	// outstanding, or no victim way is available); retry next cycle.
	Busy
)

// Controller is the bus-mastering cache controller of one processor.
type Controller struct {
	name     string
	cache    *Cache
	bus      *bus.Bus
	masterID int
	policy   Policy
	log      *trace.Log

	// snoops reports whether this controller's snoop port is wired to the
	// bus.  The ARM920T's is not ("no cache coherence is supported"): its
	// drains happen in software via the interrupt service routine.
	snoops bool

	busy bool // one outstanding CPU request

	// Reusable state of the single outstanding CPU request (guarded by
	// busy): the bus transaction, its parameters, and prebound completion
	// callbacks, so a steady-state miss/upgrade/uncached access allocates
	// nothing.  The fields are written on issue and read back by the
	// completion method the request was submitted with.
	reqTxn    bus.Transaction
	reqWrite  bool
	reqAddr   uint32
	reqVal    uint32
	reqDone   func(uint32)
	reqVictim *Line
	reqStart  uint64
	reqOp     coherence.BusOp
	reqNext   coherence.State

	fillDoneFn     func(bus.Result)
	upgDoneFn      func(bus.Result)
	uncachedDoneFn func(bus.Result)
	wtWriteDoneFn  func(bus.Result)
	wtReadDoneFn   func(bus.Result)

	// wbFree is the free list of write-back jobs (see wbJob); write-backs
	// can overlap each other and the CPU request, so they carry their own
	// reusable transactions and buffers.
	wbFree []*wbJob

	// pendingWB holds line bases whose write-back is queued or in flight
	// (evicted victims, software drains; snoop flushes are tracked on the
	// line itself via flushPending).  A snoop hit on one of these must ARTRY
	// until memory is written, or another master would read stale data.
	pendingWB map[uint32]struct{}

	// writeThrough, when non-nil, marks addresses whose lines are
	// write-through (the Intel486 defines lines as write-back or
	// write-through at allocation time; WT lines follow the SI protocol:
	// they allocate Shared on read, never dirty, and stores go straight to
	// memory).  nil means every line is write-back.
	writeThrough func(addr uint32) bool

	upgradeBase uint32
	upgradeLive bool
	upgradeLost bool

	// nil-safe metric instruments (see SetMetrics); latencies in bus cycles.
	mMissLat  *metrics.Histogram
	mDrainLat *metrics.Histogram

	// nil-safe coherence event sink (see SetEvents)
	events *event.Sink

	// nil-safe stall profiler (see SetProfile).  remoteInval tracks line
	// bases whose cached copy was invalidated by a snoop carrying a wrapper
	// read→write conversion; a later fill of such a line is an
	// invalidation-induced re-miss (the paper's coherence cost).  The map is
	// only populated while profiling is enabled.
	prof        *profile.Ledger
	remoteInval map[uint32]struct{}
}

// NewController wires a controller for cache c on bus b, registering a new
// bus master.  If snoops is true the controller is attached to the snoop
// network (PF3-style processors); pass false for coherence-less processors
// whose snooping is performed by external snoop logic.
func NewController(name string, c *Cache, b *bus.Bus, policy Policy, snoops bool, log *trace.Log) *Controller {
	if policy == nil {
		policy = Passthrough{}
	}
	ctl := &Controller{
		name:      name,
		cache:     c,
		bus:       b,
		masterID:  b.AddMaster(name),
		policy:    policy,
		log:       log,
		snoops:    snoops,
		pendingWB: make(map[uint32]struct{}),
	}
	ctl.fillDoneFn = ctl.fillDone
	ctl.upgDoneFn = ctl.upgradeDone
	ctl.uncachedDoneFn = ctl.uncachedDone
	ctl.wtWriteDoneFn = ctl.wtWriteDone
	ctl.wtReadDoneFn = ctl.wtReadDone
	if snoops {
		b.AddSnooper(ctl.masterID, ctl)
	}
	return ctl
}

// MasterID returns the bus master id of this controller.
func (ctl *Controller) MasterID() int { return ctl.masterID }

// SetMetrics attaches the controller to a metrics registry.  Controllers
// share histogram names, so per-core events aggregate into one platform-wide
// distribution.  A nil registry leaves the instruments nil (no-op).
func (ctl *Controller) SetMetrics(r *metrics.Registry) {
	ctl.mMissLat = r.Histogram("cache.miss.buscycles")
	ctl.mDrainLat = r.Histogram("cache.drain.buscycles")
}

// SetEvents attaches the controller to a coherence event sink.  A nil sink
// makes every emission a single nil check.
func (ctl *Controller) SetEvents(s *event.Sink) { ctl.events = s }

// SetProfile attaches the controller to the stall-cause ledger.  A nil
// ledger disables the invalidation-re-miss bookkeeping entirely.
func (ctl *Controller) SetProfile(l *profile.Ledger) {
	ctl.prof = l
	if l != nil && ctl.remoteInval == nil {
		ctl.remoteInval = make(map[uint32]struct{})
	}
}

// markRemoteInval records that base was invalidated by a wrapper-converted
// snoop, so the next fill of base counts as an invalidation re-miss.
func (ctl *Controller) markRemoteInval(base uint32) {
	if ctl.prof != nil {
		ctl.remoteInval[base] = struct{}{}
	}
}

// noteMissProfile classifies the imminent fill of addr: if the previous copy
// was lost to a wrapper read→write conversion, the stall is an invalidation
// re-miss.  The mark is consumed either way.
func (ctl *Controller) noteMissProfile(addr uint32) {
	if ctl.prof == nil {
		return
	}
	base := ctl.cache.Config().LineAddr(addr)
	if _, ok := ctl.remoteInval[base]; ok {
		delete(ctl.remoteInval, base)
		ctl.prof.NoteInvalMiss(ctl.masterID)
	}
}

// noteState publishes a line state transition on the event stream.  State
// assignments below route through it so the auditor sees every transition.
func (ctl *Controller) noteState(base uint32, old, next coherence.State) {
	if old != next {
		ctl.events.StateChange(ctl.masterID, base, old, next)
	}
}

// Cache returns the underlying storage array.
func (ctl *Controller) Cache() *Cache { return ctl.cache }

// SetPolicy replaces the wrapper policy (used by the platform builder after
// protocol reduction).
func (ctl *Controller) SetPolicy(p Policy) {
	if p == nil {
		p = Passthrough{}
	}
	ctl.policy = p
}

// SetWriteThrough installs the write-through region predicate (Intel486
// style: the paper's Section 3 notes "only write-through lines can have the
// S state, and only write-back lines can have the E state").
func (ctl *Controller) SetWriteThrough(pred func(addr uint32) bool) {
	ctl.writeThrough = pred
}

func (ctl *Controller) isWriteThrough(addr uint32) bool {
	return ctl.writeThrough != nil && ctl.writeThrough(addr)
}

// Outstanding reports whether a CPU request is in flight.
func (ctl *Controller) Outstanding() bool { return ctl.busy }

// Access performs a CPU load (write=false) or store (write=true) of the
// word at addr.  On Done, readVal holds the loaded value (stores return 0).
// On Pending, done(readVal) fires at retirement.  On Busy the caller must
// retry on a later cycle.
func (ctl *Controller) Access(write bool, addr, val uint32, done func(readVal uint32)) (Status, uint32) {
	if ctl.busy {
		return Busy, 0
	}
	if ctl.isWriteThrough(addr) {
		return ctl.accessWriteThrough(write, addr, val, done)
	}
	proto := ctl.cache.Protocol()
	l := ctl.cache.Lookup(addr)
	if l != nil && !l.flushPending {
		ctl.cache.Touch(l)
		w := ctl.cache.WordIndex(addr)
		if !write {
			if _, err := proto.OnReadHit(l.State); err != nil {
				panic(fmt.Sprintf("cache %s: %v", ctl.name, err))
			}
			ctl.cache.stats.ReadHits++
			return Done, l.Data[w]
		}
		next, op, needsBus, err := proto.OnWriteHit(l.State)
		if err != nil {
			panic(fmt.Sprintf("cache %s: %v", ctl.name, err))
		}
		if !needsBus {
			ctl.cache.stats.WriteHits++
			ctl.noteState(l.Base, l.State, next)
			l.State = next
			l.Data[w] = val
			return Done, 0
		}
		// Write hit on a shared line: ownership upgrade (invalidation
		// protocols) or word broadcast (Dragon) on the bus.
		ctl.cache.stats.WriteHits++
		ctl.busy = true
		ctl.writeWithBus(op, next, addr, val, done)
		return Pending, 0
	}
	if l != nil && l.flushPending {
		// Our own line is mid-drain; stall until it settles.
		return Busy, 0
	}

	// Miss.
	if write {
		ctl.cache.stats.WriteMisses++
	} else {
		ctl.cache.stats.ReadMisses++
	}
	if ctl.cache.Victim(addr) == nil {
		return Busy, 0 // every way is draining; retry
	}
	ctl.busy = true
	ctl.missFill(write, addr, val, done)
	return Pending, 0
}

// accessWriteThrough implements the SI protocol for write-through lines:
// reads allocate Shared; stores update memory directly (and the cached copy
// in place, if any) and never allocate.
func (ctl *Controller) accessWriteThrough(write bool, addr, val uint32, done func(uint32)) (Status, uint32) {
	l := ctl.cache.Lookup(addr)
	if write {
		ctl.busy = true
		ctl.reqDone = done
		ctl.events.MemAccess(ctl.masterID, addr, true)
		ctl.reqTxn = bus.Transaction{Master: ctl.masterID, Kind: bus.WriteWord, Addr: addr, Val: val, Words: 1}
		if l != nil && !l.flushPending {
			ctl.cache.stats.WriteHits++
			l.Data[ctl.cache.WordIndex(addr)] = val
			ctl.cache.Touch(l)
		} else {
			ctl.cache.stats.WriteMisses++ // no write allocation
		}
		ctl.bus.Submit(&ctl.reqTxn, ctl.wtWriteDoneFn)
		return Pending, 0
	}
	if l != nil && !l.flushPending {
		ctl.cache.stats.ReadHits++
		ctl.cache.Touch(l)
		return Done, l.Data[ctl.cache.WordIndex(addr)]
	}
	if l != nil && l.flushPending {
		return Busy, 0
	}
	ctl.cache.stats.ReadMisses++
	victim := ctl.cache.Victim(addr)
	if victim == nil {
		return Busy, 0
	}
	ctl.noteMissProfile(addr)
	if victim.State != coherence.Invalid {
		ctl.evict(victim)
	}
	cfg := ctl.cache.Config()
	ctl.busy = true
	ctl.reqStart = ctl.bus.Cycle()
	ctl.reqAddr = addr
	ctl.reqDone = done
	ctl.reqVictim = victim
	ctl.events.MemAccess(ctl.masterID, addr, false)
	ctl.reqTxn = bus.Transaction{Master: ctl.masterID, Kind: bus.ReadLine, Addr: cfg.LineAddr(addr), Words: cfg.WordsPerLine()}
	ctl.bus.Submit(&ctl.reqTxn, ctl.wtReadDoneFn)
	return Pending, 0
}

// wtWriteDone completes a write-through store.
func (ctl *Controller) wtWriteDone(bus.Result) {
	done := ctl.reqDone
	ctl.reqDone = nil
	ctl.busy = false
	done(0)
}

// wtReadDone completes a write-through read-miss fill (SI protocol: the line
// allocates Shared).
func (ctl *Controller) wtReadDone(res bus.Result) {
	ctl.mMissLat.Observe(ctl.bus.Cycle() - ctl.reqStart)
	addr, done, victim := ctl.reqAddr, ctl.reqDone, ctl.reqVictim
	ctl.reqDone, ctl.reqVictim = nil, nil
	l := ctl.cache.Install(addr, res.Data, coherence.Shared, victim)
	ctl.noteState(l.Base, coherence.Invalid, l.State)
	ctl.busy = false
	done(l.Data[ctl.cache.WordIndex(addr)])
}

// writeWithBus completes a write hit that needs a bus operation: an
// ownership upgrade (BusUpgr) or a Dragon word broadcast (BusUpd).  Caller
// has set ctl.busy.
func (ctl *Controller) writeWithBus(op coherence.BusOp, next coherence.State, addr, val uint32, done func(uint32)) {
	base := ctl.cache.Config().LineAddr(addr)
	ctl.upgradeBase = base
	ctl.upgradeLive = true
	ctl.upgradeLost = false
	ctl.reqOp, ctl.reqNext = op, next
	ctl.reqAddr, ctl.reqVal, ctl.reqDone = addr, val, done
	ctl.events.MemAccess(ctl.masterID, addr, true)
	switch op {
	case coherence.BusUpgr:
		ctl.cache.stats.Upgrades++
		ctl.reqTxn = bus.Transaction{Master: ctl.masterID, Kind: bus.Upgrade, Addr: base, Words: ctl.cache.Config().WordsPerLine()}
	case coherence.BusUpd:
		ctl.reqTxn = bus.Transaction{Master: ctl.masterID, Kind: bus.UpdateWord, Addr: addr, Val: val, Words: 1}
	default:
		panic(fmt.Sprintf("cache %s: write hit needs unsupported bus op %v", ctl.name, op))
	}
	ctl.bus.Submit(&ctl.reqTxn, ctl.upgDoneFn)
}

// upgradeDone completes a writeWithBus request (BusUpgr or BusUpd).
func (ctl *Controller) upgradeDone(res bus.Result) {
	op, next := ctl.reqOp, ctl.reqNext
	addr, val, done := ctl.reqAddr, ctl.reqVal, ctl.reqDone
	ctl.upgradeLive = false
	if ctl.upgradeLost {
		// The line was invalidated while the request was queued: fall
		// back to a full write miss.
		ctl.missFill(true, addr, val, done)
		return
	}
	cur := ctl.cache.Lookup(addr)
	if cur == nil {
		ctl.missFill(true, addr, val, done)
		return
	}
	if op == coherence.BusUpd {
		// Dragon: stay owner if anybody still shares the line.
		next = ctl.cache.Protocol().AfterUpdate(ctl.policy.OverrideShared(res.Shared))
	}
	ctl.noteState(cur.Base, cur.State, next)
	cur.State = next
	cur.Data[ctl.cache.WordIndex(addr)] = val
	ctl.cache.Touch(cur)
	ctl.reqDone = nil
	ctl.busy = false
	done(0)
}

// missFill evicts a victim if needed and issues the line fill.  Caller has
// set ctl.busy.
func (ctl *Controller) missFill(write bool, addr, val uint32, done func(uint32)) {
	victim := ctl.cache.Victim(addr)
	if victim == nil {
		panic(fmt.Sprintf("cache %s: no victim for fill of 0x%08x", ctl.name, addr))
	}
	ctl.noteMissProfile(addr)
	if victim.State != coherence.Invalid {
		ctl.evict(victim)
	}
	cfg := ctl.cache.Config()
	proto := ctl.cache.Protocol()
	kind := bus.ReadLine
	if write && !proto.UpdateBased() {
		kind = bus.ReadLineOwn
	}
	base := cfg.LineAddr(addr)
	ctl.reqWrite, ctl.reqAddr, ctl.reqVal = write, addr, val
	ctl.reqDone, ctl.reqVictim = done, victim
	ctl.reqStart = ctl.bus.Cycle()
	ctl.events.MemAccess(ctl.masterID, addr, write)
	ctl.reqTxn = bus.Transaction{Master: ctl.masterID, Kind: kind, Addr: base, Words: cfg.WordsPerLine()}
	ctl.bus.Submit(&ctl.reqTxn, ctl.fillDoneFn)
}

// fillDone completes a missFill request.
func (ctl *Controller) fillDone(res bus.Result) {
	ctl.mMissLat.Observe(ctl.bus.Cycle() - ctl.reqStart)
	write, addr, val := ctl.reqWrite, ctl.reqAddr, ctl.reqVal
	done, victim := ctl.reqDone, ctl.reqVictim
	ctl.reqVictim = nil
	proto := ctl.cache.Protocol()
	shared := ctl.policy.OverrideShared(res.Shared)
	var st coherence.State
	if write && !proto.UpdateBased() {
		st = proto.FillStateAfterWrite()
	} else {
		st = proto.FillStateAfterRead(shared)
	}
	l := ctl.cache.Install(addr, res.Data, st, victim)
	ctl.noteState(l.Base, coherence.Invalid, l.State)
	w := ctl.cache.WordIndex(addr)
	if !write {
		ctl.reqDone = nil
		ctl.busy = false
		done(l.Data[w])
		return
	}
	if proto.UpdateBased() {
		// Dragon write miss: fill, then write like a hit — silently
		// when exclusive, by bus update when shared.
		next, op, needsBus, err := proto.OnWriteHit(st)
		if err != nil {
			panic(fmt.Sprintf("cache %s: %v", ctl.name, err))
		}
		if needsBus {
			ctl.writeWithBus(op, next, addr, val, done)
			return
		}
		ctl.noteState(l.Base, l.State, next)
		l.State = next
	}
	l.Data[w] = val
	ctl.reqDone = nil
	ctl.busy = false
	done(0)
}

// evict removes a (valid) line from the array, queueing a write-back if it
// is dirty.
func (ctl *Controller) evict(l *Line) {
	ctl.cache.stats.Evictions++
	base := l.Base
	if l.State.Dirty() {
		ctl.cache.stats.EvictionWBs++
		j := ctl.getWB()
		j.kind = wbEvict
		j.base = base
		j.start = ctl.bus.Cycle()
		j.setData(l.Data)
		ctl.pendingWB[base] = struct{}{}
		j.txn = bus.Transaction{Master: ctl.masterID, Kind: bus.WriteLine, Addr: base, Data: j.buf}
		ctl.bus.Submit(&j.txn, j.doneFn)
	}
	if ctl.upgradeLive && base == ctl.upgradeBase {
		ctl.upgradeLost = true
	}
	ctl.noteState(base, l.State, coherence.Invalid)
	l.State = coherence.Invalid
}

// Uncached issues a single-word bus transaction bypassing the cache.  kind
// must be ReadWord, WriteWord or RMWWord.  done receives the read value
// (the old value for RMWWord, 0 for writes).
func (ctl *Controller) Uncached(kind bus.Kind, addr, val uint32, done func(uint32)) Status {
	if ctl.busy {
		return Busy
	}
	switch kind {
	case bus.ReadWord, bus.WriteWord, bus.RMWWord:
	default:
		panic(fmt.Sprintf("cache %s: uncached access with kind %v", ctl.name, kind))
	}
	ctl.busy = true
	ctl.reqDone = done
	ctl.reqTxn = bus.Transaction{Master: ctl.masterID, Kind: kind, Addr: addr, Val: val, Words: 1}
	ctl.bus.Submit(&ctl.reqTxn, ctl.uncachedDoneFn)
	return Pending
}

// uncachedDone completes an Uncached word access.
func (ctl *Controller) uncachedDone(res bus.Result) {
	done := ctl.reqDone
	ctl.reqDone = nil
	ctl.busy = false
	done(res.Val)
}

// Clean writes back (if dirty) and invalidates the line containing addr —
// the software solution's per-line "drain" and the ISR's action on a
// modified line.  Returns Done if no write-back was needed.
func (ctl *Controller) Clean(addr uint32, done func()) Status {
	ctl.cache.stats.CleanOps++
	l := ctl.cache.Lookup(addr)
	if l == nil {
		return Done
	}
	if l.flushPending {
		return Busy
	}
	if !l.State.Dirty() {
		ctl.invalidateLine(l)
		return Done
	}
	base := l.Base
	j := ctl.getWB()
	j.kind = wbClean
	j.base = base
	j.userDone = done
	j.start = ctl.bus.Cycle()
	j.setData(l.Data)
	ctl.pendingWB[base] = struct{}{}
	ctl.invalidateLine(l)
	j.txn = bus.Transaction{Master: ctl.masterID, Kind: bus.WriteLine, Addr: base, Data: j.buf}
	ctl.bus.Submit(&j.txn, j.doneFn)
	return Pending
}

// Invalidate discards the line containing addr without writing it back (the
// ISR's action on a clean line).  Invalidating a dirty line loses data, as
// it would in hardware; callers use Clean when the line may be dirty.
func (ctl *Controller) Invalidate(addr uint32) {
	ctl.cache.stats.InvalOps++
	if l := ctl.cache.Lookup(addr); l != nil && !l.flushPending {
		ctl.invalidateLine(l)
	}
}

func (ctl *Controller) invalidateLine(l *Line) {
	if ctl.upgradeLive && l.Base == ctl.upgradeBase {
		ctl.upgradeLost = true
	}
	ctl.noteState(l.Base, l.State, coherence.Invalid)
	l.State = coherence.Invalid
	l.flushPending = false
}

// SnoopBus implements bus.Snooper: the snoop port of the cache controller,
// consulted (through the wrapper policy) for every other master's coherent
// transaction.
func (ctl *Controller) SnoopBus(t *bus.Transaction) bus.SnoopReply {
	base := ctl.cache.Config().LineAddr(t.Addr)
	if _, inflight := ctl.pendingWB[base]; inflight {
		// The line's write-back is queued but memory is not yet current.
		return bus.SnoopReply{Retry: true, Drain: true}
	}
	l := ctl.cache.Lookup(t.Addr)
	if l == nil {
		return bus.SnoopReply{}
	}
	if l.flushPending {
		return bus.SnoopReply{Retry: true, Drain: true}
	}
	rawOp := t.Kind.CoherenceOp()
	op := ctl.policy.ConvertSnoop(rawOp)
	converted := op != rawOp
	out, err := ctl.cache.Protocol().OnSnoop(l.State, op)
	if err != nil {
		panic(fmt.Sprintf("cache %s: %v", ctl.name, err))
	}
	ctl.cache.stats.SnoopHits++
	if out.Supply && !ctl.policy.AllowSupply() {
		// Intervention suppressed: drain to memory and let the requester
		// retry, as a non-MOESI requester cannot accept the transfer.
		out.Supply = false
		out.Flush = true
		if out.Next == coherence.Owned {
			out.Next = coherence.Shared
		}
	}
	// Emitted after supply suppression so the flags carry the resolved
	// reaction; out.Next == Invalid covers the flush branch too (the line is
	// invalidated, or downgraded, when its drain completes).
	ctl.events.SnoopHit(ctl.masterID, l.Base, op, t.Master,
		out.Next == coherence.Invalid, out.Supply, out.Flush, converted)
	if out.Flush {
		// ARTRY/HITM: drain first, then let the requester retry.  The
		// arbiter is asked to grant us next (BOFF).
		ctl.cache.stats.SnoopFlushes++
		l.flushPending = true
		l.flushNext = out.Next
		j := ctl.getWB()
		j.kind = wbFlush
		j.line = l
		j.converted = converted
		j.start = ctl.bus.Cycle()
		j.setData(l.Data)
		j.txn = bus.Transaction{Master: ctl.masterID, Kind: bus.WriteLine, Addr: l.Base, Data: j.buf}
		ctl.bus.SubmitFlush(&j.txn, j.doneFn)
		ctl.bus.PreferNext(ctl.masterID)
		return bus.SnoopReply{Retry: true, Drain: true}
	}
	reply := bus.SnoopReply{Shared: out.AssertShared}
	if out.Update {
		// Dragon bus update: patch the broadcast word in place.
		ctl.cache.stats.SnoopUpdates++
		l.Data[ctl.cache.WordIndex(t.Addr)] = t.Val
	}
	if out.Supply {
		ctl.cache.stats.SnoopSupplies++
		reply.Supply = true
		// The bus copies the reply before this call returns (SnoopReply.Data
		// contract), so the live line can be handed out without a copy.
		reply.Data = l.Data
	}
	if out.Next == coherence.Invalid {
		ctl.cache.stats.SnoopInvalidations++
		if converted {
			ctl.markRemoteInval(l.Base)
		}
		ctl.invalidateLine(l)
	} else if out.Next != l.State {
		ctl.cache.stats.SnoopDowngrades++
		ctl.noteState(l.Base, l.State, out.Next)
		l.State = out.Next
	}
	return reply
}
