package cache

import (
	"testing"
	"testing/quick"

	"hetcc/internal/coherence"
	"hetcc/internal/sim"
)

// TestSingleControllerMatchesReferenceModel drives one controller with a
// random access sequence and checks every load against a plain map: the
// cache (hits, fills, evictions, write-backs) must be invisible to the
// program.
func TestSingleControllerMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRig(t, coherence.MESI)
		rng := sim.NewRNG(seed)
		ref := map[uint32]uint32{}
		// A tight 16-line window over a 2-way, 16-set cache forces heavy
		// eviction traffic.
		for i := 0; i < 400; i++ {
			addr := uint32(rng.Intn(64)) * 4 * 13 % 0x800
			addr &^= 3
			if rng.Intn(2) == 0 {
				val := uint32(rng.Uint64())
				r.access(0, true, addr, val)
				ref[addr] = val
			} else {
				if got := r.access(0, false, addr, 0); got != ref[addr] {
					t.Logf("seed %d: read 0x%x = %#x, want %#x", seed, addr, got, ref[addr])
					return false
				}
			}
		}
		// Drain: after cleaning everything, memory must equal the model.
		for addr := range ref {
			r.clean(0, addr)
		}
		r.spin(func() bool { return r.bus.Idle() })
		for addr, want := range ref {
			if got := r.mem.Peek(addr); got != want {
				t.Logf("seed %d: final mem 0x%x = %#x, want %#x", seed, addr, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestTwoControllersSerializedMatchesReference interleaves two controllers
// (no concurrent access to the same address within a step) and checks
// coherence keeps both views consistent with the reference.
func TestTwoControllersSerializedMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRig(t, coherence.MESI, coherence.MOESI)
		// Heterogeneous pair: suppress c2c as core.Reduce would.
		r.ctl[0].SetPolicy(suppressPolicy{})
		r.ctl[1].SetPolicy(suppressPolicy{})
		rng := sim.NewRNG(seed)
		ref := map[uint32]uint32{}
		for i := 0; i < 300; i++ {
			core := rng.Intn(2)
			addr := uint32(rng.Intn(32)) * 4
			if rng.Intn(2) == 0 {
				val := uint32(rng.Uint64()) | 1
				r.access(core, true, addr, val)
				ref[addr] = val
			} else if got := r.access(core, false, addr, 0); got != ref[addr] {
				t.Logf("seed %d step %d: core %d read 0x%x = %#x, want %#x", seed, i, core, addr, got, ref[addr])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
