package cache

import (
	"testing"
	"testing/quick"

	"hetcc/internal/coherence"
)

func cfg32k() Config  { return Config{SizeBytes: 32 * 1024, Ways: 8, LineBytes: 32} }
func cfgTiny() Config { return Config{SizeBytes: 256, Ways: 2, LineBytes: 32} } // 4 sets

func TestConfigValidate(t *testing.T) {
	good := []Config{
		cfg32k(),
		{SizeBytes: 8 * 1024, Ways: 4, LineBytes: 32},
		{SizeBytes: 16 * 1024, Ways: 64, LineBytes: 32},
		{SizeBytes: 256, Ways: 1, LineBytes: 32},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{},
		{SizeBytes: 100, Ways: 1, LineBytes: 32}, // not divisible
		{SizeBytes: 1024, Ways: 3, LineBytes: 32},    // hmm: 1024/(96) not integer
		{SizeBytes: 1024, Ways: 1, LineBytes: 10},    // line not mult of 4
		{SizeBytes: 96 * 32, Ways: 1, LineBytes: 32}, // 96 sets: not a power of two
		{SizeBytes: -1024, Ways: 2, LineBytes: 32},   // negative
		{SizeBytes: 1024, Ways: 0, LineBytes: 32},    // zero ways
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := cfg32k()
	if c.Sets() != 128 {
		t.Errorf("sets %d, want 128", c.Sets())
	}
	if c.WordsPerLine() != 8 {
		t.Errorf("words/line %d, want 8", c.WordsPerLine())
	}
	if c.LineAddr(0x1237) != 0x1220 {
		t.Errorf("line addr %#x, want 0x1220", c.LineAddr(0x1237))
	}
}

func mustCache(t *testing.T, cfg Config, k coherence.Kind) *Cache {
	t.Helper()
	c, err := New(cfg, coherence.New(k))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInstallLookup(t *testing.T) {
	c := mustCache(t, cfgTiny(), coherence.MESI)
	data := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	v := c.Victim(0x1000)
	c.Install(0x1000, data, coherence.Exclusive, v)
	l := c.Lookup(0x1004)
	if l == nil || l.State != coherence.Exclusive {
		t.Fatal("installed line not found")
	}
	if w, ok := c.PeekWord(0x1008); !ok || w != 3 {
		t.Fatalf("peek = %d,%v want 3", w, ok)
	}
	if c.StateOf(0x2000) != coherence.Invalid {
		t.Fatal("phantom line")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := mustCache(t, cfgTiny(), coherence.MESI)
	data := make([]uint32, 8)
	v1 := c.Victim(0x1000)
	c.Install(0x1000, data, coherence.Modified, v1)
	v2 := c.Victim(0x2000) // same set (4 sets * 32B = stride 128; 0x1000 and 0x2000 map to set 0)
	if v2 == v1 {
		t.Fatal("victim chose valid line while an invalid way existed")
	}
}

func TestVictimLRU(t *testing.T) {
	c := mustCache(t, cfgTiny(), coherence.MESI)
	data := make([]uint32, 8)
	// Fill both ways of set 0 (stride = sets*lineBytes = 128).
	a := c.Victim(0x0)
	c.Install(0x0, data, coherence.Exclusive, a)
	b := c.Victim(0x80)
	c.Install(0x80, data, coherence.Exclusive, b)
	// Touch the first line: the second becomes LRU.
	c.Touch(c.Lookup(0x0))
	v := c.Victim(0x100)
	if v != b {
		t.Fatal("LRU victim selection wrong")
	}
	// Lines with a pending flush are never victims.
	b.flushPending = true
	v = c.Victim(0x100)
	if v == b {
		t.Fatal("chose flush-pending line as victim")
	}
	a.flushPending = true
	if c.Victim(0x100) != nil {
		t.Fatal("victim available though all ways are draining")
	}
}

func TestResidentLines(t *testing.T) {
	c := mustCache(t, cfgTiny(), coherence.MEI)
	data := make([]uint32, 8)
	for _, addr := range []uint32{0x0, 0x20, 0x40} {
		c.Install(addr, data, coherence.Exclusive, c.Victim(addr))
	}
	if got := len(c.ResidentLines()); got != 3 {
		t.Fatalf("%d resident lines, want 3", got)
	}
}

func TestNewRejectsNilProtocolAndBadConfig(t *testing.T) {
	if _, err := New(cfgTiny(), nil); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := New(Config{}, coherence.New(coherence.MEI)); err == nil {
		t.Error("zero config accepted")
	}
}

// TestSetIndexDisjoint: every address maps into exactly one set, and
// lookups never cross sets.
func TestSetIndexDisjoint(t *testing.T) {
	c := mustCache(t, cfgTiny(), coherence.MESI)
	f := func(a, b uint16) bool {
		addrA := uint32(a) * 4
		addrB := uint32(b) * 4
		data := make([]uint32, 8)
		cc := mustCache(t, cfgTiny(), coherence.MESI)
		cc.Install(addrA, data, coherence.Exclusive, cc.Victim(addrA))
		l := cc.Lookup(addrB)
		sameLine := c.Config().LineAddr(addrA) == c.Config().LineAddr(addrB)
		return (l != nil) == sameLine
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordIndex(t *testing.T) {
	c := mustCache(t, cfgTiny(), coherence.MEI)
	for w := 0; w < 8; w++ {
		if got := c.WordIndex(0x1000 + uint32(4*w)); got != w {
			t.Fatalf("word index of +%d = %d", 4*w, got)
		}
	}
}
