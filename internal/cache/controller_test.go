package cache

import (
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/coherence"
	"hetcc/internal/memory"
)

// rig is a two-controller test bench on one bus.
type rig struct {
	t   *testing.T
	bus *bus.Bus
	mem *memory.Memory
	ctl []*Controller
	now uint64
}

func newRig(t *testing.T, kinds ...coherence.Kind) *rig {
	t.Helper()
	mem := memory.New()
	b := bus.New(bus.Config{Timing: memory.DefaultTiming()}, mem, nil)
	r := &rig{t: t, bus: b, mem: mem}
	for i, k := range kinds {
		arr, err := New(Config{SizeBytes: 1024, Ways: 2, LineBytes: 32}, coherence.New(k))
		if err != nil {
			t.Fatal(err)
		}
		r.ctl = append(r.ctl, NewController(names[i], arr, b, nil, true, nil))
	}
	return r
}

var names = []string{"c0", "c1", "c2", "c3"}

// spin ticks the bus until pred is true or the budget runs out.
func (r *rig) spin(pred func() bool) {
	r.t.Helper()
	for i := 0; i < 10000; i++ {
		if pred() {
			return
		}
		r.bus.Tick(r.now)
		r.now++
	}
	r.t.Fatal("condition never became true")
}

// access drives one blocking CPU access to completion and returns the read
// value.
func (r *rig) access(ctl int, write bool, addr, val uint32) uint32 {
	r.t.Helper()
	var out uint32
	done := false
	for i := 0; i < 10000; i++ {
		status, v := r.ctl[ctl].Access(write, addr, val, func(rv uint32) { out = rv; done = true })
		switch status {
		case Done:
			return v
		case Pending:
			r.spin(func() bool { return done })
			return out
		case Busy:
			r.bus.Tick(r.now)
			r.now++
		}
	}
	r.t.Fatal("access never accepted")
	return 0
}

func (r *rig) clean(ctl int, addr uint32) {
	r.t.Helper()
	done := false
	for i := 0; i < 10000; i++ {
		switch r.ctl[ctl].Clean(addr, func() { done = true }) {
		case Done:
			return
		case Pending:
			r.spin(func() bool { return done })
			return
		case Busy:
			r.bus.Tick(r.now)
			r.now++
		}
	}
	r.t.Fatal("clean never accepted")
}

func (r *rig) state(ctl int, addr uint32) coherence.State {
	return r.ctl[ctl].Cache().StateOf(addr)
}

func TestReadMissFillsExclusiveMESI(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.mem.Poke(0x1008, 77)
	if got := r.access(0, false, 0x1008, 0); got != 77 {
		t.Fatalf("read %d, want 77", got)
	}
	if st := r.state(0, 0x1000); st != coherence.Exclusive {
		t.Fatalf("fill state %v, want E (no sharer)", st)
	}
	if s := r.ctl[0].Cache().Stats(); s.ReadMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReadSharingMESI(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, false, 0x1000, 0)
	r.access(1, false, 0x1000, 0)
	if r.state(0, 0x1000) != coherence.Shared || r.state(1, 0x1000) != coherence.Shared {
		t.Fatalf("states %v/%v, want S/S", r.state(0, 0x1000), r.state(1, 0x1000))
	}
}

func TestWriteHitSilentUpgradeEToM(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, false, 0x1000, 0)
	busBefore := r.bus.Stats().Completed
	r.access(0, true, 0x1000, 5)
	if r.state(0, 0x1000) != coherence.Modified {
		t.Fatal("E->M failed")
	}
	if r.bus.Stats().Completed != busBefore {
		t.Fatal("silent E->M used the bus")
	}
	if got := r.access(0, false, 0x1000, 0); got != 5 {
		t.Fatalf("read back %d", got)
	}
}

func TestWriteHitOnSharedUpgradesAndInvalidatesPeer(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, false, 0x1000, 0)
	r.access(1, false, 0x1000, 0) // both S
	r.access(0, true, 0x1000, 9)
	if r.state(0, 0x1000) != coherence.Modified {
		t.Fatalf("upgrader state %v", r.state(0, 0x1000))
	}
	if r.state(1, 0x1000) != coherence.Invalid {
		t.Fatalf("peer state %v, want I", r.state(1, 0x1000))
	}
	if r.bus.Stats().LineUpgrades != 1 {
		t.Fatalf("upgrades %d, want 1", r.bus.Stats().LineUpgrades)
	}
}

func TestSnoopFlushDrainsDirtyLine(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, true, 0x1000, 42) // c0 M
	got := r.access(1, false, 0x1000, 0)
	if got != 42 {
		t.Fatalf("peer read %d, want 42 (drain-then-retry)", got)
	}
	if r.mem.Peek(0x1000) != 42 {
		t.Fatal("memory not updated by flush")
	}
	if r.state(0, 0x1000) != coherence.Shared || r.state(1, 0x1000) != coherence.Shared {
		t.Fatalf("states %v/%v, want S/S", r.state(0, 0x1000), r.state(1, 0x1000))
	}
	if r.bus.Stats().Aborted == 0 {
		t.Fatal("no ARTRY recorded for the flush")
	}
}

func TestWriteMissInvalidatesOwner(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, true, 0x1000, 1) // c0 M
	r.access(1, true, 0x1000, 2) // c1 takes ownership
	if r.state(0, 0x1000) != coherence.Invalid || r.state(1, 0x1000) != coherence.Modified {
		t.Fatalf("states %v/%v, want I/M", r.state(0, 0x1000), r.state(1, 0x1000))
	}
	if got := r.access(1, false, 0x1000, 0); got != 2 {
		t.Fatalf("owner reads %d, want 2", got)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, coherence.MESI)
	// 2-way, 16 sets: set stride = 512 bytes.  Three lines in set 0.
	r.access(0, true, 0x0, 10)
	r.access(0, true, 0x200, 20)
	r.access(0, true, 0x400, 30) // evicts 0x0 (LRU)
	if r.state(0, 0x0) != coherence.Invalid {
		t.Fatal("victim still resident")
	}
	r.spin(func() bool { return r.bus.Idle() })
	if r.mem.Peek(0x0) != 10 {
		t.Fatalf("evicted dirty data lost: mem=%d", r.mem.Peek(0x0))
	}
	if s := r.ctl[0].Cache().Stats(); s.Evictions != 1 || s.EvictionWBs != 1 {
		t.Fatalf("stats %+v", s)
	}
	// Victim's data must still be readable afterwards.
	if got := r.access(0, false, 0x0, 0); got != 10 {
		t.Fatalf("refetched %d, want 10", got)
	}
}

func TestPendingWritebackSnoopRetries(t *testing.T) {
	// A snoop on a line whose write-back is queued but not complete must
	// ARTRY, or the peer would read stale memory.
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, true, 0x0, 10)
	r.access(0, true, 0x200, 20)
	// Kick off the eviction of 0x0 but do NOT drain the bus: issue the
	// next access and immediately have the peer read the victim.
	status, _ := r.ctl[0].Access(true, 0x400, 30, func(uint32) {})
	if status != Pending {
		t.Fatalf("fill status %v", status)
	}
	got := r.access(1, false, 0x0, 0)
	if got != 10 {
		t.Fatalf("peer read %d during in-flight write-back, want 10", got)
	}
}

func TestCleanDirtyLineWritesBackAndInvalidates(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, true, 0x1000, 5)
	r.clean(0, 0x1000)
	r.spin(func() bool { return r.bus.Idle() })
	if r.state(0, 0x1000) != coherence.Invalid {
		t.Fatal("clean did not invalidate")
	}
	if r.mem.Peek(0x1000) != 5 {
		t.Fatal("clean did not write back")
	}
}

func TestCleanCleanLineIsLocal(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, false, 0x1000, 0)
	before := r.bus.Stats().Completed
	r.clean(0, 0x1000)
	if r.bus.Stats().Completed != before {
		t.Fatal("cleaning a clean line used the bus")
	}
	if r.state(0, 0x1000) != coherence.Invalid {
		t.Fatal("not invalidated")
	}
}

func TestCleanAbsentLineIsNoOp(t *testing.T) {
	r := newRig(t, coherence.MESI)
	if st := r.ctl[0].Clean(0x5000, nil); st != Done {
		t.Fatalf("clean of absent line returned %v", st)
	}
}

func TestInvalidateDiscards(t *testing.T) {
	r := newRig(t, coherence.MESI)
	r.access(0, false, 0x1000, 0)
	r.ctl[0].Invalidate(0x1000)
	if r.state(0, 0x1000) != coherence.Invalid {
		t.Fatal("invalidate failed")
	}
}

func TestUncachedRoundTrip(t *testing.T) {
	r := newRig(t, coherence.MESI)
	done := false
	r.ctl[0].Uncached(bus.WriteWord, 0x9000, 33, func(uint32) { done = true })
	r.spin(func() bool { return done })
	var got uint32
	done = false
	r.ctl[0].Uncached(bus.ReadWord, 0x9000, 0, func(v uint32) { got = v; done = true })
	r.spin(func() bool { return done })
	if got != 33 {
		t.Fatalf("uncached read %d, want 33", got)
	}
	if _, ok := r.ctl[0].Cache().PeekWord(0x9000); ok {
		t.Fatal("uncached access allocated a line")
	}
}

func TestControllerBusyWhileOutstanding(t *testing.T) {
	r := newRig(t, coherence.MESI)
	status, _ := r.ctl[0].Access(false, 0x1000, 0, func(uint32) {})
	if status != Pending {
		t.Fatalf("first access %v", status)
	}
	status, _ = r.ctl[0].Access(false, 0x2000, 0, func(uint32) {})
	if status != Busy {
		t.Fatalf("second access %v, want Busy", status)
	}
	if st := r.ctl[0].Uncached(bus.ReadWord, 0x9000, 0, func(uint32) {}); st != Busy {
		t.Fatalf("uncached while busy %v, want Busy", st)
	}
}

// TestUpgradeRace: the line being upgraded is invalidated by a peer's
// write before the upgrade wins the bus; the controller must fall back to a
// full read-for-ownership and still store correctly.
func TestUpgradeRace(t *testing.T) {
	r := newRig(t, coherence.MESI, coherence.MESI)
	r.access(0, false, 0x1000, 0)
	r.access(1, false, 0x1000, 0) // both S
	// Queue c1's upgrade first, then c0's upgrade: c1 wins, invalidating
	// c0's line mid-upgrade.
	done0, done1 := false, false
	st1, _ := r.ctl[1].Access(true, 0x1000, 111, func(uint32) { done1 = true })
	st0, _ := r.ctl[0].Access(true, 0x1004, 222, func(uint32) { done0 = true })
	if st0 != Pending || st1 != Pending {
		t.Fatalf("statuses %v/%v", st0, st1)
	}
	r.spin(func() bool { return done0 && done1 })
	// Whichever upgrade lost the race must have fallen back to a full
	// read-for-ownership: exactly one owner remains and BOTH writes
	// survive in the line.
	s0, s1 := r.state(0, 0x1000), r.state(1, 0x1000)
	var winner int
	switch {
	case s0 == coherence.Modified && s1 == coherence.Invalid:
		winner = 0
	case s1 == coherence.Modified && s0 == coherence.Invalid:
		winner = 1
	default:
		t.Fatalf("states %v/%v, want exactly one M", s0, s1)
	}
	if got := r.access(winner, false, 0x1000, 0); got != 111 {
		t.Fatalf("word0 = %d, want 111 (c1's write preserved)", got)
	}
	if got := r.access(winner, false, 0x1004, 0); got != 222 {
		t.Fatalf("word1 = %d, want 222 (c0's write preserved)", got)
	}
}

// TestMOESICacheToCacheSupply: homogeneous MOESI serves dirty lines
// cache-to-cache and enters O without touching memory.
func TestMOESICacheToCacheSupply(t *testing.T) {
	r := newRig(t, coherence.MOESI, coherence.MOESI)
	r.access(0, true, 0x1000, 7)
	got := r.access(1, false, 0x1000, 0)
	if got != 7 {
		t.Fatalf("c2c read %d, want 7", got)
	}
	if r.state(0, 0x1000) != coherence.Owned {
		t.Fatalf("supplier state %v, want O", r.state(0, 0x1000))
	}
	if r.state(1, 0x1000) != coherence.Shared {
		t.Fatalf("requester state %v, want S", r.state(1, 0x1000))
	}
	if r.mem.Peek(0x1000) != 0 {
		t.Fatal("memory written despite cache-to-cache transfer")
	}
	if r.bus.Stats().Supplied != 1 {
		t.Fatal("supply not counted")
	}
}

// TestMOESIOwnedEvictionWritesBack: the O state carries the dirty data, so
// evicting it must write back.
func TestMOESIOwnedEvictionWritesBack(t *testing.T) {
	r := newRig(t, coherence.MOESI, coherence.MOESI)
	r.access(0, true, 0x0, 99)
	r.access(1, false, 0x0, 0) // c0 -> O
	// Evict c0's O line by filling its set (2-way; stride 0x200).
	r.access(0, false, 0x200, 0)
	r.access(0, false, 0x400, 0)
	r.spin(func() bool { return r.bus.Idle() })
	if r.mem.Peek(0x0) != 99 {
		t.Fatalf("O eviction lost dirty data: mem=%d", r.mem.Peek(0x0))
	}
}

// suppressPolicy denies cache-to-cache supply (a heterogeneous mix).
type suppressPolicy struct{ Passthrough }

func (suppressPolicy) AllowSupply() bool { return false }

// TestSupplySuppressionFallsBackToFlush: with c2c suppressed the MOESI
// owner drains and the requester reads memory.
func TestSupplySuppressionFallsBackToFlush(t *testing.T) {
	r := newRig(t, coherence.MOESI, coherence.MOESI)
	r.ctl[0].SetPolicy(suppressPolicy{})
	r.ctl[1].SetPolicy(suppressPolicy{})
	r.access(0, true, 0x1000, 7)
	got := r.access(1, false, 0x1000, 0)
	if got != 7 {
		t.Fatalf("read %d, want 7", got)
	}
	if r.mem.Peek(0x1000) != 7 {
		t.Fatal("suppressed supply did not flush to memory")
	}
	if r.state(0, 0x1000) == coherence.Owned {
		t.Fatal("owner entered O despite suppression")
	}
	if r.bus.Stats().Supplied != 0 {
		t.Fatal("supply happened despite suppression")
	}
}

// TestMEISnoopDrainsOnRead: MEI (PowerPC755) gives up dirty lines on any
// snooped read.
func TestMEISnoopDrainsOnRead(t *testing.T) {
	r := newRig(t, coherence.MEI, coherence.MEI)
	r.access(0, true, 0x1000, 3)
	got := r.access(1, false, 0x1000, 0)
	if got != 3 {
		t.Fatalf("read %d, want 3", got)
	}
	if r.state(0, 0x1000) != coherence.Invalid {
		t.Fatalf("MEI owner state %v after snooped read, want I", r.state(0, 0x1000))
	}
	if r.state(1, 0x1000) != coherence.Exclusive {
		t.Fatalf("requester state %v, want E", r.state(1, 0x1000))
	}
}
