package cache

import (
	"testing"

	"hetcc/internal/coherence"
)

func newWTRig(t *testing.T) *rig {
	r := newRig(t, coherence.MESI, coherence.MESI)
	// Mark everything above 0x8000 write-through on controller 0.
	r.ctl[0].SetWriteThrough(func(addr uint32) bool { return addr >= 0x8000 })
	return r
}

func TestWTReadAllocatesShared(t *testing.T) {
	r := newWTRig(t)
	r.mem.Poke(0x8004, 5)
	if got := r.access(0, false, 0x8004, 0); got != 5 {
		t.Fatalf("read %d, want 5", got)
	}
	if st := r.state(0, 0x8000); st != coherence.Shared {
		t.Fatalf("WT fill state %v, want S (the SI protocol's valid state)", st)
	}
}

func TestWTWriteGoesToMemoryAndUpdatesLine(t *testing.T) {
	r := newWTRig(t)
	r.access(0, false, 0x8000, 0) // allocate
	r.access(0, true, 0x8000, 42)
	if r.mem.Peek(0x8000) != 42 {
		t.Fatal("write-through did not reach memory")
	}
	if got := r.access(0, false, 0x8000, 0); got != 42 {
		t.Fatalf("cached copy reads %d, want 42 (updated in place)", got)
	}
	if st := r.state(0, 0x8000); st != coherence.Shared {
		t.Fatalf("WT line state %v after write, want S (never dirty)", st)
	}
}

func TestWTWriteMissDoesNotAllocate(t *testing.T) {
	r := newWTRig(t)
	r.access(0, true, 0x8100, 7)
	if r.mem.Peek(0x8100) != 7 {
		t.Fatal("write lost")
	}
	if r.state(0, 0x8100) != coherence.Invalid {
		t.Fatal("write miss allocated a WT line")
	}
	if s := r.ctl[0].Cache().Stats(); s.WriteMisses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestWTLineInvalidatedByPeerWrite(t *testing.T) {
	r := newWTRig(t)
	r.access(0, false, 0x8000, 0) // ctl0 holds WT line S
	r.access(1, true, 0x8000, 9)  // ctl1 (write-back) takes ownership
	if r.state(0, 0x8000) != coherence.Invalid {
		t.Fatalf("WT copy survived a peer write: %v", r.state(0, 0x8000))
	}
	// ctl0 re-reads: the peer's M line drains first.
	if got := r.access(0, false, 0x8000, 0); got != 9 {
		t.Fatalf("reread %d, want 9", got)
	}
}

func TestWTWriteInvalidatesPeerSharers(t *testing.T) {
	r := newWTRig(t)
	r.access(0, false, 0x8000, 0) // S in ctl0 (WT)
	r.access(1, false, 0x8000, 0) // S in ctl1 (WB)
	r.access(0, true, 0x8000, 3)  // WT write: snooped as a write
	if r.state(1, 0x8000) != coherence.Invalid {
		t.Fatalf("peer sharer state %v, want I", r.state(1, 0x8000))
	}
	if got := r.access(1, false, 0x8000, 0); got != 3 {
		t.Fatalf("peer rereads %d, want 3", got)
	}
}

func TestWTWriteDrainsPeerDirtyLine(t *testing.T) {
	r := newWTRig(t)
	r.access(1, true, 0x8000, 10) // ctl1 M
	r.access(1, true, 0x8004, 11) // second word dirty too
	r.access(0, true, 0x8004, 99) // WT word write from ctl0
	// ctl1's line was drained and invalidated; memory must hold the merge.
	if r.state(1, 0x8000) != coherence.Invalid {
		t.Fatalf("peer state %v, want I", r.state(1, 0x8000))
	}
	if r.mem.Peek(0x8000) != 10 || r.mem.Peek(0x8004) != 99 {
		t.Fatalf("memory %d/%d, want 10/99 (drain then word write)", r.mem.Peek(0x8000), r.mem.Peek(0x8004))
	}
}

func TestWTEvictionIsSilent(t *testing.T) {
	r := newWTRig(t)
	// 2-way, set stride 0x200: fill three WT lines in one set.
	r.access(0, false, 0x8000, 0)
	r.access(0, false, 0x8200, 0)
	before := r.bus.Stats().WriteBacks
	r.access(0, false, 0x8400, 0) // evicts the LRU WT line
	r.spin(func() bool { return r.bus.Idle() })
	if r.bus.Stats().WriteBacks != before {
		t.Fatal("clean WT eviction produced a write-back")
	}
}

func TestWBRegionUnaffectedByWTPredicate(t *testing.T) {
	r := newWTRig(t)
	r.access(0, true, 0x1000, 5) // below the WT boundary: ordinary write-back
	if st := r.state(0, 0x1000); st != coherence.Modified {
		t.Fatalf("WB write state %v, want M", st)
	}
	if r.mem.Peek(0x1000) != 0 {
		t.Fatal("write-back line leaked to memory")
	}
}
