package cache

import (
	"testing"

	"hetcc/internal/coherence"
)

// Dragon (update-based) controller behaviour: writes to shared lines
// broadcast the word; sharers are patched in place, never invalidated.

func TestDragonSharedWriteBroadcasts(t *testing.T) {
	r := newRig(t, coherence.Dragon, coherence.Dragon)
	r.access(0, false, 0x1000, 0)
	r.access(1, false, 0x1000, 0) // both Sc
	r.access(0, true, 0x1004, 77) // broadcast update
	// The peer's copy is patched in place, still valid.
	if st := r.state(1, 0x1000); st != coherence.Shared {
		t.Fatalf("peer state %v, want Sc", st)
	}
	if w, ok := r.ctl[1].Cache().PeekWord(0x1004); !ok || w != 77 {
		t.Fatalf("peer word %d (resident %v), want 77", w, ok)
	}
	// The writer became the owner (Sm) because the line is still shared.
	if st := r.state(0, 0x1000); st != coherence.Owned {
		t.Fatalf("writer state %v, want Sm", st)
	}
	if r.bus.Stats().WordUpdates != 1 {
		t.Fatalf("updates %d, want 1", r.bus.Stats().WordUpdates)
	}
	// The peer reads the new value with a cache hit — zero extra traffic.
	before := r.bus.Stats().Completed
	if got := r.access(1, false, 0x1004, 0); got != 77 {
		t.Fatalf("peer read %d, want 77", got)
	}
	if r.bus.Stats().Completed != before {
		t.Fatal("peer read of an updated word used the bus")
	}
}

func TestDragonExclusiveWriteIsSilent(t *testing.T) {
	r := newRig(t, coherence.Dragon, coherence.Dragon)
	r.access(0, false, 0x1000, 0) // E
	before := r.bus.Stats().Completed
	r.access(0, true, 0x1000, 5)
	if r.bus.Stats().Completed != before {
		t.Fatal("exclusive Dragon write used the bus")
	}
	if r.state(0, 0x1000) != coherence.Modified {
		t.Fatalf("state %v, want M", r.state(0, 0x1000))
	}
}

func TestDragonWriteMissFillsThenUpdates(t *testing.T) {
	r := newRig(t, coherence.Dragon, coherence.Dragon)
	r.access(1, false, 0x1000, 0) // peer holds the line (E)
	r.access(0, true, 0x1000, 9)  // write miss: fill + broadcast
	// Both copies valid and value-identical.
	if r.state(0, 0x1000) != coherence.Owned {
		t.Fatalf("writer %v, want Sm", r.state(0, 0x1000))
	}
	if r.state(1, 0x1000) != coherence.Shared {
		t.Fatalf("peer %v, want Sc", r.state(1, 0x1000))
	}
	if w, _ := r.ctl[1].Cache().PeekWord(0x1000); w != 9 {
		t.Fatalf("peer word %d, want 9", w)
	}
}

func TestDragonOwnershipTransfersOnPeerUpdate(t *testing.T) {
	r := newRig(t, coherence.Dragon, coherence.Dragon)
	r.access(0, false, 0x1000, 0)
	r.access(1, false, 0x1000, 0)
	r.access(0, true, 0x1000, 1) // c0 -> Sm
	r.access(1, true, 0x1004, 2) // c1 updates: ownership moves to c1
	if r.state(0, 0x1000) != coherence.Shared {
		t.Fatalf("old owner %v, want Sc", r.state(0, 0x1000))
	}
	if r.state(1, 0x1000) != coherence.Owned {
		t.Fatalf("new owner %v, want Sm", r.state(1, 0x1000))
	}
	// All copies value-identical.
	for core := 0; core < 2; core++ {
		if w, _ := r.ctl[core].Cache().PeekWord(0x1000); w != 1 {
			t.Fatalf("core %d word0 %d, want 1", core, w)
		}
		if w, _ := r.ctl[core].Cache().PeekWord(0x1004); w != 2 {
			t.Fatalf("core %d word1 %d, want 2", core, w)
		}
	}
}

func TestDragonSmEvictionWritesBack(t *testing.T) {
	r := newRig(t, coherence.Dragon, coherence.Dragon)
	r.access(0, false, 0x0, 0)
	r.access(1, false, 0x0, 0)
	r.access(0, true, 0x0, 42) // c0 Sm; memory still stale
	if r.mem.Peek(0x0) != 0 {
		t.Fatal("update leaked to memory")
	}
	// Evict c0's Sm line (2-way, stride 0x200).
	r.access(0, false, 0x200, 0)
	r.access(0, false, 0x400, 0)
	r.spin(func() bool { return r.bus.Idle() })
	if r.mem.Peek(0x0) != 42 {
		t.Fatalf("Sm eviction lost dirty data: mem=%d", r.mem.Peek(0x0))
	}
}

func TestDragonDirtySupplyOnRead(t *testing.T) {
	r := newRig(t, coherence.Dragon, coherence.Dragon)
	r.access(0, true, 0x1000, 7) // M (exclusive write path: fill E, write silent)
	got := r.access(1, false, 0x1000, 0)
	if got != 7 {
		t.Fatalf("read %d, want 7 (supplied by owner)", got)
	}
	if r.state(0, 0x1000) != coherence.Owned || r.state(1, 0x1000) != coherence.Shared {
		t.Fatalf("states %v/%v, want Sm/Sc", r.state(0, 0x1000), r.state(1, 0x1000))
	}
	if r.mem.Peek(0x1000) != 0 {
		t.Fatal("memory written despite cache-to-cache supply")
	}
}

func TestDragonSnoopUpdateCounted(t *testing.T) {
	r := newRig(t, coherence.Dragon, coherence.Dragon)
	r.access(0, false, 0x1000, 0)
	r.access(1, false, 0x1000, 0)
	r.access(0, true, 0x1000, 1)
	if s := r.ctl[1].Cache().Stats(); s.SnoopUpdates != 1 {
		t.Fatalf("snoop updates %d, want 1", s.SnoopUpdates)
	}
}
