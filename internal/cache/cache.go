// Package cache models a set-associative write-back data cache with a
// snooping controller, parameterised by the coherence protocol state machine
// of the host processor (package coherence).
//
// The package separates the storage array (Cache) from the bus-mastering
// Controller.  The controller implements the handshake behaviours the paper
// builds on: it ARTRYs transactions that hit one of its dirty lines, queues
// the drain write-back, asks the arbiter for the bus (BOFF), and retires the
// original master's retry only after the drain completes.  A Policy hook —
// implemented by package wrapper — lets the paper's wrappers convert
// observed reads into writes and override the shared signal.
package cache

import (
	"fmt"

	"hetcc/internal/coherence"
)

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the line size (the paper uses 32 bytes = 8 words).
	LineBytes int
}

// Validate checks the geometry is consistent.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes%4 != 0 {
		return fmt.Errorf("cache: line size %d not a positive multiple of 4", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d)", c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// WordsPerLine returns the line size in 32-bit words.
func (c Config) WordsPerLine() int { return c.LineBytes / 4 }

// LineAddr returns the line-aligned base of addr.
func (c Config) LineAddr(addr uint32) uint32 {
	return addr &^ uint32(c.LineBytes-1)
}

// Line is one cache line.
type Line struct {
	// Base is the line-aligned address (valid only when State != Invalid).
	Base  uint32
	State coherence.State
	Data  []uint32
	lru   uint64

	// flushPending marks a line whose snoop-triggered drain is queued but
	// not yet completed; further snoops of the line must keep ARTRYing.
	flushPending bool
	// flushNext is the state to enter once the pending drain completes.
	flushNext coherence.State
}

// Stats collects cache and controller event counters.
type Stats struct {
	ReadHits    uint64
	ReadMisses  uint64
	WriteHits   uint64
	WriteMisses uint64
	Upgrades    uint64
	Evictions   uint64
	EvictionWBs uint64

	SnoopHits          uint64
	SnoopInvalidations uint64
	SnoopFlushes       uint64
	SnoopSupplies      uint64
	SnoopDowngrades    uint64
	SnoopUpdates       uint64

	CleanOps uint64
	InvalOps uint64
}

// Cache is the storage array.  It has no timing of its own; the Controller
// and the CPU model account for cycles.
type Cache struct {
	cfg   Config
	proto *coherence.Protocol
	sets  [][]Line
	tick  uint64
	stats Stats
}

// New builds an empty cache for the given protocol.  The protocol may not
// be nil: coherence-less processors (ARM920T) still carry a cache, modelled
// as MEI with snooping performed externally by package snooplogic (its own
// controller never sees foreign bus traffic).
func New(cfg Config, proto *coherence.Protocol) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if proto == nil {
		return nil, fmt.Errorf("cache: nil protocol")
	}
	sets := make([][]Line, cfg.Sets())
	for i := range sets {
		ways := make([]Line, cfg.Ways)
		for w := range ways {
			ways[w].Data = make([]uint32, cfg.WordsPerLine())
		}
		sets[i] = ways
	}
	return &Cache{cfg: cfg, proto: proto, sets: sets}, nil
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// Protocol returns the coherence state machine in use.
func (c *Cache) Protocol() *coherence.Protocol { return c.proto }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) setIndex(addr uint32) int {
	return int((addr / uint32(c.cfg.LineBytes)) % uint32(c.cfg.Sets()))
}

// Lookup returns the line holding addr, or nil.
func (c *Cache) Lookup(addr uint32) *Line {
	base := c.cfg.LineAddr(addr)
	set := c.sets[c.setIndex(addr)]
	for i := range set {
		if set[i].State != coherence.Invalid && set[i].Base == base {
			return &set[i]
		}
	}
	return nil
}

// Touch refreshes the LRU position of line.
func (c *Cache) Touch(l *Line) {
	c.tick++
	l.lru = c.tick
}

// Victim returns the way that a fill of addr would replace: an invalid way
// if one exists, else the least recently used.  Lines with a pending flush
// are never chosen.
func (c *Cache) Victim(addr uint32) *Line {
	set := c.sets[c.setIndex(addr)]
	var victim *Line
	for i := range set {
		l := &set[i]
		if l.flushPending {
			continue
		}
		if l.State == coherence.Invalid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Install fills the line for addr with data in the given state, returning
// the installed line.  The caller must have evicted the victim first.
func (c *Cache) Install(addr uint32, data []uint32, state coherence.State, into *Line) *Line {
	base := c.cfg.LineAddr(addr)
	into.Base = base
	into.State = state
	copy(into.Data, data)
	into.flushPending = false
	c.Touch(into)
	return into
}

// WordIndex returns the index of addr's word within its line.
func (c *Cache) WordIndex(addr uint32) int {
	return int(addr%uint32(c.cfg.LineBytes)) / 4
}

// ResidentLines returns the base addresses of all valid lines (for the TAG
// CAM mirror property tests and the snoop logic).
func (c *Cache) ResidentLines() []uint32 {
	var out []uint32
	for _, set := range c.sets {
		for i := range set {
			if set[i].State != coherence.Invalid {
				out = append(out, set[i].Base)
			}
		}
	}
	return out
}

// StateOf returns the coherence state of the line holding addr (Invalid if
// absent).
func (c *Cache) StateOf(addr uint32) coherence.State {
	if l := c.Lookup(addr); l != nil {
		return l.State
	}
	return coherence.Invalid
}

// PeekWord returns the cached word at addr and whether it is resident.
func (c *Cache) PeekWord(addr uint32) (uint32, bool) {
	l := c.Lookup(addr)
	if l == nil {
		return 0, false
	}
	return l.Data[c.WordIndex(addr)], true
}
