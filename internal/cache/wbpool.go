package cache

import (
	"hetcc/internal/bus"
	"hetcc/internal/coherence"
)

// wbKind distinguishes the three write-back flavours a controller issues.
type wbKind uint8

const (
	wbEvict wbKind = iota // dirty victim eviction
	wbClean               // software Clean (drain + invalidate)
	wbFlush               // snoop-triggered flush (ARTRY/HITM drain)
)

// wbJob is one in-flight write-back: the bus transaction, the snapshot of
// the line data it carries, and the bookkeeping its completion must perform.
// Unlike the single outstanding CPU request, several write-backs can be in
// flight at once (an eviction queued behind a snoop flush, for example), so
// jobs come from a per-controller free list: the transaction struct, data
// buffer and completion callback are all reused, making steady-state drains
// allocation-free.
type wbJob struct {
	ctl   *Controller
	txn   bus.Transaction
	buf   []uint32
	base  uint32
	start uint64
	kind  wbKind
	// line/converted are wbFlush state: the array line being drained and
	// whether the snoop carried a wrapper read→write conversion.
	line      *Line
	converted bool
	// userDone is wbClean's caller callback.
	userDone func()
	// doneFn is the prebound j.done method value handed to the bus.
	doneFn func(bus.Result)
}

// setData snapshots the line payload into the job's reusable buffer.
func (j *wbJob) setData(d []uint32) {
	if cap(j.buf) < len(d) {
		j.buf = make([]uint32, len(d))
	}
	j.buf = j.buf[:len(d)]
	copy(j.buf, d)
}

func (ctl *Controller) getWB() *wbJob {
	if n := len(ctl.wbFree); n > 0 {
		j := ctl.wbFree[n-1]
		ctl.wbFree[n-1] = nil
		ctl.wbFree = ctl.wbFree[:n-1]
		return j
	}
	j := &wbJob{ctl: ctl}
	j.doneFn = j.done
	return j
}

func (ctl *Controller) putWB(j *wbJob) {
	j.line = nil
	j.userDone = nil
	ctl.wbFree = append(ctl.wbFree, j)
}

// done is the completion callback for every write-back kind.
func (j *wbJob) done(bus.Result) {
	ctl := j.ctl
	ctl.mDrainLat.Observe(ctl.bus.Cycle() - j.start)
	switch j.kind {
	case wbEvict:
		delete(ctl.pendingWB, j.base)
		ctl.events.Drain(ctl.masterID, j.base, j.txn.ID())
	case wbClean:
		delete(ctl.pendingWB, j.base)
		ctl.events.Drain(ctl.masterID, j.base, j.txn.ID())
		if j.userDone != nil {
			j.userDone()
		}
	case wbFlush:
		l := j.line
		l.flushPending = false
		ctl.events.Drain(ctl.masterID, l.Base, j.txn.ID())
		ctl.noteState(l.Base, l.State, l.flushNext)
		l.State = l.flushNext
		if l.State == coherence.Invalid {
			if j.converted {
				ctl.markRemoteInval(l.Base)
			}
			if ctl.upgradeLive && l.Base == ctl.upgradeBase {
				ctl.upgradeLost = true
			}
		}
	}
	ctl.putWB(j)
}
