package explore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/snooplogic"
)

var allKinds = []coherence.Kind{
	coherence.MEI, coherence.MSI, coherence.MESI,
	coherence.MOESI, coherence.Dragon, coherence.None,
}

// pairs returns every 2-master protocol multiset.
func pairs() [][]coherence.Kind {
	var out [][]coherence.Kind
	for i, a := range allKinds {
		for _, b := range allKinds[i:] {
			out = append(out, []coherence.Kind{a, b})
		}
	}
	return out
}

// TestWrappedPairsProved is the proof obligation: for every 2-master pair
// the reduction accepts, the full reachable state space contains zero
// invariant violations and the sweep is complete (no frontier overflow).
func TestWrappedPairsProved(t *testing.T) {
	accepted := 0
	for _, kinds := range pairs() {
		res, err := Explore(Config{Protocols: kinds, Mode: ModeWrapped})
		if err != nil {
			// The paper's method rejects Dragon heterogeneity — that must be
			// the only reason a pair fails to explore.
			if !strings.Contains(err.Error(), "Dragon") {
				t.Errorf("%v: unexpected reduction error: %v", kinds, err)
			}
			continue
		}
		accepted++
		if !res.Complete {
			t.Errorf("%v: incomplete sweep (%d dropped)", kinds, res.Dropped)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: wrapped system violated invariants: %v", kinds, res.Violations[0])
			for _, l := range res.Violations[0].Trace {
				t.Log(l)
			}
		}
		if res.States == 0 || res.Transitions == 0 || res.FrontierPeak == 0 {
			t.Errorf("%v: empty census %+v", kinds, res)
		}
	}
	if accepted < 15 {
		t.Errorf("only %d pairs accepted; the matrix should accept all but Dragon mixes", accepted)
	}
}

// TestWrappedTriplesProved extends the proof to 3-master samples covering
// every platform class and the widest protocol span.
func TestWrappedTriplesProved(t *testing.T) {
	for _, kinds := range [][]coherence.Kind{
		{coherence.None, coherence.None, coherence.None},
		{coherence.MEI, coherence.MESI, coherence.None},
		{coherence.MEI, coherence.MSI, coherence.MOESI},
		{coherence.MSI, coherence.MESI, coherence.MOESI},
		{coherence.MESI, coherence.MESI, coherence.MOESI},
		{coherence.MOESI, coherence.MOESI, coherence.MOESI},
		{coherence.Dragon, coherence.Dragon, coherence.Dragon},
		{coherence.MOESI, coherence.None, coherence.None},
	} {
		res, err := Explore(Config{Protocols: kinds, Mode: ModeWrapped})
		if err != nil {
			t.Fatalf("%v: %v", kinds, err)
		}
		if !res.Complete || len(res.Violations) != 0 {
			t.Errorf("%v: complete=%v violations=%d", kinds, res.Complete, len(res.Violations))
		}
	}
}

// TestWrappedAgreesWithVerify cross-validates the two model checkers: for
// coherent-only mixes they model the same system, so the per-master
// reachable sets must be identical.
func TestWrappedAgreesWithVerify(t *testing.T) {
	for _, kinds := range pairs() {
		skip := false
		for _, k := range kinds {
			if k == coherence.None {
				skip = true
			}
		}
		if skip {
			continue
		}
		integ, err := core.Reduce(kinds)
		if err != nil {
			continue
		}
		want, err := core.Verify(kinds, integ.Policies, integ.Effective)
		if err != nil {
			t.Fatalf("Verify(%v): %v", kinds, err)
		}
		got, err := Explore(Config{Protocols: kinds, Mode: ModeWrapped})
		if err != nil {
			t.Fatalf("Explore(%v): %v", kinds, err)
		}
		if len(want.Violations) != 0 || len(got.Violations) != 0 {
			t.Errorf("%v: violations verify=%d explore=%d", kinds, len(want.Violations), len(got.Violations))
		}
		for i := range kinds {
			if !reflect.DeepEqual(want.Reachable[i], got.Reachable[i]) {
				t.Errorf("%v P%d: reachable verify=%v explore=%v", kinds, i, want.Reachable[i], got.Reachable[i])
			}
		}
	}
}

// TestEliminatedStates checks the reduction table's headline eliminations
// state-by-state, matching the paper's Section 2 claims.
func TestEliminatedStates(t *testing.T) {
	cases := []struct {
		kinds      []coherence.Kind
		master     int
		eliminated []coherence.State
	}{
		// MEI mix: S and O disappear everywhere.
		{[]coherence.Kind{coherence.MEI, coherence.MESI}, 1, []coherence.State{coherence.Shared}},
		{[]coherence.Kind{coherence.MEI, coherence.MOESI}, 1, []coherence.State{coherence.Shared, coherence.Owned}},
		// MSI mix: E disappears on the MESI/MOESI side, M→O never fires.
		{[]coherence.Kind{coherence.MSI, coherence.MESI}, 1, []coherence.State{coherence.Exclusive}},
		{[]coherence.Kind{coherence.MSI, coherence.MOESI}, 1, []coherence.State{coherence.Exclusive, coherence.Owned}},
		// MESI+MOESI: only O disappears.
		{[]coherence.Kind{coherence.MESI, coherence.MOESI}, 1, []coherence.State{coherence.Owned}},
		// PF2 with a shared-state protocol: the implicit MEI of the
		// coherence-less cache removes S (the defect the explorer found).
		{[]coherence.Kind{coherence.MESI, coherence.None}, 0, []coherence.State{coherence.Shared}},
		{[]coherence.Kind{coherence.MOESI, coherence.None}, 0, []coherence.State{coherence.Shared, coherence.Owned}},
	}
	for _, c := range cases {
		res, err := Explore(Config{Protocols: c.kinds, Mode: ModeWrapped})
		if err != nil {
			t.Fatalf("%v: %v", c.kinds, err)
		}
		for _, s := range c.eliminated {
			if !res.Eliminated(c.master, s) {
				t.Errorf("%v: P%d still reaches %v: %v", c.kinds, c.master, s, res.Reachable[c.master])
			}
		}
	}
}

// TestUnwiredPositiveControl: without the wrappers the heterogeneous mixes
// must violate the invariants (otherwise the explorer could not detect a
// broken reduction), while mixes that never needed the shared signal stay
// clean even unwired — exactly the paper's claim about which wirings matter.
func TestUnwiredPositiveControl(t *testing.T) {
	mustViolate := [][]coherence.Kind{
		{coherence.MEI, coherence.MESI},
		{coherence.MEI, coherence.MOESI},
		{coherence.MSI, coherence.MESI},
		{coherence.MESI, coherence.MESI}, // E dupes without the shared wire
		{coherence.MOESI, coherence.MOESI},
		{coherence.MESI, coherence.None},
		{coherence.Dragon, coherence.MESI},
		{coherence.Dragon, coherence.Dragon}, // ownership needs the shared wire
	}
	for _, kinds := range mustViolate {
		res, err := Explore(Config{Protocols: kinds, Mode: ModeUnwired})
		if err != nil {
			t.Fatalf("%v: %v", kinds, err)
		}
		if len(res.Violations) == 0 {
			t.Errorf("%v: unwired system found coherent — positive control broken", kinds)
			continue
		}
		v := res.Violations[0]
		if len(v.Path) == 0 || len(v.Trace) != len(v.Path)+1 {
			t.Errorf("%v: counterexample not replayable: path %v trace %d lines", kinds, v.Path, len(v.Trace))
		}
	}

	// MEI never uses the shared signal and the TAG-CAM drains don't either:
	// these stay coherent with no wrappers at all.
	mustHold := [][]coherence.Kind{
		{coherence.MEI, coherence.MEI},
		{coherence.MEI, coherence.None},
		{coherence.None, coherence.None},
		{coherence.MSI, coherence.MSI}, // MSI ignores the shared signal too
	}
	for _, kinds := range mustHold {
		res, err := Explore(Config{Protocols: kinds, Mode: ModeUnwired})
		if err != nil {
			t.Fatalf("%v: %v", kinds, err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: expected coherent without wrappers, got %v", kinds, res.Violations[0])
		}
	}
}

// TestCounterexampleDeterminism: the same configuration must yield the same
// first counterexample, trace included — BFS order is fixed, so the whole
// census is a deterministic function of the config.
func TestCounterexampleDeterminism(t *testing.T) {
	cfg := Config{Protocols: []coherence.Kind{coherence.MEI, coherence.MESI}, Mode: ModeUnwired}
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two explorations of one config differ")
	}
}

// TestNoneMastersStayInMEIStates: coherence-less masters hold only I/E/M in
// every mode, and in the snooping modes a valid copy always has its CAM
// entry (the mirror property) — the census proves it, not just samples it.
func TestNoneMastersStayInMEIStates(t *testing.T) {
	for _, mode := range []Mode{ModeWrapped, ModeUnwired, ModeNoSnoop} {
		res, err := Explore(Config{Protocols: []coherence.Kind{coherence.None, coherence.MEI}, Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, s := range res.Reachable[0] {
			if s == coherence.Shared || s == coherence.Owned {
				t.Errorf("%v: None master reached %v", mode, s)
			}
		}
		for _, v := range res.Violations {
			if v.Check == CheckCAMMirror {
				t.Errorf("%v: CAM mirror property violated: %v", mode, v)
			}
		}
	}
}

// TestFrontierOverflowAccounting: a tiny bound must surface as an incomplete
// census with dropped-state accounting, never a silent truncation.
func TestFrontierOverflowAccounting(t *testing.T) {
	res, err := Explore(Config{
		Protocols: []coherence.Kind{coherence.MESI, coherence.MESI},
		Mode:      ModeWrapped,
		MaxStates: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("bounded sweep reported complete")
	}
	if res.Dropped == 0 {
		t.Error("no dropped states counted")
	}
	if res.States > 4 {
		t.Errorf("visited %d states past the bound", res.States)
	}
}

// TestGraphDump: the JSONL state graph lists every expanded state once, in
// discovery order, with edges that resolve to explored states (or -1 for
// dropped successors).
func TestGraphDump(t *testing.T) {
	var buf bytes.Buffer
	res, err := Explore(Config{
		Protocols: []coherence.Kind{coherence.MEI, coherence.None},
		Mode:      ModeWrapped,
		Graph:     &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		ID      int32 `json:"id"`
		Masters []struct {
			Protocol string `json:"protocol"`
			State    string `json:"state"`
		} `json:"masters"`
		Edges []struct {
			Action string `json:"action"`
			To     int32  `json:"to"`
		} `json:"edges"`
	}
	sc := bufio.NewScanner(&buf)
	var n int32
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if r.ID != n {
			t.Fatalf("line %d has id %d: not discovery order", n, r.ID)
		}
		if len(r.Masters) != 2 || r.Masters[1].Protocol != "none" {
			t.Fatalf("line %d masters %v", n, r.Masters)
		}
		for _, e := range r.Edges {
			if e.To < -1 || e.To >= int32(res.States) || e.Action == "" {
				t.Fatalf("line %d: bad edge %+v", n, e)
			}
		}
		n++
	}
	if int(n) != res.States {
		t.Fatalf("dumped %d states, census says %d", n, res.States)
	}
}

// TestSnoopLogicTableConsistency pins the properties the explorer's atomic
// ISR-drain abstraction relies on to the transition relation snooplogic
// exports (which its own mirror test pins to the implementation):
//
//  1. a foreign transaction never completes while the line may be resident
//     (every shadowed or pending guard retries), so collapsing ARTRY → ISR →
//     retry into one atomic action loses no interleavings that matter;
//  2. the ISR always terminates with the line unshadowed and un-pending;
//  3. fills insert CAM entries and write-backs remove them, so CAM ⊇
//     residency (the cam-mirror invariant the explorer checks).
func TestSnoopLogicTableConsistency(t *testing.T) {
	hit, ok := snooplogic.Lookup(true, false, snooplogic.EvForeignMatch)
	if !ok || !hit.Retry || !hit.RaiseFIQ || !hit.NextPending {
		t.Fatalf("foreign-hit rule %+v: want retry+FIQ+pending", hit)
	}
	for _, r := range snooplogic.Table() {
		if r.Event == snooplogic.EvForeignMatch && (r.CAM || r.Pending) && !r.Retry {
			t.Errorf("rule %q lets a foreign access complete on a shadowed line", r.Name)
		}
		if r.Event == snooplogic.EvISRComplete && (r.NextCAM || r.NextPending) {
			t.Errorf("rule %q leaves ISR state behind", r.Name)
		}
		if r.Event == snooplogic.EvOwnFill && !r.NextCAM {
			t.Errorf("rule %q: fill did not shadow the line", r.Name)
		}
		if r.Event == snooplogic.EvOwnWriteBack && r.NextCAM {
			t.Errorf("rule %q: write-back left the CAM entry", r.Name)
		}
	}
	miss, ok := snooplogic.Lookup(false, false, snooplogic.EvForeignMatch)
	if !ok || miss.Retry || miss.RaiseFIQ {
		t.Fatalf("foreign-miss rule %+v: must pass through", miss)
	}
}

// TestRejectsBadConfigs: master-count limits and Dragon mixes error cleanly.
func TestRejectsBadConfigs(t *testing.T) {
	if _, err := Explore(Config{Protocols: nil}); err == nil {
		t.Error("empty protocol list accepted")
	}
	if _, err := Explore(Config{Protocols: make([]coherence.Kind, MaxMasters+1)}); err == nil {
		t.Error("oversized master list accepted")
	}
	if _, err := Explore(Config{Protocols: []coherence.Kind{coherence.Dragon, coherence.MESI}, Mode: ModeWrapped}); err == nil {
		t.Error("Dragon mix accepted in wrapped mode")
	}
	// The same mix is explorable unwired: that is how the matrix shows why
	// the reduction rejects it.
	res, err := Explore(Config{Protocols: []coherence.Kind{coherence.Dragon, coherence.MESI}, Mode: ModeUnwired})
	if err != nil {
		t.Fatalf("unwired Dragon mix: %v", err)
	}
	if len(res.Violations) == 0 {
		t.Error("unwired Dragon mix found coherent")
	}
}
