// Package explore implements an exhaustive breadth-first reachability
// explorer over an abstract model of the coherence substrate: N bus masters
// (each running any protocol from {MEI, MSI, MESI, MOESI, Dragon, none}
// behind its wrapper or TAG-CAM snoop logic), one cache line with symbolic
// data, and a nondeterministic action alphabet — local read, local write,
// eviction / software cache-op — expressed as guarded actions that mirror
// the transition rules of internal/coherence, internal/core and
// internal/snooplogic (the latter via its exported Table).
//
// Every state generated during the search is checked against the same
// invariants the online auditor of internal/audit enforces on live runs —
// SWMR, single dirty owner, the data-value invariant (via per-copy freshness
// bits), and reduction-table membership (core.AllowedStates) — plus the
// TAG-CAM mirror property (the CAM is a superset of the shadowed cache's
// residency).  Because the action alphabet is closed under interleaving and
// the line state space is finite, a clean sweep is a proof over all
// reachable states of the protocol product FSMs, not a test of the states a
// particular workload happens to visit.
//
// The model deliberately abstracts the cycle-accurate kernel: one line, no
// timing, atomic bus transactions (a snoop hit's ARTRY → nFIQ → ISR drain →
// retry sequence collapses into one guarded action), symbolic data as
// freshness bits.  DESIGN.md §10 discusses the abstraction gap; the
// containment test in the repository root checks the live simulator against
// the model in the direction that matters (observed ⊆ reachable).
package explore

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"hetcc/internal/audit"
	"hetcc/internal/coherence"
	"hetcc/internal/core"
)

// Check names used in Violation.Check.  The first four are shared with the
// online auditor so violations correlate across the two verifiers; the rest
// are model-only refinements (the auditor sees a stale read only at the read,
// the model also flags the stale fill/write that caused it) plus the TAG-CAM
// mirror property the auditor cannot observe.
const (
	CheckSWMR         = audit.CheckSWMR
	CheckDirtyOwner   = audit.CheckDirtyOwner
	CheckStaleRead    = audit.CheckStaleRead
	CheckIllegalState = audit.CheckIllegalState
	CheckStaleFill    = "stale-fill"
	CheckStaleWrite   = "stale-write"
	CheckCAMMirror    = "cam-mirror"
)

// Mode selects which coherence hardware the model includes, matching the
// wiring variants of internal/platform.
type Mode uint8

const (
	// ModeWrapped is the paper's proposed solution: snooping caches behind
	// the wrapper policies computed by core.Reduce, TAG-CAM snoop logic for
	// coherence-less masters.  The proof target: zero violations.
	ModeWrapped Mode = iota
	// ModeUnwired is the DisableWrappers positive control: snooping is
	// active and coherence-less masters keep their snoop logic, but wrapper
	// conversions, the shared-signal wiring and cache-to-cache supply are
	// all absent.  Heterogeneous mixes must produce violations here.
	ModeUnwired
	// ModeNoSnoop models the baseline solutions (cache-disabled, software
	// maintenance): no snooping hardware at all.  The explorer enumerates
	// every interleaving, including the undisciplined ones the baselines
	// exclude by construction, so violations here are expected; the mode
	// exists to bound the baselines' reachable state sets for containment.
	ModeNoSnoop
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeWrapped:
		return "wrapped"
	case ModeUnwired:
		return "unwired"
	case ModeNoSnoop:
		return "no-snoop"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// MaxMasters bounds the model size (the canonical state key packs 6 bits per
// master plus one memory bit).
const MaxMasters = 3

// DefaultMaxStates bounds the visited set when Config.MaxStates is zero.
// The single-line product FSM of three 5-state protocols with freshness and
// CAM bits fits in 2^19 states; the default leaves a wide margin while still
// guaranteeing termination accounting if the model grows.
const DefaultMaxStates = 1 << 16

// Config configures one exploration.
type Config struct {
	// Protocols lists the per-master protocols (coherence.None marks a
	// master with no coherence hardware).  1..MaxMasters entries.
	Protocols []coherence.Kind
	// Mode selects the modelled hardware (see Mode).
	Mode Mode
	// MaxStates bounds the visited set (0 = DefaultMaxStates).  Successor
	// states beyond the bound are still invariant-checked and counted in
	// Result.Dropped, but not expanded: Result.Complete reports false.
	MaxStates int
	// Graph, when non-nil, receives the explored state graph as JSONL: one
	// record per expanded state, in BFS discovery order, with its outgoing
	// edges.
	Graph io.Writer
}

// Violation is one invariant breach found during exploration, with a
// replayable counterexample: Path is the guarded-action sequence from the
// initial state, and Trace is the rendered replay of that path (one line per
// action, re-executed through the model's step function, so a printed trace
// is by construction reproducible).
type Violation struct {
	Check  string
	Master int
	State  coherence.State
	Path   []string
	Trace  []string
}

// String renders the violation headline (use Trace for the full replay).
func (v Violation) String() string {
	return fmt.Sprintf("%s at P%d (state %v) after [%s]", v.Check, v.Master, v.State, strings.Join(v.Path, " "))
}

// Result is the census of one exploration.
type Result struct {
	Protocols []coherence.Kind
	Mode      Mode
	// Effective is the reduced protocol (ModeWrapped only; None otherwise).
	Effective coherence.Kind
	// States is the number of distinct reachable states discovered;
	// Transitions counts every guarded-action edge traversed.
	States      int
	Transitions int
	// FrontierPeak is the maximum BFS frontier size; Dropped counts
	// successor states not expanded because MaxStates was reached; Complete
	// reports a full sweep (Dropped == 0), i.e. the census is a proof over
	// all reachable states rather than a bounded search.
	FrontierPeak int
	Dropped      int
	Complete     bool
	// Violations lists every distinct (check, master, state) breach.
	Violations []Violation
	// Reachable[i] is master i's observed state set, sorted I<S<E<M<O —
	// directly comparable with the auditor's Summary.Reachable.
	Reachable [][]coherence.State
}

// Contains reports whether master i was seen holding state s.
func (r *Result) Contains(i int, s coherence.State) bool {
	for _, st := range r.Reachable[i] {
		if st == s {
			return true
		}
	}
	return false
}

// Eliminated reports whether state s of master i's native protocol was
// proven unreachable (the wrapper did its job).
func (r *Result) Eliminated(i int, s coherence.State) bool {
	return !r.Contains(i, s)
}

// lineState is the abstract joint state of the one modelled cache line:
// per-master coherence state, a freshness bit (the copy holds the globally
// newest value), a TAG-CAM residency bit for masters behind snoop logic, and
// the memory freshness bit.
type lineState struct {
	cache    [MaxMasters]coherence.State
	fresh    [MaxMasters]bool
	cam      [MaxMasters]bool
	memFresh bool
}

func bit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// key packs the state canonically: 6 bits per master (3 state, 1 fresh,
// 1 cam, 1 spare) plus the memory bit.
func (s lineState) key(n int) uint32 {
	k := uint32(0)
	for i := 0; i < n; i++ {
		k = k<<6 | uint32(s.cache[i])<<2 | bit(s.fresh[i])<<1 | bit(s.cam[i])
	}
	return k<<1 | bit(s.memFresh)
}

// actKind enumerates the local action alphabet; bus transactions, snoop
// responses and wrapper conversions are consequences inside step, mirroring
// how the real kernel derives them from CPU accesses.
type actKind uint8

const (
	actRead actKind = iota
	actWrite
	actEvict
)

type action struct {
	master int
	kind   actKind
}

func (a action) String() string {
	switch a.kind {
	case actRead:
		return fmt.Sprintf("P%d.rd", a.master)
	case actWrite:
		return fmt.Sprintf("P%d.wr", a.master)
	default:
		return fmt.Sprintf("P%d.ev", a.master)
	}
}

// stepViolation is a breach detected while applying or checking one state.
type stepViolation struct {
	check  string
	master int
	state  coherence.State
}

type explorer struct {
	cfg       Config
	n         int
	native    []coherence.Kind
	protos    []*coherence.Protocol
	policies  []core.WrapperPolicy
	snoopCAM  []bool // master is behind TAG-CAM snoop logic
	allowed   []map[coherence.State]bool
	effective coherence.Kind
	maxStates int

	// BFS bookkeeping: states in discovery order, canonical key → id, and
	// one (parent, action) edge per state for counterexample reconstruction.
	states  []lineState
	ids     map[uint32]int32
	parents []int32
	acts    []action

	transitions  int
	frontierPeak int
	dropped      int

	reachable  []map[coherence.State]bool
	seenViol   map[string]bool
	violations []Violation
}

// Explore runs the breadth-first sweep for cfg.  In ModeWrapped the wrapper
// policies come from core.Reduce, so a mix the paper's method rejects (any
// Dragon heterogeneity) returns that error.
func Explore(cfg Config) (*Result, error) {
	n := len(cfg.Protocols)
	if n < 1 || n > MaxMasters {
		return nil, fmt.Errorf("explore: 1..%d masters supported, got %d", MaxMasters, n)
	}
	e := &explorer{
		cfg:       cfg,
		n:         n,
		native:    append([]coherence.Kind(nil), cfg.Protocols...),
		protos:    make([]*coherence.Protocol, n),
		policies:  make([]core.WrapperPolicy, n),
		snoopCAM:  make([]bool, n),
		allowed:   make([]map[coherence.State]bool, n),
		maxStates: cfg.MaxStates,
		ids:       make(map[uint32]int32),
		reachable: make([]map[coherence.State]bool, n),
		seenViol:  make(map[string]bool),
	}
	if e.maxStates <= 0 {
		e.maxStates = DefaultMaxStates
	}
	if cfg.Mode == ModeWrapped {
		integ, err := core.Reduce(cfg.Protocols)
		if err != nil {
			return nil, err
		}
		e.policies = integ.Policies
		e.effective = integ.Effective
	}
	for i, k := range cfg.Protocols {
		pk := k
		if k == coherence.None {
			// A coherence-less master drives an MEI-like private cache; in
			// the snooping modes the external TAG CAM shadows it.
			pk = coherence.MEI
			e.snoopCAM[i] = cfg.Mode != ModeNoSnoop
		}
		e.protos[i] = coherence.New(pk)
		eff := k
		if cfg.Mode == ModeWrapped {
			eff = e.effective
		}
		e.allowed[i] = make(map[coherence.State]bool)
		for _, s := range core.AllowedStates(k, eff) {
			e.allowed[i][s] = true
		}
		e.reachable[i] = map[coherence.State]bool{coherence.Invalid: true}
	}
	e.run()
	return e.result(), nil
}

func (e *explorer) run() {
	init := lineState{memFresh: true}
	e.states = []lineState{init}
	e.ids[init.key(e.n)] = 0
	e.parents = []int32{-1}
	e.acts = []action{{}}
	e.report(0, e.checkState(init))

	head := 0
	for head < len(e.states) {
		if f := len(e.states) - head; f > e.frontierPeak {
			e.frontierPeak = f
		}
		id := int32(head)
		cur := e.states[head]
		head++

		var edges []graphEdge
		for m := 0; m < e.n; m++ {
			for _, k := range []actKind{actRead, actWrite, actEvict} {
				a := action{master: m, kind: k}
				if k == actEvict && cur.cache[m] == coherence.Invalid {
					continue
				}
				next, label, viols := e.step(cur, a)
				e.transitions++
				nid := e.intern(next, id, a)
				for i := 0; i < e.n; i++ {
					e.reachable[i][next.cache[i]] = true
				}
				// Invariants are checked on every generated successor —
				// including revisits and states beyond the bound — so a
				// breach is never masked by deduplication or overflow.
				viols = append(viols, e.checkState(next)...)
				e.reportVia(id, a, viols)
				if e.cfg.Graph != nil {
					edges = append(edges, graphEdge{Action: a.String(), Label: label, To: nid})
				}
			}
		}
		if e.cfg.Graph != nil {
			e.dumpState(id, cur, edges)
		}
	}
}

// intern returns the id of state s, discovering it if new; -1 if the visited
// set is full (the state is counted as dropped, not expanded).
func (e *explorer) intern(s lineState, parent int32, a action) int32 {
	k := s.key(e.n)
	if id, ok := e.ids[k]; ok {
		return id
	}
	if len(e.states) >= e.maxStates {
		e.dropped++
		return -1
	}
	id := int32(len(e.states))
	e.ids[k] = id
	e.states = append(e.states, s)
	e.parents = append(e.parents, parent)
	e.acts = append(e.acts, a)
	return id
}

// pathTo reconstructs the discovery path of state id from the parent edges.
func (e *explorer) pathTo(id int32) []action {
	var rev []action
	for id > 0 {
		rev = append(rev, e.acts[id])
		id = e.parents[id]
	}
	out := make([]action, len(rev))
	for i, a := range rev {
		out[len(rev)-1-i] = a
	}
	return out
}

// report records violations found in state id itself (the initial state).
func (e *explorer) report(id int32, viols []stepViolation) {
	for _, v := range viols {
		e.record(v, e.pathTo(id))
	}
}

// reportVia records violations exposed by applying a to state parent.
func (e *explorer) reportVia(parent int32, a action, viols []stepViolation) {
	if len(viols) == 0 {
		return
	}
	path := append(e.pathTo(parent), a)
	for _, v := range viols {
		e.record(v, path)
	}
}

func (e *explorer) record(v stepViolation, path []action) {
	key := fmt.Sprintf("%s/%d/%v", v.check, v.master, v.state)
	if e.seenViol[key] {
		return
	}
	e.seenViol[key] = true
	names := make([]string, len(path))
	for i, a := range path {
		names[i] = a.String()
	}
	e.violations = append(e.violations, Violation{
		Check:  v.check,
		Master: v.master,
		State:  v.state,
		Path:   names,
		Trace:  e.replay(path),
	})
}

// replay re-executes the guarded-action path from the initial state through
// the same step function the search uses, rendering one line per action.
func (e *explorer) replay(path []action) []string {
	s := lineState{memFresh: true}
	lines := []string{"init                          " + e.render(s)}
	for _, a := range path {
		next, label, _ := e.step(s, a)
		lines = append(lines, fmt.Sprintf("%-30s%s", label, e.render(next)))
		s = next
	}
	return lines
}

// render prints a state: per-master coherence state, '*' marks a copy
// holding the globally newest value, '+' marks a TAG-CAM entry.
func (e *explorer) render(s lineState) string {
	var b strings.Builder
	for i := 0; i < e.n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "P%d:%v", i, s.cache[i])
		if s.fresh[i] {
			b.WriteByte('*')
		}
		if s.cam[i] {
			b.WriteByte('+')
		}
	}
	if s.memFresh {
		b.WriteString(" mem*")
	} else {
		b.WriteString(" mem")
	}
	return b.String()
}

// checkState evaluates the state invariants: reduction-table membership,
// SWMR, single dirty owner, and the TAG-CAM mirror property.
func (e *explorer) checkState(s lineState) []stepViolation {
	var out []stepViolation
	writers, dirties, valid := 0, 0, 0
	writerIdx, dirtyIdx := -1, -1
	for i := 0; i < e.n; i++ {
		st := s.cache[i]
		if !e.allowed[i][st] {
			out = append(out, stepViolation{CheckIllegalState, i, st})
		}
		if e.snoopCAM[i] && st != coherence.Invalid && !s.cam[i] {
			out = append(out, stepViolation{CheckCAMMirror, i, st})
		}
		if st == coherence.Invalid {
			continue
		}
		valid++
		if st == coherence.Exclusive || st == coherence.Modified {
			writers++
			writerIdx = i
		}
		if st.Dirty() {
			dirties++
			dirtyIdx = i
		}
	}
	if writers > 1 || (writers == 1 && valid > 1) {
		out = append(out, stepViolation{CheckSWMR, writerIdx, s.cache[writerIdx]})
	}
	if dirties > 1 {
		out = append(out, stepViolation{CheckDirtyOwner, dirtyIdx, s.cache[dirtyIdx]})
	}
	return out
}

// step applies action a to state s, returning the successor, a label listing
// the guarded actions that fired (bus op, wrapper conversions, snoop
// reactions, ISR drains), and any data-value violations the action exposed.
func (e *explorer) step(s lineState, a action) (lineState, string, []stepViolation) {
	i := a.master
	var viols []stepViolation
	var parts []string

	switch a.kind {
	case actRead:
		if s.cache[i] != coherence.Invalid {
			if !s.fresh[i] {
				viols = append(viols, stepViolation{CheckStaleRead, i, s.cache[i]})
			}
			return s, fmt.Sprintf("%v hit", a), viols
		}
		shared, fillFresh, _ := e.broadcast(&s, i, coherence.BusRd, &parts)
		st := e.protos[i].FillStateAfterRead(e.sampleShared(i, shared))
		s.cache[i] = st
		s.fresh[i] = fillFresh
		if e.snoopCAM[i] {
			s.cam[i] = true
		}
		if !fillFresh {
			viols = append(viols, stepViolation{CheckStaleFill, i, st})
		}
		return s, e.label(a, "BusRd", parts), viols

	case actWrite:
		var updated []int
		op := ""
		if s.cache[i] == coherence.Invalid {
			if e.protos[i].UpdateBased() {
				// Dragon write miss: fill with a read, then write like a hit.
				shared, fillFresh, _ := e.broadcast(&s, i, coherence.BusRd, &parts)
				st := e.protos[i].FillStateAfterRead(e.sampleShared(i, shared))
				if !fillFresh {
					viols = append(viols, stepViolation{CheckStaleFill, i, st})
				}
				s.cache[i] = st
				s.fresh[i] = fillFresh
				var broadcast bool
				updated, broadcast = e.dragonWrite(&s, i, &parts)
				op = "BusRd"
				if broadcast {
					op = "BusRd+BusUpd"
				}
			} else {
				e.broadcast(&s, i, coherence.BusRdX, &parts)
				s.cache[i] = e.protos[i].FillStateAfterWrite()
				if e.snoopCAM[i] {
					s.cam[i] = true
				}
				op = "BusRdX"
			}
		} else {
			if !s.fresh[i] {
				// Writing one word into a line whose other words are stale
				// corrupts the line.
				viols = append(viols, stepViolation{CheckStaleWrite, i, s.cache[i]})
			}
			if e.protos[i].UpdateBased() {
				var broadcast bool
				updated, broadcast = e.dragonWrite(&s, i, &parts)
				op = "hit"
				if broadcast {
					op = "BusUpd"
				}
			} else {
				next, _, needsBus, err := e.protos[i].OnWriteHit(s.cache[i])
				if err != nil {
					panic(err)
				}
				if needsBus {
					e.broadcast(&s, i, coherence.BusUpgr, &parts)
					op = "BusUpgr"
				} else {
					op = "hit"
				}
				s.cache[i] = next
			}
		}
		// The write creates the globally newest value; masters that applied
		// a Dragon bus update received it too.
		for j := 0; j < e.n; j++ {
			s.fresh[j] = j == i
		}
		for _, j := range updated {
			s.fresh[j] = true
		}
		s.memFresh = false
		return s, e.label(a, op, parts), viols

	default: // actEvict
		op := "silent"
		if s.cache[i].Dirty() {
			// Dirty copy: the write-back makes memory as fresh as the copy
			// was, and the snoop logic observes the WriteLine.
			s.memFresh = s.fresh[i]
			if e.snoopCAM[i] {
				s.cam[i] = false
			}
			op = "wb"
		}
		// A clean drop is invisible on the bus: a TAG-CAM entry stays
		// behind, stale (snooplogic Table rule "foreign-hit" then finds
		// nothing to drain — the spurious-hit path).
		s.cache[i] = coherence.Invalid
		return s, e.label(a, op, parts), viols
	}
}

func (e *explorer) label(a action, op string, parts []string) string {
	l := a.String() + " " + op
	if len(parts) > 0 {
		l += "[" + strings.Join(parts, " ") + "]"
	}
	return l
}

// sampleShared maps the combined snoop shared signal to what master i's fill
// actually samples: the wrapper override in ModeWrapped, nothing in the
// other modes (ModeUnwired leaves the shared line unwired across protocol
// conventions; ModeNoSnoop has no snoopers to assert it).
func (e *explorer) sampleShared(i int, shared bool) bool {
	if e.cfg.Mode == ModeWrapped {
		return e.policies[i].ApplyShared(shared)
	}
	return false
}

// broadcast presents op from requester to every other master, mutating s
// with the snoop reactions, and returns the combined shared signal, the
// freshness of the data the requester will receive (from memory or a
// supplier), and which masters applied a Dragon word update in place.
func (e *explorer) broadcast(s *lineState, req int, op coherence.BusOp, parts *[]string) (shared, fillFresh bool, updated []int) {
	fillFresh = s.memFresh
	for j := 0; j < e.n; j++ {
		if j == req || e.cfg.Mode == ModeNoSnoop {
			continue
		}
		if e.snoopCAM[j] {
			if !s.cam[j] {
				continue
			}
			// TAG-CAM match: ARTRY + nFIQ + ISR, collapsed into one atomic
			// guarded action (the retried transaction proceeds only after
			// Complete, so no other action can interleave).  The ISR drains
			// a modified line or invalidates a clean one; a stale entry is a
			// spurious hit (snooplogic Table rules foreign-hit → isr-drain-
			// writeback/isr-complete).
			switch {
			case s.cache[j].Dirty():
				s.memFresh = s.fresh[j]
				fillFresh = s.memFresh
				*parts = append(*parts, fmt.Sprintf("P%d:isr-drain", j))
			case s.cache[j] != coherence.Invalid:
				*parts = append(*parts, fmt.Sprintf("P%d:isr-inval", j))
			default:
				*parts = append(*parts, fmt.Sprintf("P%d:isr-spurious", j))
			}
			s.cache[j] = coherence.Invalid
			s.cam[j] = false
			continue
		}
		if s.cache[j] == coherence.Invalid {
			continue
		}
		seen := op
		if e.cfg.Mode == ModeWrapped {
			seen = e.policies[j].SnoopOp(op)
		}
		out, err := e.protos[j].OnSnoop(s.cache[j], seen)
		if err != nil {
			if e.cfg.Mode == ModeWrapped {
				// A reduced system never presents an op outside the
				// snooper's protocol; reaching here is a model bug.
				panic(err)
			}
			// An un-integrated snooper ignores an op outside its protocol
			// (a Dragon BusUpd means nothing to an invalidation snooper):
			// the copy silently goes stale — the defect the positive
			// control demonstrates.
			*parts = append(*parts, fmt.Sprintf("P%d:ignores-%v", j, seen))
			continue
		}
		if out.Supply && (e.cfg.Mode != ModeWrapped || !e.policies[j].AllowCacheToCache) {
			// Suppressed cache-to-cache: drain to memory instead.
			out.Supply = false
			out.Flush = true
			if out.Next == coherence.Owned {
				out.Next = coherence.Shared
			}
		}
		if out.Flush {
			s.memFresh = s.fresh[j]
			fillFresh = s.memFresh
		}
		if out.Supply {
			fillFresh = s.fresh[j]
		}
		if out.Update {
			updated = append(updated, j)
		}
		shared = shared || out.AssertShared
		e.describeSnoop(parts, j, s.cache[j], out, seen != op)
		s.cache[j] = out.Next
	}
	return shared, fillFresh, updated
}

func (e *explorer) describeSnoop(parts *[]string, j int, old coherence.State, out coherence.SnoopOutcome, converted bool) {
	tags := ""
	if converted {
		tags += "~conv"
	}
	if out.Flush {
		tags += "~flush"
	}
	if out.Supply {
		tags += "~supply"
	}
	if out.Update {
		tags += "~upd"
	}
	if out.AssertShared {
		tags += "~shd"
	}
	if old == out.Next && tags == "" {
		return
	}
	*parts = append(*parts, fmt.Sprintf("P%d:%v>%v%s", j, old, out.Next, tags))
}

// dragonWrite applies an update-based write hit on master i: silent for
// exclusive states, a BusUpd broadcast (with ownership resolved from the
// sampled shared signal) for shared ones.  It returns the masters whose
// copies were updated in place and whether a broadcast happened.
func (e *explorer) dragonWrite(s *lineState, i int, parts *[]string) ([]int, bool) {
	next, op, needsBus, err := e.protos[i].OnWriteHit(s.cache[i])
	if err != nil {
		panic(err)
	}
	if !needsBus {
		s.cache[i] = next
		return nil, false
	}
	if op != coherence.BusUpd {
		panic(fmt.Sprintf("explore: update-based write hit issued %v", op))
	}
	shared, _, updated := e.broadcast(s, i, coherence.BusUpd, parts)
	s.cache[i] = e.protos[i].AfterUpdate(e.sampleShared(i, shared))
	return updated, true
}

func (e *explorer) result() *Result {
	r := &Result{
		Protocols:    e.native,
		Mode:         e.cfg.Mode,
		Effective:    e.effective,
		States:       len(e.states),
		Transitions:  e.transitions,
		FrontierPeak: e.frontierPeak,
		Dropped:      e.dropped,
		Complete:     e.dropped == 0,
		Violations:   e.violations,
	}
	r.Reachable = make([][]coherence.State, e.n)
	for i := range e.reachable {
		var sts []coherence.State
		for s := range e.reachable[i] {
			sts = append(sts, s)
		}
		sort.Slice(sts, func(a, b int) bool { return sts[a] < sts[b] })
		r.Reachable[i] = sts
	}
	return r
}

// graphState is one JSONL record of the state-graph dump.
type graphState struct {
	ID       int32         `json:"id"`
	Masters  []graphMaster `json:"masters"`
	MemFresh bool          `json:"mem_fresh"`
	Edges    []graphEdge   `json:"edges,omitempty"`
}

type graphMaster struct {
	Protocol string `json:"protocol"`
	State    string `json:"state"`
	Fresh    bool   `json:"fresh"`
	CAM      bool   `json:"cam,omitempty"`
}

// graphEdge is one guarded-action edge; To is -1 when the successor was
// dropped by the MaxStates bound.
type graphEdge struct {
	Action string `json:"action"`
	Label  string `json:"label,omitempty"`
	To     int32  `json:"to"`
}

func (e *explorer) dumpState(id int32, s lineState, edges []graphEdge) {
	rec := graphState{ID: id, MemFresh: s.memFresh, Edges: edges}
	for i := 0; i < e.n; i++ {
		rec.Masters = append(rec.Masters, graphMaster{
			Protocol: e.native[i].String(),
			State:    s.cache[i].String(),
			Fresh:    s.fresh[i],
			CAM:      s.cam[i],
		})
	}
	b, err := json.Marshal(rec)
	if err != nil {
		panic(err)
	}
	b = append(b, '\n')
	if _, err := e.cfg.Graph.Write(b); err != nil {
		// The dump is diagnostic output; a write failure must not corrupt
		// the census, so it surfaces as a panic rather than silence.
		panic(fmt.Sprintf("explore: graph dump: %v", err))
	}
}
