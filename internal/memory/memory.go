// Package memory models the SoC main memory and its controller timing.
//
// The paper's Table 4 fixes the memory access time at 6 bus cycles for a
// single word and 6 + 1 per subsequent word for a burst: a full 8-word cache
// line therefore costs 13 bus cycles, the "13-cycle miss penalty" of the
// abstract.  Figure 8 sweeps this penalty up to 96 cycles; Timing.Scale
// reproduces that sweep.
//
// An important subtlety from the paper's Section 2: the read-to-write
// conversion performed by the wrappers is visible only to snooping cache
// controllers — "the memory controller should see the actual operation in
// order to access the memory correctly".  The bus therefore always hands
// this package the original, unconverted operation.
package memory

import "fmt"

// WordBytes is the machine word size (32-bit words throughout).
const WordBytes = 4

// Timing holds the memory controller latencies in bus cycles.
type Timing struct {
	// SingleWord is the latency of a one-word access.
	SingleWord int
	// BurstFirst is the latency of the first word of a burst.
	BurstFirst int
	// BurstPerWord is the latency of each subsequent burst word.
	BurstPerWord int
}

// DefaultTiming is the paper's Table 4 configuration: 6 cycles single word,
// 6 + 7x1 = 13 cycles for an 8-word burst.
func DefaultTiming() Timing {
	return Timing{SingleWord: 6, BurstFirst: 6, BurstPerWord: 1}
}

// ScaledTiming returns the Figure 8 configuration whose 8-word burst (miss
// penalty) costs burstTotal cycles.  The single-word latency scales
// proportionally to the paper's 6:13 baseline ratio, and the per-word burst
// increment keeps the paper's 1:6 relationship to the first-word latency.
func ScaledTiming(burstTotal int) Timing {
	if burstTotal < 8 {
		burstTotal = 8
	}
	// Solve first + 7*per = burstTotal with per = max(1, first/6) like the
	// baseline (first=6, per=1).
	first := (burstTotal * 6) / 13
	if first < 1 {
		first = 1
	}
	per := (burstTotal - first) / 7
	if per < 1 {
		per = 1
	}
	first = burstTotal - 7*per
	if first < 1 {
		first = 1
	}
	single := first
	return Timing{SingleWord: single, BurstFirst: first, BurstPerWord: per}
}

// BurstLatency returns the bus cycles needed to transfer words words.
func (t Timing) BurstLatency(words int) int {
	if words <= 0 {
		return 0
	}
	if words == 1 {
		return t.SingleWord
	}
	return t.BurstFirst + (words-1)*t.BurstPerWord
}

// Memory is a sparse word-addressed RAM.  Addresses are byte addresses and
// must be word aligned.
type Memory struct {
	words map[uint32]uint32

	// Reads and Writes count word-granularity accesses for the statistics
	// report.
	Reads  uint64
	Writes uint64
}

// New returns an empty (all-zero) memory.
func New() *Memory {
	return &Memory{words: make(map[uint32]uint32)}
}

func checkAligned(addr uint32) {
	if addr%WordBytes != 0 {
		panic(fmt.Sprintf("memory: unaligned word address 0x%08x", addr))
	}
}

// ReadWord returns the word at byte address addr.
func (m *Memory) ReadWord(addr uint32) uint32 {
	checkAligned(addr)
	m.Reads++
	return m.words[addr]
}

// WriteWord stores v at byte address addr.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	checkAligned(addr)
	m.Writes++
	if v == 0 {
		delete(m.words, addr)
		return
	}
	m.words[addr] = v
}

// ReadLine copies the words words starting at the line-aligned address base
// into dst.
func (m *Memory) ReadLine(base uint32, dst []uint32) {
	for i := range dst {
		dst[i] = m.ReadWord(base + uint32(i*WordBytes))
	}
}

// WriteLine stores src at the line-aligned address base.
func (m *Memory) WriteLine(base uint32, src []uint32) {
	for i, v := range src {
		m.WriteWord(base+uint32(i*WordBytes), v)
	}
}

// Peek reads without counting statistics (for assertions and golden-model
// comparison in tests).
func (m *Memory) Peek(addr uint32) uint32 {
	checkAligned(addr)
	return m.words[addr]
}

// Poke writes without counting statistics.
func (m *Memory) Poke(addr uint32, v uint32) {
	checkAligned(addr)
	if v == 0 {
		delete(m.words, addr)
		return
	}
	m.words[addr] = v
}

// Footprint returns the number of nonzero words resident (for tests).
func (m *Memory) Footprint() int { return len(m.words) }
