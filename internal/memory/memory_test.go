package memory

import (
	"testing"
	"testing/quick"
)

func TestDefaultTimingMatchesPaperTable4(t *testing.T) {
	tm := DefaultTiming()
	if tm.SingleWord != 6 {
		t.Errorf("single word %d, want 6", tm.SingleWord)
	}
	if got := tm.BurstLatency(8); got != 13 {
		t.Errorf("8-word burst %d cycles, want 13 (the paper's miss penalty)", got)
	}
	if got := tm.BurstLatency(1); got != 6 {
		t.Errorf("1-word burst %d, want 6", got)
	}
	if got := tm.BurstLatency(0); got != 0 {
		t.Errorf("0-word burst %d, want 0", got)
	}
}

func TestScaledTimingHitsRequestedPenalty(t *testing.T) {
	for _, pen := range []int{13, 20, 24, 48, 72, 96, 200} {
		tm := ScaledTiming(pen)
		if got := tm.BurstLatency(8); got != pen {
			t.Errorf("ScaledTiming(%d): burst = %d", pen, got)
		}
		if tm.SingleWord <= 0 || tm.BurstPerWord <= 0 {
			t.Errorf("ScaledTiming(%d): non-positive components %+v", pen, tm)
		}
	}
}

func TestScaledTimingBaselineConsistency(t *testing.T) {
	// Scaling to the paper's baseline penalty must reproduce its ratios
	// approximately: single word stays well below the burst.
	tm := ScaledTiming(13)
	if tm.SingleWord < 4 || tm.SingleWord > 8 {
		t.Errorf("baseline single-word %d out of plausible band", tm.SingleWord)
	}
}

func TestScaledTimingProperty(t *testing.T) {
	f := func(raw uint8) bool {
		pen := int(raw)%200 + 8
		tm := ScaledTiming(pen)
		return tm.BurstLatency(8) == pen && tm.SingleWord >= 1 && tm.SingleWord <= pen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.WriteWord(0x100, 42)
	m.WriteWord(0x104, 0xdeadbeef)
	if got := m.ReadWord(0x100); got != 42 {
		t.Errorf("read 0x100 = %d", got)
	}
	if got := m.ReadWord(0x104); got != 0xdeadbeef {
		t.Errorf("read 0x104 = %#x", got)
	}
	if got := m.ReadWord(0x200); got != 0 {
		t.Errorf("unwritten word = %d, want 0", got)
	}
}

func TestWriteZeroReclaimsFootprint(t *testing.T) {
	m := New()
	m.WriteWord(0x100, 1)
	m.WriteWord(0x104, 2)
	if m.Footprint() != 2 {
		t.Fatalf("footprint %d, want 2", m.Footprint())
	}
	m.WriteWord(0x100, 0)
	if m.Footprint() != 1 {
		t.Fatalf("footprint after zeroing %d, want 1", m.Footprint())
	}
	if m.ReadWord(0x100) != 0 {
		t.Fatal("zeroed word reads nonzero")
	}
}

func TestLineRoundTrip(t *testing.T) {
	m := New()
	src := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	m.WriteLine(0x200, src)
	dst := make([]uint32, 8)
	m.ReadLine(0x200, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("word %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New()
	for _, f := range []func(){
		func() { m.ReadWord(0x101) },
		func() { m.WriteWord(0x102, 1) },
		func() { m.Peek(0x103) },
		func() { m.Poke(0x101, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPeekPokeDoNotCount(t *testing.T) {
	m := New()
	m.Poke(0x100, 5)
	_ = m.Peek(0x100)
	if m.Reads != 0 || m.Writes != 0 {
		t.Fatalf("peek/poke counted: reads=%d writes=%d", m.Reads, m.Writes)
	}
	m.WriteWord(0x100, 6)
	_ = m.ReadWord(0x100)
	if m.Reads != 1 || m.Writes != 1 {
		t.Fatalf("counters reads=%d writes=%d, want 1/1", m.Reads, m.Writes)
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	f := func(addrRaw uint16, vals []uint32) bool {
		m := New()
		base := uint32(addrRaw) * 4
		for i, v := range vals {
			m.WriteWord(base+uint32(4*i), v)
		}
		for i, v := range vals {
			// Later writes to the same address win; recompute expectation.
			want := v
			for j := i + 1; j < len(vals); j++ {
				if base+uint32(4*j) == base+uint32(4*i) {
					want = vals[j]
				}
			}
			if m.ReadWord(base+uint32(4*i)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
