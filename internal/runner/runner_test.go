package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecuteOrdered proves the core contract: outcomes land at their task's
// submission index whatever the worker count, even when completion order is
// scrambled.
func TestExecuteOrdered(t *testing.T) {
	const n = 64
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Label: fmt.Sprintf("task-%d", i),
			Run: func() (int, error) {
				// Earlier tasks sleep longer, so completion order is roughly
				// the reverse of submission order.
				time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	for _, jobs := range []int{1, 2, 8, n + 5} {
		out := Execute(tasks, Options{Jobs: jobs})
		if len(out) != n {
			t.Fatalf("jobs=%d: got %d outcomes, want %d", jobs, len(out), n)
		}
		for i, o := range out {
			if o.Index != i || o.Value != i*i || o.Err != nil {
				t.Fatalf("jobs=%d: outcome %d = {index %d, value %d, err %v}, want {%d, %d, nil}",
					jobs, i, o.Index, o.Value, o.Err, i, i*i)
			}
			if o.Label != fmt.Sprintf("task-%d", i) {
				t.Fatalf("jobs=%d: outcome %d label %q", jobs, i, o.Label)
			}
		}
	}
}

// TestExecuteConcurrency checks the pool actually runs tasks concurrently and
// never exceeds the configured worker count.
func TestExecuteConcurrency(t *testing.T) {
	const jobs = 4
	var active, peak atomic.Int32
	tasks := make([]Task[struct{}], 32)
	for i := range tasks {
		tasks[i] = Task[struct{}]{
			Label: "t",
			Run: func() (struct{}, error) {
				cur := active.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				active.Add(-1)
				return struct{}{}, nil
			},
		}
	}
	Execute(tasks, Options{Jobs: jobs})
	if p := peak.Load(); p > jobs {
		t.Fatalf("peak concurrency %d exceeds jobs=%d", p, jobs)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrency %d: pool did not run tasks in parallel", p)
	}
}

// TestExecutePanicCapture: a panicking task fails only itself, with the
// panic value and stack preserved.
func TestExecutePanicCapture(t *testing.T) {
	tasks := []Task[int]{
		{Label: "ok-0", Run: func() (int, error) { return 1, nil }},
		{Label: "boom", Run: func() (int, error) { panic("kaboom") }},
		{Label: "ok-2", Run: func() (int, error) { return 3, nil }},
	}
	out := Execute(tasks, Options{Jobs: 2})
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("sibling tasks failed: %v / %v", out[0].Err, out[2].Err)
	}
	var pe *PanicError
	if !errors.As(out[1].Err, &pe) {
		t.Fatalf("outcome 1 error = %v, want *PanicError", out[1].Err)
	}
	if pe.Value != "kaboom" || pe.Label != "boom" || pe.Stack == "" {
		t.Fatalf("panic error = {%q %v stack:%d bytes}", pe.Label, pe.Value, len(pe.Stack))
	}
	if err := FirstError(out); err != out[1].Err {
		t.Fatalf("FirstError = %v, want the panic", err)
	}
}

// TestExecuteTimeout: a runaway task is abandoned with ErrTimeout while the
// rest of the batch completes normally.
func TestExecuteTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	tasks := []Task[string]{
		{Label: "fast", Run: func() (string, error) { return "done", nil }},
		{Label: "stuck", Run: func() (string, error) { <-release; return "late", nil }},
	}
	out := Execute(tasks, Options{Jobs: 2, Timeout: 20 * time.Millisecond})
	if out[0].Err != nil || out[0].Value != "done" {
		t.Fatalf("fast task: %q, %v", out[0].Value, out[0].Err)
	}
	if !errors.Is(out[1].Err, ErrTimeout) {
		t.Fatalf("stuck task error = %v, want ErrTimeout", out[1].Err)
	}
}

// TestExecuteErrorIsolation: an ordinary task error is reported at its index
// and FirstError returns the lowest-index failure regardless of worker count.
func TestExecuteErrorIsolation(t *testing.T) {
	errA := errors.New("a failed")
	errB := errors.New("b failed")
	tasks := []Task[int]{
		{Label: "ok", Run: func() (int, error) { return 0, nil }},
		{Label: "a", Run: func() (int, error) { time.Sleep(5 * time.Millisecond); return 0, errA }},
		{Label: "b", Run: func() (int, error) { return 0, errB }},
	}
	for _, jobs := range []int{1, 3} {
		out := Execute(tasks, Options{Jobs: jobs})
		if !errors.Is(FirstError(out), errA) {
			t.Fatalf("jobs=%d: FirstError = %v, want errA", jobs, FirstError(out))
		}
		if !errors.Is(out[2].Err, errB) {
			t.Fatalf("jobs=%d: outcome 2 err = %v", jobs, out[2].Err)
		}
	}
}

func TestExecuteEmpty(t *testing.T) {
	if out := Execute[int](nil, Options{}); len(out) != 0 {
		t.Fatalf("empty batch produced %d outcomes", len(out))
	}
}

// TestDeriveSeed: pure, position-dependent, never zero.
func TestDeriveSeed(t *testing.T) {
	seen := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if s == 0 {
			t.Fatalf("DeriveSeed(42, %d) = 0", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision: indices %d and %d", j, i)
		}
		seen[s] = i
		if s != DeriveSeed(42, i) {
			t.Fatalf("DeriveSeed(42, %d) not deterministic", i)
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different bases produced identical seeds")
	}
}

func TestCombineDigestsOrderSensitive(t *testing.T) {
	a := CombineDigests([]string{"x", "y"})
	b := CombineDigests([]string{"y", "x"})
	if a == b {
		t.Fatal("CombineDigests ignores order")
	}
	if a != CombineDigests([]string{"x", "y"}) {
		t.Fatal("CombineDigests not deterministic")
	}
	// The separator must prevent boundary ambiguity.
	if CombineDigests([]string{"xy"}) == CombineDigests([]string{"x", "y"}) {
		t.Fatal("CombineDigests is ambiguous across element boundaries")
	}
}
