// Package runner is the deterministic parallel batch executor behind every
// multi-run driver (cmd/experiments, protocheck -audit, cmd/sensitivity, the
// audited fuzz sweep): it fans a slice of independent tasks across a bounded
// worker pool and returns their outcomes in submission order, so aggregated
// output is byte-identical regardless of worker count.
//
// Determinism contract (DESIGN.md invariant 7 extended to batches):
//
//   - tasks never share mutable state — each builds its own platform, and the
//     simulation kernel keeps no package-level mutable state;
//   - outcomes are aggregated by task index, not completion order;
//   - stochastic tasks derive their seed with DeriveSeed(base, index), a pure
//     function of the batch seed and the task's position.
//
// A panicking task is captured per worker (it fails only its own outcome,
// wrapped in *PanicError with the stack), and an optional per-task wall-clock
// timeout abandons runaway tasks without stalling the pool.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one independent unit of a batch.  Run must not share mutable state
// with any other task in the batch.
type Task[T any] struct {
	// Label names the task in errors and reports.
	Label string
	// Run produces the task's value.
	Run func() (T, error)
}

// Options tunes Execute; the zero value runs on GOMAXPROCS workers with no
// timeout.
type Options struct {
	// Jobs is the worker count; <= 0 selects runtime.GOMAXPROCS(0).
	Jobs int
	// Timeout, when positive, bounds each task's wall clock.  A task that
	// exceeds it fails with an error wrapping ErrTimeout; its goroutine is
	// abandoned (the result discarded when it eventually finishes), so tasks
	// should also bound themselves internally (e.g. a simulation cycle
	// budget) — the timeout is a safety net, not the primary bound.
	Timeout time.Duration
}

// Outcome is the result of one task, reported at the task's submission index.
type Outcome[T any] struct {
	// Index is the task's position in the batch.
	Index int
	// Label echoes the task's label.
	Label string
	// Value is the task's result (zero on error).
	Value T
	// Err is the task's error, a *PanicError if it panicked, or an error
	// wrapping ErrTimeout if it exceeded Options.Timeout.
	Err error
	// Elapsed is the task's wall-clock duration.
	Elapsed time.Duration
}

// ErrTimeout marks a task abandoned after exceeding Options.Timeout.
var ErrTimeout = errors.New("runner: task timed out")

// PanicError is a panic captured inside a task.
type PanicError struct {
	// Label is the panicking task's label.
	Label string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %q panicked: %v", e.Label, e.Value)
}

// Execute runs the batch and returns one outcome per task, in task order.
// Workers pull task indices from a bounded queue; a failing (or panicking, or
// timed-out) task never affects its siblings.
func Execute[T any](tasks []Task[T], opts Options) []Outcome[T] {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(tasks) {
		jobs = len(tasks)
	}
	out := make([]Outcome[T], len(tasks))
	if len(tasks) == 0 {
		return out
	}

	// The queue is bounded to the worker count: the feeder blocks instead of
	// buffering the whole batch, keeping memory flat for very large sweeps.
	queue := make(chan int, jobs)
	go func() {
		for i := range tasks {
			queue <- i
		}
		close(queue)
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				out[i] = runOne(i, tasks[i], opts.Timeout)
			}
		}()
	}
	wg.Wait()
	return out
}

// runOne executes a single task, capturing panics and enforcing the optional
// wall-clock bound.
func runOne[T any](index int, task Task[T], timeout time.Duration) Outcome[T] {
	start := time.Now()
	o := Outcome[T]{Index: index, Label: task.Label}
	if timeout <= 0 {
		o.Value, o.Err = protect(task)
		o.Elapsed = time.Since(start)
		return o
	}

	type reply struct {
		value T
		err   error
	}
	done := make(chan reply, 1)
	go func() {
		v, err := protect(task)
		done <- reply{v, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		o.Value, o.Err = r.value, r.err
	case <-timer.C:
		o.Err = fmt.Errorf("runner: task %q: %w after %v", task.Label, ErrTimeout, timeout)
	}
	o.Elapsed = time.Since(start)
	return o
}

// protect invokes the task with panic capture.
func protect[T any](task Task[T]) (value T, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Label: task.Label, Value: r, Stack: string(buf)}
		}
	}()
	return task.Run()
}

// FirstError returns the lowest-index non-nil outcome error, or nil.  Because
// outcomes are index-ordered, the reported error is the same one a sequential
// run would have hit first, whatever the worker count.
func FirstError[T any](outcomes []Outcome[T]) error {
	for _, o := range outcomes {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// DeriveSeed derives the per-task seed for task index from a batch base seed:
// one SplitMix64 step over base ^ index.  It is a pure function, so a batch
// re-run with any worker count reproduces identical per-task seeds, and
// distinct indices get well-separated streams even for small bases.
func DeriveSeed(base uint64, index int) uint64 {
	z := base ^ (uint64(index+1) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		// Zero means "use the default seed" throughout the workload layer;
		// remap so derived seeds always select themselves.
		z = 0x9e3779b97f4a7c15
	}
	return z
}
