package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hetcc/internal/platform"
)

// ReportDigest returns the hex SHA-256 of the report's canonical JSON
// encoding.  Reports carry no wall-clock fields (platform.Report's contract),
// so a run re-executed under any worker count digests identically — the
// determinism regression tests compare exactly these strings.
func ReportDigest(rep platform.Report) (string, error) {
	raw, err := json.Marshal(rep)
	if err != nil {
		return "", fmt.Errorf("runner: digest: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// CombineDigests folds an ordered digest list into one batch digest.  The
// fold is order-sensitive on purpose: it certifies both every per-run digest
// and the aggregation order.
func CombineDigests(digests []string) string {
	h := sha256.New()
	for _, d := range digests {
		h.Write([]byte(d))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
