package vcd

import (
	"strings"
	"testing"
)

func TestHeaderStructure(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, "20ns")
	busy := w.Declare("bus", "busy", 1)
	addr := w.Declare("bus", "addr", 32)
	state := w.Declare("cpu0", "state", 2)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	w.Set(busy, 1, 1)
	w.Set(addr, 1, 0x10)
	w.Set(state, 2, 3)
	if err := w.Close(5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 20ns $end",
		"$scope module bus $end",
		"$var wire 1 ! busy $end",
		"$var wire 32 \" addr $end",
		"$scope module cpu0 $end",
		"$enddefinitions $end",
		"$dumpvars",
		"#1",
		"1!",
		"b10000 \"",
		"#2",
		"b11 #",
		"#5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestChangeOnlySemantics(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, "")
	s := w.Declare("m", "sig", 1)
	w.Begin()
	w.Set(s, 1, 1)
	w.Set(s, 2, 1) // no change: must not emit
	w.Set(s, 3, 0)
	w.Close(3)
	out := sb.String()
	if strings.Contains(out, "#2") {
		t.Fatalf("redundant timestamp emitted:\n%s", out)
	}
	if strings.Count(out, "1!") != 1 {
		t.Fatalf("value 1 emitted more than once:\n%s", out)
	}
}

func TestTimeMonotonicity(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, "")
	s := w.Declare("m", "sig", 1)
	w.Begin()
	if err := w.Set(s, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(s, 4, 0); err == nil {
		t.Fatal("time reversal accepted")
	}
}

func TestSetBeforeBegin(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, "")
	s := w.Declare("m", "sig", 1)
	if err := w.Set(s, 1, 1); err == nil {
		t.Fatal("Set before Begin accepted")
	}
}

func TestDeclareAfterBeginPanics(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, "")
	w.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.Declare("m", "late", 1)
}

func TestIDCodesUnique(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, "")
	seen := map[string]bool{}
	for i := 0; i < 300; i++ { // forces multi-character codes
		s := w.Declare("m", "sig", 1)
		if seen[s.id] {
			t.Fatalf("duplicate id %q at %d", s.id, i)
		}
		seen[s.id] = true
	}
}

func TestBeginTwiceErrors(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb, "")
	w.Begin()
	if err := w.Begin(); err == nil {
		t.Fatal("double Begin accepted")
	}
}
