// Package vcd writes IEEE 1364 Value Change Dump files, the waveform
// interchange format every EDA wave viewer (GTKWave, Verdi, SimVision)
// reads.  The simulator streams bus and core activity into a VCD so a run
// can be inspected exactly like the RTL co-simulations the paper's authors
// debugged under Seamless CVE.
//
// Usage:
//
//	w := vcd.NewWriter(f, "10ns")
//	busy := w.Declare("bus", "busy", 1)
//	addr := w.Declare("bus", "addr", 32)
//	w.Begin()
//	w.Set(busy, cycle, 1)
//	w.Set(addr, cycle, 0x1000_0000)
//	w.Close(lastCycle)
//
// Values are emitted only on change, with timestamps strictly increasing.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Signal is a declared VCD variable.
type Signal struct {
	id     string
	module string
	name   string
	width  int
	last   uint64
	valid  bool // a value has been emitted
}

// Writer streams a VCD file.
type Writer struct {
	out       *bufio.Writer
	timescale string
	signals   []*Signal
	began     bool
	time      uint64
	timeOpen  bool // a #time line has been emitted for w.time
	err       error
}

// NewWriter wraps w.  timescale is a VCD timescale string such as "10ns"
// (one 50 MHz bus cycle at the paper's clocking is 20ns; the default
// engine cycle is 10ns).
func NewWriter(w io.Writer, timescale string) *Writer {
	if timescale == "" {
		timescale = "10ns"
	}
	return &Writer{out: bufio.NewWriter(w), timescale: timescale}
}

// identifier codes: printable ASCII 33..126, multi-char when exhausted.
func idCode(n int) string {
	const lo, hi = 33, 127
	s := ""
	for {
		s = string(rune(lo+n%(hi-lo))) + s
		n = n/(hi-lo) - 1
		if n < 0 {
			return s
		}
	}
}

// Declare registers a variable of the given bit width under a module
// scope.  All declarations must precede Begin.
func (w *Writer) Declare(module, name string, width int) *Signal {
	if w.began {
		panic("vcd: Declare after Begin")
	}
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("vcd: width %d out of range", width))
	}
	s := &Signal{id: idCode(len(w.signals)), module: module, name: name, width: width}
	w.signals = append(w.signals, s)
	return s
}

// Begin writes the header and the initial (all-x) dump.
func (w *Writer) Begin() error {
	if w.began {
		return fmt.Errorf("vcd: Begin called twice")
	}
	w.began = true
	w.printf("$version hetcc cycle-level simulator $end\n")
	w.printf("$timescale %s $end\n", w.timescale)

	// Group signals by module, in first-declaration order.
	var modules []string
	byModule := map[string][]*Signal{}
	for _, s := range w.signals {
		if _, ok := byModule[s.module]; !ok {
			modules = append(modules, s.module)
		}
		byModule[s.module] = append(byModule[s.module], s)
	}
	sort.SliceStable(modules, func(i, j int) bool { return false }) // keep declaration order
	for _, m := range modules {
		w.printf("$scope module %s $end\n", m)
		for _, s := range byModule[m] {
			w.printf("$var wire %d %s %s $end\n", s.width, s.id, s.name)
		}
		w.printf("$upscope $end\n")
	}
	w.printf("$enddefinitions $end\n")
	w.printf("$dumpvars\n")
	for _, s := range w.signals {
		w.emit(s, 0, true) // x-initialised as 0 at time 0
	}
	w.printf("$end\n")
	w.timeOpen = true
	return w.err
}

// Set records signal s holding value v at time t.  Emits a change record
// only when the value differs from the last one.  Times must not decrease.
func (w *Writer) Set(s *Signal, t uint64, v uint64) error {
	if !w.began {
		return fmt.Errorf("vcd: Set before Begin")
	}
	if t < w.time {
		return fmt.Errorf("vcd: time went backwards (%d < %d)", t, w.time)
	}
	if s.valid && s.last == v {
		return w.err
	}
	if t > w.time || !w.timeOpen {
		w.printf("#%d\n", t)
		w.time = t
		w.timeOpen = true
	}
	w.emit(s, v, false)
	return w.err
}

func (w *Writer) emit(s *Signal, v uint64, initial bool) {
	if s.width == 1 {
		w.printf("%d%s\n", v&1, s.id)
	} else {
		w.printf("b%b %s\n", v, s.id)
	}
	s.last = v
	s.valid = true
	_ = initial
}

// Close stamps the final time and flushes.
func (w *Writer) Close(t uint64) error {
	if w.began && t > w.time {
		w.printf("#%d\n", t)
	}
	if err := w.out.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	if _, err := fmt.Fprintf(w.out, format, args...); err != nil {
		w.err = err
	}
}
