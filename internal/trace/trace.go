// Package trace provides a lightweight, allocation-conscious event trace for
// debugging simulations and for the case-study walkthrough output of
// cmd/protocheck.  Tracing is optional: a nil *Log is valid everywhere and
// records nothing.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Event is one timestamped trace record.
type Event struct {
	Cycle uint64
	Unit  string
	Msg   string
}

// String formats the event as "cycle unit: msg".
func (e Event) String() string {
	return fmt.Sprintf("%8d %-12s %s", e.Cycle, e.Unit, e.Msg)
}

// Log is a bounded in-memory event log.  When the bound is exceeded the
// oldest events are discarded (ring-buffer semantics), so long simulations
// keep the most recent — and most interesting — history.
//
// The bound is a true fixed-capacity ring: once full, each append overwrites
// the oldest slot in place (head index + wraparound), so steady-state
// appends are O(1) regardless of the bound.
type Log struct {
	events  []Event
	max     int
	head    int // index of the oldest retained event once the ring is full
	dropped uint64
}

// NewLog returns a log retaining at most max events (max <= 0 means an
// unbounded log).
func NewLog(max int) *Log {
	return &Log{max: max}
}

// Enabled reports whether the log records events (false for nil).
func (l *Log) Enabled() bool { return l != nil }

// Addf records a formatted event.  Safe to call on a nil log.
func (l *Log) Addf(cycle uint64, unit, format string, args ...any) {
	if l == nil {
		return
	}
	e := Event{Cycle: cycle, Unit: unit, Msg: fmt.Sprintf(format, args...)}
	if l.max <= 0 || len(l.events) < l.max {
		l.events = append(l.events, e)
		return
	}
	l.events[l.head] = e
	l.head++
	if l.head == l.max {
		l.head = 0
	}
	l.dropped++
}

// at returns the i-th retained event, oldest first.
func (l *Log) at(i int) Event {
	j := l.head + i
	if j >= len(l.events) {
		j -= len(l.events)
	}
	return l.events[j]
}

// Events returns a snapshot of the retained events in ring order (oldest
// first) together with the count of events the ring bound discarded before
// the snapshot's first entry.
func (l *Log) Events() (events []Event, dropped uint64) {
	if l == nil {
		return nil, 0
	}
	events = make([]Event, len(l.events))
	for i := range events {
		events[i] = l.at(i)
	}
	return events, l.dropped
}

// Dropped reports how many events were discarded by the ring bound.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// WriteTo dumps the retained events to w, one per line.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	var total int64
	for i := 0; i < len(l.events); i++ {
		n, err := io.WriteString(w, l.at(i).String()+"\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Grep returns the retained events whose message contains substr.
func (l *Log) Grep(substr string) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for i := 0; i < len(l.events); i++ {
		if e := l.at(i); strings.Contains(e.Msg, substr) {
			out = append(out, e)
		}
	}
	return out
}
