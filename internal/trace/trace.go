// Package trace provides a lightweight, allocation-conscious event trace for
// debugging simulations and for the case-study walkthrough output of
// cmd/protocheck.  Tracing is optional: a nil *Log is valid everywhere and
// records nothing.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Event is one timestamped trace record.
type Event struct {
	Cycle uint64
	Unit  string
	Msg   string
}

// String formats the event as "cycle unit: msg".
func (e Event) String() string {
	return fmt.Sprintf("%8d %-12s %s", e.Cycle, e.Unit, e.Msg)
}

// Log is a bounded in-memory event log.  When the bound is exceeded the
// oldest events are discarded (ring-buffer semantics), so long simulations
// keep the most recent — and most interesting — history.
type Log struct {
	events  []Event
	max     int
	dropped uint64
}

// NewLog returns a log retaining at most max events (max <= 0 means an
// unbounded log).
func NewLog(max int) *Log {
	return &Log{max: max}
}

// Enabled reports whether the log records events (false for nil).
func (l *Log) Enabled() bool { return l != nil }

// Addf records a formatted event.  Safe to call on a nil log.
func (l *Log) Addf(cycle uint64, unit, format string, args ...any) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{Cycle: cycle, Unit: unit, Msg: fmt.Sprintf(format, args...)})
	if l.max > 0 && len(l.events) > l.max {
		n := len(l.events) - l.max
		l.events = append(l.events[:0], l.events[n:]...)
		l.dropped += uint64(n)
	}
}

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Dropped reports how many events were discarded by the ring bound.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// WriteTo dumps the retained events to w, one per line.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	if l == nil {
		return 0, nil
	}
	var total int64
	for _, e := range l.events {
		n, err := io.WriteString(w, e.String()+"\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Grep returns the retained events whose message contains substr.
func (l *Log) Grep(substr string) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if strings.Contains(e.Msg, substr) {
			out = append(out, e)
		}
	}
	return out
}
