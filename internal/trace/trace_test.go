package trace

import (
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Addf(1, "unit", "message %d", 1)
	if l.Enabled() || l.Len() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log misbehaves")
	}
	if evs, dropped := l.Events(); evs != nil || dropped != 0 {
		t.Fatal("nil log returns events")
	}
	if l.Grep("x") != nil {
		t.Fatal("nil log greps")
	}
	if n, err := l.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatal("nil WriteTo")
	}
}

func TestAddAndEvents(t *testing.T) {
	l := NewLog(10)
	l.Addf(5, "bus", "grant %s", "m0")
	l.Addf(6, "bus", "done")
	evs, dropped := l.Events()
	if len(evs) != 2 || evs[0].Cycle != 5 || evs[0].Unit != "bus" || evs[0].Msg != "grant m0" {
		t.Fatalf("events %v", evs)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d, want 0", dropped)
	}
}

func TestRingBound(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Addf(uint64(i), "u", "e%d", i)
	}
	if l.Len() != 3 {
		t.Fatalf("len %d, want 3", l.Len())
	}
	if l.Dropped() != 7 {
		t.Fatalf("dropped %d, want 7", l.Dropped())
	}
	evs, dropped := l.Events()
	if evs[0].Msg != "e7" || evs[2].Msg != "e9" {
		t.Fatalf("kept %v, want the newest three", evs)
	}
	if dropped != 7 {
		t.Fatalf("snapshot dropped %d, want 7", dropped)
	}
}

func TestUnboundedLog(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 100; i++ {
		l.Addf(uint64(i), "u", "e")
	}
	if l.Len() != 100 || l.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
}

func TestGrep(t *testing.T) {
	l := NewLog(0)
	l.Addf(1, "bus", "ARTRY m0")
	l.Addf(2, "bus", "grant m1")
	l.Addf(3, "bus", "ARTRY m1")
	if got := l.Grep("ARTRY"); len(got) != 2 {
		t.Fatalf("grep found %d, want 2", len(got))
	}
}

func TestWriteTo(t *testing.T) {
	l := NewLog(0)
	l.Addf(42, "cache", "fill 0x100")
	var sb strings.Builder
	if _, err := l.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "cache") || !strings.Contains(out, "fill 0x100") {
		t.Fatalf("output %q", out)
	}
}

func TestRingMultipleWraps(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 103; i++ { // 103 % 4 != 0, so head ends mid-ring
		l.Addf(uint64(i), "u", "e%d", i)
	}
	evs, _ := l.Events()
	if len(evs) != 4 {
		t.Fatalf("len %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(99 + i); e.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first order broken)", i, e.Cycle, want)
		}
	}
	if l.Dropped() != 99 {
		t.Fatalf("dropped %d, want 99", l.Dropped())
	}
}

// BenchmarkLogAddf measures the steady-state (ring already full) append
// path.  With the head-index ring this is O(1) per append — no copying or
// re-slicing; the pre-refactor compaction made it O(n) in the bound.
func BenchmarkLogAddf(b *testing.B) {
	l := NewLog(4096)
	for i := 0; i < 4096; i++ { // fill the ring so every timed append wraps
		l.Addf(uint64(i), "bus", "warm")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Addf(uint64(i), "bus", "grant m%d", i&3)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 7, Unit: "bus", Msg: "x"}
	if s := e.String(); !strings.Contains(s, "7") || !strings.Contains(s, "bus") {
		t.Fatalf("event string %q", s)
	}
}
