package periph

import (
	"testing"

	"hetcc/internal/bus"
)

const window uint32 = 0x4000_0000

func newBridge(t *testing.T) (*Bridge, *Timer, *Console) {
	t.Helper()
	b := NewBridge(window, 0x1000, 4)
	tm := NewTimer()
	con := NewConsole()
	if err := b.Attach(0x000, tm); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(0x100, con); err != nil {
		t.Fatal(err)
	}
	return b, tm, con
}

func rd(b *Bridge, addr uint32) uint32 {
	_, res := b.Access(&bus.Transaction{Kind: bus.ReadWord, Addr: addr})
	return res.Val
}

func wr(b *Bridge, addr, val uint32) {
	b.Access(&bus.Transaction{Kind: bus.WriteWord, Addr: addr, Val: val})
}

func TestBridgeDecode(t *testing.T) {
	b, _, _ := newBridge(t)
	if !b.Contains(window) || !b.Contains(window+0xffc) || b.Contains(window+0x1000) || b.Contains(window-4) {
		t.Fatal("window decode wrong")
	}
	if len(b.Devices()) != 2 {
		t.Fatal("device list")
	}
}

func TestBridgePenalty(t *testing.T) {
	b, _, _ := newBridge(t)
	lat, _ := b.Access(&bus.Transaction{Kind: bus.ReadWord, Addr: window})
	if lat != 4 {
		t.Fatalf("latency %d, want 4", lat)
	}
	if NewBridge(0, 16, 0).penalty != 1 {
		t.Fatal("penalty floor")
	}
}

func TestAttachValidation(t *testing.T) {
	b := NewBridge(window, 0x20, 2)
	if err := b.Attach(2, NewTimer()); err == nil {
		t.Error("unaligned attach accepted")
	}
	if err := b.Attach(0x18, NewTimer()); err == nil {
		t.Error("overflowing attach accepted")
	}
	if err := b.Attach(0, NewTimer()); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(8, NewConsole()); err == nil {
		t.Error("overlapping attach accepted")
	}
}

func TestTimerCountsWhenEnabled(t *testing.T) {
	b, tm, _ := newBridge(t)
	for i := 0; i < 5; i++ {
		tm.Tick(uint64(i))
	}
	if got := rd(b, window+TimerCount); got != 0 {
		t.Fatalf("disabled timer counted to %d", got)
	}
	wr(b, window+TimerCtrl, 1)
	for i := 0; i < 7; i++ {
		tm.Tick(uint64(i))
	}
	if got := rd(b, window+TimerCount); got != 7 {
		t.Fatalf("count %d, want 7", got)
	}
	// Reset bit clears, enable persists only from bit 0.
	wr(b, window+TimerCtrl, 3)
	if got := rd(b, window+TimerCount); got != 0 {
		t.Fatalf("reset failed: %d", got)
	}
	wr(b, window+TimerCompare, 99)
	if got := rd(b, window+TimerCompare); got != 99 {
		t.Fatal("compare readback")
	}
}

func TestConsoleCollectsOutput(t *testing.T) {
	b, _, con := newBridge(t)
	for _, ch := range "ok\n" {
		wr(b, window+0x100+ConsoleData, uint32(ch))
	}
	if con.Output() != "ok\n" {
		t.Fatalf("output %q", con.Output())
	}
	if rd(b, window+0x100+ConsoleStatus) != 1 {
		t.Fatal("console not ready")
	}
	if con.Writes != 3 {
		t.Fatalf("writes %d", con.Writes)
	}
}

func TestUnmappedAccessIsBenign(t *testing.T) {
	b, _, _ := newBridge(t)
	if got := rd(b, window+0x800); got != 0 {
		t.Fatalf("unmapped read %d", got)
	}
	wr(b, window+0x800, 5) // must not panic
	// Line transaction: dropped, still charged.
	lat, _ := b.Access(&bus.Transaction{Kind: bus.ReadLine, Addr: window, Words: 8})
	if lat != 4 {
		t.Fatal("line transaction latency")
	}
}

func TestRMWOnPeripheral(t *testing.T) {
	b, _, _ := newBridge(t)
	wr(b, window+TimerCompare, 7)
	_, res := b.Access(&bus.Transaction{Kind: bus.RMWWord, Addr: window + TimerCompare, Val: 9})
	if res.Val != 7 {
		t.Fatalf("rmw old %d, want 7", res.Val)
	}
	if got := rd(b, window+TimerCompare); got != 9 {
		t.Fatalf("rmw new %d, want 9", got)
	}
}
