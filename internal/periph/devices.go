package periph

import "strings"

// Timer register offsets.
const (
	// TimerCount (RO) is the free-running peripheral-clock counter.
	TimerCount uint32 = 0x0
	// TimerCtrl (RW): bit 0 enables counting, bit 1 resets the counter.
	TimerCtrl uint32 = 0x4
	// TimerCompare (RW) is read back as written (match logic is left to
	// software in this model).
	TimerCompare uint32 = 0x8
)

// Timer is a free-running counter peripheral.  The platform ticks it on
// the peripheral clock.
type Timer struct {
	count   uint32
	ctrl    uint32
	compare uint32

	// Event-scheduler support (see SetEventClock): instead of being ticked
	// on every peripheral-clock edge, the timer counts its skipped edges in
	// bulk whenever the count could be observed.  edgesSeen is the number of
	// peripheral-clock edges already applied; div the engine-cycle divisor.
	clock     func() uint64
	div       uint64
	edgesSeen uint64
}

// NewTimer returns a disabled timer.
func NewTimer() *Timer { return &Timer{} }

// Name implements Device.
func (t *Timer) Name() string { return "timer" }

// Size implements Device.
func (t *Timer) Size() uint32 { return 12 }

// SetEventClock switches the timer to lazy edge accounting for the event
// scheduler: clock reads the current engine cycle and div is the timer's
// engine-cycle divisor.  Leave it unset under the tick scheduler.
func (t *Timer) SetEventClock(clock func() uint64, div uint64) {
	t.clock = clock
	t.div = div
}

// Tick advances the counter when enabled (platform clock callback).
func (t *Timer) Tick(now uint64) {
	if t.clock != nil {
		t.syncEdges(now)
		return
	}
	if t.ctrl&1 != 0 {
		t.count++
	}
}

// NextWake implements sim.Waker: the timer never needs a tick of its own —
// every skipped edge is reconstructed on demand.
func (t *Timer) NextWake(uint64) (uint64, bool) { return 0, false }

// CatchUp implements sim.CatchUpper: apply every peripheral-clock edge at
// engine cycles <= through.
func (t *Timer) CatchUp(through uint64) {
	if t.clock != nil {
		t.syncEdges(through)
	}
}

// syncEdges bulk-applies the peripheral-clock edges at engine cycles <= x
// that have not been counted yet.
func (t *Timer) syncEdges(x uint64) {
	if x < t.edgesSeen*t.div {
		return // no uncounted edge at or before x; skips the division
	}
	target := x/t.div + 1 // edges lie at 0, div, 2*div, ...
	if target <= t.edgesSeen {
		return
	}
	if t.ctrl&1 != 0 {
		t.count += uint32(target - t.edgesSeen)
	}
	t.edgesSeen = target
}

// syncExternal brings the counter current for a register access: the bus
// delivers the access before the timer's own edge on the same engine cycle
// (the timer registers after the bus), so only edges on earlier cycles are
// applied.
func (t *Timer) syncExternal() {
	if t.clock == nil {
		return
	}
	if x := t.clock(); x > 0 {
		t.syncEdges(x - 1)
	}
}

// ReadReg implements Device.
func (t *Timer) ReadReg(off uint32) uint32 {
	t.syncExternal()
	switch off {
	case TimerCount:
		return t.count
	case TimerCtrl:
		return t.ctrl
	case TimerCompare:
		return t.compare
	default:
		return 0
	}
}

// WriteReg implements Device.
func (t *Timer) WriteReg(off uint32, v uint32) {
	t.syncExternal() // the skipped edges counted under the old ctrl value
	switch off {
	case TimerCtrl:
		if v&2 != 0 {
			t.count = 0
		}
		t.ctrl = v & 1
	case TimerCompare:
		t.compare = v
	}
}

// Console register offsets.
const (
	// ConsoleData (WO): writing emits the low byte.
	ConsoleData uint32 = 0x0
	// ConsoleStatus (RO): always ready (bit 0).
	ConsoleStatus uint32 = 0x4
)

// Console is a write-only character device that collects program output —
// the SoC's debug UART.
type Console struct {
	sb     strings.Builder
	Writes uint64
}

// NewConsole returns an empty console.
func NewConsole() *Console { return &Console{} }

// Name implements Device.
func (c *Console) Name() string { return "console" }

// Size implements Device.
func (c *Console) Size() uint32 { return 8 }

// ReadReg implements Device.
func (c *Console) ReadReg(off uint32) uint32 {
	if off == ConsoleStatus {
		return 1 // always ready
	}
	return 0
}

// WriteReg implements Device.
func (c *Console) WriteReg(off uint32, v uint32) {
	if off == ConsoleData {
		c.sb.WriteByte(byte(v))
		c.Writes++
	}
}

// Output returns everything written so far.
func (c *Console) Output() string { return c.sb.String() }
