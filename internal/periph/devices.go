package periph

import "strings"

// Timer register offsets.
const (
	// TimerCount (RO) is the free-running peripheral-clock counter.
	TimerCount uint32 = 0x0
	// TimerCtrl (RW): bit 0 enables counting, bit 1 resets the counter.
	TimerCtrl uint32 = 0x4
	// TimerCompare (RW) is read back as written (match logic is left to
	// software in this model).
	TimerCompare uint32 = 0x8
)

// Timer is a free-running counter peripheral.  The platform ticks it on
// the peripheral clock.
type Timer struct {
	count   uint32
	ctrl    uint32
	compare uint32
}

// NewTimer returns a disabled timer.
func NewTimer() *Timer { return &Timer{} }

// Name implements Device.
func (t *Timer) Name() string { return "timer" }

// Size implements Device.
func (t *Timer) Size() uint32 { return 12 }

// Tick advances the counter when enabled (platform clock callback).
func (t *Timer) Tick(uint64) {
	if t.ctrl&1 != 0 {
		t.count++
	}
}

// ReadReg implements Device.
func (t *Timer) ReadReg(off uint32) uint32 {
	switch off {
	case TimerCount:
		return t.count
	case TimerCtrl:
		return t.ctrl
	case TimerCompare:
		return t.compare
	default:
		return 0
	}
}

// WriteReg implements Device.
func (t *Timer) WriteReg(off uint32, v uint32) {
	switch off {
	case TimerCtrl:
		if v&2 != 0 {
			t.count = 0
		}
		t.ctrl = v & 1
	case TimerCompare:
		t.compare = v
	}
}

// Console register offsets.
const (
	// ConsoleData (WO): writing emits the low byte.
	ConsoleData uint32 = 0x0
	// ConsoleStatus (RO): always ready (bit 0).
	ConsoleStatus uint32 = 0x4
)

// Console is a write-only character device that collects program output —
// the SoC's debug UART.
type Console struct {
	sb     strings.Builder
	Writes uint64
}

// NewConsole returns an empty console.
func NewConsole() *Console { return &Console{} }

// Name implements Device.
func (c *Console) Name() string { return "console" }

// Size implements Device.
func (c *Console) Size() uint32 { return 8 }

// ReadReg implements Device.
func (c *Console) ReadReg(off uint32) uint32 {
	if off == ConsoleStatus {
		return 1 // always ready
	}
	return 0
}

// WriteReg implements Device.
func (c *Console) WriteReg(off uint32, v uint32) {
	if off == ConsoleData {
		c.sb.WriteByte(byte(v))
		c.Writes++
	}
}

// Output returns everything written so far.
func (c *Console) Output() string { return c.sb.String() }
