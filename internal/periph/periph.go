// Package periph models the low-speed peripheral side of the paper's SoC
// bus architectures.  Section 3 notes that CoreConnect, CoreFrame and AMBA
// share "a common characteristic ... they use two separate pipelined buses:
// one for high speed devices and one for low speed devices".  This package
// is the low-speed one (APB-like): a simple non-snooped register bus behind
// a bridge that sits on the high-speed ASB as an ordinary slave.
//
// Peripherals are word-addressed register banks.  The bridge adds the
// APB setup/access penalty to every transaction, so peripheral traffic is
// visibly slower than memory — as on real silicon.
package periph

import (
	"fmt"

	"hetcc/internal/bus"
)

// Device is a peripheral register bank on the low-speed bus.
type Device interface {
	// Name labels the device in reports.
	Name() string
	// Size is the aperture size in bytes (word multiple).
	Size() uint32
	// ReadReg returns the register at byte offset off.
	ReadReg(off uint32) uint32
	// WriteReg stores v to the register at byte offset off.
	WriteReg(off uint32, v uint32)
}

// Bridge connects the high-speed system bus to the peripheral bus: it
// decodes a window of the address space and forwards single-word accesses,
// charging the peripheral-bus penalty.
type Bridge struct {
	base    uint32
	size    uint32
	penalty int // extra bus cycles per peripheral access

	devs []entry

	// Accesses counts forwarded transactions.
	Accesses uint64
}

type entry struct {
	base uint32
	dev  Device
}

var _ bus.Device = (*Bridge)(nil)

// NewBridge creates a bridge decoding [base, base+size) with the given
// per-access penalty in high-speed bus cycles (the APB setup + enable
// phases seen through the clock-domain crossing).
func NewBridge(base, size uint32, penalty int) *Bridge {
	if penalty < 1 {
		penalty = 1
	}
	return &Bridge{base: base, size: size, penalty: penalty}
}

// Attach maps dev at the given offset within the bridge window.
func (b *Bridge) Attach(offset uint32, dev Device) error {
	if offset%4 != 0 {
		return fmt.Errorf("periph: unaligned device offset 0x%x", offset)
	}
	end := offset + dev.Size()
	if end > b.size {
		return fmt.Errorf("periph: device %s does not fit the bridge window", dev.Name())
	}
	for _, e := range b.devs {
		if offset < e.base+e.dev.Size() && e.base < end {
			return fmt.Errorf("periph: device %s overlaps %s", dev.Name(), e.dev.Name())
		}
	}
	b.devs = append(b.devs, entry{base: offset, dev: dev})
	return nil
}

// Contains implements bus.Device.
func (b *Bridge) Contains(addr uint32) bool {
	return addr >= b.base && addr < b.base+b.size
}

// Access implements bus.Device: forwards word transactions to the mapped
// peripheral.  Unmapped addresses read zero and drop writes (as a silent
// bus would), still paying the penalty.
func (b *Bridge) Access(t *bus.Transaction) (int, bus.Result) {
	b.Accesses++
	off := t.Addr - b.base
	var dev Device
	var devOff uint32
	for _, e := range b.devs {
		if off >= e.base && off < e.base+e.dev.Size() {
			dev = e.dev
			devOff = off - e.base
			break
		}
	}
	res := bus.Result{}
	switch t.Kind {
	case bus.ReadWord:
		if dev != nil {
			res.Val = dev.ReadReg(devOff)
		}
	case bus.WriteWord:
		if dev != nil {
			dev.WriteReg(devOff, t.Val)
		}
	case bus.RMWWord:
		if dev != nil {
			res.Val = dev.ReadReg(devOff)
			dev.WriteReg(devOff, t.Val)
		}
	default:
		// Line transactions have no business on the register bus; real
		// bridges error them.  Model as a dropped access.
	}
	return b.penalty, res
}

// Devices lists the attached peripherals (reports, tests).
func (b *Bridge) Devices() []Device {
	out := make([]Device, len(b.devs))
	for i, e := range b.devs {
		out[i] = e.dev
	}
	return out
}
