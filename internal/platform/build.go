package platform

import (
	"fmt"

	"hetcc/internal/audit"
	"hetcc/internal/bus"
	"hetcc/internal/cache"
	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/cpu"
	"hetcc/internal/dma"
	"hetcc/internal/event"
	"hetcc/internal/isa"
	"hetcc/internal/lock"
	"hetcc/internal/memory"
	"hetcc/internal/metrics"
	"hetcc/internal/periph"
	"hetcc/internal/profile"
	"hetcc/internal/sharing"
	"hetcc/internal/sim"
	"hetcc/internal/snooplogic"
	"hetcc/internal/span"
	"hetcc/internal/trace"
	"hetcc/internal/wrapper"
)

// unwiredShared models the un-integrated heterogeneous bus of the paper's
// Tables 2 and 3: snooping works (transactions are visible) but the
// incompatible shared-signal conventions mean no master ever samples an
// asserted shared signal, and interventions are impossible.
type unwiredShared struct{}

func (unwiredShared) ConvertSnoop(op coherence.BusOp) coherence.BusOp { return op }
func (unwiredShared) OverrideShared(bool) bool                        { return false }
func (unwiredShared) AllowSupply() bool                               { return false }

// Platform is a fully wired system ready to load programs and run.
type Platform struct {
	Config      Config
	Engine      *sim.Engine
	Bus         *bus.Bus
	Memory      *memory.Memory
	CPUs        []*cpu.CPU
	Controllers []*cache.Controller
	Wrappers    []*wrapper.Wrapper       // nil entries where no wrapper is installed
	SnoopLogics []*snooplogic.SnoopLogic // nil entries for coherent processors
	Integration core.Integration
	Locks       *lock.Manager
	LockReg     *lock.Register // non-nil when the hardware lock register is in use
	Periph      *periph.Bridge
	Timer       *periph.Timer
	Console     *periph.Console
	DMA         *dma.Engine // non-nil when Config.DMA is set
	Log         *trace.Log
	// Metrics is the run's metrics registry (nil unless Config.Metrics).
	Metrics *metrics.Registry
	// Manifest, when set, is stamped into reports as the provenance block
	// (schema v5).  Producers that need machine-independent output (the
	// batch runner, golden tests) either leave it nil or stamp only
	// deterministic fields; cmd/hetccsim records the full toolchain.
	Manifest *Manifest

	sampler    *metrics.Sampler
	tenures    []bus.Tenure
	checker    *checker
	vcd        *vcdProbe
	halted     int
	events     *event.Sink
	auditor    *audit.Auditor
	eventJSONL *event.JSONLWriter
	profiler   *profile.Ledger
	spans      *span.Collector
	sharing    *sharing.Collector
}

// Spans returns the causal transaction-span collector (nil unless
// Config.Spans).  Valid after Run: the collector is finished and its stall
// links, edges and JSONL export are available.
func (p *Platform) Spans() *span.Collector { return p.spans }

// Sharing returns the sharing-pattern collector (nil unless Config.Sharing).
// Valid after Run: the collector is finished and its summary is on
// Result.Sharing.
func (p *Platform) Sharing() *sharing.Collector { return p.sharing }

// MasterName labels bus master id for exports: the processor model for CPU
// cores, "dma" for the DMA engine.
func (p *Platform) MasterName(id int) string {
	if id >= 0 && id < len(p.Config.Processors) {
		return p.Config.Processors[id].Model
	}
	if p.DMA != nil && id == len(p.Config.Processors) {
		return "dma"
	}
	return fmt.Sprintf("master %d", id)
}

// Build validates cfg and wires the system.
func Build(cfg Config) (*Platform, error) {
	if len(cfg.Processors) == 0 {
		return nil, fmt.Errorf("platform: no processors")
	}
	if cfg.BusClockDiv == 0 {
		cfg.BusClockDiv = 2
	}
	switch cfg.Scheduler {
	case "", SchedulerEvent, SchedulerTick:
	default:
		return nil, fmt.Errorf("platform: unknown scheduler %q (want %q or %q)", cfg.Scheduler, SchedulerTick, SchedulerEvent)
	}
	if cfg.Timing == (memory.Timing{}) {
		cfg.Timing = memory.DefaultTiming()
	}
	lineBytes := cfg.Processors[0].Cache.LineBytes
	for i, spec := range cfg.Processors {
		if err := spec.Cache.Validate(); err != nil {
			return nil, fmt.Errorf("platform: processor %d: %w", i, err)
		}
		if spec.Cache.LineBytes != lineBytes {
			return nil, fmt.Errorf("platform: heterogeneous line sizes (%d vs %d) are not supported by the shared-bus snoop model", spec.Cache.LineBytes, lineBytes)
		}
	}

	var log *trace.Log
	if cfg.TraceCap > 0 {
		log = trace.NewLog(cfg.TraceCap)
	}

	protocols := make([]coherence.Kind, len(cfg.Processors))
	for i, s := range cfg.Processors {
		protocols[i] = s.Protocol
	}
	integ, err := core.Reduce(protocols)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}

	engine := sim.NewEngine()
	mem := memory.New()
	b := bus.New(bus.Config{Timing: cfg.Timing, DeadlockThreshold: cfg.DeadlockThreshold, Pipelined: cfg.PipelinedBus}, mem, log)

	p := &Platform{
		Config:      cfg,
		Engine:      engine,
		Bus:         b,
		Memory:      mem,
		Integration: integ,
		Log:         log,
	}

	if cfg.Metrics {
		p.Metrics = metrics.NewRegistry()
	}
	b.SetMetrics(p.Metrics)
	// The event stream exists when the auditor or the JSONL export wants
	// it; otherwise the sink stays nil and every producer emission is one
	// nil check (same contract as the metrics instruments).
	if cfg.Audit || cfg.EventLog != nil || cfg.Profile || cfg.Spans || cfg.Sharing {
		p.events = event.NewSink(engine.Now)
	}
	b.SetEvents(p.events)
	if cfg.Profile {
		p.profiler = profile.NewLedger(len(cfg.Processors))
		p.events.Subscribe(p.profiler.HandleEvent)
	}
	if cfg.Spans {
		p.spans = span.NewCollector(lineBytes)
		p.events.Subscribe(p.spans.HandleEvent)
	}
	if cfg.Sharing {
		masters := len(cfg.Processors)
		if cfg.DMA {
			masters++ // the DMA engine is a bus master too
		}
		window := cfg.MetricsWindow
		if window == 0 {
			window = DefaultMetricsWindow
		}
		p.sharing = sharing.NewCollector(sharing.Config{
			Masters:   masters,
			LineBytes: lineBytes,
			Window:    window,
		})
		p.events.Subscribe(p.sharing.HandleEvent)
	}
	if cfg.EventLog != nil {
		p.eventJSONL = event.NewJSONLWriter(cfg.EventLog, func(k uint8) string { return bus.Kind(k).String() })
		p.events.Subscribe(p.eventJSONL.Handle)
	}
	if cfg.Audit {
		p.auditor = audit.New(audit.Config{
			Cores:   len(cfg.Processors),
			Allowed: auditAllowedStates(cfg, integ),
			Shared:  InShared,
		})
		p.events.Subscribe(p.auditor.Handle)
	}
	if p.Metrics != nil {
		b.OnTenure(func(t bus.Tenure) {
			if len(p.tenures) < maxTenures {
				p.tenures = append(p.tenures, t)
			}
		})
	}

	// Lock subsystem: each lock id gets its own 256-byte block of the
	// uncached lock area (or a slot of the cached demo region).
	count := cfg.Lock.Count
	if count <= 0 {
		count = 1
	}
	lockCfg := lock.Config{
		Tasks:     len(cfg.Processors),
		Alternate: cfg.Lock.Alternate,
		SpinDelay: cfg.Lock.SpinDelay,
	}
	if cfg.Lock.Kind == LockHardwareRegister && count > 1 {
		return nil, fmt.Errorf("platform: the hardware lock register supports only one lock (the paper's 1-bit register), got %d", count)
	}
	for id := 0; id < count; id++ {
		base := LockBase + uint32(id)*0x100
		layout := lock.Layout{TurnWord: base + 4}
		switch cfg.Lock.Kind {
		case LockUncachedTAS:
			lockCfg.Kind = lock.UncachedTAS
			layout.LockWord = base
		case LockHardwareRegister:
			lockCfg.Kind = lock.HardwareRegister
			layout.LockWord = LockRegisterAddr
			p.LockReg = lock.NewRegister(LockRegisterAddr)
			b.AddDevice(p.LockReg)
		case LockBakery:
			lockCfg.Kind = lock.Bakery
			for i := range cfg.Processors {
				layout.Choosing = append(layout.Choosing, base+0x40+uint32(4*i))
				layout.Number = append(layout.Number, base+0x80+uint32(4*i))
			}
		case LockCachedTAS:
			lockCfg.Kind = lock.CachedTAS
			layout.LockWord = CachedLockAddr + uint32(id)*0x40
		case LockPeterson:
			lockCfg.Kind = lock.Peterson
			layout.Choosing = []uint32{base + 0x40, base + 0x44}
			layout.Number = []uint32{base + 0x48}
		default:
			return nil, fmt.Errorf("platform: unknown lock kind %v", cfg.Lock.Kind)
		}
		lockCfg.Layouts = append(lockCfg.Layouts, layout)
	}
	p.Locks, err = lock.NewManager(lockCfg)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}

	// Region attributes: private regions are always cacheable; the shared
	// region only when the strategy caches shared data; lock variables and
	// the device aperture are never cacheable.
	sharedCacheable := cfg.Solution != CacheDisabled
	attr := func(addr uint32) cpu.Attr {
		switch {
		case InShared(addr):
			return cpu.Attr{Cacheable: sharedCacheable}
		case InPrivate(addr):
			return cpu.Attr{Cacheable: true}
		default:
			return cpu.Attr{Cacheable: false}
		}
	}

	// Hardware snooping (cache snoop ports + snoop logic) exists only in
	// the proposed solution; the software and cache-disabled baselines run
	// without any coherence hardware, as in the paper's evaluation.
	hwCoherence := cfg.Solution == Proposed

	if cfg.Verify {
		p.checker = newChecker()
		if cfg.RaceCheck {
			p.checker.lockDepth = func(core int) int { return p.CPUs[core].LocksHeld() }
		}
	}

	for i, spec := range cfg.Processors {
		proto := spec.Protocol
		if proto == coherence.None {
			// A coherence-less core still has a cache; it behaves as a
			// private MEI cache (allocate exclusive, dirty on write).
			proto = coherence.MEI
		}
		arr, err := cache.New(spec.Cache, coherence.New(proto))
		if err != nil {
			return nil, fmt.Errorf("platform: processor %d: %w", i, err)
		}
		var policy cache.Policy = cache.Passthrough{}
		var w *wrapper.Wrapper
		if hwCoherence && spec.Protocol != coherence.None {
			if cfg.DisableWrappers {
				// Tables 2/3 demo mode: processors observe each other's
				// transactions but their shared-signal conventions are not
				// wired together, so a master always samples deasserted
				// ("Processor 1 cannot assert the shared signal").
				policy = unwiredShared{}
			} else {
				w = wrapper.New(spec.Model, integ.Policies[i])
				policy = w
			}
		}
		snoops := hwCoherence && spec.Protocol != coherence.None
		ctl := cache.NewController(spec.Model, arr, b, policy, snoops, log)
		ctl.SetMetrics(p.Metrics)
		ctl.SetEvents(p.events)
		if p.profiler != nil {
			ctl.SetProfile(p.profiler)
		}
		if w != nil {
			w.SetMetrics(p.Metrics)
			w.SetEvents(p.events, i)
		}
		if hwCoherence && spec.WrapperLatency > 0 {
			b.SetMasterLatency(ctl.MasterID(), spec.WrapperLatency)
		}
		if spec.WriteThroughShared {
			if !coherence.New(proto).Has(coherence.Shared) {
				return nil, fmt.Errorf("platform: processor %d (%s): write-through lines need a protocol with an S state, got %v", i, spec.Model, proto)
			}
			ctl.SetWriteThrough(InShared)
		}

		var sl *snooplogic.SnoopLogic
		if hwCoherence && spec.Protocol == coherence.None {
			sl = snooplogic.New(spec.Model+"-snoop", b, ctl.MasterID(), spec.Cache.LineBytes, nil, log)
			// The hardware TAG CAM is sized to the shadowed cache, one
			// entry per line; stale entries beyond that are flushed
			// through the ISR.
			sl.SetCapacity(spec.Cache.SizeBytes / spec.Cache.LineBytes)
			sl.SetMetrics(p.Metrics)
			sl.SetEvents(p.events)
		}

		c := cpu.New(cpu.Config{
			Name:              spec.Model,
			ClockDiv:          spec.ClockDiv,
			InterruptResponse: spec.InterruptResponse,
			ISREntry:          spec.ISREntry,
			ISRExit:           spec.ISRExit,
			CacheOpOverhead:   spec.CacheOpOverhead,
			AccessOverhead:    spec.AccessOverhead,
		}, i, ctl, attr, p.Locks, sl)
		if sl != nil {
			sl.SetFIQRaiser(c)
		}
		c.SetMetrics(p.Metrics)
		c.SetProfile(p.profiler)
		// SetHooks is single-slot, so the golden-model checker and the
		// auditor's data-value check are chained into one hook set.
		var hooks cpu.Hooks
		if p.checker != nil {
			hooks = chainHooks(hooks, cpu.Hooks{OnLoad: p.checker.onLoad, OnStore: p.checker.onStore})
		}
		if p.auditor != nil {
			hooks = chainHooks(hooks, cpu.Hooks{OnLoad: p.auditor.OnLoad, OnStore: p.auditor.OnStore})
		}
		if hooks.OnLoad != nil || hooks.OnStore != nil {
			c.SetHooks(hooks)
		}
		c.OnHalt(func(int) {
			p.halted++
			if p.halted == len(p.CPUs) {
				engine.Stop("all programs retired", nil)
			}
		})

		p.CPUs = append(p.CPUs, c)
		p.Controllers = append(p.Controllers, ctl)
		p.Wrappers = append(p.Wrappers, w)
		p.SnoopLogics = append(p.SnoopLogics, sl)
	}

	// Low-speed peripheral bus behind a bridge, with the standard timer
	// and debug console.
	p.Periph = periph.NewBridge(PeriphBase, PeriphSize, 4)
	p.Timer = periph.NewTimer()
	p.Console = periph.NewConsole()
	if err := p.Periph.Attach(TimerBase-PeriphBase, p.Timer); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if err := p.Periph.Attach(ConsoleBase-PeriphBase, p.Console); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	b.AddDevice(p.Periph)

	if cfg.DMA {
		p.DMA = dma.New(DMABase, lineBytes, b)
		b.AddDevice(p.DMA)
	}

	// All masters and snoopers are registered: freeze the per-master snoop
	// fan-out sets so broadcasts walk precomputed flat lists.
	b.FinalizeTopology()

	b.OnDeadlock(func() {
		engine.Stop("hardware deadlock", bus.ErrHardwareDeadlock)
	})

	// Tick order: cores in platform order, then the bus, then the optional
	// waveform probe.  The order is fixed so runs are reproducible; under
	// the event scheduler the same order breaks same-cycle wake ties.
	cpuHandles := make([]*sim.Handle, len(p.CPUs))
	for i, c := range p.CPUs {
		cpuHandles[i] = engine.Register(fmt.Sprintf("cpu%d:%s", i, c.Name()), cfg.Processors[i].ClockDiv, c)
	}
	busHandle := engine.Register("bus", cfg.BusClockDiv, b)
	// The peripheral clock runs at half the bus clock.
	timerDiv := cfg.BusClockDiv * 2
	engine.Register("timer", timerDiv, p.Timer)
	var dmaHandle *sim.Handle
	if p.DMA != nil {
		dmaHandle = engine.Register("dma", cfg.BusClockDiv, p.DMA)
	}
	if p.Metrics != nil {
		window := cfg.MetricsWindow
		if window == 0 {
			window = DefaultMetricsWindow
		}
		s := p.Metrics.NewSampler(window)
		// Bus utilization: busy bus cycles this window over the bus cycles
		// the window spans (window engine cycles / BusClockDiv).
		busCyclesPerWindow := float64(window / cfg.BusClockDiv)
		var prevBusy uint64
		s.Level("bus.utilization", func() float64 {
			busy := b.Stats().BusyCycles
			u := float64(busy-prevBusy) / busCyclesPerWindow
			prevBusy = busy
			return u
		})
		s.Delta("bus.artry.retries", func() float64 { return float64(b.Stats().Aborted) })
		s.Delta("bus.completed", func() float64 { return float64(b.Stats().Completed) })
		s.Delta("snoop.cam.hits", func() float64 {
			var hits uint64
			for _, sl := range p.SnoopLogics {
				if sl != nil {
					hits += sl.Stats().Hits
				}
			}
			return float64(hits)
		})
		p.sampler = s
		engine.Register("metrics", window, s)
	}
	if cfg.VCD != nil {
		probe, err := newVCDProbe(p, cfg.VCD)
		if err != nil {
			return nil, fmt.Errorf("platform: vcd: %w", err)
		}
		p.vcd = probe
		engine.Register("vcd", 1, probe)
	}

	// Scheduler selection (DESIGN.md §8).  The event scheduler is the
	// default; a VCD probe forces tick mode because the waveform samples
	// per-cycle state that bulk catch-up does not replay edge by edge.
	if cfg.Scheduler != SchedulerTick && cfg.VCD == nil {
		for i, c := range p.CPUs {
			c.BindScheduler(cpuHandles[i])
		}
		b.BindScheduler(busHandle, engine.Now)
		p.Timer.SetEventClock(engine.Now, timerDiv)
		if p.DMA != nil {
			p.DMA.BindScheduler(dmaHandle)
		}
		p.profiler.SetClock(engine.Now)
		engine.UseEventScheduler()
	}

	return p, nil
}

// auditAllowedStates computes each core's legal post-reduction state set for
// the invariant auditor.  Under the Proposed solution with wrappers, that is
// the paper's reduction table (core.AllowedStates, including the MSI-in-MEI
// exception where S behaves as E); everywhere else — the baselines, or the
// deliberately broken DisableWrappers mode — the cache runs its native
// protocol unrestricted, so the check reduces to "a state this protocol
// defines".
func auditAllowedStates(cfg Config, integ core.Integration) [][]coherence.State {
	out := make([][]coherence.State, len(cfg.Processors))
	for i, spec := range cfg.Processors {
		native := spec.Protocol
		effective := native
		if cfg.Solution == Proposed && !cfg.DisableWrappers {
			effective = integ.Effective
		}
		states := core.AllowedStates(native, effective)
		if spec.WriteThroughShared {
			// Write-through lines follow the SI protocol and may hold S
			// regardless of the wrapper's shared-signal policy ("only
			// write-through lines can have the S state").
			states = appendState(states, coherence.Shared)
		}
		out[i] = states
	}
	return out
}

func appendState(states []coherence.State, s coherence.State) []coherence.State {
	for _, have := range states {
		if have == s {
			return states
		}
	}
	return append(append([]coherence.State(nil), states...), s)
}

// chainHooks composes two CPU hook sets, calling a's callbacks before b's.
func chainHooks(a, b cpu.Hooks) cpu.Hooks {
	out := a
	if b.OnLoad != nil {
		if prev := out.OnLoad; prev != nil {
			bLoad := b.OnLoad
			out.OnLoad = func(core int, addr, val uint32, now uint64) {
				prev(core, addr, val, now)
				bLoad(core, addr, val, now)
			}
		} else {
			out.OnLoad = b.OnLoad
		}
	}
	if b.OnStore != nil {
		if prev := out.OnStore; prev != nil {
			bStore := b.OnStore
			out.OnStore = func(core int, addr, val uint32, now uint64) {
				prev(core, addr, val, now)
				bStore(core, addr, val, now)
			}
		} else {
			out.OnStore = b.OnStore
		}
	}
	return out
}

// EventLogStats reports how many JSONL records were written to
// Config.EventLog and the first write error, if any (0, nil when the export
// is off).
func (p *Platform) EventLogStats() (written uint64, err error) {
	if p.eventJSONL == nil {
		return 0, nil
	}
	return p.eventJSONL.Written(), p.eventJSONL.Err()
}

// CloseEventLog finishes the Config.EventLog export, flushing any buffered
// target and returning the first write or flush error (nil when the export
// is off).  The caller still owns — and closes — the underlying file.
func (p *Platform) CloseEventLog() error {
	if p.eventJSONL == nil {
		return nil
	}
	return p.eventJSONL.Close()
}

// LoadPrograms installs one program per core.
func (p *Platform) LoadPrograms(progs []isa.Program) error {
	if len(progs) != len(p.CPUs) {
		return fmt.Errorf("platform: %d programs for %d cores", len(progs), len(p.CPUs))
	}
	for i, prog := range progs {
		if err := p.CPUs[i].LoadProgram(prog); err != nil {
			return err
		}
	}
	return nil
}
