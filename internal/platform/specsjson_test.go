package platform_test

import (
	"strings"
	"testing"

	"hetcc/internal/coherence"
	. "hetcc/internal/platform"
	"hetcc/internal/workload"
)

const sampleJSON = `{
  "processors": [
    {"model": "PowerPC755", "protocol": "MEI", "clockDiv": 1, "cacheKB": 32, "ways": 8},
    {"model": "ARM920T", "protocol": "none", "clockDiv": 2, "interruptResponse": 4, "isrEntry": 4, "isrExit": 4}
  ]
}`

func TestSpecsFromJSON(t *testing.T) {
	specs, err := SpecsFromJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	if specs[0].Protocol != coherence.MEI || specs[0].Cache.SizeBytes != 32*1024 || specs[0].Cache.Ways != 8 {
		t.Fatalf("spec0 %+v", specs[0])
	}
	if specs[1].Protocol != coherence.None || specs[1].InterruptResponse != 4 {
		t.Fatalf("spec1 %+v", specs[1])
	}
	// Defaults applied.
	if specs[0].AccessOverhead != 3 || specs[0].CacheOpOverhead != 12 || specs[0].Cache.LineBytes != 32 {
		t.Fatalf("defaults not applied: %+v", specs[0])
	}
}

func TestSpecsFromJSONRunsEndToEnd(t *testing.T) {
	specs, err := SpecsFromJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(Config{
		Processors: specs,
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs, _ := workload.Programs(workload.WCS, workload.Params{Lines: 2, ExecTime: 1, Iterations: 2}, Proposed, 2)
	p.LoadPrograms(progs)
	res := p.Run(5_000_000)
	if res.Err != nil || !res.Coherent() {
		t.Fatalf("err=%v violations=%v", res.Err, res.Violations)
	}
}

func TestSpecsFromJSONValidation(t *testing.T) {
	cases := []string{
		`{}`,
		`{"processors": []}`,
		`{"processors": [{"protocol": "WAT"}]}`,
		`{"processors": [{"protocol": "MESI", "cacheKB": 3}]}`, // bad geometry (3KB/4way/32B -> 24 sets, not pow2)
		`{"processors": [{"protocol": "MESI", "bogusField": 1}]}`,
		`not json`,
	}
	for i, in := range cases {
		if _, err := SpecsFromJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	for name, want := range map[string]coherence.Kind{
		"MEI": coherence.MEI, "msi": coherence.MSI, " mesi ": coherence.MESI,
		"MOESI": coherence.MOESI, "dragon": coherence.Dragon, "none": coherence.None, "": coherence.None,
	} {
		got, err := ParseProtocol(name)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseProtocol("MERSI"); err == nil {
		t.Error("unknown protocol accepted")
	}
}
