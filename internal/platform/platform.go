// Package platform assembles complete heterogeneous SoC systems: processor
// cores with their caches and wrappers, the shared bus, memory, external
// snoop logic, and the lock subsystem — the paper's Figures 2 and 3 — and
// provides the three coherence strategies compared in the evaluation:
//
//   - CacheDisabled: shared data bypasses the caches entirely;
//   - Software: shared data is cached, and the program explicitly drains
//     every used line before leaving a critical section;
//   - Proposed: the paper's wrapper/snoop-logic hardware keeps caches
//     coherent with no software involvement.
package platform

import (
	"fmt"
	"io"

	"hetcc/internal/cache"
	"hetcc/internal/coherence"
	"hetcc/internal/memory"
)

// DefaultMetricsWindow is the time-series sampling window when
// Config.Metrics is on and Config.MetricsWindow is zero: 10,000 engine
// cycles = 100 us at the paper's 100 MHz engine clock.
const DefaultMetricsWindow uint64 = 10_000

// maxTenures bounds the bus-tenure span collection used by the Chrome-trace
// export, so metrics-enabled runs cannot grow memory without bound.
const maxTenures = 1 << 18

// Address map.  Regions are deliberately far apart so a line can never
// straddle two regions.
const (
	// PrivateBase + core*PrivateStride is a core's private cacheable area.
	PrivateBase   uint32 = 0x0001_0000
	PrivateStride uint32 = 0x0010_0000
	// SharedBase..SharedBase+SharedSize is the shared-data region; it is
	// cacheable except under the CacheDisabled strategy.
	SharedBase uint32 = 0x1000_0000
	SharedSize uint32 = 0x0100_0000
	// CachedLockAddr is a lock word *inside the cacheable shared region*,
	// used only by the hardware-deadlock demonstration.
	CachedLockAddr uint32 = SharedBase + 0x00F0_0000
	// LockBase is the always-uncached lock variable area (test-and-set
	// word, turn word, bakery arrays).
	LockBase uint32 = 0x2000_0000
	// LockRegisterAddr is the hardware lock register device.
	LockRegisterAddr uint32 = 0x3000_0000
	// PeriphBase..PeriphBase+PeriphSize is the low-speed peripheral bus
	// window behind the bridge (paper Section 3: the SoC bus architectures
	// "use two separate pipelined buses").
	PeriphBase uint32 = 0x4000_0000
	PeriphSize uint32 = 0x0000_1000
	// TimerBase and ConsoleBase are the standard peripherals.
	TimerBase   uint32 = PeriphBase + 0x000
	ConsoleBase uint32 = PeriphBase + 0x100
	// DMABase is the coherent DMA engine's register bank (high-speed bus).
	DMABase uint32 = 0x5000_0000
)

// InShared reports whether addr lies in the shared-data region.
func InShared(addr uint32) bool {
	return addr >= SharedBase && addr < SharedBase+SharedSize
}

// InPrivate reports whether addr lies in some core's private region.
func InPrivate(addr uint32) bool {
	return addr >= PrivateBase && addr < SharedBase
}

// Solution selects the coherence strategy (paper Section 4).
type Solution uint8

const (
	// CacheDisabled disables caching of shared data.
	CacheDisabled Solution = iota
	// Software caches shared data and drains used lines in software
	// before each critical-section exit.
	Software
	// Proposed is the paper's hardware scheme: wrappers for coherent
	// processors and TAG-CAM snoop logic + ISR for coherence-less ones.
	Proposed
)

// String names the solution.
func (s Solution) String() string {
	switch s {
	case CacheDisabled:
		return "cache-disabled"
	case Software:
		return "software"
	case Proposed:
		return "proposed"
	default:
		return fmt.Sprintf("Solution(%d)", uint8(s))
	}
}

// Solutions lists the three strategies in the paper's presentation order.
func Solutions() []Solution { return []Solution{CacheDisabled, Software, Proposed} }

// ProcessorSpec describes one processor of the platform.
type ProcessorSpec struct {
	// Model labels the core (reports only).
	Model string
	// Protocol is the native coherence protocol (None = no coherence
	// hardware, e.g. the ARM920T).
	Protocol coherence.Kind
	// ClockDiv is the engine divisor: 1 = 100 MHz, 2 = 50 MHz (Table 4).
	ClockDiv uint64
	// Cache is the data-cache geometry.
	Cache cache.Config
	// InterruptResponse/ISREntry/ISRExit model the software-snooping ISR
	// (meaningful only when Protocol == None).
	InterruptResponse int
	ISREntry          int
	ISRExit           int
	// CacheOpOverhead is the per-instruction overhead of explicit cache
	// maintenance (the software solution's drain loop).
	CacheOpOverhead int
	// AccessOverhead is the per-load/store instruction overhead (address
	// generation and loop control around each access).
	AccessOverhead int
	// WriteThroughShared marks the shared region write-through for this
	// processor (Intel486 style: WT lines follow the SI protocol and can
	// hold the S state; WB lines follow MEI).  Requires a protocol with an
	// S state.
	WriteThroughShared bool
	// WrapperLatency is the extra bus cycles the paper's wrapper adds to
	// each of this processor's transactions for native-bus-to-ASB
	// handshake conversion.  Charged only when the wrapper (or snoop
	// logic) is actually installed, i.e. under the Proposed strategy.
	WrapperLatency int
}

// PowerPC755 returns the paper's PowerPC755 model: MEI protocol, 100 MHz,
// 32 KB 8-way data cache with 32-byte lines.
func PowerPC755() ProcessorSpec {
	return ProcessorSpec{
		Model:           "PowerPC755",
		Protocol:        coherence.MEI,
		ClockDiv:        1,
		Cache:           cache.Config{SizeBytes: 32 * 1024, Ways: 8, LineBytes: 32},
		CacheOpOverhead: 12,
		AccessOverhead:  3,
	}
}

// Intel486 returns the paper's Write-back Enhanced Intel486 model: MESI
// protocol (the INV-pin behaviour is realised by the wrapper's read-to-
// write conversion), 50 MHz, 8 KB 4-way data cache.
func Intel486() ProcessorSpec {
	return ProcessorSpec{
		Model:           "Intel486",
		Protocol:        coherence.MESI,
		ClockDiv:        2,
		Cache:           cache.Config{SizeBytes: 8 * 1024, Ways: 4, LineBytes: 32},
		CacheOpOverhead: 12,
		AccessOverhead:  3,
	}
}

// ARM920T returns the paper's ARM920T model: no coherence hardware, 50 MHz,
// 16 KB 64-way data cache, software snooping through nFIQ (the fast
// interrupt's banked registers keep response and entry/exit overheads
// small).
func ARM920T() ProcessorSpec {
	return ProcessorSpec{
		Model:             "ARM920T",
		Protocol:          coherence.None,
		ClockDiv:          2,
		Cache:             cache.Config{SizeBytes: 16 * 1024, Ways: 64, LineBytes: 32},
		InterruptResponse: 4,
		ISREntry:          4,
		ISRExit:           4,
		CacheOpOverhead:   12,
		AccessOverhead:    3,
	}
}

// UltraSPARC returns a model of Sun's UltraSPARC as the paper describes it
// ("the MOESI protocol ... from SUN's UltraSPARC"): MOESI with
// cache-to-cache sharing, 100 MHz in this platform's clocking.
func UltraSPARC() ProcessorSpec {
	return ProcessorSpec{
		Model:           "UltraSPARC",
		Protocol:        coherence.MOESI,
		ClockDiv:        1,
		Cache:           cache.Config{SizeBytes: 16 * 1024, Ways: 2, LineBytes: 32},
		CacheOpOverhead: 12,
		AccessOverhead:  3,
	}
}

// AMD64 returns a model of the AMD64 core the paper cites ("a slightly
// different MOESI protocol ... from the most recent AMD64 architecture").
func AMD64() ProcessorSpec {
	return ProcessorSpec{
		Model:           "AMD64",
		Protocol:        coherence.MOESI,
		ClockDiv:        1,
		Cache:           cache.Config{SizeBytes: 64 * 1024, Ways: 2, LineBytes: 32},
		CacheOpOverhead: 12,
		AccessOverhead:  3,
	}
}

// Pentium returns the paper's "Intel's IA32 Pentium class" MESI model.
func Pentium() ProcessorSpec {
	return ProcessorSpec{
		Model:           "Pentium",
		Protocol:        coherence.MESI,
		ClockDiv:        1,
		Cache:           cache.Config{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 32},
		CacheOpOverhead: 12,
		AccessOverhead:  3,
	}
}

// Generic returns a generic coherent processor model (for protocol-matrix
// experiments beyond the paper's three case-study cores).
func Generic(name string, k coherence.Kind, clockDiv uint64) ProcessorSpec {
	return ProcessorSpec{
		Model:           name,
		Protocol:        k,
		ClockDiv:        clockDiv,
		Cache:           cache.Config{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 32},
		CacheOpOverhead: 12,
		AccessOverhead:  3,
	}
}

// Intel486WT returns the Intel486 model configured with write-through
// shared-data lines — the paper's SI-protocol variant ("only write-through
// lines can have the S state").
func Intel486WT() ProcessorSpec {
	s := Intel486()
	s.WriteThroughShared = true
	return s
}

// Preset platform pairs from the paper's Section 3.
//
// PPCARm is the PF2 case study (Figure 3) used for all performance figures;
// PPCI486 is the PF3 case study (Figure 2).
func PPCARm() []ProcessorSpec  { return []ProcessorSpec{PowerPC755(), ARM920T()} }
func PPCI486() []ProcessorSpec { return []ProcessorSpec{PowerPC755(), Intel486()} }
func ARMPair() []ProcessorSpec { return []ProcessorSpec{ARM920T(), armSecond()} }

func armSecond() ProcessorSpec {
	s := ARM920T()
	s.Model = "ARM920T-b"
	return s
}

// Config.Scheduler values.
const (
	// SchedulerEvent is the default engine scheduler: Run jumps from one
	// actionable cycle edge to the next, fast-forwarding idle components
	// (DESIGN.md §8).
	SchedulerEvent = "event"
	// SchedulerTick is the reference semantics: every component is ticked
	// at every one of its local clock edges.
	SchedulerTick = "tick"
)

// Config assembles a platform.
type Config struct {
	// Processors lists the cores in bus-priority order.
	Processors []ProcessorSpec
	// Solution selects the coherence strategy.
	Solution Solution
	// Timing is the memory controller timing; zero value selects the
	// paper's Table 4 default.
	Timing memory.Timing
	// Lock selects the lock mechanism and alternation mode.
	Lock LockChoice
	// BusClockDiv is the ASB engine divisor (default 2 = 50 MHz).
	BusClockDiv uint64
	// DisableWrappers keeps hardware snooping active but removes the
	// paper's wrappers — the broken configuration of Tables 2 and 3.
	DisableWrappers bool
	// Verify enables the golden-model staleness checker on shared-region
	// accesses.
	Verify bool
	// RaceCheck (with Verify) additionally flags shared-region accesses
	// made while holding no lock — a violation of the paper's critical-
	// section programming model.
	RaceCheck bool
	// TraceCap enables the event trace, bounded to this many events.
	TraceCap int
	// Metrics enables the unified metrics layer: latency histograms on the
	// bus/cache/snoop/lock hot paths, windowed time series, and bus tenure
	// spans for the Chrome-trace export.  Off by default; the disabled path
	// costs nothing measurable (nil-safe instruments).
	Metrics bool
	// MetricsWindow is the time-series sampling window in engine cycles
	// (default 10,000 = 100 us at the paper's 100 MHz clocking).
	MetricsWindow uint64
	// Audit enables the typed coherence event stream and the online
	// invariant auditor (package audit): SWMR, single-dirty-owner,
	// data-value, and wrapper-reduction invariants are checked as the run
	// progresses, with per-line state timelines accumulated.  Result.Audit
	// carries the summary.  Off by default; the disabled path costs one nil
	// check per would-be event.
	Audit bool
	// EventLog, when non-nil, receives every coherence event as one JSON
	// object per line (JSONL), enabling the event stream even when Audit is
	// off.  Writes are unbuffered: callers hand in a buffered writer and
	// flush it after the run.
	EventLog io.Writer
	// Profile enables the per-core stall-cause cycle ledger (package
	// profile): every stalled CPU cycle is attributed to one exclusive
	// cause (arbitration wait, retry backoff, drain, refill, invalidation
	// re-miss, lock spin), with Result.Profile carrying the summary and
	// Result.StallSpans the per-core timeline.  Enables the coherence event
	// stream.  Off by default; the disabled path costs one nil check per
	// stalled cycle.
	Profile bool
	// Spans enables the causal transaction-span collector (package span):
	// every bus transaction's lifecycle is recorded with causal retry→drain
	// edges and stall-span links, and Result.CriticalPath carries the run's
	// critical-path attribution (report schema v4, "critical_path").
	// Enables the coherence event stream; pair with Profile for stall-span
	// links and the ledger cross-check.  Off by default; the disabled path
	// costs nothing (the collector is simply never subscribed).
	Spans bool
	// Sharing enables the sharing-pattern collector (package sharing):
	// every touched line is classified (private / read-only / read-write /
	// migratory / producer-consumer, plus false-sharing candidates), master
	// pair communication is accumulated into a matrix, and bus traffic is
	// bucketed into a bounded windowed address heatmap, with Result.Sharing
	// carrying the summary (report schema v6, "sharing").  Enables the
	// coherence event stream.  Off by default; enabling it never changes
	// the simulated timeline — the collector only observes.
	Sharing bool
	// DeadlockThreshold overrides the bus livelock detector bound.
	DeadlockThreshold int
	// DMA adds the coherent DMA engine (register bank at DMABase).
	DMA bool
	// PipelinedBus enables AHB-style address/data overlap on the shared
	// bus (the paper's ASB is not pipelined; ablation only).
	PipelinedBus bool
	// VCD, when non-nil, receives an IEEE-1364 value change dump of the
	// bus and core activity (one timestep per engine cycle = 10 ns at the
	// paper's clocking), viewable in GTKWave.
	VCD io.Writer
	// Scheduler selects the engine scheduling strategy: "event" (default)
	// jumps from one actionable cycle edge to the next, "tick" evaluates
	// every component on every one of its clock edges.  Both produce
	// byte-identical reports and digests (DESIGN.md §8); "tick" exists as
	// the reference semantics and equivalence baseline.  A VCD probe forces
	// "tick" — the waveform needs per-cycle state.
	Scheduler string
}

// LockChoice configures the lock subsystem.
type LockChoice struct {
	// Kind is the lock mechanism (lock.UncachedTAS etc. via package lock).
	Kind LockKind
	// Alternate enforces the paper's strict alternation.
	Alternate bool
	// SpinDelay is the poll back-off in CPU cycles.
	SpinDelay int
	// Count is the number of distinct lock ids (default 1).  The hardware
	// lock register holds a single bit, so it supports only Count == 1 —
	// "the system can have only one lock", as the paper notes.
	Count int
}

// LockKind re-exports the lock mechanism selector so facade callers don't
// need the internal lock package.
type LockKind uint8

const (
	LockUncachedTAS LockKind = iota
	LockHardwareRegister
	LockBakery
	LockCachedTAS
	LockPeterson
)

// String names the lock kind.
func (k LockKind) String() string {
	switch k {
	case LockUncachedTAS:
		return "uncached-tas"
	case LockHardwareRegister:
		return "hw-register"
	case LockBakery:
		return "bakery"
	case LockCachedTAS:
		return "cached-tas"
	case LockPeterson:
		return "peterson"
	default:
		return fmt.Sprintf("LockKind(%d)", uint8(k))
	}
}
