package platform

import (
	"io"

	"hetcc/internal/vcd"
)

// vcdProbe samples the bus and cores every engine cycle and streams the
// changes into a VCD file.  It is registered as the last engine ticker so
// it observes each cycle's settled state.
type vcdProbe struct {
	p *Platform
	w *vcd.Writer

	busBusy   *vcd.Signal
	busMaster *vcd.Signal
	busKind   *vcd.Signal
	busAddr   *vcd.Signal
	busArtry  *vcd.Signal
	busShared *vcd.Signal

	cpuStalled []*vcd.Signal
	cpuHalted  []*vcd.Signal
	cpuISR     []*vcd.Signal
	cpuPC      []*vcd.Signal
}

func newVCDProbe(p *Platform, out io.Writer) (*vcdProbe, error) {
	w := vcd.NewWriter(out, "10ns")
	pr := &vcdProbe{p: p, w: w}
	pr.busBusy = w.Declare("bus", "busy", 1)
	pr.busMaster = w.Declare("bus", "master", 8)
	pr.busKind = w.Declare("bus", "kind", 8)
	pr.busAddr = w.Declare("bus", "addr", 32)
	pr.busArtry = w.Declare("bus", "artry", 1)
	pr.busShared = w.Declare("bus", "shared_seen", 32)
	for _, c := range p.CPUs {
		mod := c.Name()
		pr.cpuStalled = append(pr.cpuStalled, w.Declare(mod, "stalled", 1))
		pr.cpuHalted = append(pr.cpuHalted, w.Declare(mod, "halted", 1))
		pr.cpuISR = append(pr.cpuISR, w.Declare(mod, "in_isr", 1))
		pr.cpuPC = append(pr.cpuPC, w.Declare(mod, "instret", 32))
	}
	if err := w.Begin(); err != nil {
		return nil, err
	}
	return pr, nil
}

// Tick implements sim.Ticker.
func (pr *vcdProbe) Tick(now uint64) {
	probe := pr.p.Bus.Probe()
	set := func(s *vcd.Signal, v uint64) { _ = pr.w.Set(s, now, v) }
	set(pr.busBusy, b2u(probe.Busy))
	set(pr.busMaster, uint64(probe.Master))
	set(pr.busKind, uint64(probe.Kind))
	set(pr.busAddr, uint64(probe.Addr))
	set(pr.busArtry, b2u(probe.Aborting))
	set(pr.busShared, pr.p.Bus.Stats().SharedSeen)
	for i, c := range pr.p.CPUs {
		set(pr.cpuStalled[i], b2u(c.Stalled()))
		set(pr.cpuHalted[i], b2u(c.Halted()))
		set(pr.cpuISR[i], b2u(c.InISR()))
		set(pr.cpuPC[i], c.Stats().Instructions)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
