package platform_test

import (
	"strings"
	"testing"

	"hetcc/internal/coherence"
	"hetcc/internal/core"
	"hetcc/internal/cpu"
	"hetcc/internal/isa"
	"hetcc/internal/memory"
	. "hetcc/internal/platform"
	"hetcc/internal/workload"
)

func buildPF2(t *testing.T, sol Solution) *Platform {
	t.Helper()
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   sol,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildValidations(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	specs := PPCARm()
	specs[0].Cache.LineBytes = 64
	if _, err := Build(Config{Processors: specs}); err == nil {
		t.Error("heterogeneous line sizes accepted")
	}
	bad := PPCARm()
	bad[0].Cache.SizeBytes = 100
	if _, err := Build(Config{Processors: bad}); err == nil {
		t.Error("invalid cache geometry accepted")
	}
}

func TestBuildWiresPF2Topology(t *testing.T) {
	p := buildPF2(t, Proposed)
	if p.Integration.Class != core.PF2 {
		t.Fatalf("class %v", p.Integration.Class)
	}
	if p.SnoopLogics[0] != nil {
		t.Error("coherent PPC got snoop logic")
	}
	if p.SnoopLogics[1] == nil {
		t.Error("ARM missing snoop logic")
	}
	if p.Wrappers[1] != nil {
		t.Error("coherence-less ARM got a wrapper")
	}
	if p.Wrappers[0] == nil {
		t.Error("PPC missing wrapper")
	}
	if p.Integration.LockCaveat == "" {
		t.Error("PF2 missing lock caveat")
	}
}

func TestBaselineSolutionsHaveNoCoherenceHardware(t *testing.T) {
	for _, sol := range []Solution{CacheDisabled, Software} {
		p := buildPF2(t, sol)
		for i := range p.CPUs {
			if p.SnoopLogics[i] != nil || p.Wrappers[i] != nil {
				t.Errorf("%v: core %d has coherence hardware", sol, i)
			}
		}
	}
}

func TestHardwareLockRegisterWired(t *testing.T) {
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockHardwareRegister},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.LockReg == nil || p.LockReg.Base() != LockRegisterAddr {
		t.Fatal("lock register not wired")
	}
}

func TestRegionPredicates(t *testing.T) {
	if !InShared(SharedBase) || !InShared(SharedBase+SharedSize-4) || InShared(SharedBase+SharedSize) {
		t.Error("InShared bounds")
	}
	if !InPrivate(PrivateBase) || InPrivate(SharedBase) {
		t.Error("InPrivate bounds")
	}
	if InShared(LockBase) || InPrivate(LockBase) {
		t.Error("lock region misclassified")
	}
}

func TestLoadProgramsCountMismatch(t *testing.T) {
	p := buildPF2(t, Proposed)
	if err := p.LoadPrograms([]isa.Program{isa.NewBuilder().Halt()}); err == nil {
		t.Fatal("program count mismatch accepted")
	}
}

func runScenario(t *testing.T, sol Solution, s workload.Scenario, params workload.Params) Result {
	t.Helper()
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   sol,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: s.Alternate(), SpinDelay: 4},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs, err := workload.Programs(s, params, sol, len(p.CPUs))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadPrograms(progs); err != nil {
		t.Fatal(err)
	}
	res := p.Run(20_000_000)
	if res.Err != nil {
		t.Fatalf("%v/%v: %v", s, sol, res.Err)
	}
	return res
}

func TestRunProducesStats(t *testing.T) {
	res := runScenario(t, Proposed, workload.WCS, workload.Params{Lines: 4, ExecTime: 1, Iterations: 4})
	if res.Cycles == 0 || res.Bus.Completed == 0 {
		t.Fatalf("empty stats: %+v", res.Bus)
	}
	if len(res.CPU) != 2 || len(res.Cache) != 2 || len(res.Snoop) != 2 {
		t.Fatal("per-core stats missing")
	}
	if !res.CPU[0].Halted || !res.CPU[1].Halted {
		t.Fatal("cores did not halt")
	}
	if res.Snoop[1].Hits == 0 {
		t.Fatal("ARM snoop logic never hit in WCS")
	}
	if res.WrapperConv[0] != 0 {
		// The PPC's MEI wrapper never converts (no S state to remove on
		// the MEI side when the peer has no coherence hardware).
		t.Fatalf("unexpected conversions %d", res.WrapperConv[0])
	}
	if !res.Coherent() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// TestDeterminism: identical configurations produce identical cycle counts
// (DESIGN.md invariant 7).
func TestDeterminism(t *testing.T) {
	params := workload.Params{Lines: 8, ExecTime: 2, Iterations: 4, Seed: 99}
	for _, s := range workload.Scenarios() {
		a := runScenario(t, Proposed, s, params)
		b := runScenario(t, Proposed, s, params)
		if a.Cycles != b.Cycles {
			t.Errorf("%v: cycles %d vs %d", s, a.Cycles, b.Cycles)
		}
		if a.Bus != b.Bus {
			t.Errorf("%v: bus stats differ", s)
		}
	}
}

// TestGoldenMemoryMatchesAfterRun: after any run, main memory merged with
// dirty cache lines must equal the golden model's view for every word the
// workload wrote.  (The checker already verifies loads; this verifies the
// final state.)
func TestFinalStateConsistency(t *testing.T) {
	params := workload.Params{Lines: 4, ExecTime: 2, Iterations: 3, WordsPerLine: 4}
	for _, sol := range Solutions() {
		p, err := Build(Config{
			Processors: PPCARm(),
			Solution:   sol,
			Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
			Verify:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		progs, err := workload.Programs(workload.WCS, params, sol, 2)
		if err != nil {
			t.Fatal(err)
		}
		p.LoadPrograms(progs)
		res := p.Run(20_000_000)
		if res.Err != nil {
			t.Fatalf("%v: %v", sol, res.Err)
		}
		expected := p.GoldenExpected()
		// System view of a word: the freshest copy (a dirty cached copy
		// wins over memory; coherent runs have at most one dirty copy).
		lookup := func(addr uint32) uint32 {
			for i := range p.CPUs {
				c := p.Controllers[i].Cache()
				if l := c.Lookup(addr); l != nil && l.State.Dirty() {
					return l.Data[c.WordIndex(addr)]
				}
			}
			return p.Memory.Peek(addr)
		}
		for _, addr := range params.Defaults().Footprint(workload.WCS) {
			want := expected[addr]
			if got := lookup(addr); got != want {
				t.Fatalf("%v: final word 0x%x = %#x, want %#x", sol, addr, got, want)
			}
		}
	}
}

// TestSingleOwnerInvariant: under the proposed solution with the PF2
// platform (effective MEI) a shared line is never valid in both caches at
// once.  Sampled at every engine cycle of a short run.
func TestSingleOwnerInvariant(t *testing.T) {
	p := buildPF2(t, Proposed)
	progs, err := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 1, Iterations: 3}, Proposed, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.LoadPrograms(progs)
	for i := 0; i < 2_000_000 && !p.Engine.Stopped(); i++ {
		p.Engine.Step()
		if i%7 != 0 {
			continue
		}
		resident := map[uint32]int{}
		for core := range p.CPUs {
			for _, base := range p.SharedLinesResident(core) {
				resident[base]++
				if resident[base] > 1 {
					t.Fatalf("line 0x%x valid in multiple caches at cycle %d", base, i)
				}
			}
		}
	}
}

// TestTAGCAMSuperset: the snoop logic's CAM always contains every shared
// line resident in the ARM's cache (false negatives would break
// coherence; false positives are allowed).
func TestTAGCAMSuperset(t *testing.T) {
	p := buildPF2(t, Proposed)
	progs, err := workload.Programs(workload.TCS, workload.Params{Lines: 6, ExecTime: 1, Iterations: 4}, Proposed, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.LoadPrograms(progs)
	sl := p.SnoopLogics[1]
	for i := 0; i < 4_000_000 && !p.Engine.Stopped(); i++ {
		p.Engine.Step()
		if i%11 != 0 {
			continue
		}
		for _, base := range p.SharedLinesResident(1) {
			if !sl.Holds(base) {
				t.Fatalf("cycle %d: resident line 0x%x missing from TAG CAM", i, base)
			}
		}
	}
}

// TestProposedBeatsBaselinesInBCS pins the headline result's direction.
func TestProposedBeatsBaselinesInBCS(t *testing.T) {
	params := workload.Params{Lines: 16, ExecTime: 1, Iterations: 6}
	dis := runScenario(t, CacheDisabled, workload.BCS, params)
	sw := runScenario(t, Software, workload.BCS, params)
	prop := runScenario(t, Proposed, workload.BCS, params)
	if !(prop.Cycles < sw.Cycles && sw.Cycles < dis.Cycles) {
		t.Fatalf("ordering violated: dis=%d sw=%d prop=%d", dis.Cycles, sw.Cycles, prop.Cycles)
	}
}

func TestScaledTimingSlowsRuns(t *testing.T) {
	params := workload.Params{Lines: 8, ExecTime: 1, Iterations: 3}
	base, err := Build(Config{Processors: PPCARm(), Solution: Software, Lock: LockChoice{Kind: LockUncachedTAS, Alternate: true}})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Build(Config{Processors: PPCARm(), Solution: Software, Timing: memory.ScaledTiming(96), Lock: LockChoice{Kind: LockUncachedTAS, Alternate: true}})
	if err != nil {
		t.Fatal(err)
	}
	progs, _ := workload.Programs(workload.WCS, params, Software, 2)
	base.LoadPrograms(progs)
	progs2, _ := workload.Programs(workload.WCS, params, Software, 2)
	slow.LoadPrograms(progs2)
	rb, rs := base.Run(20_000_000), slow.Run(20_000_000)
	if rb.Err != nil || rs.Err != nil {
		t.Fatalf("errs %v %v", rb.Err, rs.Err)
	}
	if rs.Cycles <= rb.Cycles {
		t.Fatalf("96-cycle penalty not slower: %d vs %d", rs.Cycles, rb.Cycles)
	}
}

func TestPF3PlatformRuns(t *testing.T) {
	p, err := Build(Config{
		Processors: PPCI486(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Integration.Class != core.PF3 || p.Integration.Effective != coherence.MEI {
		t.Fatalf("integration %+v", p.Integration)
	}
	progs, _ := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 1, Iterations: 4}, Proposed, 2)
	p.LoadPrograms(progs)
	res := p.Run(20_000_000)
	if res.Err != nil || !res.Coherent() {
		t.Fatalf("PF3 run: err=%v violations=%v", res.Err, res.Violations)
	}
	// Effective MEI: the Intel486's MESI cache must never hold S.
	for _, base := range p.SharedLinesResident(1) {
		if st := p.Controllers[1].Cache().StateOf(base); st == coherence.Shared {
			t.Fatalf("i486 line 0x%x in S under MEI reduction", base)
		}
	}
	// The i486 wrapper must have converted snooped reads.
	if res.WrapperConv[1] == 0 {
		t.Fatal("i486 wrapper never converted a read")
	}
}

// TestPF3FasterThanPF2: the paper predicts the Intel486 platform
// outperforms the ARM one under the proposed solution "due to the absence
// of an interrupt service routine".
func TestPF3FasterThanPF2(t *testing.T) {
	params := workload.Params{Lines: 8, ExecTime: 1, Iterations: 6}
	run := func(specs []ProcessorSpec) uint64 {
		p, err := Build(Config{
			Processors: specs,
			Solution:   Proposed,
			Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		progs, _ := workload.Programs(workload.WCS, params, Proposed, 2)
		p.LoadPrograms(progs)
		res := p.Run(20_000_000)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Cycles
	}
	pf2 := run(PPCARm())
	pf3 := run(PPCI486())
	if pf3 >= pf2 {
		t.Fatalf("PF3 (%d cycles) not faster than PF2 (%d cycles)", pf3, pf2)
	}
}

func TestPF1PlatformRuns(t *testing.T) {
	p, err := Build(Config{
		Processors: ARMPair(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Integration.Class != core.PF1 {
		t.Fatalf("class %v", p.Integration.Class)
	}
	for i := range p.CPUs {
		if p.SnoopLogics[i] == nil {
			t.Fatalf("core %d missing snoop logic on PF1", i)
		}
	}
	progs, _ := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 1, Iterations: 3}, Proposed, 2)
	p.LoadPrograms(progs)
	res := p.Run(20_000_000)
	if res.Err != nil || !res.Coherent() {
		t.Fatalf("PF1 run: err=%v violations=%v", res.Err, res.Violations)
	}
}

func TestSolutionAndLockKindStrings(t *testing.T) {
	if CacheDisabled.String() != "cache-disabled" || Software.String() != "software" || Proposed.String() != "proposed" {
		t.Error("solution strings")
	}
	if LockUncachedTAS.String() != "uncached-tas" || LockBakery.String() != "bakery" {
		t.Error("lock kind strings")
	}
}

// TestIntel486WriteThroughPlatform exercises the paper's SI-protocol
// variant: the Intel486 caches shared data in write-through lines, whose S
// state the wrapper removes by asserting INV on read snoop cycles as well
// (modelled by the read-to-write conversion).
func TestIntel486WriteThroughPlatform(t *testing.T) {
	specs := []ProcessorSpec{PowerPC755(), Intel486WT()}
	p, err := Build(Config{
		Processors: specs,
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs, err := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 2, Iterations: 4}, Proposed, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.LoadPrograms(progs)
	res := p.Run(20_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Coherent() {
		t.Fatalf("stale reads with WT shared lines: %v", res.Violations[0])
	}
	// WT writes are word writes on the bus.
	if res.Bus.WordWrites == 0 {
		t.Fatal("no write-through traffic observed")
	}
	// The i486's cache must never have held a dirty shared line.
	if res.Cache[1].EvictionWBs != 0 || res.Cache[1].SnoopFlushes != 0 {
		t.Fatalf("WT cache produced dirty-line traffic: %+v", res.Cache[1])
	}
}

// TestWriteThroughRequiresSState: MEI cores cannot use WT shared lines.
func TestWriteThroughRequiresSState(t *testing.T) {
	specs := PPCARm()
	specs[0].WriteThroughShared = true // PowerPC755 is MEI: no S state
	if _, err := Build(Config{Processors: specs, Solution: Proposed}); err == nil {
		t.Fatal("WT on an MEI processor accepted")
	}
}

// TestHomogeneousDragonPlatform runs the update-based protocol end-to-end.
func TestHomogeneousDragonPlatform(t *testing.T) {
	specs := []ProcessorSpec{
		Generic("D0", coherence.Dragon, 1),
		Generic("D1", coherence.Dragon, 1),
	}
	p, err := Build(Config{
		Processors: specs,
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs, err := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 2, Iterations: 4}, Proposed, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.LoadPrograms(progs)
	res := p.Run(20_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Coherent() {
		t.Fatalf("dragon stale reads: %v", res.Violations[0])
	}
	if res.Bus.WordUpdates == 0 {
		t.Fatal("no bus updates observed in a WCS dragon run")
	}
	// Update-based WCS sharing: both caches hold lines simultaneously, so
	// snoop invalidations should be absent on the data path.
	if res.Cache[0].SnoopInvalidations+res.Cache[1].SnoopInvalidations != 0 {
		t.Fatalf("invalidations in a homogeneous Dragon system: %+v %+v", res.Cache[0], res.Cache[1])
	}
}

// TestDragonVsMESITradeOff reproduces the classic update-vs-invalidate
// trade-off: Dragon wins on fine-grain word ping-pong (each write is one
// bus update and the peer keeps reading from its own cache), while MESI
// wins on bulk line rewrites (Dragon pays one bus update per word where
// MESI invalidates once and writes silently thereafter).
func TestDragonVsMESITradeOff(t *testing.T) {
	run := func(k coherence.Kind, params workload.Params) uint64 {
		specs := []ProcessorSpec{Generic("A", k, 1), Generic("B", k, 1)}
		p, err := Build(Config{
			Processors: specs,
			Solution:   Proposed,
			Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		progs, _ := workload.Programs(workload.WCS, params, Proposed, 2)
		p.LoadPrograms(progs)
		res := p.Run(20_000_000)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Cycles
	}
	pingPong := workload.Params{Lines: 1, ExecTime: 1, Iterations: 10, WordsPerLine: 1}
	if mesi, dragon := run(coherence.MESI, pingPong), run(coherence.Dragon, pingPong); dragon >= mesi {
		t.Errorf("ping-pong: Dragon (%d) not faster than MESI (%d)", dragon, mesi)
	}
	bulk := workload.Params{Lines: 8, ExecTime: 2, Iterations: 6, WordsPerLine: 8}
	if mesi, dragon := run(coherence.MESI, bulk), run(coherence.Dragon, bulk); mesi >= dragon {
		t.Errorf("bulk rewrite: MESI (%d) not faster than Dragon (%d)", mesi, dragon)
	}
}

// TestMultiLockPlatform: two independent locks pipeline two shared blocks.
func TestMultiLockPlatform(t *testing.T) {
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS, SpinDelay: 3, Count: 2},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	blockA, blockB := workload.BlockBase(0), workload.BlockBase(1)
	prog := func(task int, lockID int, base uint32) isa.Program {
		b := isa.NewBuilder()
		for r := 0; r < 5; r++ {
			b.Lock(lockID)
			for w := 0; w < 4; w++ {
				addr := base + uint32(4*w)
				b.Read(addr)
				b.Write(addr, uint32(task+1)<<16|uint32(r)<<4|uint32(w))
			}
			b.Unlock(lockID)
		}
		return b.Halt()
	}
	if err := p.LoadPrograms([]isa.Program{prog(0, 0, blockA), prog(1, 1, blockB)}); err != nil {
		t.Fatal(err)
	}
	res := p.Run(10_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Coherent() {
		t.Fatalf("stale: %v", res.Violations[0])
	}
	if res.CPU[0].LockAcquires != 5 || res.CPU[1].LockAcquires != 5 {
		t.Fatalf("lock counts %d/%d", res.CPU[0].LockAcquires, res.CPU[1].LockAcquires)
	}
}

// TestHardwareRegisterCountRejected at the platform level.
func TestHardwareRegisterCountRejected(t *testing.T) {
	_, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockHardwareRegister, Count: 2},
	})
	if err == nil {
		t.Fatal("two hardware-register locks accepted")
	}
}

// TestVCDDumpStructure runs a platform with the waveform probe and checks
// the dump is a well-formed VCD showing bus activity.
func TestVCDDumpStructure(t *testing.T) {
	var sb strings.Builder
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		VCD:        &sb,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs, _ := workload.Programs(workload.WCS, workload.Params{Lines: 2, ExecTime: 1, Iterations: 2}, Proposed, 2)
	p.LoadPrograms(progs)
	res := p.Run(10_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 10ns $end",
		"$scope module bus $end",
		"$scope module PowerPC755 $end",
		"$scope module ARM920T $end",
		"$enddefinitions $end",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q", want)
		}
	}
	// Bus activity must be visible: busy toggles and at least one ARTRY.
	if !strings.Contains(out, "1!") {
		t.Fatal("bus never went busy in the dump")
	}
	if strings.Count(out, "#") < 20 {
		t.Fatal("suspiciously few timestamps")
	}
}

// TestPeripheralBusFromProgram: a program reads the timer and writes the
// console through the bridge; peripheral accesses are uncached words.
func TestPeripheralBusFromProgram(t *testing.T) {
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder()
	b.Write(TimerBase+4, 1) // enable the timer (TimerCtrl)
	b.Delay(100)
	b.Read(TimerBase) // TimerCount
	for _, ch := range "hi" {
		b.Write(ConsoleBase, uint32(ch))
	}
	progs := []isa.Program{b.Halt(), isa.NewBuilder().Halt()}
	if err := p.LoadPrograms(progs); err != nil {
		t.Fatal(err)
	}
	var timerVal uint32
	p.CPUs[0].SetHooks(cpu.Hooks{OnLoad: func(_ int, addr, val uint32, _ uint64) {
		if addr == TimerBase {
			timerVal = val
		}
	}})
	res := p.Run(1_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if timerVal == 0 {
		t.Fatal("timer did not count")
	}
	if p.Console.Output() != "hi" {
		t.Fatalf("console output %q", p.Console.Output())
	}
	if p.Periph.Accesses < 4 {
		t.Fatalf("bridge accesses %d", p.Periph.Accesses)
	}
	// Peripheral accesses must not allocate cache lines.
	if _, ok := p.Controllers[0].Cache().PeekWord(TimerBase); ok {
		t.Fatal("peripheral access cached")
	}
}

// TestDMACoherentWithProgram: a program stages data in its cache (dirty),
// kicks the DMA engine at a buffer copy, polls STATUS, and reads the
// destination — all coherently.
func TestDMACoherentWithProgram(t *testing.T) {
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS},
		DMA:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := workload.BlockBase(0)
	dst := workload.BlockBase(1)
	b := isa.NewBuilder()
	for w := uint32(0); w < 8; w++ {
		b.Write(src+4*w, 0x40+w) // dirty in the PPC cache
	}
	b.Write(DMABase+0x0, src) // RegSrc
	b.Write(DMABase+0x4, dst) // RegDst
	b.Write(DMABase+0x8, 32)  // RegLen: one line
	b.Write(DMABase+0xc, 1)   // RegCtrl: start
	b.WaitEq(DMABase+0x10, 2) // RegStatus == done
	for w := uint32(0); w < 8; w++ {
		b.Read(dst + 4*w)
	}
	progs := []isa.Program{b.Halt(), isa.NewBuilder().Halt()}
	if err := p.LoadPrograms(progs); err != nil {
		t.Fatal(err)
	}
	var got []uint32
	p.CPUs[0].SetHooks(cpu.Hooks{OnLoad: func(_ int, addr, val uint32, _ uint64) {
		if addr >= dst && addr < dst+32 {
			got = append(got, val)
		}
	}})
	res := p.Run(2_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(got) != 8 {
		t.Fatalf("%d destination reads", len(got))
	}
	for w, v := range got {
		if v != uint32(0x40+w) {
			t.Fatalf("dst word %d = %#x, want %#x (dirty source drained for the DMA read)", w, v, 0x40+w)
		}
	}
	if p.DMA.Transfers != 1 {
		t.Fatalf("transfers %d", p.DMA.Transfers)
	}
}

// TestRaceDetector flags shared accesses outside critical sections and
// stays quiet for disciplined programs.
func TestRaceDetector(t *testing.T) {
	build := func() *Platform {
		p, err := Build(Config{
			Processors: PPCARm(),
			Solution:   Proposed,
			Lock:       LockChoice{Kind: LockUncachedTAS},
			Verify:     true,
			RaceCheck:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	shared := workload.BlockBase(0)

	// Disciplined: all shared accesses under the lock.
	p := build()
	good := isa.NewBuilder().Lock(0).Write(shared, 1).Read(shared).Unlock(0).Halt()
	p.LoadPrograms([]isa.Program{good, isa.NewBuilder().Halt()})
	res := p.Run(1_000_000)
	if res.Err != nil || len(res.Races) != 0 {
		t.Fatalf("disciplined program flagged: err=%v races=%v", res.Err, res.Races)
	}

	// Racy: a shared write with no lock held.
	p = build()
	bad := isa.NewBuilder().Write(shared, 1).Lock(0).Read(shared).Unlock(0).Halt()
	p.LoadPrograms([]isa.Program{bad, isa.NewBuilder().Halt()})
	res = p.Run(1_000_000)
	if len(res.Races) != 1 {
		t.Fatalf("races %v, want exactly the unlocked write", res.Races)
	}
	if r := res.Races[0]; !r.Write || r.Core != 0 || r.Addr != shared {
		t.Fatalf("race record %+v", r)
	}
	if r := res.Races[0].String(); r == "" {
		t.Fatal("race renders empty")
	}
}

// TestWaitEqPollsUntilMatch: one core spins on an uncached mailbox the
// other eventually sets.
func TestWaitEqPollsUntilMatch(t *testing.T) {
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockUncachedTAS},
	})
	if err != nil {
		t.Fatal(err)
	}
	mailbox := LockBase + 0xf0
	waiter := isa.NewBuilder().WaitEq(mailbox, 7).Write(workload.BlockBase(0), 1).Halt()
	setter := isa.NewBuilder().Delay(500).Write(mailbox, 7).Halt()
	if err := p.LoadPrograms([]isa.Program{waiter, setter}); err != nil {
		t.Fatal(err)
	}
	res := p.Run(1_000_000)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// The waiter's write must land after the setter's delay elapsed.
	if res.CPU[0].HaltCycle < 500 {
		t.Fatalf("waiter finished at %d, before the mailbox was set", res.CPU[0].HaltCycle)
	}
	if res.Bus.WordReads < 3 {
		t.Fatalf("only %d polls observed", res.Bus.WordReads)
	}
}

// TestPipelinedBusFasterAndCoherent: the AHB-style ablation must keep
// coherence while shortening runs.
func TestPipelinedBusFasterAndCoherent(t *testing.T) {
	run := func(pipelined bool) Result {
		p, err := Build(Config{
			Processors:   PPCARm(),
			Solution:     Proposed,
			Lock:         LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
			Verify:       true,
			PipelinedBus: pipelined,
		})
		if err != nil {
			t.Fatal(err)
		}
		progs, _ := workload.Programs(workload.WCS, workload.Params{Lines: 8, ExecTime: 1, Iterations: 6}, Proposed, 2)
		p.LoadPrograms(progs)
		res := p.Run(20_000_000)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !res.Coherent() {
			t.Fatalf("pipelined=%v stale: %v", pipelined, res.Violations[0])
		}
		return res
	}
	plain := run(false)
	piped := run(true)
	if piped.Cycles >= plain.Cycles {
		t.Fatalf("pipelined (%d) not faster than plain (%d)", piped.Cycles, plain.Cycles)
	}
	if piped.Bus.Overlapped == 0 {
		t.Fatal("no overlap recorded")
	}
}

// TestVendorPresets runs the paper's cited commercial protocol examples
// together: UltraSPARC/AMD64 (MOESI) with a Pentium-class MESI core.
func TestVendorPresets(t *testing.T) {
	for _, specs := range [][]ProcessorSpec{
		{UltraSPARC(), Pentium()},
		{AMD64(), Pentium()},
		{UltraSPARC(), AMD64()},
	} {
		p, err := Build(Config{
			Processors: specs,
			Solution:   Proposed,
			Lock:       LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
			Verify:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		progs, _ := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 1, Iterations: 3}, Proposed, 2)
		p.LoadPrograms(progs)
		res := p.Run(20_000_000)
		if res.Err != nil || !res.Coherent() {
			t.Fatalf("%s+%s: err=%v violations=%v", specs[0].Model, specs[1].Model, res.Err, res.Violations)
		}
		// Homogeneous MOESI keeps cache-to-cache; the MESI mix must not.
		homo := specs[0].Protocol == specs[1].Protocol
		if homo && res.Bus.Supplied == 0 {
			t.Errorf("%s+%s: no cache-to-cache transfers in homogeneous MOESI", specs[0].Model, specs[1].Model)
		}
		if !homo && res.Bus.Supplied != 0 {
			t.Errorf("%s+%s: cache-to-cache in a heterogeneous mix", specs[0].Model, specs[1].Model)
		}
	}
}

// TestPetersonLockOnPlatform: the Peterson software lock is a valid PF2
// deadlock remedy (uncached plain loads/stores, like bakery).
func TestPetersonLockOnPlatform(t *testing.T) {
	p, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockPeterson, SpinDelay: 3},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs, _ := workload.Programs(workload.BCS, workload.Params{Lines: 4, ExecTime: 1, Iterations: 4}, Proposed, 2)
	p.LoadPrograms(progs)
	res := p.Run(20_000_000)
	if res.Err != nil || !res.Coherent() {
		t.Fatalf("err=%v violations=%v", res.Err, res.Violations)
	}
	// Contended too.
	p2, err := Build(Config{
		Processors: PPCARm(),
		Solution:   Proposed,
		Lock:       LockChoice{Kind: LockPeterson, SpinDelay: 3},
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs2, _ := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 1, Iterations: 4}, Proposed, 2)
	p2.LoadPrograms(progs2)
	res2 := p2.Run(20_000_000)
	if res2.Err != nil || !res2.Coherent() {
		t.Fatalf("contended: err=%v violations=%v", res2.Err, res2.Violations)
	}
	if res2.CPU[0].LockAcquires != 4 || res2.CPU[1].LockAcquires != 4 {
		t.Fatalf("acquires %d/%d", res2.CPU[0].LockAcquires, res2.CPU[1].LockAcquires)
	}
}

// TestKitchenSinkCompose drives every optional feature at once: pipelined
// bus, DMA engine, wrapper latency, write-through i486, multi-lock,
// race-checked golden model, VCD dump.  Features must compose.
func TestKitchenSinkCompose(t *testing.T) {
	var wave strings.Builder
	specs := []ProcessorSpec{PowerPC755(), Intel486WT(), ARM920T()}
	for i := range specs {
		specs[i].WrapperLatency = 1
	}
	p, err := Build(Config{
		Processors:   specs,
		Solution:     Proposed,
		Lock:         LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4, Count: 2},
		Verify:       true,
		RaceCheck:    true,
		PipelinedBus: true,
		DMA:          true,
		VCD:          &wave,
		TraceCap:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	progs, err := workload.Programs(workload.WCS, workload.Params{Lines: 4, ExecTime: 2, Iterations: 3}, Proposed, 3)
	if err != nil {
		t.Fatal(err)
	}
	p.LoadPrograms(progs)
	res := p.Run(30_000_000)
	if res.Err != nil {
		t.Fatalf("err=%v reason=%s", res.Err, res.StopReason)
	}
	if !res.Coherent() {
		t.Fatalf("stale: %v", res.Violations[0])
	}
	if len(res.Races) != 0 {
		t.Fatalf("races: %v", res.Races)
	}
	if wave.Len() == 0 || p.Log.Len() == 0 {
		t.Fatal("instrumentation produced nothing")
	}
}

// TestSoakLongMixedRun is a longer randomized multi-feature soak (skipped
// with -short).
func TestSoakLongMixedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		p, err := Build(Config{
			Processors:   []ProcessorSpec{PowerPC755(), Intel486(), ARM920T()},
			Solution:     Proposed,
			Lock:         LockChoice{Kind: LockBakery, Alternate: true, SpinDelay: 3},
			Verify:       true,
			PipelinedBus: seed%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		progs, err := workload.Programs(workload.TCS, workload.Params{
			Lines: 16, ExecTime: 2, Iterations: 20, Seed: seed,
		}, Proposed, 3)
		if err != nil {
			t.Fatal(err)
		}
		p.LoadPrograms(progs)
		res := p.Run(100_000_000)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if !res.Coherent() {
			t.Fatalf("seed %d: %v", seed, res.Violations[0])
		}
	}
}
