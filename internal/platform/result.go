package platform

import (
	"errors"
	"fmt"
	"sort"

	"hetcc/internal/audit"
	"hetcc/internal/bus"
	"hetcc/internal/cache"
	"hetcc/internal/cpu"
	"hetcc/internal/metrics"
	"hetcc/internal/profile"
	"hetcc/internal/sharing"
	"hetcc/internal/sim"
	"hetcc/internal/snooplogic"
	"hetcc/internal/span"
)

// Violation records a golden-model coherence defect: a load from the shared
// region returned something other than the globally last-stored value.
type Violation struct {
	Core  int
	Addr  uint32
	Got   uint32
	Want  uint32
	Cycle uint64
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: core %d read 0x%08x = %d, want %d (stale)", v.Cycle, v.Core, v.Addr, v.Got, v.Want)
}

// checker is the golden model: because every shared-region access in the
// workloads happens inside a critical section, the globally last write to
// each word is well-defined and every read must return it.  It also checks
// the lock discipline itself: a shared-region access by a core holding no
// lock is a data race under the paper's programming model.
type checker struct {
	expected   map[uint32]uint32
	violations []Violation
	races      []Race
	limit      int
	lockDepth  func(core int) int
}

// Race records a shared-region access performed outside any critical
// section.
type Race struct {
	Core  int
	Addr  uint32
	Write bool
	Cycle uint64
}

// String renders the race.
func (r Race) String() string {
	op := "read"
	if r.Write {
		op = "write"
	}
	return fmt.Sprintf("cycle %d: core %d %s of shared 0x%08x outside any critical section", r.Cycle, r.Core, op, r.Addr)
}

func newChecker() *checker {
	return &checker{expected: make(map[uint32]uint32), limit: 64}
}

func (k *checker) noteRace(core int, addr uint32, write bool, now uint64) {
	if k.lockDepth != nil && k.lockDepth(core) == 0 && len(k.races) < k.limit {
		k.races = append(k.races, Race{Core: core, Addr: addr, Write: write, Cycle: now})
	}
}

func (k *checker) onStore(core int, addr, val uint32, now uint64) {
	if InShared(addr) {
		k.noteRace(core, addr, true, now)
		k.expected[addr] = val
	}
}

func (k *checker) onLoad(core int, addr, val uint32, now uint64) {
	if !InShared(addr) {
		return
	}
	k.noteRace(core, addr, false, now)
	if want := k.expected[addr]; want != val && len(k.violations) < k.limit {
		k.violations = append(k.violations, Violation{Core: core, Addr: addr, Got: val, Want: want, Cycle: now})
	}
}

// Result summarises one simulation run.
type Result struct {
	// Cycles is the engine cycle count at termination (100 MHz cycles in
	// the default clocking).
	Cycles uint64
	// Err is nil on normal completion; bus.ErrHardwareDeadlock when the
	// livelock detector fired; sim.ErrMaxCycles when the budget ran out.
	Err error
	// StopReason is the engine's recorded reason.
	StopReason string

	Bus         bus.Stats
	CPU         []cpu.Stats
	Cache       []cache.Stats
	Snoop       []snooplogic.Stats
	WrapperConv []uint64
	Violations  []Violation
	// Races lists shared accesses performed outside critical sections
	// (reported only when RaceCheck was enabled).
	Races []Race

	// Metrics is the final registry snapshot (nil unless Config.Metrics).
	Metrics *metrics.Snapshot
	// Tenures lists the bus tenure spans observed during the run (captured
	// only when Config.Metrics is on; bounded, see maxTenures).  The
	// Chrome-trace exporter turns them into duration events.
	Tenures []bus.Tenure
	// Audit is the invariant auditor's summary: violations, events by kind,
	// observed reachable states per core, per-line transition counts (nil
	// unless Config.Audit).
	Audit *audit.Summary
	// Profile is the stall-cause ledger summary (nil unless Config.Profile).
	// Per core, the sum of its causes equals CPU[i].StallCycles exactly.
	Profile *profile.Summary
	// StallSpans lists the contiguous same-cause stall runs per core
	// (bounded, see profile.DefaultMaxSpans; captured only with
	// Config.Profile).  The Chrome-trace exporter renders them as per-core
	// lanes.
	StallSpans []profile.Span
	// CriticalPath is the causal-span critical-path attribution (nil unless
	// Config.Spans): the last-retiring core's timeline charged to
	// (component, cause) pairs, summing to Cycles exactly.  The transaction
	// records and causal edges behind it are on Platform.Spans().
	CriticalPath *span.CriticalPath
	// Cohorts is the transaction-cohort partition of the critical core's
	// timeline (nil unless Config.Spans): execute + unlinked + per-(master,
	// op, line) critical cycles sum to Cycles exactly, the alignment unit of
	// differential run analysis (package delta).
	Cohorts *span.CohortSummary
	// Sharing is the sharing-pattern summary (nil unless Config.Sharing):
	// per-line classifications, the master communication matrix and the
	// windowed address heatmap.  Enabling it never changes the simulated
	// timeline — the collector only observes the event stream.
	Sharing *sharing.Summary
}

// Deadlocked reports whether the run ended in the paper's hardware
// deadlock.
func (r Result) Deadlocked() bool { return errors.Is(r.Err, bus.ErrHardwareDeadlock) }

// Coherent reports whether the golden-model checker saw no stale reads.
func (r Result) Coherent() bool { return len(r.Violations) == 0 }

// Run simulates until all programs retire, a deadlock is detected, or
// maxCycles engine cycles elapse.
func (p *Platform) Run(maxCycles uint64) Result {
	err := p.Engine.Run(maxCycles)
	res := Result{
		Cycles:     p.Engine.Now(),
		Err:        err,
		StopReason: p.Engine.StopReason(),
		Bus:        p.Bus.Stats(),
	}
	for i, c := range p.CPUs {
		res.CPU = append(res.CPU, c.Stats())
		res.Cache = append(res.Cache, p.Controllers[i].Cache().Stats())
		if sl := p.SnoopLogics[i]; sl != nil {
			res.Snoop = append(res.Snoop, sl.Stats())
		} else {
			res.Snoop = append(res.Snoop, snooplogic.Stats{})
		}
		if w := p.Wrappers[i]; w != nil {
			res.WrapperConv = append(res.WrapperConv, w.Conversions)
		} else {
			res.WrapperConv = append(res.WrapperConv, 0)
		}
	}
	if p.checker != nil {
		res.Violations = p.checker.violations
		res.Races = p.checker.races
	}
	if err != nil && errors.Is(err, sim.ErrMaxCycles) && p.Bus.Deadlocked() {
		res.Err = bus.ErrHardwareDeadlock
	}
	if p.sampler != nil {
		p.sampler.Flush(p.Engine.Now()) // final partial window
	}
	if p.Metrics != nil && p.Engine.EventScheduler() {
		// Scheduler wake telemetry: how hard the event scheduler worked and
		// how much idle time it skipped.  Recorded before the snapshot; zero
		// under the tick scheduler, so the sched.* family only appears in
		// event-mode snapshots.
		st := p.Engine.SchedStats()
		p.Metrics.Counter("sched.wakes").Add(st.Wakes)
		p.Metrics.Counter("sched.passes").Add(st.Passes)
		p.Metrics.Gauge("sched.heap.maxdepth").Set(float64(st.MaxHeapDepth))
		h := p.Metrics.Histogram("sched.skip.cycles")
		for i, n := range st.SkipBuckets {
			// Replay each log2 bucket at its lower bound (the engine tallies
			// distances itself so the hot loop stays metrics-free).
			var v uint64
			if i > 0 {
				v = 1 << uint(i-1)
			}
			for ; n > 0; n-- {
				h.Observe(v)
			}
		}
	}
	if p.Metrics != nil {
		res.Metrics = p.Metrics.Snapshot()
		res.Tenures = p.tenures
	}
	if p.auditor != nil {
		s := p.auditor.Summary()
		s.Events = p.events.Counts()
		res.Audit = &s
	}
	if p.profiler != nil {
		p.profiler.Finish()
		s := p.profiler.Summary()
		res.Profile = &s
		res.StallSpans = p.profiler.Spans()
	}
	if p.spans != nil {
		p.spans.Finish(res.StallSpans, res.Cycles)
		cores := make([]span.CoreInfo, len(p.CPUs))
		for i := range p.CPUs {
			cores[i] = span.CoreInfo{
				Name:      p.Config.Processors[i].Model,
				ClockDiv:  p.Config.Processors[i].ClockDiv,
				Halted:    res.CPU[i].Halted,
				HaltCycle: res.CPU[i].HaltCycle,
			}
		}
		res.CriticalPath = span.Compute(p.spans, res.Cycles, cores, res.Profile,
			p.MasterName, func(k uint8) string { return bus.Kind(k).String() }, 10)
		if res.CriticalPath != nil {
			res.Cohorts = span.Cohorts(p.spans, res.CriticalPath.Core, res.Cycles,
				p.MasterName, func(k uint8) string { return bus.Kind(k).String() })
		}
	}
	if p.sharing != nil {
		p.sharing.Finish()
		res.Sharing = p.sharing.Summary()
	}
	if p.vcd != nil {
		_ = p.vcd.w.Close(p.Engine.Now())
	}
	return res
}

// GoldenExpected returns a copy of the golden model's expected value per
// shared word (nil when Verify was off).  Tests use it to cross-check the
// final system state.
func (p *Platform) GoldenExpected() map[uint32]uint32 {
	if p.checker == nil {
		return nil
	}
	out := make(map[uint32]uint32, len(p.checker.expected))
	for k, v := range p.checker.expected {
		out[k] = v
	}
	return out
}

// SharedLinesResident returns, per core, the shared-region lines currently
// resident in its data cache (test helper for the TAG CAM mirror and
// single-owner properties).
func (p *Platform) SharedLinesResident(core int) []uint32 {
	var out []uint32
	for _, base := range p.Controllers[core].Cache().ResidentLines() {
		if InShared(base) {
			out = append(out, base)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
