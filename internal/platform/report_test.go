package platform_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	. "hetcc/internal/platform"
	"hetcc/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden report file")

// runWCSReport runs a small deterministic WCS simulation with metrics,
// auditing and profiling on and returns the platform, the result, and the
// rendered report.
func runWCSReport(t *testing.T) (*Platform, Result, Report) {
	t.Helper()
	p, err := Build(Config{
		Processors:    PPCARm(),
		Solution:      Proposed,
		Lock:          LockChoice{Kind: LockUncachedTAS, Alternate: true, SpinDelay: 4},
		Verify:        true,
		Metrics:       true,
		MetricsWindow: 5_000,
		Audit:         true,
		Profile:       true,
		Spans:         true,
		Sharing:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := workload.Params{Lines: 8, ExecTime: 1, Iterations: 4, WordsPerLine: 8}
	progs, err := workload.Programs(workload.WCS, params, Proposed, len(p.CPUs))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadPrograms(progs); err != nil {
		t.Fatal(err)
	}
	res := p.Run(5_000_000)
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	// A pinned manifest (no live toolchain probing) keeps the golden file
	// machine-independent.
	p.Manifest = &Manifest{
		SchemaVersion: ReportSchemaVersion,
		GoVersion:     "go0.0-golden",
		Module:        "hetcc",
		ModuleVersion: "(golden)",
		Flags:         []string{"-scenario", "wcs"},
	}
	return p, res, p.Report(res, "wcs")
}

// TestReportGolden pins the full report for a small WCS run.  The simulator
// is deterministic and the report carries no wall-clock data, so the JSON
// must match byte-for-byte.  Refresh with: go test ./internal/platform -run
// TestReportGolden -update
func TestReportGolden(t *testing.T) {
	_, _, rep := runWCSReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "wcs_report.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden file (re-run with -update if intended)\ngot:\n%s", buf.String())
	}
}

// TestReportRoundTrip checks the report unmarshals, carries the schema
// version, and reproduces the Result counters exactly.
func TestReportRoundTrip(t *testing.T) {
	p, res, rep := runWCSReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not unmarshal: %v", err)
	}
	if back.Schema != ReportSchema || back.SchemaVersion != ReportSchemaVersion {
		t.Fatalf("schema %q v%d, want %q v%d", back.Schema, back.SchemaVersion, ReportSchema, ReportSchemaVersion)
	}
	if back.Cycles != res.Cycles {
		t.Fatalf("cycles %d != %d", back.Cycles, res.Cycles)
	}
	if back.Bus != res.Bus {
		t.Fatalf("bus stats drifted:\n%+v\n%+v", back.Bus, res.Bus)
	}
	if len(back.Cores) != len(p.CPUs) {
		t.Fatalf("%d cores, want %d", len(back.Cores), len(p.CPUs))
	}
	for i, cr := range back.Cores {
		if cr.CPU != res.CPU[i] {
			t.Fatalf("core %d cpu stats drifted", i)
		}
		if cr.Cache != res.Cache[i] {
			t.Fatalf("core %d cache stats drifted", i)
		}
		if cr.WrapperConversions != res.WrapperConv[i] {
			t.Fatalf("core %d conversions drifted", i)
		}
		if sl := p.SnoopLogics[i]; sl != nil {
			if cr.Snoop == nil || *cr.Snoop != res.Snoop[i] {
				t.Fatalf("core %d snoop stats drifted", i)
			}
		} else if cr.Snoop != nil {
			t.Fatalf("core %d has snoop stats but no snoop logic", i)
		}
	}
	if !back.Coherent {
		t.Fatal("proposed run reported incoherent")
	}
}

// TestReportV1FieldsStable guards v1 consumers: every v1 top-level field must
// still be present with its v1 JSON name across later schema versions.
func TestReportV1FieldsStable(t *testing.T) {
	_, _, rep := runWCSReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	v1Fields := []string{
		"schema", "schema_version", "scenario", "solution", "platform",
		"effective_protocol", "cycles", "bus_cycles", "stop_reason",
		"deadlocked", "coherent", "bus", "cores", "metrics",
	}
	for _, f := range v1Fields {
		if _, ok := raw[f]; !ok {
			t.Errorf("v1 field %q missing from v%d report", f, ReportSchemaVersion)
		}
	}
	var schema string
	if err := json.Unmarshal(raw["schema"], &schema); err != nil || schema != ReportSchema {
		t.Errorf("schema = %q (%v), want %q", schema, err, ReportSchema)
	}
}

// TestReportV2FieldsStable guards v2 consumers: the "audit" section is
// unchanged, and the v3/v4 additions are separate keys rather than changes
// to any existing field.
func TestReportV2FieldsStable(t *testing.T) {
	_, res, rep := runWCSReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["audit"]; !ok {
		t.Error("v2 audit section missing from v3 report")
	}
	if _, ok := raw["profile"]; !ok {
		t.Error("v3 report missing the profile section")
	}
	// The profile section must uphold the conservation invariant against
	// the cores section of the same report.
	if rep.Profile == nil || len(rep.Profile.Cores) != len(rep.Cores) {
		t.Fatalf("profile covers %d cores, report has %d", len(rep.Profile.Cores), len(rep.Cores))
	}
	for i, cs := range rep.Profile.Cores {
		var sum uint64
		for _, n := range cs.Causes {
			sum += n
		}
		if sum != rep.Cores[i].CPU.StallCycles || sum != cs.StallCycles {
			t.Errorf("core %d: causes sum %d, profile stall_cycles %d, cpu stall_cycles %d",
				i, sum, cs.StallCycles, rep.Cores[i].CPU.StallCycles)
		}
	}
	if len(res.StallSpans) == 0 {
		t.Error("no stall spans captured on a profiled run")
	}
}

// TestReportV3FieldsStable guards v3 consumers across the later bumps: the
// "profile" and "trace_dropped" keys are unchanged and the v4 addition is
// the separate "critical_path" section whose attribution partitions the
// run's cycles exactly and passes the profile-ledger cross-check.
func TestReportV3FieldsStable(t *testing.T) {
	_, res, rep := runWCSReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"profile", "critical_path"} {
		if _, ok := raw[f]; !ok {
			t.Errorf("field %q missing from v%d report", f, ReportSchemaVersion)
		}
	}
	var version int
	if err := json.Unmarshal(raw["schema_version"], &version); err != nil || version != ReportSchemaVersion {
		t.Errorf("schema_version = %d (%v), want %d", version, err, ReportSchemaVersion)
	}
	cp := rep.CriticalPath
	if cp == nil {
		t.Fatal("critical_path missing from a spans-enabled report")
	}
	if cp.CrossCheckError != "" {
		t.Fatalf("critical path failed the profile-ledger cross-check: %s", cp.CrossCheckError)
	}
	if cp.TotalCycles != res.Cycles || cp.CyclesAttributed() != res.Cycles {
		t.Fatalf("critical path attributes %d of %d cycles (reports %d total)",
			cp.CyclesAttributed(), res.Cycles, cp.TotalCycles)
	}
	if len(cp.TopTransactions) == 0 {
		t.Error("no top blocking transactions on a contended WCS run")
	}
}

// TestReportV4FieldsStable guards v4 consumers across the v5 bump: every
// v1–v4 key is byte-stable (present under its old name), and the v5
// additions are the separate "cohorts" and "manifest" sections — the cohort
// partition conserved against the run's cycle count and the manifest carrying
// exactly what runWCSReport pinned.
func TestReportV4FieldsStable(t *testing.T) {
	_, res, rep := runWCSReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	v4Fields := []string{
		"schema", "schema_version", "scenario", "solution", "platform",
		"effective_protocol", "cycles", "bus_cycles", "stop_reason",
		"deadlocked", "coherent", "bus", "cores", "metrics", "audit",
		"profile", "critical_path",
	}
	for _, f := range v4Fields {
		if _, ok := raw[f]; !ok {
			t.Errorf("v4 field %q missing from v%d report", f, ReportSchemaVersion)
		}
	}
	for _, f := range []string{"cohorts", "manifest"} {
		if _, ok := raw[f]; !ok {
			t.Errorf("v5 field %q missing", f)
		}
	}
	co := rep.Cohorts
	if co == nil {
		t.Fatal("cohorts missing from a spans-enabled report")
	}
	if !co.Conserved() {
		t.Fatalf("cohort partition not conserved: %+v", co)
	}
	if co.TotalCycles != res.Cycles {
		t.Fatalf("cohorts partition %d cycles, run took %d", co.TotalCycles, res.Cycles)
	}
	if rep.CriticalPath != nil && co.Anchor != rep.CriticalPath.Core {
		t.Fatalf("cohort anchor %d != critical-path core %d", co.Anchor, rep.CriticalPath.Core)
	}
	if len(co.Cohorts) == 0 {
		t.Error("no cohorts on a contended WCS run")
	}
	m := rep.Manifest
	if m == nil || m.SchemaVersion != ReportSchemaVersion || m.GoVersion != "go0.0-golden" {
		t.Fatalf("manifest not stamped as pinned: %+v", m)
	}
	// The written report must read back through ReadReport.
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadReport rejected its own output: %v", err)
	}
	if back.Cycles != res.Cycles || !back.Cohorts.Conserved() {
		t.Fatalf("round-tripped report drifted: %d cycles, conserved=%v", back.Cycles, back.Cohorts.Conserved())
	}
	if diff := m.Diff(back.Manifest); len(diff) != 0 {
		t.Fatalf("manifest drifted through the round trip: %v", diff)
	}
}

// TestReportV5FieldsStable guards v5 consumers across the v6 bump: every
// v1–v5 key is present under its old name, and the v6 addition is the
// separate "sharing" section, conserved against its own event-stream totals
// with every touched line in exactly one class.
func TestReportV5FieldsStable(t *testing.T) {
	_, res, rep := runWCSReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	v5Fields := []string{
		"schema", "schema_version", "scenario", "solution", "platform",
		"effective_protocol", "cycles", "bus_cycles", "stop_reason",
		"deadlocked", "coherent", "bus", "cores", "metrics", "audit",
		"profile", "critical_path", "cohorts", "manifest",
	}
	for _, f := range v5Fields {
		if _, ok := raw[f]; !ok {
			t.Errorf("v5 field %q missing from v%d report", f, ReportSchemaVersion)
		}
	}
	if _, ok := raw["sharing"]; !ok {
		t.Error("v6 sharing section missing from a sharing-enabled report")
	}
	s := rep.Sharing
	if s == nil {
		t.Fatal("sharing summary missing from a sharing-enabled report")
	}
	if bad := s.Conserved(); bad != "" {
		t.Fatalf("sharing conservation violated: %s", bad)
	}
	if s.Masters != len(rep.Cores) {
		t.Fatalf("sharing tracks %d masters, platform has %d cores", s.Masters, len(rep.Cores))
	}
	if len(s.Lines) == 0 || len(s.Matrix) == 0 || len(s.Heatmap.Windows) == 0 {
		t.Fatalf("sharing summary empty on a contended WCS run: %d lines, %d cells, %d windows",
			len(s.Lines), len(s.Matrix), len(s.Heatmap.Windows))
	}
	if res.Sharing == nil || res.Sharing.Totals != s.Totals {
		t.Fatal("Result.Sharing and report sharing disagree")
	}
	// The scheduler telemetry (same PR) rides the metrics section: an
	// event-scheduled metrics run must carry the sched.* counters.
	if rep.Metrics != nil {
		if _, ok := rep.Metrics.Counters["sched.wakes"]; !ok {
			t.Errorf("sched.wakes counter missing from metrics: %v", rep.Metrics.Counters)
		}
		if _, ok := rep.Metrics.Histograms["sched.skip.cycles"]; !ok {
			t.Error("sched.skip.cycles histogram missing from metrics")
		}
	}
}

// TestReadReportRejects covers ReadReport's validation: wrong schema name and
// out-of-range schema versions fail; every historical version is accepted.
func TestReadReportRejects(t *testing.T) {
	enc := func(schema string, version int) string {
		b, _ := json.Marshal(Report{Schema: schema, SchemaVersion: version})
		return string(b)
	}
	if _, err := ReadReport(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadReport(bytes.NewReader([]byte(enc("hetcc.other", 5)))); err == nil {
		t.Error("wrong schema name accepted")
	}
	if _, err := ReadReport(bytes.NewReader([]byte(enc(ReportSchema, ReportSchemaVersion+1)))); err == nil {
		t.Error("future schema version accepted")
	}
	if _, err := ReadReport(bytes.NewReader([]byte(enc(ReportSchema, 0)))); err == nil {
		t.Error("schema version 0 accepted")
	}
	for v := 1; v <= ReportSchemaVersion; v++ {
		if _, err := ReadReport(bytes.NewReader([]byte(enc(ReportSchema, v)))); err != nil {
			t.Errorf("historical schema version %d rejected: %v", v, err)
		}
	}
}

// TestReportAuditContent checks the audit section of the report: zero
// violations on the proposed solution, per-core reachable state sets within
// the MEI reduction, and populated per-line timelines.
func TestReportAuditContent(t *testing.T) {
	_, res, rep := runWCSReport(t)
	if rep.Audit == nil {
		t.Fatal("audit summary missing from report")
	}
	a := rep.Audit
	if a.ViolationCount != 0 || len(a.Violations) != 0 {
		t.Fatalf("invariant violations on the proposed solution: %d %v", a.ViolationCount, a.Violations)
	}
	if len(a.Reachable) != 2 {
		t.Fatalf("reachable sets for %d cores, want 2", len(a.Reachable))
	}
	for core, states := range a.Reachable {
		for _, s := range states {
			if s == "S" || s == "O" {
				t.Errorf("core %d reached state %s under MEI reduction", core, s)
			}
		}
	}
	if a.TransitionCount == 0 || len(a.Lines) == 0 {
		t.Fatalf("no per-line timelines accumulated: %d transitions, %d lines", a.TransitionCount, len(a.Lines))
	}
	if len(a.Events) == 0 || a.Events["state-change"] == 0 {
		t.Fatalf("events-by-kind not populated: %v", a.Events)
	}
	if res.Audit == nil || res.Audit.ViolationCount != a.ViolationCount {
		t.Fatal("Result.Audit and report audit disagree")
	}
}

// TestReportMetricsContent checks the acceptance-criteria content: the three
// headline histograms populated with non-zero quantiles, and a multi-window
// bus-utilization series.
func TestReportMetricsContent(t *testing.T) {
	_, res, rep := runWCSReport(t)
	if rep.Metrics == nil {
		t.Fatal("metrics missing from report")
	}
	for _, name := range []string{"bus.grant.wait.buscycles", "cache.miss.buscycles", "lock.acquire.enginecycles"} {
		h, ok := rep.Metrics.Histograms[name]
		if !ok {
			t.Fatalf("histogram %q missing (have %v)", name, rep.Metrics.Histograms)
		}
		if h.Count == 0 || h.P50 <= 0 || h.P95 <= 0 || h.P99 <= 0 {
			t.Fatalf("histogram %q not populated: %+v", name, h)
		}
	}
	util, ok := rep.Metrics.Series["bus.utilization"]
	if !ok || len(util.Points) < 2 {
		t.Fatalf("bus.utilization has %d windows, want >= 2", len(util.Points))
	}
	for _, pt := range util.Points {
		if pt.Value < 0 || pt.Value > 1.5 {
			t.Fatalf("utilization %v out of range at cycle %d", pt.Value, pt.Cycle)
		}
	}
	if len(res.Tenures) == 0 {
		t.Fatal("no bus tenures captured")
	}
	last := res.Tenures[len(res.Tenures)-1]
	if last.End <= last.Start || last.End > res.Cycles {
		t.Fatalf("tenure span out of range: %+v (run %d cycles)", last, res.Cycles)
	}
}
