package platform

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Manifest is the provenance block of a run report (schema v5) and of bench
// files: what produced the numbers — toolchain, module revision, schema
// version, CLI flags and workload seed — so a differential comparison can
// state *what* differed between two runs before explaining *why* the cycles
// moved.  Deliberately free of wall-clock timestamps and hostnames: two runs
// of the same binary with the same flags produce identical manifests.
//
// Wall-clock-independent does not mean machine-independent: GoVersion and
// ModuleVersion vary across toolchains, so the batch runner (whose report
// digests are compared byte-for-byte across machines, see
// testdata/batch_digests_v5.json) stamps only the deterministic fields, and
// cmd/bench keeps the manifest outside its tamper digest like ns/op.
type Manifest struct {
	// SchemaVersion echoes the report schema the producer wrote.
	SchemaVersion int `json:"schema_version"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version,omitempty"`
	// Module and ModuleVersion identify the producing module build
	// (debug.ReadBuildInfo; ModuleVersion is "(devel)" for working-tree
	// builds).
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	// Flags records the producer's command-line arguments.
	Flags []string `json:"flags,omitempty"`
	// Seed is the workload seed (0 = the deterministic default stream).
	Seed uint64 `json:"seed,omitempty"`
}

// NewManifest builds a full provenance manifest for the current binary:
// schema version, Go toolchain, module identity, the given CLI flags and
// workload seed.
func NewManifest(flags []string, seed uint64) *Manifest {
	m := &Manifest{
		SchemaVersion: ReportSchemaVersion,
		GoVersion:     runtime.Version(),
		Flags:         flags,
		Seed:          seed,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Module = bi.Main.Path
		m.ModuleVersion = bi.Main.Version
	}
	return m
}

// Diff lists the fields on which m and other disagree as human-readable
// "field: a -> b" lines (empty when equivalent).  Either side may be nil —
// a run recorded before manifests existed — which reports as "(none)".
func (m *Manifest) Diff(other *Manifest) []string {
	var out []string
	line := func(field, a, b string) {
		if a == "" {
			a = "(none)"
		}
		if b == "" {
			b = "(none)"
		}
		if a != b {
			out = append(out, fmt.Sprintf("%s: %s -> %s", field, a, b))
		}
	}
	if m == nil && other == nil {
		return nil
	}
	if m == nil {
		return []string{"manifest: (none) -> recorded"}
	}
	if other == nil {
		return []string{"manifest: recorded -> (none)"}
	}
	a, b := *m, *other
	if a.SchemaVersion != b.SchemaVersion {
		line("schema version", fmt.Sprint(a.SchemaVersion), fmt.Sprint(b.SchemaVersion))
	}
	line("go version", a.GoVersion, b.GoVersion)
	line("module", a.Module, b.Module)
	line("module version", a.ModuleVersion, b.ModuleVersion)
	if fmt.Sprint(a.Flags) != fmt.Sprint(b.Flags) {
		line("flags", fmt.Sprint(a.Flags), fmt.Sprint(b.Flags))
	}
	if a.Seed != b.Seed {
		line("seed", fmt.Sprint(a.Seed), fmt.Sprint(b.Seed))
	}
	return out
}

// SameToolchain reports whether the two manifests (either possibly nil) name
// the same Go toolchain and module version — the comparability precondition
// bench diff/trend warn about.
func (m *Manifest) SameToolchain(other *Manifest) bool {
	if m == nil || other == nil {
		return true // nothing recorded, nothing to contradict
	}
	return m.GoVersion == other.GoVersion && m.ModuleVersion == other.ModuleVersion
}
