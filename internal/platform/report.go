package platform

import (
	"encoding/json"
	"fmt"
	"io"

	"hetcc/internal/audit"
	"hetcc/internal/bus"
	"hetcc/internal/cache"
	"hetcc/internal/cpu"
	"hetcc/internal/metrics"
	"hetcc/internal/profile"
	"hetcc/internal/sharing"
	"hetcc/internal/snooplogic"
	"hetcc/internal/span"
)

// ReportSchema identifies the machine-readable run-report format; consumers
// should check it (and ReportSchemaVersion) before interpreting the rest.
const ReportSchema = "hetcc.run-report"

// ReportSchemaVersion is bumped on any incompatible change to Report.
// v2 added the "audit" section (invariant auditor summary); v3 added the
// "profile" section (per-core stall-cause ledger) and "trace_dropped"; v4
// added the "critical_path" section (causal span analysis, package span); v5
// added the "manifest" provenance block and the "cohorts" section (the
// per-(master, op, line) transaction-cohort partition that differential run
// analysis, package delta, aligns across runs); v6 added the "sharing"
// section (per-line sharing-pattern classification, the master communication
// matrix and the windowed address heatmap, package sharing).  Every v1–v5
// field is unchanged, so older consumers keep working.
const ReportSchemaVersion = 6

// Report is the machine-readable summary of one simulation run, written by
// the -report flag of cmd/hetccsim.  It is deliberately free of wall-clock
// timestamps so identical runs produce byte-identical reports (golden-file
// tests rely on this).
type Report struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`

	// Scenario and Solution record what was run.
	Scenario string `json:"scenario,omitempty"`
	Solution string `json:"solution"`
	// Platform lists the processor models in bus-priority order.
	Platform []string `json:"platform"`
	// EffectiveProtocol is the reduced protocol the system behaves as.
	EffectiveProtocol string `json:"effective_protocol"`

	// Cycles is the engine cycle count at termination; BusCycles the bus
	// clock's count.
	Cycles     uint64 `json:"cycles"`
	BusCycles  uint64 `json:"bus_cycles"`
	StopReason string `json:"stop_reason"`
	Error      string `json:"error,omitempty"`
	Deadlocked bool   `json:"deadlocked"`
	Coherent   bool   `json:"coherent"`

	Violations []string `json:"violations,omitempty"`
	Races      []string `json:"races,omitempty"`

	Bus   bus.Stats    `json:"bus"`
	Cores []CoreReport `json:"cores"`

	// Metrics is the registry snapshot: counters, gauges, histogram
	// summaries (p50/p95/p99) and the sampled time series.  Nil when the
	// run had metrics disabled.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`

	// Audit is the invariant auditor's summary (schema v2).  Nil when the
	// run had auditing disabled.
	Audit *audit.Summary `json:"audit,omitempty"`

	// Profile is the per-core stall-cause ledger summary (schema v3).  Nil
	// when the run had profiling disabled.  Per core, the causes sum to the
	// core's stall_cycles exactly (the conservation invariant).
	Profile *profile.Summary `json:"profile,omitempty"`
	// TraceDropped counts events evicted from the bounded trace ring
	// (schema v3).  Non-zero means trace-derived views (Chrome-trace log
	// lane, -trace output) reflect only the retained tail of the run.
	TraceDropped uint64 `json:"trace_dropped,omitempty"`

	// CriticalPath is the causal-span critical-path analysis (schema v4):
	// the last-retiring core's timeline attributed to (component, cause)
	// pairs, summing to Cycles exactly and cross-checked against the
	// profile ledger.  Nil when the run had spans disabled.
	CriticalPath *span.CriticalPath `json:"critical_path,omitempty"`

	// Cohorts is the transaction-cohort partition of the critical core's
	// timeline (schema v5): execute + unlinked + per-(master, op, line)
	// blocked cycles sum to Cycles exactly, so two reports subtract into an
	// exact per-cohort delta.  Nil when the run had spans disabled.
	Cohorts *span.CohortSummary `json:"cohorts,omitempty"`

	// Sharing is the sharing-pattern summary (schema v6): per-line lifetime
	// classifications with false-sharing candidates, the master
	// communication matrix and the windowed address heatmap.  Nil when the
	// run had the sharing collector disabled.
	Sharing *sharing.Summary `json:"sharing,omitempty"`

	// Manifest records the run's provenance (schema v5): toolchain, module
	// build, CLI flags and seed.  Nil when the producer stamped none (the
	// batch runner stamps only deterministic fields so its digests stay
	// machine-independent).
	Manifest *Manifest `json:"manifest,omitempty"`
}

// CoreReport is the per-processor slice of a Report.
type CoreReport struct {
	Name               string            `json:"name"`
	CPU                cpu.Stats         `json:"cpu"`
	Cache              cache.Stats       `json:"cache"`
	Snoop              *snooplogic.Stats `json:"snoop,omitempty"`
	WrapperConversions uint64            `json:"wrapper_conversions"`
}

// Report builds the machine-readable summary of res.  scenario labels the
// workload (may be empty).
func (p *Platform) Report(res Result, scenario string) Report {
	rep := Report{
		Schema:            ReportSchema,
		SchemaVersion:     ReportSchemaVersion,
		Scenario:          scenario,
		Solution:          p.Config.Solution.String(),
		EffectiveProtocol: p.Integration.Effective.String(),
		Cycles:            res.Cycles,
		BusCycles:         p.Bus.Cycle(),
		StopReason:        res.StopReason,
		Deadlocked:        res.Deadlocked(),
		Coherent:          res.Coherent(),
		Bus:               res.Bus,
		Metrics:           res.Metrics,
		Audit:             res.Audit,
		Profile:           res.Profile,
		TraceDropped:      p.Log.Dropped(),
		CriticalPath:      res.CriticalPath,
		Cohorts:           res.Cohorts,
		Sharing:           res.Sharing,
		Manifest:          p.Manifest,
	}
	if res.Err != nil {
		rep.Error = res.Err.Error()
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations, v.String())
	}
	for _, r := range res.Races {
		rep.Races = append(rep.Races, r.String())
	}
	for i, spec := range p.Config.Processors {
		cr := CoreReport{Name: spec.Model}
		if i < len(res.CPU) {
			cr.CPU = res.CPU[i]
		}
		if i < len(res.Cache) {
			cr.Cache = res.Cache[i]
		}
		if p.SnoopLogics[i] != nil && i < len(res.Snoop) {
			s := res.Snoop[i]
			cr.Snoop = &s
		}
		if i < len(res.WrapperConv) {
			cr.WrapperConversions = res.WrapperConv[i]
		}
		rep.Platform = append(rep.Platform, spec.Model)
		rep.Cores = append(rep.Cores, cr)
	}
	return rep
}

// WriteReport JSON-encodes rep to w, indented for human inspection.
func WriteReport(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// ReadReport decodes a run report written by WriteReport, accepting any
// schema version up to the current one (older reports simply lack the later
// sections), so a freshly built binary can explain a delta against a
// baseline recorded before the latest bump.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return rep, fmt.Errorf("report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return rep, fmt.Errorf("report: schema %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.SchemaVersion < 1 || rep.SchemaVersion > ReportSchemaVersion {
		return rep, fmt.Errorf("report: schema version %d outside the supported range 1..%d", rep.SchemaVersion, ReportSchemaVersion)
	}
	return rep, nil
}
