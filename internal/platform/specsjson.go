package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hetcc/internal/cache"
	"hetcc/internal/coherence"
)

// specJSON is the on-disk description of one processor for
// SpecsFromJSON.  Zero fields take the defaults noted per field.
type specJSON struct {
	Model    string `json:"model"`
	Protocol string `json:"protocol"` // MEI, MSI, MESI, MOESI, Dragon, none
	ClockDiv uint64 `json:"clockDiv"` // default 1 (100 MHz)
	CacheKB  int    `json:"cacheKB"`  // default 16
	Ways     int    `json:"ways"`     // default 4
	// LineBytes defaults to 32 and must match across processors.
	LineBytes          int  `json:"lineBytes"`
	InterruptResponse  int  `json:"interruptResponse"` // None-protocol cores
	ISREntry           int  `json:"isrEntry"`
	ISRExit            int  `json:"isrExit"`
	CacheOpOverhead    int  `json:"cacheOpOverhead"` // default 12
	AccessOverhead     int  `json:"accessOverhead"`  // default 3
	WriteThroughShared bool `json:"writeThroughShared"`
}

type platformJSON struct {
	Processors []specJSON `json:"processors"`
}

// ParseProtocol maps a protocol name to its coherence.Kind ("none" marks a
// coherence-less processor).
func ParseProtocol(name string) (coherence.Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "MEI":
		return coherence.MEI, nil
	case "MSI":
		return coherence.MSI, nil
	case "MESI":
		return coherence.MESI, nil
	case "MOESI":
		return coherence.MOESI, nil
	case "DRAGON":
		return coherence.Dragon, nil
	case "NONE", "":
		return coherence.None, nil
	default:
		return 0, fmt.Errorf("platform: unknown protocol %q", name)
	}
}

// SpecsFromJSON reads a platform definition like
//
//	{"processors": [
//	  {"model": "PowerPC755", "protocol": "MEI", "clockDiv": 1, "cacheKB": 32, "ways": 8},
//	  {"model": "ARM920T", "protocol": "none", "clockDiv": 2, "interruptResponse": 4, "isrEntry": 4, "isrExit": 4}
//	]}
//
// applying the documented defaults to omitted fields.
func SpecsFromJSON(r io.Reader) ([]ProcessorSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg platformJSON
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("platform: parsing config: %w", err)
	}
	if len(cfg.Processors) == 0 {
		return nil, fmt.Errorf("platform: config defines no processors")
	}
	var specs []ProcessorSpec
	for i, sj := range cfg.Processors {
		kind, err := ParseProtocol(sj.Protocol)
		if err != nil {
			return nil, fmt.Errorf("platform: processor %d: %w", i, err)
		}
		spec := ProcessorSpec{
			Model:              sj.Model,
			Protocol:           kind,
			ClockDiv:           sj.ClockDiv,
			InterruptResponse:  sj.InterruptResponse,
			ISREntry:           sj.ISREntry,
			ISRExit:            sj.ISRExit,
			CacheOpOverhead:    sj.CacheOpOverhead,
			AccessOverhead:     sj.AccessOverhead,
			WriteThroughShared: sj.WriteThroughShared,
		}
		if spec.Model == "" {
			spec.Model = fmt.Sprintf("P%d-%v", i, kind)
		}
		if spec.ClockDiv == 0 {
			spec.ClockDiv = 1
		}
		if sj.CacheKB == 0 {
			sj.CacheKB = 16
		}
		if sj.Ways == 0 {
			sj.Ways = 4
		}
		if sj.LineBytes == 0 {
			sj.LineBytes = 32
		}
		if spec.CacheOpOverhead == 0 {
			spec.CacheOpOverhead = 12
		}
		if spec.AccessOverhead == 0 {
			spec.AccessOverhead = 3
		}
		spec.Cache = cache.Config{SizeBytes: sj.CacheKB * 1024, Ways: sj.Ways, LineBytes: sj.LineBytes}
		if err := spec.Cache.Validate(); err != nil {
			return nil, fmt.Errorf("platform: processor %d (%s): %w", i, spec.Model, err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
