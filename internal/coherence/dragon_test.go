package coherence

import "testing"

func TestDragonIdentity(t *testing.T) {
	p := New(Dragon)
	if p.Kind() != Dragon || !p.UpdateBased() || !Dragon.UpdateBased() {
		t.Fatal("identity flags wrong")
	}
	for _, k := range []Kind{MEI, MSI, MESI, MOESI} {
		if k.UpdateBased() {
			t.Errorf("%v claims update-based", k)
		}
	}
	if !p.CacheToCache() {
		t.Fatal("Dragon supplies Sm/M lines cache-to-cache")
	}
	if Dragon.String() != "Dragon" {
		t.Fatal("name")
	}
}

func TestDragonFillStates(t *testing.T) {
	p := New(Dragon)
	if p.FillStateAfterRead(false) != Exclusive {
		t.Fatal("unshared fill should be E")
	}
	if p.FillStateAfterRead(true) != Shared {
		t.Fatal("shared fill should be Sc")
	}
}

func TestDragonWriteHits(t *testing.T) {
	p := New(Dragon)
	cases := []struct {
		from     State
		needsBus bool
	}{
		{Exclusive, false},
		{Modified, false},
		{Shared, true},
		{Owned, true},
	}
	for _, c := range cases {
		_, op, needsBus, err := p.OnWriteHit(c.from)
		if err != nil {
			t.Fatalf("%v: %v", c.from, err)
		}
		if needsBus != c.needsBus {
			t.Errorf("write hit %v needsBus=%v, want %v", c.from, needsBus, c.needsBus)
		}
		if needsBus && op != BusUpd {
			t.Errorf("write hit %v issues %v, want BusUpd", c.from, op)
		}
	}
}

func TestDragonAfterUpdate(t *testing.T) {
	p := New(Dragon)
	if p.AfterUpdate(true) != Owned {
		t.Fatal("still-shared update should end Sm")
	}
	if p.AfterUpdate(false) != Modified {
		t.Fatal("unshared update should end M")
	}
}

func TestAfterUpdatePanicsOnInvalidationProtocols(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(MESI).AfterUpdate(true)
}

func TestDragonSnoopUpdates(t *testing.T) {
	p := New(Dragon)
	for _, s := range []State{Shared, Owned} {
		out, err := p.OnSnoop(s, BusUpd)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Update || !out.AssertShared {
			t.Errorf("snoop BusUpd in %v: %+v, want update+shared", s, out)
		}
		if out.Next != Shared {
			t.Errorf("snoop BusUpd in %v next %v, want Sc (ownership moves to the updater)", s, out.Next)
		}
	}
}

func TestDragonSnoopReadsNeverInvalidate(t *testing.T) {
	p := New(Dragon)
	for _, s := range []State{Shared, Exclusive, Modified, Owned} {
		out, err := p.OnSnoop(s, BusRd)
		if err != nil {
			t.Fatal(err)
		}
		if out.Next == Invalid {
			t.Errorf("Dragon snoop read invalidated %v", s)
		}
		if !out.AssertShared {
			t.Errorf("Dragon snoop read in %v did not assert shared", s)
		}
	}
	// Dirty states supply the line.
	for _, s := range []State{Modified, Owned} {
		out, _ := p.OnSnoop(s, BusRd)
		if !out.Supply || out.Next != Owned {
			t.Errorf("snoop read in %v: %+v, want supply -> Sm", s, out)
		}
	}
}

func TestDragonUpdatePropagatesThroughBusOpString(t *testing.T) {
	if BusUpd.String() != "BusUpd" {
		t.Fatal("BusUpd stringer")
	}
}
