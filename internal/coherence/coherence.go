// Package coherence implements the four invalidation-based cache coherence
// protocols discussed in the paper — MEI (PowerPC755), MSI, MESI (Intel486,
// Pentium class), and MOESI (UltraSPARC / AMD64) — as explicit state
// machines with separate processor-side and snoop-side transition tables.
//
// The tables follow the classical formulations in Culler/Singh/Gupta
// (paper ref. [12]) and the paper's Section 2.  Cache-to-cache sharing
// (owner-supplied data) is implemented only for MOESI, matching the paper's
// assumption that "cache-to-cache sharing is implemented only in processors
// supporting the MOESI protocol".
package coherence

import "fmt"

// State is a cache-line coherence state.
type State uint8

// The five classic states.  Each protocol uses a subset.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	Owned
)

// String returns the one-letter conventional name of the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the line holds data (any state but Invalid).
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the line holds data newer than memory.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Kind identifies a coherence protocol.
type Kind uint8

// Protocol kinds.  None marks a processor with no coherence hardware at all
// (the ARM920T in the paper's case study).
const (
	None Kind = iota
	MEI
	MSI
	MESI
	MOESI
)

// String returns the protocol's conventional name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case MEI:
		return "MEI"
	case MSI:
		return "MSI"
	case MESI:
		return "MESI"
	case MOESI:
		return "MOESI"
	case Dragon:
		return "Dragon"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// BusOp is a coherence-relevant bus operation observed by snoopers.
type BusOp uint8

const (
	// BusRd is a read (line fill) by another master.
	BusRd BusOp = iota
	// BusRdX is a read-for-ownership (write miss) by another master.  The
	// paper's wrappers convert observed BusRd into BusRdX ("read to write
	// conversion") to eliminate the Shared and Owned states.
	BusRdX
	// BusUpgr is an ownership upgrade (write hit on a Shared line) by
	// another master; no data transfer.
	BusUpgr
)

// String returns the operation's conventional name.
func (o BusOp) String() string {
	switch o {
	case BusRd:
		return "BusRd"
	case BusRdX:
		return "BusRdX"
	case BusUpgr:
		return "BusUpgr"
	case BusUpd:
		return "BusUpd"
	default:
		return fmt.Sprintf("BusOp(%d)", uint8(o))
	}
}

// SnoopOutcome is the result of presenting a bus operation to a snooping
// cache controller that holds the line.
type SnoopOutcome struct {
	// Next is the line's state after the snoop.
	Next State
	// AssertShared asserts the bus shared signal (the snooper retains a
	// valid copy, so the requester must allocate Shared).
	AssertShared bool
	// Flush writes the (dirty) line back to memory before the requester's
	// access completes.  On the bus this is the ARTRY/HITM/BOFF retry
	// sequence of the paper's Section 3.
	Flush bool
	// Supply provides the line directly to the requester (cache-to-cache
	// sharing).  Only MOESI and Dragon set this.
	Supply bool
	// Update patches the broadcast word into the snooper's copy in place
	// (Dragon bus updates only).
	Update bool
}

type writeHitEntry struct {
	next State
	op   BusOp
	bus  bool
}

// Protocol is an immutable description of one coherence protocol's state
// machine.  Obtain instances with New.
type Protocol struct {
	kind     Kind
	states   []State
	fillRead func(shared bool) State
	writeHit map[State]writeHitEntry
	snoop    map[State]map[BusOp]SnoopOutcome
}

// New returns the state machine for protocol k.  It panics on None or an
// unknown kind: callers must special-case coherence-less processors.
func New(k Kind) *Protocol {
	switch k {
	case MEI:
		return meiProtocol
	case MSI:
		return msiProtocol
	case MESI:
		return mesiProtocol
	case MOESI:
		return moesiProtocol
	case Dragon:
		return dragonProtocol
	default:
		panic(fmt.Sprintf("coherence: no state machine for protocol %v", k))
	}
}

// Kind returns the protocol identifier.
func (p *Protocol) Kind() Kind { return p.kind }

// States returns the states the protocol can use, including Invalid.
func (p *Protocol) States() []State {
	out := make([]State, len(p.states))
	copy(out, p.states)
	return out
}

// Has reports whether s is a state of this protocol.
func (p *Protocol) Has(s State) bool {
	for _, st := range p.states {
		if st == s {
			return true
		}
	}
	return false
}

// CacheToCache reports whether the protocol supplies data cache-to-cache.
func (p *Protocol) CacheToCache() bool { return p.kind == MOESI || p.kind == Dragon }

// FillStateAfterRead returns the state a line allocates into after a read
// miss completes, given the shared signal sampled on the bus.
func (p *Protocol) FillStateAfterRead(shared bool) State {
	return p.fillRead(shared)
}

// FillStateAfterWrite returns the state after a write-miss fill (always
// Modified in every invalidation protocol).
func (p *Protocol) FillStateAfterWrite() State { return Modified }

// ReadMissOp returns the bus operation issued on a read miss.
func (p *Protocol) ReadMissOp() BusOp { return BusRd }

// WriteMissOp returns the bus operation issued on a write miss.
func (p *Protocol) WriteMissOp() BusOp { return BusRdX }

// OnReadHit returns the state after a processor read hit (always unchanged
// in invalidation protocols).
func (p *Protocol) OnReadHit(s State) (State, error) {
	if !p.Has(s) || s == Invalid {
		return s, fmt.Errorf("coherence: %v read hit in state %v", p.kind, s)
	}
	return s, nil
}

// OnWriteHit returns the state after a processor write hit and the bus
// operation (if any) required to gain ownership.
func (p *Protocol) OnWriteHit(s State) (next State, op BusOp, needsBus bool, err error) {
	e, ok := p.writeHit[s]
	if !ok {
		return s, 0, false, fmt.Errorf("coherence: %v write hit in state %v", p.kind, s)
	}
	return e.next, e.op, e.bus, nil
}

// OnSnoop returns the outcome of observing op while holding the line in
// state s.  Snooping in Invalid is legal and is a no-op.
func (p *Protocol) OnSnoop(s State, op BusOp) (SnoopOutcome, error) {
	if s == Invalid {
		return SnoopOutcome{Next: Invalid}, nil
	}
	row, ok := p.snoop[s]
	if !ok {
		return SnoopOutcome{}, fmt.Errorf("coherence: %v snoop in foreign state %v", p.kind, s)
	}
	out, ok := row[op]
	if !ok {
		return SnoopOutcome{}, fmt.Errorf("coherence: %v has no snoop transition for %v in %v", p.kind, op, s)
	}
	return out, nil
}

var meiProtocol = &Protocol{
	kind:   MEI,
	states: []State{Invalid, Exclusive, Modified},
	// MEI has no Shared state: a read miss always allocates Exclusive and
	// the shared signal is ignored (the PowerPC755 has no SHD input).
	fillRead: func(bool) State { return Exclusive },
	writeHit: map[State]writeHitEntry{
		Exclusive: {next: Modified},
		Modified:  {next: Modified},
	},
	snoop: map[State]map[BusOp]SnoopOutcome{
		// Without a Shared state any snoop hit must relinquish the line.
		Exclusive: {
			BusRd:   {Next: Invalid},
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
		},
		Modified: {
			BusRd:   {Next: Invalid, Flush: true},
			BusRdX:  {Next: Invalid, Flush: true},
			BusUpgr: {Next: Invalid, Flush: true},
		},
	},
}

var msiProtocol = &Protocol{
	kind:   MSI,
	states: []State{Invalid, Shared, Modified},
	// MSI has no Exclusive state: a read miss always allocates Shared.
	fillRead: func(bool) State { return Shared },
	writeHit: map[State]writeHitEntry{
		Shared:   {next: Modified, op: BusUpgr, bus: true},
		Modified: {next: Modified},
	},
	snoop: map[State]map[BusOp]SnoopOutcome{
		Shared: {
			BusRd:   {Next: Shared, AssertShared: true},
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
		},
		Modified: {
			BusRd:   {Next: Shared, Flush: true, AssertShared: true},
			BusRdX:  {Next: Invalid, Flush: true},
			BusUpgr: {Next: Invalid, Flush: true},
		},
	},
}

var mesiProtocol = &Protocol{
	kind:   MESI,
	states: []State{Invalid, Shared, Exclusive, Modified},
	fillRead: func(shared bool) State {
		if shared {
			return Shared
		}
		return Exclusive
	},
	writeHit: map[State]writeHitEntry{
		Shared:    {next: Modified, op: BusUpgr, bus: true},
		Exclusive: {next: Modified},
		Modified:  {next: Modified},
	},
	snoop: map[State]map[BusOp]SnoopOutcome{
		Shared: {
			BusRd:   {Next: Shared, AssertShared: true},
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
		},
		Exclusive: {
			BusRd:   {Next: Shared, AssertShared: true},
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
		},
		Modified: {
			BusRd:   {Next: Shared, Flush: true, AssertShared: true},
			BusRdX:  {Next: Invalid, Flush: true},
			BusUpgr: {Next: Invalid, Flush: true},
		},
	},
}

var moesiProtocol = &Protocol{
	kind:   MOESI,
	states: []State{Invalid, Shared, Exclusive, Modified, Owned},
	fillRead: func(shared bool) State {
		if shared {
			return Shared
		}
		return Exclusive
	},
	writeHit: map[State]writeHitEntry{
		Shared:    {next: Modified, op: BusUpgr, bus: true},
		Owned:     {next: Modified, op: BusUpgr, bus: true},
		Exclusive: {next: Modified},
		Modified:  {next: Modified},
	},
	snoop: map[State]map[BusOp]SnoopOutcome{
		Shared: {
			BusRd:   {Next: Shared, AssertShared: true},
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
		},
		Exclusive: {
			BusRd:   {Next: Shared, AssertShared: true},
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
		},
		// M->O on a snooped read, with the owner supplying the data
		// cache-to-cache instead of flushing to memory.
		Modified: {
			BusRd:   {Next: Owned, AssertShared: true, Supply: true},
			BusRdX:  {Next: Invalid, Supply: true},
			BusUpgr: {Next: Invalid, Flush: true},
		},
		Owned: {
			BusRd:   {Next: Owned, AssertShared: true, Supply: true},
			BusRdX:  {Next: Invalid, Supply: true},
			BusUpgr: {Next: Invalid},
		},
	},
}
