// Dragon — the update-based protocol of paper reference [3] (Xerox PARC's
// Dragon computer).  The paper's integration method covers only
// invalidation-based protocols ("invalidation-based strategies have been
// found to be more robust and are therefore provided as the default
// protocol by most vendors"); Dragon is implemented here as the contrasting
// baseline class: homogeneous Dragon systems run natively, and core.Reduce
// rejects any mix containing it, exactly matching the paper's scope.
//
// State mapping onto the shared State enum:
//
//	Exclusive = E  (exclusive clean)
//	Shared    = Sc (shared clean)
//	Owned     = Sm (shared modified — this cache owns the dirty line)
//	Modified  = M  (exclusive modified)
//
// Writes to shared lines broadcast the word on the bus (BusUpd); sharers
// patch their copies in place instead of invalidating.  Memory is updated
// only when an Sm/M line is written back.
package coherence

import "fmt"

// BusUpd is the Dragon bus update: a single-word broadcast that sharers
// apply in place.  Declared alongside the invalidation ops so snoop tables
// share one BusOp space.
const BusUpd BusOp = 3

// Dragon is the protocol kind for the update-based Dragon protocol.
const Dragon Kind = 5

// UpdateBased reports whether k propagates writes by updating sharers
// rather than invalidating them.
func (k Kind) UpdateBased() bool { return k == Dragon }

// AfterUpdate returns the writer's state after a bus update completes,
// given the sampled shared signal: still shared → Sm (owned), no sharers
// left → M.  Only meaningful for update-based protocols.
func (p *Protocol) AfterUpdate(shared bool) State {
	if !p.kind.UpdateBased() {
		panic(fmt.Sprintf("coherence: AfterUpdate on %v", p.kind))
	}
	if shared {
		return Owned
	}
	return Modified
}

// UpdateBased reports whether the protocol broadcasts updates.
func (p *Protocol) UpdateBased() bool { return p.kind.UpdateBased() }

var dragonProtocol = &Protocol{
	kind:   Dragon,
	states: []State{Invalid, Shared, Exclusive, Modified, Owned},
	fillRead: func(shared bool) State {
		if shared {
			return Shared // Sc
		}
		return Exclusive
	},
	writeHit: map[State]writeHitEntry{
		Exclusive: {next: Modified},
		Modified:  {next: Modified},
		// Sc/Sm writes broadcast the word; the final state (Sm or M)
		// depends on the shared signal sampled during the update, resolved
		// by the controller via AfterUpdate.
		Shared: {next: Owned, op: BusUpd, bus: true},
		Owned:  {next: Owned, op: BusUpd, bus: true},
	},
	snoop: map[State]map[BusOp]SnoopOutcome{
		Exclusive: {
			BusRd: {Next: Shared, AssertShared: true},
			// Invalidation ops can only arrive from a foreign protocol
			// (rejected by core.Reduce); handled defensively.
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
			BusUpd:  {Next: Shared, AssertShared: true, Update: true},
		},
		Shared: { // Sc
			BusRd:   {Next: Shared, AssertShared: true},
			BusRdX:  {Next: Invalid},
			BusUpgr: {Next: Invalid},
			BusUpd:  {Next: Shared, AssertShared: true, Update: true},
		},
		Owned: { // Sm
			BusRd: {Next: Owned, AssertShared: true, Supply: true},
			// Another writer's update takes over ownership: we keep a
			// clean shared copy.
			BusUpd:  {Next: Shared, AssertShared: true, Update: true},
			BusRdX:  {Next: Invalid, Supply: true},
			BusUpgr: {Next: Invalid},
		},
		Modified: {
			BusRd:   {Next: Owned, AssertShared: true, Supply: true},
			BusUpd:  {Next: Shared, AssertShared: true, Update: true},
			BusRdX:  {Next: Invalid, Supply: true},
			BusUpgr: {Next: Invalid, Flush: true},
		},
	},
}
