package coherence

import "fmt"

// Transition is one edge of a protocol state machine, in the conventional
// "event / action" labelling of coherence diagrams.
type Transition struct {
	From   State
	To     State
	Event  string // PrRd, PrWr, BusRd, BusRdX, BusUpgr, BusUpd
	Action string // bus op issued or snoop action taken ("" = none)
}

// Label renders the conventional "event/action" edge label.
func (t Transition) Label() string {
	if t.Action == "" {
		return t.Event
	}
	return t.Event + " / " + t.Action
}

// Transitions enumerates the protocol's full edge set: processor-side
// allocations and write hits plus every snoop-side transition.  Self-loops
// with no action (read hits, snoops that keep the state) are omitted to
// match textbook diagrams.
func (p *Protocol) Transitions() []Transition {
	var out []Transition
	add := func(from, to State, event, action string) {
		if from == to && action == "" {
			return
		}
		out = append(out, Transition{From: from, To: to, Event: event, Action: action})
	}

	// Processor-side: fills from Invalid.
	if p.UpdateBased() {
		add(Invalid, p.fillRead(false), "PrRd(!S)", "BusRd")
		add(Invalid, p.fillRead(true), "PrRd(S)", "BusRd")
		// Update-based write miss: fill then write like a hit.
		add(Invalid, Modified, "PrWr(!S)", "BusRd")
		add(Invalid, p.AfterUpdate(true), "PrWr(S)", "BusRd+BusUpd")
	} else {
		fe, fs := p.fillRead(false), p.fillRead(true)
		if fe == fs {
			add(Invalid, fe, "PrRd", "BusRd")
		} else {
			add(Invalid, fe, "PrRd(!S)", "BusRd")
			add(Invalid, fs, "PrRd(S)", "BusRd")
		}
		add(Invalid, Modified, "PrWr", "BusRdX")
	}

	// Processor-side: write hits.
	for from, e := range p.writeHit {
		action := ""
		if e.bus {
			action = e.op.String()
			if e.op == BusUpd {
				// The post-update state depends on the shared signal.
				add(from, Owned, "PrWr(S)", action)
				add(from, Modified, "PrWr(!S)", action)
				continue
			}
		}
		add(from, e.next, "PrWr", action)
	}

	// Snoop-side.
	for from, row := range p.snoop {
		for op, outc := range row {
			var action string
			switch {
			case outc.Flush:
				action = "flush"
			case outc.Supply:
				action = "supply"
			case outc.Update:
				action = "update"
			}
			if outc.AssertShared {
				if action != "" {
					action += "+shd"
				} else {
					action = "shd"
				}
			}
			add(from, outc.Next, op.String(), action)
		}
	}
	return out
}

// Dot renders the protocol as a Graphviz digraph suitable for inclusion in
// documentation ("dot -Tsvg").
func (p *Protocol) Dot() string {
	out := fmt.Sprintf("digraph %s {\n  rankdir=LR;\n  node [shape=circle];\n", p.kind)
	for _, s := range p.states {
		out += fmt.Sprintf("  %s;\n", s)
	}
	for _, t := range p.Transitions() {
		out += fmt.Sprintf("  %s -> %s [label=%q];\n", t.From, t.To, t.Label())
	}
	return out + "}\n"
}
