package coherence

import (
	"strings"
	"testing"
	"testing/quick"
)

func all() []Kind { return []Kind{MEI, MSI, MESI, MOESI} }

func TestStateStrings(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", Owned: "O"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d renders %q, want %q", s, s.String(), w)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	if Invalid.Valid() {
		t.Error("I counts as valid")
	}
	for _, s := range []State{Shared, Exclusive, Modified, Owned} {
		if !s.Valid() {
			t.Errorf("%v not valid", s)
		}
	}
	for _, s := range []State{Modified, Owned} {
		if !s.Dirty() {
			t.Errorf("%v not dirty", s)
		}
	}
	for _, s := range []State{Invalid, Shared, Exclusive} {
		if s.Dirty() {
			t.Errorf("%v dirty", s)
		}
	}
}

func TestProtocolStateSets(t *testing.T) {
	want := map[Kind][]State{
		MEI:   {Invalid, Exclusive, Modified},
		MSI:   {Invalid, Shared, Modified},
		MESI:  {Invalid, Shared, Exclusive, Modified},
		MOESI: {Invalid, Shared, Exclusive, Modified, Owned},
	}
	for k, states := range want {
		p := New(k)
		if got := p.States(); len(got) != len(states) {
			t.Errorf("%v has %d states, want %d", k, len(got), len(states))
		}
		for _, s := range states {
			if !p.Has(s) {
				t.Errorf("%v missing state %v", k, s)
			}
		}
	}
}

func TestNewPanicsOnNone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(None) did not panic")
		}
	}()
	New(None)
}

func TestFillStates(t *testing.T) {
	// MEI ignores the shared signal; MSI always allocates Shared; MESI and
	// MOESI pick E/S from the shared signal.
	cases := []struct {
		k      Kind
		shared bool
		want   State
	}{
		{MEI, false, Exclusive}, {MEI, true, Exclusive},
		{MSI, false, Shared}, {MSI, true, Shared},
		{MESI, false, Exclusive}, {MESI, true, Shared},
		{MOESI, false, Exclusive}, {MOESI, true, Shared},
	}
	for _, c := range cases {
		if got := New(c.k).FillStateAfterRead(c.shared); got != c.want {
			t.Errorf("%v fill(shared=%v) = %v, want %v", c.k, c.shared, got, c.want)
		}
	}
	for _, k := range all() {
		if got := New(k).FillStateAfterWrite(); got != Modified {
			t.Errorf("%v write fill = %v, want M", k, got)
		}
	}
}

func TestWriteHitTransitions(t *testing.T) {
	cases := []struct {
		k        Kind
		from, to State
		needsBus bool
	}{
		{MEI, Exclusive, Modified, false},
		{MEI, Modified, Modified, false},
		{MSI, Shared, Modified, true},
		{MSI, Modified, Modified, false},
		{MESI, Shared, Modified, true},
		{MESI, Exclusive, Modified, false},
		{MESI, Modified, Modified, false},
		{MOESI, Shared, Modified, true},
		{MOESI, Owned, Modified, true},
		{MOESI, Exclusive, Modified, false},
		{MOESI, Modified, Modified, false},
	}
	for _, c := range cases {
		next, op, needsBus, err := New(c.k).OnWriteHit(c.from)
		if err != nil {
			t.Errorf("%v write hit %v: %v", c.k, c.from, err)
			continue
		}
		if next != c.to || needsBus != c.needsBus {
			t.Errorf("%v write hit %v -> %v bus=%v, want %v bus=%v", c.k, c.from, next, needsBus, c.to, c.needsBus)
		}
		if needsBus && op != BusUpgr {
			t.Errorf("%v write hit %v issues %v, want BusUpgr", c.k, c.from, op)
		}
	}
}

func TestWriteHitInvalidStateErrors(t *testing.T) {
	for _, k := range all() {
		if _, _, _, err := New(k).OnWriteHit(Invalid); err == nil {
			t.Errorf("%v write hit in I did not error", k)
		}
	}
	// States foreign to the protocol must error too.
	if _, _, _, err := New(MEI).OnWriteHit(Shared); err == nil {
		t.Error("MEI write hit in S did not error")
	}
	if _, _, _, err := New(MESI).OnWriteHit(Owned); err == nil {
		t.Error("MESI write hit in O did not error")
	}
}

func TestMEISnoopInvalidatesEverything(t *testing.T) {
	p := New(MEI)
	for _, op := range []BusOp{BusRd, BusRdX, BusUpgr} {
		out, err := p.OnSnoop(Exclusive, op)
		if err != nil {
			t.Fatal(err)
		}
		if out.Next != Invalid || out.Flush {
			t.Errorf("MEI E snoop %v -> %+v, want clean invalidate", op, out)
		}
		out, err = p.OnSnoop(Modified, op)
		if err != nil {
			t.Fatal(err)
		}
		if out.Next != Invalid || !out.Flush {
			t.Errorf("MEI M snoop %v -> %+v, want flush+invalidate", op, out)
		}
	}
}

func TestMSISnoopTable(t *testing.T) {
	p := New(MSI)
	out, _ := p.OnSnoop(Modified, BusRd)
	if out.Next != Shared || !out.Flush || !out.AssertShared {
		t.Errorf("MSI M snoop BusRd -> %+v, want flush to S with shared", out)
	}
	out, _ = p.OnSnoop(Shared, BusRd)
	if out.Next != Shared || !out.AssertShared {
		t.Errorf("MSI S snoop BusRd -> %+v, want stay S with shared", out)
	}
	out, _ = p.OnSnoop(Shared, BusRdX)
	if out.Next != Invalid {
		t.Errorf("MSI S snoop BusRdX -> %+v, want I", out)
	}
	out, _ = p.OnSnoop(Shared, BusUpgr)
	if out.Next != Invalid {
		t.Errorf("MSI S snoop BusUpgr -> %+v, want I", out)
	}
}

func TestMESISnoopTable(t *testing.T) {
	p := New(MESI)
	out, _ := p.OnSnoop(Exclusive, BusRd)
	if out.Next != Shared || !out.AssertShared || out.Flush {
		t.Errorf("MESI E snoop BusRd -> %+v, want E->S shared", out)
	}
	out, _ = p.OnSnoop(Modified, BusRd)
	if out.Next != Shared || !out.Flush {
		t.Errorf("MESI M snoop BusRd -> %+v, want flush M->S", out)
	}
	out, _ = p.OnSnoop(Modified, BusRdX)
	if out.Next != Invalid || !out.Flush {
		t.Errorf("MESI M snoop BusRdX -> %+v, want flush M->I", out)
	}
	// The paper's read-to-write conversion: presenting BusRdX instead of
	// BusRd prevents the E->S transition entirely.
	out, _ = p.OnSnoop(Exclusive, BusRdX)
	if out.Next != Invalid {
		t.Errorf("MESI E snoop BusRdX -> %+v, want I (S eliminated)", out)
	}
}

func TestMOESISnoopTable(t *testing.T) {
	p := New(MOESI)
	out, _ := p.OnSnoop(Modified, BusRd)
	if out.Next != Owned || !out.Supply || !out.AssertShared {
		t.Errorf("MOESI M snoop BusRd -> %+v, want M->O supply", out)
	}
	out, _ = p.OnSnoop(Owned, BusRd)
	if out.Next != Owned || !out.Supply {
		t.Errorf("MOESI O snoop BusRd -> %+v, want stay O supply", out)
	}
	out, _ = p.OnSnoop(Owned, BusRdX)
	if out.Next != Invalid || !out.Supply {
		t.Errorf("MOESI O snoop BusRdX -> %+v, want supply + I", out)
	}
	// Conversion blocks M->O: a converted read looks like BusRdX.
	out, _ = p.OnSnoop(Modified, BusRdX)
	if out.Next == Owned {
		t.Errorf("MOESI M snoop BusRdX entered O despite conversion")
	}
	if !p.CacheToCache() {
		t.Error("MOESI must support cache-to-cache")
	}
	for _, k := range []Kind{MEI, MSI, MESI} {
		if New(k).CacheToCache() {
			t.Errorf("%v claims cache-to-cache", k)
		}
	}
}

func TestSnoopInInvalidIsNoOp(t *testing.T) {
	for _, k := range all() {
		for _, op := range []BusOp{BusRd, BusRdX, BusUpgr} {
			out, err := New(k).OnSnoop(Invalid, op)
			if err != nil {
				t.Fatalf("%v snoop in I: %v", k, err)
			}
			if out.Next != Invalid || out.Flush || out.Supply || out.AssertShared {
				t.Errorf("%v snoop %v in I -> %+v, want no-op", k, op, out)
			}
		}
	}
}

func TestSnoopForeignStateErrors(t *testing.T) {
	if _, err := New(MEI).OnSnoop(Shared, BusRd); err == nil {
		t.Error("MEI snoop in S did not error")
	}
	if _, err := New(MSI).OnSnoop(Owned, BusRd); err == nil {
		t.Error("MSI snoop in O did not error")
	}
}

// TestSnoopClosure: snoop transitions never leave the protocol's state set,
// never assert shared when invalidating on a write, and only dirty states
// flush or supply.
func TestSnoopClosure(t *testing.T) {
	f := func(kRaw, sRaw, opRaw uint8) bool {
		k := all()[int(kRaw)%4]
		p := New(k)
		states := p.States()
		s := states[int(sRaw)%len(states)]
		op := []BusOp{BusRd, BusRdX, BusUpgr}[int(opRaw)%3]
		out, err := p.OnSnoop(s, op)
		if err != nil {
			return false
		}
		if !p.Has(out.Next) {
			return false
		}
		if (out.Flush || out.Supply) && !s.Dirty() {
			return false
		}
		// A snooped write always ends in Invalid.
		if op == BusRdX && out.Next != Invalid {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReadHitNeverChangesState covers OnReadHit across protocols.
func TestReadHitNeverChangesState(t *testing.T) {
	for _, k := range all() {
		p := New(k)
		for _, s := range p.States() {
			if s == Invalid {
				if _, err := p.OnReadHit(s); err == nil {
					t.Errorf("%v read hit in I did not error", k)
				}
				continue
			}
			next, err := p.OnReadHit(s)
			if err != nil || next != s {
				t.Errorf("%v read hit %v -> %v, %v", k, s, next, err)
			}
		}
	}
}

func TestKindAndOpStrings(t *testing.T) {
	if MEI.String() != "MEI" || None.String() != "none" {
		t.Error("kind strings wrong")
	}
	if BusRd.String() != "BusRd" || BusRdX.String() != "BusRdX" || BusUpgr.String() != "BusUpgr" {
		t.Error("bus op strings wrong")
	}
	if !strings.Contains(Kind(42).String(), "42") || !strings.Contains(BusOp(42).String(), "42") {
		t.Error("unknown enums don't include value")
	}
	if !strings.Contains(State(42).String(), "42") {
		t.Error("unknown state doesn't include value")
	}
}

func TestTransitionsCoverProtocol(t *testing.T) {
	for _, k := range []Kind{MEI, MSI, MESI, MOESI, Dragon} {
		p := New(k)
		trs := p.Transitions()
		if len(trs) == 0 {
			t.Fatalf("%v: no transitions", k)
		}
		states := map[State]bool{}
		for _, tr := range trs {
			if !p.Has(tr.From) || !p.Has(tr.To) {
				t.Fatalf("%v: edge %v->%v uses foreign state", k, tr.From, tr.To)
			}
			states[tr.From] = true
			states[tr.To] = true
			if tr.Label() == "" {
				t.Fatalf("%v: empty label on %v->%v", k, tr.From, tr.To)
			}
		}
		// Every protocol state appears on some edge.
		for _, s := range p.States() {
			if !states[s] {
				t.Errorf("%v: state %v unreachable in the diagram", k, s)
			}
		}
	}
}

func TestDotIsWellFormed(t *testing.T) {
	for _, k := range []Kind{MEI, MESI, Dragon} {
		d := New(k).Dot()
		if !strings.HasPrefix(d, "digraph "+k.String()) || !strings.HasSuffix(d, "}\n") {
			t.Fatalf("%v dot malformed:\n%s", k, d)
		}
		if !strings.Contains(d, "->") {
			t.Fatalf("%v dot has no edges", k)
		}
	}
}
