package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry claims enabled")
	}
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	s := r.NewSampler(100)
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	// Every operation on the nil instruments must be a no-op, not a panic.
	c.Inc()
	c.Add(7)
	g.Set(3.5)
	h.Observe(42)
	s.Delta("d", func() float64 { return 1 })
	s.Level("l", func() float64 { return 1 })
	s.Tick(100)
	s.Flush(200)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Window() != 0 {
		t.Fatal("nil instruments recorded something")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram summary not zero")
	}
	if r.Snapshot() != nil || r.HistogramNames() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter %d, want 10", c.Value())
	}
	if r.Counter("hits") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge %v, want last-value 2.5", g.Value())
	}
}

func TestHistogramSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean %v, want 50.5", got)
	}
	// Log2 bucketing bounds the relative quantile error at 2x; for a
	// uniform 1..100 distribution the estimates should land well inside
	// the containing power-of-two range.
	if p50 := h.Quantile(0.50); p50 < 32 || p50 > 64 {
		t.Fatalf("p50 %v outside [32,64]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 64 || p99 > 100 {
		t.Fatalf("p99 %v outside [64,100]", p99)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q=1 gives %v, want max", q)
	}
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Fatalf("q<0 not clamped: %v", q)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 5; i++ {
		h.Observe(28)
	}
	// All mass in one bucket with min==max: every quantile is exact.
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 28 {
			t.Fatalf("quantile(%v) = %v, want 28", q, got)
		}
	}
}

func TestHistogramZero(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 2 {
		t.Fatal("zero observations mishandled")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 3, 3, 7, 12, 40, 900, 901, 5000, 1 << 20} {
		h.Observe(v)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestSamplerWindows(t *testing.T) {
	r := NewRegistry()
	s := r.NewSampler(100)
	var cum float64
	s.Delta("d", func() float64 { return cum })
	level := 0.0
	s.Level("l", func() float64 { return level })

	s.Tick(0) // engine tick at cycle 0 must not record an empty window
	cum, level = 10, 1
	s.Tick(100)
	cum, level = 25, 2
	s.Tick(200)
	cum, level = 31, 3
	s.Flush(250) // final partial window
	s.Flush(250) // double flush is a no-op

	snap := r.Snapshot()
	d := snap.Series["d"]
	if d.WindowCycles != 100 {
		t.Fatalf("window %d, want 100", d.WindowCycles)
	}
	wantD := []Point{{100, 10}, {200, 15}, {250, 6}}
	if len(d.Points) != len(wantD) {
		t.Fatalf("delta points %v, want %v", d.Points, wantD)
	}
	for i, p := range d.Points {
		if p != wantD[i] {
			t.Fatalf("delta point %d = %v, want %v", i, p, wantD[i])
		}
	}
	wantL := []Point{{100, 1}, {200, 2}, {250, 3}}
	for i, p := range snap.Series["l"].Points {
		if p != wantL[i] {
			t.Fatalf("level point %d = %v, want %v", i, p, wantL[i])
		}
	}
}

// TestSamplerEdgeCases covers the degenerate configurations: a zero window
// (sampler disabled, nil), a run shorter than one window (single flushed
// sample), and a series long enough to wrap the retention ring.
func TestSamplerEdgeCases(t *testing.T) {
	t.Run("empty window", func(t *testing.T) {
		r := NewRegistry()
		s := r.NewSampler(0)
		if s != nil {
			t.Fatal("zero window must disable the sampler")
		}
		s.Delta("d", func() float64 { return 1 }) // nil-safe
		s.Level("l", func() float64 { return 1 })
		s.Bound(4)
		s.Tick(100)
		s.Flush(100)
		if s.Window() != 0 {
			t.Fatal("nil sampler has a window")
		}
		if n := len(r.Snapshot().Series); n != 0 {
			t.Fatalf("%d series recorded through a nil sampler", n)
		}
	})
	t.Run("single sample", func(t *testing.T) {
		r := NewRegistry()
		s := r.NewSampler(10_000)
		s.Level("l", func() float64 { return 7 })
		s.Flush(42) // run ended inside the first window
		se := r.Snapshot().Series["l"]
		if len(se.Points) != 1 || se.Points[0] != (Point{42, 7}) || se.Dropped != 0 {
			t.Fatalf("snapshot %+v, want one point {42 7}", se)
		}
	})
	t.Run("ring wraparound", func(t *testing.T) {
		r := NewRegistry()
		s := r.NewSampler(10)
		s.Bound(3)
		cycle := 0.0
		s.Level("l", func() float64 { return cycle })
		for i := 1; i <= 5; i++ {
			cycle = float64(10 * i)
			s.Tick(uint64(10 * i))
		}
		se := r.Snapshot().Series["l"]
		if se.Dropped != 2 {
			t.Fatalf("dropped %d, want 2", se.Dropped)
		}
		want := []Point{{30, 30}, {40, 40}, {50, 50}}
		if len(se.Points) != len(want) {
			t.Fatalf("points %v, want %v", se.Points, want)
		}
		for i, p := range se.Points {
			if p != want[i] {
				t.Fatalf("point %d = %v, want %v (oldest must be evicted first)", i, p, want[i])
			}
		}
	})
}

func TestSnapshotRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h")
	h.Observe(5)
	h.Observe(9)
	s := r.NewSampler(10)
	s.Level("series", func() float64 { return 2 })
	s.Flush(10)

	snap := r.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != 1.5 {
		t.Fatalf("round trip lost scalars: %+v", back)
	}
	hs := back.Histograms["h"]
	if hs.Count != 2 || hs.Sum != 14 || hs.Min != 5 || hs.Max != 9 {
		t.Fatalf("round trip lost histogram: %+v", hs)
	}
	if len(hs.Buckets) == 0 {
		t.Fatal("histogram snapshot has no buckets")
	}
	if len(back.Series["series"].Points) != 1 {
		t.Fatalf("round trip lost series: %+v", back.Series)
	}
}

func TestSharedHistogramAggregates(t *testing.T) {
	r := NewRegistry()
	// Two subsystems asking for the same name share one distribution (the
	// per-core cache controllers rely on this).
	a := r.Histogram("cache.miss")
	b := r.Histogram("cache.miss")
	a.Observe(1)
	b.Observe(3)
	if a != b || a.Count() != 2 {
		t.Fatal("same-name histograms did not aggregate")
	}
}
