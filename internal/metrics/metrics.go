// Package metrics is the simulator's unified observability layer: a
// zero-dependency registry of counters, gauges and log-scaled latency
// histograms, plus windowed time-series sampling driven by the simulation
// engine (sampler.go).
//
// Every instrument is nil-safe: a nil *Registry hands out nil instruments,
// and recording into a nil instrument is a no-op costing one branch.  Hot
// paths therefore keep an instrument pointer obtained once at construction
// and record unconditionally; when metrics are disabled the whole layer
// collapses to predictable-taken nil checks (see BenchmarkMetricsDisabled).
//
// The registry is not safe for concurrent use — the simulation kernel is
// single-threaded by design (DESIGN.md invariant 7), and so is the
// instrumentation.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Inc adds one.  Safe on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.  Safe on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	v float64
}

// Set records the current value.  Safe on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last recorded value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets is the number of log2 buckets: bucket 0 holds the value 0,
// bucket i (i >= 1) holds values v with bits.Len64(v) == i, i.e. the range
// [2^(i-1), 2^i).  65 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a log2-bucketed latency distribution.  Observations are
// dimensionless counts (cycles, in this simulator); quantiles are estimated
// by linear interpolation inside the containing power-of-two bucket, which
// bounds the relative error at 2x and costs two words per observation range.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// Observe records one value.  Safe on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bits.Len64(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest observation (0 for nil or empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Min returns the smallest observation (0 for nil or empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean (0 for nil or empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution.  Returns 0 for a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count-1)
	var seen float64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		if rank < seen+float64(n) {
			lo, hi := bucketBounds(i)
			// Clamp to the observed extremes so single-bucket histograms
			// report exact values.
			if lo < float64(h.min) {
				lo = float64(h.min)
			}
			if hi > float64(h.max) {
				hi = float64(h.max)
			}
			if n == 1 || hi <= lo {
				return lo
			}
			frac := (rank - seen) / float64(n-1)
			return lo + frac*(hi-lo)
		}
		seen += float64(n)
	}
	return float64(h.max)
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	lo = math.Pow(2, float64(i-1))
	hi = math.Pow(2, float64(i)) - 1
	return lo, hi
}

// Registry owns the instruments of one simulation run.  A nil registry is
// valid everywhere and hands out nil (no-op) instruments.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	samplers   []*Sampler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use.  Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.  Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Subsystems sharing a name (e.g. the per-core cache controllers) aggregate
// into one distribution.  Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the serialisable view of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets lists the non-empty log2 buckets as {upper bound, count}
	// pairs, smallest bound first.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	// UpperBound is the largest value the bucket admits (inclusive).
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// snapshot renders the histogram's serialisable view.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if h == nil {
		return s
	}
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		var ub uint64
		if i > 0 {
			ub = 1<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: n})
	}
	return s
}

// Snapshot is the serialisable view of a whole registry, with deterministic
// (sorted) ordering so reports are reproducible byte-for-byte.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string]SeriesSnapshot    `json:"series,omitempty"`
}

// Snapshot captures the registry's current state.  Returns nil for a nil
// registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
		Series:     make(map[string]SeriesSnapshot),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	for _, sam := range r.samplers {
		for _, se := range sam.series {
			s.Series[se.name] = se.snapshot(sam.window)
		}
	}
	return s
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String summarises the registry for debugging.
func (r *Registry) String() string {
	if r == nil {
		return "metrics(disabled)"
	}
	return fmt.Sprintf("metrics(%d counters, %d gauges, %d histograms, %d samplers)",
		len(r.counters), len(r.gauges), len(r.histograms), len(r.samplers))
}
