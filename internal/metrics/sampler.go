package metrics

// Sampler is a windowed time-series recorder.  The platform registers it
// with the simulation engine so Tick fires on engine cycles; every window
// cycles the sampler evaluates its probes and appends one point per series.
//
// Two probe flavours exist:
//
//   - Delta probes read a cumulative quantity (a Stats counter) and record
//     the per-window increase — e.g. ARTRY retries per 10k-cycle window;
//   - Level probes record the probe value as-is — e.g. queue depth.
//
// Probes are evaluated in registration order, and the final partial window
// is flushed by the platform at the end of the run, so short runs still
// produce at least one point.
type Sampler struct {
	window    uint64
	lastFlush uint64
	bound     int
	series    []*timeSeries
}

// DefaultSamplerBound caps the points retained per series.  A simulation
// capped at 50M engine cycles with the default 10k-cycle window produces at
// most 5000 points, so ordinary runs never hit it; it exists to keep custom
// tight-window instrumentations bounded.
const DefaultSamplerBound = 1 << 16

// ProbeFunc reads one quantity from the simulated system.
type ProbeFunc func() float64

type timeSeries struct {
	name    string
	probe   ProbeFunc
	delta   bool
	prev    float64
	pts     []Point
	dropped uint64
}

// Point is one time-series sample: the value over (or at) the window ending
// at engine cycle Cycle.
type Point struct {
	Cycle uint64  `json:"cycle"`
	Value float64 `json:"value"`
}

// SeriesSnapshot is the serialisable view of one time series.
type SeriesSnapshot struct {
	// WindowCycles is the sampling period in engine cycles.
	WindowCycles uint64  `json:"window_cycles"`
	Points       []Point `json:"points"`
	// Dropped counts the oldest points evicted by the retention bound;
	// non-zero means Points is only the tail of the run.
	Dropped uint64 `json:"dropped,omitempty"`
}

func (s *timeSeries) snapshot(window uint64) SeriesSnapshot {
	pts := make([]Point, len(s.pts))
	copy(pts, s.pts)
	return SeriesSnapshot{WindowCycles: window, Points: pts, Dropped: s.dropped}
}

// NewSampler creates a sampler flushing every window engine cycles and
// attaches it to the registry snapshot.  Returns nil on a nil registry or a
// non-positive window.
func (r *Registry) NewSampler(window uint64) *Sampler {
	if r == nil || window == 0 {
		return nil
	}
	s := &Sampler{window: window, bound: DefaultSamplerBound}
	r.samplers = append(r.samplers, s)
	return s
}

// Bound overrides the per-series point retention limit; n <= 0 removes the
// bound.  Safe on a nil sampler.
func (s *Sampler) Bound(n int) {
	if s == nil {
		return
	}
	s.bound = n
}

// Delta registers a windowed-increase series over a cumulative probe.  Safe
// on a nil sampler.
func (s *Sampler) Delta(name string, probe ProbeFunc) {
	if s == nil {
		return
	}
	s.series = append(s.series, &timeSeries{name: name, probe: probe, delta: true})
}

// Level registers an as-is series (the probe value is recorded unchanged).
// Safe on a nil sampler.
func (s *Sampler) Level(name string, probe ProbeFunc) {
	if s == nil {
		return
	}
	s.series = append(s.series, &timeSeries{name: name, probe: probe})
}

// Tick implements the engine's Ticker contract (without importing sim).
// The platform registers the sampler with divisor == window, so Tick fires
// exactly on window boundaries; the now == 0 tick is skipped because no
// cycles have elapsed yet.
func (s *Sampler) Tick(now uint64) {
	if s == nil || now == 0 {
		return
	}
	s.Flush(now)
}

// Flush closes the window ending at engine cycle now, appending one point
// per series.  Flushing twice at the same cycle, or flushing an empty
// window, is a no-op.  Safe on a nil sampler.
func (s *Sampler) Flush(now uint64) {
	if s == nil || now <= s.lastFlush {
		return
	}
	s.lastFlush = now
	for _, se := range s.series {
		v := se.probe()
		if se.delta {
			d := v - se.prev
			se.prev = v
			v = d
		}
		se.pts = append(se.pts, Point{Cycle: now, Value: v})
		if s.bound > 0 && len(se.pts) > s.bound {
			over := len(se.pts) - s.bound
			se.dropped += uint64(over)
			se.pts = se.pts[:copy(se.pts, se.pts[over:])]
		}
	}
}

// Window returns the sampling period in engine cycles (0 for nil).
func (s *Sampler) Window() uint64 {
	if s == nil {
		return 0
	}
	return s.window
}
