package metrics

import "testing"

// Instruments are incremented from the simulation hot loop, so recording
// must be allocation-free in both the disabled (nil) and enabled cases;
// `make allocs` and the CI allocs job pin this.

// TestAllocsDisabledInstruments: a nil registry hands out nil instruments
// whose record methods are single-branch no-ops.
func TestAllocsDisabledInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("hits")
	g := r.Gauge("depth")
	h := r.Histogram("latency")
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(17)
	})
	if n != 0 {
		t.Fatalf("nil-instrument records allocate %.1f/op, want 0", n)
	}
}

// TestAllocsEnabledInstruments: live instruments record into fixed-size
// storage (uint64 fields, log2 bucket array) — no per-observation garbage.
func TestAllocsEnabledInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("depth")
	h := r.Histogram("latency")
	record := func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(17)
	}
	record() // warm-up
	if n := testing.AllocsPerRun(1000, record); n != 0 {
		t.Fatalf("live-instrument records allocate %.1f/op, want 0", n)
	}
	if c.Value() == 0 || h.Count() == 0 {
		t.Fatal("instruments recorded nothing")
	}
}
