package chrometrace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hetcc/internal/audit"
	"hetcc/internal/bus"
	"hetcc/internal/profile"
	"hetcc/internal/span"
	"hetcc/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// requireKeys asserts every encoded event carries the five keys the trace-
// event format requires.
func requireKeys(t *testing.T, events []Event) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("trace is not a JSON array of objects: %v", err)
	}
	for i, e := range raw {
		for _, k := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, k, e)
			}
		}
	}
}

func TestFromTenures(t *testing.T) {
	tenures := []bus.Tenure{
		{Master: 0, Kind: bus.ReadLine, Addr: 0x1000_0000, Start: 100, End: 130},
		{Master: 1, Kind: bus.WriteLine, Addr: 0x1000_0020, Start: 130, End: 150, Aborted: true, Retries: 2},
	}
	events := FromTenures(tenures, func(m int) string { return map[int]string{0: "ppc", 1: "arm"}[m] })
	requireKeys(t, events)

	var spans []Event
	for _, e := range events {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	// 100 engine cycles per microsecond: cycle 100 is ts 1.0 us.
	if spans[0].Ts != 1.0 || math.Abs(*spans[0].Dur-0.3) > 1e-9 {
		t.Fatalf("span 0 ts=%v dur=%v, want 1.0/0.3", spans[0].Ts, *spans[0].Dur)
	}
	if spans[1].Name != "ARTRY "+bus.WriteLine.String() {
		t.Fatalf("aborted span named %q", spans[1].Name)
	}
	// One thread_name metadata lane per master, labelled by the callback.
	labels := map[string]bool{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			labels[e.Args["name"].(string)] = true
		}
	}
	if !labels["ppc"] || !labels["arm"] {
		t.Fatalf("lane labels %v", labels)
	}
	if FromTenures(nil, nil) != nil {
		t.Fatal("empty tenures should export nothing")
	}
}

func TestFromLog(t *testing.T) {
	l := trace.NewLog(0)
	l.Addf(200, "bus", "grant m0")
	l.Addf(250, "cache0", "fill 0x100")
	l.Addf(300, "bus", "done")
	events := FromLog(l)
	requireKeys(t, events)

	var instants []Event
	for _, e := range events {
		if e.Ph == "i" {
			instants = append(instants, e)
		}
	}
	if len(instants) != 3 {
		t.Fatalf("%d instants, want 3", len(instants))
	}
	if instants[0].Ts != 2.0 {
		t.Fatalf("ts %v, want 2.0 us", instants[0].Ts)
	}
	// Lanes are allocated in sorted unit order: bus=0, cache0=1.
	if instants[0].Tid != 0 || instants[1].Tid != 1 {
		t.Fatalf("tids %d/%d, want 0/1", instants[0].Tid, instants[1].Tid)
	}
	if FromLog(nil) != nil {
		t.Fatal("nil log should export nothing")
	}
}

// TestFromLogReportsDropped checks a bounded log surfaces the ring's dropped
// count as an extra marker.
func TestFromLogReportsDropped(t *testing.T) {
	l := trace.NewLog(2)
	for i := 0; i < 5; i++ {
		l.Addf(uint64(100*i), "bus", "e%d", i)
	}
	events := FromLog(l)
	requireKeys(t, events)
	found := false
	for _, e := range events {
		if e.Ph == "i" && e.Args["dropped"] == uint64(3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no dropped-count marker in %v", events)
	}
}

func TestFromStallSpans(t *testing.T) {
	spans := []profile.Span{
		{Core: 0, Cause: profile.CauseLock, Start: 100, End: 200},
		{Core: 1, Cause: profile.CauseRefill, Start: 150, End: 180},
		{Core: 0, Cause: profile.CauseDrain, Start: 250, End: 260},
	}
	events := FromStallSpans(spans, func(c int) string { return map[int]string{0: "ppc", 1: "arm"}[c] })
	requireKeys(t, events)

	var xs []Event
	for _, e := range events {
		if e.Ph == "X" {
			xs = append(xs, e)
		}
	}
	if len(xs) != 3 {
		t.Fatalf("%d spans, want 3", len(xs))
	}
	if xs[0].Name != "lock-spin" || xs[0].Pid != PidProfile || xs[0].Tid != 0 {
		t.Fatalf("span 0 %+v, want lock-spin on profile pid, core lane 0", xs[0])
	}
	if xs[0].Ts != 1.0 || math.Abs(*xs[0].Dur-1.0) > 1e-9 {
		t.Fatalf("span 0 ts=%v dur=%v, want 1.0/1.0", xs[0].Ts, *xs[0].Dur)
	}
	if xs[1].Args["cycles"] != uint64(30) {
		t.Fatalf("span 1 args %v, want 30 cycles", xs[1].Args)
	}
	// One labelled lane per core, no duplicates.
	lanes := map[string]int{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			lanes[e.Args["name"].(string)]++
		}
	}
	if lanes["ppc"] != 1 || lanes["arm"] != 1 {
		t.Fatalf("lane labels %v", lanes)
	}
	if FromStallSpans(nil, nil) != nil {
		t.Fatal("no spans should export nothing")
	}
}

func TestFromViolations(t *testing.T) {
	vs := []audit.Violation{
		{Cycle: 500, Check: "swmr", Core: 1, Addr: 0x2000_0040, Detail: "2 writable copies"},
		{Cycle: 700, Check: "stale-read", Core: 0, Addr: 0x2000_0000, Detail: "read 0, want 7"},
	}
	events := FromViolations(vs)
	requireKeys(t, events)
	var markers []Event
	for _, e := range events {
		if e.Ph == "i" {
			markers = append(markers, e)
		}
	}
	if len(markers) != 2 {
		t.Fatalf("%d markers, want 2", len(markers))
	}
	if markers[0].Name != "swmr" || markers[0].Ts != 5.0 || markers[0].Pid != PidAudit {
		t.Fatalf("marker 0 %+v, want swmr at 5.0 us on the audit pid", markers[0])
	}
	if markers[1].Args["addr"] != "0x20000000" || markers[1].Args["core"] != 0 {
		t.Fatalf("marker 1 args %v", markers[1].Args)
	}
	if FromViolations(nil) != nil {
		t.Fatal("no violations should export nothing")
	}
}

// TestFromSpanEdges checks flow-event pairing: every edge yields a matched
// "s"/"f" pair with the same cat+id, the finish binds to its enclosing slice
// ("bp":"e"), and the two edge kinds land on the right lanes.
func TestFromSpanEdges(t *testing.T) {
	edges := []span.Edge{
		{Kind: span.EdgeRetryDrain, From: 140, To: 300, FromMaster: 1, ToMaster: 0, Txn: 3, Cause: 2},
		{Kind: span.EdgeCompleteResume, From: 320, To: 320, FromMaster: 0, Core: 1, Txn: 4},
	}
	events := FromSpanEdges(edges)
	requireKeys(t, events)
	if len(events) != 4 {
		t.Fatalf("%d events, want 2 start/finish pairs", len(events))
	}
	for i := 0; i < len(events); i += 2 {
		s, f := events[i], events[i+1]
		if s.Ph != "s" || f.Ph != "f" {
			t.Fatalf("pair %d phases %q/%q, want s/f", i/2, s.Ph, f.Ph)
		}
		if s.ID == "" || s.ID != f.ID || s.Cat != f.Cat {
			t.Fatalf("pair %d not linked: id %q/%q cat %q/%q", i/2, s.ID, f.ID, s.Cat, f.Cat)
		}
		if f.BP != "e" {
			t.Fatalf("pair %d finish bp %q, want e", i/2, f.BP)
		}
	}
	rd := events[1]
	if rd.Pid != PidBus || rd.Tid != 0 || rd.Args["cause"] != uint64(2) {
		t.Fatalf("retry-drain finish %+v, want draining master's bus lane with cause", rd)
	}
	cr := events[3]
	if cr.Pid != PidProfile || cr.Tid != 1 {
		t.Fatalf("complete-resume finish %+v, want resuming core's stall lane", cr)
	}
	if FromSpanEdges(nil) != nil {
		t.Fatal("no edges should export nothing")
	}
}

// TestWriteGolden pins the complete Write output — bus tenures, stall lanes,
// violation markers and causal flow arrows in one trace — against a committed
// golden file, so the exported JSON shape (key order, indentation, lane
// assignments) cannot drift silently.  Refresh with:
// go test ./internal/chrometrace -run TestWriteGolden -update
func TestWriteGolden(t *testing.T) {
	masterName := func(m int) string { return map[int]string{0: "ppc", 1: "arm"}[m] }
	var events []Event
	events = append(events, FromTenures([]bus.Tenure{
		{Master: 0, Kind: bus.ReadLine, Addr: 0x2000_0000, Start: 100, End: 130},
		{Master: 1, Kind: bus.RMWWord, Addr: 0x2000_0040, Start: 130, End: 140, Aborted: true, Retries: 1},
		{Master: 0, Kind: bus.WriteLine, Addr: 0x2000_0040, Start: 160, End: 300},
		{Master: 1, Kind: bus.RMWWord, Addr: 0x2000_0040, Start: 300, End: 320},
	}, masterName)...)
	events = append(events, FromStallSpans([]profile.Span{
		{Core: 1, Cause: profile.CauseLock, Start: 130, End: 320},
		{Core: 0, Cause: profile.CauseDrain, Start: 150, End: 300},
	}, masterName)...)
	events = append(events, FromViolations([]audit.Violation{
		{Cycle: 200, Check: "swmr", Core: 1, Addr: 0x2000_0040, Detail: "2 writable copies"},
	})...)
	events = append(events, FromSpanEdges([]span.Edge{
		{Kind: span.EdgeRetryDrain, From: 140, To: 300, FromMaster: 1, ToMaster: 0, Txn: 2, Cause: 3},
		{Kind: span.EdgeCompleteResume, From: 320, To: 320, FromMaster: 1, Core: 1, Txn: 2},
	})...)
	requireKeys(t, events)

	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "full_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace drifted from golden file (re-run with -update if intended)\ngot:\n%s", buf.String())
	}
}
