// Package chrometrace exports simulation activity in the Chrome trace-event
// ("catapult") JSON format, loadable in Perfetto (https://ui.perfetto.dev)
// and chrome://tracing.
//
// Two sources feed the export:
//
//   - trace.Log events become instant events ("ph":"i"), one lane (tid) per
//     emitting unit;
//   - bus tenure spans (package bus) become complete events ("ph":"X") with
//     a duration, one lane per bus master, so contention, ARTRY storms and
//     back-to-back tenures are visible on the timeline.
//
// Timestamps are microseconds at the paper's clocking: the engine advances
// at 100 MHz, so one engine cycle is 0.01 us.
package chrometrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hetcc/internal/audit"
	"hetcc/internal/bus"
	"hetcc/internal/profile"
	"hetcc/internal/sharing"
	"hetcc/internal/span"
	"hetcc/internal/trace"
)

// EngineCyclesPerMicrosecond converts engine cycles (100 MHz) to trace
// timestamps (microseconds).
const EngineCyclesPerMicrosecond = 100.0

// Event is one trace-event record.  Every event carries the five keys the
// format requires ("ph", "ts", "pid", "tid", "name"); complete events add
// "dur".
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	// Cat and ID pair flow events ("ph":"s"/"f"): the viewer draws an arrow
	// between the start and finish carrying the same category and id.  BP
	// ("bp":"e") makes the finish bind to its enclosing slice.
	Cat string `json:"cat,omitempty"`
	ID  string `json:"id,omitempty"`
	BP  string `json:"bp,omitempty"`
}

// Process ids used in the export.
const (
	// PidBus groups bus-tenure spans, one tid per bus master.
	PidBus = 1
	// PidLog groups trace.Log instant events, one tid per unit.
	PidLog = 2
	// PidAudit groups invariant-violation markers from the online auditor.
	PidAudit = 3
	// PidProfile groups per-core stall-cause spans from the cycle ledger.
	PidProfile = 4
	// PidSharing groups the address-heatmap counter tracks from the
	// sharing-pattern collector.
	PidSharing = 5
)

func usAt(cycle uint64) float64 { return float64(cycle) / EngineCyclesPerMicrosecond }

// meta builds a process/thread naming metadata event ("ph":"M").
func meta(kind string, pid, tid int, label string) Event {
	return Event{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": label}}
}

// FromTenures converts bus tenure spans into complete events, one lane per
// master.  masterName labels the lanes (nil falls back to "master N").
func FromTenures(tenures []bus.Tenure, masterName func(id int) string) []Event {
	if len(tenures) == 0 {
		return nil
	}
	events := []Event{meta("process_name", PidBus, 0, "bus tenures")}
	seen := map[int]bool{}
	for _, t := range tenures {
		if !seen[t.Master] {
			seen[t.Master] = true
			label := fmt.Sprintf("master %d", t.Master)
			if masterName != nil {
				label = masterName(t.Master)
			}
			events = append(events, meta("thread_name", PidBus, t.Master, label))
		}
		name := t.Kind.String()
		if t.Aborted {
			name = "ARTRY " + name
		}
		dur := usAt(t.End) - usAt(t.Start)
		events = append(events, Event{
			Name: name,
			Ph:   "X",
			Ts:   usAt(t.Start),
			Dur:  &dur,
			Pid:  PidBus,
			Tid:  t.Master,
			Args: map[string]any{
				"addr":    fmt.Sprintf("0x%08x", t.Addr),
				"retries": t.Retries,
				"aborted": t.Aborted,
			},
		})
	}
	return events
}

// FromLog converts retained trace.Log events into instant events, one lane
// per emitting unit (lanes are allocated in sorted unit order so the export
// is deterministic).
func FromLog(l *trace.Log) []Event {
	evs, dropped := l.Events()
	if len(evs) == 0 {
		return nil
	}
	units := map[string]int{}
	for _, e := range evs {
		if _, ok := units[e.Unit]; !ok {
			units[e.Unit] = 0
		}
	}
	names := make([]string, 0, len(units))
	for u := range units {
		names = append(names, u)
	}
	sort.Strings(names)
	events := []Event{meta("process_name", PidLog, 0, "trace log")}
	for tid, u := range names {
		units[u] = tid
		events = append(events, meta("thread_name", PidLog, tid, u))
	}
	for _, e := range evs {
		events = append(events, Event{
			Name: e.Msg,
			Ph:   "i",
			Ts:   usAt(e.Cycle),
			Pid:  PidLog,
			Tid:  units[e.Unit],
			Args: map[string]any{"s": "t"},
		})
	}
	if dropped > 0 {
		events = append(events, Event{
			Name: fmt.Sprintf("%d older events dropped by ring bound", dropped),
			Ph:   "i",
			Ts:   usAt(evs[0].Cycle),
			Pid:  PidLog,
			Tid:  0,
			Args: map[string]any{"s": "p", "dropped": dropped},
		})
	}
	return events
}

// FromStallSpans converts the stall-cause ledger's per-core timeline into
// complete events, one lane per core, named by cause.  Side by side with the
// bus lanes this shows *why* a core is stalled at any point — an arbitration
// wait on one core lines up with the tenure occupying the bus on another.
// coreName labels the lanes (nil falls back to "core N").
func FromStallSpans(spans []profile.Span, coreName func(id int) string) []Event {
	if len(spans) == 0 {
		return nil
	}
	events := []Event{meta("process_name", PidProfile, 0, "stall causes")}
	seen := map[int]bool{}
	for _, s := range spans {
		if !seen[s.Core] {
			seen[s.Core] = true
			label := fmt.Sprintf("core %d", s.Core)
			if coreName != nil {
				label = coreName(s.Core)
			}
			events = append(events, meta("thread_name", PidProfile, s.Core, label))
		}
		dur := usAt(s.End) - usAt(s.Start)
		events = append(events, Event{
			Name: s.Cause.String(),
			Ph:   "X",
			Ts:   usAt(s.Start),
			Dur:  &dur,
			Pid:  PidProfile,
			Tid:  s.Core,
			Args: map[string]any{"cycles": s.End - s.Start},
		})
	}
	return events
}

// FromViolations converts invariant violations from the online auditor into
// instant markers on a dedicated lane, so a broken configuration shows the
// exact cycle each invariant first failed alongside the bus activity.
func FromViolations(vs []audit.Violation) []Event {
	if len(vs) == 0 {
		return nil
	}
	events := []Event{
		meta("process_name", PidAudit, 0, "invariant violations"),
		meta("thread_name", PidAudit, 0, "auditor"),
	}
	for _, v := range vs {
		events = append(events, Event{
			Name: v.Check,
			Ph:   "i",
			Ts:   usAt(v.Cycle),
			Pid:  PidAudit,
			Tid:  0,
			Args: map[string]any{
				"s":      "p",
				"core":   v.Core,
				"addr":   fmt.Sprintf("0x%08x", v.Addr),
				"detail": v.Detail,
			},
		})
	}
	return events
}

// FromSpanEdges converts the span collector's causal edges into flow events
// (ph "s"/"f" pairs), drawn as arrows by the viewer:
//
//   - retry→drain: from the ARTRY on the retried master's bus lane to the
//     draining write-back's completion on its master's lane — the cause of
//     every drain-induced retry becomes a visible arrow;
//   - complete→resume: from a transaction's completion on the bus lane to
//     the blocked core's resume point on its stall lane.
//
// The events target the FromTenures (PidBus) and FromStallSpans
// (PidProfile) lanes, so include those when exporting edges.
func FromSpanEdges(edges []span.Edge) []Event {
	var events []Event
	for i, e := range edges {
		id := fmt.Sprintf("%s-%d", e.Kind.String(), i)
		start := Event{
			Name: e.Kind.String(), Ph: "s", Ts: usAt(e.From),
			Pid: PidBus, Tid: e.FromMaster, Cat: e.Kind.String(), ID: id,
			Args: map[string]any{"txn": e.Txn},
		}
		finish := Event{
			Name: e.Kind.String(), Ph: "f", Ts: usAt(e.To),
			Pid: PidBus, Cat: e.Kind.String(), ID: id, BP: "e",
			Args: map[string]any{"txn": e.Txn},
		}
		switch e.Kind {
		case span.EdgeRetryDrain:
			start.Args["cause"] = e.Cause
			finish.Tid = e.ToMaster
			finish.Args["cause"] = e.Cause
		case span.EdgeCompleteResume:
			finish.Pid = PidProfile
			finish.Tid = e.Core
		}
		events = append(events, start, finish)
	}
	return events
}

// FromHeatmap converts the sharing collector's windowed address heatmap into
// counter events ("ph":"C"), one series per address region: the viewer draws
// a stacked area chart of bus accesses per window, so traffic migrating
// across the address map over time is visible at a glance.  Each window
// contributes one sample at its start; a closing zero sample is emitted
// after the final window so the last value does not extend forever.
func FromHeatmap(h sharing.Heatmap) []Event {
	if len(h.Windows) == 0 {
		return nil
	}
	events := []Event{
		meta("process_name", PidSharing, 0, "address heatmap"),
		meta("thread_name", PidSharing, 0, fmt.Sprintf("accesses per %d-cycle window", h.Window)),
	}
	for _, w := range h.Windows {
		args := make(map[string]any, len(w.Regions)+1)
		for _, rc := range w.Regions {
			args[rc.Base] = rc.Count
		}
		if w.Overflow > 0 {
			args["(overflow)"] = w.Overflow
		}
		events = append(events, Event{
			Name: "heat", Ph: "C", Ts: usAt(w.Start),
			Pid: PidSharing, Tid: 0, Args: args,
		})
	}
	last := h.Windows[len(h.Windows)-1]
	events = append(events, Event{
		Name: "heat", Ph: "C", Ts: usAt(last.Start + h.Window),
		Pid: PidSharing, Tid: 0, Args: map[string]any{},
	})
	return events
}

// Write emits events as a JSON array (the trace-event "array format", which
// Perfetto and chrome://tracing both accept).
func Write(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
