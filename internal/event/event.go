// Package event defines the typed coherence event stream: a flat,
// allocation-conscious record per bus/coherence action, fanned out through a
// nil-safe Sink to subscribers (the invariant auditor of package audit, the
// JSONL exporter, tests).
//
// The producer pattern mirrors package metrics: every producer holds a
// *Sink that may be nil, and every emit helper starts with a nil-receiver
// check, so a simulation built without the event stream pays exactly one
// branch per would-be event.  Records are passed to subscribers by pointer
// to one stack value; subscribers must copy a record if they retain it.
package event

import (
	"fmt"
	"io"
	"strconv"

	"hetcc/internal/coherence"
)

// Kind enumerates coherence event kinds.
type Kind uint8

const (
	// BusRequest: a master queued a bus transaction (BREQ).
	BusRequest Kind = iota
	// BusGrant: a tenure won arbitration and passed its address phase
	// un-aborted (BGNT); the shared-signal sample is recorded.
	BusGrant
	// Retry: a tenure was ARTRYed during the address phase.
	Retry
	// SnoopHit: a snooper (cache controller or TAG-CAM snoop logic) matched
	// another master's transaction against a line it holds or shadows.
	SnoopHit
	// StateChange: a cache line changed coherence state (fill, write-hit
	// upgrade, snoop action, eviction, software clean/invalidate).
	StateChange
	// WrapperConvert: a wrapper rewrote the bus op presented to its
	// processor's snoop port (the paper's read-to-write conversion).
	WrapperConvert
	// SharedOverride: a wrapper changed the shared-signal value its master
	// sampled (force-assert / force-deassert).
	SharedOverride
	// Drain: a write-back completed (eviction, software clean, snoop flush
	// or ISR drain), making memory current for the line.
	Drain
	// BusComplete: a tenure finished its data phase and left the bus; the
	// master's next queued transaction (if any) re-enters arbitration.
	BusComplete
	// MemAccess: a CPU load or store reached the bus-bound path of its cache
	// controller (miss fill, upgrade, write-through store).  Word-granular —
	// Addr is the accessed word — so sharing-pattern analysis can build
	// word-offset access sets inside a line (false-sharing detection) where
	// the line-grain BusGrant cannot.  At most one per bus transaction, so
	// the hot path stays cheap.
	MemAccess

	kindCount
)

// String returns the kind's JSONL tag.
func (k Kind) String() string {
	switch k {
	case BusRequest:
		return "bus-request"
	case BusGrant:
		return "bus-grant"
	case Retry:
		return "retry"
	case SnoopHit:
		return "snoop-hit"
	case StateChange:
		return "state-change"
	case WrapperConvert:
		return "wrapper-convert"
	case SharedOverride:
		return "shared-override"
	case Drain:
		return "drain"
	case BusComplete:
		return "bus-complete"
	case MemAccess:
		return "mem-access"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one coherence event.  It is a flat value struct; which fields
// are meaningful depends on Kind (see the per-kind emit helpers on Sink).
type Record struct {
	// Cycle is the engine cycle at emission (stamped by the Sink).
	Cycle uint64
	Kind  Kind
	// Core is the originating bus master / core index (the DMA engine's
	// master id appears here for its own bus events).
	Core int
	// Addr is the line or word address the event concerns (0 when the event
	// has no address, e.g. WrapperConvert).
	Addr uint32
	// Old and New are the line states for StateChange.
	Old, New coherence.State
	// Op is the snoop-level operation for SnoopHit and the observed op for
	// WrapperConvert; Op2 is the converted op for WrapperConvert.
	Op, Op2 coherence.BusOp
	// BusKind is the raw bus transaction kind (bus.Kind numeric value) for
	// BusRequest/BusGrant/Retry.  Kept as uint8 so this package does not
	// depend on package bus.
	BusKind uint8
	// Retries is the transaction's retry count so far (Retry events).
	Retries int
	// Drain reports whether a Retry was asserted by a snooper that needs a
	// dirty-line drain (cache flush in flight or ISR drain pending) before
	// the transaction can succeed, as opposed to a plain ARTRY.
	Drain bool
	// Peer is the requesting master whose transaction a SnoopHit matched
	// (Core is the snooper).  Together they orient the communication-matrix
	// edges of package sharing: supply/flush run snooper→requester,
	// invalidation runs requester→snooper.
	Peer int
	// Inval/Supply/Flush/Converted qualify a SnoopHit: the snooped line is
	// (eventually) invalidated; the snooper answers with a cache-to-cache
	// transfer; the snooper drains the line to memory and ARTRYs the
	// requester (including the TAG-CAM's ISR drains); the observed op was
	// rewritten by the snooper's wrapper (Op carries the converted op).
	Inval, Supply, Flush, Converted bool
	// Write reports the access direction of a MemAccess (store vs load).
	Write bool
	// SharedIn/SharedOut carry the shared-signal value before and after a
	// SharedOverride, and SharedOut the sampled value on BusGrant.
	SharedIn, SharedOut bool
	// Txn is the bus-assigned transaction id for
	// BusRequest/BusGrant/Retry/BusComplete, and for Drain the id of the
	// write-back transaction that drained the line (0 when unknown, e.g. a
	// snoop-logic drain notification with no bus transfer of its own).  Ids
	// are monotonically increasing from 1 in submission order, so the span
	// collector (package span) can correlate lifecycle events without the
	// bus depending on it.
	Txn uint64
}

// Handler receives records synchronously as they are emitted.  The pointed-to
// record is only valid for the duration of the call.
type Handler func(*Record)

// Sink stamps, counts and fans out records.  A nil *Sink is valid everywhere
// and records nothing: every emit helper is a single nil check when the
// stream is disabled.
type Sink struct {
	now    func() uint64
	subs   []Handler
	counts [kindCount]uint64
	// scratch is the reusable record handed to subscribers: passing &r of a
	// per-emit stack value made every enabled emission a heap allocation
	// (the pointer escapes into the handler calls).  The sink is already
	// heap-resident, so reusing one field keeps the enabled path
	// allocation-free.  Handlers are synchronous consumers and must not
	// emit re-entrantly (none do: the auditor, exporters and the profiler
	// only read), and must copy the record if they retain it.
	scratch Record
}

// NewSink creates a sink stamping records with the now clock (typically the
// simulation engine's Now).  A nil clock stamps zero.
func NewSink(now func() uint64) *Sink {
	if now == nil {
		now = func() uint64 { return 0 }
	}
	return &Sink{now: now}
}

// Enabled reports whether the sink records events (false for nil).
func (s *Sink) Enabled() bool { return s != nil }

// Subscribe registers a handler.  Handlers run in registration order.
func (s *Sink) Subscribe(h Handler) {
	if s == nil || h == nil {
		return
	}
	s.subs = append(s.subs, h)
}

// Counts returns the non-zero per-kind event counts keyed by Kind.String()
// (nil for a nil sink).
func (s *Sink) Counts() map[string]uint64 {
	if s == nil {
		return nil
	}
	out := make(map[string]uint64)
	for k, n := range s.counts {
		if n > 0 {
			out[Kind(k).String()] = n
		}
	}
	return out
}

// Total returns the total number of records emitted.
func (s *Sink) Total() uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for _, n := range s.counts {
		t += n
	}
	return t
}

func (s *Sink) emit(r Record) {
	r.Cycle = s.now()
	s.counts[r.Kind]++
	s.scratch = r
	for i := range s.subs {
		s.subs[i](&s.scratch)
	}
}

// BusRequest records a transaction entering its master's queue; txn is the
// bus-assigned monotonically increasing transaction id.
func (s *Sink) BusRequest(core int, busKind uint8, addr uint32, txn uint64) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: BusRequest, Core: core, Addr: addr, BusKind: busKind, Txn: txn})
}

// BusGrant records a tenure surviving its address phase; shared is the
// combined shared-signal sample.
func (s *Sink) BusGrant(core int, busKind uint8, addr uint32, shared bool, txn uint64) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: BusGrant, Core: core, Addr: addr, BusKind: busKind, SharedOut: shared, Txn: txn})
}

// Retry records an ARTRY abort; retries is the transaction's running count
// and drain reports whether a snooper asserted the retry to drain a dirty
// line (or complete a pending ISR drain) first.
func (s *Sink) Retry(core int, busKind uint8, addr uint32, retries int, drain bool, txn uint64) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: Retry, Core: core, Addr: addr, BusKind: busKind, Retries: retries, Drain: drain, Txn: txn})
}

// SnoopHit records a snooper (core) matching peer's transaction on line
// addr; op is the coherence operation it observed (after any wrapper
// conversion).  inval/supply/flush/converted report the snooper's resolved
// reaction — inval means the snooped copy is invalidated, for a flush once
// its drain completes (cache flush or TAG-CAM ISR).
func (s *Sink) SnoopHit(core int, addr uint32, op coherence.BusOp, peer int, inval, supply, flush, converted bool) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: SnoopHit, Core: core, Addr: addr, Op: op, Peer: peer,
		Inval: inval, Supply: supply, Flush: flush, Converted: converted})
}

// MemAccess records a CPU load (write=false) or store reaching its cache
// controller's bus-bound path; addr is the accessed word.
func (s *Sink) MemAccess(core int, addr uint32, write bool) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: MemAccess, Core: core, Addr: addr, Write: write})
}

// StateChange records a cache line of core moving old→new.
func (s *Sink) StateChange(core int, addr uint32, old, new coherence.State) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: StateChange, Core: core, Addr: addr, Old: old, New: new})
}

// WrapperConvert records a wrapper rewriting snoop op from→to.
func (s *Sink) WrapperConvert(core int, from, to coherence.BusOp) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: WrapperConvert, Core: core, Op: from, Op2: to})
}

// SharedOverride records a wrapper changing the sampled shared signal.
func (s *Sink) SharedOverride(core int, in, out bool) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: SharedOverride, Core: core, SharedIn: in, SharedOut: out})
}

// BusComplete records a tenure finishing its data phase and leaving the bus.
func (s *Sink) BusComplete(core int, busKind uint8, addr uint32, txn uint64) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: BusComplete, Core: core, Addr: addr, BusKind: busKind, Txn: txn})
}

// Drain records a completed write-back of line addr; txn is the id of the
// write-back bus transaction that carried the data (0 when the drain has no
// transfer of its own, e.g. a TAG-CAM completion notification).
func (s *Sink) Drain(core int, addr uint32, txn uint64) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: Drain, Core: core, Addr: addr, Txn: txn})
}

// JSONLWriter streams records to w as one JSON object per line.  It is a
// Sink handler; writes are unbuffered, so callers stream to a bufio.Writer
// (and flush it) when exporting large runs.  Lines are rendered into a
// reusable append buffer with strconv, so the steady-state enabled path is
// allocation-free (pinned by TestAllocsJSONLWriter).
type JSONLWriter struct {
	w io.Writer
	// busName renders Record.BusKind (the platform wires bus.Kind.String);
	// nil prints the numeric value.
	busName func(uint8) string
	err     error
	n       uint64
	buf     []byte
}

// NewJSONLWriter creates a writer targeting w.  busName, when non-nil, names
// the raw bus transaction kinds in bus-request/bus-grant/retry rows.
func NewJSONLWriter(w io.Writer, busName func(uint8) string) *JSONLWriter {
	return &JSONLWriter{w: w, busName: busName, buf: make([]byte, 0, 256)}
}

// Handle implements Handler.  After the first write error it becomes a no-op
// (check Err after the run).
func (jw *JSONLWriter) Handle(r *Record) {
	if jw.err != nil {
		return
	}
	jw.render(r)
	_, jw.err = jw.w.Write(jw.buf)
	if jw.err == nil {
		jw.n++
	}
}

// Err returns the first write error, if any.
func (jw *JSONLWriter) Err() error { return jw.err }

// Close finishes the export and surfaces what Handle could not: the first
// write error, or the flush error of a buffered target (any writer with a
// `Flush() error` method, e.g. *bufio.Writer).  It does not close the
// underlying writer — the caller owns the file handle.
func (jw *JSONLWriter) Close() error {
	if jw.err != nil {
		return jw.err
	}
	if f, ok := jw.w.(interface{ Flush() error }); ok {
		jw.err = f.Flush()
	}
	return jw.err
}

// Written returns the number of rows successfully written.
func (jw *JSONLWriter) Written() uint64 { return jw.n }

// appendHex appends `"0xXXXXXXXX"` (quoted, zero-padded to 8 digits).
func appendHex(b []byte, v uint32) []byte {
	b = append(b, '"', '0', 'x')
	for shift := 28; shift >= 0; shift -= 4 {
		b = append(b, "0123456789abcdef"[(v>>uint(shift))&0xf])
	}
	return append(b, '"')
}

// appendQuoted appends s as a JSON string.  Every string rendered here (kind
// tags, bus-kind names, coherence state/op names) is plain ASCII without
// quotes or backslashes, so no escaping pass is needed; strconv.AppendQuote
// is the fallback for anything else.
func appendQuoted(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.AppendQuote(b, s)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// render rebuilds jw.buf with one "{...}\n" line for r.
func (jw *JSONLWriter) render(r *Record) {
	b := jw.buf[:0]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendUint(b, r.Cycle, 10)
	b = append(b, `,"kind":`...)
	b = appendQuoted(b, r.Kind.String())
	b = append(b, `,"core":`...)
	b = strconv.AppendInt(b, int64(r.Core), 10)
	switch r.Kind {
	case BusRequest, Retry, BusComplete, BusGrant:
		b = append(b, `,"op":`...)
		b = jw.appendBus(b, r.BusKind)
		b = append(b, `,"addr":`...)
		b = appendHex(b, r.Addr)
		if r.Kind == Retry {
			b = append(b, `,"retries":`...)
			b = strconv.AppendInt(b, int64(r.Retries), 10)
			b = append(b, `,"drain":`...)
			b = strconv.AppendBool(b, r.Drain)
		}
		if r.Kind == BusGrant {
			b = append(b, `,"shared":`...)
			b = strconv.AppendBool(b, r.SharedOut)
		}
		if r.Txn != 0 {
			b = append(b, `,"txn":`...)
			b = strconv.AppendUint(b, r.Txn, 10)
		}
	case SnoopHit:
		b = append(b, `,"addr":`...)
		b = appendHex(b, r.Addr)
		b = append(b, `,"op":`...)
		b = appendQuoted(b, r.Op.String())
		b = append(b, `,"peer":`...)
		b = strconv.AppendInt(b, int64(r.Peer), 10)
		b = append(b, `,"inval":`...)
		b = strconv.AppendBool(b, r.Inval)
		b = append(b, `,"supply":`...)
		b = strconv.AppendBool(b, r.Supply)
		b = append(b, `,"flush":`...)
		b = strconv.AppendBool(b, r.Flush)
		b = append(b, `,"converted":`...)
		b = strconv.AppendBool(b, r.Converted)
	case MemAccess:
		b = append(b, `,"addr":`...)
		b = appendHex(b, r.Addr)
		b = append(b, `,"write":`...)
		b = strconv.AppendBool(b, r.Write)
	case StateChange:
		b = append(b, `,"addr":`...)
		b = appendHex(b, r.Addr)
		b = append(b, `,"old":`...)
		b = appendQuoted(b, r.Old.String())
		b = append(b, `,"new":`...)
		b = appendQuoted(b, r.New.String())
	case WrapperConvert:
		b = append(b, `,"from":`...)
		b = appendQuoted(b, r.Op.String())
		b = append(b, `,"to":`...)
		b = appendQuoted(b, r.Op2.String())
	case SharedOverride:
		b = append(b, `,"in":`...)
		b = strconv.AppendBool(b, r.SharedIn)
		b = append(b, `,"out":`...)
		b = strconv.AppendBool(b, r.SharedOut)
	case Drain:
		b = append(b, `,"addr":`...)
		b = appendHex(b, r.Addr)
		if r.Txn != 0 {
			b = append(b, `,"txn":`...)
			b = strconv.AppendUint(b, r.Txn, 10)
		}
	}
	b = append(b, '}', '\n')
	jw.buf = b
}

func (jw *JSONLWriter) appendBus(b []byte, k uint8) []byte {
	if jw.busName != nil {
		return appendQuoted(b, jw.busName(k))
	}
	b = append(b, `"Kind(`...)
	b = strconv.AppendUint(b, uint64(k), 10)
	return append(b, ')', '"')
}
