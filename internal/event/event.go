// Package event defines the typed coherence event stream: a flat,
// allocation-conscious record per bus/coherence action, fanned out through a
// nil-safe Sink to subscribers (the invariant auditor of package audit, the
// JSONL exporter, tests).
//
// The producer pattern mirrors package metrics: every producer holds a
// *Sink that may be nil, and every emit helper starts with a nil-receiver
// check, so a simulation built without the event stream pays exactly one
// branch per would-be event.  Records are passed to subscribers by pointer
// to one stack value; subscribers must copy a record if they retain it.
package event

import (
	"fmt"
	"io"

	"hetcc/internal/coherence"
)

// Kind enumerates coherence event kinds.
type Kind uint8

const (
	// BusRequest: a master queued a bus transaction (BREQ).
	BusRequest Kind = iota
	// BusGrant: a tenure won arbitration and passed its address phase
	// un-aborted (BGNT); the shared-signal sample is recorded.
	BusGrant
	// Retry: a tenure was ARTRYed during the address phase.
	Retry
	// SnoopHit: a snooper (cache controller or TAG-CAM snoop logic) matched
	// another master's transaction against a line it holds or shadows.
	SnoopHit
	// StateChange: a cache line changed coherence state (fill, write-hit
	// upgrade, snoop action, eviction, software clean/invalidate).
	StateChange
	// WrapperConvert: a wrapper rewrote the bus op presented to its
	// processor's snoop port (the paper's read-to-write conversion).
	WrapperConvert
	// SharedOverride: a wrapper changed the shared-signal value its master
	// sampled (force-assert / force-deassert).
	SharedOverride
	// Drain: a write-back completed (eviction, software clean, snoop flush
	// or ISR drain), making memory current for the line.
	Drain
	// BusComplete: a tenure finished its data phase and left the bus; the
	// master's next queued transaction (if any) re-enters arbitration.
	BusComplete

	kindCount
)

// String returns the kind's JSONL tag.
func (k Kind) String() string {
	switch k {
	case BusRequest:
		return "bus-request"
	case BusGrant:
		return "bus-grant"
	case Retry:
		return "retry"
	case SnoopHit:
		return "snoop-hit"
	case StateChange:
		return "state-change"
	case WrapperConvert:
		return "wrapper-convert"
	case SharedOverride:
		return "shared-override"
	case Drain:
		return "drain"
	case BusComplete:
		return "bus-complete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one coherence event.  It is a flat value struct; which fields
// are meaningful depends on Kind (see the per-kind emit helpers on Sink).
type Record struct {
	// Cycle is the engine cycle at emission (stamped by the Sink).
	Cycle uint64
	Kind  Kind
	// Core is the originating bus master / core index (the DMA engine's
	// master id appears here for its own bus events).
	Core int
	// Addr is the line or word address the event concerns (0 when the event
	// has no address, e.g. WrapperConvert).
	Addr uint32
	// Old and New are the line states for StateChange.
	Old, New coherence.State
	// Op is the snoop-level operation for SnoopHit and the observed op for
	// WrapperConvert; Op2 is the converted op for WrapperConvert.
	Op, Op2 coherence.BusOp
	// BusKind is the raw bus transaction kind (bus.Kind numeric value) for
	// BusRequest/BusGrant/Retry.  Kept as uint8 so this package does not
	// depend on package bus.
	BusKind uint8
	// Retries is the transaction's retry count so far (Retry events).
	Retries int
	// Drain reports whether a Retry was asserted by a snooper that needs a
	// dirty-line drain (cache flush in flight or ISR drain pending) before
	// the transaction can succeed, as opposed to a plain ARTRY.
	Drain bool
	// SharedIn/SharedOut carry the shared-signal value before and after a
	// SharedOverride, and SharedOut the sampled value on BusGrant.
	SharedIn, SharedOut bool
}

// Handler receives records synchronously as they are emitted.  The pointed-to
// record is only valid for the duration of the call.
type Handler func(*Record)

// Sink stamps, counts and fans out records.  A nil *Sink is valid everywhere
// and records nothing: every emit helper is a single nil check when the
// stream is disabled.
type Sink struct {
	now    func() uint64
	subs   []Handler
	counts [kindCount]uint64
	// scratch is the reusable record handed to subscribers: passing &r of a
	// per-emit stack value made every enabled emission a heap allocation
	// (the pointer escapes into the handler calls).  The sink is already
	// heap-resident, so reusing one field keeps the enabled path
	// allocation-free.  Handlers are synchronous consumers and must not
	// emit re-entrantly (none do: the auditor, exporters and the profiler
	// only read), and must copy the record if they retain it.
	scratch Record
}

// NewSink creates a sink stamping records with the now clock (typically the
// simulation engine's Now).  A nil clock stamps zero.
func NewSink(now func() uint64) *Sink {
	if now == nil {
		now = func() uint64 { return 0 }
	}
	return &Sink{now: now}
}

// Enabled reports whether the sink records events (false for nil).
func (s *Sink) Enabled() bool { return s != nil }

// Subscribe registers a handler.  Handlers run in registration order.
func (s *Sink) Subscribe(h Handler) {
	if s == nil || h == nil {
		return
	}
	s.subs = append(s.subs, h)
}

// Counts returns the non-zero per-kind event counts keyed by Kind.String()
// (nil for a nil sink).
func (s *Sink) Counts() map[string]uint64 {
	if s == nil {
		return nil
	}
	out := make(map[string]uint64)
	for k, n := range s.counts {
		if n > 0 {
			out[Kind(k).String()] = n
		}
	}
	return out
}

// Total returns the total number of records emitted.
func (s *Sink) Total() uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for _, n := range s.counts {
		t += n
	}
	return t
}

func (s *Sink) emit(r Record) {
	r.Cycle = s.now()
	s.counts[r.Kind]++
	s.scratch = r
	for i := range s.subs {
		s.subs[i](&s.scratch)
	}
}

// BusRequest records a transaction entering its master's queue.
func (s *Sink) BusRequest(core int, busKind uint8, addr uint32) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: BusRequest, Core: core, Addr: addr, BusKind: busKind})
}

// BusGrant records a tenure surviving its address phase; shared is the
// combined shared-signal sample.
func (s *Sink) BusGrant(core int, busKind uint8, addr uint32, shared bool) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: BusGrant, Core: core, Addr: addr, BusKind: busKind, SharedOut: shared})
}

// Retry records an ARTRY abort; retries is the transaction's running count
// and drain reports whether a snooper asserted the retry to drain a dirty
// line (or complete a pending ISR drain) first.
func (s *Sink) Retry(core int, busKind uint8, addr uint32, retries int, drain bool) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: Retry, Core: core, Addr: addr, BusKind: busKind, Retries: retries, Drain: drain})
}

// SnoopHit records a snooper matching a remote transaction on line addr; op
// is the coherence operation it observed (after any wrapper conversion).
func (s *Sink) SnoopHit(core int, addr uint32, op coherence.BusOp) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: SnoopHit, Core: core, Addr: addr, Op: op})
}

// StateChange records a cache line of core moving old→new.
func (s *Sink) StateChange(core int, addr uint32, old, new coherence.State) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: StateChange, Core: core, Addr: addr, Old: old, New: new})
}

// WrapperConvert records a wrapper rewriting snoop op from→to.
func (s *Sink) WrapperConvert(core int, from, to coherence.BusOp) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: WrapperConvert, Core: core, Op: from, Op2: to})
}

// SharedOverride records a wrapper changing the sampled shared signal.
func (s *Sink) SharedOverride(core int, in, out bool) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: SharedOverride, Core: core, SharedIn: in, SharedOut: out})
}

// BusComplete records a tenure finishing its data phase and leaving the bus.
func (s *Sink) BusComplete(core int, busKind uint8, addr uint32) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: BusComplete, Core: core, Addr: addr, BusKind: busKind})
}

// Drain records a completed write-back of line addr.
func (s *Sink) Drain(core int, addr uint32) {
	if s == nil {
		return
	}
	s.emit(Record{Kind: Drain, Core: core, Addr: addr})
}

// JSONLWriter streams records to w as one JSON object per line.  It is a
// Sink handler; writes are unbuffered, so callers stream to a bufio.Writer
// (and flush it) when exporting large runs.
type JSONLWriter struct {
	w io.Writer
	// busName renders Record.BusKind (the platform wires bus.Kind.String);
	// nil prints the numeric value.
	busName func(uint8) string
	err     error
	n       uint64
}

// NewJSONLWriter creates a writer targeting w.  busName, when non-nil, names
// the raw bus transaction kinds in bus-request/bus-grant/retry rows.
func NewJSONLWriter(w io.Writer, busName func(uint8) string) *JSONLWriter {
	return &JSONLWriter{w: w, busName: busName}
}

// Handle implements Handler.  After the first write error it becomes a no-op
// (check Err after the run).
func (jw *JSONLWriter) Handle(r *Record) {
	if jw.err != nil {
		return
	}
	_, jw.err = io.WriteString(jw.w, jw.render(r))
	if jw.err == nil {
		jw.n++
	}
}

// Err returns the first write error, if any.
func (jw *JSONLWriter) Err() error { return jw.err }

// Written returns the number of rows successfully written.
func (jw *JSONLWriter) Written() uint64 { return jw.n }

func (jw *JSONLWriter) render(r *Record) string {
	head := fmt.Sprintf(`{"cycle":%d,"kind":%q,"core":%d`, r.Cycle, r.Kind.String(), r.Core)
	switch r.Kind {
	case BusRequest, Retry, BusComplete:
		s := head + fmt.Sprintf(`,"op":%q,"addr":"0x%08x"`, jw.bus(r.BusKind), r.Addr)
		if r.Kind == Retry {
			s += fmt.Sprintf(`,"retries":%d,"drain":%v`, r.Retries, r.Drain)
		}
		return s + "}\n"
	case BusGrant:
		return head + fmt.Sprintf(`,"op":%q,"addr":"0x%08x","shared":%v}`+"\n", jw.bus(r.BusKind), r.Addr, r.SharedOut)
	case SnoopHit:
		return head + fmt.Sprintf(`,"addr":"0x%08x","op":%q}`+"\n", r.Addr, r.Op.String())
	case StateChange:
		return head + fmt.Sprintf(`,"addr":"0x%08x","old":%q,"new":%q}`+"\n", r.Addr, r.Old.String(), r.New.String())
	case WrapperConvert:
		return head + fmt.Sprintf(`,"from":%q,"to":%q}`+"\n", r.Op.String(), r.Op2.String())
	case SharedOverride:
		return head + fmt.Sprintf(`,"in":%v,"out":%v}`+"\n", r.SharedIn, r.SharedOut)
	case Drain:
		return head + fmt.Sprintf(`,"addr":"0x%08x"}`+"\n", r.Addr)
	default:
		return head + "}\n"
	}
}

func (jw *JSONLWriter) bus(k uint8) string {
	if jw.busName != nil {
		return jw.busName(k)
	}
	return fmt.Sprintf("Kind(%d)", k)
}
