package event

import "testing"

// The emit helpers sit on every coherence action, so both the disabled
// (nil sink) and enabled paths must be allocation-free; `make allocs` and
// the CI allocs job pin this.

// TestAllocsEmitDisabled: a nil *Sink costs one branch and zero garbage —
// the helpers must not build a Record before the nil check.
func TestAllocsEmitDisabled(t *testing.T) {
	var s *Sink
	n := testing.AllocsPerRun(1000, func() {
		s.BusRequest(1, 0, 0x40, 1)
		s.BusGrant(1, 0, 0x40, true, 1)
		s.Retry(1, 0, 0x40, 3, false, 1)
		s.Drain(1, 0x40, 1)
		s.BusComplete(1, 0, 0x40, 1)
	})
	if n != 0 {
		t.Fatalf("disabled-sink emits allocate %.1f/op, want 0", n)
	}
}

// TestAllocsEmitEnabled: with subscribers attached, emission reuses the
// sink's scratch record instead of escaping a fresh one per event.
func TestAllocsEmitEnabled(t *testing.T) {
	s := NewSink(nil)
	var total uint64
	s.Subscribe(func(r *Record) { total += uint64(r.Addr) })
	emit := func() {
		s.BusRequest(1, 0, 0x40, 1)
		s.BusGrant(1, 0, 0x40, true, 1)
		s.Retry(1, 0, 0x40, 3, true, 1)
		s.BusComplete(1, 0, 0x40, 1)
	}
	emit() // warm-up
	if n := testing.AllocsPerRun(1000, emit); n != 0 {
		t.Fatalf("enabled-sink emits allocate %.1f/op, want 0", n)
	}
	if total == 0 {
		t.Fatal("subscriber never ran")
	}
}

// TestAllocsJSONLWriter: the JSONL exporter renders into a reusable append
// buffer (strconv, no fmt.Sprintf chains), so a steady-state export is
// allocation-free per row.
func TestAllocsJSONLWriter(t *testing.T) {
	s := NewSink(nil)
	jw := NewJSONLWriter(discardWriter{}, func(k uint8) string { return "read-line" })
	s.Subscribe(jw.Handle)
	emit := func() {
		s.BusRequest(1, 0, 0x2000_0040, 12)
		s.BusGrant(1, 0, 0x2000_0040, true, 12)
		s.Retry(1, 0, 0x2000_0040, 3, true, 12)
		s.Drain(1, 0x2000_0040, 11)
		s.BusComplete(1, 0, 0x2000_0040, 12)
	}
	emit() // warm-up: first rows may grow the buffer
	if n := testing.AllocsPerRun(1000, emit); n != 0 {
		t.Fatalf("JSONL rows allocate %.1f/op, want 0", n)
	}
	if jw.Err() != nil || jw.Written() == 0 {
		t.Fatalf("writer err=%v written=%d", jw.Err(), jw.Written())
	}
}

// BenchmarkJSONLWriter measures the per-row cost of the append-based
// renderer (the guard companion to TestAllocsJSONLWriter).
func BenchmarkJSONLWriter(b *testing.B) {
	s := NewSink(nil)
	jw := NewJSONLWriter(discardWriter{}, func(k uint8) string { return "read-line" })
	s.Subscribe(jw.Handle)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.BusRequest(1, 0, 0x2000_0040, uint64(i+1))
		s.Retry(1, 0, 0x2000_0040, 2, true, uint64(i+1))
		s.BusComplete(1, 0, 0x2000_0040, uint64(i+1))
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
