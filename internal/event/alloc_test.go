package event

import "testing"

// The emit helpers sit on every coherence action, so both the disabled
// (nil sink) and enabled paths must be allocation-free; `make allocs` and
// the CI allocs job pin this.

// TestAllocsEmitDisabled: a nil *Sink costs one branch and zero garbage —
// the helpers must not build a Record before the nil check.
func TestAllocsEmitDisabled(t *testing.T) {
	var s *Sink
	n := testing.AllocsPerRun(1000, func() {
		s.BusRequest(1, 0, 0x40)
		s.BusGrant(1, 0, 0x40, true)
		s.Retry(1, 0, 0x40, 3, false)
		s.Drain(1, 0x40)
		s.BusComplete(1, 0, 0x40)
	})
	if n != 0 {
		t.Fatalf("disabled-sink emits allocate %.1f/op, want 0", n)
	}
}

// TestAllocsEmitEnabled: with subscribers attached, emission reuses the
// sink's scratch record instead of escaping a fresh one per event.
func TestAllocsEmitEnabled(t *testing.T) {
	s := NewSink(nil)
	var total uint64
	s.Subscribe(func(r *Record) { total += uint64(r.Addr) })
	emit := func() {
		s.BusRequest(1, 0, 0x40)
		s.BusGrant(1, 0, 0x40, true)
		s.Retry(1, 0, 0x40, 3, true)
		s.BusComplete(1, 0, 0x40)
	}
	emit() // warm-up
	if n := testing.AllocsPerRun(1000, emit); n != 0 {
		t.Fatalf("enabled-sink emits allocate %.1f/op, want 0", n)
	}
	if total == 0 {
		t.Fatal("subscriber never ran")
	}
}
