package event

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"hetcc/internal/coherence"
)

// TestNilSinkIsSafe exercises every emit helper and accessor on a nil sink:
// the disabled path must be a no-op, never a panic.
func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	s.BusRequest(0, 1, 0x100, 1)
	s.BusGrant(0, 1, 0x100, true, 1)
	s.Retry(0, 1, 0x100, 3, false, 1)
	s.SnoopHit(1, 0x100, coherence.BusRd, 0, false, true, false, false)
	s.StateChange(1, 0x100, coherence.Invalid, coherence.Exclusive)
	s.WrapperConvert(1, coherence.BusRd, coherence.BusRdX)
	s.SharedOverride(1, true, false)
	s.Drain(1, 0x100, 0)
	s.BusComplete(0, 1, 0x100, 1)
	s.MemAccess(0, 0x104, true)
	s.Subscribe(func(*Record) { t.Fatal("nil sink delivered an event") })
	if s.Enabled() || s.Counts() != nil || s.Total() != 0 {
		t.Fatal("nil sink misbehaves")
	}
}

// TestSinkStampsCountsAndFansOut checks the stamp clock, per-kind counters
// and multi-subscriber delivery order.
func TestSinkStampsCountsAndFansOut(t *testing.T) {
	var cycle uint64 = 41
	s := NewSink(func() uint64 { cycle++; return cycle })
	var got []Record
	s.Subscribe(func(r *Record) { got = append(got, *r) })
	order := ""
	s.Subscribe(func(*Record) { order += "b" })

	s.StateChange(0, 0x2000_0000, coherence.Invalid, coherence.Modified)
	s.StateChange(1, 0x2000_0020, coherence.Exclusive, coherence.Invalid)
	s.Drain(1, 0x2000_0020, 0)

	if len(got) != 3 || order != "bbb" {
		t.Fatalf("delivered %d/%q, want 3 records to both subscribers", len(got), order)
	}
	if got[0].Cycle != 42 || got[2].Cycle != 44 {
		t.Fatalf("cycle stamps %d/%d, want 42/44", got[0].Cycle, got[2].Cycle)
	}
	if got[0].Kind != StateChange || got[0].Old != coherence.Invalid || got[0].New != coherence.Modified {
		t.Fatalf("record %+v lost its payload", got[0])
	}
	counts := s.Counts()
	if counts["state-change"] != 2 || counts["drain"] != 1 || len(counts) != 2 {
		t.Fatalf("counts %v, want state-change:2 drain:1 only", counts)
	}
	if s.Total() != 3 {
		t.Fatalf("total %d, want 3", s.Total())
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		BusRequest: "bus-request", BusGrant: "bus-grant", Retry: "retry",
		SnoopHit: "snoop-hit", StateChange: "state-change",
		WrapperConvert: "wrapper-convert", SharedOverride: "shared-override",
		Drain: "drain", BusComplete: "bus-complete", MemAccess: "mem-access",
	}
	if len(want) != int(kindCount) {
		t.Fatalf("test covers %d kinds, package has %d", len(want), kindCount)
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Errorf("unknown kind renders %q", Kind(200).String())
	}
}

// TestJSONLWriter emits one record of each kind and checks every line is a
// self-contained JSON object carrying the kind tag and payload fields.
func TestJSONLWriter(t *testing.T) {
	var sb strings.Builder
	s := NewSink(nil)
	jw := NewJSONLWriter(&sb, func(k uint8) string { return "bus-kind-" + string('0'+rune(k)) })
	s.Subscribe(jw.Handle)

	s.BusRequest(0, 2, 0x2000_0000, 7)
	s.BusGrant(0, 2, 0x2000_0000, true, 7)
	s.Retry(1, 2, 0x2000_0000, 4, true, 7)
	s.SnoopHit(1, 0x2000_0000, coherence.BusRdX, 0, true, false, false, true)
	s.StateChange(0, 0x2000_0000, coherence.Invalid, coherence.Exclusive)
	s.WrapperConvert(1, coherence.BusRd, coherence.BusRdX)
	s.SharedOverride(1, true, false)
	s.Drain(0, 0x2000_0000, 9)
	s.BusComplete(0, 2, 0x2000_0000, 7)
	s.MemAccess(0, 0x2000_0004, true)

	if jw.Err() != nil {
		t.Fatal(jw.Err())
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 10 || jw.Written() != 10 {
		t.Fatalf("%d lines, %d written, want 10", len(lines), jw.Written())
	}
	wantKinds := []string{
		"bus-request", "bus-grant", "retry", "snoop-hit",
		"state-change", "wrapper-convert", "shared-override", "drain",
		"bus-complete", "mem-access",
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if obj["kind"] != wantKinds[i] {
			t.Errorf("line %d kind %v, want %s", i, obj["kind"], wantKinds[i])
		}
	}
	if !strings.Contains(lines[0], `"op":"bus-kind-2"`) {
		t.Errorf("busName not applied: %s", lines[0])
	}
	if !strings.Contains(lines[4], `"old":"I"`) || !strings.Contains(lines[4], `"new":"E"`) {
		t.Errorf("state-change payload wrong: %s", lines[4])
	}
	if !strings.Contains(lines[5], `"from":"BusRd"`) || !strings.Contains(lines[5], `"to":"BusRdX"`) {
		t.Errorf("wrapper-convert payload wrong: %s", lines[5])
	}
	if !strings.Contains(lines[2], `"retries":4`) || !strings.Contains(lines[2], `"drain":true`) {
		t.Errorf("retry payload wrong: %s", lines[2])
	}
	if !strings.Contains(lines[8], `"op":"bus-kind-2"`) {
		t.Errorf("bus-complete payload wrong: %s", lines[8])
	}
	if !strings.Contains(lines[3], `"peer":0`) || !strings.Contains(lines[3], `"inval":true`) ||
		!strings.Contains(lines[3], `"converted":true`) {
		t.Errorf("snoop-hit payload wrong: %s", lines[3])
	}
	if !strings.Contains(lines[9], `"addr":"0x20000004"`) || !strings.Contains(lines[9], `"write":true`) {
		t.Errorf("mem-access payload wrong: %s", lines[9])
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

// TestJSONLWriterStopsOnError checks the writer latches its first error and
// stops writing rather than spamming a broken destination.
func TestJSONLWriterStopsOnError(t *testing.T) {
	s := NewSink(nil)
	jw := NewJSONLWriter(&failWriter{n: 2}, nil)
	s.Subscribe(jw.Handle)
	for i := 0; i < 5; i++ {
		s.Drain(0, uint32(i), 0)
	}
	if jw.Err() == nil || jw.Written() != 2 {
		t.Fatalf("err=%v written=%d, want latched error after 2", jw.Err(), jw.Written())
	}
}

// flushFailWriter accepts writes but fails its final flush — the shape of a
// bufio.Writer over a full disk, where the data loss only surfaces at flush
// time.
type flushFailWriter struct{ writes int }

func (f *flushFailWriter) Write(p []byte) (int, error) { f.writes++; return len(p), nil }
func (f *flushFailWriter) Flush() error                { return errors.New("flush: disk full") }

// TestJSONLWriterCloseSurfacesErrors checks Close reports what Handle could
// not: a latched write error, and a buffered target's flush failure.
func TestJSONLWriterCloseSurfacesErrors(t *testing.T) {
	// A latched write error comes back from Close verbatim.
	s := NewSink(nil)
	jw := NewJSONLWriter(&failWriter{n: 1}, nil)
	s.Subscribe(jw.Handle)
	s.Drain(0, 0x10, 0)
	s.Drain(0, 0x20, 0)
	if err := jw.Close(); err == nil || err.Error() != "disk full" {
		t.Fatalf("Close() = %v, want the latched write error", err)
	}

	// A flush failure on an otherwise clean run surfaces from Close and
	// latches into Err.
	fw := &flushFailWriter{}
	s2 := NewSink(nil)
	jw2 := NewJSONLWriter(fw, nil)
	s2.Subscribe(jw2.Handle)
	s2.Drain(0, 0x10, 0)
	if jw2.Err() != nil {
		t.Fatalf("premature error before Close: %v", jw2.Err())
	}
	if err := jw2.Close(); err == nil || err.Error() != "flush: disk full" {
		t.Fatalf("Close() = %v, want the flush error", err)
	}
	if jw2.Err() == nil {
		t.Fatal("flush error not latched into Err")
	}
	if fw.writes != 1 {
		t.Fatalf("%d writes reached the target, want 1", fw.writes)
	}

	// An unbuffered clean target closes silently.
	var sb strings.Builder
	jw3 := NewJSONLWriter(&sb, nil)
	if err := jw3.Close(); err != nil {
		t.Fatalf("clean Close() = %v", err)
	}
}

// TestJSONLWriterNilBusName checks the numeric fallback when no bus namer is
// wired (the writer must not depend on package bus).
func TestJSONLWriterNilBusName(t *testing.T) {
	var sb strings.Builder
	s := NewSink(nil)
	jw := NewJSONLWriter(&sb, nil)
	s.Subscribe(jw.Handle)
	s.BusRequest(0, 7, 0x10, 1)
	if !strings.Contains(sb.String(), "Kind(7)") {
		t.Fatalf("fallback naming missing: %s", sb.String())
	}
}
