// Package sim provides the deterministic cycle-level simulation kernel used
// by every other hetcc subsystem.
//
// The engine advances a single global cycle counter at the frequency of the
// fastest clock in the system (the 100 MHz CPU clock in the paper's
// configuration).  Components that run on slower clocks register with a
// clock divisor: a component with divisor 2 is ticked on every second engine
// cycle, which models the 50 MHz AMBA ASB bus and the 50 MHz ARM920T core of
// the paper's Table 4.
//
// Determinism is a hard requirement (DESIGN.md invariant 7): components are
// ticked in registration order, and all randomness flows through the seeded
// SplitMix64 generator in rng.go.
package sim

import (
	"errors"
	"fmt"
)

// Ticker is the interface implemented by every simulated hardware block.
// Tick is invoked once per local clock edge with the current global cycle.
type Ticker interface {
	Tick(now uint64)
}

// TickFunc adapts an ordinary function to the Ticker interface.
type TickFunc func(now uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(now uint64) { f(now) }

// ErrMaxCycles is returned by Run when the cycle budget is exhausted before
// any component requested a stop.  It usually indicates a livelock such as
// the paper's hardware-deadlock scenario.
var ErrMaxCycles = errors.New("sim: maximum cycle budget exhausted")

type registration struct {
	name string
	div  uint64
	t    Ticker
}

// Engine is the simulation kernel.  The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now     uint64
	regs    []registration
	stopped bool
	stopErr error
	reason  string
}

// NewEngine returns an engine at cycle zero with no registered components.
func NewEngine() *Engine {
	return &Engine{}
}

// Register adds a component ticked every div engine cycles (div >= 1).
// Components are ticked in registration order, which fixes the intra-cycle
// evaluation order and keeps runs reproducible.
func (e *Engine) Register(name string, div uint64, t Ticker) {
	if div == 0 {
		panic("sim: clock divisor must be >= 1")
	}
	if t == nil {
		panic("sim: nil ticker")
	}
	e.regs = append(e.regs, registration{name: name, div: div, t: t})
}

// Now reports the current global cycle.
func (e *Engine) Now() uint64 { return e.now }

// Stop requests that the run loop terminate at the end of the current cycle.
// A nil err marks a normal completion (for example, all programs retired).
func (e *Engine) Stop(reason string, err error) {
	e.stopped = true
	e.stopErr = err
	e.reason = reason
}

// Stopped reports whether a stop has been requested.
func (e *Engine) Stopped() bool { return e.stopped }

// StopReason returns the reason string passed to Stop, or "" if running.
func (e *Engine) StopReason() string { return e.reason }

// Step advances the simulation by one engine cycle, ticking every component
// whose divisor divides the current cycle number.
func (e *Engine) Step() {
	for _, r := range e.regs {
		if e.now%r.div == 0 {
			r.t.Tick(e.now)
		}
	}
	e.now++
}

// Run steps the engine until Stop is called or maxCycles elapse.  It returns
// the error passed to Stop, or ErrMaxCycles on budget exhaustion.
func (e *Engine) Run(maxCycles uint64) error {
	for e.now < maxCycles {
		if e.stopped {
			return e.stopErr
		}
		e.Step()
	}
	if e.stopped {
		return e.stopErr
	}
	return fmt.Errorf("%w (after %d cycles)", ErrMaxCycles, maxCycles)
}
