// Package sim provides the deterministic cycle-level simulation kernel used
// by every other hetcc subsystem.
//
// The engine advances a single global cycle counter at the frequency of the
// fastest clock in the system (the 100 MHz CPU clock in the paper's
// configuration).  Components that run on slower clocks register with a
// clock divisor: a component with divisor 2 is ticked on every second engine
// cycle, which models the 50 MHz AMBA ASB bus and the 50 MHz ARM920T core of
// the paper's Table 4.
//
// Determinism is a hard requirement (DESIGN.md invariant 7): components are
// ticked in registration order, and all randomness flows through the seeded
// SplitMix64 generator in rng.go.
//
// The engine has two scheduling strategies with identical observable
// behaviour (DESIGN.md §8):
//
//   - tick: every registered component is ticked at every one of its local
//     clock edges — the reference semantics;
//   - event: components that implement Waker declare the engine cycle of
//     their next actionable edge, the engine keeps the pending wakes in an
//     indexed min-heap keyed by (cycle, registration index), and Run jumps
//     straight from one actionable cycle to the next.  Ties on the cycle
//     break by registration index, so the intra-cycle evaluation order is
//     exactly the tick-mode order.  Components that also implement
//     CatchUpper are fast-forwarded through the skipped edges whenever
//     another component could observe their state.  Components that
//     implement neither fall back to per-divisor ticking and see no
//     behaviour change at all.
package sim

import (
	"errors"
	"fmt"
	"math/bits"
)

// Ticker is the interface implemented by every simulated hardware block.
// Tick is invoked once per local clock edge with the current global cycle.
type Ticker interface {
	Tick(now uint64)
}

// TickFunc adapts an ordinary function to the Ticker interface.
type TickFunc func(now uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(now uint64) { f(now) }

// Waker is implemented by components that can tell the event scheduler when
// they next need a tick.  NextWake is consulted immediately after each Tick:
// it returns the engine cycle of the component's next required tick (the
// engine rounds it up to the component's next local clock edge), or ok=false
// for "dormant" — the component will not need a tick until some other
// component wakes it through its registration Handle.
//
// Declaring an extra wake is always safe (the component is simply ticked at
// a local edge it would have been ticked at under the tick scheduler);
// missing a required wake breaks the dual-scheduler equivalence contract.
type Waker interface {
	Ticker
	NextWake(now uint64) (uint64, bool)
}

// CatchUpper is implemented by components whose skipped local edges carry
// state another component could observe (cycle counters, stall accounting).
// The event scheduler calls CatchUp(through) to apply every local edge <=
// through in bulk: positionally during a cycle's evaluation pass (so a
// later-registered component reads exactly the state a tick-mode run would
// show), at the end of every pass, and once more at budget exhaustion.
// CatchUp must be idempotent for a given horizon.
type CatchUpper interface {
	CatchUp(through uint64)
}

// ErrMaxCycles is returned by Run when the cycle budget is exhausted before
// any component requested a stop.  It usually indicates a livelock such as
// the paper's hardware-deadlock scenario.
var ErrMaxCycles = errors.New("sim: maximum cycle budget exhausted")

type registration struct {
	name  string
	div   uint64
	t     Ticker
	waker Waker      // non-nil when t implements Waker
	catch CatchUpper // non-nil when t implements CatchUpper
}

// Engine is the simulation kernel.  The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now     uint64
	regs    []registration
	stopped bool
	stopErr error
	reason  string

	// event-scheduler state (see UseEventScheduler)
	event bool
	// passIdx is the registration index currently being evaluated inside an
	// event pass, or -1 outside one.  Handle.Wake uses it to decide whether
	// a wake may still land on the current cycle (the target has not been
	// evaluated yet this pass) or must move to the next local edge.
	passIdx int
	due     []uint64 // per registration: scheduled wake cycle (valid when pos >= 0)
	pos     []int32  // per registration: index into heap, -1 when not scheduled
	heap    []int32  // indexed binary min-heap of registration indices

	sched    SchedStats
	lastPass uint64
	havePass bool
}

// SchedStats are the event scheduler's activity counters: how hard the wake
// heap worked and how much idle time the scheduler actually skipped.  All
// zero under the tick scheduler.
type SchedStats struct {
	// Wakes counts component ticks delivered (min-heap pops).
	Wakes uint64
	// Passes counts evaluated cycles (each pass is one non-idle cycle).
	Passes uint64
	// MaxHeapDepth is the high-water mark of pending wakes.
	MaxHeapDepth int
	// SkipBuckets is a log2 histogram of the cycle distance between
	// consecutive evaluated passes: bucket i counts jumps d with
	// bits.Len64(d) == i, so bucket 1 is adjacent cycles (nothing skipped)
	// and higher buckets are idle gaps the scheduler jumped over.
	SkipBuckets [65]uint64
}

// SchedStats returns a copy of the event-scheduler counters.
func (e *Engine) SchedStats() SchedStats { return e.sched }

// NewEngine returns an engine at cycle zero with no registered components.
func NewEngine() *Engine {
	return &Engine{passIdx: -1}
}

// Handle identifies one registered component to the scheduler.  Components
// hold their handle to wake themselves (or be woken by the subsystems that
// unblock them) under the event scheduler; every method is a no-op in tick
// mode, so callers never need to branch on the scheduler in force.
type Handle struct {
	e   *Engine
	idx int32
}

// Now reports the engine's current global cycle.
func (h *Handle) Now() uint64 { return h.e.now }

// Div returns the component's clock divisor.
func (h *Handle) Div() uint64 { return h.e.regs[h.idx].div }

// Evented reports whether the event scheduler is in force.
func (h *Handle) Evented() bool { return h.e.event }

// Wake schedules the component to be ticked at engine cycle at (no-op in
// tick mode).  The cycle is clamped into feasibility — during the evaluation
// pass for cycle T, a component already evaluated this pass can be woken no
// earlier than T+1 — and then rounded up to the component's next local clock
// edge.  Duplicate wakes keep the earliest: waking a component that already
// has an earlier pending wake changes nothing, and a wake in the past
// degrades to "tick me at my next edge".  Extra wakes are harmless by
// design; see Waker.
func (h *Handle) Wake(at uint64) {
	e := h.e
	if !e.event || e.due == nil {
		// Tick mode, or an event engine being driven through Step before
		// runEvent initialised the wake structure (Step always ticks every
		// divisor edge, so no wake is needed).
		return
	}
	base := e.now
	if int(h.idx) <= e.passIdx {
		base = e.now + 1
	}
	if at < base {
		at = base
	}
	if rem := at % h.e.regs[h.idx].div; rem != 0 {
		at += h.e.regs[h.idx].div - rem
	}
	e.schedule(h.idx, at)
}

// Register adds a component ticked every div engine cycles (div >= 1).
// Components are ticked in registration order, which fixes the intra-cycle
// evaluation order and keeps runs reproducible.  The returned Handle is the
// component's wake-up channel under the event scheduler; tick-mode callers
// may ignore it.
func (e *Engine) Register(name string, div uint64, t Ticker) *Handle {
	if div == 0 {
		panic("sim: clock divisor must be >= 1")
	}
	if t == nil {
		panic("sim: nil ticker")
	}
	r := registration{name: name, div: div, t: t}
	r.waker, _ = t.(Waker)
	r.catch, _ = t.(CatchUpper)
	e.regs = append(e.regs, r)
	return &Handle{e: e, idx: int32(len(e.regs) - 1)}
}

// UseEventScheduler switches Run to the event scheduler.  Call it after the
// components are registered and before Run; Step always uses tick
// semantics.
func (e *Engine) UseEventScheduler() { e.event = true }

// EventScheduler reports whether the event scheduler is in force.
func (e *Engine) EventScheduler() bool { return e.event }

// Now reports the current global cycle.
func (e *Engine) Now() uint64 { return e.now }

// Stop requests that the run loop terminate at the end of the current cycle.
// A nil err marks a normal completion (for example, all programs retired).
func (e *Engine) Stop(reason string, err error) {
	e.stopped = true
	e.stopErr = err
	e.reason = reason
}

// Stopped reports whether a stop has been requested.
func (e *Engine) Stopped() bool { return e.stopped }

// StopReason returns the reason string passed to Stop, or "" if running.
func (e *Engine) StopReason() string { return e.reason }

// Step advances the simulation by one engine cycle, ticking every component
// whose divisor divides the current cycle number.
func (e *Engine) Step() {
	for _, r := range e.regs {
		if e.now%r.div == 0 {
			r.t.Tick(e.now)
		}
	}
	e.now++
}

// Run steps the engine until Stop is called or maxCycles elapse.  It returns
// the error passed to Stop, or ErrMaxCycles on budget exhaustion.
func (e *Engine) Run(maxCycles uint64) error {
	if e.event {
		return e.runEvent(maxCycles)
	}
	for e.now < maxCycles {
		if e.stopped {
			return e.stopErr
		}
		e.Step()
	}
	if e.stopped {
		return e.stopErr
	}
	return fmt.Errorf("%w (after %d cycles)", ErrMaxCycles, maxCycles)
}

// runEvent is the event-scheduler run loop: jump to the earliest pending
// wake, evaluate that cycle as one pass, repeat.  Stop semantics match tick
// mode exactly — a stop requested during cycle T takes effect with now=T+1,
// after the full pass — as do budget exhaustion semantics: skipped edges up
// to maxCycles-1 are bulk-applied through CatchUp so the final counters are
// those of a tick-mode run of the same budget.
func (e *Engine) runEvent(maxCycles uint64) error {
	if e.due == nil {
		e.initEventState()
	}
	for {
		if e.stopped {
			return e.stopErr
		}
		if len(e.heap) == 0 {
			break
		}
		t := e.due[e.heap[0]]
		if t >= maxCycles {
			break
		}
		if e.havePass {
			e.sched.SkipBuckets[bits.Len64(t-e.lastPass)]++
		}
		e.lastPass, e.havePass = t, true
		e.sched.Passes++
		e.now = t
		e.pass(t)
		e.now = t + 1
	}
	if e.stopped {
		return e.stopErr
	}
	if maxCycles > 0 {
		for i := range e.regs {
			if c := e.regs[i].catch; c != nil {
				c.CatchUp(maxCycles - 1)
			}
		}
	}
	e.now = maxCycles
	return fmt.Errorf("%w (after %d cycles)", ErrMaxCycles, maxCycles)
}

// initEventState sizes the wake structure and schedules every component for
// cycle 0 (every divisor has an edge there, exactly as under Step).  All
// allocation happens here, once: schedule and pop are allocation-free in
// steady state (pinned by TestAllocsScheduler).
func (e *Engine) initEventState() {
	n := len(e.regs)
	e.due = make([]uint64, n)
	e.pos = make([]int32, n)
	e.heap = make([]int32, 0, n)
	for i := range e.pos {
		e.pos[i] = -1
	}
	for i := 0; i < n; i++ {
		e.schedule(int32(i), 0)
	}
}

// pass evaluates engine cycle t: every component with a pending wake at t is
// ticked in registration order, and every CatchUpper is fast-forwarded
// through t at (or before) the position it would have been ticked at under
// the tick scheduler, so intra-cycle reads observe tick-mode state.  Wakes
// scheduled during the pass for cycle t by not-yet-evaluated components
// join the same pass; Handle.Wake forces everything else to t+1 or later.
func (e *Engine) pass(t uint64) {
	walk := 0 // next registration index to consider for positional catch-up
	for len(e.heap) > 0 && e.due[e.heap[0]] == t {
		idx := e.popMin()
		e.sched.Wakes++
		i := int(idx)
		e.passIdx = i
		for ; walk < i; walk++ {
			if c := e.regs[walk].catch; c != nil {
				c.CatchUp(t)
			}
		}
		r := &e.regs[i]
		r.t.Tick(t)
		if walk == i {
			walk++ // the component's own Tick caught it up through t
		}
		if r.waker != nil {
			if next, ok := r.waker.NextWake(t); ok {
				if next <= t {
					next = t + 1 // a waker must move forward
				}
				if rem := next % r.div; rem != 0 {
					next += r.div - rem
				}
				e.schedule(idx, next)
			}
		} else {
			// Fallback for components without a wake condition: plain
			// per-divisor ticking, exactly as under the tick scheduler.
			e.schedule(idx, t+r.div)
		}
	}
	// End of pass: bring the remaining CatchUppers through t so every pass
	// boundary leaves the whole system in tick-mode-equivalent state (this
	// is what makes a Stop during this pass exact).
	for ; walk < len(e.regs); walk++ {
		if c := e.regs[walk].catch; c != nil {
			c.CatchUp(t)
		}
	}
	e.passIdx = -1
}

// schedule inserts or tightens the pending wake for registration idx
// (keep-earliest dedup).
func (e *Engine) schedule(idx int32, at uint64) {
	if p := e.pos[idx]; p >= 0 {
		if at >= e.due[idx] {
			return
		}
		e.due[idx] = at
		e.siftUp(int(p))
		return
	}
	e.due[idx] = at
	e.pos[idx] = int32(len(e.heap))
	e.heap = append(e.heap, idx)
	if len(e.heap) > e.sched.MaxHeapDepth {
		e.sched.MaxHeapDepth = len(e.heap)
	}
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) popMin() int32 {
	idx := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.pos[e.heap[0]] = 0
	e.heap = e.heap[:last]
	e.pos[idx] = -1
	if last > 0 {
		e.siftDown(0)
	}
	return idx
}

// less orders the heap by (wake cycle, registration index): ties on the
// cycle preserve tick-mode intra-cycle evaluation order.
func (e *Engine) less(a, b int32) bool {
	if e.due[a] != e.due[b] {
		return e.due[a] < e.due[b]
	}
	return a < b
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			return
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		e.pos[e.heap[i]] = int32(i)
		e.pos[e.heap[parent]] = int32(parent)
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && e.less(e.heap[l], e.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && e.less(e.heap[r], e.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		e.heap[i], e.heap[best] = e.heap[best], e.heap[i]
		e.pos[e.heap[i]] = int32(i)
		e.pos[e.heap[best]] = int32(best)
		i = best
	}
}
