package sim

// RNG is a deterministic SplitMix64 pseudo-random number generator.  All
// stochastic behaviour in the simulator (the TCS workload's random block
// selection, optional interrupt-response jitter) draws from an RNG seeded
// from the experiment configuration, so identical configurations replay
// identical cycle-accurate executions.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
