package sim

import (
	"errors"
	"testing"
)

// periodicWaker ticks, then asks to be woken period cycles later, stopping
// the engine after limit ticks.
type periodicWaker struct {
	e      *Engine
	period uint64
	ticks  int
	limit  int
}

func (p *periodicWaker) Tick(now uint64) {
	p.ticks++
	if p.ticks >= p.limit {
		p.e.Stop("done", nil)
	}
}

func (p *periodicWaker) NextWake(now uint64) (uint64, bool) { return now + p.period, true }

// TestSchedStats pins the event scheduler's telemetry on a fully predictable
// workload: one component waking every 8 cycles makes every counter exact.
func TestSchedStats(t *testing.T) {
	e := NewEngine()
	w := &periodicWaker{e: e, period: 8, limit: 10}
	e.Register("w", 1, w)
	e.UseEventScheduler()
	if err := e.Run(1_000); err != nil {
		t.Fatal(err)
	}
	st := e.SchedStats()
	if st.Wakes != 10 || st.Passes != 10 {
		t.Fatalf("wakes %d, passes %d, want 10 each", st.Wakes, st.Passes)
	}
	if st.MaxHeapDepth != 1 {
		t.Fatalf("max heap depth %d, want 1 (single component)", st.MaxHeapDepth)
	}
	// Nine 8-cycle jumps between the ten passes: bits.Len64(8) == 4.
	for i, n := range st.SkipBuckets {
		want := uint64(0)
		if i == 4 {
			want = 9
		}
		if n != want {
			t.Errorf("skip bucket %d = %d, want %d", i, n, want)
		}
	}
}

// TestSchedStatsTickMode: the counters stay zero under the tick scheduler.
func TestSchedStatsTickMode(t *testing.T) {
	e := NewEngine()
	e.Register("r", 1, &recorder{})
	err := e.Run(100)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatal(err)
	}
	if st := e.SchedStats(); st != (SchedStats{}) {
		t.Fatalf("tick-mode scheduler stats non-zero: %+v", st)
	}
}
