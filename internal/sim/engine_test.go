package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

type recorder struct {
	ticks []uint64
}

func (r *recorder) Tick(now uint64) { r.ticks = append(r.ticks, now) }

func TestEngineTicksEveryCycle(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	e.Register("r", 1, r)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if len(r.ticks) != 10 {
		t.Fatalf("got %d ticks, want 10", len(r.ticks))
	}
	for i, c := range r.ticks {
		if c != uint64(i) {
			t.Fatalf("tick %d at cycle %d, want %d", i, c, i)
		}
	}
}

func TestEngineClockDivisor(t *testing.T) {
	e := NewEngine()
	fast := &recorder{}
	slow := &recorder{}
	e.Register("fast", 1, fast)
	e.Register("slow", 2, slow)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if len(fast.ticks) != 10 {
		t.Errorf("fast ticked %d times, want 10", len(fast.ticks))
	}
	if len(slow.ticks) != 5 {
		t.Errorf("slow ticked %d times, want 5", len(slow.ticks))
	}
	for _, c := range slow.ticks {
		if c%2 != 0 {
			t.Errorf("slow ticked at odd cycle %d", c)
		}
	}
}

func TestEngineDivisorProperty(t *testing.T) {
	f := func(divRaw uint8, stepsRaw uint8) bool {
		div := uint64(divRaw%7) + 1
		steps := int(stepsRaw%100) + 1
		e := NewEngine()
		r := &recorder{}
		e.Register("r", div, r)
		for i := 0; i < steps; i++ {
			e.Step()
		}
		want := (uint64(steps) + div - 1) / div
		return uint64(len(r.ticks)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineTickOrderIsRegistrationOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Register("a", 1, TickFunc(func(uint64) { order = append(order, "a") }))
	e.Register("b", 1, TickFunc(func(uint64) { order = append(order, "b") }))
	e.Register("c", 1, TickFunc(func(uint64) { order = append(order, "c") }))
	e.Step()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("tick order %q, want abc", got)
	}
}

func TestEngineRunStopsOnRequest(t *testing.T) {
	e := NewEngine()
	sentinel := errors.New("done")
	e.Register("stopper", 1, TickFunc(func(now uint64) {
		if now == 5 {
			e.Stop("five", sentinel)
		}
	}))
	err := e.Run(1000)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if e.Now() != 6 {
		t.Fatalf("stopped at %d, want 6 (stop takes effect end of cycle)", e.Now())
	}
	if e.StopReason() != "five" {
		t.Fatalf("reason %q", e.StopReason())
	}
}

func TestEngineRunBudgetExhaustion(t *testing.T) {
	e := NewEngine()
	e.Register("noop", 1, TickFunc(func(uint64) {}))
	err := e.Run(100)
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if e.Now() != 100 {
		t.Fatalf("ran %d cycles, want 100", e.Now())
	}
}

func TestEngineRunNormalStopReturnsNil(t *testing.T) {
	e := NewEngine()
	e.Register("stopper", 1, TickFunc(func(now uint64) {
		if now == 3 {
			e.Stop("ok", nil)
		}
	}))
	if err := e.Run(100); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestRegisterPanicsOnBadArgs(t *testing.T) {
	e := NewEngine()
	mustPanic(t, func() { e.Register("x", 0, TickFunc(func(uint64) {})) })
	mustPanic(t, func() { e.Register("x", 1, nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
