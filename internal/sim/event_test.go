package sim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// wakerFunc is a Waker whose wake condition is supplied per test.
type wakerFunc struct {
	tick func(now uint64)
	next func(now uint64) (uint64, bool)
}

func (w *wakerFunc) Tick(now uint64) { w.tick(now) }
func (w *wakerFunc) NextWake(now uint64) (uint64, bool) {
	if w.next == nil {
		return 0, false
	}
	return w.next(now)
}

// lazyCounter models the Timer idiom: it never needs a tick of its own, and
// bulk-applies skipped local edges (at cycles 0, div, 2*div, ...) whenever the
// scheduler catches it up.
type lazyCounter struct {
	div   uint64
	edges uint64 // number of local edges applied
}

func (c *lazyCounter) Tick(now uint64)                { c.sync(now) }
func (c *lazyCounter) NextWake(uint64) (uint64, bool) { return 0, false }
func (c *lazyCounter) CatchUp(through uint64)         { c.sync(through) }
func (c *lazyCounter) sync(x uint64) {
	if t := x/c.div + 1; t > c.edges {
		c.edges = t
	}
}

// TestEventTieBreakRegistrationOrder: wakes pending for the same cycle are
// evaluated in registration order, so the intra-cycle order is exactly the
// tick scheduler's.
func TestEventTieBreakRegistrationOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		w := &wakerFunc{}
		w.tick = func(now uint64) { order = append(order, fmt.Sprintf("%s@%d", name, now)) }
		w.next = func(now uint64) (uint64, bool) { return now + 3, true }
		e.Register(name, 1, w)
	}
	e.UseEventScheduler()
	if err := e.Run(7); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	want := []string{"a@0", "b@0", "c@0", "a@3", "b@3", "c@3", "a@6", "b@6", "c@6"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("evaluation order %v, want %v", order, want)
	}
}

// TestEventWakeInThePast: a wake targeting a cycle that already passed
// degrades to "tick me at my next feasible edge" — the current cycle if the
// target has not been evaluated this pass, the next local edge otherwise.
func TestEventWakeInThePast(t *testing.T) {
	e := NewEngine()
	var early, late []uint64

	// Registered before the controller: by the time the controller runs at
	// cycle 5, this component has been evaluated, so a past wake lands at 6.
	target0 := &wakerFunc{tick: func(now uint64) { early = append(early, now) }}
	h0 := e.Register("early", 1, target0)

	var h2 *Handle
	ctrl := &wakerFunc{next: func(now uint64) (uint64, bool) { return now + 5, true }}
	ctrl.tick = func(now uint64) {
		if now == 5 {
			h0.Wake(1) // past, already evaluated this pass -> cycle 6
			h2.Wake(1) // past, not yet evaluated this pass -> cycle 5
		}
	}
	e.Register("ctrl", 1, ctrl)

	target2 := &wakerFunc{tick: func(now uint64) { late = append(late, now) }}
	h2 = e.Register("late", 1, target2)

	e.UseEventScheduler()
	if err := e.Run(20); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if fmt.Sprint(early) != fmt.Sprint([]uint64{0, 6}) {
		t.Fatalf("already-evaluated target ticked at %v, want [0 6]", early)
	}
	if fmt.Sprint(late) != fmt.Sprint([]uint64{0, 5}) {
		t.Fatalf("not-yet-evaluated target ticked at %v, want [0 5]", late)
	}
}

// TestEventDuplicateWakesKeepEarliest: re-waking a component tightens its
// pending wake monotonically — a later wake never postpones an earlier one —
// and wakes are rounded up to the component's local clock edge.
func TestEventDuplicateWakesKeepEarliest(t *testing.T) {
	e := NewEngine()
	var ticks []uint64

	// The controller issues the wakes at cycle 3, once the target's initial
	// cycle-0 wake has been consumed and it sits dormant.
	var hT *Handle
	ctrl := &wakerFunc{next: func(now uint64) (uint64, bool) { return now + 3, true }}
	ctrl.tick = func(now uint64) {
		if now == 3 {
			hT.Wake(20)
			hT.Wake(30) // later than pending: ignored
			hT.Wake(9)  // earlier: tightens, rounds up to the div=2 edge at 10
		}
	}
	e.Register("ctrl", 1, ctrl)
	target := &wakerFunc{tick: func(now uint64) { ticks = append(ticks, now) }}
	hT = e.Register("target", 2, target)

	e.UseEventScheduler()
	if err := e.Run(100); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if fmt.Sprint(ticks) != fmt.Sprint([]uint64{0, 10}) {
		t.Fatalf("target ticked at %v, want [0 10] (earliest wake, edge-aligned)", ticks)
	}
}

// TestEventFastForwardHugeCycles: divisor fast-forward stays exact at
// wraparound-scale cycle counts — a dormant CatchUpper skipped across 2^40+
// cycles in a handful of passes must account for exactly the edges a 2^40
// tick-mode loop would have delivered.
func TestEventFastForwardHugeCycles(t *testing.T) {
	const stride = uint64(1) << 40
	e := NewEngine()
	driver := &wakerFunc{}
	driver.tick = func(now uint64) {
		if now >= 3*stride {
			e.Stop("done", nil)
		}
	}
	driver.next = func(now uint64) (uint64, bool) { return now + stride, true }
	e.Register("driver", 1, driver)
	counters := []*lazyCounter{{div: 1}, {div: 2}, {div: 4}, {div: 10000}}
	for i, c := range counters {
		e.Register(fmt.Sprintf("ctr%d", i), c.div, c)
	}
	e.UseEventScheduler()
	if err := e.Run(1 << 50); err != nil {
		t.Fatalf("err = %v, want nil (normal stop)", err)
	}
	stop := 3 * stride
	if e.Now() != stop+1 {
		t.Fatalf("stopped at %d, want %d", e.Now(), stop+1)
	}
	for _, c := range counters {
		if want := stop/c.div + 1; c.edges != want {
			t.Fatalf("div=%d counter saw %d edges, want %d", c.div, c.edges, want)
		}
	}
}

// TestEventBudgetExhaustionCatchesUp: when the budget runs out, skipped edges
// through maxCycles-1 are bulk-applied so the final counters match a tick-mode
// run of the same budget, and Now() lands exactly on the budget.
func TestEventBudgetExhaustionCatchesUp(t *testing.T) {
	e := NewEngine()
	idle := &wakerFunc{tick: func(uint64) {}}
	e.Register("idle", 1, idle) // dormant after cycle 0
	c := &lazyCounter{div: 3}
	e.Register("ctr", 3, c)
	e.UseEventScheduler()
	if err := e.Run(100); !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if e.Now() != 100 {
		t.Fatalf("ran %d cycles, want 100", e.Now())
	}
	if want := uint64(99)/3 + 1; c.edges != want {
		t.Fatalf("counter saw %d edges, want %d", c.edges, want)
	}
}

// TestEventStopMatchesTickSemantics pins the tick-mode ground truth under the
// event scheduler: a stop requested during cycle 5 takes effect with Now()==6.
func TestEventStopMatchesTickSemantics(t *testing.T) {
	e := NewEngine()
	sentinel := errors.New("done")
	w := &wakerFunc{next: func(now uint64) (uint64, bool) { return now + 1, true }}
	w.tick = func(now uint64) {
		if now == 5 {
			e.Stop("five", sentinel)
		}
	}
	e.Register("stopper", 1, w)
	e.UseEventScheduler()
	if err := e.Run(1000); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if e.Now() != 6 {
		t.Fatalf("stopped at %d, want 6", e.Now())
	}
}

// periodic acts on every period-th local edge: the Waker/CatchUpper shape of
// the CPU cores (long stretches of skippable edges punctuated by edges whose
// effects are observable).  Both schedulers must record identical action
// sequences and apply identical edge counts.
type periodic struct {
	div     uint64
	period  uint64
	applied uint64   // local edges applied (edge j lies at cycle j*div)
	acts    []uint64 // cycles of the action edges, in order
}

func (p *periodic) applyThrough(cycle uint64) {
	for j := p.applied; j <= cycle/p.div; j++ {
		if j%p.period == 0 {
			p.acts = append(p.acts, j*p.div)
		}
	}
	if t := cycle/p.div + 1; t > p.applied {
		p.applied = t
	}
}

func (p *periodic) Tick(now uint64)        { p.applyThrough(now) }
func (p *periodic) CatchUp(through uint64) { p.applyThrough(through) }
func (p *periodic) NextWake(now uint64) (uint64, bool) {
	next := ((p.applied + p.period - 1) / p.period) * p.period
	return next * p.div, true
}

// TestEventTickEquivalenceProperty is the kernel-level equivalence property:
// for random divisor/period mixes, an event-scheduled run and a tick-scheduled
// run of the same budget produce identical action sequences and edge counts
// for every component.
func TestEventTickEquivalenceProperty(t *testing.T) {
	f := func(d1, p1, d2, p2, budgetRaw uint8) bool {
		mk := func() []*periodic {
			return []*periodic{
				{div: uint64(d1%6) + 1, period: uint64(p1%13) + 1},
				{div: uint64(d2%6) + 1, period: uint64(p2%13) + 1},
			}
		}
		budget := uint64(budgetRaw)%2000 + 1
		run := func(comps []*periodic, event bool) {
			e := NewEngine()
			for i, c := range comps {
				e.Register(fmt.Sprintf("p%d", i), c.div, c)
			}
			if event {
				e.UseEventScheduler()
			}
			if err := e.Run(budget); !errors.Is(err, ErrMaxCycles) {
				t.Fatalf("err = %v, want ErrMaxCycles", err)
			}
		}
		tick, event := mk(), mk()
		run(tick, false)
		run(event, true)
		for i := range tick {
			if tick[i].applied != event[i].applied {
				t.Logf("component %d: %d edges under tick, %d under event", i, tick[i].applied, event[i].applied)
				return false
			}
			if fmt.Sprint(tick[i].acts) != fmt.Sprint(event[i].acts) {
				t.Logf("component %d: acts %v under tick, %v under event", i, tick[i].acts, event[i].acts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAllocsScheduler pins the steady-state wake structure at zero
// allocations: all allocation happens once in initEventState, and
// schedule/popMin on a warmed heap never allocate (the `make allocs` gate).
func TestAllocsScheduler(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		w := &wakerFunc{tick: func(uint64) {}}
		w.next = func(now uint64) (uint64, bool) { return now + 7, true }
		e.Register(fmt.Sprintf("w%d", i), 1, w)
	}
	e.UseEventScheduler()
	e.initEventState()
	for len(e.heap) > 0 {
		e.popMin()
	}
	avg := testing.AllocsPerRun(200, func() {
		base := e.now
		for i := int32(0); i < 8; i++ {
			e.schedule(i, base+uint64(13-i))
		}
		e.schedule(3, base+1) // tighten a pending wake
		for len(e.heap) > 0 {
			e.popMin()
		}
		e.now += 20
	})
	if avg != 0 {
		t.Fatalf("schedule/pop steady state allocates %.1f times per run, want 0", avg)
	}
}
