package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical values across seeds", same)
	}
}

func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnCoversRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(10)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d/10 values seen in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	mustPanic(t, func() { r.Intn(0) })
	mustPanic(t, func() { r.Intn(-5) })
}
