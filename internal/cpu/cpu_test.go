package cpu

import (
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/cache"
	"hetcc/internal/coherence"
	"hetcc/internal/isa"
	"hetcc/internal/lock"
	"hetcc/internal/memory"
	"hetcc/internal/sim"
	"hetcc/internal/snooplogic"
)

const (
	sharedBase uint32 = 0x1000_0000
	lockWord   uint32 = 0x2000_0000
	turnWord   uint32 = 0x2000_0004
)

func attrAll(addr uint32) Attr {
	// Shared region cacheable; lock area uncached.
	return Attr{Cacheable: addr < 0x2000_0000}
}

type bench struct {
	t      *testing.T
	eng    *sim.Engine
	bus    *bus.Bus
	mem    *memory.Memory
	cpus   []*CPU
	ctls   []*cache.Controller
	snoops []*snooplogic.SnoopLogic
	halted int
}

// newBench builds n cores; snoopless[i] marks a coherence-less core that
// gets external snoop logic (its controller is not on the snoop network).
func newBench(t *testing.T, cfgs []Config, snoopless []bool, locks *lock.Manager) *bench {
	t.Helper()
	bn := &bench{t: t, eng: sim.NewEngine(), mem: memory.New()}
	bn.bus = bus.New(bus.Config{Timing: memory.DefaultTiming()}, bn.mem, nil)
	for i, cfg := range cfgs {
		arr, err := cache.New(cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 32}, coherence.New(coherence.MESI))
		if err != nil {
			t.Fatal(err)
		}
		ext := snoopless != nil && snoopless[i]
		ctl := cache.NewController(cfg.Name, arr, bn.bus, nil, !ext, nil)
		var sl *snooplogic.SnoopLogic
		if ext {
			sl = snooplogic.New(cfg.Name+"-snoop", bn.bus, ctl.MasterID(), 32, nil, nil)
		}
		c := New(cfg, i, ctl, attrAll, locks, sl)
		if sl != nil {
			sl.SetFIQRaiser(c)
		}
		c.OnHalt(func(int) { bn.halted++ })
		bn.cpus = append(bn.cpus, c)
		bn.ctls = append(bn.ctls, ctl)
		bn.snoops = append(bn.snoops, sl)
		bn.eng.Register(cfg.Name, cfg.ClockDiv, c)
	}
	bn.eng.Register("bus", 2, sim.TickFunc(bn.bus.Tick))
	return bn
}

func (bn *bench) run(maxCycles uint64) {
	bn.t.Helper()
	for bn.eng.Now() < maxCycles && bn.halted < len(bn.cpus) {
		bn.eng.Step()
	}
	if bn.halted < len(bn.cpus) {
		bn.t.Fatalf("programs did not retire within %d cycles", maxCycles)
	}
}

func singleCore(t *testing.T, cfg Config) *bench {
	return newBench(t, []Config{cfg}, nil, nil)
}

func TestProgramExecutesAndHalts(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	prog := isa.NewBuilder().
		Write(sharedBase, 11).
		Read(sharedBase).
		Delay(5).
		Halt()
	if err := bn.cpus[0].LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	bn.run(10000)
	st := bn.cpus[0].Stats()
	if !st.Halted || st.Instructions != 4 {
		t.Fatalf("stats %+v", st)
	}
	if st.DelayCycles < 5 {
		t.Fatalf("delay cycles %d, want >= 5", st.DelayCycles)
	}
	if w, ok := bn.ctls[0].Cache().PeekWord(sharedBase); !ok || w != 11 {
		t.Fatal("store not in cache")
	}
}

func TestLoadStoreHooksFire(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	var loads, stores int
	var lastLoad uint32
	bn.cpus[0].SetHooks(Hooks{
		OnLoad:  func(_ int, _, val uint32, _ uint64) { loads++; lastLoad = val },
		OnStore: func(_ int, _, _ uint32, _ uint64) { stores++ },
	})
	prog := isa.NewBuilder().Write(sharedBase, 7).Read(sharedBase).Halt()
	bn.cpus[0].LoadProgram(prog)
	bn.run(10000)
	if loads != 1 || stores != 1 || lastLoad != 7 {
		t.Fatalf("loads=%d stores=%d lastLoad=%d", loads, stores, lastLoad)
	}
}

func TestUncachedAccessBypassesCache(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	prog := isa.NewBuilder().Write(lockWord+0x40, 3).Read(lockWord + 0x40).Halt()
	bn.cpus[0].LoadProgram(prog)
	bn.run(10000)
	if bn.mem.Peek(lockWord+0x40) != 3 {
		t.Fatal("uncached write lost")
	}
	if _, ok := bn.ctls[0].Cache().PeekWord(lockWord + 0x40); ok {
		t.Fatal("uncached access allocated")
	}
}

func TestAccessOverheadCharged(t *testing.T) {
	progOf := func() isa.Program {
		b := isa.NewBuilder()
		for i := 0; i < 50; i++ {
			b.Read(sharedBase) // hits after the first
		}
		return b.Halt()
	}
	bnFast := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	bnFast.cpus[0].LoadProgram(progOf())
	bnFast.run(100000)
	fast := bnFast.cpus[0].Stats().HaltCycle

	bnSlow := singleCore(t, Config{Name: "c0", ClockDiv: 1, AccessOverhead: 4})
	bnSlow.cpus[0].LoadProgram(progOf())
	bnSlow.run(100000)
	slow := bnSlow.cpus[0].Stats().HaltCycle
	if slow <= fast+150 {
		t.Fatalf("overhead not charged: fast=%d slow=%d", fast, slow)
	}
}

func TestCleanLineWritesBack(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1, CacheOpOverhead: 2})
	prog := isa.NewBuilder().Write(sharedBase, 9).Clean(sharedBase).Halt()
	bn.cpus[0].LoadProgram(prog)
	bn.run(10000)
	if bn.mem.Peek(sharedBase) != 9 {
		t.Fatal("clean did not write back")
	}
	if bn.ctls[0].Cache().StateOf(sharedBase) != coherence.Invalid {
		t.Fatal("clean did not invalidate")
	}
	if bn.cpus[0].Stats().CleanOps != 1 {
		t.Fatal("clean not counted")
	}
}

func TestInvalLineDiscardsAndNotifiesSnoopLogic(t *testing.T) {
	bn := newBench(t, []Config{{Name: "arm", ClockDiv: 2}}, []bool{true}, nil)
	prog := isa.NewBuilder().Read(sharedBase).Inval(sharedBase).Halt()
	bn.cpus[0].LoadProgram(prog)
	bn.run(10000)
	if bn.snoops[0].Holds(sharedBase) {
		t.Fatal("CAM entry survived software invalidate")
	}
}

func TestTwoCoresContendOnUncachedTASLock(t *testing.T) {
	mgr, err := lock.NewManager(lock.Config{
		Kind:      lock.UncachedTAS,
		Tasks:     2,
		Layout:    lock.Layout{LockWord: lockWord, TurnWord: turnWord},
		SpinDelay: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	bn := newBench(t, []Config{{Name: "c0", ClockDiv: 1}, {Name: "c1", ClockDiv: 1}}, nil, mgr)
	// Each core increments a shared counter under the lock 5 times; with
	// mutual exclusion the final value is exactly 10.  The increment is
	// modelled by reading then writing a distinct marching value.
	build := func(task int) isa.Program {
		b := isa.NewBuilder()
		for i := 0; i < 5; i++ {
			b.Lock(0)
			b.Read(sharedBase)
			b.Write(sharedBase, uint32(task*100+i))
			b.Unlock(0)
		}
		return b.Halt()
	}
	bn.cpus[0].LoadProgram(build(0))
	bn.cpus[1].LoadProgram(build(1))
	bn.run(1_000_000)
	s0, s1 := bn.cpus[0].Stats(), bn.cpus[1].Stats()
	if s0.LockAcquires != 5 || s1.LockAcquires != 5 || s0.LockReleases != 5 || s1.LockReleases != 5 {
		t.Fatalf("lock counts %d/%d acq, %d/%d rel", s0.LockAcquires, s1.LockAcquires, s0.LockReleases, s1.LockReleases)
	}
	if bn.mem.Peek(lockWord) != 0 {
		t.Fatal("lock left held")
	}
}

func TestAlternatingLockStrictOrder(t *testing.T) {
	mgr, err := lock.NewManager(lock.Config{
		Kind:      lock.UncachedTAS,
		Tasks:     2,
		Layout:    lock.Layout{LockWord: lockWord, TurnWord: turnWord},
		Alternate: true,
		SpinDelay: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	bn := newBench(t, []Config{{Name: "c0", ClockDiv: 1}, {Name: "c1", ClockDiv: 2}}, nil, mgr)
	var order []int
	for i := range bn.cpus {
		i := i
		bn.cpus[i].SetHooks(Hooks{OnStore: func(core int, addr, _ uint32, _ uint64) {
			if addr == sharedBase {
				order = append(order, core)
			}
		}})
	}
	build := func(task int) isa.Program {
		b := isa.NewBuilder()
		for i := 0; i < 4; i++ {
			b.Lock(0).Write(sharedBase, 1).Unlock(0)
		}
		return b.Halt()
	}
	bn.cpus[0].LoadProgram(build(0))
	bn.cpus[1].LoadProgram(build(1))
	bn.run(1_000_000)
	if len(order) != 8 {
		t.Fatalf("%d critical sections, want 8", len(order))
	}
	for i, c := range order {
		if c != i%2 {
			t.Fatalf("CS order %v not strictly alternating", order)
		}
	}
}

func TestFIQTriggersISRDrain(t *testing.T) {
	cfgs := []Config{
		{Name: "ppc", ClockDiv: 1},
		{Name: "arm", ClockDiv: 2, InterruptResponse: 4, ISREntry: 4, ISRExit: 4},
	}
	bn := newBench(t, cfgs, []bool{false, true}, nil)
	// ARM dirties a line, then loops on private work; PPC reads the line.
	armProg := isa.NewBuilder().Write(sharedBase, 21).Delay(2000).Halt()
	ppcProg := isa.NewBuilder().Delay(100).Read(sharedBase).Halt()
	bn.cpus[1].LoadProgram(armProg)
	bn.cpus[0].LoadProgram(ppcProg)
	var ppcLoad uint32
	bn.cpus[0].SetHooks(Hooks{OnLoad: func(_ int, _, val uint32, _ uint64) { ppcLoad = val }})
	bn.run(1_000_000)
	if ppcLoad != 21 {
		t.Fatalf("PPC read %d, want 21 (ISR drained the ARM line)", ppcLoad)
	}
	armStats := bn.cpus[1].Stats()
	if armStats.FIQsRaised != 1 || armStats.ISRRuns != 1 {
		t.Fatalf("ARM stats %+v", armStats)
	}
	if armStats.ISRCycles < 8 {
		t.Fatalf("ISR cycles %d suspiciously low", armStats.ISRCycles)
	}
	if bn.ctls[1].Cache().StateOf(sharedBase) != coherence.Invalid {
		t.Fatal("ARM line survived the drain")
	}
	if bn.snoops[1].Holds(sharedBase) {
		t.Fatal("CAM entry survived the drain")
	}
}

func TestInterruptResponseDelaysISR(t *testing.T) {
	run := func(resp int) uint64 {
		cfgs := []Config{
			{Name: "ppc", ClockDiv: 1},
			{Name: "arm", ClockDiv: 2, InterruptResponse: resp},
		}
		bn := newBench(t, cfgs, []bool{false, true}, nil)
		bn.cpus[1].LoadProgram(isa.NewBuilder().Write(sharedBase, 1).Delay(5000).Halt())
		bn.cpus[0].LoadProgram(isa.NewBuilder().Delay(50).Read(sharedBase).Halt())
		var loadedAt uint64
		bn.cpus[0].SetHooks(Hooks{OnLoad: func(_ int, _, _ uint32, now uint64) { loadedAt = now }})
		bn.run(1_000_000)
		return loadedAt
	}
	fast, slow := run(2), run(100)
	if slow <= fast+100 {
		t.Fatalf("interrupt response not honoured: fast=%d slow=%d", fast, slow)
	}
}

func TestQueuedFIQsServicedSequentially(t *testing.T) {
	cfgs := []Config{
		{Name: "ppc", ClockDiv: 1},
		{Name: "arm", ClockDiv: 2, InterruptResponse: 2},
	}
	bn := newBench(t, cfgs, []bool{false, true}, nil)
	// ARM dirties two lines; PPC reads both.
	bn.cpus[1].LoadProgram(isa.NewBuilder().Write(sharedBase, 1).Write(sharedBase+32, 2).Delay(4000).Halt())
	bn.cpus[0].LoadProgram(isa.NewBuilder().Delay(100).Read(sharedBase).Read(sharedBase + 32).Halt())
	bn.run(1_000_000)
	if got := bn.cpus[1].Stats().ISRRuns; got != 2 {
		t.Fatalf("ISR runs %d, want 2", got)
	}
}

func TestHaltWithEmptyishProgram(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	bn.cpus[0].LoadProgram(isa.NewBuilder().Halt())
	bn.run(100)
	if !bn.cpus[0].Halted() {
		t.Fatal("not halted")
	}
}

func TestLoadProgramRejectsInvalid(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	if err := bn.cpus[0].LoadProgram(isa.Program{{Kind: isa.Read}}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestLockOpWithoutManagerPanics(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	bn.cpus[0].LoadProgram(isa.NewBuilder().Lock(0).Halt())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	bn.run(100)
}

func TestWaitEqUncachedPolls(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	// Mailbox in the uncached region (>= 0x2000_0000 per attrAll).
	mailbox := uint32(0x2000_0100)
	prog := isa.NewBuilder().WaitEq(mailbox, 5).Halt()
	bn.cpus[0].LoadProgram(prog)
	// Set the mailbox from outside after some cycles.
	fired := false
	bn.eng.Register("setter", 1, sim.TickFunc(func(now uint64) {
		if now == 300 && !fired {
			fired = true
			bn.mem.Poke(mailbox, 5)
		}
	}))
	bn.run(100000)
	if bn.cpus[0].Stats().HaltCycle < 300 {
		t.Fatalf("halted at %d, before the mailbox was set", bn.cpus[0].Stats().HaltCycle)
	}
}

func TestWaitEqCachedImmediateMatch(t *testing.T) {
	bn := singleCore(t, Config{Name: "c0", ClockDiv: 1})
	prog := isa.NewBuilder().Write(sharedBase, 9).WaitEq(sharedBase, 9).Halt()
	bn.cpus[0].LoadProgram(prog)
	bn.run(10000)
	if !bn.cpus[0].Halted() {
		t.Fatal("did not halt")
	}
}

// TestHaltedCoreStillServicesFIQ: a retired task's core must keep running
// the drain ISR, or the other master would wedge (e.g. BCS hand-off).
func TestHaltedCoreStillServicesFIQ(t *testing.T) {
	cfgs := []Config{
		{Name: "ppc", ClockDiv: 1},
		{Name: "arm", ClockDiv: 2, InterruptResponse: 2},
	}
	bn := newBench(t, cfgs, []bool{false, true}, nil)
	// ARM dirties a line and halts immediately; PPC reads it afterwards.
	bn.cpus[1].LoadProgram(isa.NewBuilder().Write(sharedBase, 77).Halt())
	bn.cpus[0].LoadProgram(isa.NewBuilder().Delay(400).Read(sharedBase).Halt())
	var got uint32
	bn.cpus[0].SetHooks(Hooks{OnLoad: func(_ int, _, v uint32, _ uint64) { got = v }})
	bn.run(1_000_000)
	if got != 77 {
		t.Fatalf("PPC read %d, want 77 (halted ARM must still drain)", got)
	}
	if bn.cpus[1].Stats().ISRRuns != 1 {
		t.Fatal("halted ARM did not run the ISR")
	}
}

// TestISRPreemptsDelayAndResumesIt: the interrupted computation's remaining
// cycles must survive the ISR.
func TestISRPreemptsDelayAndResumesIt(t *testing.T) {
	cfgs := []Config{
		{Name: "ppc", ClockDiv: 1},
		{Name: "arm", ClockDiv: 2, InterruptResponse: 2, ISREntry: 2, ISRExit: 2},
	}
	bn := newBench(t, cfgs, []bool{false, true}, nil)
	// ARM: dirty a line, then a long Delay during which the FIQ arrives.
	bn.cpus[1].LoadProgram(isa.NewBuilder().Write(sharedBase, 1).Delay(1000).Halt())
	bn.cpus[0].LoadProgram(isa.NewBuilder().Delay(50).Read(sharedBase).Halt())
	bn.run(1_000_000)
	armStats := bn.cpus[1].Stats()
	if armStats.ISRRuns != 1 {
		t.Fatalf("ISR runs %d", armStats.ISRRuns)
	}
	// The ARM's total run must cover the full 1000-cycle delay (x2 for
	// clock div) plus the ISR work: the preempted delay resumed.
	if armStats.HaltCycle < 2000 {
		t.Fatalf("ARM halted at %d: preempted delay was not resumed", armStats.HaltCycle)
	}
	// PPC must have completed long before the ARM's delay expired — the
	// interrupt preempted the computation rather than waiting it out.
	ppcHalt := bn.cpus[0].Stats().HaltCycle
	if ppcHalt > 500 {
		t.Fatalf("PPC waited until %d: FIQ did not preempt the delay", ppcHalt)
	}
}
