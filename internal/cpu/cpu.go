// Package cpu models the processor cores of the heterogeneous platform as
// program-driven in-order machines: one micro-op (package isa) per CPU
// cycle when not stalled on the memory system.
//
// Three behaviours matter for reproducing the paper:
//
//   - clock domains: the PowerPC755 runs at 100 MHz while the ARM920T and
//     the ASB run at 50 MHz (Table 4) — the platform registers each core
//     with the matching engine divisor;
//   - lock protocols execute as explicit memory-operation sequences
//     (package lock), so spin-waiting occupies the bus realistically;
//   - the ARM920T's software snooping: the snoop logic raises nFIQ, the
//     core takes the interrupt only at an instruction boundary after the
//     configurable interrupt response time, and the service routine drains
//     or invalidates the hit line.  A core stalled on a bus access cannot
//     reach an instruction boundary — exactly the window that produces the
//     paper's hardware-deadlock problem (Figure 4).
package cpu

import (
	"fmt"

	"hetcc/internal/bus"
	"hetcc/internal/cache"
	"hetcc/internal/isa"
	"hetcc/internal/lock"
	"hetcc/internal/metrics"
	"hetcc/internal/profile"
	"hetcc/internal/sim"
	"hetcc/internal/snooplogic"
)

// Attr describes how the core must access an address region.
type Attr struct {
	// Cacheable routes accesses through the data cache.
	Cacheable bool
}

// AttrFunc is the platform's address-region attribute table.
type AttrFunc func(addr uint32) Attr

// Config parameterises a core.
type Config struct {
	// Name labels the core in reports and traces.
	Name string
	// ClockDiv is the engine-cycle divisor (1 = 100 MHz, 2 = 50 MHz).
	ClockDiv uint64
	// InterruptResponse is the minimum number of CPU cycles between nFIQ
	// assertion and the core taking the interrupt (paper Figure 4's
	// "interrupt response time").
	InterruptResponse int
	// ISREntry and ISRExit are the CPU-cycle overheads of entering and
	// leaving the interrupt service routine (mode switch, register save
	// and restore, return).
	ISREntry int
	ISRExit  int
	// CacheOpOverhead is the extra CPU cycles charged per explicit cache
	// maintenance instruction (address generation and loop control in the
	// software solution's drain loop).
	CacheOpOverhead int
	// AccessOverhead is the extra CPU cycles charged per load/store
	// micro-op, modelling the address-generation and loop-control
	// instructions that surround each access in the real microbenchmark
	// kernels.
	AccessOverhead int
}

// Stats collects per-core counters.
type Stats struct {
	Instructions uint64
	StallCycles  uint64
	DelayCycles  uint64
	BusyRetries  uint64
	LockAcquires uint64
	LockReleases uint64
	LockOps      uint64
	CleanOps     uint64
	InvalOps     uint64
	FIQsRaised   uint64
	ISRRuns      uint64
	ISRCycles    uint64
	HaltCycle    uint64
	Halted       bool
}

// Hooks receive retired loads and stores (used by the platform's golden-
// model coherence checker and by tests).  Either may be nil.
type Hooks struct {
	OnLoad  func(core int, addr, val uint32, now uint64)
	OnStore func(core int, addr, val uint32, now uint64)
}

type runState uint8

const (
	stateRun runState = iota
	stateStalled
)

type fiqEntry struct {
	base    uint32
	readyAt uint64 // engine cycle at which the interrupt may be taken
	stamped bool
}

type isrPhase uint8

const (
	isrIdle isrPhase = iota
	isrClean
	isrExit
)

// CPU is one simulated core.
type CPU struct {
	cfg   Config
	id    int
	ctl   *cache.Controller
	attr  AttrFunc
	locks *lock.Manager
	snoop *snooplogic.SnoopLogic // the core's own snoop logic (nil unless PF1/PF2)
	hooks Hooks

	prog    isa.Program
	pc      int
	state   runState
	halted  bool
	delay   int
	lastNow uint64

	lockStep       lock.Stepper
	lockPending    lock.MemOp
	lockHasPending bool
	lockLast       uint32
	releasing      bool
	lockStart      uint64 // engine cycle the in-flight acquisition began

	locksHeld int
	// fiqs[fiqHead:] is the pending-interrupt queue; entries are consumed by
	// advancing fiqHead and the slice is rewound when it empties, so the
	// backing array is reused instead of re-growing after every interrupt.
	fiqs       []fiqEntry
	fiqHead    int
	isr        isrPhase
	isrLine    uint32
	isrFound   bool
	savedDelay int // program delay preempted by an interrupt

	onHalt func(id int)
	stats  Stats

	// mLockAcq observes engine cycles from the first acquisition step to
	// lock ownership (nil-safe; see SetMetrics).
	mLockAcq *metrics.Histogram
	// mISR observes engine cycles per interrupt-drain (ISR entry to exit).
	mISR     *metrics.Histogram
	isrStart uint64

	// prof is the nil-safe stall-cause ledger (see SetProfile); wasStalled
	// detects the stall→run edge so stall episodes are closed exactly once.
	prof       *profile.Ledger
	wasStalled bool

	// handle is the core's event-scheduler registration (nil under the tick
	// scheduler; see BindScheduler).  lastTicked is the engine cycle of the
	// last local clock edge the core has accounted for — catchUp bulk-applies
	// the skipped edges between lastTicked and the next real tick.
	handle     *sim.Handle
	lastTicked uint64

	// Reusable completion state for the (single) outstanding memory
	// operation, plus the prebound callbacks — the core is stalled until the
	// callback fires, so per-access closure allocation would be pure
	// steady-state garbage.
	accWrite bool
	accAddr  uint32
	accVal   uint32
	waitVal  uint32

	accDoneFn      func(uint32)
	waitEqDoneFn   func(uint32)
	lockOpDoneFn   func(uint32)
	cleanDoneFn    func()
	isrCleanDoneFn func()
}

// New builds a core.  ctl is its cache controller (also the path for
// uncached accesses), attr the platform address map, locks the lock
// manager.  snoop is the core's own external snoop logic, or nil.
func New(cfg Config, id int, ctl *cache.Controller, attr AttrFunc, locks *lock.Manager, snoop *snooplogic.SnoopLogic) *CPU {
	if cfg.ClockDiv == 0 {
		cfg.ClockDiv = 1
	}
	c := &CPU{cfg: cfg, id: id, ctl: ctl, attr: attr, locks: locks, snoop: snoop}
	c.accDoneFn = c.accessDone
	c.waitEqDoneFn = c.waitEqDone
	c.lockOpDoneFn = c.lockOpDone
	c.cleanDoneFn = c.cleanDone
	c.isrCleanDoneFn = c.isrCleanDone
	return c
}

// SetHooks installs load/store observers.
func (c *CPU) SetHooks(h Hooks) { c.hooks = h }

// SetMetrics attaches the core to a metrics registry.  Cores share
// histogram names, so acquisitions aggregate platform-wide.  A nil registry
// leaves the instruments nil (no-op).
func (c *CPU) SetMetrics(r *metrics.Registry) {
	c.mLockAcq = r.Histogram("lock.acquire.enginecycles")
	c.mISR = r.Histogram("cpu.isr.enginecycles")
}

// SetProfile attaches the core to the stall-cause ledger.  The ledger is
// ticked at exactly the site that increments Stats.StallCycles, so the
// attributed causes and the aggregate stay conserved against each other.  A
// nil ledger costs one nil check per stalled cycle.
func (c *CPU) SetProfile(l *profile.Ledger) { c.prof = l }

// OnHalt installs the halt notification used by the platform to stop the
// engine when every core has retired its program.
func (c *CPU) OnHalt(f func(id int)) { c.onHalt = f }

// BindScheduler attaches the core to the engine's event scheduler.  The
// platform calls it only when the event scheduler is in force; an unbound
// core behaves exactly as before.
func (c *CPU) BindScheduler(h *sim.Handle) { c.handle = h }

// LoadProgram installs (and validates) the core's program.
func (c *CPU) LoadProgram(p isa.Program) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("cpu %s: %w", c.cfg.Name, err)
	}
	c.prog = p
	c.pc = 0
	c.state = stateRun
	c.halted = false
	return nil
}

// Name returns the configured name.
func (c *CPU) Name() string { return c.cfg.Name }

// ID returns the platform core index.
func (c *CPU) ID() int { return c.id }

// Config returns the core configuration.
func (c *CPU) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *CPU) Stats() Stats { return c.stats }

// Halted reports whether the program has retired.  A halted core still
// services interrupts (it idles, it is not powered off), so the software
// snooping of a retired task keeps working.
func (c *CPU) Halted() bool { return c.halted }

// Controller exposes the core's cache controller (examples, tests).
func (c *CPU) Controller() *cache.Controller { return c.ctl }

// Stalled reports whether the core is blocked on an outstanding memory
// access (waveform probing).
func (c *CPU) Stalled() bool { return c.state == stateStalled }

// LocksHeld reports how many critical-section locks the core currently
// holds (the platform's race detector uses it).
func (c *CPU) LocksHeld() int { return c.locksHeld }

// InISR reports whether the interrupt service routine is running
// (waveform probing).
func (c *CPU) InISR() bool { return c.isr != isrIdle }

// RaiseFIQ implements snooplogic.FIQRaiser.  The readyAt horizon models the
// interrupt response time; the entry is stamped lazily on the next tick
// because the snoop logic has no engine-clock access (matching hardware,
// where nFIQ is a wire sampled by the core).
func (c *CPU) RaiseFIQ(lineBase uint32) {
	c.stats.FIQsRaised++
	c.fiqs = append(c.fiqs, fiqEntry{base: lineBase})
	// Event scheduler: force a tick at the core's next clock edge so the
	// entry is stamped there, exactly when a tick-mode core would sample the
	// nFIQ wire — even a stalled core samples it (the stamp fixes readyAt;
	// taking the interrupt still waits for the stall to clear).
	if c.handle != nil {
		c.handle.Wake(c.handle.Now())
	}
}

// Tick advances the core by one CPU cycle.
func (c *CPU) Tick(now uint64) {
	if c.handle != nil && now > 0 {
		c.catchUp(now - 1) // bulk-apply any skipped edges; this tick handles edge now
	}
	c.lastTicked = now
	c.lastNow = now
	// Stamp newly raised FIQs with their response horizon.
	for i := c.fiqHead; i < len(c.fiqs); i++ {
		if !c.fiqs[i].stamped {
			c.fiqs[i].stamped = true
			c.fiqs[i].readyAt = now + uint64(c.cfg.InterruptResponse)*c.cfg.ClockDiv
		}
	}
	// A core stalled on an outstanding memory access cannot take an
	// interrupt — this window is the root of the paper's hardware-deadlock
	// problem (Figure 4).
	if c.state == stateStalled {
		c.stats.StallCycles++
		c.wasStalled = true
		c.prof.StallTick(c.id, now)
		return
	}
	if c.wasStalled {
		c.wasStalled = false
		c.prof.StallEnd(c.id)
	}
	// ISR in progress: run it (including its entry/exit delay cycles).
	if c.isr != isrIdle {
		if c.delay > 0 {
			c.delay--
			c.stats.DelayCycles++
			c.stats.ISRCycles++
			return
		}
		c.stepISR(now)
		return
	}
	// Take a ripe interrupt.  Plain computation (Delay) is interruptible;
	// the remaining delay resumes after the ISR.  A halted core idles but
	// keeps servicing interrupts.
	if c.fiqHead < len(c.fiqs) && c.fiqs[c.fiqHead].stamped && now >= c.fiqs[c.fiqHead].readyAt {
		f := c.fiqs[c.fiqHead]
		c.fiqHead++
		if c.fiqHead == len(c.fiqs) {
			c.fiqs = c.fiqs[:0]
			c.fiqHead = 0
		}
		c.enterISR(now, f.base)
		return
	}
	if c.halted {
		return
	}
	if c.delay > 0 {
		c.delay--
		c.stats.DelayCycles++
		return
	}
	if c.pc >= len(c.prog) {
		c.halt(now)
		return
	}
	c.execute(now, c.prog[c.pc])
}

// catchUp bulk-applies every skipped local clock edge in (lastTicked,
// through] — edges on which a tick-mode core would only have burned a
// stalled, delayed, ISR-delay or idle cycle.  The scheduler guarantees the
// range never crosses an edge with real work (instruction execution, a ripe
// interrupt, an ISR step): NextWake always bounds the sleep by the earliest
// such edge, so any other state here is a scheduler bug and panics rather
// than silently diverging from tick mode.
func (c *CPU) catchUp(through uint64) {
	div := c.cfg.ClockDiv
	if through < c.lastTicked+div {
		return // no skipped edge in (lastTicked, through]; skips the modulo
	}
	e := through - through%div
	if e <= c.lastTicked {
		return
	}
	k := e - c.lastTicked
	k /= div
	switch {
	case c.state == stateStalled:
		c.stats.StallCycles += k
		c.wasStalled = true
		c.prof.StallTick(c.id, e) // lazy ledger: flushes every edge through e
	case c.isr != isrIdle:
		if uint64(c.delay) < k {
			panic("cpu: event catch-up overran an ISR delay")
		}
		c.delay -= int(k)
		c.stats.DelayCycles += k
		c.stats.ISRCycles += k
	case c.halted:
		// Idle edges; a pending interrupt wake bounds the range.
	case c.delay > 0:
		if uint64(c.delay) < k {
			panic("cpu: event catch-up overran a delay sleep")
		}
		c.delay -= int(k)
		c.stats.DelayCycles += k
	default:
		panic("cpu: event catch-up crossed an execute edge")
	}
	c.lastTicked = e
	c.lastNow = e
}

// CatchUp implements sim.CatchUpper.
func (c *CPU) CatchUp(through uint64) {
	if c.handle != nil {
		c.catchUp(through)
	}
}

// NextWake implements sim.Waker, mirroring Tick's branch priority: a
// stalled core is dormant until a completion callback wakes it; an ISR
// ignores further interrupts; a delayed or halted core sleeps to the
// earlier of its delay expiry and the head interrupt's response horizon;
// a running core executes at every edge.
func (c *CPU) NextWake(now uint64) (uint64, bool) {
	if c.state == stateStalled {
		return 0, false
	}
	div := c.cfg.ClockDiv
	// Earliest edge the head pending interrupt could be taken at.  Entries
	// are stamped by the tick that just ran, so readyAt is valid; a defensive
	// next-edge wake covers an unstamped entry anyway.
	var fiqAt uint64
	hasFiq := c.fiqHead < len(c.fiqs)
	if hasFiq {
		f := &c.fiqs[c.fiqHead]
		fiqAt = now + div
		if f.stamped && f.readyAt > fiqAt {
			fiqAt = f.readyAt
			if rem := fiqAt % div; rem != 0 {
				fiqAt += div - rem
			}
		}
	}
	if c.isr != isrIdle {
		if c.delay > 0 {
			return now + (uint64(c.delay)+1)*div, true
		}
		return now + div, true
	}
	if c.delay > 0 {
		at := now + (uint64(c.delay)+1)*div
		if hasFiq && fiqAt < at {
			at = fiqAt
		}
		return at, true
	}
	if c.halted {
		if hasFiq {
			return fiqAt, true
		}
		return 0, false
	}
	return now + div, true
}

// syncUnstall accounts the stalled edges up to the current engine cycle
// before a completion callback mutates the core's state.  In tick mode the
// bus callback fires after the cycle's CPU edge, so that edge is included;
// it then disarms the lazy stall ledger so bus events between now and the
// core's next tick stop attributing stall edges (the core is no longer
// stalled).  No-op in tick mode or when called synchronously from the
// core's own tick.
func (c *CPU) syncUnstall() {
	if c.handle == nil {
		return
	}
	c.catchUp(c.handle.Now())
	c.prof.Disarm(c.id)
}

// wakeNext schedules the core's next local clock edge after a completion
// callback unblocked it (no-op in tick mode).
func (c *CPU) wakeNext() {
	if c.handle != nil {
		c.handle.Wake(c.handle.Now() + 1)
	}
}

// armStall switches the stall ledger to lazy bulk attribution for the
// stall episode that begins at now (event scheduler only; in tick mode the
// ledger keeps its per-cycle StallTick path).
func (c *CPU) armStall(now uint64) {
	if c.handle != nil {
		c.prof.Arm(c.id, now, c.cfg.ClockDiv)
	}
}

func (c *CPU) halt(now uint64) {
	if c.halted {
		return
	}
	c.halted = true
	c.stats.Halted = true
	c.stats.HaltCycle = now
	if c.onHalt != nil {
		c.onHalt(c.id)
	}
}

func (c *CPU) enterISR(now uint64, base uint32) {
	c.stats.ISRRuns++
	c.isr = isrClean
	c.isrStart = now
	c.isrLine = base
	c.savedDelay = c.delay
	c.delay = c.cfg.ISREntry
	c.stats.ISRCycles++
}

func (c *CPU) stepISR(now uint64) {
	c.stats.ISRCycles++
	switch c.isr {
	case isrClean:
		c.isrFound = c.ctl.Cache().Lookup(c.isrLine) != nil
		status := c.ctl.Clean(c.isrLine, c.isrCleanDoneFn)
		switch status {
		case cache.Done:
			c.isr = isrExit
			c.delay = c.cfg.ISRExit
		case cache.Pending:
			c.state = stateStalled
			c.prof.StallDrain(c.id)
			c.armStall(now)
		case cache.Busy:
			c.stats.BusyRetries++
		}
	case isrExit:
		if c.snoop != nil {
			c.snoop.Complete(c.isrLine, c.isrFound)
		}
		c.mISR.Observe(now - c.isrStart)
		c.isr = isrIdle
		// Resume the computation the interrupt preempted.
		c.delay = c.savedDelay
		c.savedDelay = 0
	}
}

func (c *CPU) execute(now uint64, op isa.Op) {
	switch op.Kind {
	case isa.Nop:
		c.retire()
	case isa.Delay:
		c.delay = op.N
		c.retire()
	case isa.Read:
		c.memAccess(now, false, op.Addr, 0)
	case isa.Write:
		c.memAccess(now, true, op.Addr, op.Val)
	case isa.CleanLine:
		c.stats.CleanOps++
		status := c.ctl.Clean(op.Addr, c.cleanDoneFn)
		switch status {
		case cache.Done:
			c.noteClean(op.Addr)
			c.delay = c.cfg.CacheOpOverhead
			c.retire()
		case cache.Pending:
			c.state = stateStalled
			c.prof.StallDrain(c.id)
			c.armStall(now)
		case cache.Busy:
			c.stats.BusyRetries++
		}
	case isa.InvalLine:
		c.stats.InvalOps++
		c.ctl.Invalidate(op.Addr)
		c.noteClean(op.Addr)
		c.delay = c.cfg.CacheOpOverhead
		c.retire()
	case isa.WaitEq:
		c.waitEq(now, op.Addr, op.Val)
	case isa.LockAcquire:
		c.stepLock(now, false, op.N)
	case isa.LockRelease:
		c.stepLock(now, true, op.N)
	case isa.Halt:
		c.stats.Instructions++
		c.halt(now)
	default:
		panic(fmt.Sprintf("cpu %s: unknown op %v", c.cfg.Name, op))
	}
}

// waitEq polls addr until it reads val: the op retires only on a match,
// otherwise the core backs off a few cycles and polls again.
func (c *CPU) waitEq(now uint64, addr, val uint32) {
	c.waitVal = val
	if c.attr(addr).Cacheable {
		status, v := c.ctl.Access(false, addr, 0, c.waitEqDoneFn)
		switch status {
		case cache.Done:
			c.waitEqDone(v)
		case cache.Pending:
			c.state = stateStalled
			c.prof.StallLock(c.id)
			c.armStall(now)
		case cache.Busy:
			c.stats.BusyRetries++
		}
		return
	}
	status := c.ctl.Uncached(bus.ReadWord, addr, 0, c.waitEqDoneFn)
	if status == cache.Busy {
		c.stats.BusyRetries++
		return
	}
	c.state = stateStalled
	c.prof.StallLock(c.id)
	c.armStall(now)
}

// waitEqDone resolves one WaitEq poll: retire on a match, otherwise back off
// and poll again.
func (c *CPU) waitEqDone(rv uint32) {
	c.syncUnstall()
	c.state = stateRun
	if rv == c.waitVal {
		c.retire()
		c.wakeNext()
		return
	}
	c.delay = 4 + c.cfg.AccessOverhead // poll back-off; pc unchanged
	c.wakeNext()
}

// noteClean informs the core's snoop logic that a line left the cache
// without a bus write-back (clean invalidation) so its CAM stays tight.
// Dirty drains are observed on the bus and need no note.
func (c *CPU) noteClean(addr uint32) {
	if c.snoop != nil {
		c.snoop.NoteInvalidate(addr)
	}
}

func (c *CPU) retire() {
	c.stats.Instructions++
	c.pc++
}

func (c *CPU) memAccess(now uint64, write bool, addr, val uint32) {
	a := c.attr(addr)
	c.accWrite, c.accAddr, c.accVal = write, addr, val
	if a.Cacheable {
		status, v := c.ctl.Access(write, addr, val, c.accDoneFn)
		switch status {
		case cache.Done:
			c.noteAccess(write, addr, val, v, c.lastNow)
			c.delay = c.cfg.AccessOverhead
			c.retire()
		case cache.Pending:
			c.state = stateStalled
			c.prof.StallAccess(c.id)
			c.armStall(now)
		case cache.Busy:
			c.stats.BusyRetries++
		}
		return
	}
	kind := bus.ReadWord
	if write {
		kind = bus.WriteWord
	}
	status := c.ctl.Uncached(kind, addr, val, c.accDoneFn)
	if status == cache.Busy {
		c.stats.BusyRetries++
		return
	}
	c.state = stateStalled
	c.prof.StallAccess(c.id)
	c.armStall(now)
}

// accessDone retires the outstanding load/store once the memory system
// answers.
func (c *CPU) accessDone(rv uint32) {
	c.syncUnstall()
	c.noteAccess(c.accWrite, c.accAddr, c.accVal, rv, c.lastNow)
	c.state = stateRun
	c.delay = c.cfg.AccessOverhead
	c.retire()
	c.wakeNext()
}

// cleanDone retires an explicit CleanLine op whose drain went to the bus.
func (c *CPU) cleanDone() {
	c.syncUnstall()
	c.state = stateRun
	c.delay = c.cfg.CacheOpOverhead
	c.retire()
	c.wakeNext()
}

// isrCleanDone advances the ISR to its exit phase after the drain completes.
func (c *CPU) isrCleanDone() {
	c.syncUnstall()
	c.state = stateRun
	c.isr = isrExit
	c.delay = c.cfg.ISRExit
	c.wakeNext()
}

func (c *CPU) noteAccess(write bool, addr, val, readVal uint32, now uint64) {
	if write {
		if c.hooks.OnStore != nil {
			c.hooks.OnStore(c.id, addr, val, now)
		}
	} else if c.hooks.OnLoad != nil {
		c.hooks.OnLoad(c.id, addr, readVal, now)
	}
}

// stepLock drives the acquisition/release stepper one memory operation per
// call.
func (c *CPU) stepLock(now uint64, release bool, lockID int) {
	if c.locks == nil {
		panic(fmt.Sprintf("cpu %s: lock op with no lock manager", c.cfg.Name))
	}
	if c.lockStep == nil {
		c.releasing = release
		if release {
			c.lockStep = c.locks.Release(c.id, lockID)
		} else {
			c.lockStep = c.locks.Acquire(c.id, lockID)
			c.lockStart = now
		}
		c.lockLast = 0
		c.lockHasPending = false
	}
	if !c.lockHasPending {
		op, done := c.lockStep.Step(c.lockLast)
		if done {
			if c.releasing {
				c.stats.LockReleases++
				if c.locksHeld > 0 {
					c.locksHeld--
				}
			} else {
				c.stats.LockAcquires++
				c.locksHeld++
				c.mLockAcq.Observe(now - c.lockStart)
			}
			c.lockStep = nil
			c.retire()
			return
		}
		c.lockPending = op
		c.lockHasPending = true
	}
	op := c.lockPending
	c.stats.LockOps++
	switch op.Kind {
	case lock.Spin:
		c.delay = op.N
		c.lockLast = 0
		c.lockHasPending = false
	case lock.ReadUncached, lock.WriteUncached, lock.RMWUncached:
		var kind bus.Kind
		switch op.Kind {
		case lock.ReadUncached:
			kind = bus.ReadWord
		case lock.WriteUncached:
			kind = bus.WriteWord
		default:
			kind = bus.RMWWord
		}
		status := c.ctl.Uncached(kind, op.Addr, op.Val, c.lockOpDoneFn)
		if status == cache.Busy {
			c.stats.BusyRetries++
			c.stats.LockOps--
			return
		}
		c.state = stateStalled
		c.prof.StallLock(c.id)
		c.armStall(now)
	case lock.ReadCached, lock.WriteCached:
		write := op.Kind == lock.WriteCached
		status, v := c.ctl.Access(write, op.Addr, op.Val, c.lockOpDoneFn)
		switch status {
		case cache.Done:
			c.lockLast = v
			c.lockHasPending = false
		case cache.Pending:
			c.state = stateStalled
			c.prof.StallLock(c.id)
			c.armStall(now)
		case cache.Busy:
			c.stats.BusyRetries++
			c.stats.LockOps--
		}
	default:
		panic(fmt.Sprintf("cpu %s: unknown lock op kind %d", c.cfg.Name, op.Kind))
	}
}

// lockOpDone records the answer to the lock stepper's outstanding memory
// operation; the next stepLock call feeds it back into the stepper.
func (c *CPU) lockOpDone(v uint32) {
	c.syncUnstall()
	c.lockLast = v
	c.lockHasPending = false
	c.state = stateRun
	c.wakeNext()
}
