// Package span turns the flat coherence event stream into a causal
// transaction timeline: every bus transaction (identified by the bus-assigned
// monotonically increasing id stamped at submit) becomes one lifecycle record
// — submit → arbitration wait → retry epochs → grant → data phase → complete
// — with causal edges linking each drain-induced retry to the write-back
// transaction that forced it, and each CPU stall span (package profile's
// cause taxonomy) to the bus transaction it blocks on.
//
// From the resulting DAG the package extracts the run's critical path (see
// critpath.go): the last-retiring core's full timeline, partitioned into
// (component, cause) attributions whose sum equals the run's total cycles by
// construction, cross-checked against the profile ledger's conservation
// invariant so the two layers cannot drift.
//
// Like the metrics, event and profile layers, a nil *Collector is valid
// everywhere and records nothing; the collector is driven entirely by
// subscribing HandleEvent to the platform's event sink, so the bus and cache
// hot paths carry no span-specific code at all.
package span

import (
	"fmt"
	"io"

	"hetcc/internal/bus"
	"hetcc/internal/event"
	"hetcc/internal/profile"
)

// RetryEpoch is one ARTRY abort of a transaction.
type RetryEpoch struct {
	// Cycle is the engine cycle of the abort.
	Cycle uint64
	// Drain reports whether a snooper asserted the retry to drain a dirty
	// line first (as opposed to plain arbitration ping-pong).
	Drain bool
	// Cause is the id of the write-back transaction that had to drain before
	// this transaction could proceed (0 when unresolved — e.g. a plain
	// ARTRY, or a drain with no bus transfer of its own).
	Cause uint64
}

// Txn is the lifecycle record of one bus transaction.
type Txn struct {
	// ID is the bus-assigned id (monotonically increasing from 1 in
	// submission order).
	ID     uint64
	Master int
	// Kind is the raw bus transaction kind (bus.Kind numeric value).
	Kind uint8
	Addr uint32
	// Submit/Grant/Complete are engine cycles: queue entry, the surviving
	// (un-aborted) address phase, and the end of the data phase.  Grant and
	// Complete are 0 while the phase has not happened.
	Submit   uint64
	Grant    uint64
	Complete uint64
	// Done reports whether the transaction completed before the run ended.
	Done bool
	// Retries lists the ARTRY epochs in order, with causal drain links.
	Retries []RetryEpoch
}

// StallLink ties one profile stall span to the bus transaction it blocks on:
// the same-master transaction with the largest interval overlap (0 when the
// core stalled with no transaction outstanding, e.g. a lock spin between
// polls).
type StallLink struct {
	Core  int
	Cause profile.Cause
	// Start/End delimit the stall span in engine cycles (clamped to the
	// run).
	Start, End uint64
	// Txn is the blocking transaction's id (0 if none overlapped).
	Txn uint64
}

// EdgeKind enumerates the causal edge flavours of the DAG.
type EdgeKind uint8

const (
	// EdgeRetryDrain: a transaction's drain-retry was resolved by a
	// write-back; the edge runs from the ARTRY cycle on the retried master's
	// lane to the write-back's completion on the draining master's lane.
	EdgeRetryDrain EdgeKind = iota
	// EdgeCompleteResume: a core's stall span ended when its blocking
	// transaction completed; the edge runs from the completion on the bus
	// lane to the resume point on the core's stall lane.
	EdgeCompleteResume
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeRetryDrain:
		return "retry-drain"
	case EdgeCompleteResume:
		return "complete-resume"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is one causal edge of the transaction DAG, in engine cycles.
type Edge struct {
	Kind EdgeKind
	// From/To are the edge's endpoint cycles (To >= From).
	From, To uint64
	// FromMaster is the bus master of the source transaction.
	FromMaster int
	// ToMaster is the draining master (EdgeRetryDrain only).
	ToMaster int
	// Core is the resuming core (EdgeCompleteResume only).
	Core int
	// Txn is the source transaction id; Cause the draining write-back's id
	// (EdgeRetryDrain only).
	Txn   uint64
	Cause uint64
}

// DefaultMaxTxns bounds the retained transaction records so span-enabled
// runs cannot grow memory without bound (mirrors profile.DefaultMaxSpans).
const DefaultMaxTxns = 1 << 17

// Collector accumulates transaction lifecycles from the coherence event
// stream.  It is not safe for concurrent use (the simulation kernel is
// single-threaded).
type Collector struct {
	lineMask uint32
	maxTxns  int
	txns     []Txn
	dropped  uint64
	// openWB maps a line base to the id of the queued/in-flight write-back
	// draining it (WriteLine/WriteLineInv), for immediate retry→drain
	// resolution.
	openWB map[uint32]uint64
	// wantDrain queues transaction ids whose drain-retry could not be
	// resolved yet (the flush had not been submitted at ARTRY time); the
	// next write-back submit or drain event on the base resolves them.
	wantDrain map[uint32][]uint64
	// byMaster lists each master's transaction ids in submission order
	// (stall-link search).
	byMaster map[int][]uint64
	links    []StallLink
	finished bool
}

// NewCollector creates a collector; lineBytes is the platform's cache line
// size (drain addresses are line bases, retried addresses may be words).
func NewCollector(lineBytes int) *Collector {
	mask := ^uint32(0)
	if lineBytes > 0 {
		mask = ^uint32(lineBytes - 1)
	}
	return &Collector{
		lineMask:  mask,
		maxTxns:   DefaultMaxTxns,
		openWB:    make(map[uint32]uint64),
		wantDrain: make(map[uint32][]uint64),
		byMaster:  make(map[int][]uint64),
	}
}

// Enabled reports whether the collector records anything (false for nil).
func (c *Collector) Enabled() bool { return c != nil }

// Dropped counts transactions discarded beyond the retention bound.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped
}

// Txns returns the recorded transactions in submission order (the backing
// slice; callers must not mutate it).
func (c *Collector) Txns() []Txn {
	if c == nil {
		return nil
	}
	return c.txns
}

// Links returns the stall-span links computed by Finish.
func (c *Collector) Links() []StallLink {
	if c == nil {
		return nil
	}
	return c.links
}

// get resolves a transaction id to its record.  Ids are dense from 1, so
// after the retention bound trips only the ids beyond it are unresolvable.
func (c *Collector) get(id uint64) *Txn {
	if c == nil || id == 0 || id > uint64(len(c.txns)) {
		return nil
	}
	return &c.txns[id-1]
}

func isWriteBack(kind uint8) bool {
	return bus.Kind(kind) == bus.WriteLine || bus.Kind(kind) == bus.WriteLineInv
}

// HandleEvent consumes the coherence event stream.  Subscribe it to the
// platform's event sink; it relies only on the Txn ids the bus stamps.
func (c *Collector) HandleEvent(r *event.Record) {
	if c == nil {
		return
	}
	switch r.Kind {
	case event.BusRequest:
		if r.Txn == 0 {
			return
		}
		if len(c.txns) >= c.maxTxns || r.Txn != uint64(len(c.txns))+1 {
			c.dropped++
			return
		}
		c.txns = append(c.txns, Txn{ID: r.Txn, Master: r.Core, Kind: r.BusKind, Addr: r.Addr, Submit: r.Cycle})
		c.byMaster[r.Core] = append(c.byMaster[r.Core], r.Txn)
		if isWriteBack(r.BusKind) {
			base := r.Addr & c.lineMask
			c.openWB[base] = r.Txn
			c.resolveDrain(base, r.Txn)
		}
	case event.BusGrant:
		if t := c.get(r.Txn); t != nil {
			t.Grant = r.Cycle
		}
	case event.Retry:
		t := c.get(r.Txn)
		if t == nil {
			return
		}
		ep := RetryEpoch{Cycle: r.Cycle, Drain: r.Drain}
		if r.Drain {
			base := r.Addr & c.lineMask
			if wb := c.openWB[base]; wb != 0 && wb != r.Txn {
				// The draining write-back is already queued (eviction in
				// flight): resolve the edge immediately.
				ep.Cause = wb
			} else {
				// The flush has not been submitted yet (snoop push or ISR
				// drain still pending): defer to the next write-back on
				// this base.
				c.wantDrain[base] = append(c.wantDrain[base], r.Txn)
			}
		}
		t.Retries = append(t.Retries, ep)
	case event.Drain:
		base := r.Addr & c.lineMask
		wb := r.Txn
		if wb == 0 {
			wb = c.openWB[base]
		}
		if wb != 0 {
			c.resolveDrain(base, wb)
		}
		if c.openWB[base] == wb {
			delete(c.openWB, base)
		}
	case event.BusComplete:
		if t := c.get(r.Txn); t != nil {
			t.Complete = r.Cycle
			t.Done = true
		}
	}
}

// resolveDrain links every transaction waiting on a drain of base to the
// write-back wb.
func (c *Collector) resolveDrain(base uint32, wb uint64) {
	waiting := c.wantDrain[base]
	if len(waiting) == 0 {
		return
	}
	for _, id := range waiting {
		if id == wb {
			continue
		}
		t := c.get(id)
		if t == nil {
			continue
		}
		for i := len(t.Retries) - 1; i >= 0; i-- {
			if t.Retries[i].Drain && t.Retries[i].Cause == 0 {
				t.Retries[i].Cause = wb
				break
			}
		}
	}
	delete(c.wantDrain, base)
}

// Finish links the profile ledger's stall spans to the transactions they
// block on: each span gets the same-master transaction with the largest
// interval overlap.  end is the run's final cycle (open transactions are
// treated as running to end).  The platform calls Finish once, after
// profile.Ledger.Finish.
func (c *Collector) Finish(stalls []profile.Span, end uint64) {
	if c == nil || c.finished {
		return
	}
	c.finished = true
	// Per-core cursor over the master's submission-ordered transactions;
	// spans arrive in per-core time order, so each list is walked once.
	cursors := make(map[int]int)
	for _, s := range stalls {
		if s.End > end {
			s.End = end
		}
		if s.Start >= s.End {
			continue
		}
		link := StallLink{Core: s.Core, Cause: s.Cause, Start: s.Start, End: s.End}
		ids := c.byMaster[s.Core]
		i := cursors[s.Core]
		for i < len(ids) {
			t := c.get(ids[i])
			tEnd := t.Complete
			if !t.Done {
				tEnd = end
			}
			if tEnd > s.Start {
				break
			}
			i++
		}
		cursors[s.Core] = i
		var best, bestID uint64
		for j := i; j < len(ids); j++ {
			t := c.get(ids[j])
			if t.Submit >= s.End {
				break
			}
			tEnd := t.Complete
			if !t.Done {
				tEnd = end
			}
			lo, hi := t.Submit, tEnd
			if s.Start > lo {
				lo = s.Start
			}
			if s.End < hi {
				hi = s.End
			}
			if hi > lo && hi-lo > best {
				best, bestID = hi-lo, t.ID
			}
		}
		link.Txn = bestID
		c.links = append(c.links, link)
	}
}

// Edges materialises the causal edges of the DAG: retry→drain (from resolved
// retry epochs) and complete→resume (from stall links whose blocking
// transaction completed inside the span).  Call after Finish.
func (c *Collector) Edges() []Edge {
	if c == nil {
		return nil
	}
	var out []Edge
	for i := range c.txns {
		t := &c.txns[i]
		for _, ep := range t.Retries {
			if ep.Cause == 0 {
				continue
			}
			wb := c.get(ep.Cause)
			if wb == nil || !wb.Done || wb.Complete < ep.Cycle {
				continue
			}
			out = append(out, Edge{
				Kind: EdgeRetryDrain, From: ep.Cycle, To: wb.Complete,
				FromMaster: t.Master, ToMaster: wb.Master, Txn: t.ID, Cause: wb.ID,
			})
		}
	}
	for _, l := range c.links {
		t := c.get(l.Txn)
		if t == nil || !t.Done || t.Complete < l.Start || t.Complete > l.End {
			continue
		}
		out = append(out, Edge{
			Kind: EdgeCompleteResume, From: t.Complete, To: l.End,
			FromMaster: t.Master, Core: l.Core, Txn: t.ID,
		})
	}
	return out
}

// WriteJSONL exports the collected spans as one JSON object per line: a
// "txn" row per transaction (lifecycle cycles plus retry epochs with causal
// drain links) followed by a "stall" row per linked stall span.  busName
// names transaction kinds (nil prints numeric values).
func (c *Collector) WriteJSONL(w io.Writer, busName func(uint8) string) error {
	if c == nil {
		return nil
	}
	name := func(k uint8) string {
		if busName != nil {
			return busName(k)
		}
		return fmt.Sprintf("Kind(%d)", k)
	}
	for i := range c.txns {
		t := &c.txns[i]
		if _, err := fmt.Fprintf(w, `{"row":"txn","txn":%d,"master":%d,"op":%q,"addr":"0x%08x","submit":%d,"grant":%d,"complete":%d,"done":%v`,
			t.ID, t.Master, name(t.Kind), t.Addr, t.Submit, t.Grant, t.Complete, t.Done); err != nil {
			return fmt.Errorf("span: jsonl write: %w", err)
		}
		if len(t.Retries) > 0 {
			if _, err := io.WriteString(w, `,"retries":[`); err != nil {
				return fmt.Errorf("span: jsonl write: %w", err)
			}
			for j, ep := range t.Retries {
				sep := ""
				if j > 0 {
					sep = ","
				}
				if _, err := fmt.Fprintf(w, `%s{"cycle":%d,"drain":%v,"cause":%d}`, sep, ep.Cycle, ep.Drain, ep.Cause); err != nil {
					return fmt.Errorf("span: jsonl write: %w", err)
				}
			}
			if _, err := io.WriteString(w, `]`); err != nil {
				return fmt.Errorf("span: jsonl write: %w", err)
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return fmt.Errorf("span: jsonl write: %w", err)
		}
	}
	for _, l := range c.links {
		if _, err := fmt.Fprintf(w, `{"row":"stall","core":%d,"cause":%q,"start":%d,"end":%d,"txn":%d}`+"\n",
			l.Core, l.Cause.String(), l.Start, l.End, l.Txn); err != nil {
			return fmt.Errorf("span: jsonl write: %w", err)
		}
	}
	return nil
}
