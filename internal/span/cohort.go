package span

import (
	"fmt"
	"sort"
)

// Cohort aggregates the bus transactions of one (master, op, line base)
// triple.  Cohorts are the alignment unit of differential run analysis
// (package delta): because transaction ids are assigned in deterministic
// submission order and the workloads are deterministic, the same triple
// names "the same traffic" in two runs of different configurations, so a
// per-cohort delta like "34 extra ARTRY retries on line 0x1f80 from master 1"
// is a meaningful leaf of a cycle-regression explanation.
type Cohort struct {
	Master    int    `json:"master"`
	Component string `json:"component"`
	Op        string `json:"op"`
	// Line is the cache-line base address (hex) the cohort's transactions
	// target.
	Line string `json:"line"`
	// Count is the number of transactions submitted; Retries the total ARTRY
	// epochs across them, of which DrainRetries were drain-qualified.
	Count        int `json:"count"`
	Retries      int `json:"retries"`
	DrainRetries int `json:"drain_retries"`
	// LatencyCycles sums submit→complete over the cohort's completed
	// transactions (engine cycles).
	LatencyCycles uint64 `json:"latency_cycles"`
	// BlockedCycles sums every core's stall-span cycles linked to the
	// cohort's transactions.
	BlockedCycles uint64 `json:"blocked_cycles"`
	// CriticalCycles is the anchor (critical) core's share of BlockedCycles:
	// the cohort's slice of the critical-path partition below.
	CriticalCycles uint64 `json:"critical_cycles"`
}

// CohortSummary is the cohort partition of the critical core's timeline: the
// anchor's [0, TotalCycles) is split into per-cohort blocked cycles, stalls
// linked to no transaction (UnlinkedCycles), and everything else
// (ExecuteCycles).  The partition is exhaustive by construction —
//
//	ExecuteCycles + UnlinkedCycles + Σ cohort.CriticalCycles == TotalCycles
//
// (see Conserved) — so two runs' summaries subtract into an exact per-cohort
// decomposition of their cycle delta.
type CohortSummary struct {
	// Anchor is the critical core whose timeline is partitioned (matches
	// CriticalPath.Core).
	Anchor int `json:"anchor_core"`
	// TotalCycles is the run length in engine cycles.
	TotalCycles uint64 `json:"total_cycles"`
	// ExecuteCycles is the anchor's non-stalled time.
	ExecuteCycles uint64 `json:"execute_cycles"`
	// UnlinkedCycles is anchor stall time linked to no bus transaction
	// (e.g. lock spins between polls).
	UnlinkedCycles uint64 `json:"unlinked_cycles"`
	// Cohorts lists every observed cohort, sorted by (master, op, line).
	Cohorts []Cohort `json:"cohorts"`
}

// Conserved reports whether the anchor-timeline partition is exact:
// execute + unlinked + per-cohort critical cycles sum to TotalCycles.
func (s *CohortSummary) Conserved() bool {
	if s == nil {
		return false
	}
	sum := s.ExecuteCycles + s.UnlinkedCycles
	for _, c := range s.Cohorts {
		sum += c.CriticalCycles
	}
	return sum == s.TotalCycles
}

// cohortKey identifies a cohort before naming.
type cohortKey struct {
	master int
	kind   uint8
	line   uint32
}

// Cohorts aggregates the collector's transactions and stall links into the
// per-(master, op, line) cohort summary.  anchor is the critical core from
// Compute, total the run length; masterName/busName label components and ops
// (nil falls back to numeric labels).  Call after Finish; returns nil for a
// nil collector.
func Cohorts(c *Collector, anchor int, total uint64, masterName func(int) string, busName func(uint8) string) *CohortSummary {
	if c == nil {
		return nil
	}
	if masterName == nil {
		masterName = func(id int) string { return fmt.Sprintf("master %d", id) }
	}
	if busName == nil {
		busName = func(k uint8) string { return fmt.Sprintf("Kind(%d)", k) }
	}
	s := &CohortSummary{Anchor: anchor, TotalCycles: total}
	byKey := make(map[cohortKey]*Cohort)
	keyOf := func(t *Txn) cohortKey {
		return cohortKey{master: t.Master, kind: t.Kind, line: t.Addr & c.lineMask}
	}
	get := func(k cohortKey) *Cohort {
		co := byKey[k]
		if co == nil {
			co = &Cohort{
				Master:    k.master,
				Component: masterName(k.master),
				Op:        busName(k.kind),
				Line:      fmt.Sprintf("0x%08x", k.line),
			}
			byKey[k] = co
		}
		return co
	}
	for i := range c.txns {
		t := &c.txns[i]
		co := get(keyOf(t))
		co.Count++
		co.Retries += len(t.Retries)
		for _, ep := range t.Retries {
			if ep.Drain {
				co.DrainRetries++
			}
		}
		if t.Done {
			co.LatencyCycles += t.Complete - t.Submit
		}
	}
	var anchorStalled uint64
	for _, l := range c.links {
		n := l.End - l.Start
		if l.Core == anchor {
			anchorStalled += n
		}
		t := c.get(l.Txn)
		if t == nil {
			if l.Core == anchor {
				s.UnlinkedCycles += n
			}
			continue
		}
		co := get(keyOf(t))
		co.BlockedCycles += n
		if l.Core == anchor {
			co.CriticalCycles += n
		}
	}
	if anchorStalled < total {
		s.ExecuteCycles = total - anchorStalled
	}

	keys := make([]cohortKey, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.master != b.master {
			return a.master < b.master
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.line < b.line
	})
	for _, k := range keys {
		s.Cohorts = append(s.Cohorts, *byKey[k])
	}
	return s
}
