package span

import (
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/profile"
)

// cohortFixture builds a collector with two masters hitting two lines:
// master 0 reads both lines (one drain-retried), master 1 writes line 0 back.
func cohortFixture(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector(32)
	f := newFeed(c)
	rd := uint8(bus.ReadLine)
	wb := uint8(bus.WriteLine)
	f.at(10).sink.BusRequest(0, rd, 0x2000_0000, 1)
	f.at(14).sink.Retry(0, rd, 0x2000_0000, 1, true, 1)
	f.at(16).sink.BusRequest(1, wb, 0x2000_0000, 2)
	f.at(30).sink.BusComplete(1, wb, 0x2000_0000, 2)
	f.at(30).sink.Drain(1, 0x2000_0000, 2)
	f.at(50).sink.BusComplete(0, rd, 0x2000_0000, 1)
	f.at(60).sink.BusRequest(0, rd, 0x2000_0020, 3)
	f.at(80).sink.BusComplete(0, rd, 0x2000_0020, 3)

	stalls := []profile.Span{
		{Core: 0, Cause: profile.CauseDrain, Start: 14, End: 31},
		{Core: 0, Cause: profile.CauseRefill, Start: 31, End: 51},
		{Core: 0, Cause: profile.CauseLock, Start: 52, End: 56}, // no txn
		{Core: 0, Cause: profile.CauseRefill, Start: 61, End: 81},
		{Core: 1, Cause: profile.CauseDrain, Start: 18, End: 28},
	}
	c.Finish(stalls, 100)
	return c
}

// TestCohortsPartitionIsExact: execute + unlinked + per-cohort critical
// cycles reconstruct the anchor timeline exactly, and the per-cohort counts
// aggregate the transaction records.
func TestCohortsPartitionIsExact(t *testing.T) {
	c := cohortFixture(t)
	s := Cohorts(c, 0, 100, func(id int) string {
		return []string{"ppc", "arm"}[id]
	}, func(k uint8) string { return bus.Kind(k).String() })
	if s == nil {
		t.Fatal("nil summary from a live collector")
	}
	if !s.Conserved() {
		t.Fatalf("partition not conserved: %+v", s)
	}
	// Anchor stalls: 17+20+4+20 = 61, so execute = 39 and the lock spin (4
	// cycles) is unlinked.
	if s.ExecuteCycles != 39 || s.UnlinkedCycles != 4 {
		t.Fatalf("execute %d unlinked %d, want 39/4", s.ExecuteCycles, s.UnlinkedCycles)
	}
	if len(s.Cohorts) != 3 {
		t.Fatalf("%d cohorts, want 3: %+v", len(s.Cohorts), s.Cohorts)
	}
	byKey := map[string]Cohort{}
	for _, co := range s.Cohorts {
		byKey[co.Component+"/"+co.Op+"/"+co.Line] = co
	}
	line0 := byKey["ppc/RdLine/0x20000000"]
	if line0.Count != 1 || line0.Retries != 1 || line0.DrainRetries != 1 {
		t.Fatalf("line0 cohort counts wrong: %+v", line0)
	}
	// Both anchor stall spans on txn 1: 17 + 20 = 37 critical cycles, and 40
	// cycles of submit→complete latency.
	if line0.CriticalCycles != 37 || line0.BlockedCycles != 37 || line0.LatencyCycles != 40 {
		t.Fatalf("line0 cohort cycles wrong: %+v", line0)
	}
	wbCo := byKey["arm/WrLine/0x20000000"]
	// Master 1's own drain stall links to its write-back: blocked but not
	// critical (anchor is core 0).
	if wbCo.BlockedCycles != 10 || wbCo.CriticalCycles != 0 {
		t.Fatalf("write-back cohort cycles wrong: %+v", wbCo)
	}
	line1 := byKey["ppc/RdLine/0x20000020"]
	if line1.CriticalCycles != 20 || line1.Count != 1 || line1.Retries != 0 {
		t.Fatalf("line1 cohort wrong: %+v", line1)
	}
}

// TestCohortsNilAndOrdering: nil collectors yield nil, and cohorts sort
// deterministically by (master, op kind, line).
func TestCohortsNilAndOrdering(t *testing.T) {
	if Cohorts(nil, 0, 100, nil, nil) != nil {
		t.Fatal("nil collector must yield a nil summary")
	}
	c := cohortFixture(t)
	s := Cohorts(c, 0, 100, nil, nil)
	if s.Cohorts[0].Master != 0 || s.Cohorts[len(s.Cohorts)-1].Master != 1 {
		t.Fatalf("cohorts not sorted by master: %+v", s.Cohorts)
	}
	for i := 1; i < len(s.Cohorts); i++ {
		a, b := s.Cohorts[i-1], s.Cohorts[i]
		if a.Master > b.Master || (a.Master == b.Master && a.Line > b.Line && a.Op == b.Op) {
			t.Fatalf("cohort order unstable at %d: %+v", i, s.Cohorts)
		}
	}
	// Default naming falls back to numeric labels.
	if s.Cohorts[0].Component != "master 0" {
		t.Fatalf("default component label %q", s.Cohorts[0].Component)
	}
}
