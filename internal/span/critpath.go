package span

import (
	"fmt"
	"sort"

	"hetcc/internal/profile"
)

// CoreInfo is the per-core context Compute needs from the platform.
type CoreInfo struct {
	// Name labels the core in attributions (the processor model).
	Name string
	// ClockDiv is the core's engine divisor (1 = 100 MHz, 2 = 50 MHz); it
	// bounds the engine-cycle width of a CPU-cycle ledger count.
	ClockDiv uint64
	// Halted/HaltCycle report program retirement (cpu.Stats).
	Halted    bool
	HaltCycle uint64
}

// Attribution charges a slice of the critical path to one (component, cause)
// pair.  Component is the processor (or DMA engine) responsible: the
// critical core itself for most causes, the draining master for stalls whose
// blocking transaction was retried behind a remote write-back.
type Attribution struct {
	Component string `json:"component"`
	Cause     string `json:"cause"`
	Cycles    uint64 `json:"cycles"`
}

// CritTxn is one top-K critical-path transaction: a bus transaction the
// critical core spent on-path cycles blocked on.
type CritTxn struct {
	Txn       uint64 `json:"txn"`
	Component string `json:"component"`
	Op        string `json:"op"`
	Addr      string `json:"addr"`
	Submit    uint64 `json:"submit"`
	Complete  uint64 `json:"complete"`
	Retries   int    `json:"retries"`
	// Cycles is the critical-path time attributed to waiting on this
	// transaction.
	Cycles uint64 `json:"cycles"`
}

// CriticalPath is the run's cycle-complete explanation: the critical core's
// timeline [0, TotalCycles) partitioned into (component, cause)
// attributions.  The partition is exhaustive by construction — stalled
// cycles come from the core's profile spans, everything else is charged to
// the core's own "execute" bucket — so the attributions always sum to
// TotalCycles exactly (CyclesAttributed).
type CriticalPath struct {
	// Core is the critical (anchor) core: the last to retire its program,
	// i.e. the core whose timeline bounds the run.
	Core     int    `json:"core"`
	CoreName string `json:"core_name"`
	// TotalCycles is the run length in engine cycles.
	TotalCycles uint64 `json:"total_cycles"`
	// Attribution lists the (component, cause) charges, largest first.
	Attribution []Attribution `json:"attribution"`
	// TopTransactions lists the transactions the critical core spent the
	// most on-path cycles blocked on, largest first.
	TopTransactions []CritTxn `json:"top_transactions,omitempty"`
	// CrossCheckError is empty when the attribution passed the profile
	// ledger cross-check: the attributed total equals TotalCycles, and every
	// per-cause attribution is bounded by the ledger's count for that cause
	// (in engine cycles, i.e. CPU count x ClockDiv).
	CrossCheckError string `json:"cross_check_error,omitempty"`
}

// CyclesAttributed sums the attribution (equals TotalCycles by
// construction; the cross-check asserts it).
func (cp *CriticalPath) CyclesAttributed() uint64 {
	var t uint64
	for _, a := range cp.Attribution {
		t += a.Cycles
	}
	return t
}

// executeCause labels the non-stalled remainder of the critical core's
// timeline (instruction execution, ISR bodies, idle-after-halt of the
// shorter programs never appears — the anchor is the last to halt).
const executeCause = "execute"

// Compute extracts the critical path: the anchor core is the last to halt
// (ties break to the lowest index; if no core halted — a deadlocked or
// budget-capped run — core 0).  Its stall links partition the stalled
// cycles; each is charged to the ledger cause, with the component being the
// draining master when the blocking transaction's retry was causally linked
// to a remote write-back, and the core itself otherwise.  ledger, when
// non-nil, is cross-checked (CrossCheckError).  masterName/busName label
// components and ops (nil falls back to numeric labels); topK bounds
// TopTransactions (<=0 means 10).
func Compute(c *Collector, total uint64, cores []CoreInfo, ledger *profile.Summary, masterName func(int) string, busName func(uint8) string, topK int) *CriticalPath {
	if len(cores) == 0 {
		return nil
	}
	if masterName == nil {
		masterName = func(id int) string { return fmt.Sprintf("master %d", id) }
	}
	if busName == nil {
		busName = func(k uint8) string { return fmt.Sprintf("Kind(%d)", k) }
	}
	if topK <= 0 {
		topK = 10
	}
	anchor := 0
	for i, ci := range cores {
		if ci.Halted && (!cores[anchor].Halted || ci.HaltCycle > cores[anchor].HaltCycle) {
			anchor = i
		}
	}
	cp := &CriticalPath{Core: anchor, CoreName: cores[anchor].Name, TotalCycles: total}

	type key struct {
		component string
		cause     string
	}
	attr := make(map[key]uint64)
	txnCycles := make(map[uint64]uint64)
	var stalled uint64
	for _, l := range c.Links() {
		if l.Core != anchor {
			continue
		}
		n := l.End - l.Start
		stalled += n
		component := cp.CoreName
		if t := c.get(l.Txn); t != nil {
			txnCycles[l.Txn] += n
			if l.Cause == profile.CauseDrain || l.Cause == profile.CauseRetry {
				// Charge the draining master when the blocking transaction
				// was causally retried behind a remote write-back.
				for i := len(t.Retries) - 1; i >= 0; i-- {
					cause := c.get(t.Retries[i].Cause)
					if cause == nil {
						continue
					}
					if cause.Master != anchor {
						component = masterName(cause.Master)
					}
					break
				}
			}
		}
		attr[key{component, l.Cause.String()}] += n
	}
	if stalled < total {
		attr[key{cp.CoreName, executeCause}] += total - stalled
	}

	for k, n := range attr {
		cp.Attribution = append(cp.Attribution, Attribution{Component: k.component, Cause: k.cause, Cycles: n})
	}
	sort.Slice(cp.Attribution, func(i, j int) bool {
		a, b := cp.Attribution[i], cp.Attribution[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Cause < b.Cause
	})

	ids := make([]uint64, 0, len(txnCycles))
	for id := range txnCycles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if txnCycles[ids[i]] != txnCycles[ids[j]] {
			return txnCycles[ids[i]] > txnCycles[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > topK {
		ids = ids[:topK]
	}
	for _, id := range ids {
		t := c.get(id)
		cp.TopTransactions = append(cp.TopTransactions, CritTxn{
			Txn:       id,
			Component: masterName(t.Master),
			Op:        busName(t.Kind),
			Addr:      fmt.Sprintf("0x%08x", t.Addr),
			Submit:    t.Submit,
			Complete:  t.Complete,
			Retries:   len(t.Retries),
			Cycles:    txnCycles[id],
		})
	}

	if err := cp.crossCheck(ledger, cores[anchor].ClockDiv); err != nil {
		cp.CrossCheckError = err.Error()
	}
	return cp
}

// crossCheck validates the attribution against the run totals and, when a
// ledger summary is supplied, the profile conservation invariant: the
// attributed per-cause cycles (engine cycles) must not exceed the ledger's
// CPU-cycle count scaled by the core's clock divisor — a div-2 core's
// merged stall span can legitimately cover up to twice its ticked count,
// never more.
func (cp *CriticalPath) crossCheck(ledger *profile.Summary, clockDiv uint64) error {
	if got := cp.CyclesAttributed(); got != cp.TotalCycles {
		return fmt.Errorf("attributed %d cycles, run has %d", got, cp.TotalCycles)
	}
	if ledger == nil {
		return nil
	}
	if clockDiv == 0 {
		clockDiv = 1
	}
	var causes map[string]uint64
	for _, cs := range ledger.Cores {
		if cs.Core == cp.Core {
			causes = cs.Causes
		}
	}
	perCause := make(map[string]uint64)
	for _, a := range cp.Attribution {
		if a.Cause != executeCause {
			perCause[a.Cause] += a.Cycles
		}
	}
	for cause, n := range perCause {
		if bound := causes[cause] * clockDiv; n > bound {
			return fmt.Errorf("cause %q: critical path attributes %d engine cycles, ledger bounds it at %d (%d CPU cycles x div %d)", cause, n, bound, causes[cause], clockDiv)
		}
	}
	return nil
}
