package span

import (
	"strings"
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/event"
	"hetcc/internal/profile"
)

// feed drives a collector through a synthetic event sequence using a real
// sink so cycle stamping matches production.
type feed struct {
	sink  *event.Sink
	cycle uint64
}

func newFeed(c *Collector) *feed {
	f := &feed{}
	f.sink = event.NewSink(func() uint64 { return f.cycle })
	f.sink.Subscribe(c.HandleEvent)
	return f
}

func (f *feed) at(cycle uint64) *feed { f.cycle = cycle; return f }

// TestNilCollectorIsSafe: the disabled path must be a no-op, never a panic.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.HandleEvent(&event.Record{Kind: event.BusRequest, Txn: 1})
	c.Finish(nil, 100)
	if c.Enabled() || c.Txns() != nil || c.Links() != nil || c.Edges() != nil || c.Dropped() != 0 {
		t.Fatal("nil collector misbehaves")
	}
	if err := c.WriteJSONL(&strings.Builder{}, nil); err != nil {
		t.Fatal(err)
	}
	if cp := Compute(c, 100, []CoreInfo{{Name: "core0", ClockDiv: 1}}, nil, nil, nil, 5); cp == nil {
		t.Fatal("Compute must work on a nil collector")
	} else if cp.CyclesAttributed() != 100 || cp.CrossCheckError != "" {
		t.Fatalf("nil-collector critical path broken: %+v", cp)
	}
}

// TestLifecycleAndRetryDrainEdge walks one transaction through submit,
// drain-retry (flush submitted after the ARTRY, the snoop-push ordering),
// grant and completion, checking the causal edge resolves to the write-back.
func TestLifecycleAndRetryDrainEdge(t *testing.T) {
	c := NewCollector(32)
	f := newFeed(c)

	rd := uint8(bus.ReadLine)
	wb := uint8(bus.WriteLine)
	f.at(10).sink.BusRequest(0, rd, 0x2000_0000, 1)
	// ARTRY with drain: the remote owner must flush first.  The flush is
	// submitted only after the abort, so resolution is deferred.
	f.at(14).sink.Retry(0, rd, 0x2000_0000, 1, true, 1)
	f.at(16).sink.BusRequest(1, wb, 0x2000_0000, 2)
	f.at(20).sink.BusGrant(1, wb, 0x2000_0000, false, 2)
	f.at(30).sink.BusComplete(1, wb, 0x2000_0000, 2)
	f.at(30).sink.Drain(1, 0x2000_0000, 2)
	f.at(34).sink.BusGrant(0, rd, 0x2000_0000, true, 1)
	f.at(50).sink.BusComplete(0, rd, 0x2000_0000, 1)

	txns := c.Txns()
	if len(txns) != 2 {
		t.Fatalf("recorded %d txns, want 2", len(txns))
	}
	got := txns[0]
	if got.Submit != 10 || got.Grant != 34 || got.Complete != 50 || !got.Done {
		t.Fatalf("lifecycle %+v wrong", got)
	}
	if len(got.Retries) != 1 || !got.Retries[0].Drain || got.Retries[0].Cause != 2 {
		t.Fatalf("retry epoch %+v: want one drain retry caused by txn 2", got.Retries)
	}

	c.Finish(nil, 60)
	edges := c.Edges()
	if len(edges) != 1 {
		t.Fatalf("%d edges, want 1 retry-drain", len(edges))
	}
	e := edges[0]
	if e.Kind != EdgeRetryDrain || e.Txn != 1 || e.Cause != 2 || e.From != 14 || e.To != 30 ||
		e.FromMaster != 0 || e.ToMaster != 1 {
		t.Fatalf("edge %+v wrong", e)
	}
}

// TestRetryResolvesAgainstQueuedWriteBack: when the draining write-back is
// already queued at ARTRY time (eviction in flight), the edge resolves
// immediately from the open write-back table.
func TestRetryResolvesAgainstQueuedWriteBack(t *testing.T) {
	c := NewCollector(32)
	f := newFeed(c)
	wb := uint8(bus.WriteLine)
	rd := uint8(bus.ReadLine)
	f.at(5).sink.BusRequest(1, wb, 0x2000_0040, 1)
	f.at(6).sink.BusRequest(0, rd, 0x2000_0040, 2)
	f.at(8).sink.Retry(0, rd, 0x2000_0040, 1, true, 2)
	if got := c.Txns()[1].Retries[0].Cause; got != 1 {
		t.Fatalf("immediate resolution gave cause %d, want 1", got)
	}
}

// TestWordRetryMasksToLineBase: a drain-retried word access links to the
// write-back of the containing line.
func TestWordRetryMasksToLineBase(t *testing.T) {
	c := NewCollector(32)
	f := newFeed(c)
	f.at(5).sink.BusRequest(1, uint8(bus.WriteLine), 0x2000_0040, 1)
	f.at(6).sink.BusRequest(0, uint8(bus.ReadWord), 0x2000_005c, 2)
	f.at(8).sink.Retry(0, uint8(bus.ReadWord), 0x2000_005c, 1, true, 2)
	if got := c.Txns()[1].Retries[0].Cause; got != 1 {
		t.Fatalf("word retry resolved to cause %d, want 1 (line base masking)", got)
	}
}

// TestFinishLinksStallSpans: each stall span links to the same-master
// transaction with the largest overlap, and complete→resume edges appear
// when the blocking transaction completes inside the span.
func TestFinishLinksStallSpans(t *testing.T) {
	c := NewCollector(32)
	f := newFeed(c)
	rd := uint8(bus.ReadLine)
	f.at(10).sink.BusRequest(0, rd, 0x2000_0000, 1)
	f.at(30).sink.BusComplete(0, rd, 0x2000_0000, 1)
	f.at(40).sink.BusRequest(0, rd, 0x2000_0020, 2)
	f.at(70).sink.BusComplete(0, rd, 0x2000_0020, 2)

	stalls := []profile.Span{
		{Core: 0, Cause: profile.CauseRefill, Start: 12, End: 31},
		{Core: 0, Cause: profile.CauseLock, Start: 33, End: 38}, // no txn outstanding
		{Core: 0, Cause: profile.CauseRefill, Start: 41, End: 71},
	}
	c.Finish(stalls, 100)
	links := c.Links()
	if len(links) != 3 {
		t.Fatalf("%d links, want 3", len(links))
	}
	if links[0].Txn != 1 || links[1].Txn != 0 || links[2].Txn != 2 {
		t.Fatalf("links %+v: want txn 1, none, 2", links)
	}
	var resumes int
	for _, e := range c.Edges() {
		if e.Kind == EdgeCompleteResume {
			resumes++
			if e.From != c.Txns()[e.Txn-1].Complete || e.To < e.From {
				t.Fatalf("resume edge %+v inconsistent", e)
			}
		}
	}
	if resumes != 2 {
		t.Fatalf("%d complete-resume edges, want 2", resumes)
	}
}

// TestCriticalPathConservation: the attribution partitions the anchor core's
// timeline exactly, charging remote drains to the draining master.
func TestCriticalPathConservation(t *testing.T) {
	c := NewCollector(32)
	f := newFeed(c)
	rd := uint8(bus.ReadLine)
	wb := uint8(bus.WriteLine)
	f.at(10).sink.BusRequest(0, rd, 0x2000_0000, 1)
	f.at(14).sink.Retry(0, rd, 0x2000_0000, 1, true, 1)
	f.at(16).sink.BusRequest(1, wb, 0x2000_0000, 2)
	f.at(30).sink.BusComplete(1, wb, 0x2000_0000, 2)
	f.at(30).sink.Drain(1, 0x2000_0000, 2)
	f.at(50).sink.BusComplete(0, rd, 0x2000_0000, 1)

	stalls := []profile.Span{
		{Core: 0, Cause: profile.CauseDrain, Start: 14, End: 31},
		{Core: 0, Cause: profile.CauseRefill, Start: 31, End: 51},
	}
	c.Finish(stalls, 100)
	cores := []CoreInfo{
		{Name: "ppc", ClockDiv: 1, Halted: true, HaltCycle: 90},
		{Name: "arm", ClockDiv: 2, Halted: true, HaltCycle: 60},
	}
	ledger := &profile.Summary{Cores: []profile.CoreSummary{
		{Core: 0, Causes: map[string]uint64{"drain": 17, "refill": 20}},
	}}
	cp := Compute(c, 100, cores, ledger, func(id int) string {
		return []string{"ppc", "arm"}[id]
	}, nil, 5)
	if cp.Core != 0 || cp.CoreName != "ppc" {
		t.Fatalf("anchor %d/%s, want 0/ppc (last halting)", cp.Core, cp.CoreName)
	}
	if cp.CrossCheckError != "" {
		t.Fatalf("cross-check failed: %s", cp.CrossCheckError)
	}
	if got := cp.CyclesAttributed(); got != 100 {
		t.Fatalf("attributed %d cycles, want 100", got)
	}
	byKey := map[string]uint64{}
	for _, a := range cp.Attribution {
		byKey[a.Component+"/"+a.Cause] = a.Cycles
	}
	if byKey["arm/drain"] != 17 {
		t.Fatalf("drain not charged to the draining master: %v", byKey)
	}
	if byKey["ppc/refill"] != 20 || byKey["ppc/execute"] != 63 {
		t.Fatalf("attribution %v wrong", byKey)
	}
	if len(cp.TopTransactions) == 0 || cp.TopTransactions[0].Txn != 1 {
		t.Fatalf("top transactions %+v: want txn 1 first", cp.TopTransactions)
	}
}

// TestCrossCheckCatchesOverAttribution: a ledger bound below the attributed
// cycles must be reported, not silently accepted.
func TestCrossCheckCatchesOverAttribution(t *testing.T) {
	c := NewCollector(32)
	c.Finish([]profile.Span{{Core: 0, Cause: profile.CauseRefill, Start: 0, End: 50}}, 100)
	ledger := &profile.Summary{Cores: []profile.CoreSummary{
		{Core: 0, Causes: map[string]uint64{"refill": 10}},
	}}
	cp := Compute(c, 100, []CoreInfo{{Name: "c0", ClockDiv: 1}}, ledger, nil, nil, 5)
	if cp.CrossCheckError == "" {
		t.Fatal("cross-check passed despite attribution exceeding the ledger bound")
	}
}

// TestJSONLExport checks the export carries both row kinds with causal
// fields.
func TestJSONLExport(t *testing.T) {
	c := NewCollector(32)
	f := newFeed(c)
	f.at(10).sink.BusRequest(0, uint8(bus.ReadLine), 0x2000_0000, 1)
	f.at(14).sink.Retry(0, uint8(bus.ReadLine), 0x2000_0000, 1, true, 1)
	f.at(16).sink.BusRequest(1, uint8(bus.WriteLine), 0x2000_0000, 2)
	f.at(30).sink.BusComplete(0, uint8(bus.ReadLine), 0x2000_0000, 1)
	c.Finish([]profile.Span{{Core: 0, Cause: profile.CauseDrain, Start: 14, End: 30}}, 40)

	var sb strings.Builder
	if err := c.WriteJSONL(&sb, func(k uint8) string { return bus.Kind(k).String() }); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"row":"txn","txn":1`,
		`"retries":[{"cycle":14,"drain":true,"cause":2}]`,
		`"row":"stall","core":0,"cause":"drain","start":14,"end":30,"txn":1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

// TestRetentionBound: transactions beyond the bound are counted as dropped
// and later lifecycle events for them are ignored without corrupting the
// dense id→index mapping.
func TestRetentionBound(t *testing.T) {
	c := NewCollector(32)
	c.maxTxns = 2
	f := newFeed(c)
	for i := uint64(1); i <= 4; i++ {
		f.at(i).sink.BusRequest(0, uint8(bus.ReadLine), uint32(0x2000_0000+32*i), i)
	}
	f.at(9).sink.BusComplete(0, uint8(bus.ReadLine), 0x2000_0060, 3)
	if len(c.Txns()) != 2 || c.Dropped() != 2 {
		t.Fatalf("kept %d dropped %d, want 2/2", len(c.Txns()), c.Dropped())
	}
}
