package span

import (
	"testing"

	"hetcc/internal/event"
)

// The collector is event-driven: when spans are disabled it is simply never
// subscribed, so the hot path carries no span code at all.  These pins keep
// the nil-safe surface allocation-free so accidental wiring of a disabled
// collector can never cost the hot loop anything (`make allocs`).

// TestAllocsNilCollector: every method on a nil *Collector is a single nil
// check and zero garbage.
func TestAllocsNilCollector(t *testing.T) {
	var c *Collector
	r := event.Record{Kind: event.BusRequest, Core: 1, Addr: 0x40, Txn: 1}
	n := testing.AllocsPerRun(1000, func() {
		c.HandleEvent(&r)
		c.Finish(nil, 0)
		_ = c.Txns()
		_ = c.Links()
		_ = c.Dropped()
	})
	if n != 0 {
		t.Fatalf("nil collector allocates %.1f/op, want 0", n)
	}
}
