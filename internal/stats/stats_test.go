package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRatio(t *testing.T) {
	if got := Ratio(50, 100); got != 0.5 {
		t.Fatalf("ratio %v", got)
	}
	if got := Ratio(100, 0); got != 0 {
		t.Fatalf("ratio with zero baseline %v", got)
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(62, 100); math.Abs(got-38) > 1e-9 {
		t.Fatalf("speedup %v, want 38", got)
	}
	if got := SpeedupPct(100, 100); got != 0 {
		t.Fatalf("no-diff speedup %v", got)
	}
	if got := SpeedupPct(150, 100); got != -50 {
		t.Fatalf("slowdown %v, want -50", got)
	}
	if got := SpeedupPct(1, 0); got != 0 {
		t.Fatalf("zero reference %v", got)
	}
	if ImprovementPct(62, 100) != SpeedupPct(62, 100) {
		t.Fatal("alias mismatch")
	}
}

func TestSpeedupRatioConsistency(t *testing.T) {
	f := func(a, b uint32) bool {
		ours, ref := uint64(a)+1, uint64(b)+1
		s := SpeedupPct(ours, ref)
		r := Ratio(ours, ref)
		return math.Abs((1-r)*100-s) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Figure 6", "lines", "ratio")
	tb.AddRow(1, 0.497)
	tb.AddRow(32, 0.3871)
	out := tb.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "lines") {
		t.Fatalf("render missing header: %q", out)
	}
	if !strings.Contains(out, "0.4970") || !strings.Contains(out, "0.3871") {
		t.Fatalf("floats not formatted: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("%d lines: %q", len(lines), out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("x,y", 2)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("csv quoting: %q", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col", "c")
	tb.AddRow("longvalue", 1)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and row begin at the same column offset.
	if !strings.HasPrefix(lines[0], "  col") || !strings.HasPrefix(lines[2], "  longvalue") {
		t.Fatalf("alignment: %q", out)
	}
	// The second column starts at the same offset in header and row.
	if strings.LastIndex(lines[0], "c") != strings.LastIndex(lines[2], "1") {
		t.Fatalf("columns misaligned: %q", out)
	}
}

func TestTableAlignmentMultiByte(t *testing.T) {
	// Regression: Table 2/3 cells like "I→M" are 3 runes but 5 bytes.
	// Byte-based widths over-padded them, shifting later columns.
	tb := NewTable("", "op", "states", "next")
	tb.AddRow("write", "I→M", "x")
	tb.AddRow("read", "S", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// The third column must start at the same rune offset in every line.
	col := func(s, sub string) int {
		idx := strings.Index(s, sub)
		if idx < 0 {
			t.Fatalf("%q missing %q", s, sub)
		}
		return len([]rune(s[:idx]))
	}
	if a, b := col(lines[0], "next"), col(lines[2], "x"); a != b {
		t.Fatalf("header 'next' at rune %d but row cell at %d:\n%s", a, b, out)
	}
	if a, b := col(lines[2], "x"), col(lines[3], "y"); a != b {
		t.Fatalf("multi-byte cell shifted next column (%d vs %d):\n%s", a, b, out)
	}
}

func TestPadCountsRunes(t *testing.T) {
	if got := pad("I→M", 5); got != "I→M  " {
		t.Fatalf("pad = %q (len %d bytes)", got, len(got))
	}
	if got := pad("abc", 2); got != "abc" {
		t.Fatalf("over-width pad = %q", got)
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tb := NewTable("Figure 6", "lines", "ratio")
	tb.AddRow(32, 0.38)
	var sb strings.Builder
	tb.RenderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"**Figure 6**", "| lines | ratio |", "| --- | --- |", "| 32 | 0.3800 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
