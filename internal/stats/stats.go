// Package stats provides the reporting helpers shared by the experiment
// harness: execution-time ratios and speedups exactly as the paper defines
// them, and aligned text/CSV table rendering for cmd/experiments.
package stats

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Ratio returns cycles/baseline — the "ratio of execution time" plotted in
// the paper's Figures 5–8 (1.0 = as fast as the baseline; lower is faster).
func Ratio(cycles, baseline uint64) float64 {
	if baseline == 0 {
		return 0
	}
	return float64(cycles) / float64(baseline)
}

// SpeedupPct returns the paper's "% speedup compared to X":
// (T_x - T_ours) / T_x × 100.
func SpeedupPct(ours, reference uint64) float64 {
	if reference == 0 {
		return 0
	}
	return (float64(reference) - float64(ours)) / float64(reference) * 100
}

// ImprovementPct is an alias of SpeedupPct with the paper's "performance
// improvement against" phrasing.
func ImprovementPct(ours, reference uint64) float64 { return SpeedupPct(ours, reference) }

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case float32:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table,
// with the title as a bold caption line.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
	row(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
}

// RenderCSV writes the table as CSV (headers first, no title).
func (t *Table) RenderCSV(w io.Writer) {
	write := func(cells []string) {
		esc := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			esc[i] = c
		}
		fmt.Fprintln(w, strings.Join(esc, ","))
	}
	write(t.Headers)
	for _, row := range t.Rows {
		write(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// pad right-pads s to a display width of w, counting runes rather than
// bytes so multi-byte cells (e.g. "→" in transition labels) stay aligned.
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}
