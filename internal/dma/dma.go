// Package dma implements a coherent direct-memory-access engine: a bus
// master that copies line-aligned buffers without any cache of its own.
//
// Because its reads and (full-line, invalidating) writes travel the same
// snooped bus as every processor, the paper's coherence machinery covers
// it for free: a dirty source line in any cache is drained by the owner
// before the DMA read retries, and every cached copy of a destination line
// is invalidated when the DMA write passes the snoop window.  This is the
// substrate for the paper's future-work direction — tightly integrated
// specialized I/O processors moving data through shared memory.
//
// Software programs the engine through a small register bank mapped on the
// high-speed bus and polls STATUS for completion.
package dma

import (
	"fmt"

	"hetcc/internal/bus"
	"hetcc/internal/sim"
)

// Register offsets.
const (
	// RegSrc (RW): line-aligned source byte address.
	RegSrc uint32 = 0x0
	// RegDst (RW): line-aligned destination byte address.
	RegDst uint32 = 0x4
	// RegLen (RW): transfer length in bytes (line multiple).
	RegLen uint32 = 0x8
	// RegCtrl (WO): writing 1 starts the transfer.
	RegCtrl uint32 = 0xc
	// RegStatus (RO): bit 0 busy, bit 1 done, bit 2 error (bad program).
	RegStatus uint32 = 0x10
)

// Status bits.
const (
	StatusBusy  uint32 = 1 << 0
	StatusDone  uint32 = 1 << 1
	StatusError uint32 = 1 << 2
)

// RegisterSize is the aperture size in bytes.
const RegisterSize uint32 = 0x14

type phase uint8

const (
	idle phase = iota
	reading
	writing
)

// Engine is the DMA controller: one outstanding line transfer at a time.
type Engine struct {
	base      uint32
	lineBytes int
	bus       *bus.Bus
	master    int

	src, dst, length uint32
	status           uint32

	ph      phase
	offset  uint32
	pending bool // a bus transaction is in flight
	lineBuf []uint32

	// txn plus the prebound callbacks are reused across the (single
	// outstanding) line transfers so a long copy allocates nothing per line.
	txn         bus.Transaction
	readDoneFn  func(bus.Result)
	writeDoneFn func(bus.Result)

	// LinesCopied counts completed line transfers.
	LinesCopied uint64
	// Transfers counts completed full transfers.
	Transfers uint64

	// sched is the engine's event-scheduler registration (nil under the
	// tick scheduler; see BindScheduler).
	sched *sim.Handle
}

var _ bus.Device = (*Engine)(nil)

// New creates an engine with registers at base, transferring lineBytes per
// bus transaction, mastering b.
func New(base uint32, lineBytes int, b *bus.Bus) *Engine {
	e := &Engine{
		base:      base,
		lineBytes: lineBytes,
		bus:       b,
		master:    b.AddMaster("dma"),
		lineBuf:   make([]uint32, lineBytes/4),
	}
	e.readDoneFn = e.readDone
	e.writeDoneFn = e.writeDone
	return e
}

// Base returns the register bank base address.
func (e *Engine) Base() uint32 { return e.base }

// MasterID returns the engine's bus master id (tests).
func (e *Engine) MasterID() int { return e.master }

// Busy reports an in-progress transfer.
func (e *Engine) Busy() bool { return e.status&StatusBusy != 0 }

// BindScheduler attaches the engine to the event scheduler.  The platform
// calls it only when the event scheduler is in force.
func (e *Engine) BindScheduler(h *sim.Handle) { e.sched = h }

// NextWake implements sim.Waker: the engine needs a tick only while it has
// a transfer in progress with no bus transaction in flight (the tick
// submits the next line read or write).  Otherwise it sleeps until a
// register write starts a transfer or a bus callback advances the phase.
func (e *Engine) NextWake(now uint64) (uint64, bool) {
	if e.Busy() && !e.pending {
		return now + e.sched.Div(), true
	}
	return 0, false
}

// wake requests a tick at the engine's next feasible clock edge — the
// current cycle when the DMA engine has not been evaluated yet this pass
// (it registers after the bus, so a bus-callback wake lands on the same
// cycle, exactly when a tick-mode engine would have acted).
func (e *Engine) wake() {
	if e.sched != nil {
		e.sched.Wake(e.sched.Now())
	}
}

// Contains implements bus.Device.
func (e *Engine) Contains(addr uint32) bool {
	return addr >= e.base && addr < e.base+RegisterSize
}

// Access implements bus.Device (the register bank; single-cycle).
func (e *Engine) Access(t *bus.Transaction) (int, bus.Result) {
	off := t.Addr - e.base
	res := bus.Result{}
	switch t.Kind {
	case bus.ReadWord:
		res.Val = e.readReg(off)
	case bus.WriteWord:
		e.writeReg(off, t.Val)
	case bus.RMWWord:
		res.Val = e.readReg(off)
		e.writeReg(off, t.Val)
	}
	return 1, res
}

func (e *Engine) readReg(off uint32) uint32 {
	switch off {
	case RegSrc:
		return e.src
	case RegDst:
		return e.dst
	case RegLen:
		return e.length
	case RegStatus:
		return e.status
	default:
		return 0
	}
}

func (e *Engine) writeReg(off uint32, v uint32) {
	if e.Busy() && off != RegStatus {
		return // registers are locked while a transfer runs
	}
	switch off {
	case RegSrc:
		e.src = v
	case RegDst:
		e.dst = v
	case RegLen:
		e.length = v
	case RegCtrl:
		if v&1 != 0 {
			e.start()
		}
	}
}

func (e *Engine) start() {
	lb := uint32(e.lineBytes)
	if e.length == 0 || e.length%lb != 0 || e.src%lb != 0 || e.dst%lb != 0 {
		e.status = StatusError
		return
	}
	e.status = StatusBusy
	e.ph = reading
	e.offset = 0
	e.pending = false
	e.wake()
}

// Tick implements sim.Ticker: drive one line transfer at a time through
// the bus.
func (e *Engine) Tick(uint64) {
	if !e.Busy() || e.pending {
		return
	}
	switch e.ph {
	case reading:
		e.pending = true
		e.txn = bus.Transaction{
			Master: e.master,
			Kind:   bus.ReadLine,
			Addr:   e.src + e.offset,
			Words:  e.lineBytes / 4,
		}
		e.bus.Submit(&e.txn, e.readDoneFn)
	case writing:
		e.pending = true
		// The write consumes lineBuf directly: the bus samples Data during
		// the address/data phase, and the next read cannot overwrite the
		// buffer before this write completes (one transaction outstanding).
		e.txn = bus.Transaction{
			Master: e.master,
			Kind:   bus.WriteLineInv,
			Addr:   e.dst + e.offset,
			Words:  e.lineBytes / 4,
			Data:   e.lineBuf,
		}
		e.bus.Submit(&e.txn, e.writeDoneFn)
	default:
		panic(fmt.Sprintf("dma: busy in phase %d", e.ph))
	}
}

func (e *Engine) readDone(res bus.Result) {
	copy(e.lineBuf, res.Data) // fill buffers are pooled; snapshot before return
	e.pending = false
	e.ph = writing
	e.wake()
}

func (e *Engine) writeDone(bus.Result) {
	e.pending = false
	e.LinesCopied++
	e.offset += uint32(e.lineBytes)
	if e.offset >= e.length {
		e.status = StatusDone
		e.Transfers++
		e.ph = idle
	} else {
		e.ph = reading
	}
	e.wake()
}
