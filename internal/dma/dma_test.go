package dma

import (
	"testing"

	"hetcc/internal/bus"
	"hetcc/internal/cache"
	"hetcc/internal/coherence"
	"hetcc/internal/memory"
)

const (
	dmaBase uint32 = 0x5000_0000
	srcBase uint32 = 0x1000
	dstBase uint32 = 0x2000
)

type bench struct {
	t   *testing.T
	bus *bus.Bus
	mem *memory.Memory
	eng *Engine
	ctl *cache.Controller
	now uint64
}

func newBench(t *testing.T) *bench {
	t.Helper()
	mem := memory.New()
	b := bus.New(bus.Config{Timing: memory.DefaultTiming()}, mem, nil)
	arr, err := cache.New(cache.Config{SizeBytes: 1024, Ways: 2, LineBytes: 32}, coherence.New(coherence.MESI))
	if err != nil {
		t.Fatal(err)
	}
	ctl := cache.NewController("cpu", arr, b, nil, true, nil)
	eng := New(dmaBase, 32, b)
	b.AddDevice(eng)
	return &bench{t: t, bus: b, mem: mem, eng: eng, ctl: ctl}
}

// step advances bus + engine one bus cycle.
func (bn *bench) step() {
	bn.bus.Tick(bn.now)
	bn.eng.Tick(bn.now)
	bn.now++
}

func (bn *bench) run(pred func() bool) {
	bn.t.Helper()
	for i := 0; i < 100000; i++ {
		if pred() {
			return
		}
		bn.step()
	}
	bn.t.Fatal("condition never true")
}

// poke writes a register through the bus.
func (bn *bench) writeReg(off, val uint32) {
	done := false
	bn.bus.Submit(&bus.Transaction{Master: bn.ctl.MasterID(), Kind: bus.WriteWord, Addr: dmaBase + off, Val: val}, func(bus.Result) { done = true })
	bn.run(func() bool { return done })
}

func (bn *bench) readReg(off uint32) uint32 {
	var out uint32
	done := false
	bn.bus.Submit(&bus.Transaction{Master: bn.ctl.MasterID(), Kind: bus.ReadWord, Addr: dmaBase + off}, func(r bus.Result) { out = r.Val; done = true })
	bn.run(func() bool { return done })
	return out
}

func (bn *bench) program(src, dst, length uint32) {
	bn.writeReg(RegSrc, src)
	bn.writeReg(RegDst, dst)
	bn.writeReg(RegLen, length)
	bn.writeReg(RegCtrl, 1)
}

func (bn *bench) waitDone() {
	bn.run(func() bool { return bn.readReg(RegStatus)&StatusDone != 0 })
}

func TestDMACopiesMemory(t *testing.T) {
	bn := newBench(t)
	for i := uint32(0); i < 16; i++ { // two lines
		bn.mem.Poke(srcBase+4*i, 100+i)
	}
	bn.program(srcBase, dstBase, 64)
	bn.waitDone()
	for i := uint32(0); i < 16; i++ {
		if got := bn.mem.Peek(dstBase + 4*i); got != 100+i {
			t.Fatalf("dst word %d = %d, want %d", i, got, 100+i)
		}
	}
	if bn.eng.LinesCopied != 2 || bn.eng.Transfers != 1 {
		t.Fatalf("counters %d/%d", bn.eng.LinesCopied, bn.eng.Transfers)
	}
}

func TestDMAReadsDirtyCachedSource(t *testing.T) {
	bn := newBench(t)
	// The CPU holds the source line dirty.
	done := false
	bn.ctl.Access(true, srcBase, 0xbeef, func(uint32) { done = true })
	bn.run(func() bool { return done })
	// DMA copy must see the cached value (owner drains on snoop).
	bn.program(srcBase, dstBase, 32)
	bn.waitDone()
	if got := bn.mem.Peek(dstBase); got != 0xbeef {
		t.Fatalf("dst = %#x, want cached 0xbeef", got)
	}
}

func TestDMAWriteInvalidatesCachedDestination(t *testing.T) {
	bn := newBench(t)
	// The CPU caches the destination line (clean).
	done := false
	bn.ctl.Access(false, dstBase, 0, func(uint32) { done = true })
	bn.run(func() bool { return done })
	bn.mem.Poke(srcBase, 7)
	bn.program(srcBase, dstBase, 32)
	bn.waitDone()
	if st := bn.ctl.Cache().StateOf(dstBase); st != coherence.Invalid {
		t.Fatalf("CPU copy of destination still %v after DMA write", st)
	}
	// A fresh CPU read sees the DMA data.
	var got uint32
	done = false
	bn.ctl.Access(false, dstBase, 0, func(v uint32) { got = v; done = true })
	bn.run(func() bool { return done })
	if got != 7 {
		t.Fatalf("CPU reread %d, want 7", got)
	}
}

func TestDMAWriteSupersedesDirtyDestination(t *testing.T) {
	bn := newBench(t)
	done := false
	bn.ctl.Access(true, dstBase, 0xdead, func(uint32) { done = true })
	bn.run(func() bool { return done })
	bn.mem.Poke(srcBase, 11)
	bn.program(srcBase, dstBase, 32)
	bn.waitDone()
	if got := bn.mem.Peek(dstBase); got != 11 {
		t.Fatalf("dst = %#x, want DMA's 11 to supersede the drained line", got)
	}
	if st := bn.ctl.Cache().StateOf(dstBase); st != coherence.Invalid {
		t.Fatalf("dirty destination copy survived: %v", st)
	}
}

func TestDMAProgrammingErrors(t *testing.T) {
	bn := newBench(t)
	cases := []struct{ src, dst, length uint32 }{
		{srcBase + 4, dstBase, 32}, // unaligned src
		{srcBase, dstBase + 8, 32}, // unaligned dst
		{srcBase, dstBase, 0},      // zero length
		{srcBase, dstBase, 20},     // not a line multiple
	}
	for i, c := range cases {
		bn.program(c.src, c.dst, c.length)
		if st := bn.readReg(RegStatus); st&StatusError == 0 {
			t.Errorf("case %d: status %#x, want error", i, st)
		}
	}
}

func TestDMARegistersLockedWhileBusy(t *testing.T) {
	bn := newBench(t)
	// Long transfer so we can poke mid-flight.
	for i := uint32(0); i < 256; i++ {
		bn.mem.Poke(srcBase+4*i, i)
	}
	bn.program(srcBase, dstBase, 1024)
	if bn.readReg(RegStatus)&StatusBusy == 0 {
		t.Fatal("not busy")
	}
	bn.writeReg(RegSrc, 0xffff0000) // must be ignored
	if got := bn.readReg(RegSrc); got != srcBase {
		t.Fatalf("src register changed mid-transfer: %#x", got)
	}
	bn.waitDone()
}

func TestDMAReadback(t *testing.T) {
	bn := newBench(t)
	bn.writeReg(RegSrc, 0x1000)
	bn.writeReg(RegDst, 0x2000)
	bn.writeReg(RegLen, 96)
	if bn.readReg(RegSrc) != 0x1000 || bn.readReg(RegDst) != 0x2000 || bn.readReg(RegLen) != 96 {
		t.Fatal("register readback")
	}
}
